EXPLAIN renders the typed plan tree the adaptive planner chose, with the
cost-model estimate attached.  Observability is off in the CLI, so the
cost inputs are the static fallbacks and every number below is a pure
function of the schema and row counts — which is what makes this file a
regression gate on the planner itself.

  $ cat > q.sql <<'EOF'
  > CREATE TABLE staff (id INT CLEAR, name TEXT, salary INT);
  > INSERT INTO staff VALUES (1, 'amy', 120);
  > INSERT INTO staff VALUES (2, 'bob', 80);
  > INSERT INTO staff VALUES (3, 'cal', 120);
  > INSERT INTO staff VALUES (4, 'dee', 200);
  > INSERT INTO staff VALUES (5, 'eli', 80);
  > INSERT INTO staff VALUES (6, 'fay', 150);
  > CREATE INDEX ON staff (salary);
  > CREATE RANGE INDEX ON staff (id) BUCKETS 3;
  > CREATE TABLE teams (id INT CLEAR, staff_id INT, team TEXT);
  > INSERT INTO teams VALUES (1, 1, 'red');
  > INSERT INTO teams VALUES (2, 3, 'blue');
  > INSERT INTO teams VALUES (3, 6, 'red');
  > CREATE INDEX ON teams (staff_id);
  > EXPLAIN SELECT * FROM staff WHERE salary = 120;
  > EXPLAIN SELECT * FROM staff WHERE id BETWEEN 1 AND 4;
  > EXPLAIN SELECT name FROM staff ORDER BY salary DESC LIMIT 2;
  > EXPLAIN SELECT name, team FROM staff JOIN teams ON staff.id = teams.staff_id;
  > EOF
  $ secdb_cli sql -f q.sql
  secdb> CREATE TABLE staff (id INT CLEAR, name TEXT,
  salary INT)
  created
  secdb> INSERT INTO staff VALUES (1, "amy",
  120)
  1 row(s) affected
  secdb> INSERT INTO staff VALUES (2, "bob",
  80)
  1 row(s) affected
  secdb> INSERT INTO staff VALUES (3, "cal",
  120)
  1 row(s) affected
  secdb> INSERT INTO staff VALUES (4, "dee",
  200)
  1 row(s) affected
  secdb> INSERT INTO staff VALUES (5, "eli",
  80)
  1 row(s) affected
  secdb> INSERT INTO staff VALUES (6, "fay",
  150)
  1 row(s) affected
  secdb> CREATE INDEX ON staff (salary)
  created
  secdb> CREATE RANGE INDEX ON staff (id) BUCKETS 3
  created
  secdb> CREATE TABLE teams (id INT CLEAR, staff_id INT,
  team TEXT)
  created
  secdb> INSERT INTO teams VALUES (1, 1,
  "red")
  1 row(s) affected
  secdb> INSERT INTO teams VALUES (2, 3,
  "blue")
  1 row(s) affected
  secdb> INSERT INTO teams VALUES (3, 6,
  "red")
  1 row(s) affected
  secdb> CREATE INDEX ON teams (staff_id)
  created
  secdb> EXPLAIN SELECT * FROM staff WHERE salary = 120
  plan: INDEX SCAN on salary [120 .. 120] (est. selectivity 0.33) + residual filter; cost ~11
  secdb> EXPLAIN SELECT * FROM staff WHERE id BETWEEN 1 AND 4
  plan: RANGE BUCKET SCAN on id [1 .. 4] over 3 buckets (est. selectivity 0.67) + residual filter; cost ~18
  secdb> EXPLAIN SELECT name FROM staff ORDER BY salary DESC LIMIT 2
  plan: FULL SCAN (decrypt every row); cost ~18
  secdb> EXPLAIN SELECT name, team FROM staff JOIN teams ON staff.id = teams.staff_id
  plan: NESTED LOOP JOIN: teams via FULL SCAN (decrypt every row) -> materialize staff on teams.staff_id = staff.id; cost ~27

JOIN and ORDER BY work end-to-end over the wire against a sharded
server.  Table placement is FNV-1a on the table name, so "custs" and
"items" land on the same shard of four and can be joined; "orders" lives
on a different shard, and joining across shards is refused with a
structured error — never a silently wrong answer.

  $ SOCK_DIR=$(mktemp -d)
  $ secdb_cli serve -a unix:$SOCK_DIR/db.sock --shards 4 --seed 7 > serve.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S $SOCK_DIR/db.sock ] && break; sleep 0.1; done

  $ secdb_cli client -a unix:$SOCK_DIR/db.sock \
  >   -e "CREATE TABLE custs (id INT CLEAR, name TEXT)" \
  >   -e "CREATE TABLE items (id INT CLEAR, cust_id INT, sku TEXT)" \
  >   -e "CREATE TABLE orders (id INT CLEAR, cust_id INT)" \
  >   -e "INSERT INTO custs VALUES (1, 'amy')" \
  >   -e "INSERT INTO custs VALUES (2, 'bob')" \
  >   -e "INSERT INTO items VALUES (10, 2, 'bolt')" \
  >   -e "INSERT INTO items VALUES (11, 1, 'nut')" \
  >   -e "INSERT INTO items VALUES (12, 2, 'cog')" \
  >   -e "SELECT name, sku FROM custs JOIN items ON custs.id = items.cust_id ORDER BY sku LIMIT 2"
  created
  created
  created
  1 row(s) affected
  1 row(s) affected
  1 row(s) affected
  1 row(s) affected
  1 row(s) affected
  custs.name | items.sku
  -----------+----------
  "bob"      | "bolt"   
  "bob"      | "cog"    
  (2 row(s))

  $ secdb_cli client -a unix:$SOCK_DIR/db.sock \
  >   -e "SELECT * FROM orders JOIN custs ON orders.cust_id = custs.id"
  error [app]: cross-shard JOIN: tables {orders, custs} live on different shards
  [1]

  $ kill $SRV 2>/dev/null; wait $SRV 2>/dev/null

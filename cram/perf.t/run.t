The throughput suite's check mode drives every bulk-encryption path —
kernel vs string-closure agreement on all five modes, parallel vs
sequential byte-equality for the batch cell schemes, whole-table
insert_many against a per-row insert loop, and a pooled index bulk load
against the sequential build — and prints only the verdict:

  $ secdb_perf --fast --check
  perf check: OK

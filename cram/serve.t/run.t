End-to-end over the wire: spawn a server on a private Unix socket, run
authenticated queries against it, watch a tampered request bounce off
with a structured error, and shut the server down cleanly.

  $ SOCK_DIR=$(mktemp -d)
  $ secdb_cli serve -a unix:$SOCK_DIR/db.sock --seed 42 > serve.log 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S $SOCK_DIR/db.sock ] && break; sleep 0.1; done

The handshake proves possession of the derived credential on both sides:

  $ secdb_cli ping -a unix:$SOCK_DIR/db.sock
  pong

One connection, four statements pipelined in a single burst:

  $ secdb_cli client -a unix:$SOCK_DIR/db.sock \
  >   -e "CREATE TABLE accounts (id INT CLEAR, owner TEXT, balance INT)" \
  >   -e "INSERT INTO accounts VALUES (1, 'alice', 120)" \
  >   -e "INSERT INTO accounts VALUES (2, 'bob', 80)" \
  >   -e "SELECT owner, balance FROM accounts WHERE balance >= 100"
  created
  1 row(s) affected
  1 row(s) affected
  owner   | balance
  --------+--------
  "alice" | 120    
  (1 row(s))

A request whose MAC was corrupted on the wire is rejected with a
structured authentication error, not executed and not a crash:

  $ secdb_cli client -a unix:$SOCK_DIR/db.sock --tamper -e "SELECT * FROM accounts"
  error [auth]: request MAC mismatch
  [1]

The server's own observability registry is one RPC away; the counters
pin exactly what this file did so far (one ping, four SQL statements,
one rejected tamper, and this stats call on the fourth connection):

  $ secdb_cli client -a unix:$SOCK_DIR/db.sock --stats \
  >   | grep -E 'net\.(rpc\{op=(ping|sql|stats)\}|auth_failures|connections_total|connections )'
  counter net.auth_failures 1
  counter net.connections_total 4
  counter net.rpc{op=ping} 1
  counter net.rpc{op=sql} 4
  counter net.rpc{op=stats} 1
  gauge net.connections 1

SIGTERM drains: in-flight work finishes, the socket is unlinked, the
process exits 0:

  $ kill -TERM $SRV && wait $SRV
  $ sed "s#$SOCK_DIR#SOCK#" serve.log
  secdb: listening on unix:SOCK/db.sock
  secdb: drained, bye
  $ [ ! -e $SOCK_DIR/db.sock ] && echo "socket unlinked"
  socket unlinked

The CLI round-trips a value through the paper's broken Append-Scheme and
rejects it at any other address:

  $ secdb_cli encrypt "hello world" -p elovici-append -t 2 -r 7 -c 1
  scheme : append-scheme[cbc0(aes-128),sha1/128]
  address: (t=2,r=7,c=1)
  stored : e143fd0ea366573a51e90b821096fa006152f9bbe5513a7ae396a6af2e38e341

  $ secdb_cli decrypt $(secdb_cli encrypt "hello world" -p elovici-append -t 2 -r 7 -c 1 | grep stored | cut -d' ' -f3) -p elovici-append -t 2 -r 7 -c 1
  valid at (t=2,r=7,c=1): "hello world"

  $ secdb_cli decrypt $(secdb_cli encrypt "hello world" -p elovici-append -t 2 -r 7 -c 1 | grep stored | cut -d' ' -f3) -p elovici-append -t 2 -r 8 -c 1
  REJECTED: append-scheme: address checksum mismatch
  [1]

The fixed profile produces a fresh ciphertext but the same roundtrip:

  $ secdb_cli decrypt $(secdb_cli encrypt "top secret" -p fixed-eax -t 1 -r 0 -c 0 | grep stored | cut -d' ' -f3) -p fixed-eax -t 1 -r 0 -c 0
  valid at (t=1,r=0,c=0): "top secret"

The paper's 1024-address experiment (paper found 6 collisions):

  $ secdb_cli attack A3
  collisions among 1024 addresses: 6 (expected 8.0, paper saw 6)

Address digests are deterministic:

  $ secdb_cli mu -t 1 -r 2 -c 3
  sha1/128     70b9aefc37c00c850763f050cfe22562
  sha1/160     70b9aefc37c00c850763f050cfe225625e8d54c0
  sha256/128   ca73761ddabfffcbe51170be0b07f67b
  md5/128      70f1b5553275a195663374ac7c53ea6b
  identity     000000000000000100000000000000020000000000000003

Profiles:

  $ secdb_cli profiles
  elovici-append
  elovici-xor
  shmueli-improved
  shmueli-repaired-keys
  fixed-eax
  fixed-ocb
  fixed-ccfb
  fixed-etm
  fixed-gcm
  fixed-siv
  siv-deterministic

SQL over an encrypted database:

  $ secdb_cli sql -e "CREATE TABLE t (id INT CLEAR, v TEXT)"
  created

Exit codes: usage errors (unknown subcommand, unknown flag, bad option
value) exit 2; runtime failures exit 1; success exits 0:

  $ secdb_cli no-such-command 2>/dev/null
  [2]

  $ secdb_cli mu --no-such-flag 2>/dev/null
  [2]

  $ secdb_cli encrypt -p no-such-profile x 2>/dev/null
  [2]

  $ secdb_cli decrypt -p fixed-eax 00 >/dev/null
  [1]

  $ secdb_cli ping -a unix:./no-server-here.sock 2>/dev/null
  [1]

  $ secdb_cli profiles >/dev/null

A SQL script file:

  $ cat > script.sql <<'SQL'
  > CREATE TABLE ledger (id INT CLEAR, amount INT);
  > INSERT INTO ledger VALUES (0, 120);
  > INSERT INTO ledger VALUES (1, 80);
  > CREATE INDEX ON ledger (amount);
  > SELECT count(*), sum(amount) FROM ledger WHERE amount >= 100;
  > SQL
  $ secdb_cli sql -f script.sql | tail -4
  count(*) | sum(amount)
  ---------+------------
  1        | 120        
  (1 row(s))

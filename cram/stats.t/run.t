The observability registry after the scripted workload.  Every value below
is a pure function of the workload — pager cache traffic, the rejected
AEAD tamper, pool batch/chunk/task counts, the paged B+-tree's node cache
and the shard router — so any drift in these counters is a behaviour
change in the stack, not noise:

  $ secdb_cli stats
  counter aead.auth_failures 1
  counter aead.bytes_decrypted 14527
  counter aead.bytes_encrypted 6417
  counter aead.decrypts 309
  counter aead.encrypts 179
  counter blob.bytes_loaded 1000
  counter blob.bytes_stored 1000
  counter blob.deletes 1
  counter blob.loads 1
  counter blob.pages_read 10
  counter blob.pages_written 5
  counter blob.stores 1
  counter mode.blocks{op=cbc_decrypt} 30
  counter mode.blocks{op=cbc_encrypt} 71
  counter mode.blocks{op=cfb_decrypt} 0
  counter mode.blocks{op=cfb_encrypt} 0
  counter mode.blocks{op=ctr} 1587
  counter mode.blocks{op=ecb_decrypt} 0
  counter mode.blocks{op=ecb_encrypt} 0
  counter mode.blocks{op=ofb} 0
  counter mode.bytes{op=cbc_decrypt} 480
  counter mode.bytes{op=cbc_encrypt} 1136
  counter mode.bytes{op=cfb_decrypt} 0
  counter mode.bytes{op=cfb_encrypt} 0
  counter mode.bytes{op=ctr} 20920
  counter mode.bytes{op=ecb_decrypt} 0
  counter mode.bytes{op=ecb_encrypt} 0
  counter mode.bytes{op=ofb} 0
  counter oplog.appends 3
  counter oplog.replay_failures 1
  counter oplog.replayed 3
  counter oplog.syncs 3
  counter pager.cache_hits 39
  counter pager.cache_misses 216
  counter pager.disk_reads 216
  counter pager.disk_writes 108
  counter pager.evictions 242
  counter pager.writebacks 94
  counter pbt.cache_hits 235
  counter pbt.evictions 175
  counter pbt.node_loads 158
  counter pbt.node_writes 61
  counter pool.batches 5
  counter pool.chunks 80
  counter pool.seq_fallback 0
  counter pool.tasks 176
  counter shard.broadcasts 1
  counter shard.routed 5
  counter table.cells_decrypted 69
  counter table.cells_encrypted 40
  counter table.decrypt_failures 0
  counter table.rows_matched 16
  counter table.rows_scanned 24
  counter trace.spans 5
  counter walker.false_positives 5
  counter walker.inner_checked 5
  counter walker.leaf_checked 19
  counter walker.leaf_unchecked 0
  counter walker.results 14
  gauge db.rows{table=kv} 7
  gauge pager.hit_rate 15
  gauge pool.domains 2
  gauge shard.count 4
  hist oplog.append_seconds count=3
  hist oplog.replay_seconds count=2
  hist sql.plan_latency{plan=bucket} count=0
  hist sql.plan_latency{plan=index} count=1

The span sink sees the oplog appends and replays:

  $ secdb_cli stats --trace 2>&1 >/dev/null | cut -d'"' -f4 | sort | uniq -c | sed 's/^ *//'
  3 oplog.append
  2 oplog.replay


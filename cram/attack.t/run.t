The range-leakage report is deterministic (fixed seed) and every score
sits inside its pinned interval.  Uniform data leaks order to bucket
granularity (about 1 - 1/8 for 8 buckets) and nothing else; skew leaks
more order and pins most entries exactly; the B+-tree reference leaks
the total order — the baseline the bucketized structure improves on:

  $ secdb_cli attack --range
  order-recovered/uniform-8      0.8769  [0.8500, 0.9000]  ok
  value-recovered/uniform-8      0.0000  [0.0000, 0.0200]  ok
  hist-distance/uniform-8        0.0000  [0.0000, 0.0100]  ok
  order-recovered/skewed-8       0.9400  [0.9000, 0.9700]  ok
  value-recovered/skewed-8       0.7012  [0.6500, 0.8000]  ok
  hist-distance/skewed-8         0.0000  [0.0000, 0.0100]  ok
  order-recovered/bptree-ref     1.0000  [0.9990, 1.0000]  ok

Without --range the command still wants one of the paper's attacks:

  $ secdb_cli attack
  attack: expected one of A1, A2, A3, A6, A7 or --range
  [2]

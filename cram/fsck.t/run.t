The offline recovery checker.  `pgdemo` writes a deterministic pager image
(two live blob chains, two freed pages), so both the clean verdict and the
reaction to hand-made corruption are stable:

  $ secdb_cli pgdemo demo.pg
  created demo.pg: pages=9 blob-a=1 blob-b=7

  $ secdb_cli fsck demo.pg --blob 1 --blob 7
  fsck demo.pg
    page size  128
    pages      9
    free       [9 8]
    blob 1      6 pages
    blob 7      1 pages
  clean

A wild free-list head (header bytes 16-19) is caught by header validation
before any page is trusted, and the exit code flips:

  $ printf '\000\000\377\377' | dd of=demo.pg bs=1 seek=16 conv=notrunc status=none
  $ secdb_cli fsck demo.pg
  fsck demo.pg
  issue: header: Pager.open_file: free-list head 65535 out of range (0..9)
  [1]

A blob chain bent back on itself (page 2's next pointer, at byte 256,
redirected to page 1) is reported against the offending page — the bounded
walk terminates instead of spinning:

  $ secdb_cli pgdemo demo2.pg
  created demo2.pg: pages=9 blob-a=1 blob-b=7
  $ printf '\000\000\000\000\000\000\000\001' | dd of=demo2.pg bs=1 seek=256 conv=notrunc status=none
  $ secdb_cli fsck demo2.pg --blob 1
  fsck demo2.pg
    page size  128
    pages      9
    free       [9 8]
    blob 1      0 pages
  issue: blob 1: page 2: chain exceeds 9 pages (cycle?)
  [1]

The other blob is untouched by that corruption and still checks out:

  $ secdb_cli fsck demo2.pg --blob 7
  fsck demo2.pg
    page size  128
    pages      9
    free       [9 8]
    blob 7      1 pages
  clean

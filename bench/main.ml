(* Experiment harness: regenerates every quantitative claim of

     Kühn, "Analysis of a Database and Index Encryption Scheme —
     Problems and Fixes" (SDM @ VLDB 2006)

   One experiment per claim (see DESIGN.md §3 and EXPERIMENTS.md).  Usage:

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only EXP3  # one experiment
     dune exec bench/main.exe -- --fast       # reduced workloads
     dune exec bench/main.exe -- --list       # list experiments *)

open Secdb_util
module Value = Secdb_db.Value
module Address = Secdb_db.Address
module B = Secdb_index.Bptree
module Einst = Secdb_schemes.Einst
module PM = Secdb_attacks.Pattern_matching
module Forgery = Secdb_attacks.Forgery
module Sub = Secdb_attacks.Substitution
module MacI = Secdb_attacks.Mac_interaction
module KS = Secdb_attacks.Keystream_reuse
module CW = Secdb_index.Client_walk

let key = Xbytes.of_hex "000102030405060708090a0b0c0d0e0f"
let key_mac = Xbytes.of_hex "ffeeddccbbaa99887766554433221100"
let aes = Secdb_cipher.Aes.cipher ~key
let aes_fast = Secdb_cipher.Aes_fast.cipher ~key
let mu = Address.mu_sha1 ~width:16
let e_cbc0 = Einst.cbc_zero_iv aes
let append_scheme = Secdb_schemes.Cell_append.make ~e:e_cbc0 ~mu

let fixed_scheme ?(mk = fun c -> Secdb_aead.Eax.make c) () =
  let aead = mk aes in
  Secdb_schemes.Fixed_cell.make ~aead
    ~nonce:(Secdb_aead.Nonce.counter ~size:aead.Secdb_aead.Aead.nonce_size ()) ()

let header fmt = Printf.printf ("\n" ^^ fmt ^^ "\n%!")
let row fmt = Printf.printf (fmt ^^ "\n%!")

(* ----------------------------------------------------------------- EXP1 *)

let shared_prefix_workload rng ~n ~prefix_blocks =
  let prefix = String.make (16 * prefix_blocks) 'P' in
  List.init n (fun i ->
      (i, if i mod 2 = 0 then prefix ^ Rng.ascii rng 20 else Rng.ascii rng (16 * prefix_blocks + 20)))

let exp1 ~fast =
  header "EXP1  Pattern matching on cell ciphertexts (paper Sect. 3.1)";
  row "  workload: column of strings, half sharing a k-block prefix; CBC, zero IV";
  row "  %-28s %6s %9s %9s %10s" "scheme" "k" "true" "detected" "correct";
  let n = if fast then 16 else 40 in
  List.iter
    (fun prefix_blocks ->
      let rng = Rng.create ~seed:101L () in
      let w = shared_prefix_workload rng ~n ~prefix_blocks in
      let r = PM.cells ~scheme:append_scheme ~block:16 ~table:1 ~col:0 w in
      row "  %-28s %6d %9d %9d %10d" "append[cbc0]" prefix_blocks r.PM.true_pairs
        r.PM.detected_pairs r.PM.true_positives;
      let rf =
        PM.cells ~scheme:(fixed_scheme ()) ~extract:PM.extract_fixed_cell ~block:16 ~table:1
          ~col:0 w
      in
      row "  %-28s %6d %9d %9d %10d" "fixed[eax]" prefix_blocks rf.PM.true_pairs
        rf.PM.detected_pairs rf.PM.true_positives)
    [ 1; 2; 4 ];
  row "  shape: broken scheme detects every prefix-sharing pair, fix detects none."

(* ----------------------------------------------------------------- EXP2 *)

let exp2 ~fast =
  header "EXP2  Existential forgery on the Append-Scheme (paper Sect. 3.1)";
  row "  attack: replace ciphertext block C_i, i <= s-1; address checksum survives";
  let trials = if fast then 30 else 200 in
  row "  %-28s %10s %14s" "scheme" "value-len" "success-rate";
  List.iter
    (fun value_len ->
      let rng = Rng.create ~seed:102L () in
      let rate s =
        Forgery.success_rate ~scheme:s ~block:16 ~table:1 ~col:0 ~value_len ~trials ~rng
      in
      row "  %-28s %10d %14.3f" "append[cbc0]" value_len (rate append_scheme);
      row "  %-28s %10d %14.3f" "fixed[eax]" value_len (rate (fixed_scheme ())))
    [ 32; 64; 256 ];
  row "  shape: 1.000 against the analysed scheme, 0.000 against the fix."

(* ----------------------------------------------------------------- EXP3 *)

let exp3 ~fast =
  header "EXP3  XOR-Scheme substitution: partial collisions on mu (paper Sect. 3.1)";
  row "  mu = SHA-1 truncated to 128 bits; condition: all 16 octet high bits agree";
  let trials = if fast then 512 else 1024 in
  row "  %-10s %10s %12s %10s" "trials" "pairs" "expected" "found";
  List.iter
    (fun t ->
      let ex = Sub.collision_search ~mu ~table:5 ~col:2 ~trials:t in
      row "  %-10d %10d %12.1f %10d" t (t * (t - 1) / 2) ex.Sub.expected
        (List.length ex.Sub.collisions))
    [ trials / 2; trials ];
  row "  paper: 6 collisions among 1024 trial addresses (expectation 8.0).";
  let ex = Sub.collision_search ~mu ~table:5 ~col:2 ~trials in
  match ex.Sub.collisions with
  | (r1, r2) :: _ ->
      let xor_scheme =
        Secdb_schemes.Cell_xor.make ~e:e_cbc0 ~mu ~validate:Xbytes.is_ascii7 ()
      in
      let v = "sixteen-byte str" in
      let rel = Sub.relocate ~scheme:xor_scheme ~table:5 ~col:2 ~value:v ~from_row:r1 ~to_row:r2 in
      let relf =
        Sub.relocate ~scheme:(fixed_scheme ()) ~table:5 ~col:2 ~value:v ~from_row:r1 ~to_row:r2
      in
      row "  relocation row %d -> %d: xor-scheme accepted=%b, fixed accepted=%b" r1 r2
        rel.Sub.accepted relf.Sub.accepted
  | [] -> row "  (no collision found this run; probability < 0.1%%)"

(* ------------------------------------------------------------- EXP4/5 *)

let correlation_workload rng ~n codec =
  let prefix = String.make 32 'P' in
  let texts =
    List.init n (fun i -> if i mod 4 = 0 then prefix ^ Rng.ascii rng 17 else Rng.ascii rng 49)
  in
  let tree = B.create ~order:4 ~id:1000 ~codec () in
  List.iteri (fun i s -> B.insert tree (Value.Text s) ~table_row:i) texts;
  (tree, List.mapi (fun i s -> (i, Value.encode (Value.Text s))) texts)

let exp45 name descr codec extract cell_scheme ~fast =
  header "%s" (name ^ "  " ^ descr);
  let n = if fast then 12 else 32 in
  let rng = Rng.create ~seed:104L () in
  let tree, plaintexts = correlation_workload rng ~n codec in
  let r =
    PM.index_correlation ~cell_scheme ~tree ~payload_ciphertext:extract ~block:16 ~table:1
      ~col:0 ~plaintexts
  in
  row "  index codec: %s" (B.codec tree).B.codec_name;
  row "  (cell,entry) pairs sharing >=1 leading ciphertext block: %d (%d correct links)"
    r.PM.total_links r.PM.correct_links

let exp4 ~fast =
  exp45 "EXP4" "Index<->table correlation, index scheme of [3] (paper Sect. 3.2)"
    (Secdb_schemes.Index3.codec ~e:e_cbc0) PM.extract_index3 append_scheme ~fast;
  row "  shape: every prefix-sharing (cell, index entry) pair is linkable."

let exp5 ~fast =
  exp45 "EXP5" "Correlation survives the appended randomness of [12] (paper Sect. 3.3)"
    (Secdb_schemes.Index12.codec ~e:e_cbc0 ~mac_cipher:aes ~rng:(Rng.create ~seed:105L ())
       ~indexed_table:1 ~indexed_col:0 ())
    PM.extract_index12 append_scheme ~fast;
  exp45 "EXP5b" "The fixed AEAD index shows no correlation (paper Sect. 4)"
    (Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes)
       ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
       ~indexed_table:1 ~indexed_col:0 ())
    PM.extract_fixed (fixed_scheme ()) ~fast;
  row "  shape: [12]'s randomness does not help (it only masks trailing blocks);";
  row "  the AEAD fix produces zero links."

(* ----------------------------------------------------------------- EXP6 *)

let exp6 ~fast =
  header "EXP6  Same-key encryption/OMAC interaction on [12] (paper Sect. 3.3)";
  let trials = if fast then 10 else 100 in
  let ctx = { B.index_table = 1000; node_row = 4; kind = B.Leaf } in
  let run name mac_key_bytes =
    let rng = Rng.create ~seed:106L () in
    let codec =
      Secdb_schemes.Index12.codec ~e:e_cbc0
        ~mac_cipher:(Secdb_cipher.Aes.cipher ~key:mac_key_bytes)
        ~rng ~indexed_table:1 ~indexed_col:0 ()
    in
    let ok = ref 0 in
    for t = 1 to trials do
      let value = Value.Text (Rng.ascii rng 47) in
      match MacI.run ~codec ~ctx ~block:16 ~value ~table_row:t ~rng with
      | Ok { MacI.accepted = true; value_changed = true; _ } -> incr ok
      | Ok _ | Error _ -> ()
    done;
    row "  %-28s forged-and-accepted: %d/%d" name !ok trials
  in
  run "E and MAC under same key" key;
  run "independent MAC key" key_mac;
  row "  shape: the shared-key instantiation is fully forgeable; separating keys";
  row "  stops this particular interaction (but not EXP5's leakage)."

(* ----------------------------------------------------------------- EXP7 *)

let exp7 ~fast:_ =
  header "EXP7  Storage overhead of the fixed schemes (paper Sect. 4)";
  row "  %-14s %8s %8s %12s | paper" "aead" "nonce" "tag" "per-cell";
  List.iter
    (fun (name, mk, paper) ->
      let a : Secdb_aead.Aead.t = mk aes in
      row "  %-14s %8d %8d %12d | %s" name a.Secdb_aead.Aead.nonce_size
        a.Secdb_aead.Aead.tag_size
        (Secdb_aead.Aead.stored_overhead a)
        paper)
    [
      ("eax", (fun c -> Secdb_aead.Eax.make c), "32 octets");
      ("ocb+pmac", (fun c -> Secdb_aead.Ocb.make c), "32 octets");
      ("ccfb", Secdb_aead.Ccfb.make, "16 octets (96-bit nonce, 32-bit tag)");
      ( "etm(hmac)",
        (fun c -> Secdb_aead.Compose.encrypt_then_mac ~cipher:c ~mac_key:key_mac ()),
        "- (not in paper)" );
    ];
  row "  (the cell layer adds 12 bytes of framing on top; the associated data --";
  row "   the cell address -- is authenticated but never stored, as the fix requires)"

(* ----------------------------------------------------------------- EXP8 *)

let exp8 ~fast =
  header "EXP8  Blockcipher invocations per encryption (paper Sect. 4)";
  row "  n = plaintext blocks, m = associated-data blocks";
  row "  %-10s %4s %4s %10s %18s" "aead" "n" "m" "measured" "paper formula";
  let count mk n m =
    let wrapped, counters = Secdb_cipher.Counting.wrap aes in
    let a : Secdb_aead.Aead.t = mk wrapped in
    Secdb_cipher.Counting.reset counters;
    ignore
      (Secdb_aead.Aead.encrypt a
         ~nonce:(String.make a.Secdb_aead.Aead.nonce_size 'N')
         ~ad:(String.make (16 * m) 'H')
         (String.make (16 * n) 'M'));
    counters.Secdb_cipher.Counting.enc_calls
  in
  let shapes = if fast then [ (1, 1); (4, 1) ] else [ (1, 1); (2, 1); (4, 1); (16, 1); (64, 2) ] in
  List.iter
    (fun (n, m) ->
      row "  %-10s %4d %4d %10d %14d = 2n+m+1" "eax" n m (count (fun c -> Secdb_aead.Eax.make c) n m)
        ((2 * n) + m + 1);
      row "  %-10s %4d %4d %10d %14d = n+m+5 (ours: n+m+4)" "ocb+pmac" n m
        (count (fun c -> Secdb_aead.Ocb.make c) n m) (n + m + 5);
      row "  %-10s %4d %4d %10d %14d = ceil(16n/12)+m+3" "ccfb" n m
        (count Secdb_aead.Ccfb.make n m)
        (((16 * n) + 11) / 12 + m + 3))
    shapes;
  row "  shape: EAX costs two passes (2n), OCB one (n), CCFB 4/3 -- matching the";
  row "  paper's ordering.  EAX hits the paper's formula exactly after its 6";
  row "  precomputed calls; our OCB+PMAC shares one subkey derivation (-1 call)."

(* ----------------------------------------------------------------- EXP9 *)

let exp9 ~fast =
  header "EXP9  Wall-clock encryption throughput (bechamel, T-table AES)";
  let open Bechamel in
  let sizes = if fast then [ 64; 1024 ] else [ 64; 256; 1024; 4096 ] in
  let e_fast = Einst.cbc_zero_iv aes_fast in
  let fixed_fast mk =
    let aead = mk aes_fast in
    Secdb_schemes.Fixed_cell.make ~aead
      ~nonce:(Secdb_aead.Nonce.counter ~size:aead.Secdb_aead.Aead.nonce_size ())
      ()
  in
  let schemes =
    [
      ("append-cbc0", Secdb_schemes.Cell_append.make ~e:e_fast ~mu);
      ("xor-cbc0", Secdb_schemes.Cell_xor.make ~e:e_fast ~mu ~validate:(fun _ -> true) ());
      ("fixed-eax", fixed_fast (fun c -> Secdb_aead.Eax.make c));
      ("fixed-ocb", fixed_fast (fun c -> Secdb_aead.Ocb.make c));
      ("fixed-ccfb", fixed_fast Secdb_aead.Ccfb.make);
      ("fixed-gcm", fixed_fast (fun c -> Secdb_aead.Gcm.make c));
      ( "fixed-etm",
        fixed_fast (fun c -> Secdb_aead.Compose.encrypt_then_mac ~cipher:c ~mac_key:key_mac ())
      );
      ( "siv-det",
        Secdb_schemes.Fixed_cell.make
          ~aead:(Secdb_aead.Siv.make (Secdb_cipher.Aes_fast.cipher ~key:key_mac) aes_fast)
          ~nonce:(Secdb_aead.Nonce.fixed (String.make 16 '\000'))
          () );
    ]
  in
  let addr = Address.v ~table:1 ~row:7 ~col:0 in
  let tests =
    List.concat_map
      (fun size ->
        let value = String.make size 'v' in
        List.map
          (fun (name, scheme) ->
            Test.make
              ~name:(Printf.sprintf "%s/%dB" name size)
              (Staged.stage (fun () ->
                   ignore (Secdb_schemes.Cell_scheme.encrypt scheme addr value))))
          schemes)
      sizes
  in
  let grouped = Test.make_grouped ~name:"cell-encrypt" tests in
  let quota = if fast then 0.05 else 0.25 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some [ ns ] -> (name, ns) :: acc
        | _ -> acc)
      results []
  in
  row "  %-34s %14s %14s" "scheme/size" "ns/op" "MB/s";
  List.iter
    (fun (name, ns) ->
      let size =
        match String.split_on_char '/' name with
        | [ _; _; s ] -> ( try Scanf.sscanf s "%dB" Fun.id with _ -> 0)
        | _ -> 0
      in
      let mbps = if ns > 0.0 then float_of_int size /. ns *. 953.67 else 0.0 in
      row "  %-34s %14.0f %14.1f" name ns mbps)
    (List.sort compare rows);
  row "  shape: one-pass OCB/CCFB/EtM beat two-pass EAX; all fixed schemes pay a";
  row "  small constant over the broken CBC schemes for nonce+tag handling."

(* ---------------------------------------------------------------- EXP10 *)

let exp10 ~fast =
  header "EXP10  Client-walk communication rounds (paper Remark 1)";
  let n = if fast then 2_000 else 20_000 in
  row "  %d keys, AEAD-fixed index; rounds ~ ceil(log_d N)" n;
  row "  %6s %8s %8s %14s" "d" "height" "rounds" "bytes->client";
  List.iter
    (fun order ->
      let codec =
        Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes_fast)
          ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
          ~indexed_table:1 ~indexed_col:0 ()
      in
      let t = B.create ~order ~id:1000 ~codec () in
      for i = 0 to n - 1 do
        B.insert t (Value.Int (Int64.of_int ((i * 7919) mod n))) ~table_row:i
      done;
      let _, stats = CW.find t (Value.Int (Int64.of_int (n / 3))) in
      row "  %6d %8d %8d %14d" order (B.height t) stats.CW.rounds stats.CW.bytes_to_client)
    (if fast then [ 2; 16 ] else [ 2; 4; 16; 64 ]);
  row "  shape: logarithmically many rounds, falling with fan-out d -- the paper's";
  row "  \"worthwhile if the index uses d-ary B+-trees with d >= 2\"."

(* ---------------------------------------------------------------- EXP11 *)

let exp11 ~fast:_ =
  header "EXP11  Keystream reuse under CTR/OFB instantiations (paper footnote 2)";
  let stream = Secdb_schemes.Cell_append.make ~e:(Einst.ctr_zero aes) ~mu in
  let v1 = "public notice: visiting hours are 9am to 5pm daily" in
  let v2 = "secret: patient 0231 diagnosed with hypertension.." in
  let c1 = Secdb_schemes.Cell_scheme.encrypt stream (Address.v ~table:1 ~row:0 ~col:0) v1 in
  let c2 = Secdb_schemes.Cell_scheme.encrypt stream (Address.v ~table:1 ~row:1 ~col:0) v2 in
  let rec_ =
    Xbytes.take (String.length v2)
      (KS.crib_drag ~known:v1 ~xor:(KS.plaintext_xor_append ~ct_a:c1 ~ct_b:c2))
  in
  row "  one known cell decrypts its neighbours: recovered %d/%d bytes, exact=%b"
    (String.length rec_) (String.length v2) (rec_ = v2);
  let fixed = fixed_scheme () in
  let c1f = Secdb_schemes.Cell_scheme.encrypt fixed (Address.v ~table:1 ~row:0 ~col:0) v1 in
  let c2f = Secdb_schemes.Cell_scheme.encrypt fixed (Address.v ~table:1 ~row:1 ~col:0) v2 in
  let xf = KS.plaintext_xor_append ~ct_a:c1f ~ct_b:c2f in
  let recf = KS.crib_drag ~known:v1 ~xor:xf in
  row "  against the fix the same attack yields noise: 8-byte match=%b"
    (Xbytes.take 8 recf = Xbytes.take 8 v2)

(* ---------------------------------------------------------------- EXP12 *)

let exp12 ~fast =
  header "EXP12  Leaf-level integrity bug in the [12] query pseudo-code (footnote 1)";
  let n = if fast then 40 else 200 in
  let run name codec =
    let tree = B.create ~order:4 ~id:1000 ~codec () in
    for i = 0 to n - 1 do
      B.insert tree (Value.Int (Int64.of_int (i mod 16))) ~table_row:i
    done;
    let leaves = ref [] in
    B.iter_nodes
      (fun v ->
        if v.B.node_kind = B.Leaf && Array.length v.B.payloads > 0 then leaves := v :: !leaves)
      tree;
    (match !leaves with
    | a :: b :: _ -> B.set_payload tree ~row:a.B.row ~slot:0 b.B.payloads.(0)
    | _ -> ());
    let outcome mode =
      match Secdb_query.Walker.range tree ~mode () with
      | Ok a -> Printf.sprintf "silently returned %d results" (List.length a.results)
      | Error _ -> "DETECTED"
    in
    row "  %-22s published: %-30s corrected: %s" name
      (outcome Secdb_query.Walker.Published)
      (outcome Secdb_query.Walker.Corrected)
  in
  run "index12 (same key)"
    (Secdb_schemes.Index12.codec ~e:e_cbc0 ~mac_cipher:aes ~rng:(Rng.create ~seed:112L ())
       ~indexed_table:1 ~indexed_col:0 ());
  run "index3" (Secdb_schemes.Index3.codec ~e:e_cbc0);
  run "fixed-eax"
    (Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes)
       ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
       ~indexed_table:1 ~indexed_col:0 ());
  row "  shape: the published pseudo-code misses leaf tampering on the analysed";
  row "  schemes; the AEAD fix cannot decrypt without verifying, so the bug is";
  row "  unexpressible there."

(* ---------------------------------------------------------------- EXP13 *)

let exp13 ~fast =
  header "EXP13  Ablation: index-maintenance cost of position binding";
  row "  payloads are bound to their node row r_I, so splits/borrows/merges must";
  row "  decode+re-encode every moved entry; codec operations per insert:";
  let n = if fast then 500 else 5000 in
  row "  %-22s %8s %10s %10s %14s" "codec" "order" "encodes" "decodes" "ops/insert";
  List.iter
    (fun order ->
      List.iter
        (fun (name, codec) ->
          let wrapped, counters = Secdb_index.Codec_instr.wrap codec in
          let tree = B.create ~order ~id:1000 ~codec:wrapped () in
          let rng = Rng.create ~seed:113L () in
          for i = 0 to n - 1 do
            B.insert tree (Value.Int (Int64.of_int (Rng.int rng n))) ~table_row:i
          done;
          row "  %-22s %8d %10d %10d %14.2f" name order
            counters.Secdb_index.Codec_instr.encodes counters.Secdb_index.Codec_instr.decodes
            (float_of_int
               (counters.Secdb_index.Codec_instr.encodes
               + counters.Secdb_index.Codec_instr.decodes)
            /. float_of_int n))
        [
          ("plain", B.plain_codec);
          ("index3-cbc0", Secdb_schemes.Index3.codec ~e:e_cbc0);
          ( "fixed-eax",
            Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes)
              ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
              ~indexed_table:1 ~indexed_col:0 () );
        ])
    (if fast then [ 4 ] else [ 4; 32 ]);
  row "  shape: identical codec-call counts across schemes -- position binding";
  row "  costs the same number of re-encodings whatever the cryptography; only";
  row "  the per-call price differs (EXP9)."

(* ---------------------------------------------------------------- EXP14 *)

let exp14 ~fast =
  header "EXP14  Frequency analysis of deterministic cell encryption";
  row "  public value distribution; adversary ranks ciphertext buckets by count";
  let scale = if fast then 1 else 4 in
  let distribution =
    [
      (String.make 24 'A' ^ "very common value....", 40 * scale);
      (String.make 24 'B' ^ "common value.........", 25 * scale);
      (String.make 24 'C' ^ "occasional value.....", 12 * scale);
      (String.make 24 'D' ^ "rare value...........", 5 * scale);
      (String.make 24 'E' ^ "unique value.........", 1);
    ]
  in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 distribution in
  row "  %-28s %10s %12s" "scheme" "buckets" "recovered";
  let run name scheme extract =
    let r =
      Secdb_attacks.Frequency.attack ~scheme ?extract ~block:16 ~table:1 ~col:0
        ~distribution (Rng.create ~seed:114L ())
    in
    row "  %-28s %10d %9d/%d" name r.Secdb_attacks.Frequency.buckets
      r.Secdb_attacks.Frequency.recovered total
  in
  run "append[cbc0]" append_scheme None;
  run "fixed[eax]" (fixed_scheme ()) (Some PM.extract_fixed_cell);
  (* a Zipf-shaped column, the realistic case for e.g. diagnoses *)
  let zipf_rng = Rng.create ~seed:116L () in
  let zipf_dist =
    List.map
      (fun (rank, count) -> (Printf.sprintf "zipf value %03d %s" rank (String.make 24 'z'), count))
      (Dist.counts_of_samples zipf_rng
         ~sampler:(fun r -> Dist.zipf r ~n:30 ~s:1.1)
         ~draws:(total * 2))
  in
  let zr =
    Secdb_attacks.Frequency.attack ~scheme:append_scheme ~block:16 ~table:1 ~col:0
      ~distribution:zipf_dist (Rng.create ~seed:114L ())
  in
  row "  %-28s %10d %9d/%d  (Zipf s=1.1 column)" "append[cbc0], zipf"
    zr.Secdb_attacks.Frequency.buckets
    zr.Secdb_attacks.Frequency.recovered
    (List.fold_left (fun a (_, c) -> a + c) 0 zipf_dist);
  row "  shape: determinism lets rank matching assign every cell its plaintext";
  row "  (skewed columns recover the uniquely-ranked mass; ties stay ambiguous);";
  row "  the randomised fix leaves one singleton bucket per cell (nothing to rank)."

(* ---------------------------------------------------------------- EXP15 *)

let exp15 ~fast =
  header "EXP15  Ablation: deterministic-but-authenticated encryption (AES-SIV)";
  row "  the analysed scheme wanted determinism for searchability; SIV with a";
  row "  constant nonce keeps exact-equality search and loses every attack:";
  let k2 = aes in
  let k1 = Secdb_cipher.Aes.cipher ~key:key_mac in
  let siv_det =
    Secdb_schemes.Fixed_cell.make
      ~ad_of:(fun addr ->
        Xbytes.int_to_be_string ~width:8 addr.Address.table
        ^ Xbytes.int_to_be_string ~width:8 addr.Address.col)
      ~aead:(Secdb_aead.Siv.make k1 k2)
      ~nonce:(Secdb_aead.Nonce.fixed (String.make 16 '\000'))
      ()
  in
  let n = if fast then 16 else 40 in
  let rng = Rng.create ~seed:115L () in
  let w = shared_prefix_workload rng ~n ~prefix_blocks:2 in
  (* add exact duplicates to measure equality leakage *)
  let w = w @ List.map (fun (i, v) -> (i + n, v)) (List.filteri (fun i _ -> i < 4) w) in
  row "  %-22s %12s %12s %10s  %s" "scheme" "prefix-leak" "eq-classes" "forgery" "relocation";
  let analyse name scheme extract =
    let r = PM.cells ~scheme ?extract ~block:16 ~table:1 ~col:0 w in
    let classes = Hashtbl.create 32 in
    List.iter
      (fun (i, v) ->
        let ct = scheme.Secdb_schemes.Cell_scheme.encrypt (Address.v ~table:1 ~row:i ~col:0) v in
        (* equality classes over value-only storage: strip the address from
           the comparison by bucketing on the decrypted-equal relation the
           adversary can test — here raw bytes sans framing *)
        let key = match extract with Some f -> f ct | None -> ct in
        Hashtbl.replace classes key ())
      w;
    let forge =
      Forgery.success_rate ~scheme ~block:16 ~table:1 ~col:0 ~value_len:64
        ~trials:(if fast then 10 else 50) ~rng
    in
    let reloc =
      let v = Rng.ascii rng 32 in
      let ct = scheme.Secdb_schemes.Cell_scheme.encrypt (Address.v ~table:1 ~row:0 ~col:0) v in
      let within =
        match scheme.Secdb_schemes.Cell_scheme.decrypt (Address.v ~table:1 ~row:1 ~col:0) ct with
        | Ok _ -> "in-col:accept"
        | Error _ -> "in-col:reject"
      in
      let across =
        match scheme.Secdb_schemes.Cell_scheme.decrypt (Address.v ~table:1 ~row:0 ~col:1) ct with
        | Ok _ -> "x-col:accept"
        | Error _ -> "x-col:reject"
      in
      within ^ " " ^ across
    in
    row "  %-22s %12d %12d %10.2f  %s" name r.PM.detected_pairs (Hashtbl.length classes)
      forge reloc
  in
  analyse "append[cbc0]" append_scheme None;
  analyse "fixed[eax]" (fixed_scheme ()) (Some PM.extract_fixed_cell);
  analyse "siv-deterministic" siv_det (Some PM.extract_fixed_cell);
  row "  shape: SIV-deterministic shows no prefix leak and no forgeries, and its";
  row "  equality classes collapse the %d cells' duplicates -- the searchability"
    (List.length w);
  row "  the analysed scheme's determinism assumption was after, bought at the";
  row "  price of within-column relocation (cross-column moves still rejected)."

(* ---------------------------------------------------------------- EXP16 *)

let exp16 ~fast =
  header "EXP16  Substrate throughput (bechamel): primitives underpinning EXP9";
  let open Bechamel in
  let blk = String.make 16 'b' in
  let msg = String.make 4096 'm' in
  let des = Secdb_cipher.Des.cipher ~key:(String.make 8 'k') in
  let des3 = Secdb_cipher.Des3.cipher ~key:(String.make 24 'k') in
  let tests =
    [
      Test.make ~name:"aes128-byte/block" (Staged.stage (fun () -> ignore (aes.encrypt blk)));
      Test.make ~name:"aes128-ttable/block"
        (Staged.stage (fun () -> ignore (aes_fast.encrypt blk)));
      Test.make ~name:"des/block"
        (Staged.stage (fun () -> ignore (des.Secdb_cipher.Block.encrypt (String.make 8 'p'))));
      Test.make ~name:"3des/block"
        (Staged.stage (fun () -> ignore (des3.Secdb_cipher.Block.encrypt (String.make 8 'p'))));
      Test.make ~name:"sha1/4KiB" (Staged.stage (fun () -> ignore (Secdb_hash.Sha1.digest msg)));
      Test.make ~name:"sha256/4KiB"
        (Staged.stage (fun () -> ignore (Secdb_hash.Sha256.digest msg)));
      Test.make ~name:"md5/4KiB" (Staged.stage (fun () -> ignore (Secdb_hash.Md5.digest msg)));
      Test.make ~name:"cmac/4KiB"
        (Staged.stage (fun () -> ignore (Secdb_mac.Cmac.mac aes_fast msg)));
      Test.make ~name:"pmac/4KiB"
        (Staged.stage (fun () -> ignore (Secdb_mac.Pmac.mac aes_fast msg)));
      Test.make ~name:"hmac-sha256/4KiB"
        (Staged.stage (fun () ->
             ignore (Secdb_hash.Hmac.mac Secdb_hash.Hmac.sha256 ~key:"k" msg)));
    ]
  in
  let grouped = Test.make_grouped ~name:"prim" tests in
  let quota = if fast then 0.05 else 0.2 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with Some [ ns ] -> (name, ns) :: acc | _ -> acc)
      results []
  in
  row "  %-28s %14s" "primitive" "ns/op";
  List.iter (fun (name, ns) -> row "  %-28s %14.0f" name ns) (List.sort compare rows);
  row "  (the T-table AES is what the Encdb layer uses; the byte-wise reference";
  row "   exists for cross-checking and the S-box derivation)"

(* ---------------------------------------------------------------- EXP17 *)

let exp17 ~fast =
  header "EXP17  Padding-oracle decryption of CBC cells (Vaudenay 2002)";
  row "  the Append-Scheme's failures are distinguishable (bad padding vs bad";
  row "  address checksum): that alone decrypts every cell without the key";
  let scheme = Secdb_schemes.Cell_append.make ~e:(Einst.cbc_zero_iv aes_fast) ~mu in
  let addr = Address.v ~table:1 ~row:7 ~col:0 in
  let secret =
    if fast then "short secret....."
    else "attn: patient is allergic to penicillin -- do not administer"
  in
  let ct = Secdb_schemes.Cell_scheme.encrypt scheme addr secret in
  let calls = ref 0 in
  let base = Secdb_attacks.Padding_oracle.oracle_of_scheme scheme addr in
  let oracle c = incr calls; base c in
  (match Secdb_attacks.Padding_oracle.decrypt_ciphertext ~oracle ~block:16 ct with
  | Some plain ->
      row "  recovered %d bytes with %d oracle calls; exact=%b (mu recovered too=%b)"
        (String.length secret) !calls
        (Xbytes.take (String.length secret) plain = secret)
        (Xbytes.take 16 (Xbytes.drop (String.length secret) plain) = mu.Address.digest addr)
  | None -> row "  attack failed (unexpected)");
  let fixed = fixed_scheme () in
  let rng = Rng.create ~seed:117L () in
  row "  oracle exists: broken=%b, fixed=%b (AEAD returns one undistinguished error)"
    (Secdb_attacks.Padding_oracle.oracle_exists scheme addr ~trials:300 ~rng)
    (Secdb_attacks.Padding_oracle.oracle_exists fixed addr ~trials:300 ~rng)

(* ---------------------------------------------------------------- EXP18 *)

let exp18 ~fast =
  header "EXP18  Chosen-record dictionary attack on deterministic cells";
  let n = if fast then 20 else 100 in
  let rng = Rng.create ~seed:118L () in
  let universe =
    Array.init 40 (fun i -> Printf.sprintf "candidate value %02d %s" i (Rng.ascii rng 20))
  in
  let victims = List.init n (fun row -> (row, Rng.pick rng universe)) in
  let candidates = Array.to_list universe in
  let run name scheme extract =
    let r =
      Secdb_attacks.Dictionary.attack ~scheme ?extract ~block:16 ~table:1 ~col:0 ~candidates
        ~victims n
    in
    row "  %-28s recovered %d/%d victims with %d injected records" name
      (List.length r.Secdb_attacks.Dictionary.recovered)
      n r.Secdb_attacks.Dictionary.injected
  in
  run "append[cbc0]" append_scheme None;
  run "fixed[eax]" (fixed_scheme ()) (Some PM.extract_fixed_cell);
  row "  shape: no distributional knowledge needed -- determinism plus the power";
  row "  to insert rows recovers every guessable value exactly."

(* ---------------------------------------------------------------- EXP19 *)

let exp19 ~fast =
  header "EXP19  Ablation: bulk loading vs incremental index construction";
  row "  codec operations to index an existing column of n rows:";
  let sizes = if fast then [ 500; 2000 ] else [ 1000; 10_000; 50_000 ] in
  row "  %8s %22s %22s" "n" "incremental (ops)" "bulk (ops)";
  List.iter
    (fun n ->
      let rng = Rng.create ~seed:119L () in
      let values = List.init n (fun i -> (Value.Int (Int64.of_int (Rng.int rng n)), i)) in
      let count f =
        let wrapped, counters = Secdb_index.Codec_instr.wrap B.plain_codec in
        f wrapped;
        counters.Secdb_index.Codec_instr.encodes + counters.Secdb_index.Codec_instr.decodes
      in
      let inc =
        count (fun codec ->
            let t = B.create ~order:8 ~id:1 ~codec () in
            List.iter (fun (v, r) -> B.insert t v ~table_row:r) values)
      in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> Value.compare a b) values in
      let bulk = count (fun codec -> ignore (B.bulk_load ~order:8 ~id:1 ~codec sorted)) in
      row "  %8d %17d %4.1f/n %17d %4.1f/n" n inc
        (float_of_int inc /. float_of_int n)
        bulk
        (float_of_int bulk /. float_of_int n))
    sizes;
  row "  shape: bulk loading costs exactly one encode per entry; incremental";
  row "  construction pays O(log n) decodes per insert plus split re-encoding --";
  row "  which is why Encdb.create_index decrypts, sorts, and bulk-loads."

(* ---------------------------------------------------------------- EXP20 *)

let exp20 ~fast =
  header "EXP20  Residual leak of the FIX: structure-preserving indexes leak order";
  row "  a persistent adversary snapshots the (AEAD-protected) index around each";
  row "  insert; the new entry's leaf-chain position is its rank among all values";
  let n0 = if fast then 200 else 1000 in
  let watches = if fast then 25 else 100 in
  let range = 10_000 in
  let rng = Rng.create ~seed:120L () in
  let codec =
    Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes_fast)
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
      ~indexed_table:1 ~indexed_col:0 ()
  in
  let tree = B.create ~order:4 ~id:1000 ~codec () in
  for i = 0 to n0 - 1 do
    B.insert tree (Value.Int (Int64.of_int (Rng.int rng range))) ~table_row:i
  done;
  let errs = ref [] and missed = ref 0 in
  for i = 0 to watches - 1 do
    let secret = Rng.int rng range in
    let before = B.snapshot tree in
    B.insert tree (Value.Int (Int64.of_int secret)) ~table_row:(n0 + i);
    (match Secdb_attacks.Structure_leak.observe_insert ~before ~after:(B.snapshot tree) with
    | Some obs ->
        let est =
          Secdb_attacks.Structure_leak.estimate_uniform obs ~lo:0.0 ~hi:(float_of_int range)
        in
        errs := Float.abs (est -. float_of_int secret) :: !errs
    | None -> incr missed)
  done;
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
  row "  backdrop %d entries, %d watched inserts: all observed=%b" n0 watches (!missed = 0);
  row "  mean |estimate - secret| = %.0f of range %d (blind guessing: ~%d)"
    (mean !errs) range (range / 4);
  row "  shape: AEAD protects contents and positions, but the paper's own design";
  row "  goal -- \"preserve the structure of the index\" -- hands a persistent";
  row "  adversary the rank of every inserted value.  Fixing THIS needs structure";
  row "  hiding (oblivious indexes), outside the paper's design space."

(* ---------------------------------------------------------------- EXP21 *)

let exp21 ~fast =
  header "EXP21  Leakage in one number: held-out guessing accuracy";
  row "  adversary guesses a cell's value from its stored bytes (leading block),";
  row "  majority rule trained on half the cells, evaluated on the other half";
  let n = if fast then 200 else 1000 in
  let rng = Rng.create ~seed:121L () in
  let universe =
    Array.init 8 (fun i -> Printf.sprintf "value %d %s" i (String.make 24 (Char.chr (65 + i))))
  in
  (* zipf-ish skew so the baseline is non-trivial *)
  let secrets = List.init n (fun _ -> universe.(Dist.zipf rng ~n:8 ~s:1.0)) in
  let k2 = Secdb_cipher.Aes_fast.cipher ~key:key_mac in
  let siv_det =
    Secdb_schemes.Fixed_cell.make
      ~ad_of:(fun addr ->
        Xbytes.int_to_be_string ~width:8 addr.Address.table
        ^ Xbytes.int_to_be_string ~width:8 addr.Address.col)
      ~aead:(Secdb_aead.Siv.make k2 aes_fast)
      ~nonce:(Secdb_aead.Nonce.fixed (String.make 16 '\000'))
      ()
  in
  let observables scheme extract =
    List.mapi
      (fun row secret ->
        let ct = scheme.Secdb_schemes.Cell_scheme.encrypt (Address.v ~table:1 ~row ~col:0) secret in
        (Xbytes.take 16 (match extract with Some f -> f ct | None -> ct), secret))
      secrets
  in
  let h = Secdb_attacks.Leakage.entropy_of_counts
      (List.map snd (Dist.histogram (List.map Hashtbl.hash secrets)))
  in
  row "  secret entropy H = %.2f bits over %d cells; baseline accuracy %.2f" h n
    (Secdb_attacks.Leakage.baseline ~secrets);
  let run name scheme extract =
    let acc =
      Secdb_attacks.Leakage.guessing_accuracy ~pairs:(observables scheme extract)
        (Rng.create ~seed:122L ())
    in
    row "  %-28s accuracy %.2f" name acc
  in
  run "append[cbc0]" append_scheme None;
  run "fixed[eax]" (fixed_scheme ()) (Some PM.extract_fixed_cell);
  run "siv-deterministic" siv_det (Some PM.extract_fixed_cell);
  row "  shape: the broken scheme is fully predictable (acc ~ 1.0); the";
  row "  randomised fix collapses to the baseline; deterministic SIV equals the";
  row "  broken scheme's EQUALITY leak (acc ~ 1.0 here) while stopping every";
  row "  forgery -- the quantified version of EXP15's trade."

(* ---------------------------------------------------------------- EXP22 *)

let exp22 ~fast =
  header "EXP22  Suppression/rollback: the gap above per-cell AEAD, and the anchor";
  let n = if fast then 50 else 500 in
  let db = Secdb.Encdb.create ~master:"anchor" ~profile:(Secdb.Encdb.Fixed Secdb.Encdb.Eax) () in
  Secdb.Encdb.create_table db
    (Secdb_db.Schema.v ~table_name:"t"
       [
         Secdb_db.Schema.column ~protection:Secdb_db.Schema.Clear "id" Value.Kint;
         Secdb_db.Schema.column "v" Value.Ktext;
       ]);
  for i = 0 to n - 1 do
    ignore
      (Secdb.Encdb.insert db ~table:"t"
         [ Value.Int (Int64.of_int i); Value.Text (Printf.sprintf "v%04d" i) ])
  done;
  Secdb.Encdb.create_index db ~table:"t" ~col:"v";
  let anchor = Secdb.Encdb.digest db in
  (* adversary suppresses a row + its index entry directly in storage *)
  Secdb_query.Encrypted_table.delete_row (Secdb.Encdb.table db "t") ~row:(n / 2);
  ignore
    (B.delete (Secdb.Encdb.index db ~table:"t" ~col:"v")
       (Value.Text (Printf.sprintf "v%04d" (n / 2)))
       ~table_row:(n / 2));
  let victim =
    match Secdb.Encdb.select_eq db ~table:"t" ~col:"v" (Value.Text (Printf.sprintf "v%04d" (n / 2))) with
    | Ok rows -> List.length rows
    | Error _ -> -1
  in
  let others =
    match Secdb.Encdb.select_eq db ~table:"t" ~col:"v" (Value.Text "v0001") with
    | Ok rows -> List.length rows
    | Error _ -> -1
  in
  row "  after suppressing one row: victim's record found %d time(s), other queries" victim;
  row "  answer normally (%d result) -- every surviving cell still verifies." others;
  row "  Merkle anchor (32 bytes kept with the master key): match=%b -> DETECTED"
    (Secdb.Encdb.digest db = anchor);
  row "  shape: per-cell authentication cannot see deletion or rollback; a";
  row "  constant-size out-of-band digest over the stored representation can."

(* ---------------------------------------------------------------- EXP23 *)

let exp23 ~fast =
  header "EXP23  Deployment trade-off: keys at the server vs the client walk";
  row "  the paper's model hands keys to the DBMS for the session (one round per";
  row "  query, server does all crypto); Remark 1 keeps keys at the client";
  let n = if fast then 2_000 else 10_000 in
  let ncols = 3 in
  (* component-level build with instrumented codec and cell scheme *)
  let codec, codec_counters =
    Secdb_index.Codec_instr.wrap
      (Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes_fast)
         ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
         ~indexed_table:1 ~indexed_col:1 ())
  in
  let cell_decrypts = ref 0 in
  let base_scheme =
    Secdb_schemes.Fixed_cell.make ~aead:(Secdb_aead.Eax.make aes_fast)
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ~start:1_000_000 ())
      ()
  in
  let scheme =
    {
      base_scheme with
      Secdb_schemes.Cell_scheme.decrypt =
        (fun addr ct ->
          incr cell_decrypts;
          base_scheme.Secdb_schemes.Cell_scheme.decrypt addr ct);
    }
  in
  let schema =
    Secdb_db.Schema.v ~table_name:"t"
      [
        Secdb_db.Schema.column ~protection:Secdb_db.Schema.Clear "id" Value.Kint;
        Secdb_db.Schema.column "k" Value.Kint;
        Secdb_db.Schema.column "v" Value.Ktext;
      ]
  in
  let tbl = Secdb_query.Encrypted_table.create ~id:1 schema ~scheme:(fun _ -> scheme) in
  let rng = Rng.create ~seed:123L () in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let k = Rng.int rng n in
    ignore
      (Secdb_query.Encrypted_table.insert tbl
         [ Value.Int (Int64.of_int i); Value.Int (Int64.of_int k); Value.Text (Rng.ascii rng 24) ]);
    entries := (Value.Int (Int64.of_int k), i) :: !entries
  done;
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Value.compare a b) !entries in
  let tree = B.bulk_load ~order:8 ~id:1000 ~codec sorted in
  let lo = Value.Int (Int64.of_int (n / 4)) and hi = Value.Int (Int64.of_int (n / 4 + n / 20)) in
  (* --- server-side: one request, one response with decrypted rows --- *)
  Secdb_index.Codec_instr.reset codec_counters;
  cell_decrypts := 0;
  let results =
    match Secdb_query.Walker.range tree ~mode:Secdb_query.Walker.Corrected ~lo ~hi () with
    | Ok a -> a.Secdb_query.Walker.results
    | Error e -> failwith e
  in
  let response_bytes =
    List.fold_left
      (fun acc (_, r) ->
        List.fold_left
          (fun acc c ->
            acc + String.length (Value.encode (Secdb_query.Encrypted_table.get_exn tbl ~row:r ~col:c)))
          acc
          [ 0; 1; 2 ])
      0 results
  in
  let server_ops = codec_counters.Secdb_index.Codec_instr.decodes + !cell_decrypts in
  row "  %-14s %8s %14s %12s %12s" "mode" "rounds" "bytes->client" "server-ops" "client-ops";
  row "  %-14s %8d %14d %12d %12d" "server-side" 2 response_bytes server_ops 0;
  (* --- client walk: log-many rounds, zero server crypto --- *)
  Secdb_index.Codec_instr.reset codec_counters;
  cell_decrypts := 0;
  let results', stats = CW.range tree ~lo ~hi () in
  let fetch_rounds = ref 0 and fetch_bytes = ref 0 in
  List.iter
    (fun (_, r) ->
      incr fetch_rounds;
      for c = 0 to ncols - 1 do
        match Secdb_query.Encrypted_table.raw_ciphertext tbl ~row:r ~col:c with
        | Some ct ->
            fetch_bytes := !fetch_bytes + String.length ct;
            (* the client decrypts the fetched cell *)
            ignore (Secdb_query.Encrypted_table.get_exn tbl ~row:r ~col:c)
        | None -> fetch_bytes := !fetch_bytes + 9 (* clear int cell on the wire *)
      done)
    results';
  let client_ops = codec_counters.Secdb_index.Codec_instr.decodes + !cell_decrypts in
  row "  %-14s %8d %14d %12d %12d" "client-walk"
    (stats.CW.rounds + !fetch_rounds)
    (stats.CW.bytes_to_client + !fetch_bytes)
    0 client_ops;
  row "  (query: k in [%d, %d], %d results over %d rows; identical answers=%b)"
    (n / 4) (n / 4 + n / 20) (List.length results) n (results = results');
  row "  shape: handing keys to the server buys a 2-message protocol at the cost";
  row "  of trusting it; the client walk trades ~log N + k extra rounds and raw";
  row "  ciphertext on the wire for a server that never holds a key -- the";
  row "  paper's Remark 1, quantified."

(* ---------------------------------------------------------------- EXP24 *)

let exp24 ~fast =
  header "EXP24  Buffer-pool behaviour of encrypted index traversals";
  row "  index nodes stored one-per-page; random lookups replayed through an";
  row "  LRU buffer pool of varying capacity";
  let n = if fast then 3_000 else 20_000 in
  let queries = if fast then 500 else 3_000 in
  row "  %6s %8s %12s %14s %12s" "d" "cache" "hit-rate" "disk-reads" "pages";
  List.iter
    (fun order ->
      let codec =
        Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes_fast)
          ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
          ~indexed_table:1 ~indexed_col:0 ()
      in
      let rng = Rng.create ~seed:124L () in
      let entries =
        List.init n (fun i -> (Value.Int (Int64.of_int (Rng.int rng n)), i))
        |> List.stable_sort (fun (a, _) (b, _) -> Value.compare a b)
      in
      let tree = B.bulk_load ~order ~id:1000 ~codec entries in
      (* lay every node out on its own page *)
      let path = Filename.concat (Filename.get_temp_dir_name ()) "secdb_exp24.pg" in
      List.iter
        (fun cache_pages ->
          let pager =
            Secdb_storage.Pager.create ~path ~page_size:4096 ~cache_pages ()
          in
          let page_of = Hashtbl.create 256 in
          B.iter_nodes
            (fun v ->
              let page = Secdb_storage.Pager.alloc pager in
              Secdb_storage.Pager.write pager page (String.make 64 'n');
              Hashtbl.replace page_of v.B.row page)
            tree;
          Secdb_storage.Pager.flush pager;
          Secdb_storage.Pager.reset_stats pager;
          let qrng = Rng.create ~seed:125L () in
          for _ = 1 to queries do
            let probe = Value.Int (Int64.of_int (Rng.int qrng n)) in
            List.iter
              (fun node_row ->
                ignore (Secdb_storage.Pager.read pager (Hashtbl.find page_of node_row)))
              (B.path_to tree probe)
          done;
          let st = Secdb_storage.Pager.stats pager in
          let total = st.Secdb_storage.Pager.cache_hits + st.Secdb_storage.Pager.cache_misses in
          row "  %6d %8d %11.1f%% %14d %12d" order cache_pages
            (100.0 *. float_of_int st.Secdb_storage.Pager.cache_hits /. float_of_int total)
            st.Secdb_storage.Pager.disk_reads (B.nnodes tree);
          Secdb_storage.Pager.close pager)
        (if fast then [ 8; 128 ] else [ 8; 64; 512 ]))
    (if fast then [ 4; 64 ] else [ 4; 16; 64 ]);
  row "  shape: the classic B+-tree result, unchanged by encryption: fan-out";
  row "  shrinks both the page count and the working set, so a small pool";
  row "  already captures the root and inner levels; leaves dominate misses."

(* ---------------------------------------------------------------- EXP25 *)

let exp25 ~fast =
  header "EXP25  The Ref_I gap: unauthenticated structure changes query answers";
  let n = if fast then 300 else 2000 in
  let build () =
    let codec =
      Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes_fast)
        ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
        ~indexed_table:1 ~indexed_col:0 ()
    in
    let tree = B.create ~order:4 ~id:1000 ~codec () in
    for i = 0 to n - 1 do
      B.insert tree (Value.Int (Int64.of_int i)) ~table_row:i
    done;
    tree
  in
  let count_found tree =
    let found = ref 0 in
    for probe = 0 to n - 1 do
      match Secdb_query.Walker.equal tree ~mode:Secdb_query.Walker.Corrected
              (Value.Int (Int64.of_int probe)) with
      | Ok a when List.length a.Secdb_query.Walker.results = 1 -> incr found
      | Ok _ | Error _ -> ()
    done;
    !found
  in
  let tree = build () in
  let anchor = Secdb_storage.Merkle.root (Secdb_storage.Storage.index_leaves tree) in
  row "  baseline: %d/%d point lookups answered correctly (fixed AEAD index)"
    (count_found tree) n;
  ignore (Secdb_attacks.Ref_tamper.swap_root_children tree);
  let after_swap = count_found tree in
  let detected = ref 0 in
  for probe = 0 to n - 1 do
    match Secdb_query.Walker.equal tree ~mode:Secdb_query.Walker.Corrected
            (Value.Int (Int64.of_int probe)) with
    | Error _ -> incr detected
    | Ok _ -> ()
  done;
  row "  after swapping the root's first two child pointers (no authenticated";
  row "  byte touched):";
  row "    correct answers %d/%d, integrity errors raised: %d" after_swap n !detected;
  let tree2 = build () in
  ignore (Secdb_attacks.Ref_tamper.cut_leaf_chain tree2);
  let full =
    match Secdb_query.Walker.range tree2 ~mode:Secdb_query.Walker.Corrected () with
    | Ok a -> List.length a.Secdb_query.Walker.results
    | Error _ -> -1
  in
  row "  after cutting one sibling link: full range scan silently returns %d/%d" full n;
  row "  the Merkle anchor still catches both: match=%b"
    (Secdb_storage.Merkle.root (Secdb_storage.Storage.index_leaves tree) = anchor);
  row "  shape: [12] names Ref_I in its MAC but no implementable scheme (nor the";
  row "  paper's fix) can authenticate references that rebalancing rewrites";
  row "  without re-MACing whole nodes; structure needs its own integrity story";
  row "  (the EXP22 anchor, or authenticated data structures)."

(* ------------------------------------------------------------------ cli *)

let experiments =
  [
    ("EXP1", exp1); ("EXP2", exp2); ("EXP3", exp3); ("EXP4", exp4); ("EXP5", exp5);
    ("EXP6", exp6); ("EXP7", exp7); ("EXP8", exp8); ("EXP9", exp9); ("EXP10", exp10);
    ("EXP11", exp11); ("EXP12", exp12); ("EXP13", exp13); ("EXP14", exp14);
    ("EXP15", exp15); ("EXP16", exp16); ("EXP17", exp17); ("EXP18", exp18);
    ("EXP19", exp19); ("EXP20", exp20); ("EXP21", exp21); ("EXP22", exp22);
    ("EXP23", exp23); ("EXP24", exp24); ("EXP25", exp25);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let fast = List.mem "--fast" args in
  if List.mem "--list" args then
    List.iter (fun (name, _) -> print_endline name) experiments
  else begin
    let only =
      let rec find = function
        | "--only" :: x :: _ -> Some (String.uppercase_ascii x)
        | _ :: rest -> find rest
        | [] -> None
      in
      find args
    in
    let selected =
      match only with
      | None -> experiments
      | Some name -> List.filter (fun (n, _) -> n = name) experiments
    in
    if selected = [] then begin
      prerr_endline "unknown experiment; use --list";
      exit 1
    end;
    Printf.printf "secdb experiment harness -- reproducing Kuehn (SDM@VLDB 2006)%s\n"
      (if fast then " [fast mode]" else "");
    List.iter (fun (_, f) -> f ~fast) selected
  end

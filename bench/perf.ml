(* Throughput suite for the bulk-encryption engine:

     - cipher x mode MB/s on the [Block.into] kernel path, against the same
       T-table AES forced through the generic string fallback (the only path
       the seed had) — the kernel speedup numbers;
     - AEAD MB/s over the fast AES;
     - batch cells/s for the parallel-safe cell schemes at 1/2/4 domains,
       with the parallel == sequential byte-equality verified on every run;
     - whole-table insert and index bulk-load at 1 vs N domains.

   Usage:

     dune exec bench/perf.exe              # full run, writes BENCH_perf.json
     dune exec bench/perf.exe -- --fast    # reduced workloads
     dune exec bench/perf.exe -- --check   # equality checks only, output is
                                           # deterministic (used by cram)

   [--check] prints nothing but the verdict, so the cram test stays stable
   while still driving every bulk path end to end. *)

open Secdb_util
module Block = Secdb_cipher.Block
module Mode = Secdb_modes.Mode
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Address = Secdb_db.Address
module Einst = Secdb_schemes.Einst
module Fixed_cell = Secdb_schemes.Fixed_cell
module Cell_scheme = Secdb_schemes.Cell_scheme
module B = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table
module Vfs = Secdb_storage.Vfs
module Pager = Secdb_storage.Pager
module Blob_store = Secdb_storage.Blob_store
module Pbt = Secdb_storage.Paged_bptree

let key = Xbytes.of_hex "000102030405060708090a0b0c0d0e0f"
let key_mac = Xbytes.of_hex "ffeeddccbbaa99887766554433221100"
let aes_fast = Secdb_cipher.Aes_fast.cipher ~key

(* The same keyed T-table AES with the fast path stripped: every mode then
   runs block-at-a-time through the [string -> string] closures, exactly as
   the pre-kernel code did.  Comparing against this isolates the kernel win
   from the (identical) round function. *)
let aes_string =
  Block.v ~name:"aes-string" ~block_size:16 ~encrypt:aes_fast.Block.encrypt
    ~decrypt:aes_fast.Block.decrypt ()

let aes_ref = Secdb_cipher.Aes.cipher ~key
let des = Secdb_cipher.Des.cipher ~key:(String.sub key 0 8)
let des3 = Secdb_cipher.Des3.cipher ~key:(key ^ String.sub key_mac 0 8)

(* ------------------------------------------------------------ timing -- *)

let now = Unix.gettimeofday

(* Seconds per call: double the repetition count until a batch runs for at
   least [min_time], then keep the fastest of three batches at that count
   (minimum-of-N damps scheduler and GC noise on a shared machine). *)
let time_per_call ~min_time f =
  ignore (f ());
  let batch reps =
    let t0 = now () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    now () -. t0
  in
  let rec calibrate reps =
    let dt = batch reps in
    if dt >= min_time then (reps, dt) else calibrate (reps * 2)
  in
  let reps, dt0 = calibrate 1 in
  let best = min (min dt0 (batch reps)) (batch reps) in
  best /. float_of_int reps

(* -------------------------------------------------------- workloads -- *)

let payload n =
  String.init n (fun i -> Char.chr (((i * 131) + (i lsr 8)) land 0xff))

let nonce16 = String.init 16 (fun i -> Char.chr (0xf0 lxor i))

(* The payload is built once per (cipher, mode) pair, outside the timed
   closure, so the numbers measure the mode and nothing else. *)
let modes (c : Block.t) len =
  let iv = String.sub nonce16 0 c.Block.block_size in
  let data = payload len in
  [
    ("ecb", fun () -> Mode.ecb_encrypt c data);
    ("cbc-enc", fun () -> Mode.cbc_encrypt c ~iv data);
    ("cbc-dec", fun () -> Mode.cbc_decrypt c ~iv data);
    ("ctr", fun () -> Mode.ctr c ~nonce:iv data);
    ("ofb", fun () -> Mode.ofb c ~iv data);
    ("cfb-enc", fun () -> Mode.cfb_encrypt c ~iv data);
  ]

let aeads =
  [
    ("eax", Secdb_aead.Eax.make aes_fast);
    ("ocb+pmac", Secdb_aead.Ocb.make aes_fast);
    ("ccfb", Secdb_aead.Ccfb.make aes_fast);
    ("gcm", Secdb_aead.Gcm.make aes_fast);
    ( "etm(hmac)",
      Secdb_aead.Compose.encrypt_then_mac ~cipher:aes_fast ~mac_key:key_mac () );
    ( "siv",
      Secdb_aead.Siv.make (Secdb_cipher.Aes_fast.cipher ~key:key_mac) aes_fast );
  ]

let mu = Address.mu_sha1 ~width:16

let cell_schemes () =
  let e_fast = Einst.cbc_zero_iv aes_fast in
  [
    ("append-cbc0", Secdb_schemes.Cell_append.make ~e:e_fast ~mu);
    ( "xor-cbc0",
      Secdb_schemes.Cell_xor.make ~e:e_fast ~mu ~validate:(fun _ -> true) () );
    ( "fixed-eax-derived",
      Fixed_cell.make_derived ~aead:(Secdb_aead.Eax.make aes_fast)
        ~nonce_key:key_mac () );
  ]

(* The seed's AES-CTR path, reproduced exactly in shape for the
   before/after comparison the kernel numbers are measured against:
   an array-scratch block function (two scratch arrays, a blit per round,
   a string per block) driven by the old keystream loop (a counter copy
   and a truncated keystream string per block). *)
module Seed_path = struct
  let te0, te1, te2, te3 =
    let xtime x =
      let x2 = x lsl 1 in
      if x land 0x80 <> 0 then (x2 lxor 0x1b) land 0xff else x2
    in
    let gmul a b =
      let rec loop a b acc =
        if b = 0 then acc
        else loop (xtime a) (b lsr 1) (if b land 1 <> 0 then acc lxor a else acc)
      in
      loop a b 0
    in
    let rotr32 w n = ((w lsr n) lor (w lsl (32 - n))) land 0xffffffff in
    let t0 = Array.make 256 0 in
    for x = 0 to 255 do
      let s = Secdb_cipher.Aes.sbox.(x) in
      t0.(x) <- (gmul s 2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor gmul s 3
    done;
    ( t0,
      Array.map (fun w -> rotr32 w 8) t0,
      Array.map (fun w -> rotr32 w 16) t0,
      Array.map (fun w -> rotr32 w 24) t0 )

  let rounds = 10

  let ek =
    let bytes = Secdb_cipher.Aes.round_key_bytes (Secdb_cipher.Aes.expand_key key) in
    Array.init
      (Array.length bytes / 4)
      (fun i ->
        (bytes.(4 * i) lsl 24)
        lor (bytes.((4 * i) + 1) lsl 16)
        lor (bytes.((4 * i) + 2) lsl 8)
        lor bytes.((4 * i) + 3))

  let b0 w = (w lsr 24) land 0xff
  let b1 w = (w lsr 16) land 0xff
  let b2 w = (w lsr 8) land 0xff
  let b3 w = w land 0xff

  let encrypt_block block =
    let w = Array.init 4 (fun c -> Xbytes.get_uint32_be block (4 * c)) in
    for c = 0 to 3 do
      w.(c) <- w.(c) lxor ek.(c)
    done;
    let t = Array.make 4 0 in
    for round = 1 to rounds - 1 do
      let rk = 4 * round in
      for c = 0 to 3 do
        t.(c) <-
          te0.(b0 w.(c))
          lxor te1.(b1 w.((c + 1) land 3))
          lxor te2.(b2 w.((c + 2) land 3))
          lxor te3.(b3 w.((c + 3) land 3))
          lxor ek.(rk + c)
      done;
      Array.blit t 0 w 0 4
    done;
    let rk = 4 * rounds in
    let s = Secdb_cipher.Aes.sbox in
    for c = 0 to 3 do
      t.(c) <-
        (s.(b0 w.(c)) lsl 24)
        lor (s.(b1 w.((c + 1) land 3)) lsl 16)
        lor (s.(b2 w.((c + 2) land 3)) lsl 8)
        lor s.(b3 w.((c + 3) land 3))
        lxor ek.(rk + c)
    done;
    let b = Bytes.create 16 in
    Array.iteri (fun c v -> Xbytes.set_uint32_be b (4 * c) v) t;
    Bytes.unsafe_to_string b

  let ctr ~nonce s =
    let blk = Bytes.of_string nonce in
    let counter = ref 0 in
    let next () =
      Xbytes.set_uint32_be blk 12 !counter;
      incr counter;
      encrypt_block (Bytes.to_string blk)
    in
    let out = Bytes.of_string s in
    let off = ref 0 in
    while !off < String.length s do
      let ks = next () in
      let n = min 16 (String.length s - !off) in
      Xbytes.xor_into ~src:(Xbytes.take n ks) ~dst:out ~dst_off:!off;
      off := !off + n
    done;
    Bytes.unsafe_to_string out
end

let cell_jobs n =
  Array.init n (fun i ->
      ( Address.v ~table:1 ~row:i ~col:0,
        Printf.sprintf "row-%06d:%s" i (payload 48) ))

(* ------------------------------------------------------------ checks -- *)

let check_failures = ref []
let fail_check fmt = Printf.ksprintf (fun s -> check_failures := s :: !check_failures) fmt

let check_kernel_vs_string () =
  (* the kernel path and the string fallback must agree byte for byte on
     every mode, for both directions *)
  let data = payload 1024 in
  List.iter2
    (fun (name, f) (_, g) ->
      if f () <> g () then fail_check "kernel/string mismatch: %s" name)
    (modes aes_fast 1024) (modes aes_string 1024);
  let ct = Mode.cbc_encrypt aes_fast ~iv:nonce16 data in
  if Mode.cbc_decrypt aes_string ~iv:nonce16 ct <> data then
    fail_check "cbc roundtrip across paths";
  (* the reference AES and the reproduced seed path agree with the kernel *)
  let kernel_ctr = Mode.ctr aes_fast ~nonce:nonce16 data in
  if Mode.ctr aes_ref ~nonce:nonce16 data <> kernel_ctr then
    fail_check "aes-ref vs aes-fast ctr";
  if Seed_path.ctr ~nonce:nonce16 data <> kernel_ctr then
    fail_check "seed-path ctr vs aes-fast ctr"

let check_parallel_cells pool =
  let jobs = cell_jobs 257 in
  List.iter
    (fun (name, scheme) ->
      let seq = Cell_scheme.encrypt_cells scheme jobs in
      let par = Cell_scheme.encrypt_cells ~pool scheme jobs in
      if seq <> par then fail_check "parallel != sequential: %s" name;
      let dec = Cell_scheme.decrypt_cells ~pool scheme (Array.map2 (fun (a, _) ct -> (a, ct)) jobs par) in
      Array.iteri
        (fun i r ->
          if r <> Ok (snd jobs.(i)) then fail_check "batch decrypt: %s cell %d" name i)
        dec)
    (cell_schemes ())

let check_parallel_table pool =
  let schema =
    Schema.v ~table_name:"perf"
      [
        Schema.column ~protection:Schema.Clear "id" Value.Kint;
        Schema.column "a" Value.Ktext;
        Schema.column "b" Value.Ktext;
      ]
  in
  let scheme _ =
    Fixed_cell.make_derived ~aead:(Secdb_aead.Eax.make aes_fast) ~nonce_key:key_mac ()
  in
  let rows =
    List.init 101 (fun i ->
        [ Value.Int (Int64.of_int i);
          Value.Text (Printf.sprintf "a%04d" i);
          Value.Text (payload (16 + (i mod 40))) ])
  in
  let seq = Etable.create ~id:3 schema ~scheme in
  List.iter (fun r -> ignore (Etable.insert seq r)) rows;
  let par = Etable.create ~id:3 schema ~scheme in
  Etable.insert_many ~pool par rows;
  for row = 0 to List.length rows - 1 do
    for col = 1 to 2 do
      if Etable.raw_ciphertext seq ~row ~col <> Etable.raw_ciphertext par ~row ~col then
        fail_check "insert_many != insert loop at (%d,%d)" row col
    done
  done;
  match Etable.decrypt_column ~pool par ~col:2 with
  | cols ->
      Array.iteri
        (fun row c ->
          if c <> Some (Ok (List.nth (List.nth rows row) 2)) then
            fail_check "decrypt_column row %d" row)
        cols

let check_parallel_bulk_load pool =
  let entries =
    List.init 300 (fun i -> (Value.Text (Printf.sprintf "k%06d" (i / 2)), i))
  in
  let codec = Secdb_schemes.Index3.codec ~e:(Einst.cbc_zero_iv aes_fast) in
  let seq = B.bulk_load ~id:9 ~codec entries in
  let par = B.bulk_load ~pool ~id:9 ~codec entries in
  if B.snapshot seq <> B.snapshot par then fail_check "bulk_load parallel != sequential";
  (match B.validate par with
  | Ok () -> ()
  | Error e -> fail_check "bulk_load validate: %s" e);
  if B.find par (Value.Text "k000007") <> [ 14; 15 ] then fail_check "bulk_load find"

(* GCM reference construction, assembled from the bit-by-bit GHASH oracle
   and block-at-a-time CTR on the string closure: j0 = nonce || 00000001,
   keystream counts from 2, tag = E(j0) xor GHASH(pad(A) || pad(C) || lens).
   The table-driven AEAD must reproduce this byte for byte. *)
let gcm_reference ~nonce ~ad msg =
  let enc = aes_fast.Block.encrypt in
  let h = enc (String.make 16 '\000') in
  let cblock i =
    let b = Bytes.create 16 in
    Bytes.blit_string nonce 0 b 0 12;
    Xbytes.set_uint32_be b 12 i;
    enc (Bytes.unsafe_to_string b)
  in
  let n = String.length msg in
  let ct = Bytes.of_string msg in
  let i = ref 2 and off = ref 0 in
  while !off < n do
    let l = min 16 (n - !off) in
    Xbytes.xor_into ~src:(Xbytes.take l (cblock !i)) ~dst:ct ~dst_off:!off;
    incr i;
    off := !off + l
  done;
  let ct = Bytes.unsafe_to_string ct in
  let pad16 s =
    let r = String.length s mod 16 in
    if r = 0 then s else s ^ String.make (16 - r) '\000'
  in
  let len64 s = Xbytes.int64_to_be_string (Int64.of_int (8 * String.length s)) in
  let s =
    Secdb_aead.Gcm.ghash_ref ~h (pad16 ad ^ pad16 ct ^ len64 ad ^ len64 ct)
  in
  (ct, Xbytes.xor_exact (cblock 1) s)

let check_gcm_vs_reference () =
  (* the Shoup-table GHASH against the bit-by-bit oracle, on lengths that
     exercise the word loop and the single-block path *)
  let h = String.sub (payload 48) 16 16 in
  List.iter
    (fun n ->
      let data = payload n in
      if Secdb_aead.Gcm.ghash ~h data <> Secdb_aead.Gcm.ghash_ref ~h data then
        fail_check "ghash table vs bit-by-bit reference at %d bytes" n)
    [ 0; 16; 160; 1024 ];
  (* the production GCM against the independent reference construction,
     including the partial-block tail and empty edge cases *)
  let gcm = List.assoc "gcm" aeads in
  let nonce = String.make 12 'G' in
  List.iter
    (fun n ->
      let msg = payload n in
      let ad = payload (n mod 37) in
      let ct, tag = Secdb_aead.Aead.encrypt gcm ~nonce ~ad msg in
      let ct', tag' = gcm_reference ~nonce ~ad msg in
      if ct <> ct' || tag <> tag' then
        fail_check "gcm vs reference construction at %d bytes" n;
      (match Secdb_aead.Aead.decrypt gcm ~nonce ~ad ~tag ct with
      | Ok m when m = msg -> ()
      | Ok _ | Error _ -> fail_check "gcm decrypt roundtrip at %d bytes" n);
      if n > 0 then
        match
          Secdb_aead.Aead.decrypt gcm ~nonce ~ad ~tag (Xbytes.flip_bit ct 3)
        with
        | Error Secdb_aead.Aead.Invalid -> ()
        | Ok _ -> fail_check "gcm accepted tampered ciphertext at %d bytes" n)
    [ 0; 1; 16; 33; 1024 ]

let check_fault_vfs () =
  (* the fault backend with every degradation on — short reads and torn
     writes at every call — must be functionally invisible, because the
     storage layer loops through the robust helpers; the durable images
     must come out byte-identical *)
  let image degraded =
    let ctl = Vfs.Fault.make ~seed:11 () in
    if degraded then begin
      Vfs.Fault.set_short_reads ctl true;
      Vfs.Fault.set_torn_writes ctl true
    end;
    let vfs = Vfs.Fault.vfs ctl in
    let p = Pager.create ~path:"mem:perf.pg" ~page_size:128 ~cache_pages:4 ~vfs () in
    let store = Blob_store.attach p in
    let id = Blob_store.store store (String.make 1500 'p') in
    (match Blob_store.load store id with
    | Ok s when s = String.make 1500 'p' -> ()
    | Ok _ | Error _ -> fail_check "fault vfs: blob roundtrip");
    Pager.close p;
    Vfs.Fault.dump ctl ~path:"mem:perf.pg"
  in
  if image false <> image true then fail_check "fault vfs: degraded image differs"

(* --- networked path: in-process server + client over a Unix socket ------ *)

let net_master = "perf wire master key"

let net_db ?(shard = 0) () =
  Secdb.Encdb.create
    ~seed:(Int64.add 5L (Int64.of_int shard))
    ~master:net_master
    ~profile:(Secdb.Encdb.Fixed Secdb.Encdb.Eax)
    ~first_table_id:((shard * 1_000_000) + 1)
    ~first_index_id:((shard * 1_000_000) + 1000)
    ()

let with_net_server ?shards f =
  let dir = Filename.temp_file "secdb_perf_net" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let auth_key = Secdb_net.Wire.auth_key_of_master net_master in
  let srv =
    match
      Secdb_net.Server.create ~seed:9L
        ~config:(Secdb_net.Server.config ~auth_key ?shards ())
        ~db:(fun shard -> net_db ~shard ())
        (Secdb_net.Wire.Unix_sock path)
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  Secdb_net.Server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Secdb_net.Server.stop srv;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f (Secdb_net.Wire.Unix_sock path) auth_key)

let net_connect ?(seed = 3L) addr auth_key =
  match Secdb_net.Client.connect ~attempts:20 ~backoff:0.02 ~seed ~auth_key addr with
  | Ok c -> c
  | Error e -> failwith e

let with_net_client f =
  with_net_server (fun addr auth_key ->
      let c = net_connect addr auth_key in
      Fun.protect ~finally:(fun () -> Secdb_net.Client.close c) (fun () -> f c))

let check_net () =
  (* a pipelined burst over the socket must return, byte for byte, what the
     server's own dispatcher produces in process on an identical database *)
  let reqs =
    [
      Secdb_net.Wire.Sql "CREATE TABLE n (id INT CLEAR, v TEXT)";
      Secdb_net.Wire.Insert_row { table = "n"; values = [ Value.Int 0L; Value.Text "zero" ] };
      Secdb_net.Wire.Insert_row { table = "n"; values = [ Value.Int 1L; Value.Text "one" ] };
      Secdb_net.Wire.Get_cell { table = "n"; row = 1; col = "v" };
      Secdb_net.Wire.Sql "SELECT count(*) FROM n";
      Secdb_net.Wire.Sql "SELECT no_such_fn(1) FROM n";
    ]
  in
  with_net_client (fun c ->
      let over_wire = Secdb_net.Client.pipeline c reqs in
      let ref_db = net_db () in
      List.iter2
        (fun got req ->
          match (got, Secdb_net.Server.dispatch ref_db req) with
          | Ok a, Ok b when Secdb_net.Wire.encode_resp a = Secdb_net.Wire.encode_resp b -> ()
          | Error (Secdb_net.Client.Remote (ca, ma)), Error (cb, mb) when ca = cb && ma = mb -> ()
          | _ -> fail_check "net: wire result differs from in-process dispatch")
        over_wire reqs)

(* --- paged vs in-memory B+-tree ----------------------------------------- *)

let check_paged () =
  (* a paged tree over a tiny pager cache and an in-memory tree fed the
     same workload must answer identically — the dataset spans well over
     10x the page cache, so most lookups unseal nodes from "disk" *)
  let ctl = Vfs.Fault.make ~seed:21 () in
  let pager =
    Pager.create ~path:"mem:perf_pbt.pg" ~page_size:512 ~cache_pages:8
      ~vfs:(Vfs.Fault.vfs ctl) ()
  in
  let aead = Secdb_aead.Eax.make aes_fast in
  let nonce = Secdb_aead.Nonce.counter ~size:aead.Secdb_aead.Aead.nonce_size () in
  let seal = Pbt.aead_seal ~aead ~nonce ~tree_id:77 in
  let paged = Pbt.create ~pager ~seal ~order:4 ~cache_nodes:8 ~id:77 () in
  let mem = B.create ~id:77 ~codec:B.plain_codec () in
  for i = 0 to 799 do
    let v = Value.Int (Int64.of_int (i * 7 mod 191)) in
    Pbt.insert paged v ~table_row:i;
    B.insert mem v ~table_row:i;
    if i mod 5 = 0 then begin
      let d = Value.Int (Int64.of_int (i * 3 mod 191)) in
      if B.delete mem d ~table_row:(i / 2) <> Pbt.delete paged d ~table_row:(i / 2) then
        fail_check "paged bptree: delete verdict differs"
    end
  done;
  if Pager.page_count pager < 80 then fail_check "paged bptree: dataset does not exceed cache";
  for k = 0 to 190 do
    let v = Value.Int (Int64.of_int k) in
    if B.find mem v <> Pbt.find paged v then fail_check "paged bptree: find differs"
  done;
  if B.range mem () <> Pbt.range paged () then fail_check "paged bptree: full range differs";
  if B.size mem <> Pbt.size paged then fail_check "paged bptree: size differs";
  Pbt.flush paged;
  Pager.close pager

(* --- adaptive planner byte-identity -------------------------------------- *)

module SE = Secdb_sql.Engine
module SA = Secdb_sql.Ast
module SPl = Secdb_sql.Plan
module SP = Secdb_sql.Parser
module SSnap = Secdb_sql.Snapshot

(* two tables with an exact index, a range index and a joinable key, so
   every access path and both join strategies are live candidates *)
let planner_db ~rows () =
  let db =
    Secdb.Encdb.create ~master:"perf planner" ~profile:(Secdb.Encdb.Fixed Secdb.Encdb.Eax) ()
  in
  let run sql =
    match SE.exec db sql with Ok _ -> () | Error e -> failwith ("planner db: " ^ sql ^ ": " ^ e)
  in
  run "CREATE TABLE orders (id INT CLEAR, cust INT, total INT)";
  run "CREATE TABLE custs (id INT CLEAR, cust INT, region INT)";
  for i = 0 to rows - 1 do
    run (Printf.sprintf "INSERT INTO orders VALUES (%d, %d, %d)" i (i mod 40) (i * 7 mod 1000))
  done;
  for i = 0 to (rows / 4) - 1 do
    run (Printf.sprintf "INSERT INTO custs VALUES (%d, %d, %d)" i (i mod 40) (i mod 5))
  done;
  run "CREATE INDEX ON orders (total)";
  run "CREATE RANGE INDEX ON orders (total) BUCKETS 8";
  run "CREATE INDEX ON custs (cust)";
  db

let planner_queries =
  [
    ("point", "SELECT * FROM orders WHERE total = 630");
    ("range", "SELECT id, total FROM orders WHERE total BETWEEN 100 AND 220 ORDER BY total DESC");
    ("order-limit", "SELECT * FROM orders ORDER BY total DESC LIMIT 5");
    ( "join",
      "SELECT * FROM orders JOIN custs ON orders.cust = custs.cust WHERE total BETWEEN 0 AND \
       400 ORDER BY region LIMIT 20" );
  ]

let planner_select sql =
  match SP.parse sql with Ok (SA.Select s) -> s | _ -> failwith ("planner parse: " ^ sql)

let check_planner () =
  (* whatever the cost model picks, every candidate plan — and the
     lock-free snapshot path, where it volunteers — must return the same
     bytes; a planner bug may cost latency, never answers *)
  let db = planner_db ~rows:160 () in
  let snap = SSnap.of_db db in
  List.iter
    (fun (label, sql) ->
      let s = planner_select sql in
      match SE.exec_stmt db (SA.Select s) with
      | Error e -> fail_check "planner %s: %s" label e
      | Ok adaptive ->
          List.iter
            (fun p ->
              match SE.exec_plan db s p with
              | Ok r ->
                  if r <> adaptive then
                    fail_check "planner %s: plan %s returns different bytes" label (SPl.name p)
              | Error e -> fail_check "planner %s: plan %s: %s" label (SPl.name p) e)
            (SE.candidate_plans db s);
          (match SE.exec_snapshot snap (SA.Select s) with
          | Some (Ok r) -> if r <> adaptive then fail_check "planner %s: snapshot differs" label
          | Some (Error e) -> fail_check "planner %s: snapshot: %s" label e
          | None -> ()))
    planner_queries

(* The checks run with observability on, so the counter snapshot embedded
   in BENCH_perf.json reflects exactly the work the equivalence checks did;
   the timed sections below run with it off (the default), keeping the
   numbers comparable with PR 1. *)
let check_snapshot = ref None

let run_checks () =
  Secdb_obs.Obs.with_enabled (fun () ->
      let pool = Pool.create ~domains:4 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          check_kernel_vs_string ();
          check_gcm_vs_reference ();
          check_parallel_cells pool;
          check_parallel_table pool;
          check_parallel_bulk_load pool;
          check_fault_vfs ();
          check_paged ();
          check_planner ();
          check_net ()));
  check_snapshot := Some (Secdb_obs.Metrics.snapshot ());
  match !check_failures with
  | [] ->
      print_endline "perf check: OK";
      true
  | fs ->
      List.iter (fun f -> Printf.printf "perf check FAILED: %s\n" f) (List.rev fs);
      false

(* ------------------------------------------------------- measurement -- *)

type sample = { section : string; name : string; qualifier : string; value : float; unit_ : string }

let samples : sample list ref = ref []
let sample ~section ~name ~qualifier ~unit_ value =
  samples := { section; name; qualifier; value; unit_ } :: !samples

let header fmt = Printf.printf ("\n" ^^ fmt ^^ "\n%!")
let row fmt = Printf.printf (fmt ^^ "\n%!")

let bench_modes ~fast =
  let len = if fast then 16_384 else 262_144 in
  let min_time = if fast then 0.02 else 0.2 in
  header "Cipher x mode throughput, %d KiB buffers (MB/s)" (len / 1024);
  let mode_names = List.map fst (modes aes_fast len) in
  row "  %-12s %s" "cipher"
    (String.concat "" (List.map (Printf.sprintf "%9s") mode_names));
  let per_cipher =
    List.map
      (fun (cname, c) ->
        let rates =
          List.map
            (fun (mname, f) ->
              let s = time_per_call ~min_time f in
              let mbs = float_of_int len /. s /. 1e6 in
              sample ~section:"modes" ~name:cname ~qualifier:mname ~unit_:"MB/s" mbs;
              mbs)
            (modes c len)
        in
        row "  %-12s %s" cname
          (String.concat "" (List.map (Printf.sprintf "%9.1f") rates));
        (cname, rates))
      [
        ("aes-fast", aes_fast);
        ("aes-string", aes_string);
        ("aes-ref", aes_ref);
        ("des", des);
        ("des3", des3);
      ]
  in
  let rate cipher mode =
    let rates = List.assoc cipher per_cipher in
    List.nth rates (Option.get (List.find_index (( = ) mode) mode_names))
  in
  (* the acceptance number: the kernel CTR against the seed's own path
     (array-scratch block function + per-block-string keystream loop) *)
  let seed_rate =
    let data = payload len in
    let s = time_per_call ~min_time (fun () -> Seed_path.ctr ~nonce:nonce16 data) in
    float_of_int len /. s /. 1e6
  in
  sample ~section:"modes" ~name:"aes-seed-path" ~qualifier:"ctr" ~unit_:"MB/s" seed_rate;
  row "  %-12s %9s %9s %9s %9.1f %9s %9s" "aes-seed-path" "-" "-" "-" seed_rate "-" "-";
  let ctr_speedup = rate "aes-fast" "ctr" /. seed_rate in
  let fallback_speedup = rate "aes-fast" "ctr" /. rate "aes-string" "ctr" in
  let cbc_speedup = rate "aes-fast" "cbc-enc" /. rate "aes-string" "cbc-enc" in
  sample ~section:"kernel" ~name:"ctr-speedup" ~qualifier:"aes-fast/seed-path" ~unit_:"x"
    ctr_speedup;
  sample ~section:"kernel" ~name:"ctr-speedup-fallback" ~qualifier:"aes-fast/aes-string"
    ~unit_:"x" fallback_speedup;
  sample ~section:"kernel" ~name:"cbc-enc-speedup" ~qualifier:"aes-fast/aes-string" ~unit_:"x"
    cbc_speedup;
  row "  kernel ctr vs seed path %.2fx, vs generic fallback %.2fx; cbc-enc vs fallback %.2fx"
    ctr_speedup fallback_speedup cbc_speedup

let bench_aead ~fast =
  let len = if fast then 1024 else 4096 in
  let min_time = if fast then 0.02 else 0.2 in
  header "AEAD throughput over aes-fast, %d-byte messages (MB/s)" len;
  row "  %-12s %9s %9s" "scheme" "encrypt" "decrypt";
  let ad = Address.encode (Address.v ~table:1 ~row:42 ~col:3) in
  let msg = payload len in
  List.iter
    (fun (name, (a : Secdb_aead.Aead.t)) ->
      let nonce = String.make a.Secdb_aead.Aead.nonce_size 'N' in
      let s = time_per_call ~min_time (fun () -> Secdb_aead.Aead.encrypt a ~nonce ~ad msg) in
      let enc_mbs = float_of_int len /. s /. 1e6 in
      sample ~section:"aead" ~name ~qualifier:(string_of_int len) ~unit_:"MB/s" enc_mbs;
      let ct, tag = Secdb_aead.Aead.encrypt a ~nonce ~ad msg in
      let s =
        time_per_call ~min_time (fun () ->
            Secdb_aead.Aead.decrypt a ~nonce ~ad ~tag ct)
      in
      let dec_mbs = float_of_int len /. s /. 1e6 in
      sample ~section:"aead" ~name
        ~qualifier:(Printf.sprintf "%d-decrypt" len)
        ~unit_:"MB/s" dec_mbs;
      row "  %-12s %9.1f %9.1f" name enc_mbs dec_mbs)
    aeads;
  (* the GHASH primitive on its own, over big buffers: the ceiling the
     table-driven GCM authenticates at, independent of AES *)
  let glen = if fast then 16_384 else 262_144 in
  let h = aes_fast.Block.encrypt (String.make 16 '\000') in
  let t = Secdb_aead.Gcm.htable h in
  let data = Bytes.of_string (payload glen) in
  let acc = Bytes.create 16 in
  let s =
    time_per_call ~min_time (fun () ->
        Bytes.fill acc 0 16 '\000';
        Secdb_aead.Gcm.ghash_into t ~acc data ~off:0 ~nblocks:(glen / 16))
  in
  let mbs = float_of_int glen /. s /. 1e6 in
  sample ~section:"aead" ~name:"ghash" ~qualifier:(string_of_int glen) ~unit_:"MB/s" mbs;
  row "  %-12s %9.1f           (keyed table, %d KiB buffers)" "ghash" mbs
    (glen / 1024)

let bench_cells ~fast =
  let n = if fast then 512 else 4096 in
  let min_time = if fast then 0.02 else 0.2 in
  let jobs = cell_jobs n in
  header "Batch cell encryption, %d cells of ~60 bytes (cells/s)" n;
  row "  %-20s %12s %12s %12s %10s" "scheme" "1 domain" "2 domains" "4 domains"
    "speedup";
  List.iter
    (fun (name, scheme) ->
      let rates =
        List.map
          (fun domains ->
            let pool = Pool.create ~domains () in
            Fun.protect
              ~finally:(fun () -> Pool.shutdown pool)
              (fun () ->
                let s =
                  time_per_call ~min_time (fun () ->
                      Cell_scheme.encrypt_cells ~pool scheme jobs)
                in
                let cps = float_of_int n /. s in
                sample ~section:"cells" ~name
                  ~qualifier:(Printf.sprintf "%dd" domains)
                  ~unit_:"cells/s" cps;
                cps))
          [ 1; 2; 4 ]
      in
      let speedup = List.nth rates 2 /. List.hd rates in
      sample ~section:"cells" ~name ~qualifier:"speedup-4d" ~unit_:"x" speedup;
      row "  %-20s %12.0f %12.0f %12.0f %9.2fx" name (List.hd rates)
        (List.nth rates 1) (List.nth rates 2) speedup)
    (cell_schemes ())

let bench_bulk_load ~fast =
  let n = if fast then 1_000 else 10_000 in
  let min_time = if fast then 0.02 else 0.2 in
  let entries = List.init n (fun i -> (Value.Text (Printf.sprintf "key-%08d" i), i)) in
  let codec = Secdb_schemes.Index3.codec ~e:(Einst.cbc_zero_iv aes_fast) in
  header "Index bulk load, %d entries under index3[cbc0(aes-fast)] (entries/s)" n;
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let s =
            time_per_call ~min_time (fun () -> B.bulk_load ~pool ~id:9 ~codec entries)
          in
          let eps = float_of_int n /. s in
          sample ~section:"bulk_load" ~name:"index3"
            ~qualifier:(Printf.sprintf "%dd" domains)
            ~unit_:"entries/s" eps;
          row "  %d domain(s): %12.0f" domains eps))
    [ 1; 4 ]

(* The disabled observability path must be free: the same CTR workload
   with the switch off (the default above) and on should time the same,
   and the off number is the one every other section was measured under. *)
let bench_obs_overhead ~fast =
  let len = if fast then 16_384 else 262_144 in
  let min_time = if fast then 0.02 else 0.2 in
  let data = payload len in
  let run () = Mode.ctr aes_fast ~nonce:nonce16 data in
  header "Observability overhead on kernel CTR, %d KiB buffers (MB/s)" (len / 1024);
  let rate_off = float_of_int len /. time_per_call ~min_time run /. 1e6 in
  let rate_on =
    Secdb_obs.Obs.with_enabled (fun () ->
        float_of_int len /. time_per_call ~min_time run /. 1e6)
  in
  sample ~section:"obs" ~name:"ctr-obs-off" ~qualifier:"disabled" ~unit_:"MB/s" rate_off;
  sample ~section:"obs" ~name:"ctr-obs-on" ~qualifier:"enabled" ~unit_:"MB/s" rate_on;
  sample ~section:"obs" ~name:"ctr-obs-ratio" ~qualifier:"off/on" ~unit_:"x"
    (rate_off /. rate_on);
  row "  obs off %9.1f   obs on %9.1f   off/on %.3fx" rate_off rate_on (rate_off /. rate_on)

let bench_vfs_overhead ~fast =
  (* the storage engine now routes every byte through Vfs; this measures
     what the indirection costs against the same syscall pattern on a bare
     file descriptor (the pre-VFS code path) *)
  let pages = if fast then 64 else 512 in
  let psize = 4096 in
  let min_time = if fast then 0.02 else 0.2 in
  let bytes = 2 * pages * psize in
  header "VFS passthrough overhead, %d x %d B pwrite+pread (MB/s)" pages psize;
  let data = String.make psize 'v' in
  let buf = Bytes.create psize in
  let with_tmp f =
    let path = Filename.temp_file "secdb_vfs" ".bin" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () -> f path)
  in
  let raw () =
    with_tmp (fun path ->
        let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_TRUNC ] 0o600 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            for i = 0 to pages - 1 do
              ignore (Unix.lseek fd (i * psize) Unix.SEEK_SET);
              ignore (Unix.write_substring fd data 0 psize)
            done;
            for i = 0 to pages - 1 do
              ignore (Unix.lseek fd (i * psize) Unix.SEEK_SET);
              ignore (Unix.read fd buf 0 psize)
            done))
  in
  let through_vfs () =
    with_tmp (fun path ->
        let f = Vfs.unix.Vfs.open_file ~path ~mode:`Trunc in
        Fun.protect
          ~finally:(fun () -> f.Vfs.close ())
          (fun () ->
            for i = 0 to pages - 1 do
              Vfs.really_pwrite f ~pos:(i * psize) data
            done;
            for i = 0 to pages - 1 do
              ignore (Vfs.really_pread f ~pos:(i * psize) buf ~off:0 ~len:psize)
            done))
  in
  let rate_raw = float_of_int bytes /. time_per_call ~min_time raw /. 1e6 in
  let rate_vfs = float_of_int bytes /. time_per_call ~min_time through_vfs /. 1e6 in
  sample ~section:"vfs" ~name:"raw-fd" ~qualifier:"baseline" ~unit_:"MB/s" rate_raw;
  sample ~section:"vfs" ~name:"vfs-unix" ~qualifier:"passthrough" ~unit_:"MB/s" rate_vfs;
  sample ~section:"vfs" ~name:"vfs-ratio" ~qualifier:"raw/vfs" ~unit_:"x" (rate_raw /. rate_vfs);
  row "  raw fd %9.1f   vfs %9.1f   raw/vfs %.3fx" rate_raw rate_vfs (rate_raw /. rate_vfs)

let bench_net ~fast =
  (* the pipelining win: the same number of round-trips, issued one at a
     time (each call waits for its response) versus posted as one burst
     and collected afterwards — the batch pays the socket latency once *)
  let batch = 32 in
  let min_time = if fast then 0.05 else 0.5 in
  header "Wire RPC over a Unix socket, batches of %d pings (calls/s)" batch;
  with_net_client (fun c ->
      let ok = function
        | Ok _ -> ()
        | Error e -> failwith (Secdb_net.Client.error_to_string e)
      in
      let serial () =
        for _ = 1 to batch do
          ok (Secdb_net.Client.call c (Secdb_net.Wire.Ping "x"))
        done
      in
      let burst = List.init batch (fun _ -> Secdb_net.Wire.Ping "x") in
      let pipelined () = List.iter ok (Secdb_net.Client.pipeline c burst) in
      let t_serial = time_per_call ~min_time serial /. float_of_int batch in
      let t_pipe = time_per_call ~min_time pipelined /. float_of_int batch in
      let speedup = t_serial /. t_pipe in
      sample ~section:"net" ~name:"rtt-serial" ~qualifier:"unix-socket" ~unit_:"calls/s"
        (1. /. t_serial);
      sample ~section:"net" ~name:"rtt-pipelined"
        ~qualifier:(Printf.sprintf "batch-%d" batch)
        ~unit_:"calls/s" (1. /. t_pipe);
      sample ~section:"net" ~name:"pipeline-speedup" ~qualifier:"serial/pipelined" ~unit_:"x"
        speedup;
      row "  serial %9.0f   pipelined %9.0f   speedup %.2fx" (1. /. t_serial) (1. /. t_pipe)
        speedup)

let bench_server ~fast =
  (* the tentpole number: the same pipelined SQL workload — four clients,
     one table each, half inserts, half point selects — against 1, 2 and
     4 shards.  On a 1-CPU container the 4-shard row lands at or below
     1x and is recorded honestly; the speedup needs real cores. *)
  let nclients = 4 in
  let per_client = if fast then 60 else 300 in
  header "Sharded serving: %d pipelined SQL clients, %d ops each (ops/s)" nclients per_client;
  let ok = function
    | Ok _ -> ()
    | Error e -> failwith (Secdb_net.Client.error_to_string e)
  in
  let run_at shards =
    with_net_server ~shards (fun addr auth_key ->
        let clients =
          Array.init nclients (fun i ->
              net_connect ~seed:(Int64.of_int (100 + i)) addr auth_key)
        in
        Fun.protect
          ~finally:(fun () -> Array.iter Secdb_net.Client.close clients)
          (fun () ->
            (* one table per client, created outside the timed region *)
            Array.iteri
              (fun i c ->
                let t = Printf.sprintf "s%d" i in
                ok
                  (Secdb_net.Client.call c
                     (Secdb_net.Wire.Sql
                        (Printf.sprintf "CREATE TABLE %s (id INT CLEAR, v TEXT)" t)));
                ok
                  (Secdb_net.Client.call c
                     (Secdb_net.Wire.Sql (Printf.sprintf "CREATE INDEX ON %s (v)" t))))
              clients;
            let burst i =
              let t = Printf.sprintf "s%d" i in
              List.init per_client (fun j ->
                  Secdb_net.Wire.Sql
                    (if j land 1 = 0 then
                       Printf.sprintf "INSERT INTO %s VALUES (%d, 'v%03d')" t j (j mod 37)
                     else Printf.sprintf "SELECT id FROM %s WHERE v = 'v%03d'" t (j mod 37)))
            in
            let t0 = Unix.gettimeofday () in
            let workers =
              Array.to_list
                (Array.mapi
                   (fun i c ->
                     Thread.create
                       (fun () -> List.iter ok (Secdb_net.Client.pipeline c (burst i)))
                       ())
                   clients)
            in
            List.iter Thread.join workers;
            let dt = Unix.gettimeofday () -. t0 in
            float_of_int (nclients * per_client) /. dt))
  in
  let rates = List.map (fun s -> (s, run_at s)) [ 1; 2; 4 ] in
  List.iter
    (fun (s, r) ->
      sample ~section:"server" ~name:"sql-pipelined"
        ~qualifier:(Printf.sprintf "%d-shards" s)
        ~unit_:"ops/s" r;
      row "  %d shard(s) %9.0f ops/s" s r)
    rates;
  let speedup = List.assoc 4 rates /. List.assoc 1 rates in
  sample ~section:"server" ~name:"speedup-4s" ~qualifier:"4-shards/1-shard" ~unit_:"x" speedup;
  row "  speedup-4s %.2fx (%d domain(s) recommended here)" speedup (Pool.recommended ());
  (* what the persistence costs: point lookups against the in-memory tree
     and against the AEAD-sealed paged tree whose working set exceeds
     both the node cache and the page cache *)
  let n = if fast then 800 else 4000 in
  let keyspace = 191 in
  let ctl = Vfs.Fault.make ~seed:22 () in
  let pager =
    Pager.create ~path:"mem:perf_pbt_bench.pg" ~page_size:512 ~cache_pages:8
      ~vfs:(Vfs.Fault.vfs ctl) ()
  in
  let aead = Secdb_aead.Eax.make aes_fast in
  let nonce = Secdb_aead.Nonce.counter ~size:aead.Secdb_aead.Aead.nonce_size () in
  let paged =
    Pbt.create ~pager
      ~seal:(Pbt.aead_seal ~aead ~nonce ~tree_id:78)
      ~order:8 ~cache_nodes:8 ~id:78 ()
  in
  let mem = B.create ~id:78 ~codec:B.plain_codec () in
  for i = 0 to n - 1 do
    let v = Value.Int (Int64.of_int (i * 7 mod keyspace)) in
    Pbt.insert paged v ~table_row:i;
    B.insert mem v ~table_row:i
  done;
  let min_time = if fast then 0.05 else 0.3 in
  let probe find =
    let s =
      time_per_call ~min_time (fun () ->
          for k = 0 to keyspace - 1 do
            ignore (find (Value.Int (Int64.of_int k)))
          done)
    in
    float_of_int keyspace /. s
  in
  let mem_rate = probe (B.find mem) in
  let paged_rate = probe (Pbt.find paged) in
  Pager.close pager;
  sample ~section:"server" ~name:"index-lookup" ~qualifier:"in-memory" ~unit_:"lookups/s"
    mem_rate;
  sample ~section:"server" ~name:"index-lookup" ~qualifier:"paged-aead" ~unit_:"lookups/s"
    paged_rate;
  row "  index lookups: in-memory %9.0f /s   paged+aead %9.0f /s (%.1fx cost)" mem_rate
    paged_rate
    (mem_rate /. paged_rate)

let bench_repl ~fast =
  (* the replication pipeline: the primary's seal+append+fsync rate, then
     the replica's critical path — sealed records read back from the log,
     re-verified (CRC, frame, sequence-as-AD, AEAD tag) and applied,
     routed across 2 shards.  The replica side bounds how fast a replica
     can catch up; the primary side is the write-path logging overhead. *)
  let n = if fast then 400 else 3000 in
  header "Replication pipeline over %d ops (ops/s)" n;
  let aead = Secdb_aead.Eax.make aes_fast in
  let nonce = Secdb_aead.Nonce.counter ~size:aead.Secdb_aead.Aead.nonce_size () in
  let shards = 2 in
  let mkdb shard =
    Secdb.Encdb.create ~master:"bench repl" ~profile:(Secdb.Encdb.Fixed Secdb.Encdb.Eax)
      ~seed:(Int64.of_int (51 + shard))
      ~first_table_id:((shard * 1_000_000) + 1)
      ~first_index_id:((shard * 1_000_000) + 1000)
      ()
  in
  let rschema name =
    Schema.v ~table_name:name
      [ Schema.column ~protection:Schema.Clear "id" Value.Kint; Schema.column "v" Value.Ktext ]
  in
  let ops =
    Secdb.Oplog.Create_table (rschema "ra")
    :: Secdb.Oplog.Create_table (rschema "rb")
    :: List.init n (fun i ->
           Secdb.Oplog.Insert
             {
               table = (if i land 1 = 0 then "ra" else "rb");
               values = [ Value.Int (Int64.of_int i); Value.Text (Printf.sprintf "v%06d" i) ];
             })
  in
  let ctl = Vfs.Fault.make ~seed:31 () in
  let w = Secdb.Oplog.create ~vfs:(Vfs.Fault.vfs ctl) ~path:"mem:repl.log" ~aead ~nonce () in
  let t0 = Unix.gettimeofday () in
  List.iter (fun op -> ignore (Secdb.Oplog.append w op)) ops;
  let seal_rate = float_of_int (List.length ops) /. (Unix.gettimeofday () -. t0) in
  let dbs = Array.init shards mkdb in
  let applied = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rec pull ack =
    match Secdb.Oplog.read_sealed w ~from:ack ~max:256 with
    | [] -> ()
    | records ->
        List.iter
          (fun (seq, sealed) ->
            match Secdb.Oplog.verify_sealed ~aead ~seq sealed with
            | Error e -> failwith e
            | Ok op -> (
                match Secdb_net.Repl.apply_routed dbs op with
                | Ok () -> incr applied
                | Error e -> failwith e))
          records;
        pull (ack + List.length records)
  in
  pull 0;
  let apply_rate = float_of_int !applied /. (Unix.gettimeofday () -. t0) in
  Secdb.Oplog.close w;
  sample ~section:"repl" ~name:"seal-append" ~qualifier:"mem-vfs" ~unit_:"ops/s" seal_rate;
  sample ~section:"repl" ~name:"ship-verify-apply" ~qualifier:"2-shards" ~unit_:"ops/s"
    apply_rate;
  row "  seal+append %9.0f ops/s   ship+verify+apply %9.0f ops/s (%d ops)" seal_rate apply_rate
    !applied

let bench_planner ~fast =
  (* plan-vs-plan: time every candidate plan the planner could have picked
     alongside the adaptive choice.  The adaptive executor runs the same
     code path as one of the forced plans, so adaptive/best should sit at
     ~1x (noise aside) and adaptive/worst well below 1x on shapes where
     the plans genuinely differ. *)
  let rows = if fast then 200 else 1600 in
  let min_time = if fast then 0.02 else 0.2 in
  let db = planner_db ~rows () in
  header "Adaptive planner vs forced plans, %d rows (ms/query)" rows;
  List.iter
    (fun (label, sql) ->
      let s = planner_select sql in
      let force p =
        match SE.exec_plan db s p with Ok r -> r | Error e -> failwith e
      in
      let plan_times =
        List.map
          (fun p -> (SPl.name p, time_per_call ~min_time (fun () -> force p)))
          (SE.candidate_plans db s)
      in
      let adaptive =
        time_per_call ~min_time (fun () ->
            match SE.exec_stmt db (SA.Select s) with Ok r -> r | Error e -> failwith e)
      in
      List.iter
        (fun (n, t) -> sample ~section:"planner" ~name:label ~qualifier:n ~unit_:"ms" (t *. 1e3))
        plan_times;
      sample ~section:"planner" ~name:label ~qualifier:"adaptive" ~unit_:"ms" (adaptive *. 1e3);
      let pick f = List.fold_left (fun acc (_, t) -> f acc t) (snd (List.hd plan_times)) plan_times in
      let best = pick min and worst = pick max in
      sample ~section:"planner" ~name:label ~qualifier:"adaptive-vs-best" ~unit_:"x"
        (adaptive /. best);
      sample ~section:"planner" ~name:label ~qualifier:"adaptive-vs-worst" ~unit_:"x"
        (adaptive /. worst);
      row "  %-12s adaptive %8.4f ms   best %8.4f   worst %8.4f   vs-best %.2fx   [%s]" label
        (adaptive *. 1e3) (best *. 1e3) (worst *. 1e3)
        (adaptive /. best)
        (String.concat " " (List.map (fun (n, t) -> Printf.sprintf "%s=%.4f" n (t *. 1e3)) plan_times)))
    planner_queries

(* ------------------------------------------------------------- JSON -- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~fast path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"suite\": \"secdb-perf\",\n");
  Buffer.add_string b (Printf.sprintf "  \"fast\": %b,\n" fast);
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Pool.recommended ()));
  Buffer.add_string b "  \"samples\": [\n";
  let entries =
    List.rev_map
      (fun s ->
        Printf.sprintf
          "    {\"section\": \"%s\", \"name\": \"%s\", \"qualifier\": \"%s\", \
           \"value\": %.3f, \"unit\": \"%s\"}"
          (json_escape s.section) (json_escape s.name) (json_escape s.qualifier)
          s.value (json_escape s.unit_))
      !samples
  in
  Buffer.add_string b (String.concat ",\n" entries);
  Buffer.add_string b "\n  ],\n";
  (* counter snapshot from the equivalence checks: how much work the bulk
     paths actually did (cells, chunks, AEAD calls) alongside how fast *)
  let counters =
    match !check_snapshot with Some s -> s.Secdb_obs.Metrics.counters | None -> []
  in
  Buffer.add_string b "  \"check_counters\": [\n";
  Buffer.add_string b
    (String.concat ",\n"
       (List.map
          (fun (name, v) ->
            Printf.sprintf "    {\"name\": \"%s\", \"value\": %d}" (json_escape name) v)
          counters));
  Buffer.add_string b "\n  ]\n}\n";
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Buffer.contents b));
  row "\nwrote %s (%d samples)" path (List.length entries)

(* -------------------------------------------------------------- cli -- *)

let () =
  (* the net benches write to sockets the peer may already have closed;
     surface that as EPIPE instead of dying on SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let args = Array.to_list Sys.argv in
  let fast = List.mem "--fast" args in
  let check_only = List.mem "--check" args in
  let ok = run_checks () in
  if not ok then exit 1;
  if not check_only then begin
    bench_modes ~fast;
    bench_aead ~fast;
    bench_cells ~fast;
    bench_bulk_load ~fast;
    bench_obs_overhead ~fast;
    bench_vfs_overhead ~fast;
    bench_net ~fast;
    bench_server ~fast;
    bench_repl ~fast;
    bench_planner ~fast;
    write_json ~fast "BENCH_perf.json"
  end

(* secdb — command-line front end.

   Subcommands:
     encrypt   encrypt a value for a cell address under a chosen profile
     decrypt   decrypt (and integrity-check) stored cell bytes
     mu        print the address digest µ(t,r,c) under each hash
     digest    hash a string with the bundled hash functions
     attack    run one of the paper's attacks (A1..A8)
     stats     run a deterministic workload and dump the metric registry
     fsck      check a pager file (header, free list, blob chains)
     pgdemo    write a small deterministic pager file for fsck demos
     profiles  list the protection profiles
     serve     serve over the authenticated wire (standalone, primary or replica)
     restore   point-in-time recovery from an authenticated oplog
     client    run SQL against a server
     ping      health-check a server *)

open Cmdliner
module Value = Secdb_db.Value
module Address = Secdb_db.Address
module Xbytes = Secdb_util.Xbytes
module Einst = Secdb_schemes.Einst

let profile_conv =
  let parse s =
    match
      List.find_opt
        (fun p -> Secdb.Encdb.profile_name p = String.lowercase_ascii s)
        Secdb.Encdb.all_profiles
    with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown profile %s (try: %s)" s
               (String.concat ", " (List.map Secdb.Encdb.profile_name Secdb.Encdb.all_profiles))))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Secdb.Encdb.profile_name p))

let profile_arg =
  Arg.(
    value
    & opt profile_conv (Secdb.Encdb.Fixed Secdb.Encdb.Eax)
    & info [ "p"; "profile" ] ~docv:"PROFILE" ~doc:"Protection profile.")

let master_arg =
  Arg.(
    value
    & opt string "secdb demo master key"
    & info [ "k"; "master" ] ~docv:"KEY" ~doc:"Master key for the session keyring.")

let addr_args =
  let table = Arg.(value & opt int 1 & info [ "t"; "table" ] ~docv:"T" ~doc:"Table id.") in
  let row = Arg.(value & opt int 0 & info [ "r"; "row" ] ~docv:"R" ~doc:"Row number.") in
  let col = Arg.(value & opt int 0 & info [ "c"; "col" ] ~docv:"C" ~doc:"Column number.") in
  Term.(
    const (fun t r c -> Address.v ~table:t ~row:r ~col:c) $ table $ row $ col)

let scheme_of ~master ~profile addr =
  (* stand-alone cell scheme equivalent to what Encdb would build *)
  let keyring = Secdb.Keyring.open_session ~master in
  let key = Secdb.Keyring.cell_key keyring ~table:addr.Address.table ~col:addr.Address.col in
  let aes = Secdb_cipher.Aes.cipher ~key in
  let mu = Address.mu_sha1 ~width:16 in
  let e = Einst.cbc_zero_iv aes in
  match profile with
  | Secdb.Encdb.Elovici_append | Secdb.Encdb.Shmueli_improved
  | Secdb.Encdb.Shmueli_repaired_keys ->
      Secdb_schemes.Cell_append.make ~e ~mu
  | Secdb.Encdb.Elovici_xor ->
      Secdb_schemes.Cell_xor.make ~e ~mu ~strip_zero_extension:true
        ~validate:(fun s -> Xbytes.is_ascii7 s) ()
  | Secdb.Encdb.Fixed which ->
      let mac_key = Secdb.Keyring.mac_key keyring ~table:addr.Address.table ~col:addr.Address.col in
      let aead =
        match which with
        | Secdb.Encdb.Eax -> Secdb_aead.Eax.make aes
        | Secdb.Encdb.Ocb -> Secdb_aead.Ocb.make aes
        | Secdb.Encdb.Ccfb -> Secdb_aead.Ccfb.make aes
        | Secdb.Encdb.Etm -> Secdb_aead.Compose.encrypt_then_mac ~cipher:aes ~mac_key ()
        | Secdb.Encdb.Gcm -> Secdb_aead.Gcm.make aes
        | Secdb.Encdb.Siv -> Secdb_aead.Siv.make (Secdb_cipher.Aes.cipher ~key:mac_key) aes
      in
      Secdb_schemes.Fixed_cell.make ~aead
        ~nonce:
          (Secdb_aead.Nonce.of_rng
             (Secdb_util.Rng.create ~seed:(Int64.of_int (Hashtbl.hash (master, addr))) ())
             ~size:aead.Secdb_aead.Aead.nonce_size)
        ()
  | Secdb.Encdb.Siv_deterministic ->
      let mac_key = Secdb.Keyring.mac_key keyring ~table:addr.Address.table ~col:addr.Address.col in
      let aead = Secdb_aead.Siv.make (Secdb_cipher.Aes.cipher ~key:mac_key) aes in
      Secdb_schemes.Fixed_cell.make ~aead
        ~nonce:(Secdb_aead.Nonce.fixed (String.make 16 '\000'))
        ()

let encrypt_cmd =
  let value = Arg.(required & pos 0 (some string) None & info [] ~docv:"VALUE") in
  let run profile master addr value =
    let scheme = scheme_of ~master ~profile addr in
    let ct = Secdb_schemes.Cell_scheme.encrypt scheme addr value in
    Printf.printf "scheme : %s\naddress: %s\nstored : %s\n" scheme.Secdb_schemes.Cell_scheme.name
      (Fmt.str "%a" Address.pp addr) (Xbytes.to_hex ct)
  in
  Cmd.v
    (Cmd.info "encrypt" ~doc:"Encrypt a value for a cell address.")
    Term.(const run $ profile_arg $ master_arg $ addr_args $ value)

let decrypt_cmd =
  let ct = Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX_CIPHERTEXT") in
  let run profile master addr hexct =
    let scheme = scheme_of ~master ~profile addr in
    match Secdb_schemes.Cell_scheme.decrypt scheme addr (Xbytes.of_hex hexct) with
    | Ok v -> Printf.printf "valid at %s: %S\n" (Fmt.str "%a" Address.pp addr) v
    | Error e ->
        Printf.printf "REJECTED: %s\n" e;
        exit 1
  in
  Cmd.v
    (Cmd.info "decrypt" ~doc:"Decrypt and integrity-check stored cell bytes.")
    Term.(const run $ profile_arg $ master_arg $ addr_args $ ct)

let mu_cmd =
  let run addr =
    List.iter
      (fun (mu : Address.mu) ->
        Printf.printf "%-12s %s\n" mu.Address.name (Xbytes.to_hex (mu.Address.digest addr)))
      [
        Address.mu_sha1 ~width:16;
        Address.mu_sha1 ~width:20;
        Address.mu_sha256 ~width:16;
        Address.mu_md5 ~width:16;
        Address.mu_identity;
      ]
  in
  Cmd.v
    (Cmd.info "mu" ~doc:"Print the address-conversion digest µ(t,r,c).")
    Term.(const run $ addr_args)

let digest_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"STRING") in
  let run s =
    Printf.printf "sha1   : %s\n" (Secdb_hash.Sha1.hex s);
    Printf.printf "sha256 : %s\n" (Secdb_hash.Sha256.hex s);
    Printf.printf "md5    : %s\n" (Secdb_hash.Md5.hex s)
  in
  Cmd.v (Cmd.info "digest" ~doc:"Hash a string with the bundled hash functions.")
    Term.(const run $ input)

let attack_cmd =
  let which =
    Arg.(
      value
      & pos 0 (some (enum [ ("A1", `A1); ("A2", `A2); ("A3", `A3); ("A6", `A6); ("A7", `A7) ]))
          None
      & info [] ~docv:"ATTACK" ~doc:"One of A1, A2, A3, A6, A7.")
  in
  let range =
    Arg.(
      value & flag
      & info [ "range" ]
          ~doc:
            "Report the bucketized range index's leakage bench (fixed seed): order/value \
             recovery and histogram distance against their pinned bounds; exits 1 if any \
             score is out of bounds.")
  in
  let run_one which =
    let rng = Secdb_util.Rng.create ~seed:1L () in
    let key = Xbytes.of_hex "000102030405060708090a0b0c0d0e0f" in
    let aes = Secdb_cipher.Aes.cipher ~key in
    let mu = Address.mu_sha1 ~width:16 in
    let e = Einst.cbc_zero_iv aes in
    let append = Secdb_schemes.Cell_append.make ~e ~mu in
    match which with
    | `A1 ->
        let prefix = String.make 32 'P' in
        let w =
          List.init 10 (fun i ->
              (i, if i mod 2 = 0 then prefix ^ Secdb_util.Rng.ascii rng 20 else Secdb_util.Rng.ascii rng 52))
        in
        let r = Secdb_attacks.Pattern_matching.cells ~scheme:append ~block:16 ~table:1 ~col:0 w in
        Printf.printf "pattern matching: %d/%d prefix-sharing pairs detected\n"
          r.Secdb_attacks.Pattern_matching.detected_pairs
          r.Secdb_attacks.Pattern_matching.true_pairs
    | `A2 -> (
        let addr = Address.v ~table:1 ~row:0 ~col:0 in
        match
          Secdb_attacks.Forgery.forge ~scheme:append ~block:16 ~addr
            ~value:(Secdb_util.Rng.ascii rng 48) ~rng
        with
        | Ok o ->
            Printf.printf "forgery: block %d replaced, accepted=%b changed=%b\n"
              o.Secdb_attacks.Forgery.modified_ct_block o.Secdb_attacks.Forgery.accepted
              o.Secdb_attacks.Forgery.changed
        | Error e -> print_endline e)
    | `A3 ->
        let ex = Secdb_attacks.Substitution.collision_search ~mu ~table:5 ~col:2 ~trials:1024 in
        Printf.printf "collisions among 1024 addresses: %d (expected %.1f, paper saw 6)\n"
          (List.length ex.Secdb_attacks.Substitution.collisions)
          ex.Secdb_attacks.Substitution.expected
    | `A6 -> (
        let codec =
          Secdb_schemes.Index12.codec ~e ~mac_cipher:aes ~rng ~indexed_table:1 ~indexed_col:0 ()
        in
        let ctx =
          { Secdb_index.Bptree.index_table = 1000; node_row = 4; kind = Secdb_index.Bptree.Leaf }
        in
        match
          Secdb_attacks.Mac_interaction.run ~codec ~ctx ~block:16
            ~value:(Value.Text (Secdb_util.Rng.ascii rng 47)) ~table_row:3 ~rng
        with
        | Ok o ->
            Printf.printf "same-key OMAC forgery: accepted=%b changed=%b\n"
              o.Secdb_attacks.Mac_interaction.accepted
              o.Secdb_attacks.Mac_interaction.value_changed
        | Error e -> print_endline e)
    | `A7 ->
        let stream = Secdb_schemes.Cell_append.make ~e:(Einst.ctr_zero aes) ~mu in
        let v1 = "known: AAAA BBBB CCCC DDDD" and v2 = "secret value 42 hidden!!!!" in
        let c1 = Secdb_schemes.Cell_scheme.encrypt stream (Address.v ~table:1 ~row:0 ~col:0) v1 in
        let c2 = Secdb_schemes.Cell_scheme.encrypt stream (Address.v ~table:1 ~row:1 ~col:0) v2 in
        let x = Secdb_attacks.Keystream_reuse.plaintext_xor_append ~ct_a:c1 ~ct_b:c2 in
        Printf.printf "keystream reuse recovered: %S\n"
          (Xbytes.take (String.length v2) (Secdb_attacks.Keystream_reuse.crib_drag ~known:v1 ~xor:x))
  in
  let run range which =
    if range then begin
      let lines = Secdb_attacks.Range_leak.bench () in
      print_string (Secdb_attacks.Range_leak.render lines);
      if not (List.for_all Secdb_attacks.Range_leak.within lines) then exit 1
    end
    else
      match which with
      | None ->
          prerr_endline "attack: expected one of A1, A2, A3, A6, A7 or --range";
          exit 2
      | Some w -> run_one w
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Run one of the paper's attacks against the broken schemes, or report the range \
          index's leakage bench with --range.")
    Term.(const run $ range $ which)

let sql_cmd =
  let script =
    Arg.(
      value & opt (some string) None
      & info [ "e"; "execute" ] ~docv:"SQL"
          ~doc:"Execute one statement and exit (otherwise read statements from stdin).")
  in
  let file =
    Arg.(
      value & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Execute a ;-separated script from a file.")
  in
  let run profile master script file =
    let db = Secdb.Encdb.create ~master ~profile () in
    let exec line =
      match Secdb_sql.Engine.exec db line with
      | Ok r -> Fmt.pr "%a@." Secdb_sql.Engine.pp_result r
      | Error e -> Printf.printf "error: %s\n%!" e
    in
    match (script, file) with
    | Some s, _ -> exec s
    | None, Some path -> (
        let source = In_channel.with_open_text path In_channel.input_all in
        match Secdb_sql.Engine.exec_script db source with
        | Ok outcomes ->
            List.iter
              (fun (stmt, outcome) ->
                Fmt.pr "secdb> %a@.%a@." Secdb_sql.Ast.pp_stmt stmt
                  Secdb_sql.Engine.pp_result outcome)
              outcomes
        | Error e ->
            Printf.printf "error: %s\n" e;
            exit 1)
    | None, None -> (
        print_endline "secdb SQL shell - statements end at newline, ctrl-d quits";
        try
          while true do
            print_string "secdb> ";
            let line = read_line () in
            if String.trim line <> "" then exec line
          done
        with End_of_file -> print_newline ())
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run SQL statements against a fresh in-memory encrypted database.")
    Term.(const run $ profile_arg $ master_arg $ script $ file)

(* A fixed workload that touches every instrumented layer — pager cache,
   blob store, AEAD (including a rejected tamper), the domain pool, batch
   table encryption, an index walk, the paged B+-tree, the shard map and
   the oplog — sized so every counter value is a pure function of the
   code, never of timing.  The cram suite pins the full text dump, which
   is what makes the counters a regression gate and not just ops sugar. *)
let stats_workload () =
  let module Metrics = Secdb_obs.Metrics in
  let module Pool = Secdb_util.Pool in
  let module Pager = Secdb_storage.Pager in
  let module Blob = Secdb_storage.Blob_store in
  let key = Xbytes.of_hex "000102030405060708090a0b0c0d0e0f" in
  let nonce_key = Xbytes.of_hex "ffeeddccbbaa99887766554433221100" in
  let aes = Secdb_cipher.Aes_fast.cipher ~key in
  let with_temp suffix f =
    let path = Filename.temp_file "secdb_stats" suffix in
    Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)
  in
  (* pager: a 4-frame cache over 8 pages forces misses and evictions, the
     re-reads of the hot tail are the hits *)
  with_temp ".pg" (fun path ->
      let p = Pager.create ~path ~page_size:256 ~cache_pages:4 () in
      for i = 1 to 8 do
        let page = Pager.alloc p in
        Pager.write p page (Printf.sprintf "page-%d" i)
      done;
      for page = 1 to 8 do
        ignore (Pager.read p page)
      done;
      for _ = 1 to 3 do
        ignore (Pager.read p 8)
      done;
      Pager.close p);
  (* blob store: one chained blob spanning several pages, stored and read back *)
  with_temp ".blob" (fun path ->
      let p = Pager.create ~path ~page_size:256 ~cache_pages:8 () in
      let blob = Blob.attach p in
      let id = Blob.store blob (String.make 1000 'b') in
      (match Blob.load blob id with
      | Ok data when String.length data = 1000 -> ()
      | Ok _ | Error _ -> failwith "stats workload: blob roundtrip");
      Blob.delete blob id;
      Pager.close p);
  (* AEAD cells through the domain pool, plus one tampered cell that the
     authenticated decrypt must reject *)
  let scheme =
    Secdb_schemes.Fixed_cell.make_derived ~aead:(Secdb_aead.Eax.make aes) ~nonce_key ()
  in
  let jobs =
    Array.init 64 (fun i ->
        (Address.v ~table:1 ~row:i ~col:0, Printf.sprintf "cell-%02d" i))
  in
  Pool.with_pool ~domains:2 (fun pool ->
      let cts = Secdb_schemes.Cell_scheme.encrypt_cells ~pool scheme jobs in
      let dec_jobs = Array.map2 (fun (a, _) ct -> (a, ct)) jobs cts in
      let dec = Secdb_schemes.Cell_scheme.decrypt_cells ~pool scheme dec_jobs in
      Array.iteri
        (fun i r -> if r <> Ok (snd jobs.(i)) then failwith "stats workload: cell roundtrip")
        dec;
      let tampered = Xbytes.to_hex cts.(0) in
      let flipped =
        String.mapi (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c) tampered
      in
      (match Secdb_schemes.Cell_scheme.decrypt scheme (fst jobs.(0)) (Xbytes.of_hex flipped) with
      | Error _ -> ()
      | Ok _ -> failwith "stats workload: tamper was accepted");
      (* batch table insert + column decrypt + a filtered scan *)
      let schema =
        Secdb_db.Schema.v ~table_name:"stats"
          [
            Secdb_db.Schema.column ~protection:Secdb_db.Schema.Clear "id" Value.Kint;
            Secdb_db.Schema.column "a" Value.Ktext;
            Secdb_db.Schema.column "b" Value.Ktext;
          ]
      in
      let table =
        Secdb_query.Encrypted_table.create ~id:7 schema ~scheme:(fun _ ->
            Secdb_schemes.Fixed_cell.make_derived ~aead:(Secdb_aead.Eax.make aes) ~nonce_key ())
      in
      let rows =
        List.init 16 (fun i ->
            [
              Value.Int (Int64.of_int i);
              Value.Text (Printf.sprintf "a%02d" i);
              Value.Text (Printf.sprintf "b%02d" i);
            ])
      in
      Secdb_query.Encrypted_table.insert_many ~pool table rows;
      ignore (Secdb_query.Encrypted_table.decrypt_column ~pool table ~col:2);
      ignore
        (Secdb_query.Encrypted_table.select table (fun values ->
             match values.(0) with Value.Int i -> Int64.rem i 2L = 0L | _ -> false)));
  (* index walk over an encrypted B+-tree *)
  let codec = Secdb_schemes.Index3.codec ~e:(Einst.cbc_zero_iv aes) in
  let entries = List.init 32 (fun i -> (Value.Text (Printf.sprintf "k%03d" i), i)) in
  let tree = Secdb_index.Bptree.bulk_load ~id:9 ~codec entries in
  (match
     Secdb_query.Walker.range tree ~mode:Secdb_query.Walker.Corrected
       ~lo:(Value.Text "k010") ~hi:(Value.Text "k019") ()
   with
  | Ok a when List.length a.Secdb_query.Walker.results = 10 -> ()
  | Ok _ | Error _ -> failwith "stats workload: walker range");
  (* paged B+-tree: a sealed tree whose node cache is smaller than the
     node count, so loads, cache hits, evictions and the pager's dirty
     write-backs all fire *)
  (let module Pbt = Secdb_storage.Paged_bptree in
   with_temp ".pbt" (fun path ->
       let p = Pager.create ~path ~page_size:512 ~cache_pages:4 () in
       let nonce = Secdb_aead.Nonce.counter ~size:16 () in
       let seal = Pbt.aead_seal ~aead:(Secdb_aead.Eax.make aes) ~nonce ~tree_id:11 in
       let t = Pbt.create ~pager:p ~seal ~order:4 ~cache_nodes:8 ~id:11 () in
       for i = 1 to 48 do
         Pbt.insert t (Value.Int (Int64.of_int (i * 7 mod 48))) ~table_row:i
       done;
       for i = 1 to 48 do
         match Pbt.find t (Value.Int (Int64.of_int (i * 7 mod 48))) with
         | _ :: _ -> ()
         | [] -> failwith "stats workload: paged find"
       done;
       Pbt.flush t;
       Pager.close p));
  (* an encrypted SQL table through the adaptive planner, so the cost
     model's own inputs — db.rows{table} cardinality and the pager hit
     rate — land in the dump alongside the raw cache counters *)
  (let db =
     Secdb.Encdb.create ~master:"stats" ~profile:(Secdb.Encdb.Fixed Secdb.Encdb.Eax) ()
   in
   let sql q =
     match Secdb_sql.Engine.exec db q with
     | Ok _ -> ()
     | Error e -> failwith ("stats workload: " ^ q ^ ": " ^ e)
   in
   sql "CREATE TABLE kv (id INT CLEAR, v INT)";
   for i = 1 to 8 do
     sql (Printf.sprintf "INSERT INTO kv VALUES (%d, %d)" i (i * 10))
   done;
   sql "CREATE INDEX ON kv (v)";
   sql "DELETE FROM kv WHERE id = 8";
   sql "SELECT * FROM kv WHERE v BETWEEN 20 AND 50");
  (* shard map: five routed keys and one all-shards broadcast *)
  (let module Shard = Secdb_db.Shard in
   let sh = Shard.create ~shards:4 (fun i -> i) in
   List.iter
     (fun k -> Shard.with_key sh k (fun _ -> ()))
     [ "alpha"; "beta"; "gamma"; "delta"; "epsilon" ];
   ignore (Shard.with_all sh (fun _ i -> i)));
  (* oplog: three authenticated appends, a full replay, and a replay of a
     tampered log that must fail *)
  with_temp ".oplog" (fun path ->
      let aead = Secdb_aead.Eax.make aes in
      let w = Secdb.Oplog.create ~path ~aead ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) () in
      ignore (Secdb.Oplog.append w (Secdb.Oplog.Insert { table = "t"; values = [ Value.Int 1L ] }));
      ignore
        (Secdb.Oplog.append w
           (Secdb.Oplog.Update { table = "t"; row = 0; col = "a"; value = Value.Int 2L }));
      ignore (Secdb.Oplog.append w (Secdb.Oplog.Delete { table = "t"; row = 0 }));
      Secdb.Oplog.close w;
      (match Secdb.Oplog.replay ~path ~aead () with
      | Ok ops when List.length ops = 3 -> ()
      | Ok _ -> failwith "stats workload: replay: wrong op count"
      | Error e -> failwith ("stats workload: replay: " ^ e));
      (* flip a ciphertext byte inside the last record and fix up its CRC
         trailer, so framing passes and the AEAD does the rejecting *)
      let data = In_channel.with_open_bin path In_channel.input_all in
      let rec last_record off =
        let rlen = Xbytes.be_string_to_int (String.sub data off 4) in
        let next = off + 8 + rlen in
        if next >= String.length data then (off, rlen) else last_record next
      in
      let off, rlen = last_record 0 in
      let b = Bytes.of_string data in
      let pos = off + 4 + (rlen / 2) in
      Bytes.set b pos (Char.chr (Char.code data.[pos] lxor 1));
      let crc = Secdb_util.Crc32.string (Bytes.sub_string b off (4 + rlen)) in
      Bytes.blit_string (Xbytes.int_to_be_string ~width:4 crc) 0 b (off + 4 + rlen) 4;
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      match Secdb.Oplog.replay ~path ~aead () with
      | Error _ -> ()
      | Ok _ -> failwith "stats workload: tampered replay was accepted")

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Dump the registry as JSON (with histogram detail).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Emit every span as a JSON line on stderr while the workload runs.")
  in
  let no_workload =
    Arg.(
      value & flag
      & info [ "no-workload" ]
          ~doc:"Skip the built-in workload and dump whatever the process has recorded.")
  in
  let run json trace no_workload =
    Secdb_obs.Obs.enable ();
    if trace then Secdb_obs.Trace.set_sink Secdb_obs.Trace.Stderr;
    if not no_workload then stats_workload ();
    let snap = Secdb_obs.Metrics.snapshot () in
    print_string
      (if json then Secdb_obs.Metrics.to_json snap else Secdb_obs.Metrics.to_text snap)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a deterministic workload across the crypto/storage/query stack and dump the \
          observability registry.")
    Term.(const run $ json $ trace $ no_workload)

(* fsck + a deterministic demo image for the cram suite.  The demo layout
   is fixed: page size 128, blob a = 600 bytes (6 pages), blob b = one
   page, a third 2-page blob stored and deleted so the free list is
   non-trivial. *)
let pgdemo_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run path =
    let module Pager = Secdb_storage.Pager in
    let module Blob = Secdb_storage.Blob_store in
    let p = Pager.create ~path ~page_size:128 ~cache_pages:8 () in
    let blob = Blob.attach p in
    let a = Blob.store blob (String.make 600 'A') in
    let b = Blob.store blob "hello, demo blob" in
    let c = Blob.store blob (String.make 200 'C') in
    Blob.delete blob c;
    Pager.flush p;
    let pages = Pager.page_count p in
    Pager.close p;
    Printf.printf "created %s: pages=%d blob-a=%d blob-b=%d\n" path pages a b
  in
  Cmd.v
    (Cmd.info "pgdemo" ~doc:"Write a small deterministic pager file (for fsck demos/tests).")
    Term.(const run $ path)

let fsck_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let roots =
    Arg.(
      value & opt_all int []
      & info [ "b"; "blob" ] ~docv:"ID" ~doc:"Blob id whose chain to walk (repeatable).")
  in
  let run path roots =
    let module Fsck = Secdb_storage.Fsck in
    let r = Fsck.run ~roots ~path () in
    Printf.printf "fsck %s\n" path;
    if r.Fsck.page_size > 0 then begin
      Printf.printf "  page size  %d\n  pages      %d\n  free       [%s]\n" r.Fsck.page_size
        r.Fsck.npages
        (String.concat " " (List.map string_of_int r.Fsck.free));
      List.iter
        (fun (head, pages) -> Printf.printf "  blob %-6d %d pages\n" head (List.length pages))
        r.Fsck.chains
    end;
    if Fsck.ok r then print_endline "clean"
    else begin
      List.iter (fun i -> Printf.printf "issue: %s\n" (Fsck.issue_to_string i)) r.Fsck.issues;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check a pager file without trusting it: header sanity, free-list acyclicity, blob \
          chain bounds and free-list overlap.")
    Term.(const run $ path $ roots)

let profiles_cmd =
  let run () =
    List.iter (fun p -> print_endline (Secdb.Encdb.profile_name p)) Secdb.Encdb.all_profiles
  in
  Cmd.v (Cmd.info "profiles" ~doc:"List the protection profiles.") Term.(const run $ const ())

(* --- network front end ------------------------------------------------- *)

let net_addr_conv =
  let parse s =
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "unix" ->
        let path = String.sub s (i + 1) (String.length s - i - 1) in
        if path = "" then Error (`Msg "unix: address needs a socket path")
        else Ok (Secdb_net.Wire.Unix_sock path)
    | Some i when String.sub s 0 i = "tcp" -> (
        match String.rindex_opt s ':' with
        | Some j when j > i -> (
            let host = String.sub s (i + 1) (j - i - 1) in
            match int_of_string_opt (String.sub s (j + 1) (String.length s - j - 1)) with
            | Some port when host <> "" && port >= 0 && port < 65536 ->
                Ok (Secdb_net.Wire.Tcp (host, port))
            | _ -> Error (`Msg "tcp: address needs HOST:PORT"))
        | _ -> Error (`Msg "tcp: address needs HOST:PORT"))
    | _ -> Error (`Msg (Printf.sprintf "bad address %S (use unix:PATH or tcp:HOST:PORT)" s))
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf (Secdb_net.Wire.addr_to_string a))

let net_addr_arg =
  Arg.(
    value
    & opt net_addr_conv (Secdb_net.Wire.Unix_sock "/tmp/secdb.sock")
    & info [ "a"; "addr" ] ~docv:"ADDR" ~doc:"Server address: unix:PATH or tcp:HOST:PORT.")

(* Shard databases for serve/restore: one Encdb per shard with disjoint id
   ranges so derived keys and ciphertext addresses never collide across
   shards, and a per-shard seed offset from [db_seed] so nonce streams are
   deterministic.  Primary, replicas and offline restores of one logical
   database must agree on [db_seed] and the shard count — byte-identical
   state (and therefore Merkle-root attestation) depends on both. *)
let shard_db ~master ~profile ~db_seed shard =
  Secdb.Encdb.create ~master ~profile
    ~seed:(Int64.add db_seed (Int64.of_int shard))
    ~first_table_id:((shard * 1_000_000) + 1)
    ~first_index_id:((shard * 1_000_000) + 1000)
    ()

let db_seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "db-seed" ] ~docv:"N"
        ~doc:
          "Base seed for the per-shard databases. Primary, replicas and restores must use the \
           same value (and the same shard count) for byte-identical state.")

(* Replay a local oplog copy into freshly built shard databases, then
   open the writer in resume mode so new appends continue the history.
   Used by a restarting primary and by a replica with a local log. *)
let boot_resume ~aead ~nonce ~path dbs =
  (if Sys.file_exists path then
     match Secdb.Oplog.recover ~path ~aead () with
     | Error e ->
         prerr_endline ("serve: oplog unreadable: " ^ e);
         exit 1
     | Ok (ops, tail) ->
         List.iter
           (fun (seq, op) ->
             match Secdb_net.Repl.apply_routed dbs op with
             | Ok () -> ()
             | Error e ->
                 Printf.eprintf "serve: oplog replay failed at op %d: %s\n%!" seq e;
                 exit 1)
           ops;
         (match tail with
         | Secdb.Oplog.Complete -> ()
         | t -> Printf.eprintf "serve: oplog tail discarded (%s)\n%!" (Secdb.Oplog.tail_to_string t));
         Printf.printf "secdb: oplog resumed at %d op(s)\n%!" (List.length ops));
  Secdb.Oplog.create ~mode:`Resume ~path ~aead ~nonce ()

let serve_cmd =
  let seed =
    Arg.(
      value & opt (some int64) None
      & info [ "seed" ] ~docv:"N" ~doc:"Fix the challenge-nonce stream (tests).")
  in
  let read_timeout =
    Arg.(
      value & opt float 30.
      & info [ "read-timeout" ] ~docv:"SECONDS"
          ~doc:"Drop a connection idle for this long (also bounds half-open peers).")
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N" ~doc:"Per-connection pipelined-response cap.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:"Data-plane shard count; 0 picks the recommended domain count.")
  in
  let oplog =
    Arg.(
      value & opt (some string) None
      & info [ "oplog" ] ~docv:"PATH"
          ~doc:
            "Authenticated operation log. Alone: serve as a primary, resuming any existing \
             history and appending every mutation. With $(b,--replica-of): keep a verbatim \
             local copy of the shipped log.")
  in
  let replica_of =
    Arg.(
      value & opt (some net_addr_conv) None
      & info [ "replica-of" ] ~docv:"ADDR"
          ~doc:
            "Serve read-only, pulling the oplog from the primary at ADDR over the authenticated \
             wire protocol and applying it continuously.")
  in
  let run profile master addr seed read_timeout max_inflight shards oplog replica_of db_seed =
    Secdb_obs.Obs.enable ();
    let nshards = if shards = 0 then Secdb_util.Pool.recommended () else shards in
    let auth_key = Secdb_net.Wire.auth_key_of_master master in
    let cfg = Secdb_net.Server.config ~auth_key ~read_timeout ~max_inflight ~shards:nshards () in
    let dbs = Array.init nshards (shard_db ~master ~profile ~db_seed) in
    let aead = lazy (Secdb_net.Repl.log_aead ~master) in
    let log_rng =
      Secdb_util.Rng.create
        ~seed:
          (match seed with
          | Some s -> s
          | None ->
              Int64.logxor
                (Int64.of_float (Unix.gettimeofday () *. 1e6))
                (Int64.of_int (Unix.getpid () * 0x9e3779b9)))
        ()
    in
    let writer =
      match oplog with
      | None -> None
      | Some path ->
          Some (boot_resume ~aead:(Lazy.force aead) ~nonce:(Secdb_net.Repl.log_nonce ~rng:log_rng) ~path dbs)
    in
    let role =
      match (replica_of, writer) with
      | None, None -> Secdb_net.Server.Standalone
      | None, Some w -> Secdb_net.Server.Primary w
      | Some _, w ->
          Secdb_net.Server.Replica
            { initial_applied = (match w with Some w -> Secdb.Oplog.count w | None -> 0) }
    in
    match Secdb_net.Server.create ?seed ~role ~config:cfg ~db:(fun i -> dbs.(i)) addr with
    | Error e ->
        prerr_endline ("serve: " ^ e);
        exit 1
    | Ok srv ->
        let stopping = ref false in
        let stop _ =
          stopping := true;
          Secdb_net.Server.request_stop srv
        in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        Printf.printf "secdb: listening on %s\n%!"
          (Secdb_net.Wire.addr_to_string (Secdb_net.Server.addr srv));
        let puller =
          match replica_of with
          | None -> None
          | Some primary ->
              Printf.printf "secdb: replicating from %s\n%!"
                (Secdb_net.Wire.addr_to_string primary);
              let applied = ref (match role with
                | Secdb_net.Server.Replica { initial_applied } -> initial_applied
                | _ -> 0)
              in
              let ack () =
                match writer with Some w -> Secdb.Oplog.count w | None -> !applied
              in
              let apply op =
                match Secdb_net.Server.apply_op srv op with
                | Ok () ->
                    incr applied;
                    Ok ()
                | Error _ as e -> e
              in
              let connect () = Secdb_net.Client.connect ~attempts:1 ~auth_key primary in
              Some
                (Thread.create
                   (fun () ->
                     match
                       Secdb_net.Repl.run_replica ~connect ~aead:(Lazy.force aead) ?writer ~ack
                         ~apply
                         ~stop:(fun () -> !stopping)
                         ()
                     with
                     | Ok () -> ()
                     | Error e ->
                         Printf.eprintf "secdb: replication stopped: %s\n%!" e;
                         Secdb_net.Server.request_stop srv)
                   ())
        in
        Secdb_net.Server.run srv;
        stopping := true;
        (match puller with Some th -> Thread.join th | None -> ());
        (match writer with Some w -> Secdb.Oplog.close w | None -> ());
        Printf.printf "secdb: drained, bye\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve an encrypted database over the authenticated secdb wire protocol until SIGTERM, \
          then drain. With $(b,--oplog) it is a primary whose history survives restarts and can \
          be shipped to replicas; with $(b,--replica-of) it serves a read-only, continuously \
          caught-up copy.")
    Term.(
      const run $ profile_arg $ master_arg $ net_addr_arg $ seed $ read_timeout $ max_inflight
      $ shards $ oplog $ replica_of $ db_seed_arg)

let restore_cmd =
  let log =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OPLOG" ~doc:"The authenticated operation log to restore from.")
  in
  let to_op =
    Arg.(
      value & opt (some int) None
      & info [ "to-op" ] ~docv:"N"
          ~doc:
            "Point-in-time: rebuild state as of the first N operations of the authenticated \
             prefix (default: all of it).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Shard count the log's writer served with (routing and ids depend on it).")
  in
  let expect_root =
    Arg.(
      value & opt (some string) None
      & info [ "expect-root" ] ~docv:"HEX"
          ~doc:
            "Fail (exit 1) unless the restored state's Merkle root equals HEX — e.g. a root \
             attested by a replica's repl_root.")
  in
  let stmts =
    Arg.(
      value & opt_all string []
      & info [ "e"; "execute" ] ~docv:"SQL"
          ~doc:"Read-only SQL to run against the restored state; repeatable.")
  in
  let run profile master log to_op shards db_seed expect_root stmts =
    let aead = Secdb_net.Repl.log_aead ~master in
    let mkdb = shard_db ~master ~profile ~db_seed in
    match Secdb_net.Repl.restore ~path:log ~aead ~shards ~mkdb ?to_op () with
    | Error e ->
        prerr_endline ("restore: " ^ e);
        exit 1
    | Ok (dbs, applied) ->
        let root = Xbytes.to_hex (Secdb_net.Repl.root_of_dbs dbs) in
        Printf.printf "restored %d op(s) across %d shard(s)\n" applied shards;
        Printf.printf "merkle root %s\n" root;
        (match expect_root with
        | Some expected when not (String.equal (String.lowercase_ascii expected) root) ->
            Printf.eprintf "restore: root mismatch (expected %s)\n%!" expected;
            exit 1
        | _ -> ());
        let failed = ref false in
        List.iter
          (fun src ->
            match Secdb_sql.Parser.parse src with
            | Error e ->
                Printf.printf "error: %s\n" e;
                failed := true
            | Ok stmt ->
                let table = Secdb_sql.Ast.stmt_table stmt in
                let db = dbs.(Secdb_db.Shard.key_index ~shards table) in
                (match Secdb_sql.Engine.exec db src with
                | Ok o -> Fmt.pr "%a@." Secdb_sql.Engine.pp_result o
                | Error e ->
                    Printf.printf "error: %s\n" e;
                    failed := true))
          stmts;
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Point-in-time recovery: authenticate an oplog's longest valid prefix, rebuild the \
          database state it encodes (optionally only its first N operations), print the state's \
          Merkle root, and optionally query it.")
    Term.(
      const run $ profile_arg $ master_arg $ log $ to_op $ shards $ db_seed_arg $ expect_root
      $ stmts)

let client_cmd =
  let stmts =
    Arg.(
      value & opt_all string []
      & info [ "e"; "execute" ] ~docv:"SQL"
          ~doc:"Statement to run; repeat the flag to pipeline several over one connection.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Dump the server-side metric registry.") in
  let root =
    Arg.(
      value & flag
      & info [ "root" ]
          ~doc:
            "Print the node's replication attestation: its applied op count and the Merkle root \
             over its full database state.")
  in
  let tamper =
    Arg.(
      value & flag
      & info [ "tamper" ]
          ~doc:
            "Corrupt the request MAC on the wire (demonstrates the server's structured \
             authentication error).")
  in
  let run master addr stmts stats root tamper =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let auth_key = Secdb_net.Wire.auth_key_of_master master in
    match Secdb_net.Client.connect ~auth_key addr with
    | Error e ->
        prerr_endline ("client: " ^ e);
        exit 1
    | Ok c ->
        Fun.protect ~finally:(fun () -> Secdb_net.Client.close c) @@ fun () ->
        let failed = ref false in
        let render = function
          | Ok (Secdb_net.Wire.Outcome o) -> Fmt.pr "%a@." Secdb_sql.Engine.pp_result o
          | Ok (Secdb_net.Wire.Stats_dump s) -> print_string s
          | Ok (Secdb_net.Wire.Root { applied; root }) ->
              Printf.printf "applied %d\nmerkle root %s\n" applied (Xbytes.to_hex root)
          | Ok _ ->
              print_endline "error [server-error]: unexpected response kind";
              failed := true
          | Error (Secdb_net.Client.Remote (code, msg)) ->
              Printf.printf "error [%s]: %s\n" (Secdb_net.Wire.err_code_to_string code) msg;
              failed := true
          | Error e ->
              print_endline ("error: " ^ Secdb_net.Client.error_to_string e);
              failed := true
        in
        let post req =
          if tamper then Secdb_net.Client.post_corrupted c req else Secdb_net.Client.post c req
        in
        let reqs =
          List.map (fun s -> Secdb_net.Wire.Sql s) stmts
          @ (if stats then [ Secdb_net.Wire.Stats `Text ] else [])
          @ (if root then [ Secdb_net.Wire.Repl_root ] else [])
        in
        if reqs = [] then begin
          prerr_endline "client: nothing to do (use -e SQL, --stats and/or --root)";
          exit 1
        end;
        (* post the whole batch before awaiting anything: one pipelined burst *)
        let ids = List.map post reqs in
        List.iter
          (fun id ->
            match id with
            | Error e -> render (Error e)
            | Ok id -> render (Secdb_net.Client.await c id))
          ids;
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Run SQL statements (pipelined) against a secdb server over the wire protocol.")
    Term.(const run $ master_arg $ net_addr_arg $ stmts $ stats $ root $ tamper)

let ping_cmd =
  let rtt = Arg.(value & flag & info [ "rtt" ] ~doc:"Also print the round-trip time.") in
  let run master addr rtt =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let auth_key = Secdb_net.Wire.auth_key_of_master master in
    match Secdb_net.Client.connect ~auth_key addr with
    | Error e ->
        prerr_endline ("ping: " ^ e);
        exit 1
    | Ok c -> (
        Fun.protect ~finally:(fun () -> Secdb_net.Client.close c) @@ fun () ->
        match Secdb_net.Client.ping c with
        | Ok dt -> if rtt then Printf.printf "pong (%.3f ms)\n" (dt *. 1e3) else print_endline "pong"
        | Error e ->
            prerr_endline ("ping: " ^ Secdb_net.Client.error_to_string e);
            exit 1)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Authenticate against a secdb server and round-trip one frame.")
    Term.(const run $ master_arg $ net_addr_arg $ rtt)

let () =
  let doc = "structure-preserving database encryption: the analysed schemes and their AEAD fix" in
  let info = Cmd.info "secdb" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        encrypt_cmd; decrypt_cmd; mu_cmd; digest_cmd; attack_cmd; sql_cmd; stats_cmd; fsck_cmd;
        pgdemo_cmd; profiles_cmd; serve_cmd; restore_cmd; client_cmd; ping_cmd;
      ]
  in
  (* usage errors exit 2, runtime failures exit 1.  Cmdliner reports bad
     option values as [`Parse] but unknown commands/flags as [`Term]; both
     are usage errors here, since every runtime failure in the commands
     above exits 1 explicitly rather than through a term error. *)
  match Cmd.eval_value group with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1

#!/usr/bin/env bash
# Full CI gate. Run from the repository root:
#
#   ci/run.sh
#
# Mirrors .github/workflows/ci.yml so the same gate runs locally and in CI.
# The dev profile keeps dune's default warnings-as-errors on the libraries.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n=== %s\n' "$*"; }

step "hygiene: no build artifacts tracked by git"
bad=$(git ls-files | grep -E '(^|/)_build/|\.install$|(^|/)BENCH_[A-Za-z0-9_]*\.json$' || true)
if [ -n "$bad" ]; then
  echo "generated artifacts are tracked by git:" >&2
  echo "$bad" >&2
  exit 1
fi

step "build"
dune build

step "unit + property + cram suite"
dune runtest

step "known-answer vectors"
dune build @kat

step "perf equivalence + planner byte-identity checks"
# includes the planner gate: every candidate plan (forced via exec_plan),
# the adaptive choice and the lock-free snapshot path must return
# byte-identical rows for point, range, join and order-by shapes
dune exec bench/perf.exe -- --fast --check

step "leakage bounds (range index attack bench, fixed seeds)"
dune build @leakage

step "crash-safety matrix (explicit rerun of the durability suites)"
dune exec -- test/test_main.exe test 'storage:crash|storage:fsck|storage:paged|repl:crash'

step "serve smoke (networked client/server end to end)"
ci/serve_smoke.sh

step "replication smoke (primary + 2 replicas, kill -9, point-in-time restore)"
ci/replication_smoke.sh

step "CI gate passed"

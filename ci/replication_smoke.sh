#!/usr/bin/env bash
# Replication smoke: boot a primary (with an oplog) and two replicas — one
# keeping a verbatim local log copy, one verify-and-apply only — write
# through the authenticated wire, then kill -9 the primary.  Both replicas
# must keep serving exactly the replicated state, their Merkle roots must
# equal the primary's last attestation, and `secdb restore` over the
# replica's log copy must rebuild byte-identical state (same root) — the
# point-in-time recovery path cross-checks the live one.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin
SECDB=_build/default/bin/secdb_cli.exe

DIR=$(mktemp -d)
PRIM=""; R1=""; R2=""
trap 'kill -9 $PRIM $R1 $R2 2>/dev/null || true; rm -rf "$DIR"' EXIT

PSOCK="$DIR/p.sock"; R1SOCK="$DIR/r1.sock"; R2SOCK="$DIR/r2.sock"

wait_sock() {
  for _ in $(seq 1 100); do [ -S "$1" ] && return 0; sleep 0.1; done
  echo "replication smoke: server never bound $1" >&2; exit 1
}

# applied-op count a node attests to, via the client's --root
applied_of() { "$SECDB" client -a "unix:$1" --root | sed -n 's/^applied //p'; }
root_of()    { "$SECDB" client -a "unix:$1" --root | sed -n 's/^merkle root //p'; }

wait_applied() { # sock, want
  for _ in $(seq 1 100); do
    [ "$(applied_of "$1")" = "$2" ] && return 0
    sleep 0.1
  done
  echo "replication smoke: $1 stuck at $(applied_of "$1")/$2 ops" >&2; exit 1
}

"$SECDB" serve -a "unix:$PSOCK" --seed 42 --shards 2 --oplog "$DIR/primary.log" \
  >"$DIR/p.out" 2>&1 &
PRIM=$!
wait_sock "$PSOCK"

"$SECDB" serve -a "unix:$R1SOCK" --seed 43 --shards 2 --replica-of "unix:$PSOCK" \
  --oplog "$DIR/replica1.log" >"$DIR/r1.out" 2>&1 &
R1=$!
"$SECDB" serve -a "unix:$R2SOCK" --seed 44 --shards 2 --replica-of "unix:$PSOCK" \
  >"$DIR/r2.out" 2>&1 &
R2=$!
wait_sock "$R1SOCK"
wait_sock "$R2SOCK"

# the workload spans two tables so records route to both shards
"$SECDB" client -a "unix:$PSOCK" \
  -e "CREATE TABLE users (id INT CLEAR, name TEXT)" \
  -e "CREATE TABLE orders (id INT CLEAR, item TEXT)" \
  -e "INSERT INTO users VALUES (1, 'alice')" \
  -e "INSERT INTO users VALUES (2, 'bob')" \
  -e "INSERT INTO orders VALUES (10, 'widget')" \
  -e "UPDATE users SET name = 'carol' WHERE id = 2" \
  -e "DELETE FROM orders WHERE id = 10" >"$DIR/write.out"

APPLIED=$(applied_of "$PSOCK")
PROOT=$(root_of "$PSOCK")
[ "$APPLIED" = "7" ] || { echo "replication smoke: primary applied $APPLIED, want 7" >&2; exit 1; }

wait_applied "$R1SOCK" "$APPLIED"
wait_applied "$R2SOCK" "$APPLIED"

# a replica must refuse writes with a structured error...
if "$SECDB" client -a "unix:$R1SOCK" -e "INSERT INTO users VALUES (9, 'eve')" \
  >"$DIR/reject.out" 2>&1; then
  echo "replication smoke: replica accepted a write" >&2; exit 1
fi
grep -q 'read-only replica' "$DIR/reject.out" || {
  echo "replication smoke: write rejection was not structured:" >&2
  cat "$DIR/reject.out" >&2; exit 1
}

# ...and the primary dies without ceremony: no drain, no final fsync beyond
# what each acked write already did
{ kill -9 "$PRIM" && wait "$PRIM"; } 2>/dev/null || true
PRIM=""

# both replicas keep serving the replicated state after the primary dies
for SOCK in "$R1SOCK" "$R2SOCK"; do
  out=$("$SECDB" client -a "unix:$SOCK" -e "SELECT name FROM users WHERE id = 2")
  echo "$out" | grep -q '"carol"' || {
    echo "replication smoke: $SOCK lost the replicated state: $out" >&2; exit 1
  }
  ROOT=$(root_of "$SOCK")
  [ "$ROOT" = "$PROOT" ] || {
    echo "replication smoke: $SOCK root $ROOT != primary's $PROOT" >&2; exit 1
  }
done

# offline point-in-time recovery over the replica's verbatim log copy
# reproduces the exact attested state (constant-size check: the root)
"$SECDB" restore "$DIR/replica1.log" --shards 2 --expect-root "$PROOT" >"$DIR/restore.out"
grep -q "restored $APPLIED op(s)" "$DIR/restore.out" || {
  echo "replication smoke: restore applied the wrong count:" >&2
  cat "$DIR/restore.out" >&2; exit 1
}

# an earlier point in time still queries: before the UPDATE, id 2 is 'bob'
"$SECDB" restore "$DIR/replica1.log" --shards 2 --to-op 5 \
  -e "SELECT name FROM users WHERE id = 2" >"$DIR/pit.out"
grep -q '"bob"' "$DIR/pit.out" || {
  echo "replication smoke: --to-op state is wrong:" >&2; cat "$DIR/pit.out" >&2; exit 1
}

# and a wrong expected root must fail loudly
if "$SECDB" restore "$DIR/replica1.log" --shards 2 \
  --expect-root "0000000000000000000000000000000000000000000000000000000000000000" \
  >/dev/null 2>&1; then
  echo "replication smoke: restore accepted a wrong root" >&2; exit 1
fi

# replicas drain cleanly
kill -TERM "$R1" "$R2"
wait "$R1" || { echo "replication smoke: replica 1 exited non-zero" >&2; exit 1; }
wait "$R2" || { echo "replication smoke: replica 2 exited non-zero" >&2; exit 1; }
R1=""; R2=""

echo "replication smoke: OK"

#!/usr/bin/env bash
# Serve smoke: boot a real server process on a private Unix socket, run an
# authenticated query over the wire, prove a tampered request is rejected
# with a structured error, and check SIGTERM drains cleanly.  This is the
# same scenario cram/serve.t pins; here it runs against the installed
# binary exactly as CI built it.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin
SECDB=_build/default/bin/secdb_cli.exe

DIR=$(mktemp -d)
SOCK="$DIR/db.sock"
trap 'kill "$SRV" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$SECDB" serve -a "unix:$SOCK" --seed 42 >"$DIR/serve.log" 2>&1 &
SRV=$!

for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "serve smoke: server never bound $SOCK" >&2; exit 1; }

[ "$("$SECDB" ping -a "unix:$SOCK")" = "pong" ] || { echo "serve smoke: ping failed" >&2; exit 1; }

out=$("$SECDB" client -a "unix:$SOCK" \
  -e "CREATE TABLE t (id INT CLEAR, v TEXT)" \
  -e "INSERT INTO t VALUES (1, 'smoke')" \
  -e "SELECT v FROM t")
echo "$out" | grep -q '"smoke"' || { echo "serve smoke: query lost data: $out" >&2; exit 1; }

if "$SECDB" client -a "unix:$SOCK" --tamper -e "SELECT v FROM t" >"$DIR/tamper.out" 2>&1; then
  echo "serve smoke: tampered request was not rejected" >&2; exit 1
fi
grep -q 'error \[auth\]: request MAC mismatch' "$DIR/tamper.out" || {
  echo "serve smoke: tamper rejection was not a structured auth error:" >&2
  cat "$DIR/tamper.out" >&2; exit 1
}

kill -TERM "$SRV"
wait "$SRV" || { echo "serve smoke: server exited non-zero on SIGTERM" >&2; exit 1; }
grep -q 'drained, bye' "$DIR/serve.log" || { echo "serve smoke: no drain message" >&2; exit 1; }
[ ! -e "$SOCK" ] || { echo "serve smoke: socket not unlinked" >&2; exit 1; }

# Sharded smoke: boot again with four shards and pipeline a script that
# spans two tables (so statements hash to different shards, and the point
# SELECTs ride the lock-free snapshot path), then run the identical script
# in-process with `secdb_cli sql` and require byte-identical outcomes —
# sharding and the snapshot fast path must be invisible to clients.
SOCK4="$DIR/db4.sock"
"$SECDB" serve -a "unix:$SOCK4" --seed 42 --shards 4 >"$DIR/serve4.log" 2>&1 &
SRV4=$!
trap 'kill "$SRV4" 2>/dev/null || true; rm -rf "$DIR"' EXIT

for _ in $(seq 1 100); do [ -S "$SOCK4" ] && break; sleep 0.1; done
[ -S "$SOCK4" ] || { echo "serve smoke: 4-shard server never bound $SOCK4" >&2; exit 1; }

STMTS=(
  "CREATE TABLE a (id INT CLEAR, v TEXT)"
  "CREATE TABLE b (id INT CLEAR, v TEXT)"
  "CREATE INDEX ON a (v)"
  "INSERT INTO a VALUES (1, 'x1')"
  "INSERT INTO a VALUES (2, 'x2')"
  "INSERT INTO b VALUES (10, 'y')"
  "UPDATE a SET v = 'x9' WHERE id = 2"
  "SELECT id, v FROM a WHERE v = 'x9'"
  "SELECT v FROM b WHERE id = 10"
  "DELETE FROM a WHERE id = 1"
  "SELECT id, v FROM a ORDER BY id"
)

CLIENT_ARGS=()
for s in "${STMTS[@]}"; do CLIENT_ARGS+=(-e "$s"); done
"$SECDB" client -a "unix:$SOCK4" "${CLIENT_ARGS[@]}" >"$DIR/wire.out"

# shell mode: drop the banner, strip the prompt, drop the empty quit line
printf '%s\n' "${STMTS[@]}" | "$SECDB" sql \
  | sed -e '1d' -e 's/^secdb> //' -e '/^$/d' >"$DIR/local.out"
sed -e '/^$/d' "$DIR/wire.out" >"$DIR/wire.flat"
mv "$DIR/wire.flat" "$DIR/wire.out"

diff -u "$DIR/local.out" "$DIR/wire.out" || {
  echo "serve smoke: 4-shard wire output diverges from in-process engine" >&2; exit 1
}
grep -q '"x9"' "$DIR/wire.out" || { echo "serve smoke: sharded query lost data" >&2; exit 1; }

kill -TERM "$SRV4"
wait "$SRV4" || { echo "serve smoke: 4-shard server exited non-zero on SIGTERM" >&2; exit 1; }
grep -q 'drained, bye' "$DIR/serve4.log" || { echo "serve smoke: 4-shard no drain message" >&2; exit 1; }

echo "serve smoke: OK"

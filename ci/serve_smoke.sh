#!/usr/bin/env bash
# Serve smoke: boot a real server process on a private Unix socket, run an
# authenticated query over the wire, prove a tampered request is rejected
# with a structured error, and check SIGTERM drains cleanly.  This is the
# same scenario cram/serve.t pins; here it runs against the installed
# binary exactly as CI built it.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin
SECDB=_build/default/bin/secdb_cli.exe

DIR=$(mktemp -d)
SOCK="$DIR/db.sock"
trap 'kill "$SRV" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$SECDB" serve -a "unix:$SOCK" --seed 42 >"$DIR/serve.log" 2>&1 &
SRV=$!

for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "serve smoke: server never bound $SOCK" >&2; exit 1; }

[ "$("$SECDB" ping -a "unix:$SOCK")" = "pong" ] || { echo "serve smoke: ping failed" >&2; exit 1; }

out=$("$SECDB" client -a "unix:$SOCK" \
  -e "CREATE TABLE t (id INT CLEAR, v TEXT)" \
  -e "INSERT INTO t VALUES (1, 'smoke')" \
  -e "SELECT v FROM t")
echo "$out" | grep -q '"smoke"' || { echo "serve smoke: query lost data: $out" >&2; exit 1; }

if "$SECDB" client -a "unix:$SOCK" --tamper -e "SELECT v FROM t" >"$DIR/tamper.out" 2>&1; then
  echo "serve smoke: tampered request was not rejected" >&2; exit 1
fi
grep -q 'error \[auth\]: request MAC mismatch' "$DIR/tamper.out" || {
  echo "serve smoke: tamper rejection was not a structured auth error:" >&2
  cat "$DIR/tamper.out" >&2; exit 1
}

kill -TERM "$SRV"
wait "$SRV" || { echo "serve smoke: server exited non-zero on SIGTERM" >&2; exit 1; }
grep -q 'drained, bye' "$DIR/serve.log" || { echo "serve smoke: no drain message" >&2; exit 1; }
[ ! -e "$SOCK" ] || { echo "serve smoke: socket not unlinked" >&2; exit 1; }

echo "serve smoke: OK"

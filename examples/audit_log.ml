(* Audit log and disaster recovery.

   Mutations stream into an encrypted, replay-protected operation log; the
   32-byte Merkle anchor plus the log's record count are the only things
   the operator keeps out of band (next to the master key).  The demo
   destroys the primary, rebuilds it from the log, and then shows that a
   doctored log does not replay.

   Run with:  dune exec examples/audit_log.exe *)

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema

let log_path = Filename.concat (Filename.get_temp_dir_name ()) "secdb_audit.log"

let log_aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'A'))

let schema =
  Schema.v ~table_name:"ledger"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "entry" Value.Ktext;
    ]

let fresh () =
  let db = Encdb.create ~master:"ledger master" ~profile:(Encdb.Fixed Encdb.Eax) () in
  Encdb.create_table db schema;
  Encdb.create_index db ~table:"ledger" ~col:"entry";
  db

let () =
  let db = fresh () in
  let w = Oplog.create ~path:log_path ~aead:log_aead ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) () in
  let mutate op =
    (match Oplog.apply db op with Ok () -> () | Error e -> failwith e);
    ignore (Oplog.append w op)
  in
  for i = 0 to 9 do
    mutate (Oplog.Insert { table = "ledger";
                           values = [ Value.Int (Int64.of_int i);
                                      Value.Text (Printf.sprintf "entry %02d" i) ] })
  done;
  mutate (Oplog.Update { table = "ledger"; row = 3; col = "entry"; value = Value.Text "amended" });
  mutate (Oplog.Delete { table = "ledger"; row = 8 });
  let expected_count = Oplog.count w in
  Oplog.close w;
  Printf.printf "out-of-band state: %d log records, anchor %s...\n" expected_count
    (String.sub (Secdb_util.Xbytes.to_hex (Encdb.digest db)) 0 16);

  (* the primary burns down; rebuild from the log alone *)
  let recovered = fresh () in
  (match Oplog.replay_into recovered ~path:log_path ~aead:log_aead () with
  | Ok n when n = expected_count -> Printf.printf "recovered: replayed %d operations\n" n
  | Ok n -> Printf.printf "SUSPICIOUS: log holds %d records, expected %d\n" n expected_count
  | Error e -> Printf.printf "replay refused after %d ops: %s\n" e.Oplog.applied e.Oplog.reason);
  (match Encdb.select_eq recovered ~table:"ledger" ~col:"entry" (Value.Text "amended") with
  | Ok [ (3, _) ] -> print_endline "recovered database answers correctly"
  | _ -> print_endline "UNEXPECTED recovery state");

  (* an auditor-forger edits one byte of the log *)
  let data = In_channel.with_open_bin log_path In_channel.input_all in
  let b = Bytes.of_string data in
  let pos = Bytes.length b / 2 in
  Bytes.set b pos (Char.chr (Char.code data.[pos] lxor 0x80));
  Out_channel.with_open_bin log_path (fun oc -> Out_channel.output_bytes oc b);
  match Oplog.replay ~path:log_path ~aead:log_aead () with
  | Error e -> Printf.printf "tampered log rejected: %s\n" e
  | Ok _ -> print_endline "UNEXPECTED: tampered log replayed"

  $ secdb_cli encrypt "hello world" -p elovici-append -t 2 -r 7 -c 1
  $ secdb_cli decrypt $(secdb_cli encrypt "hello world" -p elovici-append -t 2 -r 7 -c 1 | grep stored | cut -d' ' -f3) -p elovici-append -t 2 -r 7 -c 1
  $ secdb_cli decrypt $(secdb_cli encrypt "hello world" -p elovici-append -t 2 -r 7 -c 1 | grep stored | cut -d' ' -f3) -p elovici-append -t 2 -r 8 -c 1
  $ secdb_cli decrypt $(secdb_cli encrypt "top secret" -p fixed-eax -t 1 -r 0 -c 0 | grep stored | cut -d' ' -f3) -p fixed-eax -t 1 -r 0 -c 0
  $ secdb_cli attack A3
  $ secdb_cli mu -t 1 -r 2 -c 3
  $ secdb_cli profiles
  $ secdb_cli sql -e "CREATE TABLE t (id INT CLEAR, v TEXT)"
  $ cat > script.sql <<'SQL'
  > CREATE TABLE ledger (id INT CLEAR, amount INT);
  > INSERT INTO ledger VALUES (0, 120);
  > INSERT INTO ledger VALUES (1, 80);
  > CREATE INDEX ON ledger (amount);
  > SELECT count(*), sum(amount) FROM ledger WHERE amount >= 100;
  > SQL
  $ secdb_cli sql -f script.sql | tail -4

(* Client-side tree walk (the paper's Remark 1).

   Instead of handing the session key to the DBMS, the client can keep it
   and steer the index descent itself, at the cost of one communication
   round per tree level.  The paper notes this "might be worthwhile if the
   index uses d-ary B+-trees with d >= 2": the rounds fall logarithmically
   with the fan-out d while the bytes shipped per round grow.

   Run with:  dune exec examples/client_walk_demo.exe *)

module Value = Secdb_db.Value
module B = Secdb_index.Bptree
module CW = Secdb_index.Client_walk

let n_keys = 20_000

let build order =
  let codec =
    Secdb_schemes.Fixed_index.codec
      ~aead:(Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'k')))
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
      ~indexed_table:1 ~indexed_col:0 ()
  in
  let t = B.create ~order ~id:1000 ~codec () in
  for i = 0 to n_keys - 1 do
    B.insert t (Value.Int (Int64.of_int ((i * 7919) mod n_keys))) ~table_row:i
  done;
  t

let () =
  Printf.printf "client-walk lookups over %d keys (AEAD-fixed index)\n\n" n_keys;
  Printf.printf "%6s %8s %8s %12s %14s\n" "d" "height" "rounds" "bytes->client" "bytes->server";
  List.iter
    (fun order ->
      let t = build order in
      (* average over a few probes *)
      let probes = [ 0; 137; 4242; 9999; 19998 ] in
      let totals = List.map (fun p -> snd (CW.find t (Value.Int (Int64.of_int p)))) probes in
      let avg f = List.fold_left (fun a s -> a + f s) 0 totals / List.length totals in
      Printf.printf "%6d %8d %8d %12d %14d\n" order (B.height t)
        (avg (fun s -> s.CW.rounds))
        (avg (fun s -> s.CW.bytes_to_client))
        (avg (fun s -> s.CW.bytes_to_server)))
    [ 2; 4; 8; 16; 64; 128 ];
  print_endline "\nrounds ~ ceil(log_d N): larger fan-out trades rounds for bandwidth.";
  print_endline "(each round ships one node's encrypted payloads; the client decrypts";
  print_endline " and answers with a 1-byte direction, so the key never leaves it)"

examples/client_walk_demo.mli:

examples/sql_tour.mli:

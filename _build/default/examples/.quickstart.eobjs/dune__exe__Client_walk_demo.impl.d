examples/client_walk_demo.ml: Int64 List Printf Secdb_aead Secdb_cipher Secdb_db Secdb_index Secdb_schemes String

examples/audit_log.mli:

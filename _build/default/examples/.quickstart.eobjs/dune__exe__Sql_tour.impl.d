examples/sql_tour.ml: Array Encdb Fmt List Printf Secdb Secdb_index Secdb_sql

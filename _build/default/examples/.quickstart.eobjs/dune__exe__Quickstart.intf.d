examples/quickstart.mli:

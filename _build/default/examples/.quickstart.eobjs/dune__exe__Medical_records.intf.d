examples/medical_records.mli:

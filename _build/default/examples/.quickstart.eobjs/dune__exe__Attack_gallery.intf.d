examples/attack_gallery.mli:

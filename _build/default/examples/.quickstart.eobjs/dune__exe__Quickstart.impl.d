examples/quickstart.ml: Array Encdb Int64 List Printf Secdb Secdb_db Secdb_query

examples/key_rotation.mli:

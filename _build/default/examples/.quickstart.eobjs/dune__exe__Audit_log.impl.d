examples/audit_log.ml: Bytes Char Encdb Filename In_channel Int64 Oplog Out_channel Printf Secdb Secdb_aead Secdb_cipher Secdb_db Secdb_util String

examples/medical_records.ml: Array Encdb Hashtbl Int64 List Printf Secdb Secdb_db Secdb_query Secdb_util

examples/key_rotation.ml: Encdb Filename Int64 Option Printf Secdb Secdb_db Secdb_query

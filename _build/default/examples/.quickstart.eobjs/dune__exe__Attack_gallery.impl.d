examples/attack_gallery.ml: Array Int64 List Printf Rng Secdb_aead Secdb_attacks Secdb_cipher Secdb_db Secdb_index Secdb_query Secdb_schemes Secdb_util String Xbytes

(* SQL tour: the encrypted database behind a SQL front end.

   Every statement below runs against AEAD-protected storage: the DDL picks
   which columns are encrypted, the planner routes WHERE clauses through
   encrypted indexes when it can (see the EXPLAIN output), and storage-level
   tampering surfaces as a query error rather than wrong results.

   Run with:  dune exec examples/sql_tour.exe
   An interactive prompt: dune exec bin/secdb_cli.exe -- sql *)

open Secdb
module E = Secdb_sql.Engine
module B = Secdb_index.Bptree

let statements =
  [
    "CREATE TABLE staff (id INT CLEAR, name TEXT, dept TEXT, salary INT)";
    "INSERT INTO staff VALUES (0, 'ada', 'research', 9100)";
    "INSERT INTO staff VALUES (1, 'grace', 'systems', 8700)";
    "INSERT INTO staff VALUES (2, 'edsger', 'research', 8200)";
    "INSERT INTO staff VALUES (3, 'donald', 'systems', 9300)";
    "INSERT INTO staff VALUES (4, 'barbara', 'research', 8900)";
    "CREATE INDEX ON staff (salary)";
    "EXPLAIN SELECT name FROM staff WHERE salary BETWEEN 8500 AND 9200";
    "SELECT name, salary FROM staff WHERE salary BETWEEN 8500 AND 9200 ORDER BY salary";
    "EXPLAIN SELECT name FROM staff WHERE dept = 'research'";
    "SELECT name FROM staff WHERE dept = 'research' AND salary > 8500";
    "UPDATE staff SET salary = 9500 WHERE name = 'grace'";
    "SELECT name FROM staff ORDER BY salary DESC LIMIT 2";
    "DELETE FROM staff WHERE id = 2";
    "SELECT * FROM staff ORDER BY id";
  ]

let () =
  let db = Encdb.create ~master:"sql tour" ~profile:(Encdb.Fixed Encdb.Ocb) () in
  List.iter
    (fun s ->
      Printf.printf "\nsecdb> %s\n" s;
      match E.exec db s with
      | Ok r -> Fmt.pr "%a@." E.pp_result r
      | Error e -> Printf.printf "error: %s\n" e)
    statements;
  (* an adversary edits the stored index; the next query refuses *)
  print_endline "\n-- adversary relocates an index payload in storage --";
  let tree = Encdb.index db ~table:"staff" ~col:"salary" in
  let leaves = ref [] in
  B.iter_nodes
    (fun v -> if v.B.node_kind = B.Leaf && Array.length v.B.payloads > 0 then leaves := v :: !leaves)
    tree;
  (match !leaves with
  | a :: b :: _ -> B.set_payload tree ~row:a.B.row ~slot:0 b.B.payloads.(0)
  | _ -> ());
  let q = "SELECT name FROM staff WHERE salary >= 0" in
  Printf.printf "\nsecdb> %s\n" q;
  match E.exec db q with
  | Ok r -> Fmt.pr "UNEXPECTED: %a@." E.pp_result r
  | Error e -> Printf.printf "error: %s\n" e

(* Attack gallery: every cryptanalytic result of the paper, live.

   Each section instantiates the analysed scheme exactly as the paper's
   counter-example does (AES + CBC with zero IV, SHA-1-truncated µ, OMAC
   under the shared key), runs the attack, and then repeats it against the
   Section 4 AEAD fix.

   Run with:  dune exec examples/attack_gallery.exe *)

open Secdb_util
module Value = Secdb_db.Value
module Address = Secdb_db.Address
module B = Secdb_index.Bptree
module Einst = Secdb_schemes.Einst
module PM = Secdb_attacks.Pattern_matching
module Forgery = Secdb_attacks.Forgery
module Sub = Secdb_attacks.Substitution
module MacI = Secdb_attacks.Mac_interaction
module KS = Secdb_attacks.Keystream_reuse

let key = Xbytes.of_hex "000102030405060708090a0b0c0d0e0f"
let aes = Secdb_cipher.Aes.cipher ~key
let mu = Address.mu_sha1 ~width:16
let e_cbc0 = Einst.cbc_zero_iv aes
let append = Secdb_schemes.Cell_append.make ~e:e_cbc0 ~mu

let fixed =
  Secdb_schemes.Fixed_cell.make ~aead:(Secdb_aead.Eax.make aes)
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) ()

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let rng = Rng.create ~seed:1L () in

  section "A1  Pattern matching on the Append-Scheme (Sect. 3.1)";
  let prefix = "Patient presents with acute..." ^ "  " in
  let plaintexts =
    List.init 12 (fun i ->
        (i, if i mod 2 = 0 then prefix ^ Rng.ascii rng 20 else Rng.ascii rng 52))
  in
  let r = PM.cells ~scheme:append ~block:16 ~table:1 ~col:0 plaintexts in
  Printf.printf "  broken: %d/%d prefix-sharing pairs visible in ciphertext (%d correct)\n"
    r.PM.detected_pairs r.PM.true_pairs r.PM.true_positives;
  let rf =
    PM.cells ~scheme:fixed ~extract:PM.extract_fixed_cell ~block:16 ~table:1 ~col:0 plaintexts
  in
  Printf.printf "  fixed : %d pairs visible\n" rf.PM.detected_pairs;

  section "A2  Existential forgery on the Append-Scheme (Sect. 3.1)";
  let addr = Address.v ~table:1 ~row:9 ~col:0 in
  (match Forgery.forge ~scheme:append ~block:16 ~addr ~value:(Rng.ascii rng 48) ~rng with
  | Ok o ->
      Printf.printf
        "  broken: replaced ciphertext block %d; decryption accepted=%b, content changed=%b\n"
        o.Forgery.modified_ct_block o.Forgery.accepted o.Forgery.changed
  | Error e -> Printf.printf "  error: %s\n" e);
  (match Forgery.forge ~scheme:fixed ~block:16 ~addr ~value:(Rng.ascii rng 48) ~rng with
  | Ok o -> Printf.printf "  fixed : accepted=%b\n" o.Forgery.accepted
  | Error e -> Printf.printf "  error: %s\n" e);

  section "A3  XOR-Scheme substitution: the 1024-address experiment (Sect. 3.1)";
  let ex = Sub.collision_search ~mu ~table:5 ~col:2 ~trials:1024 in
  Printf.printf "  %d high-bit collisions among %d trial addresses (expected %.1f; paper saw 6)\n"
    (List.length ex.Sub.collisions) ex.Sub.trials ex.Sub.expected;
  let xor_scheme =
    Secdb_schemes.Cell_xor.make ~e:e_cbc0 ~mu ~validate:Xbytes.is_ascii7 ()
  in
  (match ex.Sub.collisions with
  | (r1, r2) :: _ ->
      let rel =
        Sub.relocate ~scheme:xor_scheme ~table:5 ~col:2 ~value:"confidential data" ~from_row:r1
          ~to_row:r2
      in
      Printf.printf "  broken: ciphertext moved row %d -> %d: accepted=%b\n" r1 r2
        rel.Sub.accepted;
      let relf =
        Sub.relocate ~scheme:fixed ~table:5 ~col:2 ~value:"confidential data" ~from_row:r1
          ~to_row:r2
      in
      Printf.printf "  fixed : accepted=%b\n" relf.Sub.accepted
  | [] -> print_endline "  (no collision this run)");

  section "A4/A5  Index <-> table linkage (Sect. 3.2 / 3.3)";
  let texts =
    List.init 10 (fun i -> if i mod 2 = 0 then prefix ^ Rng.ascii rng 17 else Rng.ascii rng 49)
  in
  let run_link name codec extract =
    let tree = B.create ~order:4 ~id:1000 ~codec () in
    List.iteri (fun i s -> B.insert tree (Value.Text s) ~table_row:i) texts;
    let plaintexts = List.mapi (fun i s -> (i, Value.encode (Value.Text s))) texts in
    let r =
      PM.index_correlation ~cell_scheme:append ~tree ~payload_ciphertext:extract ~block:16
        ~table:1 ~col:0 ~plaintexts
    in
    Printf.printf "  %-28s %d links, %d correct\n" name r.PM.total_links r.PM.correct_links
  in
  run_link "[3] index scheme:" (Secdb_schemes.Index3.codec ~e:e_cbc0) PM.extract_index3;
  run_link "[12] improved (randomised):"
    (Secdb_schemes.Index12.codec ~e:e_cbc0 ~mac_cipher:aes ~rng ~indexed_table:1 ~indexed_col:0 ())
    PM.extract_index12;
  run_link "fixed AEAD index:"
    (Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make aes)
       ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) ~indexed_table:1 ~indexed_col:0 ())
    PM.extract_fixed;

  section "A6  Same-key OMAC interaction on [12] (Sect. 3.3)";
  let ctx = { B.index_table = 1000; node_row = 4; kind = B.Leaf } in
  let same_key =
    Secdb_schemes.Index12.codec ~e:e_cbc0 ~mac_cipher:aes ~rng ~indexed_table:1 ~indexed_col:0 ()
  in
  let value = Value.Text (Rng.ascii rng 47) in
  (match MacI.run ~codec:same_key ~ctx ~block:16 ~value ~table_row:7 ~rng with
  | Ok o ->
      Printf.printf
        "  same key     : tampered block %d, MAC verifies=%b, value changed=%b\n"
        o.MacI.modified_ct_block o.MacI.accepted o.MacI.value_changed
  | Error e -> Printf.printf "  error: %s\n" e);
  let indep =
    Secdb_schemes.Index12.codec ~e:e_cbc0
      ~mac_cipher:(Secdb_cipher.Aes.cipher ~key:(Xbytes.of_hex "ffeeddccbbaa99887766554433221100"))
      ~rng ~indexed_table:1 ~indexed_col:0 ()
  in
  (match MacI.run ~codec:indep ~ctx ~block:16 ~value ~table_row:7 ~rng with
  | Ok o -> Printf.printf "  separate keys: MAC verifies=%b\n" o.MacI.accepted
  | Error e -> Printf.printf "  error: %s\n" e);

  section "A7  Keystream reuse under CTR/OFB instantiation (footnote 2)";
  let stream_scheme = Secdb_schemes.Cell_append.make ~e:(Einst.ctr_zero aes) ~mu in
  let v1 = "public notice: visiting hours are 9am to 5pm daily" in
  let v2 = "secret: patient 0231 diagnosed with hypertension.." in
  let c1 = Secdb_schemes.Cell_scheme.encrypt stream_scheme (Address.v ~table:1 ~row:0 ~col:0) v1 in
  let c2 = Secdb_schemes.Cell_scheme.encrypt stream_scheme (Address.v ~table:1 ~row:1 ~col:0) v2 in
  let recovered =
    Xbytes.take (String.length v2)
      (KS.crib_drag ~known:v1 ~xor:(KS.plaintext_xor_append ~ct_a:c1 ~ct_b:c2))
  in
  Printf.printf "  known cell 0, recovered cell 1: %S\n" recovered;

  section "A8  Leaf-level integrity bug in the [12] query code (footnote 1)";
  let tree = B.create ~order:4 ~id:1000 ~codec:same_key () in
  for i = 0 to 40 do
    B.insert tree (Value.Int (Int64.of_int (i mod 8))) ~table_row:i
  done;
  let leaves = ref [] in
  B.iter_nodes
    (fun v -> if v.B.node_kind = B.Leaf && Array.length v.B.payloads > 0 then leaves := v :: !leaves)
    tree;
  (match !leaves with
  | a :: b :: _ -> B.set_payload tree ~row:a.B.row ~slot:0 b.B.payloads.(0)
  | _ -> ());
  let describe mode =
    match Secdb_query.Walker.range tree ~mode () with
    | Ok a -> Printf.sprintf "answered silently with %d results" (List.length a.results)
    | Error _ -> "detected the tampering"
  in
  Printf.printf "  published pseudo-code: %s\n" (describe Secdb_query.Walker.Published);
  Printf.printf "  corrected pseudo-code: %s\n" (describe Secdb_query.Walker.Corrected)

(* Medical records: the motivating workload for database encryption — a
   hospital database whose storage administrator must not learn diagnoses.

   Loads the same records under each protection profile, runs identical
   queries, and shows (a) that query answers agree, (b) what a storage-level
   adversary learns under each profile, (c) the storage cost of protection.

   Run with:  dune exec examples/medical_records.exe *)

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Xbytes = Secdb_util.Xbytes
module Rng = Secdb_util.Rng
module Etable = Secdb_query.Encrypted_table

let n_patients = 300

let diagnoses =
  [|
    "essential hypertension, benign, without complications.......";
    "essential hypertension, benign, with renal manifestations...";
    "type 2 diabetes mellitus without mention of complication....";
    "type 2 diabetes mellitus with neurological manifestations...";
    "seasonal allergic rhinitis due to pollen....................";
    "acute upper respiratory infection of unspecified site.......";
  |]

let schema =
  Schema.v ~table_name:"records"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "patient" Value.Ktext;
      Schema.column "diagnosis" Value.Ktext;
      Schema.column "age" Value.Kint;
    ]

let load profile =
  let rng = Rng.create ~seed:2026L () in
  let db = Encdb.create ~master:"hospital master key" ~profile () in
  Encdb.create_table db schema;
  for i = 0 to n_patients - 1 do
    ignore
      (Encdb.insert db ~table:"records"
         [
           Value.Int (Int64.of_int i);
           Value.Text (Rng.alpha rng 8 ^ " " ^ Rng.alpha rng 10);
           Value.Text (Rng.pick rng diagnoses);
           Value.Int (Int64.of_int (18 + Rng.int rng 70));
         ])
  done;
  Encdb.create_index db ~table:"records" ~col:"diagnosis";
  Encdb.create_index db ~table:"records" ~col:"age";
  db

let probe = Value.Text diagnoses.(2)

let adversary_view db =
  (* The storage adversary buckets ciphertexts by their first three blocks.
     The address checksum lives in the tail, so under the broken
     deterministic schemes equal diagnoses share their leading blocks — the
     paper's pattern-matching leak; under the fixed schemes every stored
     cell is fresh. *)
  let t = Encdb.table db "records" in
  let classes = Hashtbl.create 64 in
  for row = 0 to Etable.nrows t - 1 do
    match Etable.raw_ciphertext t ~row ~col:2 with
    | Some ct -> Hashtbl.replace classes (Xbytes.take 48 ct) ()
    | None -> ()
  done;
  Hashtbl.length classes

let () =
  Printf.printf "%-22s %8s %8s %14s %16s\n" "profile" "eq-query" "range"
    "ct-classes" "bytes/diagnosis";
  List.iter
    (fun profile ->
      let db = load profile in
      let eq =
        match Encdb.select_eq db ~table:"records" ~col:"diagnosis" probe with
        | Ok rows -> List.length rows
        | Error e -> failwith e
      in
      let range =
        match
          Encdb.select_range db ~table:"records" ~col:"age" ~lo:(Value.Int 30L)
            ~hi:(Value.Int 40L) ()
        with
        | Ok rows -> List.length rows
        | Error e -> failwith e
      in
      let classes = adversary_view db in
      let t = Encdb.table db "records" in
      let stored = Etable.storage_bytes t ~col:2 in
      Printf.printf "%-22s %8d %8d %10d/%3d %16.1f\n" (Encdb.profile_name profile) eq range
        classes n_patients
        (float_of_int stored /. float_of_int n_patients);
      Encdb.close db)
    Encdb.all_profiles;
  print_endline "";
  print_endline
    "ct-classes: distinct leading-block patterns the storage adversary sees.";
  print_endline
    (Printf.sprintf
       "The Append-Scheme profiles collapse to %d classes — one per distinct\n\
        diagnosis, full equality leakage (paper Sect. 3.1).  The XOR-Scheme\n\
        masks the FIRST block with the address digest, so CBC chaining hides\n\
        cross-row equality here — but its position binding falls to the A3\n\
        substitution attack instead.  The fixed profiles show %d distinct\n\
        patterns: nothing to correlate, at 25-41 extra bytes per cell.\n\
        Query answers are identical everywhere."
       (Array.length diagnoses) n_patients)

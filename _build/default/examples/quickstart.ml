(* Quickstart: an encrypted database with the paper's fixed AEAD scheme.

   Run with:  dune exec examples/quickstart.exe *)

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema

let () =
  (* Open a secure session: per-table/column keys are derived from the
     master key and handed to the (partially trusted) DBMS. *)
  let db =
    Encdb.create ~master:"correct horse battery staple" ~profile:(Encdb.Fixed Encdb.Eax) ()
  in

  (* A table whose sensitive columns are protected; structure (row count,
     column positions, the clear [id] column) is preserved. *)
  Encdb.create_table db
    (Schema.v ~table_name:"employees"
       [
         Schema.column ~protection:Schema.Clear "id" Value.Kint;
         Schema.column "name" Value.Ktext;
         Schema.column "salary" Value.Kint;
       ]);

  List.iteri
    (fun i (name, salary) ->
      ignore
        (Encdb.insert db ~table:"employees"
           [ Value.Int (Int64.of_int i); Value.Text name; Value.Int salary ]))
    [ ("ada", 9100L); ("grace", 8700L); ("edsger", 8200L); ("donald", 9300L); ("barbara", 8900L) ];

  (* An encrypted index: the server can search it during the session, but
     the stored index leaks nothing about the salaries. *)
  Encdb.create_index db ~table:"employees" ~col:"salary";

  (* Range query through the encrypted index. *)
  (match
     Encdb.select_range db ~table:"employees" ~col:"salary" ~lo:(Value.Int 8500L)
       ~hi:(Value.Int 9200L) ()
   with
  | Ok rows ->
      print_endline "salary in [8500, 9200]:";
      List.iter
        (fun (_, vs) ->
          Printf.printf "  %-8s %Ld\n" (Value.text_exn vs.(1)) (Value.int_exn vs.(2)))
        rows
  | Error e -> Printf.printf "query failed: %s\n" e);

  (* An adversary with raw storage access relocates a ciphertext...  *)
  let table = Encdb.table db "employees" in
  Secdb_query.Encrypted_table.swap_cells table ~col:2 ~row_a:0 ~row_b:2;

  (* ... and the authenticated cell addresses catch it immediately. *)
  (match Secdb_query.Encrypted_table.get table ~row:0 ~col:2 with
  | Ok v -> Printf.printf "UNEXPECTED: tampering accepted (%s)\n" (Value.to_string v)
  | Error e -> Printf.printf "tampering detected: %s\n" e);

  (* End the session: keys are wiped, the stored data stays protected. *)
  Encdb.close db;
  print_endline "session closed."

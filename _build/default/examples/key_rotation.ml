(* Key rotation over a persisted encrypted database.

   The paper's trust model hands session keys to the DBMS and wipes them
   afterwards; operationally that demands a rotation story: decrypt under
   the outgoing master, re-encrypt everything (cells and index payloads,
   each bound to its position) under the incoming one, and prove that

     - the rotated database answers identically,
     - every stored byte actually changed,
     - the old master no longer opens anything.

   Run with:  dune exec examples/key_rotation.exe *)

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Etable = Secdb_query.Encrypted_table

let dir = Filename.concat (Filename.get_temp_dir_name ()) "secdb_rotation_demo"

let schema =
  Schema.v ~table_name:"vault"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "secret" Value.Ktext;
    ]

let () =
  let profile = Encdb.Fixed Encdb.Gcm in
  let db = Encdb.create ~master:"winter-2025-master" ~profile () in
  Encdb.create_table db schema;
  for i = 0 to 99 do
    ignore
      (Encdb.insert db ~table:"vault"
         [ Value.Int (Int64.of_int i); Value.Text (Printf.sprintf "secret payload #%03d" i) ])
  done;
  Encdb.create_index db ~table:"vault" ~col:"secret";
  let before = Option.get (Etable.raw_ciphertext (Encdb.table db "vault") ~row:42 ~col:1) in

  (* rotate: everything is decrypted and re-encrypted under the new keys *)
  let db = Encdb.rotate_master db ~new_master:"spring-2026-master" in
  let after = Option.get (Etable.raw_ciphertext (Encdb.table db "vault") ~row:42 ~col:1) in
  Printf.printf "stored bytes changed: %b\n" (before <> after);

  (match Encdb.select_eq db ~table:"vault" ~col:"secret" (Value.Text "secret payload #042") with
  | Ok [ (42, _) ] -> print_endline "rotated database answers correctly"
  | Ok _ -> print_endline "UNEXPECTED: wrong answer after rotation"
  | Error e -> Printf.printf "UNEXPECTED: %s\n" e);

  (* persist under the new master, then demonstrate that the old one fails *)
  Encdb.save db ~dir;
  Encdb.close db;
  (match Encdb.load ~master:"winter-2025-master" ~profile ~dir ~seed:5L () with
  | Error e -> Printf.printf "old master rejected at load: %s\n" e
  | Ok stale -> (
      match Encdb.select_eq stale ~table:"vault" ~col:"secret" (Value.Text "secret payload #042") with
      | Error _ -> print_endline "old master key opens nothing (decryption fails closed)"
      | Ok [] -> print_endline "old master key finds nothing"
      | Ok _ -> print_endline "UNEXPECTED: old master still works"));
  match Encdb.load ~master:"spring-2026-master" ~profile ~dir ~seed:6L () with
  | Error e -> Printf.printf "UNEXPECTED: %s\n" e
  | Ok db' -> (
      match Encdb.select_eq db' ~table:"vault" ~col:"secret" (Value.Text "secret payload #007") with
      | Ok [ (7, _) ] -> print_endline "new master reopens the saved database"
      | _ -> print_endline "UNEXPECTED: reload failed")

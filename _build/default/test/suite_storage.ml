open Secdb_util
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module B = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table
module Storage = Secdb_storage.Storage
module Einst = Secdb_schemes.Einst

let key = Xbytes.of_hex "00112233445566778899aabbccddeeff"
let aes = Secdb_cipher.Aes.cipher ~key
let mu = Secdb_db.Address.mu_sha1 ~width:16

let fixed_scheme () =
  Secdb_schemes.Fixed_cell.make
    ~aead:(Secdb_aead.Eax.make aes)
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) ()

let schema =
  Schema.v ~table_name:"records"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "payload" Value.Ktext;
    ]

let sample_table scheme =
  let t = Etable.create ~id:7 schema ~scheme:(fun _ -> scheme) in
  for i = 0 to 49 do
    ignore
      (Etable.insert t
         [ Value.Int (Int64.of_int i); Value.Text (Printf.sprintf "record body %04d" i) ])
  done;
  t

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("secdb_test_" ^ name)

let test_table_roundtrip () =
  List.iter
    (fun scheme ->
      let t = sample_table scheme in
      let path = tmp "table.bin" in
      Storage.save_table ~path t;
      match Storage.load_table ~path ~scheme:(fun _ -> scheme) with
      | Error e -> Alcotest.fail e
      | Ok t' ->
          Alcotest.(check int) "id" (Etable.id t) (Etable.id t');
          Alcotest.(check int) "rows" (Etable.nrows t) (Etable.nrows t');
          for row = 0 to Etable.nrows t - 1 do
            for col = 0 to 1 do
              if not (Value.equal (Etable.get_exn t ~row ~col) (Etable.get_exn t' ~row ~col))
              then Alcotest.fail "cell mismatch after reload"
            done
          done;
          (* stored bytes identical, so ciphertexts survived untouched *)
          Alcotest.(check (option string)) "raw ciphertext preserved"
            (Etable.raw_ciphertext t ~row:3 ~col:1)
            (Etable.raw_ciphertext t' ~row:3 ~col:1))
    [ Secdb_schemes.Cell_append.make ~e:(Einst.cbc_zero_iv aes) ~mu; fixed_scheme () ]

let index_codec () =
  Secdb_schemes.Fixed_index.codec
    ~aead:(Secdb_aead.Eax.make aes)
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
    ~indexed_table:7 ~indexed_col:1 ()

let sample_index codec =
  let tree = B.create ~order:3 ~id:1000 ~codec () in
  for i = 0 to 199 do
    B.insert tree (Value.Int (Int64.of_int ((i * 17) mod 50))) ~table_row:i
  done;
  (* exercise deletions so the snapshot contains freed rows *)
  for i = 0 to 49 do
    ignore (B.delete tree (Value.Int (Int64.of_int ((i * 17) mod 50))) ~table_row:i)
  done;
  tree

let test_index_roundtrip () =
  let codec = index_codec () in
  let tree = sample_index codec in
  let path = tmp "index.bin" in
  Storage.save_index ~path tree;
  match Storage.load_index ~path ~codec with
  | Error e -> Alcotest.fail e
  | Ok tree' ->
      Alcotest.(check int) "size" (B.size tree) (B.size tree');
      Alcotest.(check int) "height" (B.height tree) (B.height tree');
      (match B.validate tree' with Ok () -> () | Error e -> Alcotest.fail e);
      for probe = 0 to 49 do
        let v = Value.Int (Int64.of_int probe) in
        Alcotest.(check (list int))
          (Printf.sprintf "find %d" probe)
          (B.find tree v) (B.find tree' v)
      done;
      (* reloaded tree keeps working: inserts land in fresh rows *)
      B.insert tree' (Value.Int 999L) ~table_row:777;
      Alcotest.(check (list int)) "insert after reload" [ 777 ] (B.find tree' (Value.Int 999L))

let test_snapshot_structure_checks () =
  let codec = index_codec () in
  let tree = sample_index codec in
  let snap = B.snapshot tree in
  (* dangling root *)
  (match B.of_snapshot ~codec { snap with B.snap_root = 100_000 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling root accepted");
  (* dangling child *)
  let bad_slots = Array.copy snap.B.snap_slots in
  let patched = ref false in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some v when v.B.node_kind = B.Inner && not !patched ->
          let children = Array.copy v.B.children in
          children.(0) <- 99_999;
          bad_slots.(i) <- Some { v with B.children = children };
          patched := true
      | _ -> ())
    bad_slots;
  match B.of_snapshot ~codec { snap with B.snap_slots = bad_slots } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling child accepted"

let test_file_tampering_detected_at_query_time () =
  (* flip one byte of an encrypted payload inside the saved file: the file
     parses (framing intact) but the AEAD rejects the entry when decoded *)
  let codec = index_codec () in
  let tree = sample_index codec in
  let path = tmp "tampered_index.bin" in
  Storage.save_index ~path tree;
  let data = In_channel.with_open_bin path In_channel.input_all in
  (* find some leaf payload bytes to corrupt: flip a byte deep in the file *)
  let pos = String.length data - 40 in
  let corrupted = Bytes.of_string data in
  Bytes.set corrupted pos (Char.chr (Char.code data.[pos] lxor 0x01));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc corrupted);
  match Storage.load_index ~path ~codec with
  | Error _ -> () (* corruption hit framing: also fine, reported *)
  | Ok tree' -> (
      (* corruption hit ciphertext: must surface as Integrity on scan *)
      match B.range tree' () with
      | exception B.Integrity _ -> ()
      | _ -> (
          match B.validate tree' with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "tampered file passed full scan and validation"))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let test_format_errors () =
  (match Storage.decode_table ~scheme:(fun _ -> fixed_scheme ()) "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match
     Storage.decode_table ~scheme:(fun _ -> fixed_scheme ())
       (Secdb_db.Codec.frame [ "WRONGMAG"; "table"; String.make 8 '\000'; ""; "" ])
   with
  | Error e -> Alcotest.(check bool) "mentions magic" true (contains_substring e "magic")
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (* table bytes fed to the index decoder *)
  let t = sample_table (fixed_scheme ()) in
  match Storage.decode_index ~codec:(index_codec ()) (Storage.encode_table t) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "table section accepted as index"

let suites =
  [
    ( "storage:files",
      [
        Alcotest.test_case "table save/load roundtrip" `Quick test_table_roundtrip;
        Alcotest.test_case "index save/load roundtrip" `Quick test_index_roundtrip;
        Alcotest.test_case "snapshot structure checks" `Quick test_snapshot_structure_checks;
        Alcotest.test_case "file tampering surfaces at query time" `Quick
          test_file_tampering_detected_at_query_time;
        Alcotest.test_case "format errors" `Quick test_format_errors;
      ] );
  ]

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Xbytes = Secdb_util.Xbytes
module Rng = Secdb_util.Rng

let tmp = Filename.concat (Filename.get_temp_dir_name ()) "secdb_oplog.log"
let aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'L'))
let foreign_aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'M'))

let schema =
  Schema.v ~table_name:"t"
    [ Schema.column ~protection:Schema.Clear "id" Value.Kint; Schema.column "v" Value.Ktext ]

let fresh_db () =
  let db = Encdb.create ~master:"log master" ~profile:(Encdb.Fixed Encdb.Ocb) () in
  Encdb.create_table db schema;
  Encdb.create_index db ~table:"t" ~col:"v";
  db

let sample_ops n =
  let rng = Rng.create ~seed:81L () in
  List.concat
    (List.init n (fun i ->
         let base =
           Oplog.Insert
             { table = "t"; values = [ Value.Int (Int64.of_int i); Value.Text (Rng.alpha rng 8) ] }
         in
         if i mod 5 = 4 then
           [ base; Oplog.Update { table = "t"; row = i - 1; col = "v"; value = Value.Text "edited" } ]
         else if i mod 7 = 6 then [ base; Oplog.Delete { table = "t"; row = i - 2 } ]
         else [ base ]))

let write_log ops =
  let w = Oplog.create ~path:tmp ~aead ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) in
  List.iter (fun op -> ignore (Oplog.append w op)) ops;
  let n = Oplog.count w in
  Oplog.close w;
  n

let test_replay_rebuilds_identical_db () =
  let ops = sample_ops 30 in
  let db = fresh_db () in
  List.iter (fun op -> match Oplog.apply db op with Ok () -> () | Error e -> Alcotest.fail e) ops;
  let n = write_log ops in
  Alcotest.(check int) "count" (List.length ops) n;
  let db' = fresh_db () in
  (match Oplog.replay_into db' ~path:tmp ~aead with
  | Ok applied -> Alcotest.(check int) "applied" n applied
  | Error e -> Alcotest.fail e);
  (* byte-identical state: same master + deterministic nonces would be
     needed for digest equality of AEAD cells, so compare logical content *)
  for row = 0 to 29 do
    let same =
      match (Secdb_query.Encrypted_table.get (Encdb.table db "t") ~row ~col:1,
             Secdb_query.Encrypted_table.get (Encdb.table db' "t") ~row ~col:1) with
      | Ok a, Ok b -> Value.equal a b
      | Error _, Error _ -> true
      | _ -> false
    in
    if not same then Alcotest.fail (Printf.sprintf "row %d differs after replay" row)
  done

let flip_byte_at path pos =
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (Char.code data.[pos] lxor 1));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

let test_tamper_matrix () =
  let ops = sample_ops 10 in
  let n = write_log ops in
  (* 1. clean log verifies *)
  (match Oplog.replay ~path:tmp ~aead with
  | Ok l -> Alcotest.(check int) "length" n (List.length l)
  | Error e -> Alcotest.fail e);
  (* 2. bit flip in the middle fails *)
  let size = (Unix.stat tmp).Unix.st_size in
  flip_byte_at tmp (size / 2);
  (match Oplog.replay ~path:tmp ~aead with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit flip accepted");
  (* 3. reordering records fails (sequence in AD) *)
  ignore (write_log ops);
  let data = In_channel.with_open_bin tmp In_channel.input_all in
  let rlen = Xbytes.be_string_to_int (String.sub data 0 4) + 4 in
  let r2len = Xbytes.be_string_to_int (String.sub data rlen 4) + 4 in
  let swapped =
    String.sub data rlen r2len ^ String.sub data 0 rlen
    ^ String.sub data (rlen + r2len) (String.length data - rlen - r2len)
  in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc swapped);
  (match Oplog.replay ~path:tmp ~aead with
  | Error e -> Alcotest.(check bool) "names order/splice" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "reorder accepted");
  (* 4. foreign key fails *)
  ignore (write_log ops);
  (match Oplog.replay ~path:tmp ~aead:foreign_aead with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign key accepted");
  (* 5. tail truncation yields a shorter VALID log: the out-of-band count
     is the defence *)
  ignore (write_log ops);
  let data = In_channel.with_open_bin tmp In_channel.input_all in
  let last_start =
    let rec walk off last = if off >= String.length data then last
      else walk (off + 4 + Xbytes.be_string_to_int (String.sub data off 4)) off in
    walk 0 0
  in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (String.sub data 0 last_start));
  (match Oplog.replay ~path:tmp ~aead with
  | Ok l ->
      Alcotest.(check int) "one record silently gone" (n - 1) (List.length l);
      Alcotest.(check bool) "count mismatch detects it" true (List.length l <> n)
  | Error e -> Alcotest.fail e);
  (* 6. mid-log truncation (cut across a record) fails *)
  ignore (write_log ops);
  let data = In_channel.with_open_bin tmp In_channel.input_all in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (String.sub data 0 (String.length data - 3)));
  match Oplog.replay ~path:tmp ~aead with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cut record accepted"

let suites =
  [
    ( "core:oplog",
      [
        Alcotest.test_case "replay rebuilds the database" `Quick
          test_replay_rebuilds_identical_db;
        Alcotest.test_case "tamper matrix" `Quick test_tamper_matrix;
      ] );
  ]

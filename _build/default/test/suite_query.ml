open Secdb_util
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module B = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table
module Walker = Secdb_query.Walker
module Einst = Secdb_schemes.Einst

let hex = Xbytes.of_hex
let key = hex "0f0e0d0c0b0a09080706050403020100"
let aes = Secdb_cipher.Aes.cipher ~key
let mu = Secdb_db.Address.mu_sha1 ~width:16
let append_scheme = Secdb_schemes.Cell_append.make ~e:(Einst.cbc_zero_iv aes) ~mu

let fixed_scheme () =
  Secdb_schemes.Fixed_cell.make
    ~aead:(Secdb_aead.Eax.make aes)
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) ()

let schema =
  Schema.v ~table_name:"people"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "name" Value.Ktext;
      Schema.column "age" Value.Kint;
    ]

let sample ?(scheme = append_scheme) () =
  let t = Etable.create ~id:4 schema ~scheme:(fun _ -> scheme) in
  List.iteri
    (fun i (n, a) ->
      ignore (Etable.insert t [ Value.Int (Int64.of_int i); Value.Text n; Value.Int (Int64.of_int a) ]))
    [ ("alice", 54); ("bob", 61); ("carol", 47); ("dave", 33); ("erin", 58) ];
  t

let test_etable_basics () =
  let t = sample () in
  Alcotest.(check int) "nrows" 5 (Etable.nrows t);
  Alcotest.(check string) "decrypt" "carol" (Value.text_exn (Etable.get_exn t ~row:2 ~col:1));
  Alcotest.(check int64) "clear column" 2L (Value.int_exn (Etable.get_exn t ~row:2 ~col:0));
  (* clear column stored in the clear *)
  Alcotest.(check bool) "no ciphertext for clear col" true
    (Etable.raw_ciphertext t ~row:0 ~col:0 = None);
  Alcotest.(check bool) "ciphertext for protected col" true
    (Etable.raw_ciphertext t ~row:0 ~col:1 <> None);
  (* update re-encrypts *)
  let before = Option.get (Etable.raw_ciphertext t ~row:0 ~col:1) in
  Etable.update t ~row:0 ~col:1 (Value.Text "alicia");
  Alcotest.(check string) "updated" "alicia" (Value.text_exn (Etable.get_exn t ~row:0 ~col:1));
  Alcotest.(check bool) "ciphertext changed" false
    (Etable.raw_ciphertext t ~row:0 ~col:1 = Some before);
  (* select *)
  let rows = Etable.select t (fun vs -> Value.compare vs.(2) (Value.Int 50L) > 0) in
  Alcotest.(check (list int)) "select" [ 0; 1; 4 ] (List.map fst rows)

let test_etable_tamper () =
  let t = sample () in
  (* swapping two cells: append scheme detects (address checksum) *)
  Etable.swap_cells t ~col:1 ~row_a:0 ~row_b:1;
  (match Etable.get t ~row:0 ~col:1 with
  | Error _ -> ()
  | Ok v -> Alcotest.fail ("swap accepted: " ^ Value.to_string v));
  (match Etable.select_result t (fun _ -> true) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "select_result missed tamper");
  (* set_raw on a clear column is refused *)
  Alcotest.check_raises "set_raw clear col"
    (Invalid_argument "Encrypted_table.set_raw: column is not protected") (fun () ->
      Etable.set_raw t ~row:0 ~col:0 "junk")

let test_etable_errors () =
  let t = sample () in
  Alcotest.check_raises "arity"
    (Invalid_argument "Encrypted_table.insert: expected 3 values, got 0") (fun () ->
      ignore (Etable.insert t []));
  match Etable.insert t [ Value.Text "x"; Value.Text "y"; Value.Int 1L ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type mismatch accepted"

let test_etable_storage_accounting () =
  let broken = sample () in
  let fixed = sample ~scheme:(fixed_scheme ()) () in
  let pt = Etable.plaintext_bytes broken ~col:1 in
  Alcotest.(check int) "same plaintext bytes" pt (Etable.plaintext_bytes fixed ~col:1);
  (* fixed adds a constant 44-byte overhead (nonce 16 + tag 16 + framing 12)
     while append adds the 16-byte checksum + padding *)
  let per_cell_fixed = (Etable.storage_bytes fixed ~col:1 - pt) / 5 in
  Alcotest.(check int) "fixed overhead per cell" 44 per_cell_fixed;
  Alcotest.(check bool) "broken also expands" true (Etable.storage_bytes broken ~col:1 > pt)

(* --- walker ------------------------------------------------------------ *)

let build_indexed_tree codec =
  let tree = B.create ~order:4 ~id:1000 ~codec () in
  for i = 0 to 99 do
    B.insert tree (Value.Int (Int64.of_int (i mod 20))) ~table_row:i
  done;
  tree

let index12_codec () =
  Secdb_schemes.Index12.codec ~e:(Einst.cbc_zero_iv aes) ~mac_cipher:aes
    ~rng:(Rng.create ~seed:51L ()) ~indexed_table:4 ~indexed_col:2 ()

let test_walker_agrees_with_tree () =
  let tree = build_indexed_tree (index12_codec ()) in
  List.iter
    (fun mode ->
      (* equality *)
      (match Walker.equal tree ~mode (Value.Int 7L) with
      | Ok a ->
          Alcotest.(check int) "eq count" 5 (List.length a.Walker.results);
          Alcotest.(check bool) "rows correct" true
            (List.for_all (fun (_, r) -> r mod 20 = 7) a.Walker.results)
      | Error e -> Alcotest.fail e);
      (* range *)
      match Walker.range tree ~mode ~lo:(Value.Int 5L) ~hi:(Value.Int 8L) () with
      | Ok a ->
          Alcotest.(check int) "range count" 20 (List.length a.Walker.results);
          Alcotest.(check (list (pair string int)))
            "matches Bptree.range"
            (List.map (fun (v, r) -> (Value.to_string v, r))
               (B.range tree ~lo:(Value.Int 5L) ~hi:(Value.Int 8L) ()))
            (List.map (fun (v, r) -> (Value.to_string v, r)) a.Walker.results)
      | Error e -> Alcotest.fail e)
    [ Walker.Published; Walker.Corrected ]

let test_walker_check_accounting () =
  let tree = build_indexed_tree (index12_codec ()) in
  (match Walker.equal tree ~mode:Walker.Published (Value.Int 3L) with
  | Ok a ->
      Alcotest.(check bool) "inner nodes verified" true (a.Walker.inner_checked > 0);
      Alcotest.(check bool) "leaves unverified (the bug)" true (a.Walker.leaf_unchecked > 0);
      Alcotest.(check int) "no verified leaves" 0 a.Walker.leaf_checked
  | Error e -> Alcotest.fail e);
  match Walker.equal tree ~mode:Walker.Corrected (Value.Int 3L) with
  | Ok a ->
      Alcotest.(check int) "no unverified leaves" 0 a.Walker.leaf_unchecked;
      Alcotest.(check bool) "leaves verified" true (a.Walker.leaf_checked > 0)
  | Error e -> Alcotest.fail e

let tamper_one_leaf tree =
  let leaves = ref [] in
  B.iter_nodes
    (fun v -> if v.B.node_kind = B.Leaf && Array.length v.B.payloads > 0 then leaves := v :: !leaves)
    tree;
  match !leaves with
  | a :: b :: _ -> B.set_payload tree ~row:a.B.row ~slot:0 b.B.payloads.(0)
  | _ -> failwith "need two leaves"

let test_walker_leaf_bug () =
  (* footnote 1: the published pseudo-code misses leaf-level tampering *)
  let tree = build_indexed_tree (index12_codec ()) in
  tamper_one_leaf tree;
  (match Walker.range tree ~mode:Walker.Published () with
  | Ok a -> Alcotest.(check int) "published: silently complete" 100 (List.length a.Walker.results)
  | Error _ -> Alcotest.fail "published mode detected leaf tampering (it must not)");
  match Walker.range tree ~mode:Walker.Corrected () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrected mode missed leaf tampering"

let test_walker_aead_immune_to_bug () =
  (* with the AEAD codec the unverified path does not exist: Published mode
     detects the tampering anyway *)
  let codec =
    Secdb_schemes.Fixed_index.codec
      ~aead:(Secdb_aead.Eax.make aes)
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
      ~indexed_table:4 ~indexed_col:2 ()
  in
  let tree = build_indexed_tree codec in
  tamper_one_leaf tree;
  match Walker.range tree ~mode:Walker.Published () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "AEAD index accepted tampered leaf"

let test_walker_inner_tamper_detected_in_both_modes () =
  let tree = build_indexed_tree (index12_codec ()) in
  (* tamper an inner node payload *)
  let inner = ref None in
  B.iter_nodes
    (fun v -> if v.B.node_kind = B.Inner && !inner = None then inner := Some v)
    tree;
  (match !inner with
  | Some v -> B.set_payload tree ~row:v.B.row ~slot:0 (String.make 40 'Z')
  | None -> failwith "no inner node");
  List.iter
    (fun mode ->
      match Walker.range tree ~mode ~lo:(Value.Int 0L) () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "inner tampering missed")
    [ Walker.Published; Walker.Corrected ]

let suites =
  [
    ( "query:encrypted-table",
      [
        Alcotest.test_case "basics" `Quick test_etable_basics;
        Alcotest.test_case "tamper detection" `Quick test_etable_tamper;
        Alcotest.test_case "errors" `Quick test_etable_errors;
        Alcotest.test_case "storage accounting" `Quick test_etable_storage_accounting;
      ] );
    ( "query:walker",
      [
        Alcotest.test_case "agrees with the tree" `Quick test_walker_agrees_with_tree;
        Alcotest.test_case "integrity-check accounting" `Quick test_walker_check_accounting;
        Alcotest.test_case "footnote-1 leaf bug" `Quick test_walker_leaf_bug;
        Alcotest.test_case "AEAD immune to the bug" `Quick test_walker_aead_immune_to_bug;
        Alcotest.test_case "inner tampering always caught" `Quick
          test_walker_inner_tamper_detected_in_both_modes;
      ] );
  ]

(* --- histograms -------------------------------------------------------- *)

let test_histogram_estimates () =
  let module H = Secdb_query.Histogram in
  Alcotest.(check (float 1e-9)) "empty = no information" 1.0
    (H.selectivity (H.create ()) ~lo:(Some (Value.Int 0L)) ~hi:(Some (Value.Int 1L)));
  let h = H.of_values ~buckets:10 (List.init 1000 (fun i -> Value.Int (Int64.of_int i))) in
  Alcotest.(check int) "total" 1000 (H.total h);
  let sel lo hi = H.selectivity h ~lo:(Some (Value.Int lo)) ~hi:(Some (Value.Int hi)) in
  Alcotest.(check bool) "half-range ~ 0.5" true (Float.abs (sel 0L 499L -. 0.5) < 0.15);
  Alcotest.(check bool) "narrow ~ small" true (sel 100L 120L < 0.2);
  Alcotest.(check (float 1e-9)) "everything" 1.0 (sel (-10L) 2000L);
  Alcotest.(check (float 1e-9)) "empty window" 0.0 (sel 900L 100L);
  (* unbounded sides *)
  Alcotest.(check bool) "open low end" true
    (H.selectivity h ~lo:None ~hi:(Some (Value.Int 499L)) > 0.3);
  (* removal shrinks mass *)
  for i = 0 to 499 do
    H.remove h (Value.Int (Int64.of_int i))
  done;
  Alcotest.(check int) "total after removal" 500 (H.total h);
  Alcotest.(check bool) "low half emptied" true (sel 0L 400L < 0.2);
  (* text projection is order-consistent *)
  (match (H.to_float (Value.Text "apple"), H.to_float (Value.Text "zebra")) with
  | Some a, Some z -> Alcotest.(check bool) "lexicographic" true (a < z)
  | _ -> Alcotest.fail "text projection");
  Alcotest.(check (option (float 0.0))) "null unprojected" None (H.to_float Value.Null)

let suites =
  suites
  @ [
      ( "query:histogram",
        [ Alcotest.test_case "selectivity estimation" `Quick test_histogram_estimates ] );
    ]

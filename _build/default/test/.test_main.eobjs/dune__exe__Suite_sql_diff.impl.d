test/suite_sql_diff.ml: Array Encdb Int64 List Option Printf QCheck2 QCheck_alcotest Secdb Secdb_db Secdb_sql

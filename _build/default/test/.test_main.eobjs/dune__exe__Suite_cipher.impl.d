test/suite_cipher.ml: Alcotest Array Char Fun List QCheck2 QCheck_alcotest Secdb_cipher Secdb_util String Xbytes

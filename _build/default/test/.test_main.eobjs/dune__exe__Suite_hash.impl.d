test/suite_hash.ml: Alcotest Int64 List QCheck2 QCheck_alcotest Secdb_hash Secdb_util String Xbytes

test/suite_merkle.ml: Alcotest Encdb Filename In_channel Int64 List Out_channel Printf QCheck2 QCheck_alcotest Secdb Secdb_db Secdb_index Secdb_query Secdb_schemes Secdb_storage Secdb_util String

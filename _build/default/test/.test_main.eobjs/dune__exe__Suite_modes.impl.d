test/suite_modes.ml: Alcotest Bytes Char List Printf QCheck2 QCheck_alcotest Rng Secdb_cipher Secdb_modes Secdb_util String Xbytes

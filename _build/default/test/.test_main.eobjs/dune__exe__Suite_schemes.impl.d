test/suite_schemes.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Rng Secdb_aead Secdb_cipher Secdb_db Secdb_index Secdb_schemes Secdb_util String Xbytes

test/suite_oplog.ml: Alcotest Bytes Char Encdb Filename In_channel Int64 List Oplog Out_channel Printf Secdb Secdb_aead Secdb_cipher Secdb_db Secdb_query Secdb_util String Unix

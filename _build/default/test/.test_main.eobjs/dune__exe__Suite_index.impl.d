test/suite_index.ml: Alcotest Array Int64 List Printf QCheck2 QCheck_alcotest Secdb_db Secdb_index

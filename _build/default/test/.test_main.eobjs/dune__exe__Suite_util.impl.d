test/suite_util.ml: Alcotest Array Bytes Dist Float Fun List QCheck2 QCheck_alcotest Rng Secdb_util String Vec Xbytes

test/suite_sql.ml: Alcotest Array Encdb Fmt Int64 List Option Printf QCheck2 QCheck_alcotest Secdb Secdb_db Secdb_index Secdb_sql String

test/suite_pager.ml: Alcotest Filename List Out_channel Printf QCheck2 QCheck_alcotest Secdb_aead Secdb_cipher Secdb_db Secdb_query Secdb_schemes Secdb_storage Secdb_util String

test/suite_core.ml: Alcotest Array Encdb Int64 Keyring List Option QCheck2 QCheck_alcotest Secdb Secdb_db Secdb_index Secdb_query String

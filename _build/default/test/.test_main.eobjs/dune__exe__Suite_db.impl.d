test/suite_db.ml: Alcotest Array Fmt Int64 List QCheck2 QCheck_alcotest Secdb_db Secdb_util String Xbytes

test/suite_aead.ml: Alcotest List Printf QCheck2 QCheck_alcotest Rng Secdb_aead Secdb_cipher Secdb_util String Xbytes

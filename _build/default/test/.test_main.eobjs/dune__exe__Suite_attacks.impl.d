test/suite_attacks.ml: Alcotest Array Float Int64 List Printf Rng Secdb_aead Secdb_attacks Secdb_cipher Secdb_db Secdb_index Secdb_query Secdb_schemes Secdb_storage Secdb_util String Xbytes

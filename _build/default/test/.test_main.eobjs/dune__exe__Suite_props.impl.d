test/suite_props.ml: Encdb Fun Hashtbl Int64 List QCheck2 QCheck_alcotest Secdb Secdb_aead Secdb_cipher Secdb_db Secdb_index Secdb_query Secdb_schemes Secdb_storage Secdb_util String

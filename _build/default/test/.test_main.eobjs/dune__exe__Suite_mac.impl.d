test/suite_mac.ml: Alcotest List Printf QCheck2 QCheck_alcotest Rng Secdb_cipher Secdb_mac Secdb_modes Secdb_util String Xbytes

test/suite_query.ml: Alcotest Array Float Int64 List Option Rng Secdb_aead Secdb_cipher Secdb_db Secdb_index Secdb_query Secdb_schemes Secdb_util String Xbytes

(* Cross-component integration tests: full encrypted-database life cycles,
   persistence, and the remaining attack/primitive combinations. *)

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module B = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table
module Xbytes = Secdb_util.Xbytes
module Rng = Secdb_util.Rng
module Einst = Secdb_schemes.Einst

let tmpdir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) ("secdb_itest_" ^ name) in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Sys.mkdir d 0o755;
  d

let schema =
  Schema.v ~table_name:"accounts"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "owner" Value.Ktext;
      Schema.column "balance" Value.Kint;
    ]

let populate db n =
  let rng = Rng.create ~seed:77L () in
  Encdb.create_table db schema;
  for i = 0 to n - 1 do
    ignore
      (Encdb.insert db ~table:"accounts"
         [
           Value.Int (Int64.of_int i);
           Value.Text (Rng.alpha rng 12);
           Value.Int (Int64.of_int (Rng.int rng 10_000));
         ])
  done;
  Encdb.create_index db ~table:"accounts" ~col:"balance"

let test_save_load_roundtrip () =
  List.iter
    (fun profile ->
      let dir = tmpdir (Encdb.profile_name profile) in
      let db = Encdb.create ~master:"persist me" ~profile () in
      populate db 120;
      let expected =
        match
          Encdb.select_range db ~table:"accounts" ~col:"balance" ~lo:(Value.Int 2000L)
            ~hi:(Value.Int 4000L) ()
        with
        | Ok rows -> List.map fst rows
        | Error e -> Alcotest.fail e
      in
      Encdb.save db ~dir;
      Encdb.close db;
      match Encdb.load ~master:"persist me" ~profile ~dir ~seed:99L () with
      | Error e -> Alcotest.fail e
      | Ok db' -> (
          (match
             Encdb.select_range db' ~table:"accounts" ~col:"balance" ~lo:(Value.Int 2000L)
               ~hi:(Value.Int 4000L) ()
           with
          | Ok rows ->
              Alcotest.(check (list int))
                (Encdb.profile_name profile ^ " same answers after reload")
                expected (List.map fst rows)
          | Error e -> Alcotest.fail e);
          (* the reloaded database stays writable and consistent *)
          let row =
            Encdb.insert db' ~table:"accounts"
              [ Value.Int 999L; Value.Text "newcomer"; Value.Int 3000L ]
          in
          match
            Encdb.select_range db' ~table:"accounts" ~col:"balance" ~lo:(Value.Int 3000L)
              ~hi:(Value.Int 3000L) ()
          with
          | Ok rows -> Alcotest.(check bool) "new row indexed" true (List.mem_assoc row rows)
          | Error e -> Alcotest.fail e))
    [ Encdb.Elovici_append; Encdb.Shmueli_improved; Encdb.Fixed Encdb.Eax; Encdb.Fixed Encdb.Ccfb ]

let test_load_wrong_master_fails_closed () =
  let profile = Encdb.Fixed Encdb.Eax in
  let dir = tmpdir "wrongkey" in
  let db = Encdb.create ~master:"right key" ~profile () in
  populate db 30;
  Encdb.save db ~dir;
  match Encdb.load ~master:"wrong key" ~profile ~dir () with
  | Error _ -> () (* also acceptable: fail at load *)
  | Ok db' -> (
      match Encdb.select_range db' ~table:"accounts" ~col:"balance" ~lo:(Value.Int 0L) () with
      | Error _ -> () (* decryption failure = indistinguishable from tampering *)
      | Ok rows -> if rows <> [] then Alcotest.fail "wrong master key decrypted data")

let test_load_wrong_profile_rejected () =
  let dir = tmpdir "wrongprofile" in
  let db = Encdb.create ~master:"k" ~profile:(Encdb.Fixed Encdb.Eax) () in
  populate db 10;
  Encdb.save db ~dir;
  match Encdb.load ~master:"k" ~profile:Encdb.Elovici_append ~dir () with
  | Error e -> Alcotest.(check bool) "mentions profile" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "profile mismatch accepted"

let test_offline_file_tampering () =
  (* the adversary edits the saved files; the session detects it on query *)
  let profile = Encdb.Fixed Encdb.Ocb in
  let dir = tmpdir "tamperfiles" in
  let db = Encdb.create ~master:"k2" ~profile () in
  populate db 60;
  Encdb.save db ~dir;
  Encdb.close db;
  (* flip a byte near the end of the table file (inside some ciphertext) *)
  let path = Filename.concat dir "accounts.table" in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let pos = Bytes.length b - 3 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  match Encdb.load ~master:"k2" ~profile ~dir ~seed:7L () with
  | Error _ -> () (* framing corruption detected at load: fine *)
  | Ok db' -> (
      let tbl = Encdb.table db' "accounts" in
      match Etable.select_result tbl (fun _ -> true) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "tampered file fully decrypted")

(* --- frequency analysis -------------------------------------------------- *)

let census =
  [
    (String.make 24 'A' ^ "common-diagnosis-one", 40);
    (String.make 24 'B' ^ "common-diagnosis-two", 25);
    (String.make 24 'C' ^ "rarer-diagnosis-three", 12);
    (String.make 24 'D' ^ "rare-diagnosis-four..", 5);
    (String.make 24 'E' ^ "unique-diagnosis-five", 1);
  ]

let test_frequency_attack () =
  let key = Xbytes.of_hex "a0a1a2a3a4a5a6a7a8a9aaabacadaeaf" in
  let aes = Secdb_cipher.Aes.cipher ~key in
  let mu = Secdb_db.Address.mu_sha1 ~width:16 in
  let broken = Secdb_schemes.Cell_append.make ~e:(Einst.cbc_zero_iv aes) ~mu in
  let rng = Rng.create ~seed:88L () in
  let r =
    Secdb_attacks.Frequency.attack ~scheme:broken ~block:16 ~table:1 ~col:2
      ~distribution:census rng
  in
  Alcotest.(check int) "one bucket per value" (List.length census) r.Secdb_attacks.Frequency.buckets;
  Alcotest.(check int) "every cell recovered" 83 r.Secdb_attacks.Frequency.recovered;
  let fixed =
    Secdb_schemes.Fixed_cell.make ~aead:(Secdb_aead.Eax.make aes)
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) ()
  in
  let rf =
    Secdb_attacks.Frequency.attack ~scheme:fixed
      ~extract:Secdb_attacks.Pattern_matching.extract_fixed_cell ~block:16 ~table:1 ~col:2
      ~distribution:census rng
  in
  Alcotest.(check int) "fix: one bucket per cell" 83 rf.Secdb_attacks.Frequency.buckets;
  (* every bucket is a singleton, so no frequency rank is unique: nothing
     can be credited *)
  Alcotest.(check int) "fix: nothing recoverable" 0 rf.Secdb_attacks.Frequency.recovered

(* --- 3DES ---------------------------------------------------------------- *)

let test_3des () =
  let k1 = Xbytes.of_hex "0123456789abcdef" in
  let k2 = Xbytes.of_hex "23456789abcdef01" in
  let k3 = Xbytes.of_hex "456789abcdef0123" in
  let c2 = Secdb_cipher.Des3.cipher ~key:(k1 ^ k2) in
  let c3 = Secdb_cipher.Des3.cipher ~key:(k1 ^ k2 ^ k3) in
  Alcotest.(check string) "names" "3des-ede2" c2.Secdb_cipher.Block.name;
  Alcotest.(check string) "names3" "3des-ede3" c3.Secdb_cipher.Block.name;
  (* 3DES with K1=K2 degenerates to single DES *)
  let degen = Secdb_cipher.Des3.cipher ~key:(k1 ^ k1) in
  let single = Secdb_cipher.Des.cipher ~key:k1 in
  let pt = "8bytes!!" in
  Alcotest.(check string) "EDE(k,k) = DES(k)"
    (Xbytes.to_hex (single.Secdb_cipher.Block.encrypt pt))
    (Xbytes.to_hex (degen.Secdb_cipher.Block.encrypt pt));
  (* roundtrips and distinctness *)
  let rng = Rng.create ~seed:3L () in
  for _ = 1 to 50 do
    let b = Rng.bytes rng 8 in
    if c2.Secdb_cipher.Block.decrypt (c2.Secdb_cipher.Block.encrypt b) <> b then
      Alcotest.fail "ede2 roundtrip";
    if c3.Secdb_cipher.Block.decrypt (c3.Secdb_cipher.Block.encrypt b) <> b then
      Alcotest.fail "ede3 roundtrip"
  done;
  Alcotest.(check bool) "ede2 <> ede3" false
    (c2.Secdb_cipher.Block.encrypt pt = c3.Secdb_cipher.Block.encrypt pt);
  Alcotest.check_raises "bad key size"
    (Invalid_argument "Des3.cipher: key must be 16 or 24 bytes, got 8") (fun () ->
      ignore (Secdb_cipher.Des3.cipher ~key:k1))

let test_scheme_over_3des () =
  (* the paper's attacks work identically over a 64-bit-block cipher *)
  let c = Secdb_cipher.Des3.cipher ~key:(String.make 16 'k') in
  let mu8 = Secdb_db.Address.mu_sha1 ~width:8 in
  let scheme = Secdb_schemes.Cell_append.make ~e:(Einst.cbc_zero_iv c) ~mu:mu8 in
  let addr = Secdb_db.Address.v ~table:1 ~row:4 ~col:0 in
  (match Secdb_schemes.Cell_scheme.decrypt scheme addr
           (Secdb_schemes.Cell_scheme.encrypt scheme addr "triple des value") with
  | Ok "triple des value" -> ()
  | _ -> Alcotest.fail "3des scheme roundtrip");
  let rng = Rng.create ~seed:4L () in
  match
    Secdb_attacks.Forgery.forge ~scheme ~block:8 ~addr ~value:(Rng.ascii rng 32) ~rng
  with
  | Ok o ->
      Alcotest.(check bool) "forgery works over 8-byte blocks too" true
        (o.Secdb_attacks.Forgery.accepted && o.Secdb_attacks.Forgery.changed)
  | Error e -> Alcotest.fail e

let suites =
  [
    ( "integration:persistence",
      [
        Alcotest.test_case "save/load across profiles" `Quick test_save_load_roundtrip;
        Alcotest.test_case "wrong master fails closed" `Quick test_load_wrong_master_fails_closed;
        Alcotest.test_case "wrong profile rejected" `Quick test_load_wrong_profile_rejected;
        Alcotest.test_case "offline file tampering" `Quick test_offline_file_tampering;
      ] );
    ( "integration:frequency",
      [ Alcotest.test_case "rank-matching attack & fix" `Quick test_frequency_attack ] );
    ( "integration:3des",
      [
        Alcotest.test_case "triple DES" `Quick test_3des;
        Alcotest.test_case "schemes over 64-bit blocks" `Quick test_scheme_over_3des;
      ] );
  ]

let test_paged_save_load () =
  let profile = Encdb.Fixed Encdb.Gcm in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "secdb_paged.db" in
  let db = Encdb.create ~master:"paged" ~profile () in
  populate db 80;
  let expected =
    match
      Encdb.select_range db ~table:"accounts" ~col:"balance" ~lo:(Value.Int 1000L)
        ~hi:(Value.Int 5000L) ()
    with
    | Ok rows -> List.map fst rows
    | Error e -> Alcotest.fail e
  in
  Encdb.save_paged db ~path ();
  Encdb.close db;
  (match Encdb.load_paged ~master:"paged" ~profile ~path ~seed:31L () with
  | Error e -> Alcotest.fail e
  | Ok db' -> (
      match
        Encdb.select_range db' ~table:"accounts" ~col:"balance" ~lo:(Value.Int 1000L)
          ~hi:(Value.Int 5000L) ()
      with
      | Ok rows ->
          Alcotest.(check (list int)) "same answers from the paged file" expected
            (List.map fst rows)
      | Error e -> Alcotest.fail e));
  (* wrong profile is refused *)
  match Encdb.load_paged ~master:"paged" ~profile:Encdb.Elovici_append ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "profile mismatch accepted"

let suites =
  suites
  @ [
      ( "integration:paged",
        [ Alcotest.test_case "paged save/load" `Quick test_paged_save_load ] );
    ]

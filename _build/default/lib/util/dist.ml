let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf_weights: n must be positive";
  if s < 0.0 then invalid_arg "Dist.zipf_weights: s must be non-negative";
  let raw = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun w -> w /. total) raw

(* inverse-CDF sampling over the precomputed weights *)
let zipf rng ~n ~s =
  let weights = zipf_weights ~n ~s in
  let u = float_of_int (Rng.int rng 1_000_000) /. 1_000_000.0 in
  let rec walk k acc =
    if k >= n - 1 then n - 1
    else
      let acc = acc +. weights.(k) in
      if u < acc then k else walk (k + 1) acc
  in
  walk 0 0.0

let histogram samples =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    samples;
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [] |> List.sort compare

let counts_of_samples rng ~sampler ~draws =
  histogram (List.init draws (fun _ -> sampler rng))

(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used for row storage in tables and node storage in the B⁺-tree, where
    stable integer identifiers double as the paper's row numbers r and
    index-row numbers r_I. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Append and return the new element's index. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

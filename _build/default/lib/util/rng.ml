type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ?(seed = 0x5DEECE66D_1234L) () = { state = seed }
let copy t = { state = t.state }

(* SplitMix64 step (Steele, Lea, Flood 2014). *)
let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (next64 t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int !v land 0xff));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done;
  Bytes.unsafe_to_string b

let ascii t n = String.init n (fun _ -> Char.chr (32 + int t 95))
let alpha t n = String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

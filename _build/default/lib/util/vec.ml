type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let check t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (length %d)" name i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- v

let grow t v =
  let cap = Array.length t.data in
  let ncap = max 8 (2 * cap) in
  let ndata = Array.make ncap v in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t v =
  if t.len = Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let of_list l =
  let t = create () in
  List.iter (fun v -> ignore (push t v)) l;
  t

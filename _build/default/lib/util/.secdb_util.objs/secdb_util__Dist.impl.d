lib/util/dist.ml: Array Float Hashtbl List Option Rng

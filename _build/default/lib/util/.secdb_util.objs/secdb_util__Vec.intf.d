lib/util/vec.mli:

lib/util/rng.mli:

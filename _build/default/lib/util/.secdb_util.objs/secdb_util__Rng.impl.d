lib/util/rng.ml: Array Bytes Char Int64 String

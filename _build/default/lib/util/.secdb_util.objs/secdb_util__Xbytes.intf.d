lib/util/xbytes.mli: Bytes

lib/util/xbytes.ml: Buffer Bytes Char Int64 List String

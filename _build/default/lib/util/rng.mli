(** Deterministic pseudo-random generator (SplitMix64).

    Everything in this repository that needs randomness — nonces, the random
    values [a] of the improved index scheme, synthetic workloads — draws from
    an explicit, seedable generator so that tests, attacks and experiments
    are exactly reproducible.  Not cryptographically secure; the security
    analyses in the paper do not depend on the nonce generator's strength,
    only on uniqueness, which a counter-based SplitMix64 stream provides. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh generator. Default seed is a fixed constant. *)

val copy : t -> t
(** Independent copy with the same state. *)

val next64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)

val ascii : t -> int -> string
(** [ascii t n] is an [n]-byte string of printable ASCII (codes 32–126),
    i.e. satisfying {!Xbytes.is_ascii7}. *)

val alpha : t -> int -> string
(** [alpha t n] is an [n]-byte string of lowercase letters. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

(** Synthetic workload distributions for the experiments.

    Real columns are rarely uniform; the frequency-analysis and structural-
    leakage experiments need skewed and shaped data to be meaningful. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Sample a rank in [\[0, n)] from a Zipf distribution with exponent [s]
    (s = 0 is uniform; s ≈ 1 matches natural-language word frequencies).
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val zipf_weights : n:int -> s:float -> float array
(** The normalised probability of each rank (for expectations in tests). *)

val histogram : int list -> (int * int) list
(** Value → count, sorted by value. *)

val counts_of_samples : Rng.t -> sampler:(Rng.t -> int) -> draws:int -> (int * int) list
(** Draw and aggregate: the [(value, multiplicity)] list that e.g.
    {!Secdb_attacks.Frequency} consumes. *)

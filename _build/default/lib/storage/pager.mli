(** Page-based file storage with a buffer pool.

    The threat model's adversary owns "the machine or storage system
    holding the actual data"; this module is that storage system: a single
    file of fixed-size pages, a free list for recycling, and an LRU buffer
    pool in front of it with hit/miss accounting (experiment EXP24 replays
    index traversals through it).

    Layout: page 0 is the header (magic, page size, page count, free-list
    head); freed pages are chained through their first 8 bytes.  All page
    ids are > 0.  No assumption of crash safety is made — journalling is
    out of scope, and the adversary is allowed to edit the file anyway. *)

type t

type stats = {
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
}

val create : path:string -> ?page_size:int -> ?cache_pages:int -> unit -> t
(** Create (truncating any existing file).  [page_size] defaults to 4096
    bytes (min 64), [cache_pages] to 64 (min 1). *)

val open_file : path:string -> ?cache_pages:int -> unit -> (t, string) result
(** Open an existing pager file; the page size comes from the header. *)

val page_size : t -> int
val page_count : t -> int
(** Pages ever allocated (including freed ones), excluding the header. *)

val alloc : t -> int
(** A zeroed page, recycled from the free list when possible. *)

val free : t -> int -> unit
(** Return a page to the free list. @raise Invalid_argument on the header
    page or out-of-range ids. *)

val read : t -> int -> string
(** Full page contents, through the cache. *)

val write : t -> int -> string -> unit
(** Replace a page's contents (padded with zeros if short).
    @raise Invalid_argument if longer than a page. *)

val flush : t -> unit
(** Write back every dirty cached page and the header. *)

val close : t -> unit
(** Flush and release the file descriptor; further use raises. *)

val stats : t -> stats
val reset_stats : t -> unit

open Secdb_util
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Codec = Secdb_db.Codec
module B = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table

let magic = "SECDB\x00\x01\x00"

let be8 = Xbytes.int_to_be_string ~width:8

let int_of field s =
  if String.length s <> 8 then Error (Printf.sprintf "storage: malformed %s" field)
  else
    match Xbytes.be_string_to_int s with
    | v -> Ok v
    | exception Invalid_argument _ -> Error (Printf.sprintf "storage: malformed %s" field)

let ( let* ) = Result.bind
let ( >>= ) = Result.bind

(* --- schema ------------------------------------------------------------ *)

let kind_tag = function
  | Value.Knull -> "N"
  | Value.Kbool -> "b"
  | Value.Kint -> "i"
  | Value.Ktext -> "t"
  | Value.Kbytes -> "y"

let kind_of_tag = function
  | "N" -> Ok Value.Knull
  | "b" -> Ok Value.Kbool
  | "i" -> Ok Value.Kint
  | "t" -> Ok Value.Ktext
  | "y" -> Ok Value.Kbytes
  | s -> Error (Printf.sprintf "storage: unknown kind tag %S" s)

let encode_schema (s : Schema.t) =
  Codec.frame
    (s.Schema.table_name
    :: List.concat_map
         (fun (c : Schema.column) ->
           [
             c.Schema.name;
             kind_tag c.Schema.ty;
             (match c.Schema.protection with Schema.Clear -> "C" | Schema.Encrypted -> "E");
           ])
         (Array.to_list s.Schema.columns))

let decode_schema s =
  let* fields = Codec.unframe s in
  match fields with
  | name :: rest when List.length rest mod 3 = 0 && rest <> [] ->
      let rec cols acc = function
        | [] -> Ok (List.rev acc)
        | cname :: ktag :: prot :: more ->
            let* ty = kind_of_tag ktag in
            let* protection =
              match prot with
              | "C" -> Ok Schema.Clear
              | "E" -> Ok Schema.Encrypted
              | p -> Error (Printf.sprintf "storage: unknown protection tag %S" p)
            in
            cols ({ Schema.name = cname; ty; protection } :: acc) more
        | _ -> Error "storage: truncated column triple"
      in
      let* columns = cols [] rest in
      (try Ok (Schema.v ~table_name:name columns)
       with Invalid_argument e -> Error e)
  | _ -> Error "storage: malformed schema section"

(* --- tables ------------------------------------------------------------ *)

let encode_cell = function
  | Etable.Stored_clear v -> Codec.frame [ "C"; Value.encode v ]
  | Etable.Stored_cipher ct -> Codec.frame [ "E"; ct ]

let decode_cell s =
  let* tag, body = Codec.unframe2 s in
  match tag with
  | "C" ->
      let* v = Value.decode body in
      Ok (Etable.Stored_clear v)
  | "E" -> Ok (Etable.Stored_cipher body)
  | t -> Error (Printf.sprintf "storage: unknown cell tag %S" t)

let encode_row = function
  | None -> "D" (* tombstone *)
  | Some cells -> Codec.frame ("R" :: List.map encode_cell (Array.to_list cells))

let decode_row s =
  if s = "D" then Ok None
  else
    let* cells = Codec.unframe s in
    match cells with
    | "R" :: cells ->
        let rec loop acc = function
          | [] -> Ok (Some (Array.of_list (List.rev acc)))
          | c :: rest ->
              let* cell = decode_cell c in
              loop (cell :: acc) rest
        in
        loop [] cells
    | _ -> Error "storage: malformed row"


let encode_table t =
  Codec.frame
    (magic :: "table" :: be8 (Etable.id t)
    :: encode_schema (Etable.schema t)
    :: List.map encode_row (Etable.dump_rows t))

let peek_table s =
  let* fields = Codec.unframe s in
  match fields with
  | m :: section :: id :: schema :: _ ->
      if m <> magic then Error "storage: bad magic (not a secdb file or wrong version)"
      else if section <> "table" then Error "storage: expected a table section"
      else
        let* id = int_of "table id" id in
        let* schema = decode_schema schema in
        Ok (id, schema)
  | _ -> Error "storage: malformed table file"

let decode_table ~scheme s =
  let* fields = Codec.unframe s in
  match fields with
  | m :: section :: id :: schema :: rows ->
      if m <> magic then Error "storage: bad magic (not a secdb file or wrong version)"
      else if section <> "table" then Error "storage: expected a table section"
      else
        let* id = int_of "table id" id in
        let* schema = decode_schema schema in
        let rec loop acc = function
          | [] -> Ok (List.rev acc)
          | r :: rest ->
              let* row = decode_row r in
              loop (row :: acc) rest
        in
        let* rows = loop [] rows in
        Etable.restore ~id schema ~scheme ~rows
  | _ -> Error "storage: malformed table file"

(* --- indexes ------------------------------------------------------------ *)

let encode_node = function
  | None -> "F" (* freed row *)
  | Some (v : B.node_view) ->
      Codec.frame
        [
          (match v.B.node_kind with B.Inner -> "I" | B.Leaf -> "L");
          Codec.frame (Array.to_list v.B.payloads);
          Codec.frame (List.map be8 (Array.to_list v.B.children));
          (match v.B.next with None -> "" | Some nx -> be8 nx);
        ]

let decode_node row s =
  if s = "F" then Ok None
  else
    let* kind, payloads, children, next = Codec.unframe s >>= function
      | [ a; b; c; d ] -> Ok (a, b, c, d)
      | _ -> Error "storage: malformed node"
    in
    let* node_kind =
      match kind with
      | "I" -> Ok B.Inner
      | "L" -> Ok B.Leaf
      | k -> Error (Printf.sprintf "storage: unknown node kind %S" k)
    in
    let* payloads = Codec.unframe payloads in
    let* children = Codec.unframe children in
    let rec ints acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest ->
          let* v = int_of "child" c in
          ints (v :: acc) rest
    in
    let* children = ints [] children in
    let* next =
      if next = "" then Ok None
      else
        let* v = int_of "sibling" next in
        Ok (Some v)
    in
    Ok
      (Some
         {
           B.row;
           node_kind;
           payloads = Array.of_list payloads;
           children = Array.of_list children;
           next;
         })


let encode_index t =
  let snap = B.snapshot t in
  Codec.frame
    (magic :: "index" :: be8 snap.B.snap_id :: be8 snap.B.snap_order :: be8 snap.B.snap_root
    :: be8 snap.B.snap_size
    :: List.map encode_node (Array.to_list snap.B.snap_slots))

let decode_index ~codec s =
  let* fields = Codec.unframe s in
  match fields with
  | m :: section :: id :: order :: root :: size :: slots ->
      if m <> magic then Error "storage: bad magic (not a secdb file or wrong version)"
      else if section <> "index" then Error "storage: expected an index section"
      else
        let* snap_id = int_of "index id" id in
        let* snap_order = int_of "order" order in
        let* snap_root = int_of "root" root in
        let* snap_size = int_of "size" size in
        let rec loop row acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest ->
              let* node = decode_node row s in
              loop (row + 1) (node :: acc) rest
        in
        let* slots = loop 0 [] slots in
        B.of_snapshot ~codec
          { B.snap_id; snap_order; snap_root; snap_size; snap_slots = Array.of_list slots }
  | _ -> Error "storage: malformed index file"

(* --- merkle leaves -------------------------------------------------------- *)

let table_leaves t = List.map encode_row (Etable.dump_rows t)

let index_leaves t =
  let snap = B.snapshot t in
  let header = Codec.frame [ be8 snap.B.snap_root; be8 snap.B.snap_size; be8 snap.B.snap_order ] in
  header :: List.map encode_node (Array.to_list snap.B.snap_slots)

(* --- files -------------------------------------------------------------- *)

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_table ~path t = write_file path (encode_table t)
let load_table ~path ~scheme = decode_table ~scheme (read_file path)
let save_index ~path t = write_file path (encode_index t)
let load_index ~path ~codec = decode_index ~codec (read_file path)

lib/storage/blob_store.mli: Pager

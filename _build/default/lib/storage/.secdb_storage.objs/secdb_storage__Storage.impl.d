lib/storage/storage.ml: Array Fun List Printf Result Secdb_db Secdb_index Secdb_query Secdb_util String Xbytes

lib/storage/merkle.mli:

lib/storage/pager.mli:

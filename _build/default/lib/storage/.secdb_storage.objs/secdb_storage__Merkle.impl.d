lib/storage/merkle.ml: Array List Secdb_hash

lib/storage/storage.mli: Secdb_db Secdb_index Secdb_query Secdb_schemes

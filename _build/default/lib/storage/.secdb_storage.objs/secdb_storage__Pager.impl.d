lib/storage/pager.ml: Bytes Hashtbl Printf Secdb_util String Unix Xbytes

lib/storage/blob_store.ml: List Pager Printf Secdb_util String Xbytes

(** PMAC (Rogaway), the parallelisable MAC used by the "OCB+PMAC" AEAD
    composition the paper recommends (reference [10]).

    Offsets are Gray-code multiples of L = E_K(0ⁿ); the i-th message block
    is whitened with Z_i before encryption, the results are xored into a
    checksum, and the final block is folded in unencrypted (masked by
    L·x⁻¹ when it is a complete block).  Costs ⌈|M|/n⌉ blockcipher calls
    plus the one-time L computation. *)

val mac : Secdb_cipher.Block.t -> string -> string
(** Full-block tag of an arbitrary-length message; [mac c "" ] is defined
    (tag of the empty message). *)

val mac_truncated : Secdb_cipher.Block.t -> bytes:int -> string -> string

val verify : Secdb_cipher.Block.t -> tag:string -> string -> bool

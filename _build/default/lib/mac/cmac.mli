(** CMAC / OMAC1 (Iwata–Kurosawa, cited by the paper as [5]; standardised in
    NIST SP 800-38B, RFC 4493).

    A CBC-MAC variant secure for variable-length messages: the last block is
    masked with a subkey (K1 for complete, K2 for padded final blocks)
    derived by GF(2ⁿ) doubling of E_K(0ⁿ).

    The paper's Section 3.3 attack shows that even this secure MAC loses
    authenticity when composed encrypt-and-MAC style with CBC encryption
    under the {e same} key — the attack needs nothing beyond this module
    and {!Secdb_modes.Mode.cbc_encrypt}. *)

val mac : Secdb_cipher.Block.t -> string -> string
(** Full-block tag of an arbitrary-length message. *)

val mac_truncated : Secdb_cipher.Block.t -> bytes:int -> string -> string

val verify : Secdb_cipher.Block.t -> tag:string -> string -> bool
(** Constant-time check of a (possibly truncated) tag. *)

val subkeys : Secdb_cipher.Block.t -> string * string
(** The (K1, K2) pair, exposed for tests. *)

(** Keyed instances amortise the subkey derivation (one blockcipher call)
    across messages, and allow continuing from a precomputed chain state —
    which is how EAX caches its three OMAC tweak prefixes to reach the
    2n+m+1 per-message cost the analysed paper quotes. *)

type keyed

val keyed : Secdb_cipher.Block.t -> keyed
(** Derive and cache the subkeys (1 blockcipher call). *)

val mac_with : keyed -> ?init:string -> string -> string
(** OMAC continued from chain state [init] (default: the zero block, i.e.
    plain OMAC).  [mac_with k ~init:(chain-state-after P) M] equals
    [mac c (P ^ M)] whenever [P] is a whole number of blocks and [M] is
    non-empty. *)

val chain_state : keyed -> string -> string
(** CBC chain state after absorbing a whole-block prefix (no final-block
    masking); input length must be a positive multiple of the block size. *)

(** Doubling (multiplication by x) in GF(2ⁿ) on block-sized byte strings,
    as used by CMAC/OMAC, PMAC and OCB subkey derivation.

    For 128-bit blocks the reduction polynomial is x¹²⁸+x⁷+x²+x+1 (constant
    0x87); for 64-bit blocks it is x⁶⁴+x⁴+x³+x+1 (constant 0x1b). *)

val dbl : string -> string
(** Multiply by x.  Accepts 8- or 16-byte strings.
    @raise Invalid_argument otherwise. *)

val inv_dbl : string -> string
(** Multiply by x⁻¹ (the OCB "L/x" operation); inverse of {!dbl}. *)

val dbl_pow : string -> int -> string
(** [dbl_pow l i] is [l] multiplied by xⁱ. *)

val ntz : int -> int
(** Number of trailing zero bits of a positive integer. *)

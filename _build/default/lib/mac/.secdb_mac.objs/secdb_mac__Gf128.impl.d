lib/mac/gf128.ml: Bytes Char Printf String

lib/mac/cmac.ml: Gf128 Option Secdb_cipher Secdb_util String Xbytes

lib/mac/cbc_mac.mli: Secdb_cipher

lib/mac/gf128.mli:

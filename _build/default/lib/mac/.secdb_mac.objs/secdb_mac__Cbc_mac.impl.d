lib/mac/cbc_mac.ml: List Secdb_cipher Secdb_modes Secdb_util String Xbytes

lib/mac/pmac.mli: Secdb_cipher

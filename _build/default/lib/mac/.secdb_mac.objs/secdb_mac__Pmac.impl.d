lib/mac/pmac.ml: Gf128 Secdb_cipher Secdb_util String Xbytes

lib/mac/cmac.mli: Secdb_cipher

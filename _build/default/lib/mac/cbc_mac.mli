(** Raw CBC-MAC (zero IV, no length strengthening, no final transform).

    Secure only for fixed-length messages; exposed because the paper's
    Section 3.3 attack exploits precisely the structural identity between
    CBC encryption with zero IV and the CBC-MAC chain when both run under
    the same key.  Use {!Cmac} for a MAC that is actually secure for
    variable-length inputs. *)

val mac : Secdb_cipher.Block.t -> string -> string
(** MAC of a message whose length must be a multiple of the block size.
    @raise Invalid_argument otherwise. *)

val mac_padded : Secdb_cipher.Block.t -> string -> string
(** Convenience: PKCS#7-pad, then {!mac}. *)

val chain : Secdb_cipher.Block.t -> string -> string list
(** All intermediate chaining values C₁…Cₛ (exposed for the Section 3.3
    analysis: these equal the CBC ciphertext blocks under the same key). *)

open Secdb_util

let subkeys (c : Secdb_cipher.Block.t) =
  let l = c.encrypt (Secdb_cipher.Block.zero_block c) in
  let k1 = Gf128.dbl l in
  let k2 = Gf128.dbl k1 in
  (k1, k2)

type keyed = { cipher : Secdb_cipher.Block.t; k1 : string; k2 : string }

let keyed (c : Secdb_cipher.Block.t) =
  let k1, k2 = subkeys c in
  { cipher = c; k1; k2 }

let mac_with { cipher = c; k1; k2 } ?init msg =
  let bs = c.block_size in
  let init = Option.value init ~default:(Secdb_cipher.Block.zero_block c) in
  let len = String.length msg in
  let complete = len > 0 && len mod bs = 0 in
  let nfull = if complete then (len / bs) - 1 else len / bs in
  let prev = ref init in
  for i = 0 to nfull - 1 do
    prev := c.encrypt (Xbytes.xor_exact (String.sub msg (i * bs) bs) !prev)
  done;
  let last =
    if complete then Xbytes.xor_exact (String.sub msg (nfull * bs) bs) k1
    else
      let rest = String.sub msg (nfull * bs) (len - (nfull * bs)) in
      let padded = rest ^ "\x80" ^ String.make (bs - String.length rest - 1) '\000' in
      Xbytes.xor_exact padded k2
  in
  c.encrypt (Xbytes.xor_exact last !prev)

let chain_state { cipher = c; _ } prefix =
  let bs = c.block_size in
  if prefix = "" || String.length prefix mod bs <> 0 then
    invalid_arg "Cmac.chain_state: prefix must be a positive multiple of the block size";
  let prev = ref (Secdb_cipher.Block.zero_block c) in
  String.iteri
    (fun i _ -> if i mod bs = bs - 1 then
        prev := c.encrypt (Xbytes.xor_exact (String.sub prefix (i - bs + 1) bs) !prev))
    prefix;
  !prev

let mac (c : Secdb_cipher.Block.t) msg = mac_with (keyed c) msg

let mac_truncated c ~bytes msg = Xbytes.take bytes (mac c msg)

let verify c ~tag msg =
  Xbytes.constant_time_equal (Xbytes.take (String.length tag) (mac c msg)) tag

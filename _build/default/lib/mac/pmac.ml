open Secdb_util

(* Incremental Gray-code offsets: Z_1 = L, Z_{i+1} = Z_i xor L(ntz(i+1))
   where L(j) = L * x^j.  Equivalent to Z_i = gamma_i * L. *)

let mac (c : Secdb_cipher.Block.t) msg =
  let bs = c.block_size in
  let l = c.encrypt (Secdb_cipher.Block.zero_block c) in
  let l_inv = Gf128.inv_dbl l in
  let len = String.length msg in
  let m = max 1 ((len + bs - 1) / bs) in
  let sigma = ref (Secdb_cipher.Block.zero_block c) in
  let z = ref l in
  for i = 1 to m - 1 do
    let blk = String.sub msg ((i - 1) * bs) bs in
    sigma := Xbytes.xor_exact !sigma (c.encrypt (Xbytes.xor_exact blk !z));
    z := Xbytes.xor_exact !z (Gf128.dbl_pow l (Gf128.ntz (i + 1)))
  done;
  let lastlen = len - ((m - 1) * bs) in
  let final =
    if lastlen = bs then
      Xbytes.xor_exact (String.sub msg ((m - 1) * bs) bs) l_inv
    else
      let rest = if lastlen <= 0 then "" else String.sub msg ((m - 1) * bs) lastlen in
      rest ^ "\x80" ^ String.make (bs - String.length rest - 1) '\000'
  in
  c.encrypt (Xbytes.xor_exact !sigma final)

let mac_truncated c ~bytes msg = Xbytes.take bytes (mac c msg)

let verify c ~tag msg =
  Xbytes.constant_time_equal (Xbytes.take (String.length tag) (mac c msg)) tag

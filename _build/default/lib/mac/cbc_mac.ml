open Secdb_util

let chain (c : Secdb_cipher.Block.t) msg =
  if String.length msg mod c.block_size <> 0 then
    invalid_arg "Cbc_mac: message length must be a multiple of the block size";
  let prev = ref (Secdb_cipher.Block.zero_block c) in
  List.map
    (fun blk ->
      prev := c.encrypt (Xbytes.xor_exact blk !prev);
      !prev)
    (Xbytes.blocks c.block_size msg)

let mac c msg =
  match List.rev (chain c msg) with
  | last :: _ -> last
  | [] -> c.encrypt (Secdb_cipher.Block.zero_block c)

let mac_padded c msg = mac c (Secdb_modes.Padding.pad ~block:c.block_size msg)

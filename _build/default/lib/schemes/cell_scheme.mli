(** Common shape of a cell encryption scheme.

    A cell scheme turns the plaintext octets of an attribute value into the
    bytes stored in the table cell at a given address, and back.  Decryption
    performs whatever validity checking the scheme offers (the µ comparison
    of the Append-Scheme, the data-redundancy check of the XOR-Scheme, the
    AEAD tag of the fixed scheme) and fails — as the paper puts it, raises a
    decryption error — when the check does not pass. *)

type t = {
  name : string;
  deterministic : bool;
      (** ciphertexts of equal (value, address) pairs coincide — assumption
          (3) of the analysed scheme, broken on purpose by the fix *)
  encrypt : Secdb_db.Address.t -> string -> string;
  decrypt : Secdb_db.Address.t -> string -> (string, string) result;
}

val encrypt : t -> Secdb_db.Address.t -> string -> string
val decrypt : t -> Secdb_db.Address.t -> string -> (string, string) result

val roundtrips : t -> Secdb_db.Address.t -> string -> bool
(** [decrypt a (encrypt a v) = Ok v] — basic sanity used by tests. *)

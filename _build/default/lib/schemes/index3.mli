(** The index encryption scheme of [3] (paper Section 2.3, eqs. (4), (5)):

    {v
    inner node:  E_k(V ∥ r_I)
    leaf node :  E_k((V, r) ∥ r_I)
    v}

    where r_I is the index-table row holding the entry and r the indexed
    table's row.  The pair (V, r) is represented as V ∥ r (8-byte
    big-endian row), which keeps V a plaintext prefix — the representation
    choice under which, as the paper notes, the leaf level also falls to
    the pattern-matching attack of Section 3.2 (EXP4).

    Decoding recomputes r_I from the node position and rejects a mismatch;
    that is the whole of the scheme's integrity story, and Section 3.2
    shows it insufficient under CBC/zero-IV. *)

val codec : e:Einst.t -> Secdb_index.Bptree.codec

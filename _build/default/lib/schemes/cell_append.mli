(** The Append-Scheme of [3] — eq. (2) of the paper:

    {v C = E_k(V ∥ µ(t,r,c)) v}

    used "whenever there is not enough redundancy in the allowed type of
    data".  Decryption strips the trailing µ-sized address checksum and
    compares it against µ of the actual address; a mismatch raises a
    decryption error.  Under the CBC/zero-IV instantiation this falls to
    the paper's Section 3.1 pattern-matching attack (EXP1) and to the
    existential forgery by prefix-block substitution (EXP2). *)

val make : e:Einst.t -> mu:Secdb_db.Address.mu -> Cell_scheme.t

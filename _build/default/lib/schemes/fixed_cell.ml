module Aead = Secdb_aead.Aead

let ad_of_address addr = Secdb_db.Address.encode addr

let make ?(ad_of = ad_of_address) ~(aead : Aead.t) ~(nonce : Secdb_aead.Nonce.t) () =
  {
    Cell_scheme.name = Printf.sprintf "fixed-cell[%s]" aead.Aead.name;
    deterministic = false;
    encrypt =
      (fun addr v ->
        let n = nonce () in
        let ct, tag = Aead.encrypt aead ~nonce:n ~ad:(ad_of addr) v in
        Secdb_db.Codec.frame [ n; ct; tag ]);
    decrypt =
      (fun addr stored ->
        match Secdb_db.Codec.unframe3 stored with
        | Error _ -> Error "fixed-cell: invalid"
        | Ok (n, ct, tag) -> (
            match Aead.decrypt aead ~nonce:n ~ad:(ad_of addr) ~tag ct with
            | Ok v -> Ok v
            | Error Aead.Invalid -> Error "fixed-cell: invalid"));
  }

let storage_overhead ~(aead : Aead.t) = Aead.stored_overhead aead + 12

(** Instantiations of the deterministic encryption function E_k.

    The analysed scheme assumes a fully deterministic encryption function
    (eq. (3) of the paper: x = y ⇔ E_k(x) = E_k(y)) able to process
    arbitrary-length inputs.  The paper's counter-examples fix E to "AES in
    the widely-used CBC mode with a constant zero IV"; this module provides
    that instantiation plus the even-worse ECB and the keystream-reusing
    CTR/OFB readings of footnote 2, all behind one record so schemes and
    attacks can be run against each. *)

type t = {
  name : string;
  block_size : int;
  deterministic : bool;
  enc : string -> string;  (** whole message, PKCS#7-padded internally where needed *)
  dec : string -> (string, string) result;  (** inverse; may fail on bad padding *)
}

val cbc_zero_iv : Secdb_cipher.Block.t -> t
(** The paper's counter-example: CBC, IV = 0ⁿ, PKCS#7 padding. *)

val ecb : Secdb_cipher.Block.t -> t
(** ECB with PKCS#7 padding — "even worse" (paper, Sect. 3). *)

val ctr_zero : Secdb_cipher.Block.t -> t
(** CTR with a constant zero counter start — the deterministic stream-mode
    reading of footnote 2 (keystream reuse across all cells). *)

val ofb_zero : Secdb_cipher.Block.t -> t
(** OFB with zero IV; same keystream-reuse failure. *)

val cbc_random_iv : Secdb_cipher.Block.t -> Secdb_util.Rng.t -> t
(** CBC with a fresh random IV prepended to the ciphertext.  {e Not}
    deterministic — violates assumption (3), so the analysed scheme's
    search machinery breaks; provided to let tests demonstrate that
    trade-off. *)

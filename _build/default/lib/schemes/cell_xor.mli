(** The XOR-Scheme of [3] — eq. (1) of the paper:

    {v C = E_k(V ⊕ µ(t,r,c)) v}

    with the shorter operand implicitly zero-extended.  Position binding is
    purely statistical: decryption at the wrong address yields
    V ⊕ µ ⊕ µ', detectable only through redundancy in the allowed data for
    the column — the [validate] predicate.  The paper's Section 3.1
    substitution attack defeats exactly this with partial collisions on the
    high bits of µ (experiment EXP3). *)

val make :
  e:Einst.t ->
  mu:Secdb_db.Address.mu ->
  ?strip_zero_extension:bool ->
  validate:(string -> bool) ->
  unit ->
  Cell_scheme.t
(** [validate] models the column's data redundancy, e.g.
    {!Secdb_util.Xbytes.is_ascii7} for ASCII attributes.

    Values shorter than µ's width are implicitly zero-extended before
    encryption (the paper's ⊕ convention), which loses the original length.
    When the column's allowed data contains no NUL bytes the extension is
    invertible: pass [strip_zero_extension:true] (default [false]) to strip
    trailing NULs after decryption — [validate] then runs on the stripped
    value and should reject embedded NULs to keep the scheme injective. *)

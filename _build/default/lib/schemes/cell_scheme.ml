type t = {
  name : string;
  deterministic : bool;
  encrypt : Secdb_db.Address.t -> string -> string;
  decrypt : Secdb_db.Address.t -> string -> (string, string) result;
}

let encrypt t addr v = t.encrypt addr v
let decrypt t addr c = t.decrypt addr c
let roundtrips t addr v = decrypt t addr (encrypt t addr v) = Ok v

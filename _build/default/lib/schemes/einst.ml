open Secdb_modes

type t = {
  name : string;
  block_size : int;
  deterministic : bool;
  enc : string -> string;
  dec : string -> (string, string) result;
}

let cbc_zero_iv (c : Secdb_cipher.Block.t) =
  let iv = Mode.zero_iv c in
  {
    name = Printf.sprintf "cbc0(%s)" c.name;
    block_size = c.block_size;
    deterministic = true;
    enc = (fun m -> Mode.cbc_encrypt c ~iv (Padding.pad ~block:c.block_size m));
    dec =
      (fun ct ->
        if ct = "" || String.length ct mod c.block_size <> 0 then
          Error "cbc0: ciphertext length is not a positive multiple of the block size"
        else Padding.unpad ~block:c.block_size (Mode.cbc_decrypt c ~iv ct));
  }

let ecb (c : Secdb_cipher.Block.t) =
  {
    name = Printf.sprintf "ecb(%s)" c.name;
    block_size = c.block_size;
    deterministic = true;
    enc = (fun m -> Mode.ecb_encrypt c (Padding.pad ~block:c.block_size m));
    dec =
      (fun ct ->
        if ct = "" || String.length ct mod c.block_size <> 0 then
          Error "ecb: ciphertext length is not a positive multiple of the block size"
        else Padding.unpad ~block:c.block_size (Mode.ecb_decrypt c ct));
  }

let stream name f (c : Secdb_cipher.Block.t) =
  {
    name = Printf.sprintf "%s(%s)" name c.name;
    block_size = c.block_size;
    deterministic = true;
    enc = f;
    dec = (fun ct -> Ok (f ct));
  }

let ctr_zero c = stream "ctr0" (fun m -> Mode.ctr c ~nonce:(Mode.zero_iv c) m) c

let ofb_zero c = stream "ofb0" (fun m -> Mode.ofb c ~iv:(Mode.zero_iv c) m) c

let cbc_random_iv (c : Secdb_cipher.Block.t) rng =
  let bs = c.block_size in
  {
    name = Printf.sprintf "cbc$(%s)" c.name;
    block_size = bs;
    deterministic = false;
    enc =
      (fun m ->
        let iv = Secdb_util.Rng.bytes rng bs in
        iv ^ Mode.cbc_encrypt c ~iv (Padding.pad ~block:bs m));
    dec =
      (fun ct ->
        if String.length ct < 2 * bs || String.length ct mod bs <> 0 then
          Error "cbc$: ciphertext too short"
        else
          let iv = String.sub ct 0 bs in
          Padding.unpad ~block:bs
            (Mode.cbc_decrypt c ~iv (String.sub ct bs (String.length ct - bs))));
  }

lib/schemes/index12.mli: Einst Secdb_cipher Secdb_index Secdb_util

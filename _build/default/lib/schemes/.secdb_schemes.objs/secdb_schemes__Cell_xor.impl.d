lib/schemes/cell_xor.ml: Cell_scheme Einst Printf Secdb_db Secdb_util String Xbytes

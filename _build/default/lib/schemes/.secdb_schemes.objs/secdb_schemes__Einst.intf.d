lib/schemes/einst.mli: Secdb_cipher Secdb_util

lib/schemes/einst.ml: Mode Padding Printf Secdb_cipher Secdb_modes Secdb_util String

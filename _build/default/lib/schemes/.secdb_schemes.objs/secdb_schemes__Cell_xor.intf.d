lib/schemes/cell_xor.mli: Cell_scheme Einst Secdb_db

lib/schemes/fixed_index.mli: Secdb_aead Secdb_index

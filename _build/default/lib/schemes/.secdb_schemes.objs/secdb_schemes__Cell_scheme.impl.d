lib/schemes/cell_scheme.ml: Secdb_db

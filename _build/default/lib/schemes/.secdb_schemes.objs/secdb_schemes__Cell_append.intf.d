lib/schemes/cell_append.mli: Cell_scheme Einst Secdb_db

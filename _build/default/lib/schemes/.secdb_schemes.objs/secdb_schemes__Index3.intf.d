lib/schemes/index3.mli: Einst Secdb_index

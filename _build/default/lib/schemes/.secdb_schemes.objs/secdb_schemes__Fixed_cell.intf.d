lib/schemes/fixed_cell.mli: Cell_scheme Secdb_aead Secdb_db

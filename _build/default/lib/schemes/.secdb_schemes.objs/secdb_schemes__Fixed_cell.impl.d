lib/schemes/fixed_cell.ml: Cell_scheme Printf Secdb_aead Secdb_db

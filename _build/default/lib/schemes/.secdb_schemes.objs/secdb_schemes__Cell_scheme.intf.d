lib/schemes/cell_scheme.mli: Secdb_db

lib/schemes/fixed_index.ml: Printf Result Secdb_aead Secdb_db Secdb_index Secdb_util String Xbytes

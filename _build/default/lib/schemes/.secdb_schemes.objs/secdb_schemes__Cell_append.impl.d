lib/schemes/cell_append.ml: Cell_scheme Einst Printf Secdb_db Secdb_util String Xbytes

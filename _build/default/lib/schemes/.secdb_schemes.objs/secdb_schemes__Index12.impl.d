lib/schemes/index12.ml: Einst Printf Result Rng Secdb_db Secdb_index Secdb_mac Secdb_util String Xbytes

lib/schemes/index3.ml: Einst Printf Result Secdb_db Secdb_index Secdb_util String Xbytes

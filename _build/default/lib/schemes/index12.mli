(** The improved index encryption scheme of [12] (paper Section 2.4,
    eqs. (6), (7)):

    {v
    entry = ( Ẽ_k(V), Ref_I, E'_k(Ref_T), MAC_k(V ∥ Ref_I ∥ Ref_T ∥ Ref_S) )
    Ẽ_k(x) = E_k(x ∥ a),  a a fixed-size random number
    v}

    Structural references Ref_I are kept in clear by the B⁺-tree itself.
    Ref_S is (t_I, t, c, r_I).  Following the paper's counter-example the
    default instantiation uses the {e same key} for E and for the OMAC —
    the "pathological but permitted-by-the-spec" reading that Section 3.3
    breaks (EXP6); the appended randomness a also fails to stop prefix
    pattern matching (EXP5) because E decomposes V ∥ a into blocks with V
    first.

    Note on Ref_I: in a live B⁺-tree the child pointers of a node change on
    every rebalance without the payloads being touched, so MACing them
    would force re-authentication of whole nodes on structural updates;
    [12] does not address this, and this reconstruction authenticates
    V ∥ Ref_T ∥ Ref_S (Ref_I contributes the empty string).  None of the
    paper's attacks involve Ref_I.  DESIGN.md §4 records the substitution. *)

val codec :
  e:Einst.t ->
  mac_cipher:Secdb_cipher.Block.t ->
  ?rand_len:int ->
  rng:Secdb_util.Rng.t ->
  indexed_table:int ->
  indexed_col:int ->
  unit ->
  Secdb_index.Bptree.codec
(** [mac_cipher] keys the OMAC; pass the cipher underlying [e] to get the
    paper's same-key counter-example, or an independently keyed cipher for
    the repaired-keys variant.  [rand_len] is |a| in bytes, default 8
    (the paper assumes |a| < 128 bits). *)

(** The paper's fixed index encryption scheme (Section 4):

    {v
    (C, T) = AEAD-Enc_k(N, (V, Ref_T), (Ref_S, Ref_I))
    Ref_S  = (t_I, t, c, r_I)
    v}

    stored as (Ref_I, (N, C, T)) — the structural references stay in clear
    in the B⁺-tree, the payload framed as N ∥ C ∥ T.  The plaintext couples
    the indexed value with its table reference; the associated data binds
    the entry to its index position, so relocation, substitution or
    modification of either payload or position is rejected by the AEAD tag.
    The same Ref_I caveat as {!Index12} applies (and is shared by the
    paper, which also leaves Ref_I maintenance unspecified): the node-kind
    marker is authenticated in its place. *)

val codec :
  aead:Secdb_aead.Aead.t ->
  nonce:Secdb_aead.Nonce.t ->
  indexed_table:int ->
  indexed_col:int ->
  unit ->
  Secdb_index.Bptree.codec

exception Session_closed

type t = { mutable master : string option }

let open_session ~master =
  if master = "" then invalid_arg "Keyring.open_session: empty master key";
  { master = Some master }

let close_session t = t.master <- None
let is_open t = t.master <> None

let derive t ~label ~length =
  if length > Secdb_hash.Sha256.digest_size then
    invalid_arg "Keyring.derive: length exceeds one HMAC-SHA256 output";
  match t.master with
  | None -> raise Session_closed
  | Some master ->
      Secdb_util.Xbytes.take length
        (Secdb_hash.Hmac.mac Secdb_hash.Hmac.sha256 ~key:master label)

let scoped t purpose ~table ~col =
  derive t ~label:(Printf.sprintf "secdb/%s/t=%d/c=%d" purpose table col) ~length:16

let cell_key t ~table ~col = scoped t "cell" ~table ~col
let index_key t ~table ~col = scoped t "index" ~table ~col
let mac_key t ~table ~col = scoped t "mac" ~table ~col

lib/core/encdb.mli: Keyring Secdb_db Secdb_index Secdb_query

lib/core/keyring.ml: Printf Secdb_hash Secdb_util

lib/core/encdb.ml: Array Filename Fun Hashtbl Int64 Keyring List Option Printf Result Rng Secdb_aead Secdb_cipher Secdb_db Secdb_index Secdb_query Secdb_schemes Secdb_storage Secdb_util String Sys

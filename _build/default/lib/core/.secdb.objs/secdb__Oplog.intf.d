lib/core/oplog.mli: Encdb Format Secdb_aead Secdb_db

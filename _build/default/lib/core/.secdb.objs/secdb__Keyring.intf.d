lib/core/keyring.mli:

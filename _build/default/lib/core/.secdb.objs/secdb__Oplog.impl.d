lib/core/oplog.ml: Encdb Fmt In_channel List Printf Result Secdb_aead Secdb_db Secdb_util String

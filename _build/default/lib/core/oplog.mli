(** Encrypted, replay-protected operation log.

    The schemes protect data {e at rest}; a deployment also ships changes —
    backups, replication, audit.  This module appends each mutation as an
    AEAD record whose associated data is its sequence number, so records
    cannot be reordered, spliced from another log, or modified; together
    with the out-of-band record count (keep it with the master key, like
    the {!Encdb.digest} anchor) truncation is caught too.  Replaying a
    verified log into a fresh session rebuilds the exact database —
    {!Encdb.digest} equality is checked in the tests. *)

type op =
  | Insert of { table : string; values : Secdb_db.Value.t list }
  | Update of { table : string; row : int; col : string; value : Secdb_db.Value.t }
  | Delete of { table : string; row : int }

val pp_op : Format.formatter -> op -> unit

(** {2 Writing} *)

type writer

val create : path:string -> aead:Secdb_aead.Aead.t -> nonce:Secdb_aead.Nonce.t -> writer
(** Truncate and start a log at sequence 0. *)

val append : writer -> op -> int
(** Seal and append one operation; returns its sequence number. *)

val count : writer -> int
val close : writer -> unit

(** {2 Reading} *)

val replay : path:string -> aead:Secdb_aead.Aead.t -> ((int * op) list, string) result
(** Read, verify and decode the whole log.  Fails on any modified,
    reordered or foreign record; a truncated {e tail} parses as a shorter
    valid log — compare the length against the out-of-band count. *)

val apply : Encdb.t -> op -> (unit, string) result
(** Apply one operation to a live session. *)

val replay_into : Encdb.t -> path:string -> aead:Secdb_aead.Aead.t -> (int, string) result
(** Verify and apply a whole log; returns the number of operations. *)

lib/db/table.mli: Address Format Schema Value

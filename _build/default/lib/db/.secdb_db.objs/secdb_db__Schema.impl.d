lib/db/schema.ml: Array Fmt List Printf String Value

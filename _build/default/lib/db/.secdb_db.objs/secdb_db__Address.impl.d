lib/db/address.ml: Fmt Int Printf Secdb_hash Secdb_util

lib/db/codec.ml: Buffer List Printf Secdb_util String Xbytes

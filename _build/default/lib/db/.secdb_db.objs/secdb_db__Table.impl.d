lib/db/table.ml: Address Array Fmt List Printf Schema Secdb_util Value Vec

lib/db/value.ml: Bool Fmt Int Int64 Secdb_util String

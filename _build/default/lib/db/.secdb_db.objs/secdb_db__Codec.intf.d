lib/db/codec.mli:

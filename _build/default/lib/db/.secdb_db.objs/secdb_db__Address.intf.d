lib/db/address.mli: Format

(** Table schemas.

    The analysed scheme is flexible about which columns are protected; a
    column's [protection] records that choice, mirroring the paper's
    "flexible with respect to which columns to protect or leave in clear". *)

type protection =
  | Clear  (** stored as plaintext *)
  | Encrypted  (** cell encryption applies *)

type column = { name : string; ty : Value.kind; protection : protection }

type t = { table_name : string; columns : column array }

val v : table_name:string -> column list -> t
(** @raise Invalid_argument on duplicate column names or no columns. *)

val column : ?protection:protection -> string -> Value.kind -> column
(** Column constructor; default [protection] is [Encrypted]. *)

val ncols : t -> int
val col_index : t -> string -> int
(** @raise Not_found if the column does not exist. *)

val col : t -> int -> column
val pp : Format.formatter -> t -> unit

val check_value : column -> Value.t -> (unit, string) result
(** A value fits a column if it is [Null] or has the column's kind. *)

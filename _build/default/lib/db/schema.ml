type protection = Clear | Encrypted
type column = { name : string; ty : Value.kind; protection : protection }
type t = { table_name : string; columns : column array }

let column ?(protection = Encrypted) name ty = { name; ty; protection }

let v ~table_name columns =
  if columns = [] then invalid_arg "Schema.v: a table needs at least one column";
  let names = List.map (fun c -> c.name) columns in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Schema.v: duplicate column names";
  { table_name; columns = Array.of_list columns }

let ncols t = Array.length t.columns

let col_index t name =
  let rec loop i =
    if i >= Array.length t.columns then raise Not_found
    else if t.columns.(i).name = name then i
    else loop (i + 1)
  in
  loop 0

let col t i = t.columns.(i)

let pp ppf t =
  Fmt.pf ppf "@[<v2>table %s:@,%a@]" t.table_name
    (Fmt.iter ~sep:Fmt.cut Array.iter (fun ppf c ->
         Fmt.pf ppf "%s %s%s" c.name (Value.kind_name c.ty)
           (match c.protection with Clear -> "" | Encrypted -> " [encrypted]")))
    t.columns

let check_value c v =
  if v = Value.Null || Value.kind v = c.ty then Ok ()
  else
    Error
      (Printf.sprintf "column %s expects %s, got %s" c.name (Value.kind_name c.ty)
         (Value.kind_name (Value.kind v)))

type t = { table : int; row : int; col : int }

let v ~table ~row ~col = { table; row; col }
let equal a b = a.table = b.table && a.row = b.row && a.col = b.col

let compare a b =
  match Int.compare a.table b.table with
  | 0 -> ( match Int.compare a.row b.row with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let pp ppf a = Fmt.pf ppf "(t=%d,r=%d,c=%d)" a.table a.row a.col

let encode a =
  let open Secdb_util.Xbytes in
  int_to_be_string ~width:8 a.table ^ int_to_be_string ~width:8 a.row
  ^ int_to_be_string ~width:8 a.col

type mu = { name : string; width : int; digest : t -> string }

let truncated name width h =
  if width < 1 then invalid_arg "Address.mu: width must be positive";
  {
    name = Printf.sprintf "%s/%d" name (8 * width);
    width;
    digest = (fun a -> Secdb_util.Xbytes.take width (h (encode a)));
  }

let mu_sha1 ~width = truncated "sha1" (min width Secdb_hash.Sha1.digest_size) Secdb_hash.Sha1.digest
let mu_sha256 ~width = truncated "sha256" (min width Secdb_hash.Sha256.digest_size) Secdb_hash.Sha256.digest
let mu_md5 ~width = truncated "md5" (min width Secdb_hash.Md5.digest_size) Secdb_hash.Md5.digest
let mu_identity = { name = "identity"; width = 24; digest = encode }

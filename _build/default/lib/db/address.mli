(** Cell addresses and the address-conversion function µ.

    A cell address is the triple (t, r, c) of table id, row and column the
    analysed scheme feeds into the plaintext ((1), (2) of the paper).  The
    function µ converts the triple into a fixed-width byte string; [3]
    suggests a cryptographic hash for collision resistance, and the paper's
    Section 3.1 experiment instantiates it with SHA-1 truncated to the
    cipher's 128-bit block size. *)

type t = { table : int; row : int; col : int }

val v : table:int -> row:int -> col:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val encode : t -> string
(** Canonical 24-byte encoding t ∥ r ∥ c (8-byte big-endian each) hashed by
    the µ instantiations. *)

(** An instantiation of µ. *)
type mu = { name : string; width : int; digest : t -> string }

val mu_sha1 : width:int -> mu
(** SHA-1(t ∥ r ∥ c) truncated to [width] bytes — the paper's experimental
    choice with [width = 16]. *)

val mu_sha256 : width:int -> mu
val mu_md5 : width:int -> mu

val mu_identity : mu
(** The naive non-hash µ: the raw 24-byte encoding (strawman showing why
    [3] asks for collision resistance). *)

(** Unambiguous framing of byte-string sequences.

    The schemes concatenate heterogeneous fields — V ∥ µ(t,r,c),
    (V, r) ∥ r_I, V ∥ Ref_I ∥ Ref_T ∥ Ref_S — before encrypting or MACing.
    Where the paper's analysis depends on raw concatenation (the attacks),
    the scheme modules build the plaintext by hand; everywhere else this
    length-prefixed framing avoids ambiguity bugs. *)

val frame : string list -> string
(** Each field is prefixed with its 4-byte big-endian length. *)

val unframe : string -> (string list, string) result
(** Inverse of {!frame}; rejects truncated or trailing data. *)

val unframe2 : string -> (string * string, string) result
(** {!unframe} specialised to exactly two fields. *)

val unframe3 : string -> (string * string * string, string) result

(** Typed cell values. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Text of string  (** character data; the paper's attacks target ASCII text attributes *)
  | Bytes of string  (** opaque binary data *)

type kind = Knull | Kbool | Kint | Ktext | Kbytes

val kind : t -> kind
val kind_name : kind -> string

val compare : t -> t -> int
(** Total order: first by kind, then by natural value order (integers
    numerically, text/bytes lexicographically). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encode : t -> string
(** Unambiguous binary encoding (1 tag byte + payload), used both for
    serialization and as the plaintext V fed to the encryption schemes. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects trailing garbage. *)

val decode_exn : string -> t

val text_exn : t -> string
(** @raise Invalid_argument if not [Text]. *)

val int_exn : t -> int64

open Secdb_util

type t = { id : int; schema : Schema.t; rows : Value.t array Vec.t }

let create ~id schema = { id; schema; rows = Vec.create () }
let id t = t.id
let schema t = t.schema
let nrows t = Vec.length t.rows

let insert t values =
  let n = Schema.ncols t.schema in
  if List.length values <> n then
    invalid_arg
      (Printf.sprintf "Table.insert: expected %d values, got %d" n (List.length values));
  List.iteri
    (fun i v ->
      match Schema.check_value (Schema.col t.schema i) v with
      | Ok () -> ()
      | Error e -> invalid_arg ("Table.insert: " ^ e))
    values;
  Vec.push t.rows (Array.of_list values)

let get t ~row ~col = (Vec.get t.rows row).(col)

let set t ~row ~col v =
  (match Schema.check_value (Schema.col t.schema col) v with
  | Ok () -> ()
  | Error e -> invalid_arg ("Table.set: " ^ e));
  (Vec.get t.rows row).(col) <- v

let row t r = Array.copy (Vec.get t.rows r)
let address t ~row ~col = Address.v ~table:t.id ~row ~col
let iter_rows f t = Vec.iteri f t.rows

let iter_col ~col f t = Vec.iteri (fun r values -> f r values.(col)) t.rows

let find_rows t pred =
  let acc = ref [] in
  Vec.iteri (fun r values -> if pred values then acc := r :: !acc) t.rows;
  List.rev !acc

let pp ppf t =
  Fmt.pf ppf "@[<v2>%a@,%d row(s)@]" Schema.pp t.schema (nrows t)

open Secdb_util

let frame fields =
  let buf = Buffer.create 64 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Xbytes.int_to_be_string ~width:4 (String.length f));
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf

let unframe s =
  let rec loop off acc =
    if off = String.length s then Ok (List.rev acc)
    else if off + 4 > String.length s then Error "Codec.unframe: truncated length"
    else
      let len = Xbytes.be_string_to_int (String.sub s off 4) in
      if off + 4 + len > String.length s then Error "Codec.unframe: truncated field"
      else loop (off + 4 + len) (String.sub s (off + 4) len :: acc)
  in
  loop 0 []

let unframe2 s =
  match unframe s with
  | Ok [ a; b ] -> Ok (a, b)
  | Ok l -> Error (Printf.sprintf "Codec.unframe2: expected 2 fields, got %d" (List.length l))
  | Error e -> Error e

let unframe3 s =
  match unframe s with
  | Ok [ a; b; c ] -> Ok (a, b, c)
  | Ok l -> Error (Printf.sprintf "Codec.unframe3: expected 3 fields, got %d" (List.length l))
  | Error e -> Error e

(** In-memory tables with stable row numbers.

    Row numbers are append-order indices and never reused, so a cell's
    address (t, r, c) is stable — the property the analysed encryption
    scheme relies on for its position binding. *)

type t

val create : id:int -> Schema.t -> t
val id : t -> int
val schema : t -> Schema.t
val nrows : t -> int

val insert : t -> Value.t list -> int
(** Append a row; returns its row number.
    @raise Invalid_argument on arity or type mismatch. *)

val get : t -> row:int -> col:int -> Value.t
val set : t -> row:int -> col:int -> Value.t -> unit
val row : t -> int -> Value.t array
(** A copy of the row's values. *)

val address : t -> row:int -> col:int -> Address.t

val iter_rows : (int -> Value.t array -> unit) -> t -> unit
val iter_col : col:int -> (int -> Value.t -> unit) -> t -> unit

val find_rows : t -> (Value.t array -> bool) -> int list
(** Full-scan selection returning row numbers. *)

val pp : Format.formatter -> t -> unit

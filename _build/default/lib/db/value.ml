type t = Null | Bool of bool | Int of int64 | Text of string | Bytes of string
type kind = Knull | Kbool | Kint | Ktext | Kbytes

let kind = function
  | Null -> Knull
  | Bool _ -> Kbool
  | Int _ -> Kint
  | Text _ -> Ktext
  | Bytes _ -> Kbytes

let kind_name = function
  | Knull -> "null"
  | Kbool -> "bool"
  | Kint -> "int"
  | Ktext -> "text"
  | Kbytes -> "bytes"

let kind_rank = function Knull -> 0 | Kbool -> 1 | Kint -> 2 | Ktext -> 3 | Kbytes -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int64.compare x y
  | Text x, Text y -> String.compare x y
  | Bytes x, Bytes y -> String.compare x y
  | _ -> Int.compare (kind_rank (kind a)) (kind_rank (kind b))

let equal a b = compare a b = 0

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int64 ppf i
  | Text s -> Fmt.pf ppf "%S" s
  | Bytes s -> Fmt.pf ppf "x'%s'" (Secdb_util.Xbytes.to_hex s)

let to_string v = Fmt.str "%a" pp v

let encode = function
  | Null -> "N"
  | Bool false -> "b\000"
  | Bool true -> "b\001"
  | Int i -> "i" ^ Secdb_util.Xbytes.int64_to_be_string i
  | Text s -> "t" ^ s
  | Bytes s -> "y" ^ s

let decode s =
  if s = "" then Error "Value.decode: empty input"
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'N' -> if body = "" then Ok Null else Error "Value.decode: trailing bytes after NULL"
    | 'b' -> (
        match body with
        | "\000" -> Ok (Bool false)
        | "\001" -> Ok (Bool true)
        | _ -> Error "Value.decode: malformed bool")
    | 'i' ->
        if String.length body <> 8 then Error "Value.decode: malformed int"
        else Ok (Int (Secdb_util.Xbytes.get_uint64_be body 0))
    | 't' -> Ok (Text body)
    | 'y' -> Ok (Bytes body)
    | _ -> Error "Value.decode: unknown tag"

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg e

let text_exn = function Text s -> s | v -> invalid_arg ("Value.text_exn: " ^ to_string v)
let int_exn = function Int i -> i | v -> invalid_arg ("Value.int_exn: " ^ to_string v)

(** Triple DES in EDE mode (FIPS 46-3 / SP 800-67).

    The natural upgrade path from the single DES named in [3]: encrypt-
    decrypt-encrypt under two or three independent 56-bit keys, keeping the
    8-byte block.  Included to let the experiments instantiate E with a
    64-bit-block cipher of non-trivial strength — the small block halves
    every pattern-matching threshold (one shared block = 8 bytes). *)

val cipher : key:string -> Block.t
(** 16-byte key = 2-key EDE (K1,K2,K1); 24-byte key = 3-key EDE.
    @raise Invalid_argument on other lengths. *)

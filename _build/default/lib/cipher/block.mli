(** First-class block-cipher values.

    A {!t} bundles a keyed block cipher: its block size and the two
    single-block permutations.  Modes, MACs and AEAD schemes are all
    parameterised over this record, which lets the experiments swap AES for
    DES, and wrap any cipher with the instrumentation of {!Counting}. *)

type t = {
  name : string;  (** e.g. ["aes-128"] *)
  block_size : int;  (** in bytes *)
  encrypt : string -> string;  (** one block; input length = [block_size] *)
  decrypt : string -> string;  (** inverse permutation *)
}

val check_block : t -> string -> unit
(** @raise Invalid_argument if the string is not exactly one block. *)

val zero_block : t -> string
(** A block of zero bytes. *)

val map_name : (string -> string) -> t -> t
(** Rename, keeping behaviour. *)

type t = {
  name : string;
  block_size : int;
  encrypt : string -> string;
  decrypt : string -> string;
}

let check_block t s =
  if String.length s <> t.block_size then
    invalid_arg
      (Printf.sprintf "%s: expected %d-byte block, got %d bytes" t.name
         t.block_size (String.length s))

let zero_block t = String.make t.block_size '\000'
let map_name f t = { t with name = f t.name }

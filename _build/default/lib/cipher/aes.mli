(** AES (FIPS 197) — the Rijndael cipher with 128-bit blocks and 128-, 192-
    or 256-bit keys.

    The S-box is generated at start-up from its algebraic definition
    (multiplicative inverse in GF(2⁸) followed by the affine map), which
    avoids transcription errors in a 256-entry table; the FIPS 197 and
    SP 800-38A test vectors in the test suite pin the result. *)

type key

val expand_key : string -> key
(** Key schedule.  The key must be 16, 24 or 32 bytes.
    @raise Invalid_argument otherwise. *)

val encrypt_block : key -> string -> string
(** Encrypt one 16-byte block. @raise Invalid_argument on wrong length. *)

val decrypt_block : key -> string -> string
(** Decrypt one 16-byte block. *)

val cipher : key:string -> Block.t
(** Package as a first-class {!Block.t}; name is ["aes-128"], ["aes-192"] or
    ["aes-256"] according to the key length. *)

val sbox : int array
(** The 256-entry S-box (exposed for the test suite and {!Aes_fast}). *)

val round_key_bytes : key -> int array
(** The expanded key schedule as (rounds+1)·16 bytes (for {!Aes_fast}). *)

val inv_sbox : int array

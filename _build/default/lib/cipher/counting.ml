type counters = { mutable enc_calls : int; mutable dec_calls : int }

let wrap (c : Block.t) =
  let counters = { enc_calls = 0; dec_calls = 0 } in
  let wrapped =
    {
      c with
      Block.name = c.Block.name ^ "+counted";
      encrypt =
        (fun b ->
          counters.enc_calls <- counters.enc_calls + 1;
          c.Block.encrypt b);
      decrypt =
        (fun b ->
          counters.dec_calls <- counters.dec_calls + 1;
          c.Block.decrypt b);
    }
  in
  (wrapped, counters)

let reset c =
  c.enc_calls <- 0;
  c.dec_calls <- 0

let total c = c.enc_calls + c.dec_calls

let count_enc c f =
  let wrapped, counters = wrap c in
  let r = f wrapped in
  (counters.enc_calls, r)

let count_all c f =
  let wrapped, counters = wrap c in
  let r = f wrapped in
  (total counters, r)

(** DES (FIPS 46-3) — mentioned alongside AES in the analysed paper [3] as a
    candidate instantiation of the deterministic encryption function E.

    Single DES is cryptographically obsolete (56-bit key); it is provided
    because the analysed scheme names it, and because the attacks in this
    repository are independent of the block cipher's strength. *)

type key

val expand_key : string -> key
(** 8-byte key (parity bits ignored).
    @raise Invalid_argument on wrong length. *)

val encrypt_block : key -> string -> string
(** Encrypt one 8-byte block. *)

val decrypt_block : key -> string -> string

val cipher : key:string -> Block.t
(** Package as a {!Block.t} named ["des"]; block size 8. *)

val is_weak_key : string -> bool
(** True for the four DES weak keys (for which encryption = decryption). *)

(* 32-bit word formulation.  State: four big-endian words, one per column
   (word c = input bytes 4c..4c+3, byte 0 = row 0).  Encryption round:

     w'_c = Te0[b0(w_c)] ^ Te1[b1(w_{c+1})] ^ Te2[b2(w_{c+2})]
            ^ Te3[b3(w_{c+3})] ^ rk_c

   which fuses SubBytes, ShiftRows and MixColumns. *)

let mask = 0xffffffff

let xtime x =
  let x2 = x lsl 1 in
  if x land 0x80 <> 0 then (x2 lxor 0x1b) land 0xff else x2

let gmul a b =
  let rec loop a b acc =
    if b = 0 then acc
    else loop (xtime a) (b lsr 1) (if b land 1 <> 0 then acc lxor a else acc)
  in
  loop a b 0

let rotr32 w n = ((w lsr n) lor (w lsl (32 - n))) land mask

let te0, te1, te2, te3 =
  let t0 = Array.make 256 0 in
  for x = 0 to 255 do
    let s = Aes.sbox.(x) in
    t0.(x) <- (gmul s 2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor gmul s 3
  done;
  (t0, Array.map (fun w -> rotr32 w 8) t0,
   Array.map (fun w -> rotr32 w 16) t0,
   Array.map (fun w -> rotr32 w 24) t0)

let td0, td1, td2, td3 =
  let t0 = Array.make 256 0 in
  for x = 0 to 255 do
    let s = Aes.inv_sbox.(x) in
    t0.(x) <- (gmul s 14 lsl 24) lor (gmul s 9 lsl 16) lor (gmul s 13 lsl 8) lor gmul s 11
  done;
  (t0, Array.map (fun w -> rotr32 w 8) t0,
   Array.map (fun w -> rotr32 w 16) t0,
   Array.map (fun w -> rotr32 w 24) t0)

let inv_mix_column w =
  let b i = (w lsr (24 - (8 * i))) land 0xff in
  let a0 = b 0 and a1 = b 1 and a2 = b 2 and a3 = b 3 in
  let c0 = gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9 in
  let c1 = gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13 in
  let c2 = gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11 in
  let c3 = gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14 in
  (c0 lsl 24) lor (c1 lsl 16) lor (c2 lsl 8) lor c3

type key = { ek : int array; dk : int array; rounds : int; bits : int }

let expand_key key_str =
  let base = Aes.expand_key key_str in
  (* reuse the byte-wise schedule, repack into big-endian words *)
  let bytes = Aes.round_key_bytes base in
  let rounds = Array.length bytes / 16 - 1 in
  let nwords = 4 * (rounds + 1) in
  let word i =
    (bytes.(4 * i) lsl 24) lor (bytes.((4 * i) + 1) lsl 16)
    lor (bytes.((4 * i) + 2) lsl 8)
    lor bytes.((4 * i) + 3)
  in
  let ek = Array.init nwords word in
  (* decryption schedule: reversed rounds, InvMixColumns on the middle *)
  let dk = Array.make nwords 0 in
  for r = 0 to rounds do
    for c = 0 to 3 do
      let w = ek.((4 * (rounds - r)) + c) in
      dk.((4 * r) + c) <- (if r = 0 || r = rounds then w else inv_mix_column w)
    done
  done;
  { ek; dk; rounds; bits = String.length key_str * 8 }

let load block =
  if String.length block <> 16 then invalid_arg "Aes_fast: block must be 16 bytes";
  Array.init 4 (fun c -> Secdb_util.Xbytes.get_uint32_be block (4 * c))

let store w =
  let b = Bytes.create 16 in
  Array.iteri (fun c v -> Secdb_util.Xbytes.set_uint32_be b (4 * c) v) w;
  Bytes.unsafe_to_string b

let b0 w = (w lsr 24) land 0xff
let b1 w = (w lsr 16) land 0xff
let b2 w = (w lsr 8) land 0xff
let b3 w = w land 0xff

let encrypt_block k block =
  let w = load block in
  for c = 0 to 3 do
    w.(c) <- w.(c) lxor k.ek.(c)
  done;
  let t = Array.make 4 0 in
  for round = 1 to k.rounds - 1 do
    let rk = 4 * round in
    for c = 0 to 3 do
      t.(c) <-
        te0.(b0 w.(c))
        lxor te1.(b1 w.((c + 1) land 3))
        lxor te2.(b2 w.((c + 2) land 3))
        lxor te3.(b3 w.((c + 3) land 3))
        lxor k.ek.(rk + c)
    done;
    Array.blit t 0 w 0 4
  done;
  let rk = 4 * k.rounds in
  let s = Aes.sbox in
  for c = 0 to 3 do
    t.(c) <-
      (s.(b0 w.(c)) lsl 24)
      lor (s.(b1 w.((c + 1) land 3)) lsl 16)
      lor (s.(b2 w.((c + 2) land 3)) lsl 8)
      lor s.(b3 w.((c + 3) land 3))
      lxor k.ek.(rk + c)
  done;
  store t

let decrypt_block k block =
  let w = load block in
  for c = 0 to 3 do
    w.(c) <- w.(c) lxor k.dk.(c)
  done;
  let t = Array.make 4 0 in
  for round = 1 to k.rounds - 1 do
    let rk = 4 * round in
    for c = 0 to 3 do
      t.(c) <-
        td0.(b0 w.(c))
        lxor td1.(b1 w.((c + 3) land 3))
        lxor td2.(b2 w.((c + 2) land 3))
        lxor td3.(b3 w.((c + 1) land 3))
        lxor k.dk.(rk + c)
    done;
    Array.blit t 0 w 0 4
  done;
  let rk = 4 * k.rounds in
  let si = Aes.inv_sbox in
  for c = 0 to 3 do
    t.(c) <-
      (si.(b0 w.(c)) lsl 24)
      lor (si.(b1 w.((c + 3) land 3)) lsl 16)
      lor (si.(b2 w.((c + 2) land 3)) lsl 8)
      lor si.(b3 w.((c + 1) land 3))
      lxor k.dk.(rk + c)
  done;
  store t

let cipher ~key =
  let k = expand_key key in
  {
    Block.name = Printf.sprintf "aes-%d-fast" k.bits;
    block_size = 16;
    encrypt = encrypt_block k;
    decrypt = decrypt_block k;
  }

lib/cipher/block.mli:

lib/cipher/des.mli: Block

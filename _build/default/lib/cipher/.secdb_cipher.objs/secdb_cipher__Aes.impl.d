lib/cipher/aes.ml: Array Block Char Printf String

lib/cipher/des.ml: Array Block Bytes Fun Int64 List Secdb_util String

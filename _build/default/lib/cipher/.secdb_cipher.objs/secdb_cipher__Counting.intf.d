lib/cipher/counting.mli: Block

lib/cipher/aes_fast.ml: Aes Array Block Bytes Printf Secdb_util String

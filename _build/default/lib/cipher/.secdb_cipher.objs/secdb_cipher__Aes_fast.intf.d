lib/cipher/aes_fast.mli: Block

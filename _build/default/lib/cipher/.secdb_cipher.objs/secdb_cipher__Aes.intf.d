lib/cipher/aes.mli: Block

lib/cipher/block.ml: Printf String

lib/cipher/des3.ml: Block Des Printf String

lib/cipher/des3.mli: Block

lib/cipher/counting.ml: Block

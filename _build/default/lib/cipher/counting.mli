(** Instrumented block ciphers.

    Wraps any {!Block.t} so that every single-block encryption and
    decryption is counted.  This is how the repository reproduces the
    paper's Section 4 performance analysis, which measures AEAD overhead in
    {e blockcipher invocations} (EAX: 2n+m+1, OCB+PMAC: n+m+5). *)

type counters = { mutable enc_calls : int; mutable dec_calls : int }

val wrap : Block.t -> Block.t * counters
(** [wrap c] is a cipher behaving exactly like [c] whose invocations are
    tallied in the returned counters. *)

val reset : counters -> unit
val total : counters -> int

val count_enc : Block.t -> (Block.t -> 'a) -> int * 'a
(** [count_enc c f] runs [f] with an instrumented copy of [c] and returns
    the number of single-block encryptions it performed together with [f]'s
    result. *)

val count_all : Block.t -> (Block.t -> 'a) -> int * 'a
(** Like {!count_enc} but counts encryptions plus decryptions. *)

(** Keystream reuse against stream-mode instantiations (paper footnote 2).

    If E is instantiated with a stream cipher or a streaming block-cipher
    mode (CTR, OFB) then determinism (assumption (3)) forces the same
    keystream KS for every cell.  For the Append-Scheme,
    C₁ ⊕ C₂ = V₁ ⊕ V₂ directly; for the XOR-Scheme the public µ values
    peel off as well:  C₁ ⊕ C₂ ⊕ µ₁ ⊕ µ₂ = V₁ ⊕ V₂.  Any redundancy in
    the attributes then breaks them — classic two-time-pad cryptanalysis. *)

val plaintext_xor_append : ct_a:string -> ct_b:string -> string
(** V₁ ⊕ V₂ on the common prefix, for Append-Scheme ciphertexts under a
    streaming E. *)

val plaintext_xor_xor_scheme :
  mu:Secdb_db.Address.mu ->
  addr_a:Secdb_db.Address.t ->
  ct_a:string ->
  addr_b:Secdb_db.Address.t ->
  ct_b:string ->
  string
(** V₁ ⊕ V₂ for XOR-Scheme ciphertexts (µ is public: a hash of public
    addresses). *)

val crib_drag : known:string -> xor:string -> string
(** Recover the other plaintext's prefix from one known plaintext. *)

val recover_keystream : known:string -> ct:string -> string
(** KS prefix from a known (plaintext, ciphertext) pair under streaming E
    with Append-Scheme; decrypts {e every} cell in the column up to that
    length. *)

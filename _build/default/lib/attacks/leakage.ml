let entropy_of_counts counts =
  let counts = List.filter (fun c -> c > 0) counts in
  if counts = [] then invalid_arg "Leakage.entropy_of_counts: no mass";
  let total = float_of_int (List.fold_left ( + ) 0 counts) in
  List.fold_left
    (fun acc c ->
      let p = float_of_int c /. total in
      acc -. (p *. (Float.log p /. Float.log 2.0)))
    0.0 counts

let majority l =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x -> Hashtbl.replace tbl x (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
    l;
  Hashtbl.fold
    (fun x c best ->
      match best with Some (_, c') when c' >= c -> best | _ -> Some (x, c))
    tbl None
  |> Option.map fst

let baseline ~secrets =
  match majority secrets with
  | None -> 0.0
  | Some m ->
      float_of_int (List.length (List.filter (( = ) m) secrets))
      /. float_of_int (List.length secrets)

let guessing_accuracy ~pairs rng =
  if List.length pairs < 4 then invalid_arg "Leakage.guessing_accuracy: too few samples";
  let arr = Array.of_list pairs in
  Secdb_util.Rng.shuffle rng arr;
  let n = Array.length arr in
  let half = n / 2 in
  let train = Array.sub arr 0 half and test = Array.sub arr half (n - half) in
  (* observable -> list of secrets seen with it *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (obs, secret) ->
      match Hashtbl.find_opt seen obs with
      | Some l -> l := secret :: !l
      | None -> Hashtbl.add seen obs (ref [ secret ]))
    train;
  let fallback = majority (List.map snd (Array.to_list train)) in
  let correct =
    Array.fold_left
      (fun acc (obs, secret) ->
        let guess =
          match Hashtbl.find_opt seen obs with
          | Some l -> majority !l
          | None -> fallback
        in
        if guess = Some secret then acc + 1 else acc)
      0 test
  in
  float_of_int correct /. float_of_int (Array.length test)

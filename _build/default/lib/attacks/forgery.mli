(** Existential forgery against the Append-Scheme (paper Section 3.1,
    "Attack on Authentication of the Append-Scheme").

    Under CBC with a constant IV, replacing ciphertext blocks C_i with
    1 ≤ i ≤ s−1 (blocks strictly before the last value-only block) garbles
    only plaintext blocks inside V; the address-checksum blocks decrypt
    unchanged because C_s … C_{s+u} are untouched and CBC error propagation
    stops after one block.  The forged cell decrypts as {e valid} at its
    original address with different content — a break of the scheme's
    "data and position authentication" goal. *)

type outcome = {
  accepted : bool;  (** did the scheme accept the forged ciphertext? *)
  changed : bool;  (** and decode to a different value? *)
  forged_value : string option;
  modified_ct_block : int;  (** 0-based index of the replaced block *)
}

val forge :
  scheme:Secdb_schemes.Cell_scheme.t ->
  block:int ->
  addr:Secdb_db.Address.t ->
  value:string ->
  rng:Secdb_util.Rng.t ->
  (outcome, string) result
(** Encrypt [value] at [addr], replace one eligible ciphertext block with
    random bytes, and try to decrypt.  [Error] if [value] is too short to
    leave an eligible block (needs at least two cipher blocks of value
    data).  Against the broken scheme [accepted && changed] holds; against
    the AEAD fix [accepted] is false. *)

val success_rate :
  scheme:Secdb_schemes.Cell_scheme.t ->
  block:int ->
  table:int ->
  col:int ->
  value_len:int ->
  trials:int ->
  rng:Secdb_util.Rng.t ->
  float
(** Fraction of [trials] random cells for which {!forge} yields an accepted,
    content-changing forgery. *)

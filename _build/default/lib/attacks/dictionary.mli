(** Chosen-record dictionary attack on deterministic cell encryption.

    The paper's threat model lets the adversary read the storage; in any
    real deployment (a hospital clerk, a web sign-up form) the adversary
    can usually also cause {e chosen records} to be inserted.  Under the
    deterministic schemes that upgrades equality leakage to full plaintext
    recovery for any value from a guessable set: insert every candidate,
    read back its stored leading blocks, and match them against the victim
    cells — the address checksum only perturbs the ciphertext tail.

    Unlike {!Frequency}, no distributional knowledge is needed and unique
    values are recovered too. *)

type report = {
  recovered : (int * string) list;  (** (victim row, recovered value) *)
  missed : int;  (** victims whose value was outside the candidate set *)
  injected : int;  (** chosen records the adversary inserted *)
}

val attack :
  scheme:Secdb_schemes.Cell_scheme.t ->
  ?extract:(string -> string) ->
  block:int ->
  table:int ->
  col:int ->
  candidates:string list ->
  victims:(int * string) list ->
  int ->
  report
(** Victims are (row, secret value) pairs — the secret is used only to
    encrypt their cells and to score the attack.  The final argument is
    the first row number available to the adversary's chosen records.  A victim is recovered when its
    stored leading blocks match exactly one candidate's.  Values shorter
    than one cipher block cannot be matched this way (the address checksum
    shares their first block) and count as missed. *)

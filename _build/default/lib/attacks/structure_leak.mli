(** Structural leakage of the (fixed!) encrypted index.

    The analysed scheme — and the paper's AEAD fix — deliberately
    "preserve the structure of the index": node layout, child pointers and
    the leaf chain stay in clear so the server can manage the B⁺-tree.
    AEAD makes every payload opaque and bound to its slot, but the
    {e order} of entries along the leaf chain is the order of the indexed
    values.  A {e persistent} storage adversary who snapshots the index
    around a write therefore learns the {e rank} of each newly inserted
    (AEAD-protected!) value among everything already present — and with
    public knowledge of the column's distribution, an estimate of the
    value itself.  (The snapshot-diff attack of the later encrypted-range-
    index literature, instantiated against this scheme.)

    This module quantifies that residual leak, which no choice of AEAD can
    remove — only structure-hiding techniques (ORAM, oblivious indexes)
    outside the paper's design space would.  Experiment EXP20. *)

type observation = {
  lo_rank : int;  (** lowest possible rank of the new entry *)
  hi_rank : int;
      (** highest possible rank: when the insert split a node, the moved
          entries were re-encrypted too and the adversary sees a window of
          fresh payloads rather than a single one *)
  total_before : int;  (** entries present before the insert *)
}

val observe_insert :
  before:Secdb_index.Bptree.snapshot ->
  after:Secdb_index.Bptree.snapshot ->
  observation option
(** Diff two storage snapshots around a single insert and locate the new
    payload's position in the leaf chain.  [None] if the diff does not
    look like one insert (e.g. several writes were batched). *)

val estimate_uniform : observation -> lo:float -> hi:float -> float
(** Rank-to-value estimate under a publicly known Uniform(lo, hi)
    distribution: the rank/(n+1) quantile. *)

(** Quantifying leakage: from "an attack exists" to "how many bits".

    The experiments mostly show attacks succeeding or failing outright;
    this module measures the grey zone.  The primary metric is
    {e guessing accuracy}: train the empirical observable→secret majority
    map on half the samples, evaluate on the other half.  Unlike a plug-in
    mutual-information estimate it does not explode when every observable
    is unique (the randomised fix), where it honestly degrades to the
    majority-class baseline. *)

val entropy_of_counts : int list -> float
(** Shannon entropy (bits) of the empirical distribution given by counts.
    Zero-count entries are ignored. @raise Invalid_argument on an empty or
    all-zero list. *)

val baseline : secrets:string list -> float
(** Accuracy of always guessing the most common secret. *)

val guessing_accuracy :
  pairs:(string * string) list -> Secdb_util.Rng.t -> float
(** [(observable, secret)] samples; returns held-out accuracy of the
    majority-rule guesser under a shuffled 2-fold split (unknown
    observables fall back to the training majority class).
    @raise Invalid_argument with fewer than 4 samples. *)

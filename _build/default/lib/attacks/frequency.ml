open Secdb_util
module Address = Secdb_db.Address

type report = { buckets : int; recovered : int; total : int }

let attack ~(scheme : Secdb_schemes.Cell_scheme.t) ?(extract = Fun.id) ~block ~table ~col
    ~distribution rng =
  (* lay out the cells and shuffle the row order *)
  let cells =
    Array.of_list
      (List.concat_map (fun (v, count) -> List.init count (fun _ -> v)) distribution)
  in
  Rng.shuffle rng cells;
  let total = Array.length cells in
  (* the adversary's view: leading cipher block of each stored cell *)
  let buckets : (string, (string * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun row v ->
      let ct = extract (scheme.encrypt (Address.v ~table ~row ~col) v) in
      let key = Xbytes.take block ct in
      match Hashtbl.find_opt buckets key with
      | Some l -> l := (v, row) :: !l
      | None -> Hashtbl.add buckets key (ref [ (v, row) ]))
    cells;
  (* rank buckets and the public distribution by frequency; match only
     uniquely-ranked frequencies (ties are not credited) *)
  let bucket_list =
    Hashtbl.fold (fun _ members acc -> !members :: acc) buckets []
    |> List.sort (fun a b -> compare (List.length b) (List.length a))
  in
  let dist_sorted = List.sort (fun (_, a) (_, b) -> compare b a) distribution in
  let unique_counts l =
    let tbl = Hashtbl.create 16 in
    List.iter (fun c -> Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c))) l;
    fun c -> Hashtbl.find_opt tbl c = Some 1
  in
  let bucket_count_unique = unique_counts (List.map List.length bucket_list) in
  let dist_count_unique = unique_counts (List.map snd dist_sorted) in
  let rec zip a b =
    match (a, b) with x :: xs, y :: ys -> (x, y) :: zip xs ys | _ -> []
  in
  let recovered = ref 0 in
  List.iter
    (fun (members, (predicted, dcount)) ->
      let bcount = List.length members in
      if bcount = dcount && bucket_count_unique bcount && dist_count_unique dcount then
        List.iter (fun (truth, _) -> if truth = predicted then incr recovered) members)
    (zip bucket_list dist_sorted);
  { buckets = Hashtbl.length buckets; recovered = !recovered; total }

lib/attacks/mac_interaction.mli: Secdb_db Secdb_index Secdb_util

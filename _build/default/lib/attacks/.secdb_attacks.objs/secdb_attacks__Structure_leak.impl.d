lib/attacks/structure_leak.ml: Array Hashtbl List Secdb_index

lib/attacks/frequency.mli: Secdb_schemes Secdb_util

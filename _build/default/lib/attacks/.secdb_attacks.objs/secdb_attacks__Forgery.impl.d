lib/attacks/forgery.ml: Rng Secdb_db Secdb_schemes Secdb_util String

lib/attacks/ref_tamper.ml: Array List Secdb_index Secdb_util

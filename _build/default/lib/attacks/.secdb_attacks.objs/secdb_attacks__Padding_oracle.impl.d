lib/attacks/padding_oracle.ml: Bytes Char List Rng Secdb_schemes Secdb_util String Xbytes

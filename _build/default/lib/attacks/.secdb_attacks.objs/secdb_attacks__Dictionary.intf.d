lib/attacks/dictionary.mli: Secdb_schemes

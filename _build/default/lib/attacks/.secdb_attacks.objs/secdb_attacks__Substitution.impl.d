lib/attacks/substitution.ml: Array Char List Secdb_db Secdb_schemes String

lib/attacks/ref_tamper.mli: Secdb_index Secdb_util

lib/attacks/pattern_matching.ml: Array Fun List Secdb_db Secdb_index Secdb_schemes Secdb_util Xbytes

lib/attacks/keystream_reuse.mli: Secdb_db

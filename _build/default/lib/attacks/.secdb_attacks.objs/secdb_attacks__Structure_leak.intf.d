lib/attacks/structure_leak.mli: Secdb_index

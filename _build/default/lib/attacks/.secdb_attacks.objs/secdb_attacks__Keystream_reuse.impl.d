lib/attacks/keystream_reuse.ml: Secdb_db Secdb_util String Xbytes

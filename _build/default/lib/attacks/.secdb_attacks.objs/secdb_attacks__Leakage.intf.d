lib/attacks/leakage.mli: Secdb_util

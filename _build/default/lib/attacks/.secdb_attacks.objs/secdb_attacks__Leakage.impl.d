lib/attacks/leakage.ml: Array Float Hashtbl List Option Secdb_util

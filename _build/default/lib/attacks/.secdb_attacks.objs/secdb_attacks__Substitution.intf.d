lib/attacks/substitution.mli: Secdb_db Secdb_schemes

lib/attacks/frequency.ml: Array Fun Hashtbl List Option Rng Secdb_db Secdb_schemes Secdb_util Xbytes

lib/attacks/pattern_matching.mli: Secdb_index Secdb_schemes

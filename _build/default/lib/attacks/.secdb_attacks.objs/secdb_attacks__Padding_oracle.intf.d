lib/attacks/padding_oracle.mli: Secdb_db Secdb_schemes Secdb_util

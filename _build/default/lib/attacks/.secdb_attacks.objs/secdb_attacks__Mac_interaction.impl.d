lib/attacks/mac_interaction.ml: Rng Secdb_db Secdb_index Secdb_util String

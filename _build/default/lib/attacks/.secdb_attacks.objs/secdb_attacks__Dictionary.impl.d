lib/attacks/dictionary.ml: Fun Hashtbl List Secdb_db Secdb_schemes String

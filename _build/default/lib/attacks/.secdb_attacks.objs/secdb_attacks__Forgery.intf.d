lib/attacks/forgery.mli: Secdb_db Secdb_schemes Secdb_util

module Address = Secdb_db.Address

type report = {
  recovered : (int * string) list;
  missed : int;
  injected : int;
}

let leading_blocks ~block s =
  let n = String.length s / block * block in
  String.sub s 0 n

let attack ~(scheme : Secdb_schemes.Cell_scheme.t) ?(extract = Fun.id) ~block ~table ~col
    ~candidates ~victims inject_from =
  (* the adversary inserts one chosen record per candidate and reads back
     the stored bytes of its own rows *)
  let dictionary = Hashtbl.create (List.length candidates) in
  List.iteri
    (fun i candidate ->
      let row = inject_from + i in
      let ct = extract (scheme.encrypt (Address.v ~table ~row ~col) candidate) in
      (* index by the ciphertext blocks fully determined by the value *)
      let value_blocks = String.length candidate / block in
      if value_blocks > 0 then
        Hashtbl.replace dictionary
          (String.sub ct 0 (value_blocks * block))
          candidate)
    candidates;
  let recovered = ref [] and missed = ref 0 in
  List.iter
    (fun (row, secret) ->
      let ct = extract (scheme.encrypt (Address.v ~table ~row ~col) secret) in
      let prefix = leading_blocks ~block ct in
      (* try the longest dictionary prefixes first *)
      let rec try_len n =
        if n <= 0 then None
        else
          match Hashtbl.find_opt dictionary (String.sub prefix 0 (n * block)) with
          | Some candidate -> Some candidate
          | None -> try_len (n - 1)
      in
      match try_len (String.length prefix / block) with
      | Some candidate when candidate = secret -> recovered := (row, candidate) :: !recovered
      | Some _ | None -> incr missed)
    victims;
  {
    recovered = List.rev !recovered;
    missed = !missed;
    injected = List.length candidates;
  }

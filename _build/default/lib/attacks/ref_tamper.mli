(** Tampering with the unauthenticated structural references (the Ref_I
    gap).

    [12] writes Ref_I — the index-internal child/sibling references — into
    its MAC input, but in a live B⁺-tree those references change on every
    rebalance without the payloads being touched, so neither [12]-as-
    implementable nor the paper's fix actually authenticates them (both
    this reconstruction and the paper leave their maintenance
    unspecified; see {!Secdb_schemes.Index12}).  This module demonstrates
    the consequence: an adversary who swaps two child pointers, or cuts
    the leaf chain, changes {e query results} without touching a single
    authenticated byte.

    Every payload still verifies; only a full structural {!val:
    Secdb_index.Bptree.validate} (which real queries do not run) or a
    database-level anchor ({!Secdb.Encdb.digest}, EXP22) notices.
    Experiment EXP25. *)

val swap_children : Secdb_index.Bptree.t -> rng:Secdb_util.Rng.t -> bool
(** Swap two child pointers of a random inner node with ≥ 2 children;
    [false] if the tree has no inner node. *)

val swap_root_children : Secdb_index.Bptree.t -> bool
(** Swap the root's first two children — the highest-impact variant: every
    probe destined for the first subtree is misrouted. *)

val cut_leaf_chain : Secdb_index.Bptree.t -> bool
(** Make the first leaf's sibling pointer skip its successor, silently
    dropping every entry in between from range scans; [false] if there are
    fewer than three leaves. *)

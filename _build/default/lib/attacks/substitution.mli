(** Substitution attack on the XOR-Scheme (paper Section 3.1,
    "Substitution Attack on the XOR-Scheme") and its experiment.

    For b-byte blocks of ASCII data (high bit of every octet clear), moving
    a ciphertext from cell (t,r,c) to (t,r',c) yields
    V' = V ⊕ µ(t,r,c) ⊕ µ(t,r',c) after decryption, which passes the ASCII
    redundancy check iff every octet of µ ⊕ µ' has its high bit clear — a
    b-bit condition.  Partial collisions are found offline with ≈ 2·2^(b/2)
    work; the paper's experiment scanned 1024 trial addresses (same t and
    c, running r) with µ = SHA-1 truncated to 128 bits and found 6
    collisions (the expectation is C(1024,2)·2⁻¹⁶ ≈ 8.0). *)

type experiment = {
  trials : int;
  collisions : (int * int) list;  (** row pairs whose µ values collide on every high bit *)
  expected : float;  (** binomial expectation C(trials,2) · 2^(−b) *)
}

val high_bits_match : string -> string -> bool
(** All corresponding octets agree on their most significant bit. *)

val collision_search :
  mu:Secdb_db.Address.mu -> table:int -> col:int -> trials:int -> experiment
(** The paper's experiment: addresses (table, 0..trials−1, col). *)

type relocation = {
  from_row : int;
  to_row : int;
  accepted : bool;
  recovered : string option;  (** the value the victim now sees at the target cell *)
}

val relocate :
  scheme:Secdb_schemes.Cell_scheme.t ->
  table:int ->
  col:int ->
  value:string ->
  from_row:int ->
  to_row:int ->
  relocation
(** Encrypt [value] at [from_row], store the ciphertext at [to_row], and
    report whether decryption there is accepted.  For a colliding row pair
    from {!collision_search} the broken XOR-Scheme accepts; the AEAD fix
    refuses every relocation. *)

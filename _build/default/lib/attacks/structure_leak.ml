module B = Secdb_index.Bptree

type observation = { lo_rank : int; hi_rank : int; total_before : int }

(* Leaf-chain payloads of a snapshot, in order.  The chain start is the
   leftmost leaf reached from the root through first children. *)
let chain_payloads (snap : B.snapshot) =
  let node row =
    match snap.B.snap_slots.(row) with
    | Some v -> v
    | None -> invalid_arg "structure_leak: dangling node reference"
  in
  let rec descend row =
    let v = node row in
    match v.B.node_kind with
    | B.Leaf -> v
    | B.Inner -> descend v.B.children.(0)
  in
  let rec walk (v : B.node_view) acc =
    let acc = List.rev_append (Array.to_list v.B.payloads) acc in
    match v.B.next with Some nx -> walk (node nx) acc | None -> List.rev acc
  in
  walk (descend snap.B.snap_root) []

let observe_insert ~before ~after =
  let old_payloads = chain_payloads before in
  let new_payloads = chain_payloads after in
  if List.length new_payloads <> List.length old_payloads + 1 then None
  else begin
    let seen = Hashtbl.create (List.length old_payloads) in
    List.iter (fun p -> Hashtbl.replace seen p ()) old_payloads;
    let fresh =
      List.filteri (fun _ _ -> true) new_payloads
      |> List.mapi (fun i p -> (i, p))
      |> List.filter (fun (_, p) -> not (Hashtbl.mem seen p))
    in
    match fresh with
    | [] -> None
    | (first, _) :: _ ->
        let last = fst (List.nth fresh (List.length fresh - 1)) in
        Some
          {
            lo_rank = first;
            (* the window spans [first, last] positions in the new order;
               ranks are positions among the old entries *)
            hi_rank = min last (List.length old_payloads);
            total_before = List.length old_payloads;
          }
  end

let estimate_uniform obs ~lo ~hi =
  let mid = float_of_int (obs.lo_rank + obs.hi_rank) /. 2.0 in
  lo +. ((hi -. lo) *. ((mid +. 1.0) /. float_of_int (obs.total_before + 2)))

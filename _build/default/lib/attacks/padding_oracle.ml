open Secdb_util

type oracle = string -> [ `Padding_error | `Other ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let oracle_of_scheme (scheme : Secdb_schemes.Cell_scheme.t) addr : oracle =
 fun ct ->
  match scheme.decrypt addr ct with
  | Ok _ -> `Other
  | Error e -> if contains e "unpad" then `Padding_error else `Other

(* Recover d = D_k(c) bytewise (Vaudenay).  R is chosen so that the forged
   two-block ciphertext R || c decrypts its second block to d xor R; padding
   p = block - j is valid iff R[j] = d[j] xor p once bytes j+1.. are forced
   to p. *)
let recover_decryption ~(oracle : oracle) ~block c =
  let d = Bytes.make block '\000' in
  let ok = ref true in
  let j = ref (block - 1) in
  while !ok && !j >= 0 do
    let p = block - !j in
    (* sweep every guess: a genuine padding oracle confirms exactly one;
       a degenerate oracle (the AEAD fix reports a single failure class)
       confirms all 256, which we must treat as "no oracle" *)
    let candidates = ref [] in
    for g = 0 to 255 do
      let r = Bytes.make block '\000' in
      for k = !j + 1 to block - 1 do
        Bytes.set r k (Char.chr (Char.code (Bytes.get d k) lxor p))
      done;
      Bytes.set r !j (Char.chr g);
      (* fixed filler before j avoids accidental structure *)
      for k = 0 to !j - 1 do
        Bytes.set r k (Char.chr ((17 * k) land 0xff))
      done;
      match oracle (Bytes.to_string r ^ c) with
      | `Other ->
          (* padding looks valid: when a longer run could also explain it
             (only possible on the last byte), perturb the previous byte *)
          let confirmed =
            if !j < block - 1 then true
            else begin
              let r' = Bytes.copy r in
              Bytes.set r' (block - 2)
                (Char.chr (Char.code (Bytes.get r (block - 2)) lxor 0xff));
              oracle (Bytes.to_string r' ^ c) = `Other
            end
          in
          if confirmed then candidates := g :: !candidates
      | `Padding_error -> ()
    done;
    (match !candidates with
    | [ g ] -> Bytes.set d !j (Char.chr (g lxor p))
    | _ -> ok := false);
    decr j
  done;
  if !ok then Some (Bytes.to_string d) else None

let decrypt_block ~oracle ~block ~prev c =
  match recover_decryption ~oracle ~block c with
  | None -> None
  | Some d -> Some (Xbytes.xor_exact d prev)

let decrypt_ciphertext ~oracle ~block ct =
  if ct = "" || String.length ct mod block <> 0 then None
  else begin
    let blocks = Xbytes.blocks block ct in
    let rec loop prev acc = function
      | [] -> Some (String.concat "" (List.rev acc))
      | c :: rest -> (
          match decrypt_block ~oracle ~block ~prev c with
          | None -> None
          | Some p -> loop c (p :: acc) rest)
    in
    loop (String.make block '\000') [] blocks
  end

let oracle_exists (scheme : Secdb_schemes.Cell_scheme.t) addr ~trials ~rng =
  let oracle = oracle_of_scheme scheme addr in
  let saw_padding = ref false and saw_other = ref false in
  for _ = 1 to trials do
    match oracle (Rng.bytes rng 32) with
    | `Padding_error -> saw_padding := true
    | `Other -> saw_other := true
  done;
  !saw_padding && !saw_other

open Secdb_util
module Bptree = Secdb_index.Bptree

type outcome = { accepted : bool; value_changed : bool; modified_ct_block : int }

let forge_payload ~block ~payload ~rng =
  match Secdb_db.Codec.unframe3 payload with
  | Error e -> Error e
  | Ok (etilde, e_reft, tag) ->
      let nblocks = String.length etilde / block in
      (* plaintext layout: V || a || padding.  The final block holds a and
         padding (rand_len < block); blocks 0 .. nblocks-2 hold V.  The
         garbling of a replaced block i reaches block i+1, which must stay
         inside V, and block 0 carries the value's type tag — so pick
         1 <= i <= nblocks-3. *)
      if nblocks < 4 then Error "forge_payload: value spans fewer than 3 whole blocks"
      else begin
        let i = 1 + Rng.int rng (nblocks - 3) in
        let forged_etilde =
          String.sub etilde 0 (i * block)
          ^ Rng.bytes rng block
          ^ String.sub etilde ((i + 1) * block) (String.length etilde - ((i + 1) * block))
        in
        Ok (Secdb_db.Codec.frame [ forged_etilde; e_reft; tag ], i)
      end

let run ~(codec : Bptree.codec) ~ctx ~block ~value ~table_row ~rng =
  let payload = codec.encode ctx ~value ~table_row:(Some table_row) in
  match forge_payload ~block ~payload ~rng with
  | Error e -> Error e
  | Ok (forged, i) -> (
      match codec.decode ctx forged with
      | Error _ -> Ok { accepted = false; value_changed = false; modified_ct_block = i }
      | Ok (value', _) ->
          Ok
            {
              accepted = true;
              value_changed = not (Secdb_db.Value.equal value value');
              modified_ct_block = i;
            })

(** Frequency analysis of deterministic cell encryption.

    Even without shared prefixes, determinism (assumption (3) of the
    analysed scheme) leaks {e equality}: all cells holding the same value
    in the same column... do {e not} produce equal ciphertexts under the
    Append-/XOR-Schemes, because the address enters the plaintext — but
    their {e leading blocks} coincide whenever the value alone fills them
    (Append-Scheme), which is the hook of this classical attack: bucket the
    ciphertext prefixes, rank buckets by frequency, and match the ranking
    against public knowledge of the column's value distribution (the
    standard attack on deterministic encryption, cf. frequency analysis on
    CryptDB-style DTE columns).

    The module quantifies the leak: how many cells an adversary assigns the
    correct plaintext purely from frequencies. *)

type report = {
  buckets : int;  (** distinct ciphertext-prefix classes observed *)
  recovered : int;  (** cells assigned their true value by rank matching *)
  total : int;
}

val attack :
  scheme:Secdb_schemes.Cell_scheme.t ->
  ?extract:(string -> string) ->
  block:int ->
  table:int ->
  col:int ->
  distribution:(string * int) list ->
  Secdb_util.Rng.t ->
  report
(** [distribution] gives each value and its multiplicity (assumed public,
    e.g. census data for names or diagnoses).  Cells are generated in
    random row order, encrypted with [scheme], bucketed by their leading
    whole blocks, and buckets are matched to values by frequency rank.
    Ties are broken arbitrarily, so recovery of same-frequency values is
    not credited.  Against a deterministic scheme [recovered] ≈ all cells
    of uniquely-ranked values; against the AEAD fix the bucket count equals
    the cell count and [recovered] ≈ the share of rank-1-by-chance guesses. *)

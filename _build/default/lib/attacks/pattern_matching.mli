(** Pattern-matching attacks (paper Sections 3.1, 3.2, 3.3).

    Under the deterministic CBC/zero-IV instantiation, plaintexts sharing a
    prefix of whole blocks produce ciphertexts sharing the same number of
    leading blocks.  An adversary who can only read the encrypted storage
    thus learns equality relations between cell prefixes — and, when an
    index encrypts the same attribute bytes, correlations between index
    entries and table cells ("linkage leakage"). *)

type pair = {
  row_a : int;
  row_b : int;
  shared_ct_blocks : int;  (** leading ciphertext blocks in common *)
  shared_pt_blocks : int;  (** ground truth: leading plaintext blocks in common *)
}

type report = {
  scheme : string;
  block : int;
  pairs : pair list;  (** only pairs with at least one shared ciphertext block *)
  true_pairs : int;  (** pairs sharing at least one plaintext block *)
  detected_pairs : int;
  true_positives : int;
}

val cells :
  scheme:Secdb_schemes.Cell_scheme.t ->
  ?extract:(string -> string) ->
  block:int ->
  table:int ->
  col:int ->
  (int * string) list ->
  report
(** Encrypt every (row, value) at its cell address with [scheme] and
    compare all ciphertext pairs.  A perfect attack has
    [detected_pairs = true_pairs = true_positives]; against the AEAD fix
    [detected_pairs] is 0 (up to negligible chance).  [extract] isolates
    the ciphertext component from the stored cell bytes before comparison
    (default: identity); for the fixed AEAD scheme pass
    {!extract_fixed_cell} so the attack matches on C rather than on the
    public nonce/tag framing — nonces are public and their equality leaks
    nothing. *)

type index_link = {
  cell_row : int;
  node_row : int;
  slot : int;
  shared_blocks : int;
  truly_same_value : bool;
}

type index_report = {
  index_scheme : string;
  links : index_link list;  (** (cell, index entry) pairs with ≥ 1 shared leading block *)
  correct_links : int;
  total_links : int;
}

val index_correlation :
  cell_scheme:Secdb_schemes.Cell_scheme.t ->
  tree:Secdb_index.Bptree.t ->
  payload_ciphertext:(string -> string option) ->
  block:int ->
  table:int ->
  col:int ->
  plaintexts:(int * string) list ->
  index_report
(** Correlate stored cell ciphertexts with the encrypted component of index
    payloads ([payload_ciphertext] extracts it; e.g. the identity for the
    [3] scheme, the first framed field Ẽ_k(V) for the [12] scheme).  This
    is the Section 3.2 / 3.3 linkage-leakage attack; the appended
    randomness of [12] does not help because it only affects trailing
    blocks. *)

val extract_index3 : string -> string option
(** [payload_ciphertext] for the [3] scheme: the payload itself. *)

val extract_index12 : string -> string option
(** [payload_ciphertext] for the [12] scheme: the Ẽ_k(V) component. *)

val extract_fixed : string -> string option
(** [payload_ciphertext] for the fixed AEAD scheme: the C component. *)

val extract_fixed_cell : string -> string
(** Ciphertext component of a fixed-scheme cell (the stored frame's C
    field); identity on anything unframed. *)

(** Encryption/MAC same-key interaction attack on the improved index
    scheme of [12] (paper Section 3.3, "Unauthorised Modification").

    With E = CBC under zero IV and the MAC an OMAC/CBC-MAC variant under
    the {e same key}, the CBC-MAC chaining values over the plaintext blocks
    of V coincide with the CBC ciphertext blocks.  Replacing ciphertext
    blocks C_1 … C_{s−1} of Ẽ_k(V ∥ a) re-converges the chain at block s
    (chain'_s = E(D(C_s) ⊕ C'_{s−1} ⊕ C'_{s−1}) = C_s), so the verifier —
    who re-MACs the {e decrypted} V′ — computes the original tag.  The
    stored MAC verifies although V′ ≠ V: authenticity is lost. *)

type outcome = {
  accepted : bool;  (** tampered payload passed the scheme's MAC check *)
  value_changed : bool;
  modified_ct_block : int;
}

val forge_payload :
  block:int -> payload:string -> rng:Secdb_util.Rng.t -> (string * int, string) result
(** Tamper an [Index12] payload: replace one eligible Ẽ-ciphertext block
    (index ≥ 1 and ≤ s−2, keeping the value tag byte and the randomness
    block intact) with fresh random bytes, leaving Ref_T and the MAC
    untouched.  Returns the forged payload and the block index.  [Error]
    if V spans fewer than 3 whole blocks (the paper's s > 2 condition). *)

val run :
  codec:Secdb_index.Bptree.codec ->
  ctx:Secdb_index.Bptree.ctx ->
  block:int ->
  value:Secdb_db.Value.t ->
  table_row:int ->
  rng:Secdb_util.Rng.t ->
  (outcome, string) result
(** Encode an entry, forge it, decode the forgery. Against the same-key
    Index12 instantiation [accepted && value_changed]; against the
    independent-key variant or the AEAD fix, [accepted = false]. *)

module B = Secdb_index.Bptree

let inner_nodes tree =
  let acc = ref [] in
  B.iter_nodes
    (fun v -> if v.B.node_kind = B.Inner && Array.length v.B.children >= 2 then acc := v :: !acc)
    tree;
  !acc

let swap_children tree ~rng =
  match inner_nodes tree with
  | [] -> false
  | nodes ->
      let v = List.nth nodes (Secdb_util.Rng.int rng (List.length nodes)) in
      let children = Array.copy v.B.children in
      let i = Secdb_util.Rng.int rng (Array.length children - 1) in
      let tmp = children.(i) in
      children.(i) <- children.(i + 1);
      children.(i + 1) <- tmp;
      B.set_children tree ~row:v.B.row children;
      true

let cut_leaf_chain tree =
  let first = B.node_view tree (B.first_leaf tree) in
  match first.B.next with
  | None -> false
  | Some second -> (
      match (B.node_view tree second).B.next with
      | None -> false
      | Some third ->
          B.set_next tree ~row:first.B.row (Some third);
          true)

let swap_root_children tree =
  let root = B.node_view tree (B.root tree) in
  if root.B.node_kind <> B.Inner || Array.length root.B.children < 2 then false
  else begin
    let children = Array.copy root.B.children in
    let tmp = children.(0) in
    children.(0) <- children.(1);
    children.(1) <- tmp;
    B.set_children tree ~row:root.B.row children;
    true
  end

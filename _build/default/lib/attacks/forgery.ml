open Secdb_util
module Address = Secdb_db.Address

type outcome = {
  accepted : bool;
  changed : bool;
  forged_value : string option;
  modified_ct_block : int;
}

let replace_block ~block ct i replacement =
  String.sub ct 0 (i * block) ^ replacement
  ^ String.sub ct ((i + 1) * block) (String.length ct - ((i + 1) * block))

let forge ~(scheme : Secdb_schemes.Cell_scheme.t) ~block ~addr ~value ~rng =
  (* s = number of whole cipher blocks fully inside V; garbling hits blocks
     i and i+1, so the last replaceable block is s-2 (0-based). *)
  let s = String.length value / block in
  if s < 2 then Error "forge: value must span at least two whole cipher blocks"
  else begin
    let ct = scheme.encrypt addr value in
    let i = Rng.int rng (s - 1) in
    let forged = replace_block ~block ct i (Rng.bytes rng block) in
    match scheme.decrypt addr forged with
    | Error _ -> Ok { accepted = false; changed = false; forged_value = None; modified_ct_block = i }
    | Ok v ->
        Ok { accepted = true; changed = v <> value; forged_value = Some v; modified_ct_block = i }
  end

let success_rate ~scheme ~block ~table ~col ~value_len ~trials ~rng =
  let successes = ref 0 in
  for trial = 1 to trials do
    let value = Rng.ascii rng value_len in
    let addr = Address.v ~table ~row:trial ~col in
    match forge ~scheme ~block ~addr ~value ~rng with
    | Ok { accepted = true; changed = true; _ } -> incr successes
    | Ok _ | Error _ -> ()
  done;
  float_of_int !successes /. float_of_int trials

open Secdb_util

let common_xor a b =
  let n = min (String.length a) (String.length b) in
  Xbytes.xor_exact (Xbytes.take n a) (Xbytes.take n b)

let plaintext_xor_append ~ct_a ~ct_b = common_xor ct_a ct_b

let plaintext_xor_xor_scheme ~(mu : Secdb_db.Address.mu) ~addr_a ~ct_a ~addr_b ~ct_b =
  let d = common_xor ct_a ct_b in
  let masks = Xbytes.xor (mu.digest addr_a) (mu.digest addr_b) in
  Xbytes.xor_exact d (Xbytes.take (String.length d) (masks ^ String.make (String.length d) '\000'))

let crib_drag ~known ~xor =
  let n = min (String.length known) (String.length xor) in
  Xbytes.xor_exact (Xbytes.take n known) (Xbytes.take n xor)

let recover_keystream ~known ~ct = crib_drag ~known ~xor:ct

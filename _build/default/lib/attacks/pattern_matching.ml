open Secdb_util
module Address = Secdb_db.Address

type pair = { row_a : int; row_b : int; shared_ct_blocks : int; shared_pt_blocks : int }

type report = {
  scheme : string;
  block : int;
  pairs : pair list;
  true_pairs : int;
  detected_pairs : int;
  true_positives : int;
}

let cells ~(scheme : Secdb_schemes.Cell_scheme.t) ?(extract = Fun.id) ~block ~table ~col
    plaintexts =
  let cts =
    List.map
      (fun (row, v) ->
        (row, v, extract (scheme.encrypt (Address.v ~table ~row ~col) v)))
      plaintexts
  in
  let pairs = ref [] and true_pairs = ref 0 and tp = ref 0 in
  let rec walk = function
    | [] -> ()
    | (ra, va, ca) :: rest ->
        List.iter
          (fun (rb, vb, cb) ->
            let pt = Xbytes.common_block_prefix ~block va vb in
            let ct = Xbytes.common_block_prefix ~block ca cb in
            if pt > 0 then incr true_pairs;
            if ct > 0 then begin
              if pt > 0 then incr tp;
              pairs :=
                { row_a = ra; row_b = rb; shared_ct_blocks = ct; shared_pt_blocks = pt }
                :: !pairs
            end)
          rest;
        walk rest
  in
  walk cts;
  {
    scheme = scheme.name;
    block;
    pairs = List.rev !pairs;
    true_pairs = !true_pairs;
    detected_pairs = List.length !pairs;
    true_positives = !tp;
  }

type index_link = {
  cell_row : int;
  node_row : int;
  slot : int;
  shared_blocks : int;
  truly_same_value : bool;
}

type index_report = {
  index_scheme : string;
  links : index_link list;
  correct_links : int;
  total_links : int;
}

let index_correlation ~(cell_scheme : Secdb_schemes.Cell_scheme.t) ~tree ~payload_ciphertext
    ~block ~table ~col ~plaintexts =
  let cells =
    List.map
      (fun (row, v) -> (row, v, cell_scheme.encrypt (Address.v ~table ~row ~col) v))
      plaintexts
  in
  (* ground truth: which value does each index payload hold?  The adversary
     does not know this; we recover it through the codec purely to score
     the attack. *)
  let truth (view : Secdb_index.Bptree.node_view) slot =
    let ctx =
      {
        Secdb_index.Bptree.index_table = Secdb_index.Bptree.id tree;
        node_row = view.row;
        kind = view.node_kind;
      }
    in
    match (Secdb_index.Bptree.codec tree).decode ctx view.payloads.(slot) with
    | Ok (value, _) -> Some value
    | Error _ -> None
  in
  let links = ref [] and correct = ref 0 in
  Secdb_index.Bptree.iter_nodes
    (fun view ->
      Array.iteri
        (fun slot payload ->
          match payload_ciphertext payload with
          | None -> ()
          | Some ct ->
              List.iter
                (fun (cell_row, v, cell_ct) ->
                  let shared = Xbytes.common_block_prefix ~block ct cell_ct in
                  if shared > 0 then begin
                    let same =
                      match truth view slot with
                      | Some value ->
                          Xbytes.common_block_prefix ~block (Secdb_db.Value.encode value) v > 0
                      | None -> false
                    in
                    if same then incr correct;
                    links :=
                      {
                        cell_row;
                        node_row = view.row;
                        slot;
                        shared_blocks = shared;
                        truly_same_value = same;
                      }
                      :: !links
                  end)
                cells)
        view.payloads)
    tree;
  {
    index_scheme = (Secdb_index.Bptree.codec tree).codec_name;
    links = List.rev !links;
    correct_links = !correct;
    total_links = List.length !links;
  }

let extract_index3 payload = Some payload

let extract_index12 payload =
  match Secdb_db.Codec.unframe3 payload with Ok (etilde, _, _) -> Some etilde | Error _ -> None

let extract_fixed payload =
  match Secdb_db.Codec.unframe3 payload with Ok (_, ct, _) -> Some ct | Error _ -> None

let extract_fixed_cell stored =
  match Secdb_db.Codec.unframe3 stored with Ok (_, ct, _) -> ct | Error _ -> stored

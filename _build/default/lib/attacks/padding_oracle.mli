(** Padding-oracle decryption of CBC-instantiated cells (Vaudenay,
    EUROCRYPT 2002 — "Security Flaws Induced by CBC Padding").

    The analysed scheme's decryption fails in {e distinguishable} ways:
    malformed PKCS#7 padding is reported differently from an address-
    checksum mismatch (and, in a live system, at a different time).  That
    difference is a decryption oracle: an adversary who can submit
    ciphertexts and observe which error comes back recovers D_k(C) one
    byte at a time, and with it the {e entire plaintext} of every cell —
    no key required.

    This completes the paper's Section 3 picture: beyond leaking equality
    and forging cells, the CBC instantiation leaks full contents to any
    active storage adversary.  The AEAD fix returns a single undifferen-
    tiated [invalid] (paper Sect. 4: "There is no possibility to
    distinguish which of these cases has occurred"), so the oracle does
    not exist there — which {!oracle_exists} demonstrates. *)

type oracle = string -> [ `Padding_error | `Other ]
(** The adversary's view of one decryption attempt. *)

val oracle_of_scheme :
  Secdb_schemes.Cell_scheme.t -> Secdb_db.Address.t -> oracle
(** Build the oracle from a scheme's error messages, as a storage adversary
    in the paper's model would (submit, observe the failure class). *)

val decrypt_block :
  oracle:oracle -> block:int -> prev:string -> string -> string option
(** [decrypt_block ~oracle ~block ~prev c] recovers the plaintext of the
    single cipher block [c] whose CBC predecessor was [prev] (the zero
    block for the first block), using only the oracle.  [None] if the
    oracle never reports valid padding (i.e. it is not actually a padding
    oracle — the fixed schemes). *)

val decrypt_ciphertext :
  oracle:oracle -> block:int -> string -> string option
(** Recover the complete padded plaintext of a whole-cell ciphertext under
    CBC with zero IV.  Costs at most 256·block oracle calls per block. *)

val oracle_exists : Secdb_schemes.Cell_scheme.t -> Secdb_db.Address.t -> trials:int -> rng:Secdb_util.Rng.t -> bool
(** Probe whether the scheme's failures are distinguishable at all: submit
    random ciphertexts and check whether both failure classes occur.  True
    for the CBC instantiations, false for the AEAD fix. *)

module Address = Secdb_db.Address

type experiment = { trials : int; collisions : (int * int) list; expected : float }

let high_bits_match a b =
  String.length a = String.length b
  && begin
       let ok = ref true in
       String.iteri
         (fun i c -> if (Char.code c lxor Char.code b.[i]) land 0x80 <> 0 then ok := false)
         a;
       !ok
     end

let collision_search ~(mu : Address.mu) ~table ~col ~trials =
  let digests =
    Array.init trials (fun row -> mu.digest (Address.v ~table ~row ~col))
  in
  let collisions = ref [] in
  for i = 0 to trials - 1 do
    for j = i + 1 to trials - 1 do
      if high_bits_match digests.(i) digests.(j) then collisions := (i, j) :: !collisions
    done
  done;
  let npairs = float_of_int trials *. float_of_int (trials - 1) /. 2.0 in
  {
    trials;
    collisions = List.rev !collisions;
    expected = npairs /. (2.0 ** float_of_int mu.width);
  }

type relocation = {
  from_row : int;
  to_row : int;
  accepted : bool;
  recovered : string option;
}

let relocate ~(scheme : Secdb_schemes.Cell_scheme.t) ~table ~col ~value ~from_row ~to_row =
  let ct = scheme.encrypt (Address.v ~table ~row:from_row ~col) value in
  match scheme.decrypt (Address.v ~table ~row:to_row ~col) ct with
  | Ok v -> { from_row; to_row; accepted = true; recovered = Some v }
  | Error _ -> { from_row; to_row; accepted = false; recovered = None }

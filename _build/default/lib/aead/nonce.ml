type t = unit -> string

let counter ~size ?(start = 0) () =
  let state = ref start in
  let limit = if size >= 8 then max_int else (1 lsl (8 * size)) - 1 in
  fun () ->
    if !state >= limit then invalid_arg "Nonce.counter: exhausted";
    let n = Secdb_util.Xbytes.int_to_be_string ~width:size !state in
    incr state;
    n

let of_rng rng ~size () = Secdb_util.Rng.bytes rng size
let fixed n () = n

(** OCB with PMAC-authenticated associated data — Rogaway's
    "authenticated-encryption with associated-data" construction (the
    paper's reference [10]).

    OCB (the 2001 one-pass scheme) encrypts n plaintext blocks with n+2
    blockcipher calls; the header is authenticated by xoring PMAC(H) into
    the tag, adding ⌈|H|/n⌉ + 1 calls and 2 reusable subkey computations —
    in total the n + m + 5 invocations the paper quotes, verified by
    experiment EXP8.

    Single-pass, fully parallelisable, provably secure for a PRP; the
    storage overhead is one nonce block plus the tag. *)

val make : ?tag_size:int -> Secdb_cipher.Block.t -> Aead.t
(** OCB+PMAC over the given cipher; nonce size = block size. *)

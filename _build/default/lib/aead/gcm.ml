open Secdb_util

(* GF(2^128) multiplication with GCM's reflected bit order: bit 0 of the
   polynomial is the MSB of byte 0.  R = 11100001 || 0^120. *)
let gf_mult x y =
  let z = Bytes.make 16 '\000' in
  let v = Bytes.of_string y in
  let xor_into dst src =
    for i = 0 to 15 do
      Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
    done
  in
  let shift_right_one b =
    let carry = ref 0 in
    for i = 0 to 15 do
      let c = Char.code (Bytes.get b i) in
      Bytes.set b i (Char.chr ((c lsr 1) lor (!carry lsl 7)));
      carry := c land 1
    done;
    !carry
  in
  for i = 0 to 127 do
    let bit = (Char.code x.[i / 8] lsr (7 - (i mod 8))) land 1 in
    if bit = 1 then xor_into z v;
    let lsb = shift_right_one v in
    if lsb = 1 then Bytes.set v 0 (Char.chr (Char.code (Bytes.get v 0) lxor 0xe1))
  done;
  Bytes.unsafe_to_string z

let ghash ~h data =
  if String.length data mod 16 <> 0 then
    invalid_arg "Gcm.ghash: input must be a multiple of 16 bytes";
  let y = ref (String.make 16 '\000') in
  List.iter (fun blk -> y := gf_mult (Xbytes.xor_exact !y blk) h) (Xbytes.blocks 16 data);
  !y

let pad16 s =
  let r = String.length s mod 16 in
  if r = 0 then s else s ^ String.make (16 - r) '\000'

let len64 s = Xbytes.int64_to_be_string (Int64.of_int (8 * String.length s))

(* CTR with a 32-bit counter in the last 4 bytes of the block, starting
   from inc32(j0) as GCM specifies. *)
let gctr (c : Secdb_cipher.Block.t) ~icb s =
  let ctr = ref (Xbytes.get_uint32_be icb 12) in
  let prefix = String.sub icb 0 12 in
  let next () =
    let blk = Bytes.of_string (prefix ^ "\000\000\000\000") in
    Xbytes.set_uint32_be blk 12 (!ctr land 0xffffffff);
    ctr := !ctr + 1;
    c.encrypt (Bytes.unsafe_to_string blk)
  in
  let out = Bytes.of_string s in
  let off = ref 0 in
  while !off < String.length s do
    let ks = next () in
    let n = min 16 (String.length s - !off) in
    Xbytes.xor_into ~src:(Xbytes.take n ks) ~dst:out ~dst_off:!off;
    off := !off + n
  done;
  Bytes.unsafe_to_string out

let make ?(tag_size = 16) (c : Secdb_cipher.Block.t) =
  if c.block_size <> 16 then invalid_arg "Gcm.make: 16-byte block required";
  if tag_size < 1 || tag_size > 16 then invalid_arg "Gcm.make: tag size out of range";
  let h = c.encrypt (String.make 16 '\000') in
  let j0 nonce = nonce ^ "\x00\x00\x00\x01" in
  let tag_of ~j0:j ~ad ct =
    let s = ghash ~h (pad16 ad ^ pad16 ct ^ len64 ad ^ len64 ct) in
    Xbytes.take tag_size (Xbytes.xor_exact (c.encrypt j) s)
  in
  let encrypt ~nonce ~ad m =
    let j = j0 nonce in
    let icb = Bytes.of_string j in
    Xbytes.set_uint32_be icb 12 ((Xbytes.get_uint32_be j 12 + 1) land 0xffffffff);
    let ct = gctr c ~icb:(Bytes.unsafe_to_string icb) m in
    (ct, tag_of ~j0:j ~ad ct)
  in
  let decrypt ~nonce ~ad ~tag ct =
    let j = j0 nonce in
    if not (Xbytes.constant_time_equal (tag_of ~j0:j ~ad ct) tag) then Error Aead.Invalid
    else begin
      let icb = Bytes.of_string j in
      Xbytes.set_uint32_be icb 12 ((Xbytes.get_uint32_be j 12 + 1) land 0xffffffff);
      Ok (gctr c ~icb:(Bytes.unsafe_to_string icb) ct)
    end
  in
  {
    Aead.name = Printf.sprintf "gcm(%s)" c.name;
    nonce_size = 12;
    tag_size;
    expansion = 0;
    encrypt;
    decrypt;
  }

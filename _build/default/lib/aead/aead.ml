type invalid = Invalid

type t = {
  name : string;
  nonce_size : int;
  tag_size : int;
  expansion : int;
  encrypt : nonce:string -> ad:string -> string -> string * string;
  decrypt : nonce:string -> ad:string -> tag:string -> string -> (string, invalid) result;
}

let check_nonce t nonce =
  if String.length nonce <> t.nonce_size then
    invalid_arg
      (Printf.sprintf "%s: nonce must be %d bytes, got %d" t.name t.nonce_size
         (String.length nonce))

let encrypt t ~nonce ~ad m =
  check_nonce t nonce;
  t.encrypt ~nonce ~ad m

let decrypt t ~nonce ~ad ~tag c =
  if String.length nonce <> t.nonce_size || String.length tag <> t.tag_size then Error Invalid
  else t.decrypt ~nonce ~ad ~tag c

let decrypt_exn t ~nonce ~ad ~tag c =
  match decrypt t ~nonce ~ad ~tag c with
  | Ok m -> m
  | Error Invalid -> failwith (t.name ^ ": AEAD decryption failed (invalid)")

let stored_overhead t = t.nonce_size + t.tag_size + t.expansion

(** CCFB — a counter/cipher-feedback AEAD in the style of Lucks's
    "Two-pass authenticated encryption faster than generic composition"
    (the paper's reference [7]).

    Parameters (for a 16-byte block cipher): a 12-byte (96-bit) nonce and a
    4-byte (32-bit) tag, so nonce and tag together occupy exactly one block
    — the 16-octet storage overhead the paper reports for CCFB in its
    Section 4 analysis, against 32 octets for EAX/OCB.

    Construction (documented reconstruction; see DESIGN.md §4): the i-th
    blockcipher input is [pad(C_{i-1}) ∥ ⟨i⟩] (with C₀ = N), its output
    yields 12 bytes of keystream and 4 bytes of tag material; a final call
    on the last ciphertext chunk closes the chain and the header is folded
    in through a domain-separated OMAC.  Per payload byte this costs n/12
    cipher calls — between OCB's one pass and EAX's two, matching the
    paper's qualitative placement of CCFB. *)

val make : Secdb_cipher.Block.t -> Aead.t
(** CCFB over a cipher with block size ≥ 8.  Tag size is a quarter of the
    block, nonce the remaining three quarters. *)

val payload_bytes_per_block : Secdb_cipher.Block.t -> int
(** Keystream bytes produced per blockcipher call (12 for AES). *)

(** Authenticated encryption with associated data — the abstraction the
    paper's Section 4 fix is built on.

    Formally an AEAD scheme is a triple (Key-Gen, AEAD-Enc, AEAD-Dec) with

    {v
    AEAD-Enc : K x N x M x H -> C x T
    AEAD-Dec : K x N x C x T x H -> M + {invalid}
    v}

    A {!t} value is the keyed pair (AEAD-Enc_k, AEAD-Dec_k).  Neither the
    nonce nor the associated data is part of the ciphertext; the caller
    stores the nonce and the tag and re-supplies the associated data (in the
    database schemes: the cell address) at decryption time.  [decrypt]
    returns [Error Invalid] without revealing which of key, nonce,
    ciphertext, tag or associated data was wrong — exactly the paper's
    "invalid" result. *)

type invalid = Invalid

type t = {
  name : string;
  nonce_size : int;  (** required nonce length in bytes *)
  tag_size : int;  (** tag length in bytes *)
  expansion : int;  (** ciphertext length minus plaintext length (0 for all schemes here) *)
  encrypt : nonce:string -> ad:string -> string -> string * string;
      (** [encrypt ~nonce ~ad m] is [(ciphertext, tag)]. *)
  decrypt : nonce:string -> ad:string -> tag:string -> string -> (string, invalid) result;
}

val encrypt : t -> nonce:string -> ad:string -> string -> string * string
val decrypt : t -> nonce:string -> ad:string -> tag:string -> string -> (string, invalid) result

val decrypt_exn : t -> nonce:string -> ad:string -> tag:string -> string -> string
(** @raise Failure on invalid input. *)

val stored_overhead : t -> int
(** Bytes of storage added per encrypted value: nonce + tag + expansion.
    This is the paper's Section 4 "storage overhead" figure (32 octets for
    EAX and OCB+PMAC, 16 for CCFB with a 96-bit nonce and 32-bit tag). *)

val check_nonce : t -> string -> unit
(** @raise Invalid_argument if the nonce has the wrong length. *)

(** AES-SIV (RFC 5297) — misuse-resistant AEAD.

    The analysed scheme {e wanted} deterministic encryption (assumption (3))
    so the server could search; the paper's fix buys security by giving
    determinism up.  SIV is the principled middle ground that appeared in
    the years after: with a fresh nonce it is a normal AEAD; with the nonce
    held constant it degrades gracefully to {e deterministic authenticated
    encryption} whose only leak is exact-duplicate equality — no prefix
    patterns, no forgeries, no relocation.  Experiment EXP15 measures that
    trade against the broken schemes and the randomised fix.

    Construction: V = S2V(K1; AD, N, P) authenticates everything and seeds
    AES-CTR under K2.  The synthetic IV doubles as the tag, stored in the
    tag slot of the {!Aead.t} interface. *)

val make : Secdb_cipher.Block.t -> Secdb_cipher.Block.t -> Aead.t
(** [make k1_cipher k2_cipher]: S2V under the first cipher, CTR under the
    second (RFC 5297 splits the key in halves; pass two independently keyed
    AES instances).  Nonce size 16, tag size 16.
    @raise Invalid_argument unless both block sizes are 16. *)

val s2v : Secdb_cipher.Block.t -> string list -> string
(** The S2V vector PRF (exposed for tests).
    @raise Invalid_argument on an empty component list. *)

open Secdb_util

(* OCB1 (Rogaway et al., 2001).  Offsets: L = E_K(0), R = E_K(N xor L),
   Z_1 = L xor R, Z_{i+1} = Z_i xor L*x^{ntz(i+1)}. *)

let make ?tag_size (c : Secdb_cipher.Block.t) =
  let tag_size = Option.value tag_size ~default:c.block_size in
  if tag_size < 1 || tag_size > c.block_size then
    invalid_arg "Ocb.make: tag size out of range";
  let bs = c.block_size in
  let core ~nonce ~decrypting msg =
    let l = c.encrypt (Secdb_cipher.Block.zero_block c) in
    let r = c.encrypt (Xbytes.xor_exact nonce l) in
    let l_inv = Secdb_mac.Gf128.inv_dbl l in
    let len = String.length msg in
    let m = max 1 ((len + bs - 1) / bs) in
    let z = ref (Xbytes.xor_exact l r) in
    let out = Buffer.create len in
    let checksum = ref (Secdb_cipher.Block.zero_block c) in
    for i = 1 to m - 1 do
      let blk = String.sub msg ((i - 1) * bs) bs in
      if decrypting then begin
        let p = Xbytes.xor_exact (c.decrypt (Xbytes.xor_exact blk !z)) !z in
        Buffer.add_string out p;
        checksum := Xbytes.xor_exact !checksum p
      end
      else begin
        Buffer.add_string out (Xbytes.xor_exact (c.encrypt (Xbytes.xor_exact blk !z)) !z);
        checksum := Xbytes.xor_exact !checksum blk
      end;
      z := Xbytes.xor_exact !z (Secdb_mac.Gf128.dbl_pow l (Secdb_mac.Gf128.ntz (i + 1)))
    done;
    let lastlen = len - ((m - 1) * bs) in
    let lastlen = if lastlen < 0 then 0 else lastlen in
    let last = if lastlen = 0 then "" else String.sub msg ((m - 1) * bs) lastlen in
    (* X_m = len(M_m) xor L*x^{-1} xor Z_m ; Y_m = E_K(X_m) ;
       C_m = M_m xor msb(Y_m)  (same formula in both directions). *)
    let len_block = Xbytes.int_to_be_string ~width:bs (8 * lastlen) in
    let x_m = Xbytes.xor_exact (Xbytes.xor_exact len_block l_inv) !z in
    let y_m = c.encrypt x_m in
    let out_last = Xbytes.xor_exact last (Xbytes.take lastlen y_m) in
    Buffer.add_string out out_last;
    (* Checksum folds in C_m 0* (the ciphertext side), per the OCB spec. *)
    let ct_last = if decrypting then last else out_last in
    let padded = ct_last ^ String.make (bs - lastlen) '\000' in
    checksum := Xbytes.xor_exact (Xbytes.xor_exact !checksum padded) y_m;
    let tag_full = c.encrypt (Xbytes.xor_exact !checksum !z) in
    (Buffer.contents out, tag_full)
  in
  let with_header ~ad tag_full =
    let tag_full =
      if ad = "" then tag_full else Xbytes.xor_exact tag_full (Secdb_mac.Pmac.mac c ad)
    in
    Xbytes.take tag_size tag_full
  in
  let encrypt ~nonce ~ad m =
    let ct, tag_full = core ~nonce ~decrypting:false m in
    (ct, with_header ~ad tag_full)
  in
  let decrypt ~nonce ~ad ~tag ct =
    let pt, tag_full = core ~nonce ~decrypting:true ct in
    if Xbytes.constant_time_equal (with_header ~ad tag_full) tag then Ok pt
    else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "ocb+pmac(%s)" c.name;
    nonce_size = bs;
    tag_size;
    expansion = 0;
    encrypt;
    decrypt;
  }

(** AES-GCM (NIST SP 800-38D).

    The AEAD that won deployment in the years after the paper; included
    under the paper's pointer to "recent developments regarding AEAD
    schemes" and validated against the NIST reference vectors.  One
    encryption pass plus one GHASH pass over ciphertext and associated
    data; 12-byte nonces take the fast path, other lengths are GHASHed. *)

val make : ?tag_size:int -> Secdb_cipher.Block.t -> Aead.t
(** GCM over a 16-byte-block cipher; nonce size fixed at 12 bytes,
    [tag_size] defaults to 16.
    @raise Invalid_argument if the block size is not 16. *)

val ghash : h:string -> string -> string
(** The GHASH universal hash under hash key [h] (exposed for tests);
    input length must be a multiple of 16. *)

lib/aead/nonce.mli: Secdb_util

lib/aead/ccfb.ml: Aead Buffer List Printf Secdb_cipher Secdb_mac Secdb_util String Xbytes

lib/aead/siv.ml: Aead Bytes Char List Printf Secdb_cipher Secdb_mac Secdb_modes Secdb_util String Xbytes

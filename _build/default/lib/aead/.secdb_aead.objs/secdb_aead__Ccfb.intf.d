lib/aead/ccfb.mli: Aead Secdb_cipher

lib/aead/ocb.mli: Aead Secdb_cipher

lib/aead/siv.mli: Aead Secdb_cipher

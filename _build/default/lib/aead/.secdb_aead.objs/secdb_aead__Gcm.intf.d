lib/aead/gcm.mli: Aead Secdb_cipher

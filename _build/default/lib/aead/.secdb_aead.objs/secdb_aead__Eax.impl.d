lib/aead/eax.ml: Aead Option Printf Secdb_cipher Secdb_mac Secdb_modes Secdb_util Xbytes

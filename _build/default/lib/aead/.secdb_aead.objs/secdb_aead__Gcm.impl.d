lib/aead/gcm.ml: Aead Bytes Char Int64 List Printf Secdb_cipher Secdb_util String Xbytes

lib/aead/ocb.ml: Aead Buffer Option Printf Secdb_cipher Secdb_mac Secdb_util String Xbytes

lib/aead/compose.mli: Aead Secdb_cipher

lib/aead/compose.ml: Aead Printf Secdb_cipher Secdb_hash Secdb_mac Secdb_modes Secdb_util String Xbytes

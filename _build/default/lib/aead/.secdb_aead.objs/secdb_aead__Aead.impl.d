lib/aead/aead.ml: Printf String

lib/aead/nonce.ml: Secdb_util

lib/aead/eax.mli: Aead Secdb_cipher

lib/aead/aead.mli:

(** Nonce sources for the AEAD schemes.

    AEAD security needs {e unique} nonces per key; the schemes here never
    require unpredictability.  The counter source gives the strongest
    uniqueness guarantee and the smallest state; the PRNG source is
    provided for workloads that want address-independent-looking storage. *)

type t = unit -> string

val counter : size:int -> ?start:int -> unit -> t
(** Big-endian counter, one increment per call.
    @raise Invalid_argument when the counter would wrap. *)

val of_rng : Secdb_util.Rng.t -> size:int -> t
(** Pseudorandom nonces from the given deterministic generator (collision
    probability is birthday-bounded; fine for the experiment scales here). *)

val fixed : string -> t
(** Always the same nonce — deliberately broken, for tests that demonstrate
    what nonce reuse does to the fixed schemes' privacy. *)

(** Generic compositions of encryption and authentication, after Krawczyk
    (the paper's reference [6]).

    {!encrypt_then_mac} is the provably sound generic composition: CTR
    encryption under one key, a MAC over (nonce ∥ ad ∥ ciphertext) under an
    {e independent} key.

    {!encrypt_and_mac_insecure} is the flawed composition the improved
    index scheme of [12] instantiates: the MAC is computed over the
    {e plaintext} (so it can leak plaintext equality) and, in the paper's
    counter-example, under the {e same key} as the encryption.  It is
    provided so that the Section 3.3 attack can be demonstrated against a
    clean, reusable artefact.  Never use it for protection. *)

val encrypt_then_mac :
  ?tag_size:int -> cipher:Secdb_cipher.Block.t -> mac_key:string -> unit -> Aead.t
(** CTR + HMAC-SHA256 ([tag_size] defaults to 16 bytes). [mac_key] must be
    independent of the cipher key. *)

val encrypt_and_mac_insecure : Secdb_cipher.Block.t -> Aead.t
(** CBC with zero IV under key k, plus OMAC under the {e same} k over
    (plaintext ∥ ad).  Deterministic (ignores the nonce beyond storing it),
    leaks equality, and falls to the Section 3.3 interaction attack. *)

open Secdb_util

let ctr_full c ~counter0 s = Secdb_modes.Mode.ctr_full c ~counter0 s

let make ?tag_size (c : Secdb_cipher.Block.t) =
  let tag_size = Option.value tag_size ~default:c.block_size in
  if tag_size < 1 || tag_size > c.block_size then
    invalid_arg "Eax.make: tag size out of range";
  (* Precomputation, reusable across messages (the paper's "+6"): one call
     for the OMAC subkeys and one per OMAC tweak prefix [t]_n, t = 0,1,2.
     OMAC^t(M) = OMAC([t]_n || M) is then one blockcipher call per block of
     M, continuing from the cached chain state. *)
  let keyed = Secdb_mac.Cmac.keyed c in
  let tweak_block t = Xbytes.int_to_be_string ~width:c.block_size t in
  let tweak t = (tweak_block t, Secdb_mac.Cmac.chain_state keyed (tweak_block t)) in
  let t0 = tweak 0 and t1 = tweak 1 and t2 = tweak 2 in
  (* For an empty M the tweak block is itself OMAC's final (masked) block,
     so the cached chain state does not apply. *)
  let omac_t (block, state) msg =
    if msg = "" then Secdb_mac.Cmac.mac_with keyed block
    else Secdb_mac.Cmac.mac_with keyed ~init:state msg
  in
  let tag_parts ~nonce ~ad ct =
    let n = omac_t t0 nonce in
    let h = omac_t t1 ad in
    let cmac = omac_t t2 ct in
    (n, Xbytes.take tag_size (Xbytes.xor_exact (Xbytes.xor_exact n h) cmac))
  in
  let encrypt ~nonce ~ad m =
    let n = omac_t t0 nonce in
    let ct = ctr_full c ~counter0:n m in
    let h = omac_t t1 ad in
    let cmac = omac_t t2 ct in
    (ct, Xbytes.take tag_size (Xbytes.xor_exact (Xbytes.xor_exact n h) cmac))
  in
  let decrypt ~nonce ~ad ~tag ct =
    let n, expected = tag_parts ~nonce ~ad ct in
    if Xbytes.constant_time_equal expected tag then Ok (ctr_full c ~counter0:n ct)
    else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "eax(%s)" c.name;
    nonce_size = c.block_size;
    tag_size;
    expansion = 0;
    encrypt;
    decrypt;
  }

open Secdb_util

let payload_bytes_per_block (c : Secdb_cipher.Block.t) = c.block_size - (c.block_size / 4)

let make (c : Secdb_cipher.Block.t) =
  let bs = c.block_size in
  if bs < 8 then invalid_arg "Ccfb.make: block size too small";
  let tau = bs / 4 in
  let l = bs - tau in
  (* chain input: l bytes of previous ciphertext (10..0-padded if short)
     followed by the tau-byte big-endian chunk counter *)
  let chain_input prev i =
    let prev_padded =
      if String.length prev = l then prev
      else prev ^ "\x80" ^ String.make (l - String.length prev - 1) '\000'
    in
    prev_padded ^ Xbytes.int_to_be_string ~width:tau i
  in
  let header_tag ad =
    if ad = "" then String.make tau '\000'
    else
      (* domain separation: OMAC over a sentinel block unreachable by chain
         inputs with fewer than 2^(8*tau - 8) chunks *)
      let sentinel = String.make (bs - 1) '\xff' ^ "\x03" in
      Xbytes.take tau (Secdb_mac.Cmac.mac c (sentinel ^ ad))
  in
  let core ~nonce ~ad ~decrypting msg =
    let chunks = if msg = "" then [ "" ] else Xbytes.blocks l msg in
    let acc_tag = ref (String.make tau '\000') in
    let out = Buffer.create (String.length msg) in
    let prev = ref nonce in
    List.iteri
      (fun idx chunk ->
        let z = c.encrypt (chain_input !prev (idx + 1)) in
        acc_tag := Xbytes.xor_exact !acc_tag (Xbytes.drop l z);
        let co = Xbytes.xor_exact chunk (Xbytes.take (String.length chunk) z) in
        Buffer.add_string out co;
        prev := if decrypting then chunk else co)
      chunks;
    let nchunks = List.length chunks in
    let z_final = c.encrypt (chain_input !prev (nchunks + 1)) in
    let tag = Xbytes.xor_exact !acc_tag (Xbytes.drop l z_final) in
    let tag = Xbytes.xor_exact tag (header_tag ad) in
    (Buffer.contents out, tag)
  in
  let encrypt ~nonce ~ad m = core ~nonce ~ad ~decrypting:false m in
  let decrypt ~nonce ~ad ~tag ct =
    let pt, expected = core ~nonce ~ad ~decrypting:true ct in
    if Xbytes.constant_time_equal expected tag then Ok pt else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "ccfb(%s)" c.name;
    nonce_size = l;
    tag_size = tau;
    expansion = 0;
    encrypt;
    decrypt;
  }

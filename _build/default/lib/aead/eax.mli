(** EAX mode (Bellare, Rogaway, Wagner — FSE 2004; the paper's reference
    [1]).

    A two-pass AEAD: CTR encryption keyed by OMAC⁰(N), authenticated by
    OMAC²(C) and OMAC¹(H), where OMACᵗ(x) = OMAC([t]ₙ ∥ x).  Proven secure
    assuming the block cipher is a PRP; ciphertexts are indistinguishable
    from random and (N, C, T, H) tampering is detected — the two properties
    the paper's Section 4 requirements analysis demands.

    Cost: 2n + m + 1 blockcipher calls for n plaintext and m header blocks
    (plus 6 reusable precomputations), as stated in the paper's performance
    analysis and measured by experiment EXP8. *)

val make : ?tag_size:int -> Secdb_cipher.Block.t -> Aead.t
(** EAX over the given cipher; nonce size = block size; [tag_size] defaults
    to the block size, may be any value in [1, block size]. *)

(** Equi-width histograms for selectivity estimation.

    Maintained per indexed column by {!Secdb.Encdb} and consulted by the
    SQL planner to pick the most selective index when a WHERE clause
    constrains several (experiment in `sql:planner` tests).  Values are
    projected to floats: integers numerically, text by its first bytes
    (lexicographic position in [0, 1)), booleans to {0, 1}; NULLs are not
    counted.

    The histogram is approximate by design — buckets are fixed once the
    first [2·buckets] values have been seen (the bootstrap sample sets the
    range; out-of-range mass accumulates in the edge buckets). *)

type t

val create : ?buckets:int -> unit -> t
(** Default 32 buckets.  The incremental path assumes the first samples are
    representative of the range (they set the bucket boundaries); for bulk
    construction from existing data prefer {!of_values}, which uses the
    exact min/max. *)

val of_values : ?buckets:int -> Secdb_db.Value.t list -> t
(** Build with bucket boundaries from the data's true range. *)

val add : t -> Secdb_db.Value.t -> unit
val remove : t -> Secdb_db.Value.t -> unit
(** Removing a value never seen leaves counts clamped at zero. *)

val total : t -> int

val selectivity : t -> lo:Secdb_db.Value.t option -> hi:Secdb_db.Value.t option -> float
(** Estimated fraction of values in the inclusive range, in [0, 1];
    1.0 when the histogram is empty (no information). *)

val to_float : Secdb_db.Value.t -> float option
(** The projection (exposed for tests); [None] for NULL. *)

open Secdb_util
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Address = Secdb_db.Address

type cell = Clear of Value.t | Cipher of string

type t = {
  id : int;
  schema : Schema.t;
  schemes : Secdb_schemes.Cell_scheme.t array; (* one per column *)
  rows : cell array option Vec.t; (* None = tombstoned row *)
}

let create ~id schema ~scheme =
  { id; schema; schemes = Array.init (Schema.ncols schema) scheme; rows = Vec.create () }

let id t = t.id
let schema t = t.schema
let scheme t ~col = t.schemes.(col)
let nrows t = Vec.length t.rows

let is_protected t col =
  (Schema.col t.schema col).Schema.protection = Schema.Encrypted

let encrypt_cell t ~row ~col value =
  let addr = Address.v ~table:t.id ~row ~col in
  Cipher (t.schemes.(col).encrypt addr (Value.encode value))

let insert t values =
  let n = Schema.ncols t.schema in
  if List.length values <> n then
    invalid_arg
      (Printf.sprintf "Encrypted_table.insert: expected %d values, got %d" n
         (List.length values));
  List.iteri
    (fun col v ->
      match Schema.check_value (Schema.col t.schema col) v with
      | Ok () -> ()
      | Error e -> invalid_arg ("Encrypted_table.insert: " ^ e))
    values;
  let row = Vec.length t.rows in
  let cells =
    List.mapi
      (fun col v -> if is_protected t col then encrypt_cell t ~row ~col v else Clear v)
      values
  in
  Vec.push t.rows (Some (Array.of_list cells))

let live_cells t row op =
  match Vec.get t.rows row with
  | Some cells -> cells
  | None -> invalid_arg (Printf.sprintf "Encrypted_table.%s: row %d is deleted" op row)

let is_live t ~row = Vec.get t.rows row <> None

let get t ~row ~col =
  match Vec.get t.rows row with
  | None -> Error "row is deleted"
  | Some cells -> (
      match cells.(col) with
      | Clear v -> Ok v
      | Cipher ct -> (
          let addr = Address.v ~table:t.id ~row ~col in
          match t.schemes.(col).decrypt addr ct with
          | Error e -> Error e
          | Ok plain -> Value.decode plain))

let get_exn t ~row ~col =
  match get t ~row ~col with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "cell (%d,%d,%d): %s" t.id row col e)

let update t ~row ~col value =
  (match Schema.check_value (Schema.col t.schema col) value with
  | Ok () -> ()
  | Error e -> invalid_arg ("Encrypted_table.update: " ^ e));
  let cells = live_cells t row "update" in
  cells.(col) <- (if is_protected t col then encrypt_cell t ~row ~col value else Clear value)

let delete_row t ~row =
  ignore (Vec.get t.rows row);
  Vec.set t.rows row None

let decrypt_row t row =
  Array.init (Schema.ncols t.schema) (fun col -> get_exn t ~row ~col)

let select t pred =
  let acc = ref [] in
  for row = 0 to nrows t - 1 do
    if is_live t ~row then begin
      let values = decrypt_row t row in
      if pred values then acc := (row, values) :: !acc
    end
  done;
  List.rev !acc

let select_result t pred =
  match select t pred with
  | rows -> Ok rows
  | exception Failure e -> Error e

let raw_ciphertext t ~row ~col =
  match Vec.get t.rows row with
  | None -> None
  | Some cells -> ( match cells.(col) with Clear _ -> None | Cipher ct -> Some ct)

let set_raw t ~row ~col ct =
  let cells = live_cells t row "set_raw" in
  match cells.(col) with
  | Clear _ -> invalid_arg "Encrypted_table.set_raw: column is not protected"
  | Cipher _ -> cells.(col) <- Cipher ct

let swap_cells t ~col ~row_a ~row_b =
  match (raw_ciphertext t ~row:row_a ~col, raw_ciphertext t ~row:row_b ~col) with
  | Some a, Some b ->
      set_raw t ~row:row_a ~col b;
      set_raw t ~row:row_b ~col a
  | _ -> invalid_arg "Encrypted_table.swap_cells: column is not protected"

let storage_bytes t ~col =
  let acc = ref 0 in
  for row = 0 to nrows t - 1 do
    match raw_ciphertext t ~row ~col with
    | Some ct -> acc := !acc + String.length ct
    | None -> ()
  done;
  !acc

let plaintext_bytes t ~col =
  let acc = ref 0 in
  for row = 0 to nrows t - 1 do
    if is_live t ~row then
      acc := !acc + String.length (Value.encode (get_exn t ~row ~col))
  done;
  !acc

type stored_cell = Stored_clear of Value.t | Stored_cipher of string

let dump_rows t =
  List.init (nrows t) (fun row ->
      Option.map
        (Array.map (function Clear v -> Stored_clear v | Cipher ct -> Stored_cipher ct))
        (Vec.get t.rows row))

let restore ~id schema ~scheme ~rows =
  let t = create ~id schema ~scheme in
  let ncols = Schema.ncols schema in
  let rec load i = function
    | [] -> Ok t
    | None :: rest ->
        ignore (Vec.push t.rows None);
        load (i + 1) rest
    | Some row :: rest ->
        if Array.length row <> ncols then
          Error (Printf.sprintf "restore: row %d has %d cells, schema has %d columns" i
                   (Array.length row) ncols)
        else begin
          let ok = ref (Ok ()) in
          let cells =
            Array.mapi
              (fun col cell ->
                match (cell, (Schema.col schema col).Schema.protection) with
                | Stored_clear v, Schema.Clear -> Clear v
                | Stored_cipher ct, Schema.Encrypted -> Cipher ct
                | Stored_clear _, Schema.Encrypted ->
                    ok := Error (Printf.sprintf "restore: row %d col %d should be encrypted" i col);
                    Clear Value.Null
                | Stored_cipher _, Schema.Clear ->
                    ok := Error (Printf.sprintf "restore: row %d col %d should be clear" i col);
                    Clear Value.Null)
              row
          in
          match !ok with
          | Error e -> Error e
          | Ok () ->
              ignore (Vec.push t.rows (Some cells));
              load (i + 1) rest
        end
  in
  load 0 rows

lib/query/histogram.mli: Secdb_db

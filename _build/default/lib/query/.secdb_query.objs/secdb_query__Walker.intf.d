lib/query/walker.mli: Secdb_db Secdb_index

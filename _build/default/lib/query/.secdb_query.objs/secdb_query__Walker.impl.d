lib/query/walker.ml: Array List Printf Secdb_db Secdb_index

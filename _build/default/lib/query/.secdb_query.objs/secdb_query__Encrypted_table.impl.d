lib/query/encrypted_table.ml: Array List Option Printf Secdb_db Secdb_schemes Secdb_util String Vec

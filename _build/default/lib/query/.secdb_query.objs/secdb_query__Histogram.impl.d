lib/query/histogram.ml: Array Char Float Int64 List Option Secdb_db String

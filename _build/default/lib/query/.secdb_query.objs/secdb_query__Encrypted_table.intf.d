lib/query/encrypted_table.mli: Secdb_db Secdb_schemes

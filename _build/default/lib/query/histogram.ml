module Value = Secdb_db.Value

let to_float = function
  | Value.Null -> None
  | Value.Bool b -> Some (if b then 1.0 else 0.0)
  | Value.Int i -> Some (Int64.to_float i)
  | Value.Text s | Value.Bytes s ->
      (* lexicographic position from the first 6 bytes *)
      let acc = ref 0.0 and scale = ref 1.0 in
      for i = 0 to 5 do
        scale := !scale /. 256.0;
        let b = if i < String.length s then Char.code s.[i] else 0 in
        acc := !acc +. (float_of_int b *. !scale)
      done;
      Some !acc

type t = {
  nbuckets : int;
  mutable bootstrap : float list;  (** samples until the range is fixed *)
  mutable lo : float;
  mutable hi : float;
  mutable fixed : bool;
  counts : int array;
  mutable total : int;
}

let create ?(buckets = 32) () =
  if buckets < 1 then invalid_arg "Histogram.create: need at least one bucket";
  {
    nbuckets = buckets;
    bootstrap = [];
    lo = 0.0;
    hi = 1.0;
    fixed = false;
    counts = Array.make buckets 0;
    total = 0;
  }

let bucket_of t x =
  if t.hi <= t.lo then 0
  else
    let f = (x -. t.lo) /. (t.hi -. t.lo) in
    let b = int_of_float (f *. float_of_int t.nbuckets) in
    max 0 (min (t.nbuckets - 1) b)

let fix_range t =
  match t.bootstrap with
  | [] -> ()
  | samples ->
      t.lo <- List.fold_left min Float.infinity samples;
      t.hi <- List.fold_left max Float.neg_infinity samples;
      if t.hi <= t.lo then t.hi <- t.lo +. 1.0;
      t.fixed <- true;
      List.iter (fun x -> t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1) samples;
      t.bootstrap <- []

let add t v =
  match to_float v with
  | None -> ()
  | Some x ->
      t.total <- t.total + 1;
      if t.fixed then t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1
      else begin
        t.bootstrap <- x :: t.bootstrap;
        if List.length t.bootstrap >= 2 * t.nbuckets then fix_range t
      end

let remove t v =
  match to_float v with
  | None -> ()
  | Some x ->
      t.total <- max 0 (t.total - 1);
      if t.fixed then t.counts.(bucket_of t x) <- max 0 (t.counts.(bucket_of t x) - 1)
      else t.bootstrap <- (match t.bootstrap with [] -> [] | _ :: rest -> ignore x; rest)

let total t = t.total

let selectivity t ~lo ~hi =
  if t.total = 0 then 1.0
  else begin
    if not t.fixed then fix_range t;
    if not t.fixed then 1.0
    else begin
      let flo = Option.bind lo to_float and fhi = Option.bind hi to_float in
      let b_lo = match flo with Some x -> bucket_of t x | None -> 0 in
      let b_hi = match fhi with Some x -> bucket_of t x | None -> t.nbuckets - 1 in
      if b_hi < b_lo then 0.0
      else begin
        let mass = ref 0 in
        for b = b_lo to b_hi do
          mass := !mass + t.counts.(b)
        done;
        float_of_int !mass /. float_of_int t.total
      end
    end
  end

let of_values ?buckets values =
  let t = create ?buckets () in
  let floats = List.filter_map to_float values in
  (match floats with
  | [] -> ()
  | x :: rest ->
      t.lo <- List.fold_left min x rest;
      t.hi <- List.fold_left max x rest;
      if t.hi <= t.lo then t.hi <- t.lo +. 1.0;
      t.fixed <- true);
  List.iter (fun v -> add t v) values;
  t

(** Query evaluation over an encrypted index, after the pseudo-code of
    [12] — including its bugs.

    The paper's footnote 1: "this code contains two bugs: While it checks
    the integrity of the data in inner nodes during the tree-walk, it fails
    to do so on the leaf-level, both for finding the right starting place
    for the answer, and for generating the answer from the list of
    right-sibling references."

    [Published] reproduces that behaviour (inner nodes verified, leaf
    payloads decoded without verification when the scheme permits);
    [Corrected] applies the paper's easy fix and verifies everywhere.
    For AEAD-fixed indexes the unverified path does not exist, so both
    modes verify — misuse resistance by construction. *)

type mode = Published | Corrected

type answer = {
  results : (Secdb_db.Value.t * int) list;  (** (value, table row) in leaf order *)
  inner_checked : int;  (** integrity verifications during the tree walk *)
  leaf_checked : int;
  leaf_unchecked : int;  (** leaf payloads accepted without verification *)
}

val range :
  Secdb_index.Bptree.t ->
  mode:mode ->
  ?lo:Secdb_db.Value.t ->
  ?hi:Secdb_db.Value.t ->
  unit ->
  (answer, string) result
(** Inclusive range query: tree-walk to the starting leaf, then scan the
    right-sibling chain.  [Error] carries the first integrity failure
    (tampering detected); in [Published] mode leaf tampering that the
    scheme would have caught sails through into [results]. *)

val equal :
  Secdb_index.Bptree.t -> mode:mode -> Secdb_db.Value.t -> (answer, string) result

(** HMAC (RFC 2104) over any of the hash modules in this library. *)

type hash = {
  name : string;
  digest : string -> string;
  digest_size : int;
  block_size : int;
}

val sha1 : hash
val sha256 : hash
val md5 : hash

val mac : hash -> key:string -> string -> string
(** [mac h ~key msg] is the full-length HMAC tag. *)

val mac_truncated : hash -> key:string -> bytes:int -> string -> string
(** Tag truncated to the first [bytes] bytes. *)

val verify : hash -> key:string -> tag:string -> string -> bool
(** Constant-time verification of a (possibly truncated) tag. *)

(** MD5 (RFC 1321).  Included as a further µ instantiation with a 128-bit
    output that needs no truncation; long broken for collision resistance,
    which makes the paper's point about hash-based address checksums even
    sharper. *)

val digest : string -> string
(** 16-byte digest. *)

val hex : string -> string
val digest_size : int (** 16 *)

val block_size : int (** 64 *)

lib/hash/sha256.ml: Array Bytes Secdb_util Sha1 String

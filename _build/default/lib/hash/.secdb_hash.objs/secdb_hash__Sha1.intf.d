lib/hash/sha1.mli:

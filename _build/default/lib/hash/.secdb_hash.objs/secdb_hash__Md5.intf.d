lib/hash/md5.mli:

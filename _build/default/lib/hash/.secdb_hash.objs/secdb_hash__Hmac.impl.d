lib/hash/hmac.ml: Char Md5 Secdb_util Sha1 Sha256 String

lib/hash/sha256.mli:

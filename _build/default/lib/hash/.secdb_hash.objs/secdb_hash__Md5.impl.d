lib/hash/md5.ml: Array Bytes Float Int64 Secdb_util Sha1 String

lib/hash/hmac.mli:

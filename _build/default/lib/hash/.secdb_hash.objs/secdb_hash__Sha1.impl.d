lib/hash/sha1.ml: Array Buffer Bytes Char Int64 Secdb_util String

let digest_size = 20
let block_size = 64

let mask = 0xffffffff
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

(* Merkle–Damgård padding shared with the other hashes: 0x80, zeros, then
   the 64-bit big-endian bit length. *)
let md_pad ~le msg =
  let len = String.length msg in
  let bitlen = Int64.of_int (8 * len) in
  let pad = ((55 - len) mod 64 + 64) mod 64 + 1 in
  let b = Buffer.create (len + pad + 8) in
  Buffer.add_string b msg;
  Buffer.add_char b '\x80';
  for _ = 2 to pad do
    Buffer.add_char b '\x00'
  done;
  let lenbytes = Bytes.create 8 in
  if le then
    for i = 0 to 7 do
      Bytes.set lenbytes i
        (Char.chr (Int64.to_int (Int64.shift_right_logical bitlen (8 * i)) land 0xff))
    done
  else Secdb_util.Xbytes.set_uint64_be lenbytes 0 bitlen;
  Buffer.add_bytes b lenbytes;
  Buffer.contents b

let digest msg =
  let data = md_pad ~le:false msg in
  let h = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |] in
  let w = Array.make 80 0 in
  let nblocks = String.length data / 64 in
  for blk = 0 to nblocks - 1 do
    let base = 64 * blk in
    for t = 0 to 15 do
      w.(t) <- Secdb_util.Xbytes.get_uint32_be data (base + (4 * t))
    done;
    for t = 16 to 79 do
      w.(t) <- rotl (w.(t - 3) lxor w.(t - 8) lxor w.(t - 14) lxor w.(t - 16)) 1
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) and e = ref h.(4) in
    for t = 0 to 79 do
      let f, k =
        if t < 20 then ((!b land !c) lor (lnot !b land !d) land mask, 0x5A827999)
        else if t < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
        else if t < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
        else (!b lxor !c lxor !d, 0xCA62C1D6)
      in
      let tmp = (rotl !a 5 + (f land mask) + !e + k + w.(t)) land mask in
      e := !d;
      d := !c;
      c := rotl !b 30;
      b := !a;
      a := tmp
    done;
    h.(0) <- (h.(0) + !a) land mask;
    h.(1) <- (h.(1) + !b) land mask;
    h.(2) <- (h.(2) + !c) land mask;
    h.(3) <- (h.(3) + !d) land mask;
    h.(4) <- (h.(4) + !e) land mask
  done;
  let out = Bytes.create 20 in
  Array.iteri (fun i v -> Secdb_util.Xbytes.set_uint32_be out (4 * i) v) h;
  Bytes.unsafe_to_string out

let hex msg = Secdb_util.Xbytes.to_hex (digest msg)

let digest_size = 16
let block_size = 64

let mask = 0xffffffff
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

(* K.(i) = floor(|sin(i+1)| * 2^32), computed rather than transcribed. *)
let k =
  Array.init 64 (fun i -> Int64.to_int (Int64.of_float (Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0)))

let s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

let digest msg =
  let data = Sha1.md_pad ~le:true msg in
  let h = [| 0x67452301; 0xefcdab89; 0x98badcfe; 0x10325476 |] in
  let m = Array.make 16 0 in
  for blk = 0 to (String.length data / 64) - 1 do
    let base = 64 * blk in
    for t = 0 to 15 do
      m.(t) <- Secdb_util.Xbytes.get_uint32_le data (base + (4 * t))
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then ((!b land !c) lor (lnot !b land !d), i)
        else if i < 32 then ((!d land !b) lor (lnot !d land !c), ((5 * i) + 1) mod 16)
        else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) mod 16)
        else (!c lxor (!b lor (lnot !d land mask)), (7 * i) mod 16)
      in
      let f = (f land mask + !a + k.(i) + m.(g)) land mask in
      a := !d;
      d := !c;
      c := !b;
      b := (!b + rotl f s.(i)) land mask
    done;
    h.(0) <- (h.(0) + !a) land mask;
    h.(1) <- (h.(1) + !b) land mask;
    h.(2) <- (h.(2) + !c) land mask;
    h.(3) <- (h.(3) + !d) land mask
  done;
  let out = Bytes.create 16 in
  Array.iteri (fun i v -> Secdb_util.Xbytes.set_uint32_le out (4 * i) v) h;
  Bytes.unsafe_to_string out

let hex msg = Secdb_util.Xbytes.to_hex (digest msg)

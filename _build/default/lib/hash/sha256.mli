(** SHA-256 (FIPS 180-4). Alternative instantiation for the address digest µ
    and the HMAC used by the encrypt-then-MAC AEAD composition. *)

val digest : string -> string
(** 32-byte digest. *)

val hex : string -> string
val digest_size : int (** 32 *)

val block_size : int (** 64 *)

(** SHA-1 (FIPS 180-4).

    The analysed paper's experiment instantiates the address-conversion
    function µ with SHA-1 truncated to the first 128 bits; this module is
    that primitive.  SHA-1 is no longer collision resistant in general, but
    the attack in Section 3.1 of the paper relies only on generic
    birthday-style partial collisions, not on SHA-1's specific weaknesses. *)

val digest : string -> string
(** 20-byte digest of the input. *)

val hex : string -> string
(** Hexadecimal digest. *)

val digest_size : int
(** 20. *)

val block_size : int
(** 64 — for HMAC. *)

val md_pad : le:bool -> string -> string
(** Merkle–Damgård padding (0x80, zeros, 64-bit bit length) shared by the
    MD5/SHA family; [le] selects a little-endian length field (MD5). *)

type hash = {
  name : string;
  digest : string -> string;
  digest_size : int;
  block_size : int;
}

let sha1 =
  { name = "sha1"; digest = Sha1.digest; digest_size = Sha1.digest_size; block_size = Sha1.block_size }

let sha256 =
  {
    name = "sha256";
    digest = Sha256.digest;
    digest_size = Sha256.digest_size;
    block_size = Sha256.block_size;
  }

let md5 =
  { name = "md5"; digest = Md5.digest; digest_size = Md5.digest_size; block_size = Md5.block_size }

let mac h ~key msg =
  let key = if String.length key > h.block_size then h.digest key else key in
  let key = key ^ String.make (h.block_size - String.length key) '\000' in
  let ipad = String.map (fun c -> Char.chr (Char.code c lxor 0x36)) key in
  let opad = String.map (fun c -> Char.chr (Char.code c lxor 0x5c)) key in
  h.digest (opad ^ h.digest (ipad ^ msg))

let mac_truncated h ~key ~bytes msg = Secdb_util.Xbytes.take bytes (mac h ~key msg)

let verify h ~key ~tag msg =
  let computed = Secdb_util.Xbytes.take (String.length tag) (mac h ~key msg) in
  Secdb_util.Xbytes.constant_time_equal computed tag

(** The client-side tree walk of the paper's Remark 1.

    Instead of handing the key to the DBMS server, the server ships each
    visited node's (encrypted) payloads to the client; the client decrypts,
    decides the direction, and answers with a child position — costing one
    communication round per tree level, i.e. logarithmically many rounds,
    "worthwhile if the index uses d-ary B⁺-trees with d ≥ 2".

    This module simulates both parties over a {!Bptree.t} and accounts for
    rounds and bytes on the wire, feeding experiment EXP10. *)

type stats = {
  rounds : int;  (** request/response pairs, one per visited node *)
  nodes_fetched : int;
  bytes_to_client : int;  (** payload bytes shipped to the client *)
  bytes_to_server : int;  (** direction decisions (1 byte each) + probe-free *)
}

val find : Bptree.t -> Secdb_db.Value.t -> int list * stats
(** Equality lookup executed via the client-walk protocol: returns the same
    table rows as {!Bptree.find} (leaf-chain continuation included) plus
    the communication statistics.  Decryption happens only through the
    tree's codec — standing in for the client, the sole key holder. *)

val range :
  Bptree.t ->
  ?lo:Secdb_db.Value.t ->
  ?hi:Secdb_db.Value.t ->
  unit ->
  (Secdb_db.Value.t * int) list * stats
(** Inclusive range query over the protocol: one descent plus one round per
    additional leaf the answer spans — the paper's "list of right-sibling
    references", fetched one message at a time. *)

val expected_rounds : Bptree.t -> int
(** Tree height = the number of rounds a single descent costs. *)

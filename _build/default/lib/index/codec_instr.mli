(** Instrumented index codecs.

    Wraps a {!Bptree.codec} so that every encode and decode is counted —
    used by the ablation experiment on index-maintenance cost: because the
    analysed schemes bind payloads to their node row r_I, every split,
    borrow and merge forces decode+re-encode work that a position-free
    encryption would not pay. *)

type counters = {
  mutable encodes : int;
  mutable decodes : int;
  mutable decode_failures : int;
}

val wrap : Bptree.codec -> Bptree.codec * counters
val reset : counters -> unit

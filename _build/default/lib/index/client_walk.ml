module Value = Secdb_db.Value

type stats = {
  rounds : int;
  nodes_fetched : int;
  bytes_to_client : int;
  bytes_to_server : int;
}

let payload_bytes (view : Bptree.node_view) =
  Array.fold_left (fun acc p -> acc + String.length p) 0 view.payloads

(* The "client": decodes one payload with the codec (it holds the key). *)
let client_decode (t : Bptree.t) (view : Bptree.node_view) slot =
  let ctx =
    {
      Bptree.index_table = Bptree.id t;
      node_row = view.row;
      kind = view.node_kind;
    }
  in
  match (Bptree.codec t).decode ctx view.payloads.(slot) with
  | Ok v -> v
  | Error e ->
      raise (Bptree.Integrity (Printf.sprintf "client-walk: node %d slot %d: %s" view.row slot e))

let find t probe =
  let rounds = ref 0 and fetched = ref 0 and to_client = ref 0 and to_server = ref 0 in
  let fetch row =
    let view = Bptree.node_view t row in
    incr rounds;
    incr fetched;
    to_client := !to_client + payload_bytes view;
    to_server := !to_server + 1;
    view
  in
  (* descent: client answers with the child position to follow *)
  let rec descend row =
    let view = fetch row in
    match view.node_kind with
    | Bptree.Leaf -> view
    | Bptree.Inner ->
        let k = Array.length view.payloads in
        let rec first_ge i =
          if i < k && Value.compare probe (fst (client_decode t view i)) > 0 then first_ge (i + 1)
          else i
        in
        descend view.children.(first_ge 0)
  in
  let rec collect (view : Bptree.node_view) acc =
    let stop = ref false in
    let acc = ref acc in
    Array.iteri
      (fun i _ ->
        if not !stop then begin
          let value, table_row = client_decode t view i in
          let c = Value.compare value probe in
          if c = 0 then (match table_row with Some r -> acc := r :: !acc | None -> ())
          else if c > 0 then stop := true
        end)
      view.payloads;
    if (not !stop) && view.next <> None then
      collect (fetch (Option.get view.next)) !acc
    else !acc
  in
  let leaf = descend (Bptree.root t) in
  let rows = List.rev (collect leaf []) in
  ( rows,
    {
      rounds = !rounds;
      nodes_fetched = !fetched;
      bytes_to_client = !to_client;
      bytes_to_server = !to_server;
    } )

let range t ?lo ?hi () =
  let rounds = ref 0 and fetched = ref 0 and to_client = ref 0 and to_server = ref 0 in
  let fetch row =
    let view = Bptree.node_view t row in
    incr rounds;
    incr fetched;
    to_client := !to_client + payload_bytes view;
    to_server := !to_server + 1;
    view
  in
  let rec descend row =
    let view = fetch row in
    match view.Bptree.node_kind with
    | Bptree.Leaf -> view
    | Bptree.Inner ->
        let k = Array.length view.Bptree.payloads in
        let rec first_ge i =
          if
            i < k
            &&
            match lo with
            | Some probe -> Value.compare probe (fst (client_decode t view i)) > 0
            | None -> false
          then first_ge (i + 1)
          else i
        in
        descend view.Bptree.children.(first_ge 0)
  in
  let results = ref [] in
  let rec scan (view : Bptree.node_view) =
    let stop = ref false in
    Array.iteri
      (fun i _ ->
        if not !stop then begin
          let value, table_row = client_decode t view i in
          let below = match lo with Some v -> Value.compare value v < 0 | None -> false in
          let above = match hi with Some v -> Value.compare value v > 0 | None -> false in
          if above then stop := true
          else if not below then
            match table_row with Some r -> results := (value, r) :: !results | None -> ()
        end)
      view.Bptree.payloads;
    if not !stop then
      match view.Bptree.next with Some nx -> scan (fetch nx) | None -> ()
  in
  scan (descend (Bptree.root t));
  ( List.rev !results,
    {
      rounds = !rounds;
      nodes_fetched = !fetched;
      bytes_to_client = !to_client;
      bytes_to_server = !to_server;
    } )

let expected_rounds t = Bptree.height t

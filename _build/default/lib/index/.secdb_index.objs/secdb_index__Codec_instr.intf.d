lib/index/codec_instr.mli: Bptree

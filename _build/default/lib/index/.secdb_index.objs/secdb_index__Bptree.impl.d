lib/index/bptree.ml: Array Int List Option Printf Secdb_db Secdb_util String Vec Xbytes

lib/index/bptree.mli: Secdb_db

lib/index/client_walk.mli: Bptree Secdb_db

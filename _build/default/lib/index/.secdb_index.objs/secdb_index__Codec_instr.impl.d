lib/index/codec_instr.ml: Bptree

lib/index/client_walk.ml: Array Bptree List Option Printf Secdb_db String

(** PKCS#7 block padding (PKCS#5 is the 8-byte-block special case, as cited
    by the paper [11]). *)

val pad : block:int -> string -> string
(** Append [k] bytes of value [k], where [1 <= k <= block], so that the
    result length is a multiple of [block].  A full block of padding is
    added when the input is already aligned.
    @raise Invalid_argument if [block] is not in [1, 255]. *)

val unpad : block:int -> string -> (string, string) result
(** Validate and strip padding; [Error reason] on malformed padding. *)

val unpad_exn : block:int -> string -> string
(** @raise Invalid_argument on malformed padding. *)

lib/modes/mode.ml: Buffer Bytes Char Printf Secdb_cipher Secdb_util String Xbytes

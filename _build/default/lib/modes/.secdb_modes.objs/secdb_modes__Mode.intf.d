lib/modes/mode.mli: Secdb_cipher

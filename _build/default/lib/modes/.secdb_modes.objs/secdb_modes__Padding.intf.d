lib/modes/padding.mli:

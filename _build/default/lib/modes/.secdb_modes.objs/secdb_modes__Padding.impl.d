lib/modes/padding.ml: Char String

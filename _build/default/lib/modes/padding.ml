let pad ~block s =
  if block < 1 || block > 255 then invalid_arg "Padding.pad: block size out of range";
  let k = block - (String.length s mod block) in
  s ^ String.make k (Char.chr k)

let unpad ~block s =
  let n = String.length s in
  if n = 0 || n mod block <> 0 then Error "unpad: length not a positive multiple of the block size"
  else
    let k = Char.code s.[n - 1] in
    if k < 1 || k > block then Error "unpad: padding byte out of range"
    else
      let ok = ref true in
      for i = n - k to n - 1 do
        if Char.code s.[i] <> k then ok := false
      done;
      if !ok then Ok (String.sub s 0 (n - k)) else Error "unpad: inconsistent padding bytes"

let unpad_exn ~block s =
  match unpad ~block s with Ok v -> v | Error e -> invalid_arg ("Padding." ^ e)

open Secdb_util

let check_aligned (c : Secdb_cipher.Block.t) s op =
  if String.length s mod c.block_size <> 0 then
    invalid_arg
      (Printf.sprintf "Mode.%s: input length %d is not a multiple of the %d-byte block" op
         (String.length s) c.block_size)

let check_iv (c : Secdb_cipher.Block.t) iv op =
  if String.length iv <> c.block_size then
    invalid_arg (Printf.sprintf "Mode.%s: IV must be one block" op)

let map_blocks c s f =
  let bs = c.Secdb_cipher.Block.block_size in
  let n = String.length s / bs in
  let out = Buffer.create (String.length s) in
  for i = 0 to n - 1 do
    Buffer.add_string out (f (String.sub s (i * bs) bs))
  done;
  Buffer.contents out

let ecb_encrypt (c : Secdb_cipher.Block.t) s =
  check_aligned c s "ecb_encrypt";
  map_blocks c s c.encrypt

let ecb_decrypt (c : Secdb_cipher.Block.t) s =
  check_aligned c s "ecb_decrypt";
  map_blocks c s c.decrypt

let cbc_encrypt (c : Secdb_cipher.Block.t) ~iv s =
  check_aligned c s "cbc_encrypt";
  check_iv c iv "cbc_encrypt";
  let prev = ref iv in
  map_blocks c s (fun p ->
      let ct = c.encrypt (Xbytes.xor_exact p !prev) in
      prev := ct;
      ct)

let cbc_decrypt (c : Secdb_cipher.Block.t) ~iv s =
  check_aligned c s "cbc_decrypt";
  check_iv c iv "cbc_decrypt";
  let prev = ref iv in
  map_blocks c s (fun ct ->
      let p = Xbytes.xor_exact (c.decrypt ct) !prev in
      prev := ct;
      p)

(* Generate a keystream of [len] bytes from successive cipher outputs. *)
let keystream_apply (c : Secdb_cipher.Block.t) next s =
  let bs = c.block_size in
  let out = Bytes.of_string s in
  let off = ref 0 in
  while !off < String.length s do
    let ks = next () in
    let n = min bs (String.length s - !off) in
    Xbytes.xor_into ~src:(Xbytes.take n ks) ~dst:out ~dst_off:!off;
    off := !off + n
  done;
  Bytes.unsafe_to_string out

let ctr_full (c : Secdb_cipher.Block.t) ~counter0 s =
  check_iv c counter0 "ctr_full";
  let ctr = Bytes.of_string counter0 in
  let incr_ctr () =
    let rec bump i =
      if i >= 0 then begin
        let v = (Char.code (Bytes.get ctr i) + 1) land 0xff in
        Bytes.set ctr i (Char.chr v);
        if v = 0 then bump (i - 1)
      end
    in
    bump (c.block_size - 1)
  in
  let next () =
    let ks = c.encrypt (Bytes.to_string ctr) in
    incr_ctr ();
    ks
  in
  keystream_apply c next s

let ctr (c : Secdb_cipher.Block.t) ~nonce s =
  check_iv c nonce "ctr";
  let counter = ref 0 in
  let next () =
    let blk = Bytes.of_string nonce in
    Xbytes.set_uint32_be blk (c.block_size - 4) !counter;
    incr counter;
    c.encrypt (Bytes.unsafe_to_string blk)
  in
  keystream_apply c next s

let ofb (c : Secdb_cipher.Block.t) ~iv s =
  check_iv c iv "ofb";
  let state = ref iv in
  let next () =
    state := c.encrypt !state;
    !state
  in
  keystream_apply c next s

let cfb_encrypt (c : Secdb_cipher.Block.t) ~iv s =
  check_iv c iv "cfb_encrypt";
  let bs = c.block_size in
  let out = Buffer.create (String.length s) in
  let prev = ref iv in
  let off = ref 0 in
  while !off < String.length s do
    let n = min bs (String.length s - !off) in
    let ks = c.encrypt !prev in
    let ct = Xbytes.xor_exact (String.sub s !off n) (Xbytes.take n ks) in
    Buffer.add_string out ct;
    (* last segment may be partial; feedback uses the full previous block *)
    if n = bs then prev := ct;
    off := !off + n
  done;
  Buffer.contents out

let cfb_decrypt (c : Secdb_cipher.Block.t) ~iv s =
  check_iv c iv "cfb_decrypt";
  let bs = c.block_size in
  let out = Buffer.create (String.length s) in
  let prev = ref iv in
  let off = ref 0 in
  while !off < String.length s do
    let n = min bs (String.length s - !off) in
    let ks = c.encrypt !prev in
    let ct = String.sub s !off n in
    Buffer.add_string out (Xbytes.xor_exact ct (Xbytes.take n ks));
    if n = bs then prev := ct;
    off := !off + n
  done;
  Buffer.contents out

let zero_iv (c : Secdb_cipher.Block.t) = Secdb_cipher.Block.zero_block c

(** Block-cipher modes of operation (NIST SP 800-38A).

    All functions operate on whole messages.  [ecb] and [cbc] require the
    input length to be a multiple of the block size (combine with
    {!Padding}); the streaming modes ([ctr], [ofb], [cfb]) accept any
    length.

    The deterministic instantiation the analysed paper warns about is
    [cbc ~iv:(zero block)]: the paper's counter-examples (Sect. 3) are built
    on exactly this "CBC with constant zero IV" reading of the deterministic
    encryption function E, and footnote 2 points out that the streaming
    modes are even worse under determinism because the whole keystream
    repeats (see {!Secdb_attacks.Keystream_reuse}). *)

val ecb_encrypt : Secdb_cipher.Block.t -> string -> string
val ecb_decrypt : Secdb_cipher.Block.t -> string -> string

val cbc_encrypt : Secdb_cipher.Block.t -> iv:string -> string -> string
val cbc_decrypt : Secdb_cipher.Block.t -> iv:string -> string -> string

val ctr : Secdb_cipher.Block.t -> nonce:string -> string -> string
(** Counter mode; the counter block is [nonce] with its last 4 bytes
    replaced by a 32-bit big-endian block counter starting at 0.  Encryption
    and decryption coincide.  Note that nonces differing only in their last
    4 bytes collide — callers wanting arbitrary nonces should use
    {!ctr_full} with a derived initial counter (as EAX and the
    encrypt-then-MAC composition here do). *)

val ctr_full : Secdb_cipher.Block.t -> counter0:string -> string -> string
(** Counter mode over the whole block: the counter starts at [counter0] and
    increments as a big-endian integer with wrap-around (the CTR variant
    inside EAX).  Self-inverse. *)

val ofb : Secdb_cipher.Block.t -> iv:string -> string -> string
(** Output feedback; self-inverse. *)

val cfb_encrypt : Secdb_cipher.Block.t -> iv:string -> string -> string
(** Full-block cipher feedback. *)

val cfb_decrypt : Secdb_cipher.Block.t -> iv:string -> string -> string

val zero_iv : Secdb_cipher.Block.t -> string
(** The all-zero IV used by the paper's counter-example instantiation. *)

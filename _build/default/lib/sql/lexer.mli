(** Tokeniser for the SQL subset (see {!Parser} for the grammar). *)

type token =
  | Ident of string  (** unquoted, lower-cased *)
  | Int of int64
  | Str of string  (** 'single quoted', with '' as the escape for ' *)
  | Blob of string  (** x'68656c6c6f' hexadecimal blob literal *)
  | Kw of string  (** recognised keyword, upper-cased *)
  | Sym of string  (** punctuation or operator: ( ) , * ; = != < <= > >= *)
  | Eof

val pp_token : Format.formatter -> token -> unit

val tokens : string -> (token list, string) result
(** Tokenise a statement; the list always ends with [Eof]. *)

val keywords : string list
(** The recognised keywords (upper-case). *)

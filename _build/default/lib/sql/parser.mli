(** Recursive-descent parser for the SQL subset.

    Grammar (keywords case-insensitive, identifiers lower-cased):

    {v
    stmt     ::= select | EXPLAIN select | insert | update | delete
               | create_table | create_index
    select   ::= SELECT cols FROM ident [WHERE expr]
                 [ORDER BY ident [ASC|DESC]] [LIMIT int]
    cols     ::= '*' | ident (',' ident)*
    insert   ::= INSERT INTO ident VALUES '(' literal (',' literal)* ')'
    update   ::= UPDATE ident SET ident '=' literal [WHERE expr]
    delete   ::= DELETE FROM ident [WHERE expr]
    create_table ::= CREATE TABLE ident '(' coldef (',' coldef)* ')'
    coldef   ::= ident type [ENCRYPTED | CLEAR]         (default ENCRYPTED)
    type     ::= INT | TEXT | BYTES | BOOL
    create_index ::= CREATE INDEX ON ident '(' ident ')'
    expr     ::= or ;  or ::= and (OR and)* ;  and ::= not (AND not)*
    not      ::= NOT not | atom
    atom     ::= '(' expr ')' | operand cmpop operand
               | operand BETWEEN operand AND operand
    operand  ::= ident | literal
    literal  ::= int | string | blob | TRUE | FALSE | NULL
    cmpop    ::= '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    v} *)

val parse : string -> (Ast.stmt, string) result
(** Parse one statement (an optional trailing [;] is accepted). *)

val parse_expr : string -> (Ast.expr, string) result
(** Parse a bare predicate (for tests). *)

val parse_many : string -> (Ast.stmt list, string) result
(** Parse a [;]-separated script (trailing [;] optional, empty statements
    ignored). *)

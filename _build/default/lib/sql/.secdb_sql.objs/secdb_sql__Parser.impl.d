lib/sql/parser.ml: Ast Fmt Int64 Lexer List Option Printf Secdb_db

lib/sql/ast.mli: Format Secdb_db

lib/sql/ast.ml: Buffer Fmt Int64 List Option Printf Secdb_db Secdb_util String

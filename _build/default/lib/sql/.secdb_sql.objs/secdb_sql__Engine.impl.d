lib/sql/engine.ml: Array Ast Fmt Hashtbl Int64 List Option Parser Printf Result Secdb Secdb_db Secdb_query String

lib/sql/engine.mli: Ast Format Secdb Secdb_db Secdb_query

lib/sql/lexer.ml: Buffer Fmt Int64 List Printf Secdb_util String

open Secdb_obs
module Pool = Secdb_util.Pool

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Every test toggles the global switch; run the body with it on and
   restore it afterwards so suites stay order-independent. *)
let on f () = Obs.with_enabled f
let () = Obs.disable ()

let test_counter_arithmetic () =
  let c = Metrics.counter "obs_test.arith" in
  checki "fresh" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 41;
  checki "incr + add" 42 (Metrics.value c);
  Metrics.add c (-2);
  checki "negative add" 40 (Metrics.value c);
  Alcotest.(check string) "name" "obs_test.arith" (Metrics.counter_name c)

let test_counter_labels () =
  let a = Metrics.counter ~labels:[ ("op", "x"); ("kind", "a") ] "obs_test.lbl" in
  let b = Metrics.counter ~labels:[ ("kind", "a"); ("op", "x") ] "obs_test.lbl" in
  Metrics.incr a;
  (* label order does not matter: same (name, labels) -> same counter *)
  checki "same counter through either order" 1 (Metrics.value b);
  Alcotest.(check string) "rendered name" "obs_test.lbl{kind=a,op=x}" (Metrics.counter_name a);
  let other = Metrics.counter ~labels:[ ("op", "y") ] "obs_test.lbl" in
  checki "different labels, different counter" 0 (Metrics.value other)

let test_registry_idempotent () =
  let c1 = Metrics.counter "obs_test.idem" in
  Metrics.add c1 7;
  let c2 = Metrics.counter "obs_test.idem" in
  checki "re-registration returns same counter" 7 (Metrics.value c2);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: obs_test.idem already registered as another kind")
    (fun () -> ignore (Metrics.gauge "obs_test.idem"));
  Alcotest.check_raises "bad name rejected"
    (Invalid_argument "Metrics: bad metric name so bad") (fun () ->
      ignore (Metrics.counter "so bad"))

let test_gauge () =
  let g = Metrics.gauge "obs_test.gauge" in
  Metrics.set g 17;
  checki "set" 17 (Metrics.gauge_value g);
  Metrics.set g 3;
  checki "overwrite" 3 (Metrics.gauge_value g)

let test_histogram () =
  let h = Metrics.histogram "obs_test.hist" in
  Metrics.observe h 1e-6;
  Metrics.observe h 1e-6;
  Metrics.observe h 0.5;
  checki "count" 3 (Metrics.hist_count h);
  let v = Metrics.hist_view h in
  checki "view count" 3 v.Metrics.count;
  checkb "sum in range" true (v.Metrics.sum_seconds > 0.4 && v.Metrics.sum_seconds < 0.6);
  (* the two 1us observations share a bucket; 0.5s lands far above it *)
  checki "two buckets hit" 2 (List.length v.Metrics.buckets);
  List.iter
    (fun (i, n) ->
      checkb "bucket upper edge covers observation" true
        (Metrics.bucket_upper_s i >= 1e-6 || n = 0))
    v.Metrics.buckets;
  let x = Metrics.time h (fun () -> 5) in
  checki "time returns thunk result" 5 x;
  checki "time observed once" 4 (Metrics.hist_count h)

let test_snapshot_stable () =
  let c = Metrics.counter "obs_test.snap" in
  Metrics.add c 3;
  let pick (s : Metrics.snapshot) = List.assoc_opt "obs_test.snap" s.Metrics.counters in
  let s1 = Metrics.snapshot () in
  let s2 = Metrics.snapshot () in
  checkb "value visible" true (pick s1 = Some 3);
  checkb "two snapshots agree" true (pick s1 = pick s2);
  checkb "sorted by name" true
    (let names = List.map fst s1.Metrics.counters in
     names = List.sort compare names);
  checkb "text deterministic" true (Metrics.to_text s1 = Metrics.to_text s2)

let test_disabled_noop () =
  Obs.disable ();
  let c = Metrics.counter "obs_test.off" in
  let g = Metrics.gauge "obs_test.off_gauge" in
  let h = Metrics.histogram "obs_test.off_hist" in
  Metrics.incr c;
  Metrics.add c 100;
  Metrics.set g 9;
  Metrics.observe h 0.1;
  checki "counter untouched" 0 (Metrics.value c);
  checki "gauge untouched" 0 (Metrics.gauge_value g);
  checki "histogram untouched" 0 (Metrics.hist_count h);
  let hits = ref 0 in
  let r = Trace.with_span "obs_test.span" (fun () -> incr hits; 11) in
  checki "with_span transparent" 11 r;
  checki "body ran once" 1 !hits

let test_parallel_counts () =
  let c = Metrics.counter "obs_test.par" in
  let per_task = 10 and n = 1000 in
  Pool.with_pool ~domains:4 (fun pool ->
      let (_ : unit array) =
        Pool.map_array pool
          (fun _ ->
            for _ = 1 to per_task do
              Metrics.incr c
            done)
          (Array.init n Fun.id)
      in
      ());
  (* striped slots must not lose increments under domain parallelism *)
  checki "no lost counts" (per_task * n) (Metrics.value c)

let test_reset () =
  let c = Metrics.counter "obs_test.reset" in
  let h = Metrics.histogram "obs_test.reset_hist" in
  Metrics.add c 5;
  Metrics.observe h 0.01;
  Metrics.reset ();
  checki "counter zeroed" 0 (Metrics.value c);
  checki "histogram zeroed" 0 (Metrics.hist_count h);
  Metrics.incr c;
  checki "registration survives reset" 1 (Metrics.value c)

let test_trace_ring () =
  Trace.set_sink Trace.Ring;
  Trace.clear_ring ();
  let out = Trace.with_span ~attrs:[ ("k", "v") ] "obs_test.ring" (fun () -> 7) in
  checki "result passes through" 7 out;
  (try ignore (Trace.with_span "obs_test.raise" (fun () -> failwith "boom")) with
  | Failure _ -> ());
  (match Trace.ring_events () with
  | [ a; b ] ->
      Alcotest.(check string) "first span" "obs_test.ring" a.Trace.span;
      Alcotest.(check string) "span on exception" "obs_test.raise" b.Trace.span;
      checkb "attrs kept" true (a.Trace.attrs = [ ("k", "v") ]);
      checkb "duration non-negative" true (a.Trace.duration >= 0.);
      checkb "event renders as json" true
        (String.length (Trace.json_of_event a) > 0)
  | evs -> Alcotest.failf "expected 2 ring events, got %d" (List.length evs));
  Trace.clear_ring ();
  checki "ring cleared" 0 (List.length (Trace.ring_events ()));
  Trace.set_sink Trace.Null

let test_trace_null_counts () =
  Trace.set_sink Trace.Null;
  let spans = Metrics.counter "trace.spans" in
  let before = Metrics.value spans in
  Trace.with_span "obs_test.null" Fun.id;
  checki "null sink still counts spans" (before + 1) (Metrics.value spans)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "counter arithmetic" `Quick (on test_counter_arithmetic);
        Alcotest.test_case "counter labels" `Quick (on test_counter_labels);
        Alcotest.test_case "registry idempotent" `Quick (on test_registry_idempotent);
        Alcotest.test_case "gauge" `Quick (on test_gauge);
        Alcotest.test_case "histogram" `Quick (on test_histogram);
        Alcotest.test_case "snapshot stable" `Quick (on test_snapshot_stable);
        Alcotest.test_case "disabled path is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "parallel increments lose nothing" `Quick (on test_parallel_counts);
        Alcotest.test_case "reset" `Quick (on test_reset);
        Alcotest.test_case "trace ring sink" `Quick (on test_trace_ring);
        Alcotest.test_case "trace null sink counts" `Quick (on test_trace_null_counts);
      ] );
  ]

open Secdb_util
module Cmac = Secdb_mac.Cmac
module Cbc_mac = Secdb_mac.Cbc_mac
module Pmac = Secdb_mac.Pmac
module Gf128 = Secdb_mac.Gf128
module Mode = Secdb_modes.Mode

let hex = Xbytes.of_hex
let aes = Secdb_cipher.Aes.cipher ~key:(hex "2b7e151628aed2a6abf7158809cf4f3c")

let rfc4493_msg =
  hex
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"

let test_cmac_rfc4493 () =
  let check msg expected input =
    Alcotest.(check string) msg expected (Xbytes.to_hex (Cmac.mac aes input))
  in
  check "empty" "bb1d6929e95937287fa37d129b756746" "";
  check "16 bytes" "070a16b46b4d4144f79bdd9dd04a287c" (String.sub rfc4493_msg 0 16);
  check "40 bytes" "dfa66747de9ae63030ca32611497c827" (String.sub rfc4493_msg 0 40);
  check "64 bytes" "51f0bebf7e3b9d92fc49741779363cfe" rfc4493_msg

let test_cmac_subkeys () =
  (* RFC 4493 subkey generation example *)
  let k1, k2 = Cmac.subkeys aes in
  Alcotest.(check string) "K1" "fbeed618357133667c85e08f7236a8de" (Xbytes.to_hex k1);
  Alcotest.(check string) "K2" "f7ddac306ae266ccf90bc11ee46d513b" (Xbytes.to_hex k2)

let test_cmac_keyed_chain () =
  (* mac_with ~init:(chain state over P) M = mac (P ^ M) for block-aligned P *)
  let keyed = Cmac.keyed aes in
  let rng = Rng.create ~seed:17L () in
  for _ = 1 to 20 do
    let p = Rng.bytes rng (16 * (1 + Rng.int rng 4)) in
    let m = Rng.bytes rng (1 + Rng.int rng 50) in
    let direct = Cmac.mac aes (p ^ m) in
    let chained = Cmac.mac_with keyed ~init:(Cmac.chain_state keyed p) m in
    if direct <> chained then Alcotest.fail "chain-state composition broken"
  done;
  Alcotest.check_raises "chain_state unaligned"
    (Invalid_argument "Cmac.chain_state: prefix must be a positive multiple of the block size")
    (fun () -> ignore (Cmac.chain_state keyed "abc"))

let test_cbc_mac_equals_cbc () =
  (* the identity at the heart of the paper's Section 3.3 attack: raw
     CBC-MAC chaining values = CBC-encryption blocks under zero IV *)
  let rng = Rng.create ~seed:23L () in
  let msg = Rng.bytes rng 64 in
  let chain = Cbc_mac.chain aes msg in
  let ct = Mode.cbc_encrypt aes ~iv:(Mode.zero_iv aes) msg in
  List.iteri
    (fun i c ->
      Alcotest.(check string)
        (Printf.sprintf "chain value %d" i)
        (Xbytes.to_hex (String.sub ct (16 * i) 16))
        (Xbytes.to_hex c))
    chain;
  Alcotest.(check string) "mac = last block" (Xbytes.to_hex (String.sub ct 48 16))
    (Xbytes.to_hex (Cbc_mac.mac aes msg))

let test_cbc_mac_padded () =
  let m = "unaligned input!!x" in
  Alcotest.(check string) "mac_padded = mac of padded"
    (Xbytes.to_hex (Cbc_mac.mac aes (Secdb_modes.Padding.pad ~block:16 m)))
    (Xbytes.to_hex (Cbc_mac.mac_padded aes m));
  Alcotest.check_raises "unaligned rejected"
    (Invalid_argument "Cbc_mac: message length must be a multiple of the block size")
    (fun () -> ignore (Cbc_mac.mac aes "abc"))

let test_cmac_verify () =
  let msg = "a message to authenticate" in
  let tag = Cmac.mac aes msg in
  Alcotest.(check bool) "verify ok" true (Cmac.verify aes ~tag msg);
  Alcotest.(check bool) "verify truncated ok" true
    (Cmac.verify aes ~tag:(Cmac.mac_truncated aes ~bytes:8 msg) msg);
  Alcotest.(check bool) "reject other msg" false (Cmac.verify aes ~tag "other");
  Alcotest.(check bool) "reject flipped tag" false
    (Cmac.verify aes ~tag:(Xbytes.flip_bit tag 3) msg)

let test_gf128_dbl () =
  (* dbl(L) for the RFC 4493 L = AES-K(0) = 7df76b0c1ab899b33e42f047b91b546f *)
  Alcotest.(check string) "dbl(L) = K1" "fbeed618357133667c85e08f7236a8de"
    (Xbytes.to_hex (Gf128.dbl (hex "7df76b0c1ab899b33e42f047b91b546f")));
  (* msb set: (0x80..01 << 1) = 0x00..02, reduction xors 0x87 -> 0x..85 *)
  Alcotest.(check string) "dbl with reduction" "00000000000000000000000000000085"
    (Xbytes.to_hex (Gf128.dbl (hex "80000000000000000000000000000001")));
  (* no msb: plain shift *)
  Alcotest.(check string) "dbl without reduction" "00000000000000000000000000000002"
    (Xbytes.to_hex (Gf128.dbl (hex "00000000000000000000000000000001")));
  (* 64-bit block: x^64 + x^4 + x^3 + x + 1, constant 0x1b *)
  Alcotest.(check string) "dbl 64-bit reduction" "000000000000001b"
    (Xbytes.to_hex (Gf128.dbl (hex "8000000000000000")))

let test_gf128_ntz () =
  Alcotest.(check int) "ntz 1" 0 (Gf128.ntz 1);
  Alcotest.(check int) "ntz 8" 3 (Gf128.ntz 8);
  Alcotest.(check int) "ntz 12" 2 (Gf128.ntz 12);
  Alcotest.check_raises "ntz 0" (Invalid_argument "Gf128.ntz: positive argument required")
    (fun () -> ignore (Gf128.ntz 0))

let qc = Test_seed.qc

let prop_gf_dbl_inverse =
  QCheck2.Test.make ~name:"inv_dbl inverts dbl (128- and 64-bit)" ~count:300
    QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 8)))
    (fun (b16, b8) ->
      Gf128.inv_dbl (Gf128.dbl b16) = b16
      && Gf128.dbl (Gf128.inv_dbl b16) = b16
      && Gf128.inv_dbl (Gf128.dbl b8) = b8)

let prop_dbl_pow_additive =
  QCheck2.Test.make ~name:"dbl_pow additivity" ~count:100
    QCheck2.Gen.(triple (string_size (return 16)) (int_range 0 10) (int_range 0 10))
    (fun (l, i, j) -> Gf128.dbl_pow (Gf128.dbl_pow l i) j = Gf128.dbl_pow l (i + j))

let prop_cmac_length_separation =
  QCheck2.Test.make ~name:"cmac separates m from m||10*" ~count:200
    QCheck2.Gen.(string_size (int_range 0 47))
    (fun m ->
      (* the K1/K2 masking must distinguish a complete final block from a
         padded one: appending the 10* padding explicitly gives another tag *)
      let padded = m ^ "\x80" ^ String.make (15 - (String.length m mod 16)) '\000' in
      Cmac.mac aes m <> Cmac.mac aes padded)

let prop_pmac_deterministic_and_sensitive =
  QCheck2.Test.make ~name:"pmac determinism and bit sensitivity" ~count:200
    QCheck2.Gen.(string_size (int_range 1 100))
    (fun m ->
      Pmac.mac aes m = Pmac.mac aes m
      && Pmac.mac aes (Xbytes.flip_bit m 0) <> Pmac.mac aes m)

let prop_pmac_vs_cmac_disagree =
  QCheck2.Test.make ~name:"pmac is not cmac" ~count:50
    QCheck2.Gen.(string_size (int_range 1 64))
    (fun m -> Pmac.mac aes m <> Cmac.mac aes m)

let test_pmac_verify () =
  let m = "parallelisable message authentication" in
  Alcotest.(check bool) "verify" true (Pmac.verify aes ~tag:(Pmac.mac aes m) m);
  Alcotest.(check bool) "verify truncated" true
    (Pmac.verify aes ~tag:(Pmac.mac_truncated aes ~bytes:6 m) m);
  Alcotest.(check bool) "reject" false (Pmac.verify aes ~tag:(Pmac.mac aes m) (m ^ "!"));
  Alcotest.(check bool) "empty defined" true (String.length (Pmac.mac aes "") = 16)

let suites =
  [
    ( "mac:cmac",
      [
        Alcotest.test_case "RFC 4493 vectors" `Quick test_cmac_rfc4493;
        Alcotest.test_case "RFC 4493 subkeys" `Quick test_cmac_subkeys;
        Alcotest.test_case "keyed chain-state composition" `Quick test_cmac_keyed_chain;
        Alcotest.test_case "verify" `Quick test_cmac_verify;
        qc prop_cmac_length_separation;
      ] );
    ( "mac:cbc-mac",
      [
        Alcotest.test_case "chain = CBC blocks (paper 3.3)" `Quick test_cbc_mac_equals_cbc;
        Alcotest.test_case "padded variant" `Quick test_cbc_mac_padded;
      ] );
    ( "mac:pmac",
      [
        Alcotest.test_case "verify" `Quick test_pmac_verify;
        qc prop_pmac_deterministic_and_sensitive;
        qc prop_pmac_vs_cmac_disagree;
      ] );
    ( "mac:gf128",
      [
        Alcotest.test_case "doubling vectors" `Quick test_gf128_dbl;
        Alcotest.test_case "ntz" `Quick test_gf128_ntz;
        qc prop_gf_dbl_inverse;
        qc prop_dbl_pow_additive;
      ] );
  ]

open Secdb_util
module Mode = Secdb_modes.Mode
module Padding = Secdb_modes.Padding
module Block = Secdb_cipher.Block

let hex = Xbytes.of_hex
let aes = Secdb_cipher.Aes.cipher ~key:(hex "2b7e151628aed2a6abf7158809cf4f3c")
let sp800_iv = hex "000102030405060708090a0b0c0d0e0f"

let sp800_plain =
  hex
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"

let test_cbc_sp800 () =
  (* NIST SP 800-38A F.2.1 CBC-AES128 *)
  let expected =
    "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b273bed6b8e3c1743b7116e69e222295163ff1caa1681fac09120eca307586e1a7"
  in
  Alcotest.(check string) "cbc encrypt" expected
    (Xbytes.to_hex (Mode.cbc_encrypt aes ~iv:sp800_iv sp800_plain));
  Alcotest.(check string) "cbc decrypt" (Xbytes.to_hex sp800_plain)
    (Xbytes.to_hex (Mode.cbc_decrypt aes ~iv:sp800_iv (hex expected)))

let test_ecb_matches_blocks () =
  let ct = Mode.ecb_encrypt aes sp800_plain in
  Alcotest.(check string) "first block" "3ad77bb40d7a3660a89ecaf32466ef97"
    (Xbytes.to_hex (String.sub ct 0 16));
  Alcotest.(check string) "roundtrip" (Xbytes.to_hex sp800_plain)
    (Xbytes.to_hex (Mode.ecb_decrypt aes ct));
  (* ECB leaks equality of blocks *)
  let two_same = String.make 32 'A' in
  let c = Mode.ecb_encrypt aes two_same in
  Alcotest.(check string) "ecb equal blocks leak" (String.sub c 0 16) (String.sub c 16 16)

let test_cbc_error_propagation () =
  (* the property the paper's forgery attack rests on: flipping ciphertext
     block i garbles plaintext block i and xors the delta into block i+1,
     leaving all other blocks intact *)
  let rng = Rng.create ~seed:11L () in
  let pt = Rng.bytes rng 80 (* 5 blocks *) in
  let iv = Rng.bytes rng 16 in
  let ct = Mode.cbc_encrypt aes ~iv pt in
  let delta = 0x40 in
  let tampered = Bytes.of_string ct in
  Bytes.set tampered 33 (Char.chr (Char.code ct.[33] lxor delta));
  (* block 2 *)
  let pt' = Mode.cbc_decrypt aes ~iv (Bytes.to_string tampered) in
  List.iter
    (fun b ->
      let same = String.sub pt (16 * b) 16 = String.sub pt' (16 * b) 16 in
      match b with
      | 2 -> Alcotest.(check bool) "block 2 garbled" false same
      | 3 ->
          let expected = Bytes.of_string (String.sub pt 48 16) in
          Bytes.set expected 1 (Char.chr (Char.code pt.[49] lxor delta));
          Alcotest.(check bool) "block 3 = delta xored" true
            (String.sub pt' 48 16 = Bytes.to_string expected)
      | _ -> Alcotest.(check bool) (Printf.sprintf "block %d intact" b) true same)
    [ 0; 1; 2; 3; 4 ]

let test_mode_errors () =
  Alcotest.check_raises "cbc unaligned"
    (Invalid_argument
       "Mode.cbc_encrypt: input length 10 is not a multiple of the 16-byte block")
    (fun () -> ignore (Mode.cbc_encrypt aes ~iv:sp800_iv "0123456789"));
  Alcotest.check_raises "bad iv" (Invalid_argument "Mode.cbc_encrypt: IV must be one block")
    (fun () -> ignore (Mode.cbc_encrypt aes ~iv:"short" ""))

let test_padding () =
  Alcotest.(check string) "pad 13" ("x" ^ String.make 15 '\x0f')
    (Padding.pad ~block:16 "x");
  Alcotest.(check string) "pad aligned adds full block"
    (String.make 16 'y' ^ String.make 16 '\x10')
    (Padding.pad ~block:16 (String.make 16 'y'));
  Alcotest.(check string) "unpad" "x"
    (Padding.unpad_exn ~block:16 ("x" ^ String.make 15 '\x0f'));
  (match Padding.unpad ~block:16 (String.make 16 '\x00') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted padding byte 0");
  (match Padding.unpad ~block:16 (String.make 16 '\x11') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted padding byte > block");
  (match Padding.unpad ~block:16 ("aaaaaaaaaaaaaa\x02\x03") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted inconsistent padding");
  match Padding.unpad ~block:16 "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unaligned input"

let qc = Test_seed.qc
let gen_str200 = QCheck2.Gen.(string_size (int_range 0 200))

let prop_pad_roundtrip =
  QCheck2.Test.make ~name:"pad/unpad roundtrip" ~count:300
    QCheck2.Gen.(pair (int_range 1 255) gen_str200)
    (fun (block, s) -> Padding.unpad ~block (Padding.pad ~block s) = Ok s)

let prop_pad_aligned =
  QCheck2.Test.make ~name:"padded length aligned" ~count:300
    QCheck2.Gen.(pair (int_range 1 255) gen_str200)
    (fun (block, s) -> String.length (Padding.pad ~block s) mod block = 0)

let prop_stream_roundtrips =
  QCheck2.Test.make ~name:"ctr/ofb/cfb roundtrip" ~count:200
    QCheck2.Gen.(pair gen_str200 (string_size (return 16)))
    (fun (msg, iv) ->
      Mode.ctr aes ~nonce:iv (Mode.ctr aes ~nonce:iv msg) = msg
      && Mode.ofb aes ~iv (Mode.ofb aes ~iv msg) = msg
      && Mode.cfb_decrypt aes ~iv (Mode.cfb_encrypt aes ~iv msg) = msg)

let prop_cbc_roundtrip =
  QCheck2.Test.make ~name:"cbc roundtrip (padded)" ~count:200
    QCheck2.Gen.(pair gen_str200 (string_size (return 16)))
    (fun (msg, iv) ->
      let p = Padding.pad ~block:16 msg in
      Mode.cbc_decrypt aes ~iv (Mode.cbc_encrypt aes ~iv p) = p)

let prop_ctr_keystream_additive =
  QCheck2.Test.make ~name:"ctr is an additive stream: C1^C2 = P1^P2" ~count:100
    QCheck2.Gen.(pair gen_str200 gen_str200)
    (fun (p1, p2) ->
      let n = min (String.length p1) (String.length p2) in
      let p1 = String.sub p1 0 n and p2 = String.sub p2 0 n in
      let nonce = Mode.zero_iv aes in
      let c1 = Mode.ctr aes ~nonce p1 and c2 = Mode.ctr aes ~nonce p2 in
      Xbytes.xor_exact c1 c2 = Xbytes.xor_exact p1 p2)

let suites =
  [
    ( "modes:vectors",
      [
        Alcotest.test_case "CBC SP 800-38A" `Quick test_cbc_sp800;
        Alcotest.test_case "ECB blockwise + leak" `Quick test_ecb_matches_blocks;
        Alcotest.test_case "CBC error propagation" `Quick test_cbc_error_propagation;
        Alcotest.test_case "argument validation" `Quick test_mode_errors;
      ] );
    ( "modes:padding",
      [
        Alcotest.test_case "pkcs#7 cases" `Quick test_padding;
        qc prop_pad_roundtrip;
        qc prop_pad_aligned;
      ] );
    ( "modes:properties",
      [ qc prop_stream_roundtrips; qc prop_cbc_roundtrip; qc prop_ctr_keystream_additive ] );
  ]

(* SP 800-38A streaming-mode first blocks: OFB and CFB share
   E_K(IV) xor P1 *)
let test_stream_vectors () =
  let p1 = hex "6bc1bee22e409f96e93d7e117393172a" in
  Alcotest.(check string) "cfb128 block 1" "3b3fd92eb72dad20333449f8e83cfb4a"
    (Xbytes.to_hex (Mode.cfb_encrypt aes ~iv:sp800_iv p1));
  Alcotest.(check string) "ofb block 1" "3b3fd92eb72dad20333449f8e83cfb4a"
    (Xbytes.to_hex (Mode.ofb aes ~iv:sp800_iv p1));
  (* ctr_full with the SP 800-38A initial counter block *)
  let icb = hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  Alcotest.(check string) "ctr block 1" "874d6191b620e3261bef6864990db6ce"
    (Xbytes.to_hex (Mode.ctr_full aes ~counter0:icb p1));
  (* full four-block CTR vector exercises the counter increment *)
  let pt4 =
    hex
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
  in
  Alcotest.(check string) "ctr four blocks"
    "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff5ae4df3edbd5d35e5b4f09020db03eab1e031dda2fbe03d1792170a0f3009cee"
    (Xbytes.to_hex (Mode.ctr_full aes ~counter0:icb pt4))

let suites =
  suites
  @ [
      ( "modes:stream-vectors",
        [ Alcotest.test_case "SP 800-38A OFB/CFB/CTR" `Quick test_stream_vectors ] );
    ]

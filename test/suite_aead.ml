open Secdb_util
module Aead = Secdb_aead.Aead
module Nonce = Secdb_aead.Nonce

let hex = Xbytes.of_hex
let aes k = Secdb_cipher.Aes.cipher ~key:(hex k)
let base = aes "2b7e151628aed2a6abf7158809cf4f3c"

let base2 = aes "603deb1015ca71be2b73aef0857d7781"

let all_aeads =
  [
    Secdb_aead.Eax.make base;
    Secdb_aead.Ocb.make base;
    Secdb_aead.Ccfb.make base;
    Secdb_aead.Compose.encrypt_then_mac ~cipher:base ~mac_key:"independent mac key!" ();
    Secdb_aead.Gcm.make base;
    Secdb_aead.Siv.make base2 base;
  ]

(* EAX paper, appendix test vectors 1 and 2 *)
let test_eax_paper_vectors () =
  let eax1 = Secdb_aead.Eax.make (aes "233952DEE4D5ED5F9B9C6D6FF80FF478") in
  let ct, tag =
    Aead.encrypt eax1
      ~nonce:(hex "62EC67F9C3A4A407FCB2A8C49031A8B3")
      ~ad:(hex "6BFB914FD07EAE6B") ""
  in
  Alcotest.(check string) "vec1 ct" "" ct;
  Alcotest.(check string) "vec1 tag" "e037830e8389f27b025a2d6527e79d01" (Xbytes.to_hex tag);
  let eax2 = Secdb_aead.Eax.make (aes "91945D3F4DCBEE0BF45EF52255F095A4") in
  let ct, tag =
    Aead.encrypt eax2
      ~nonce:(hex "BECAF043B0A23D843194BA972C66DEBD")
      ~ad:(hex "FA3BFD4806EB53FA") (hex "F7FB")
  in
  Alcotest.(check string) "vec2 ct" "19dd" (Xbytes.to_hex ct);
  Alcotest.(check string) "vec2 tag" "5c4c9331049d0bdab0277408f67967e5" (Xbytes.to_hex tag);
  (* decrypt the official vector *)
  match
    Aead.decrypt eax2
      ~nonce:(hex "BECAF043B0A23D843194BA972C66DEBD")
      ~ad:(hex "FA3BFD4806EB53FA") ~tag (hex "19DD")
  with
  | Ok pt -> Alcotest.(check string) "vec2 pt" "f7fb" (Xbytes.to_hex pt)
  | Error Aead.Invalid -> Alcotest.fail "official vector rejected"

(* NIST GCM reference vectors (SP 800-38D test cases 1, 2) *)
let test_gcm_nist_vectors () =
  let g = Secdb_aead.Gcm.make (aes "00000000000000000000000000000000") in
  let zero_nonce = String.make 12 '\000' in
  let ct, tag = Aead.encrypt g ~nonce:zero_nonce ~ad:"" "" in
  Alcotest.(check string) "tc1 ct" "" ct;
  Alcotest.(check string) "tc1 tag" "58e2fccefa7e3061367f1d57a4e7455a" (Xbytes.to_hex tag);
  let ct, tag = Aead.encrypt g ~nonce:zero_nonce ~ad:"" (String.make 16 '\000') in
  Alcotest.(check string) "tc2 ct" "0388dace60b6a392f328c2b971b2fe78" (Xbytes.to_hex ct);
  Alcotest.(check string) "tc2 tag" "ab6e47d42cec13bdf53a67b21257bddf" (Xbytes.to_hex tag);
  (* ghash of a single zero block under H = E(0) is gf_mult(0,H) = 0 *)
  let h = base.Secdb_cipher.Block.encrypt (String.make 16 '\000') in
  Alcotest.(check string) "ghash zero block" (String.make 32 '0')
    (Xbytes.to_hex (Secdb_aead.Gcm.ghash ~h (String.make 16 '\000')))

(* RFC 5297 appendix A.1 (deterministic S2V + CTR) *)
let test_siv_rfc5297 () =
  let k1 = aes "fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0" in
  let k2 = aes "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let ad = hex "101112131415161718191a1b1c1d1e1f2021222324252627" in
  let p = hex "112233445566778899aabbccddee" in
  Alcotest.(check string) "S2V" "85632d07c6e8f37f950acd320a2ecc93"
    (Xbytes.to_hex (Secdb_aead.Siv.s2v k1 [ ad; p ]));
  (* full SIV with our (ad, nonce) framing degenerates to the RFC shape
     when the nonce component equals the RFC's second vector input; here we
     check the AEAD interface end to end instead *)
  let siv = Secdb_aead.Siv.make k1 k2 in
  let nonce = String.make 16 'n' in
  let ct, tag = Aead.encrypt siv ~nonce ~ad p in
  (match Aead.decrypt siv ~nonce ~ad ~tag ct with
  | Ok m -> Alcotest.(check string) "roundtrip" (Xbytes.to_hex p) (Xbytes.to_hex m)
  | Error Aead.Invalid -> Alcotest.fail "siv rejected own ciphertext");
  (* misuse resistance: nonce reuse leaks only exact equality *)
  let c1, t1 = Aead.encrypt siv ~nonce ~ad p in
  let c2, t2 = Aead.encrypt siv ~nonce ~ad p in
  Alcotest.(check string) "deterministic under fixed nonce (ct)" c1 c2;
  Alcotest.(check string) "deterministic under fixed nonce (tag)" t1 t2;
  let c3, _ = Aead.encrypt siv ~nonce ~ad (hex "112233445566778899aabbccddef") in
  Alcotest.(check bool) "different plaintext, unrelated ciphertext" false
    (Xbytes.take 4 c1 = Xbytes.take 4 c3)

let sizes = [ 0; 1; 11; 12; 15; 16; 17; 32; 33; 95; 96; 100; 255 ]

let test_roundtrips () =
  let rng = Rng.create ~seed:41L () in
  List.iter
    (fun (a : Aead.t) ->
      List.iter
        (fun n ->
          let m = Rng.bytes rng n in
          let ad = Rng.bytes rng (n mod 24) in
          let nonce = Rng.bytes rng a.Aead.nonce_size in
          let ct, tag = Aead.encrypt a ~nonce ~ad m in
          Alcotest.(check int)
            (a.Aead.name ^ " expansion")
            (String.length m + a.Aead.expansion)
            (String.length ct + a.Aead.expansion);
          Alcotest.(check int) (a.Aead.name ^ " tag size") a.Aead.tag_size (String.length tag);
          match Aead.decrypt a ~nonce ~ad ~tag ct with
          | Ok m' when m' = m -> ()
          | Ok _ -> Alcotest.fail (a.Aead.name ^ ": wrong plaintext")
          | Error Aead.Invalid -> Alcotest.fail (a.Aead.name ^ ": own ciphertext rejected"))
        sizes)
    all_aeads

let test_tamper_rejection () =
  let rng = Rng.create ~seed:43L () in
  List.iter
    (fun (a : Aead.t) ->
      for _ = 1 to 40 do
        let m = Rng.bytes rng (1 + Rng.int rng 80) in
        let ad = Rng.bytes rng (1 + Rng.int rng 30) in
        let nonce = Rng.bytes rng a.Aead.nonce_size in
        let ct, tag = Aead.encrypt a ~nonce ~ad m in
        let reject label = function
          | Error Aead.Invalid -> ()
          | Ok _ -> Alcotest.fail (Printf.sprintf "%s: %s accepted" a.Aead.name label)
        in
        reject "flipped ciphertext"
          (Aead.decrypt a ~nonce ~ad ~tag (Xbytes.flip_bit ct (Rng.int rng (8 * String.length ct))));
        reject "flipped tag"
          (Aead.decrypt a ~nonce ~ad ~tag:(Xbytes.flip_bit tag (Rng.int rng (8 * String.length tag))) ct);
        reject "flipped nonce"
          (Aead.decrypt a ~nonce:(Xbytes.flip_bit nonce 0) ~ad ~tag ct);
        reject "flipped ad" (Aead.decrypt a ~nonce ~ad:(Xbytes.flip_bit ad 5) ~tag ct);
        reject "dropped ad" (Aead.decrypt a ~nonce ~ad:"" ~tag ct);
        reject "truncated ct"
          (Aead.decrypt a ~nonce ~ad ~tag (String.sub ct 0 (String.length ct - 1)))
      done)
    all_aeads

let test_nonce_respected () =
  List.iter
    (fun (a : Aead.t) ->
      Alcotest.check_raises
        (a.Aead.name ^ " rejects short nonce")
        (Invalid_argument
           (Printf.sprintf "%s: nonce must be %d bytes, got 3" a.Aead.name a.Aead.nonce_size))
        (fun () -> ignore (Aead.encrypt a ~nonce:"abc" ~ad:"" "m"));
      (* decryption with a wrong-size nonce is Invalid, not an exception *)
      match Aead.decrypt a ~nonce:"abc" ~ad:"" ~tag:(String.make a.Aead.tag_size 't') "ct" with
      | Error Aead.Invalid -> ()
      | Ok _ -> Alcotest.fail "wrong-size nonce accepted")
    all_aeads

let test_storage_overheads () =
  (* the paper's Section 4 storage analysis: 32 octets for EAX and OCB+PMAC
     (nonce 16 + tag 16), 16 octets for CCFB (nonce 12 + tag 4) *)
  let overhead mk = Aead.stored_overhead (mk base) in
  Alcotest.(check int) "eax" 32 (overhead Secdb_aead.Eax.make);
  Alcotest.(check int) "ocb" 32 (overhead Secdb_aead.Ocb.make);
  Alcotest.(check int) "ccfb" 16 (overhead Secdb_aead.Ccfb.make);
  Alcotest.(check int) "ccfb payload/block" 12 (Secdb_aead.Ccfb.payload_bytes_per_block base)

let test_invocation_formulas () =
  (* the paper's Section 4 performance analysis, in blockcipher calls *)
  let count mk n m =
    let wrapped, counters = Secdb_cipher.Counting.wrap base in
    let a = mk wrapped in
    Secdb_cipher.Counting.reset counters;
    ignore
      (Aead.encrypt a
         ~nonce:(String.make a.Aead.nonce_size 'N')
         ~ad:(String.make (16 * m) 'H')
         (String.make (16 * n) 'M'));
    counters.enc_calls
  in
  List.iter
    (fun (n, m) ->
      Alcotest.(check int)
        (Printf.sprintf "eax 2n+m+1 at n=%d m=%d" n m)
        ((2 * n) + m + 1)
        (count Secdb_aead.Eax.make n m);
      (* our OCB+PMAC costs n+m+2 per message (the paper counts n+m+5):
         both L-derivations — OCB's and PMAC's — are hoisted to [make],
         leaving R, the n message blocks, Y_m, the tag, and the m header
         blocks on the per-message path *)
      Alcotest.(check int)
        (Printf.sprintf "ocb n+m+2 at n=%d m=%d" n m)
        (n + m + 2)
        (count Secdb_aead.Ocb.make n m))
    [ (1, 1); (2, 1); (4, 2); (16, 1); (64, 4) ]

let test_nonce_reuse_leaks_and_uniqueness_restores () =
  (* determinism under nonce reuse: same (N, M) -> same C, the failure mode
     the fixed schemes avoid by drawing unique nonces *)
  List.iter
    (fun (a : Aead.t) ->
      let nonce = String.make a.Aead.nonce_size 'n' in
      let c1, _ = Aead.encrypt a ~nonce ~ad:"" "attribute value" in
      let c2, _ = Aead.encrypt a ~nonce ~ad:"" "attribute value" in
      Alcotest.(check string) (a.Aead.name ^ " nonce reuse is deterministic") c1 c2;
      let fresh = Nonce.counter ~size:a.Aead.nonce_size () in
      let c3, _ = Aead.encrypt a ~nonce:(fresh ()) ~ad:"" "attribute value" in
      let c4, _ = Aead.encrypt a ~nonce:(fresh ()) ~ad:"" "attribute value" in
      Alcotest.(check bool) (a.Aead.name ^ " fresh nonces differ") false (c3 = c4))
    all_aeads

let test_nonce_sources () =
  let c = Nonce.counter ~size:4 () in
  Alcotest.(check string) "counter 0" "\x00\x00\x00\x00" (c ());
  Alcotest.(check string) "counter 1" "\x00\x00\x00\x01" (c ());
  (* the full space is usable: a 1-byte counter emits 0..255 before raising *)
  let c2 = Nonce.counter ~size:1 ~start:254 () in
  Alcotest.(check string) "counter 254" "\xfe" (c2 ());
  Alcotest.(check string) "counter 255" "\xff" (c2 ());
  Alcotest.check_raises "exhaustion" (Invalid_argument "Nonce.counter: exhausted") (fun () ->
      ignore (c2 ()));
  Alcotest.check_raises "start outside the nonce space"
    (Invalid_argument "Nonce.counter: start exceeds the nonce space") (fun () ->
      ignore (Nonce.counter ~size:1 ~start:256 () : Nonce.t));
  Alcotest.check_raises "negative start" (Invalid_argument "Nonce.counter: negative start")
    (fun () -> ignore (Nonce.counter ~size:4 ~start:(-1) () : Nonce.t));
  (* size >= 8 counts in the low 8 bytes with the true 2^64 bound, not the
     63-bit max_int cap: starting at max_int must keep counting past it *)
  let c8 = Nonce.counter ~size:8 ~start:max_int () in
  Alcotest.(check string) "counter 2^62-1" "\x3f\xff\xff\xff\xff\xff\xff\xff" (c8 ());
  Alcotest.(check string) "counter 2^62" "\x40\x00\x00\x00\x00\x00\x00\x00" (c8 ());
  let c16 = Nonce.counter ~size:16 ~start:1 () in
  Alcotest.(check string) "wide counter pads high bytes"
    ("\x00\x00\x00\x00\x00\x00\x00\x00" ^ "\x00\x00\x00\x00\x00\x00\x00\x01")
    (c16 ());
  let f = Nonce.fixed "iv" in
  Alcotest.(check string) "fixed" "iv" (f ());
  let r = Nonce.of_rng (Rng.create ~seed:1L ()) ~size:12 in
  Alcotest.(check int) "rng size" 12 (String.length (r ()));
  Alcotest.(check bool) "rng changes" false (r () = r ())

let test_eam_is_broken_by_design () =
  let eam = Secdb_aead.Compose.encrypt_and_mac_insecure base in
  let nonce = String.make eam.Aead.nonce_size '0' in
  let c1, t1 = Aead.encrypt eam ~nonce ~ad:"ad" "hello" in
  let c2, t2 = Aead.encrypt eam ~nonce ~ad:"ad" "hello" in
  Alcotest.(check string) "deterministic ciphertext" c1 c2;
  Alcotest.(check string) "deterministic tag" t1 t2;
  (* still round-trips *)
  match Aead.decrypt eam ~nonce ~ad:"ad" ~tag:t1 c1 with
  | Ok "hello" -> ()
  | _ -> Alcotest.fail "eam roundtrip broken"

let qc = Test_seed.qc

let prop_all_roundtrip =
  QCheck2.Test.make ~name:"aead roundtrip (random sizes)" ~count:150
    QCheck2.Gen.(triple (string_size (int_range 0 120)) (string_size (int_range 0 40)) (int_range 0 5))
    (fun (m, ad, which) ->
      let a = List.nth all_aeads which in
      let nonce = String.make a.Aead.nonce_size 'x' in
      Aead.decrypt a ~nonce ~ad
        ~tag:(snd (Aead.encrypt a ~nonce ~ad m))
        (fst (Aead.encrypt a ~nonce ~ad m))
      = Ok m)

(* the table-driven GF(2^128) multiply (Shoup 8-bit tables in 32-bit words)
   must agree with the retained bit-by-bit reference everywhere *)
let prop_gf_mult_table_matches_reference =
  QCheck2.Test.make ~name:"table-driven gf128 mult = bit-by-bit reference" ~count:300
    QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
    (fun (x, y) ->
      Secdb_aead.Gcm.gf_mult_table (Secdb_aead.Gcm.htable y) x
      = Secdb_aead.Gcm.gf_mult x y)

let prop_ghash_into_matches_ghash =
  QCheck2.Test.make ~name:"ghash_into = ghash = ghash_ref" ~count:150
    QCheck2.Gen.(pair (string_size (return 16)) (int_range 0 8))
    (fun (h, nblocks) ->
      (* distinct pseudo-random blocks derived from h so operands vary *)
      let data =
        String.concat ""
          (List.init nblocks (fun i ->
               Secdb_aead.Gcm.gf_mult h
                 (Secdb_util.Xbytes.take 16 (string_of_int i ^ h ^ String.make 16 '\001'))))
      in
      let t = Secdb_aead.Gcm.htable h in
      let acc = Bytes.make 16 '\000' in
      Secdb_aead.Gcm.ghash_into t ~acc (Bytes.of_string data) ~off:0 ~nblocks;
      let via_into = Bytes.to_string acc in
      via_into = Secdb_aead.Gcm.ghash ~h data
      && via_into = Secdb_aead.Gcm.ghash_ref ~h data)

let prop_ciphertexts_differ_across_aeads =
  QCheck2.Test.make ~name:"schemes are distinct" ~count:50
    QCheck2.Gen.(string_size (int_range 16 64))
    (fun m ->
      let encs =
        List.map
          (fun (a : Aead.t) ->
            fst (Aead.encrypt a ~nonce:(String.make a.Aead.nonce_size 'x') ~ad:"" m))
          all_aeads
      in
      List.length (List.sort_uniq compare encs) = List.length encs)

let suites =
  [
    ( "aead:vectors",
      [
        Alcotest.test_case "EAX paper vectors" `Quick test_eax_paper_vectors;
        Alcotest.test_case "GCM NIST vectors" `Quick test_gcm_nist_vectors;
        Alcotest.test_case "SIV RFC 5297" `Quick test_siv_rfc5297;
      ] );
    ( "aead:properties",
      [
        Alcotest.test_case "roundtrips across sizes" `Quick test_roundtrips;
        Alcotest.test_case "tamper rejection (N,C,T,AD)" `Quick test_tamper_rejection;
        Alcotest.test_case "nonce size enforcement" `Quick test_nonce_respected;
        Alcotest.test_case "nonce reuse vs fresh nonces" `Quick
          test_nonce_reuse_leaks_and_uniqueness_restores;
        qc prop_all_roundtrip;
        qc prop_gf_mult_table_matches_reference;
        qc prop_ghash_into_matches_ghash;
        qc prop_ciphertexts_differ_across_aeads;
      ] );
    ( "aead:paper-costs",
      [
        Alcotest.test_case "storage overhead (Sect. 4)" `Quick test_storage_overheads;
        Alcotest.test_case "blockcipher invocation counts (Sect. 4)" `Quick
          test_invocation_formulas;
      ] );
    ( "aead:compositions",
      [
        Alcotest.test_case "nonce sources" `Quick test_nonce_sources;
        Alcotest.test_case "encrypt-and-MAC is deterministic (broken)" `Quick
          test_eam_is_broken_by_design;
      ] );
  ]

(* tags never transfer between schemes, keys, or roles *)
let test_cross_scheme_rejection () =
  let m = "the same plaintext everywhere" and ad = "shared ad" in
  let seal (a : Aead.t) =
    let nonce = String.make a.Aead.nonce_size 'n' in
    let ct, tag = Aead.encrypt a ~nonce ~ad m in
    (a, nonce, ct, tag)
  in
  let sealed = List.map seal all_aeads in
  List.iteri
    (fun i (_, _, ct_i, tag_i) ->
      List.iteri
        (fun j (a_j, nonce_j, _, _) ->
          if i <> j then
            match
              Aead.decrypt a_j ~nonce:(Xbytes.take a_j.Aead.nonce_size (nonce_j ^ String.make 16 'n'))
                ~ad ~tag:(Xbytes.take a_j.Aead.tag_size (tag_i ^ String.make 16 '0'))
                ct_i
            with
            | Error Aead.Invalid -> ()
            | Ok _ -> Alcotest.fail "cross-scheme ciphertext accepted")
        sealed)
    sealed;
  (* same scheme, different key *)
  let a = Secdb_aead.Eax.make base and b = Secdb_aead.Eax.make base2 in
  let nonce = String.make 16 'n' in
  let ct, tag = Aead.encrypt a ~nonce ~ad m in
  match Aead.decrypt b ~nonce ~ad ~tag ct with
  | Error Aead.Invalid -> ()
  | Ok _ -> Alcotest.fail "wrong key accepted"

let suites =
  suites
  @ [
      ( "aead:isolation",
        [ Alcotest.test_case "no cross-scheme/key acceptance" `Quick test_cross_scheme_rejection ] );
    ]

open Secdb_util
module Block = Secdb_cipher.Block
module Aes = Secdb_cipher.Aes
module Des = Secdb_cipher.Des

let hex = Xbytes.of_hex
let check_hex msg expected got = Alcotest.(check string) msg expected (Xbytes.to_hex got)

(* FIPS 197 appendix C vectors *)
let fips_plain = "00112233445566778899aabbccddeeff"

let fips_vectors =
  [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a", "aes-128");
    ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191", "aes-192");
    ( "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
      "8ea2b7ca516745bfeafc49904b496089",
      "aes-256" );
  ]

let test_aes_fips () =
  List.iter
    (fun (key, ct, name) ->
      let c = Aes.cipher ~key:(hex key) in
      Alcotest.(check string) "cipher name" name c.Block.name;
      check_hex (name ^ " encrypt") ct (c.Block.encrypt (hex fips_plain));
      check_hex (name ^ " decrypt") fips_plain (c.Block.decrypt (hex ct)))
    fips_vectors

(* NIST SP 800-38A F.1.1: AES-128-ECB blockwise *)
let sp800_key = "2b7e151628aed2a6abf7158809cf4f3c"

let sp800_blocks =
  [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4");
  ]

let test_aes_sp800 () =
  let c = Aes.cipher ~key:(hex sp800_key) in
  List.iter
    (fun (pt, ct) ->
      check_hex "sp800-38a enc" ct (c.Block.encrypt (hex pt));
      check_hex "sp800-38a dec" pt (c.Block.decrypt (hex ct)))
    sp800_blocks

let test_aes_sbox () =
  Alcotest.(check int) "S(0x00)" 0x63 Aes.sbox.(0x00);
  Alcotest.(check int) "S(0x01)" 0x7c Aes.sbox.(0x01);
  Alcotest.(check int) "S(0x53)" 0xed Aes.sbox.(0x53);
  Alcotest.(check int) "S(0xff)" 0x16 Aes.sbox.(0xff);
  (* bijection and inverse *)
  let seen = Array.make 256 false in
  Array.iter (fun v -> seen.(v) <- true) Aes.sbox;
  Alcotest.(check bool) "bijection" true (Array.for_all Fun.id seen);
  for b = 0 to 255 do
    if Aes.inv_sbox.(Aes.sbox.(b)) <> b then Alcotest.fail "inv_sbox not inverse"
  done

let test_aes_errors () =
  Alcotest.check_raises "bad key length" (Invalid_argument "Aes.expand_key: bad key length 5")
    (fun () -> ignore (Aes.expand_key "12345"));
  let c = Aes.cipher ~key:(hex sp800_key) in
  Alcotest.check_raises "bad block" (Invalid_argument "Aes: block must be 16 bytes") (fun () ->
      ignore (c.Block.encrypt "short"))

(* classic DES vector *)
let test_des_vector () =
  let c = Des.cipher ~key:(hex "133457799BBCDFF1") in
  check_hex "des encrypt" "85e813540f0ab405" (c.Block.encrypt (hex "0123456789abcdef"));
  check_hex "des decrypt" "0123456789abcdef" (c.Block.decrypt (hex "85e813540f0ab405"))

let test_des_weak_keys () =
  Alcotest.(check bool) "0101.. weak" true (Des.is_weak_key (hex "0101010101010101"));
  Alcotest.(check bool) "fefe.. weak" true (Des.is_weak_key (hex "fefefefefefefefe"));
  Alcotest.(check bool) "normal not weak" false (Des.is_weak_key (hex "133457799BBCDFF1"));
  (* weak key: encryption is an involution *)
  let c = Des.cipher ~key:(hex "0101010101010101") in
  let pt = hex "0123456789abcdef" in
  Alcotest.(check string) "E(E(p)) = p" pt (c.Block.encrypt (c.Block.encrypt pt))

(* complementation property: DES(~k, ~p) = ~DES(k, p) *)
let complement s = String.map (fun c -> Char.chr (lnot (Char.code c) land 0xff)) s

let qc = Test_seed.qc

let prop_des_complement =
  QCheck2.Test.make ~name:"DES complementation property" ~count:50
    QCheck2.Gen.(pair (string_size (return 8)) (string_size (return 8)))
    (fun (key, pt) ->
      let c = Des.cipher ~key and c' = Des.cipher ~key:(complement key) in
      c'.Block.encrypt (complement pt) = complement (c.Block.encrypt pt))

let prop_aes_roundtrip =
  QCheck2.Test.make ~name:"AES roundtrip" ~count:100
    QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
    (fun (key, pt) ->
      let c = Aes.cipher ~key in
      c.Block.decrypt (c.Block.encrypt pt) = pt)

let prop_des_roundtrip =
  QCheck2.Test.make ~name:"DES roundtrip" ~count:100
    QCheck2.Gen.(pair (string_size (return 8)) (string_size (return 8)))
    (fun (key, pt) ->
      let c = Des.cipher ~key in
      c.Block.decrypt (c.Block.encrypt pt) = pt)

let test_counting () =
  let c = Aes.cipher ~key:(hex sp800_key) in
  let wrapped, counters = Secdb_cipher.Counting.wrap c in
  let pt = hex fips_plain in
  let ct = wrapped.Block.encrypt pt in
  ignore (wrapped.Block.encrypt pt);
  ignore (wrapped.Block.decrypt ct);
  Alcotest.(check int) "enc calls" 2 counters.enc_calls;
  Alcotest.(check int) "dec calls" 1 counters.dec_calls;
  Alcotest.(check int) "total" 3 (Secdb_cipher.Counting.total counters);
  Alcotest.(check string) "behaviour unchanged" (Xbytes.to_hex (c.Block.encrypt pt))
    (Xbytes.to_hex ct);
  Secdb_cipher.Counting.reset counters;
  Alcotest.(check int) "reset" 0 (Secdb_cipher.Counting.total counters);
  let n, ct2 = Secdb_cipher.Counting.count_enc c (fun c -> c.Block.encrypt pt) in
  Alcotest.(check int) "count_enc" 1 n;
  Alcotest.(check string) "count_enc result" ct ct2

let test_block_helpers () =
  let c = Aes.cipher ~key:(hex sp800_key) in
  Alcotest.(check string) "zero block" (String.make 16 '\000') (Block.zero_block c);
  Alcotest.check_raises "check_block"
    (Invalid_argument "aes-128: expected 16-byte block, got 3 bytes") (fun () ->
      Block.check_block c "abc");
  let renamed = Block.map_name (fun n -> n ^ "!") c in
  Alcotest.(check string) "map_name" "aes-128!" renamed.Block.name

let suites =
  [
    ( "cipher:aes",
      [
        Alcotest.test_case "FIPS 197 vectors" `Quick test_aes_fips;
        Alcotest.test_case "SP 800-38A ECB vectors" `Quick test_aes_sp800;
        Alcotest.test_case "S-box structure" `Quick test_aes_sbox;
        Alcotest.test_case "errors" `Quick test_aes_errors;
        qc prop_aes_roundtrip;
      ] );
    ( "cipher:des",
      [
        Alcotest.test_case "classic vector" `Quick test_des_vector;
        Alcotest.test_case "weak keys" `Quick test_des_weak_keys;
        qc prop_des_complement;
        qc prop_des_roundtrip;
      ] );
    ( "cipher:instrumentation",
      [
        Alcotest.test_case "counting wrapper" `Quick test_counting;
        Alcotest.test_case "block helpers" `Quick test_block_helpers;
      ] );
  ]

(* --- table-driven AES agrees with the byte-wise reference --------------- *)

let test_aes_fast_vectors () =
  List.iter
    (fun (key, ct, _) ->
      let c = Secdb_cipher.Aes_fast.cipher ~key:(hex key) in
      check_hex "fast encrypt" ct (c.Block.encrypt (hex fips_plain));
      check_hex "fast decrypt" fips_plain (c.Block.decrypt (hex ct)))
    fips_vectors;
  let c = Secdb_cipher.Aes_fast.cipher ~key:(hex sp800_key) in
  Alcotest.(check string) "name" "aes-128-fast" c.Block.name

let prop_aes_fast_agrees =
  QCheck2.Test.make ~name:"Aes_fast = Aes on random keys and blocks" ~count:300
    QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
    (fun (key, pt) ->
      let slow = Aes.cipher ~key and fast = Secdb_cipher.Aes_fast.cipher ~key in
      let ct = slow.Block.encrypt pt in
      fast.Block.encrypt pt = ct && fast.Block.decrypt ct = pt)

let prop_aes_fast_agrees_256 =
  QCheck2.Test.make ~name:"Aes_fast = Aes (256-bit keys)" ~count:100
    QCheck2.Gen.(pair (string_size (return 32)) (string_size (return 16)))
    (fun (key, pt) ->
      let slow = Aes.cipher ~key and fast = Secdb_cipher.Aes_fast.cipher ~key in
      fast.Block.encrypt pt = slow.Block.encrypt pt)

let suites =
  suites
  @ [
      ( "cipher:aes-fast",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_aes_fast_vectors;
          qc prop_aes_fast_agrees;
          qc prop_aes_fast_agrees_256;
        ] );
    ]

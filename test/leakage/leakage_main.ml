(* The leakage gate: run the fixed-seed range-leakage bench and fail when
   any score leaves its declared interval.  Above the interval means the
   bucketized index leaks more than its documentation admits; below means
   the harness stopped measuring (a silent zero is as much a bug as a
   regression).  `dune build @leakage` — wired into @ci and ci/run.sh. *)

let () =
  let module R = Secdb_attacks.Range_leak in
  let lines = R.bench () in
  print_string (R.render lines);
  if not (List.for_all R.within lines) then begin
    prerr_endline "leakage bench: score(s) outside the pinned bounds";
    exit 1
  end

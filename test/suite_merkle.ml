open Secdb
module M = Secdb_storage.Merkle
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Etable = Secdb_query.Encrypted_table

let test_merkle_roots () =
  Alcotest.(check int) "root size" 32 (String.length (M.root [ "a"; "b"; "c" ]));
  Alcotest.(check string) "deterministic"
    (Secdb_util.Xbytes.to_hex (M.root [ "a"; "b" ]))
    (Secdb_util.Xbytes.to_hex (M.root [ "a"; "b" ]));
  Alcotest.(check bool) "order matters" false (M.root [ "a"; "b" ] = M.root [ "b"; "a" ]);
  Alcotest.(check bool) "content matters" false (M.root [ "a" ] = M.root [ "b" ]);
  Alcotest.(check bool) "length matters" false (M.root [ "a" ] = M.root [ "a"; "a" ]);
  Alcotest.(check bool) "empty distinguished" false (M.root [] = M.root [ "" ]);
  (* concatenation ambiguity is broken by per-leaf hashing *)
  Alcotest.(check bool) "no splice" false (M.root [ "ab"; "c" ] = M.root [ "a"; "bc" ])

let test_merkle_proofs () =
  let leaves = List.init 11 (fun i -> Printf.sprintf "leaf-%d" i) in
  let root = M.root leaves in
  List.iteri
    (fun i leaf ->
      let proof = M.prove leaves ~index:i in
      if not (M.verify ~root ~leaf proof) then Alcotest.fail (Printf.sprintf "proof %d" i);
      (* a proof does not validate a different leaf *)
      if M.verify ~root ~leaf:"forged" proof then Alcotest.fail "forged leaf accepted")
    leaves;
  Alcotest.check_raises "out of range" (Invalid_argument "Merkle.prove: index out of range")
    (fun () -> ignore (M.prove leaves ~index:11));
  (* single-leaf tree: empty proof *)
  Alcotest.(check bool) "singleton" true
    (M.verify ~root:(M.root [ "only" ]) ~leaf:"only" (M.prove [ "only" ] ~index:0))

let make_db () =
  let db = Encdb.create ~master:"anchor" ~profile:(Encdb.Fixed Encdb.Eax) () in
  Encdb.create_table db
    (Schema.v ~table_name:"t"
       [ Schema.column ~protection:Schema.Clear "id" Value.Kint; Schema.column "v" Value.Ktext ]);
  for i = 0 to 19 do
    ignore (Encdb.insert db ~table:"t" [ Value.Int (Int64.of_int i); Value.Text (Printf.sprintf "v%02d" i) ])
  done;
  Encdb.create_index db ~table:"t" ~col:"v";
  db

let test_db_digest () =
  let db = make_db () in
  let d0 = Encdb.digest db in
  Alcotest.(check string) "stable" (Secdb_util.Xbytes.to_hex d0)
    (Secdb_util.Xbytes.to_hex (Encdb.digest db));
  (* every kind of change moves the digest *)
  ignore (Encdb.insert db ~table:"t" [ Value.Int 99L; Value.Text "new" ]);
  let d1 = Encdb.digest db in
  Alcotest.(check bool) "insert changes digest" false (d0 = d1);
  (match Encdb.update db ~table:"t" ~row:3 ~col:"v" (Value.Text "edited") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let d2 = Encdb.digest db in
  Alcotest.(check bool) "update changes digest" false (d1 = d2);
  (match Encdb.delete_row db ~table:"t" ~row:5 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "delete changes digest" false (d2 = Encdb.digest db)

let test_suppression_attack_and_anchor () =
  (* EXP22 in miniature: per-cell AEAD misses row suppression; the anchor
     catches it *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "secdb_anchor_test" in
  let db = make_db () in
  let anchor = Encdb.digest db in
  Encdb.save db ~dir;
  Encdb.close db;
  (* the adversary tombstones row 7 in the stored file *)
  let path = Filename.concat dir "t.table" in
  let data = In_channel.with_open_bin path In_channel.input_all in
  (* the adversary edits structure only (no keys needed): reparse the file
     with an identity scheme, tombstone the victim row, re-serialise *)
  let tampered =
    match Secdb_storage.Storage.decode_table
            ~scheme:(fun _ ->
              Secdb_schemes.Cell_scheme.
                { name = "raw"; deterministic = true; parallel_safe = true;
                  encrypt = (fun _ v -> v); decrypt = (fun _ v -> Ok v) })
            data
    with
    | Ok t ->
        Etable.delete_row t ~row:7;
        Secdb_storage.Storage.encode_table t
    | Error e -> Alcotest.fail e
  in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc tampered);
  (* also drop the victim's index entries so the index stays consistent *)
  let db' =
    match Encdb.load ~master:"anchor" ~profile:(Encdb.Fixed Encdb.Eax) ~dir ~seed:9L () with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  (match Encdb.index db' ~table:"t" ~col:"v" with
  | tree -> ignore (Secdb_index.Bptree.delete tree (Value.Text "v07") ~table_row:7)
  | exception Not_found -> Alcotest.fail "index missing");
  (* silent suppression: every remaining cell verifies, queries succeed *)
  (match Encdb.select_eq db' ~table:"t" ~col:"v" (Value.Text "v03") with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "reload broken");
  (match Encdb.select_eq db' ~table:"t" ~col:"v" (Value.Text "v07") with
  | Ok [] -> () (* the victim's record is just... gone, and nothing failed *)
  | _ -> Alcotest.fail "suppression visible without anchor?");
  (* the out-of-band anchor catches it *)
  Alcotest.(check bool) "digest mismatch" false (Encdb.digest db' = anchor)

(* The verifier must reject implausible proofs outright: a SHA-256 tree
   never needs more than 64 levels, and every sibling (and the root) is
   exactly 32 bytes.  The 65-level proof below is honestly computed — its
   root matches the hash chain — so only the length cap can refuse it. *)
let test_implausible_proofs_rejected () =
  let h = Secdb_hash.Sha256.digest in
  let node acc sib = h ("\x01" ^ acc ^ sib) in
  let sib = String.make 32 's' in
  let leaf = "deep" in
  let chain_root n = List.init n (fun _ -> sib) |> List.fold_left node (h ("\x00" ^ leaf)) in
  let chain n = List.init n (fun _ -> (sib, `Right)) in
  if not (M.verify ~root:(chain_root 64) ~leaf (chain 64)) then
    Alcotest.fail "64-level proof rejected (within the bound)";
  if M.verify ~root:(chain_root 65) ~leaf (chain 65) then
    Alcotest.fail "65-level proof accepted";
  let leaves = [ "a"; "b"; "c" ] in
  let root = M.root leaves in
  let proof = M.prove leaves ~index:0 in
  if M.verify ~root ~leaf:"a" ((String.make 31 'x', `Left) :: proof) then
    Alcotest.fail "31-byte sibling accepted";
  if M.verify ~root ~leaf:"a" ((String.make 33 'x', `Right) :: proof) then
    Alcotest.fail "33-byte sibling accepted";
  if M.verify ~root:"not 32 bytes" ~leaf:"a" proof then Alcotest.fail "short root accepted"

let suites =
  [
    ( "storage:merkle",
      [
        Alcotest.test_case "roots" `Quick test_merkle_roots;
        Alcotest.test_case "inclusion proofs" `Quick test_merkle_proofs;
        Alcotest.test_case "implausible proofs rejected" `Quick test_implausible_proofs_rejected;
      ] );
    ( "storage:anchor",
      [
        Alcotest.test_case "database digest" `Quick test_db_digest;
        Alcotest.test_case "suppression attack and anchor" `Quick
          test_suppression_attack_and_anchor;
      ] );
  ]

let qc = Test_seed.qc

let prop_merkle_proofs =
  QCheck2.Test.make ~name:"random proofs verify; mutations break them" ~count:100
    QCheck2.Gen.(pair (list_size (int_range 1 40) (string_size (int_range 0 20))) (int_bound 1000))
    (fun (leaves, pick) ->
      let root = M.root leaves in
      let i = pick mod List.length leaves in
      let proof = M.prove leaves ~index:i in
      let leaf = List.nth leaves i in
      M.verify ~root ~leaf proof
      && (not (M.verify ~root ~leaf:(leaf ^ "!") proof))
      &&
      (* changing any other leaf changes the root *)
      let mutated = List.mapi (fun j l -> if j = (i + 1) mod List.length leaves then l ^ "x" else l) leaves in
      M.root mutated <> root || List.length leaves = 0)

let test_digest_survives_save_load () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "secdb_anchor_roundtrip" in
  let db = make_db () in
  let anchor = Encdb.digest db in
  Encdb.save db ~dir;
  match Encdb.load ~master:"anchor" ~profile:(Encdb.Fixed Encdb.Eax) ~dir ~seed:17L () with
  | Error e -> Alcotest.fail e
  | Ok db' ->
      Alcotest.(check string) "anchor matches after faithful save/load"
        (Secdb_util.Xbytes.to_hex anchor)
        (Secdb_util.Xbytes.to_hex (Encdb.digest db'))

let suites =
  suites
  @ [
      ( "storage:merkle-props",
        [
          qc prop_merkle_proofs;
          Alcotest.test_case "anchor survives save/load" `Quick test_digest_survives_save_load;
        ] );
    ]

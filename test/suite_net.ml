(* The networked path: wire codec roundtrips, the authenticated session
   handshake, pipelined clients against a live server compared
   byte-for-byte with the in-process dispatcher, and the failure modes —
   tampered, oversized, malformed and half-open connections. *)

open Secdb_net
module Value = Secdb_db.Value

let master = "suite-net master key"
let auth_key = Wire.auth_key_of_master master
let seed = Int64.of_int Test_seed.seed

let mkdb ?(shard = 0) () =
  (* disjoint seed and id ranges per shard, as the server API asks *)
  Secdb.Encdb.create
    ~seed:(Int64.add seed (Int64.of_int shard))
    ~master
    ~profile:(Secdb.Encdb.Fixed Secdb.Encdb.Eax)
    ~first_table_id:((shard * 1_000_000) + 1)
    ~first_index_id:((shard * 1_000_000) + 1000)
    ()

let contains ~affix s =
  let n = String.length affix in
  let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* Every test gets its own socket in a short-lived tmpdir (Unix socket
   paths must stay under ~100 bytes). *)
let with_server ?(config = Server.config ~auth_key ()) ?db f =
  let dir = Filename.temp_file "secdbnet" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let db = match db with Some db -> db | None -> fun shard -> mkdb ~shard () in
  let srv =
    match Server.create ~seed:7L ~config ~db (Wire.Unix_sock path) with
    | Ok s -> s
    | Error e -> Alcotest.failf "server: %s" e
  in
  Server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f (Wire.Unix_sock path))

let connect ?(key = auth_key) ?timeout addr =
  match Client.connect ~attempts:20 ~backoff:0.02 ?timeout ~seed ~auth_key:key addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

(* --- wire codec ---------------------------------------------------------- *)

let sample_values =
  [
    Value.Null;
    Value.Bool true;
    Value.Bool false;
    Value.Int 0L;
    Value.Int Int64.min_int;
    Value.Int Int64.max_int;
    Value.Text "";
    Value.Text "plain";
    Value.Text (String.init 256 Char.chr);
    Value.Bytes "\x00\xff\x00";
  ]

let sample_reqs =
  [
    Wire.Ping "";
    Wire.Ping (String.make 1000 'p');
    Wire.Stats `Text;
    Wire.Stats `Json;
    Wire.Sql "SELECT * FROM t WHERE v = 'x'";
    Wire.Put_cell { table = "t"; row = 123456; col = "v"; value = Value.Text "x" };
    Wire.Get_cell { table = ""; row = 0; col = "" };
    Wire.Insert_row { table = "t"; values = sample_values };
    Wire.Decrypt_column { table = "t"; col = "v" };
    Wire.Index_lookup { table = "t"; col = "v"; value = Value.Int (-7L) };
    Wire.Repl_pull { ack = 0; max = 256 };
    Wire.Repl_pull { ack = 123456; max = 1 };
    Wire.Repl_root;
  ]

let test_req_roundtrip () =
  List.iter
    (fun req ->
      match Wire.decode_req (Wire.encode_req req) with
      | Ok req' when req = req' -> ()
      | Ok _ -> Alcotest.failf "req %s decoded to a different request" (Wire.op_name req)
      | Error e -> Alcotest.failf "req %s: %s" (Wire.op_name req) e)
    sample_reqs;
  (match Wire.decode_req "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty request body accepted");
  match Wire.decode_req "\xee" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op byte accepted"

let test_resp_roundtrip () =
  let samples =
    [
      Wire.Pong "payload";
      Wire.Stats_dump "counter x 1\n";
      Wire.Updated;
      Wire.Cell_value (Value.Text "v");
      Wire.Row_id 41;
      Wire.Column [ Wire.Tombstone; Wire.Cell (Value.Int 5L); Wire.Cell_error "bad tag" ];
      Wire.Rows [ (0, sample_values); (7, []) ];
      Wire.Rows [];
      Wire.Repl_records { durable = 9; records = [ (0, "sealed-0"); (1, String.make 300 'r') ] };
      Wire.Repl_records { durable = 0; records = [] };
      Wire.Root { applied = 42; root = String.make 32 '\x5c' };
    ]
  in
  List.iter
    (fun resp ->
      match Wire.decode_resp (Wire.encode_resp resp) with
      | Ok resp' when resp = resp' -> ()
      | Ok _ -> Alcotest.fail "response decoded to a different value"
      | Error e -> Alcotest.failf "resp: %s" e)
    samples

let test_frame_roundtrip () =
  let frames =
    [
      Wire.Hello { version = Wire.protocol_version; nonce = String.make 16 'n' };
      Wire.Challenge { version = Wire.protocol_version; nonce = String.make 16 'c' };
      Wire.Auth (String.make 32 'a');
      Wire.Auth_ok (String.make 32 'o');
      Wire.Request { id = 0xABCDEF; body = "body"; mac = String.make 16 'm' };
      Wire.Response { id = 1; result = Ok "resp" };
      Wire.Response { id = 2; result = Error (Wire.App, "no such table") };
      Wire.Conn_error { code = Wire.Too_large; message = "frame of 123 bytes" };
    ]
  in
  List.iter
    (fun frame ->
      match Wire.frame_of_bytes (Wire.frame_to_bytes frame) with
      | Ok frame' when frame = frame' -> ()
      | Ok _ -> Alcotest.fail "frame decoded to a different value"
      | Error e -> Alcotest.failf "frame: %s" e)
    frames

let test_frame_truncation () =
  (* fixed-layout frames: every proper prefix is a structured decode
     error, never an exception or a bogus success *)
  let hello =
    Wire.frame_to_bytes (Wire.Hello { version = Wire.protocol_version; nonce = String.make 16 'n' })
  in
  for len = 0 to String.length hello - 1 do
    match Wire.frame_of_bytes (String.sub hello 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated hello of %d bytes decoded" len
  done;
  (* request frames end in a variable-length body plus a MAC trailer, so a
     long-enough prefix still parses — but only ever as a *different*
     request whose MAC trailer no longer covers its bytes, which the
     server rejects with a structured auth error *)
  let original = Wire.Request { id = 3; body = "truncate me"; mac = String.make 16 'm' } in
  let full = Wire.frame_to_bytes original in
  for len = 0 to String.length full - 1 do
    match Wire.frame_of_bytes (String.sub full 0 len) with
    | Error _ -> ()
    | Ok (Wire.Request { id; body; mac } as f) ->
        if f = original then Alcotest.failf "truncation at %d preserved the frame" len;
        let covered = String.length body + String.length mac in
        if id <> 3 || covered >= String.length full - 5 then
          Alcotest.failf "truncation at %d widened the frame" len
    | Ok _ -> Alcotest.failf "truncation at %d changed the frame type" len
  done;
  match Wire.frame_of_bytes "\x99rubbish" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag accepted"

let test_session_secrets () =
  let k1 = Wire.auth_key_of_master master in
  let k2 = Wire.auth_key_of_master master in
  Alcotest.(check int) "auth key length" 32 (String.length k1);
  Alcotest.(check string) "deterministic" k1 k2;
  Alcotest.(check bool) "not the master" false (k1 = master);
  let cn = String.make 16 'c' and sn = String.make 16 's' in
  let hm = Wire.handshake_mac ~auth_key:k1 ~client_nonce:cn ~server_nonce:sn in
  let am = Wire.accept_mac ~auth_key:k1 ~client_nonce:cn ~server_nonce:sn in
  let sk = Wire.session_key ~auth_key:k1 ~client_nonce:cn ~server_nonce:sn in
  Alcotest.(check bool) "domains separated" true (hm <> am && am <> sk && hm <> sk);
  let sk' = Wire.session_key ~auth_key:k1 ~client_nonce:cn ~server_nonce:(String.make 16 'z') in
  Alcotest.(check bool) "fresh per handshake" true (sk <> sk');
  Alcotest.(check int) "request mac is 16 bytes" 16
    (String.length (Wire.request_mac ~session_key:sk ~id:1 ~body:"b"))

(* --- live server --------------------------------------------------------- *)

(* One client's scripted burst; tables are per-client so concurrent
   clients do not affect each other's answers. *)
let script i =
  let t = Printf.sprintf "t%d" i in
  [
    Wire.Sql (Printf.sprintf "CREATE TABLE %s (id INT CLEAR, v TEXT)" t);
    Wire.Insert_row { table = t; values = [ Value.Int 0L; Value.Text (t ^ "-zero") ] };
    Wire.Insert_row { table = t; values = [ Value.Int 1L; Value.Text (t ^ "-one") ] };
    Wire.Insert_row { table = t; values = [ Value.Int 2L; Value.Text (t ^ "-one") ] };
    Wire.Sql (Printf.sprintf "CREATE INDEX ON %s (v)" t);
    Wire.Index_lookup { table = t; col = "v"; value = Value.Text (t ^ "-one") };
    Wire.Get_cell { table = t; row = 0; col = "v" };
    Wire.Decrypt_column { table = t; col = "v" };
    (* point lookups — the snapshot fast path on the server — must stay
       byte-identical to the in-process dispatcher, indexed or not *)
    Wire.Sql (Printf.sprintf "SELECT id, v FROM %s WHERE v = '%s-one' ORDER BY id DESC" t t);
    Wire.Sql (Printf.sprintf "SELECT v FROM %s WHERE id = 1" t);
    Wire.Sql (Printf.sprintf "SELECT count(*) FROM %s" t);
    (* range queries over the wire: the bucketized index is built on the
       shard, the plan is pinned by EXPLAIN, and BETWEEN answers (snapshot
       fast path included) must match the in-process dispatcher *)
    Wire.Sql (Printf.sprintf "CREATE RANGE INDEX ON %s (id) BUCKETS 2" t);
    Wire.Sql (Printf.sprintf "EXPLAIN SELECT v FROM %s WHERE id BETWEEN 0 AND 2" t);
    Wire.Sql (Printf.sprintf "SELECT id, v FROM %s WHERE id BETWEEN 1 AND 2 ORDER BY id DESC" t);
    Wire.Sql (Printf.sprintf "SELECT v FROM %s WHERE id BETWEEN 5 AND 3" t);
    Wire.Ping (t ^ " done");
  ]

let encode_result = function
  | Ok resp -> "ok:" ^ Wire.encode_resp resp
  | Error (code, msg) -> Printf.sprintf "err:%d:%s" (Wire.err_code_to_int code) msg

let client_error_to_result = function
  | Ok resp -> Ok resp
  | Error (Client.Remote (code, msg)) -> Error (code, msg)
  | Error e -> Alcotest.failf "client transport error: %s" (Client.error_to_string e)

let test_pipelined_matches_inprocess ~shards () =
  let nclients = 4 in
  with_server ~config:(Server.config ~auth_key ~shards ()) @@ fun addr ->
  let results = Array.make nclients [] in
  let workers =
    List.init nclients (fun i ->
        Thread.create
          (fun () ->
            let c = connect addr in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                results.(i) <-
                  Client.pipeline c (script i)
                  |> List.map (fun r -> encode_result (client_error_to_result r))))
          ())
  in
  List.iter Thread.join workers;
  (* replay the same scripts against a fresh db through the dispatcher the
     server itself uses: the networked bytes must be identical *)
  let ref_db = mkdb () in
  for i = 0 to nclients - 1 do
    let expected = List.map (fun req -> encode_result (Server.dispatch ref_db req)) (script i) in
    List.iteri
      (fun j (exp, got) ->
        if exp <> got then
          Alcotest.failf "client %d request %d: wire result differs from in-process" i j)
      (List.combine expected results.(i))
  done

(* A BETWEEN answered over the wire must be byte-identical to the
   in-process dispatcher on the same data, for any data set and any
   window — duplicates, empty tables, bounds outside the domain and
   inverted windows included. *)
let prop_wire_range_matches_inprocess =
  Test_seed.qc
    (QCheck.Test.make ~count:8 ~name:"wire BETWEEN matches in-process dispatch"
       QCheck.(
         triple
           (list_of_size Gen.(int_range 0 24) (int_range 0 50))
           (int_range (-5) 55) (int_range (-5) 55))
       (fun (vals, lo, hi) ->
         let stmts =
           [ Wire.Sql "CREATE TABLE r (id INT CLEAR, v TEXT)" ]
           @ List.map
               (fun n ->
                 Wire.Insert_row
                   {
                     table = "r";
                     values = [ Value.Int (Int64.of_int n); Value.Text (Printf.sprintf "v%d" n) ];
                   })
               vals
           @ [
               Wire.Sql "CREATE RANGE INDEX ON r (id) BUCKETS 4";
               Wire.Sql (Printf.sprintf "EXPLAIN SELECT v FROM r WHERE id BETWEEN %d AND %d" lo hi);
               Wire.Sql (Printf.sprintf "SELECT id, v FROM r WHERE id BETWEEN %d AND %d" lo hi);
               Wire.Sql (Printf.sprintf "SELECT count(*) FROM r WHERE id BETWEEN %d AND %d" lo hi);
             ]
         in
         let wire =
           with_server ~config:(Server.config ~auth_key ~shards:1 ()) @@ fun addr ->
           let c = connect addr in
           Fun.protect
             ~finally:(fun () -> Client.close c)
             (fun () ->
               Client.pipeline c stmts
               |> List.map (fun r -> encode_result (client_error_to_result r)))
         in
         let ref_db = mkdb () in
         let expected = List.map (fun req -> encode_result (Server.dispatch ref_db req)) stmts in
         wire = expected))

(* JOIN and ORDER BY over the wire on a sharded server.  Both joined
   tables are chosen (by the same FNV routing the server uses) to land on
   one shard, so the shard's executor owns both; the pipelined responses
   must be byte-identical to the in-process dispatcher on one database.
   A JOIN whose tables live on different shards has no such executor and
   must come back as a structured error. *)
let test_sharded_join () =
  let shards = 4 in
  let slot n = Secdb_db.Shard.key_index ~shards n in
  let rec pick i p =
    let n = Printf.sprintf "jt%d" i in
    if p n then n else pick (i + 1) p
  in
  let t1 = "jt0" in
  let t2 = pick 1 (fun n -> slot n = slot t1) in
  let t3 = pick 1 (fun n -> slot n <> slot t1) in
  let stmts =
    List.map
      (fun s -> Wire.Sql s)
      [
        Printf.sprintf "CREATE TABLE %s (id INT CLEAR, v TEXT)" t1;
        Printf.sprintf "CREATE TABLE %s (id INT CLEAR, w TEXT)" t2;
        Printf.sprintf "INSERT INTO %s VALUES (1, 'a')" t1;
        Printf.sprintf "INSERT INTO %s VALUES (2, 'b')" t1;
        Printf.sprintf "INSERT INTO %s VALUES (3, 'c')" t1;
        Printf.sprintf "INSERT INTO %s VALUES (2, 'x')" t2;
        Printf.sprintf "INSERT INTO %s VALUES (3, 'y')" t2;
        Printf.sprintf "INSERT INTO %s VALUES (3, 'z')" t2;
        Printf.sprintf "CREATE INDEX ON %s (id)" t2;
        Printf.sprintf "SELECT * FROM %s JOIN %s ON %s.id = %s.id" t1 t2 t1 t2;
        Printf.sprintf "SELECT v, w FROM %s JOIN %s ON %s.id = %s.id ORDER BY w DESC LIMIT 2"
          t1 t2 t1 t2;
        (* ambiguous unqualified id: the structured error must match too *)
        Printf.sprintf "SELECT * FROM %s JOIN %s ON id = id" t1 t2;
        Printf.sprintf "EXPLAIN SELECT * FROM %s JOIN %s ON %s.id = %s.id" t1 t2 t1 t2;
      ]
  in
  with_server ~config:(Server.config ~auth_key ~shards ()) @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let wire =
    Client.pipeline c stmts |> List.map (fun r -> encode_result (client_error_to_result r))
  in
  let ref_db = mkdb () in
  let expected = List.map (fun req -> encode_result (Server.dispatch ref_db req)) stmts in
  Alcotest.(check (list string)) "pipelined JOINs match the in-process path" expected wire;
  (* cross-shard: refused structurally, never answered from half the data *)
  ignore
    (client_error_to_result
       (Client.call c (Wire.Sql (Printf.sprintf "CREATE TABLE %s (id INT CLEAR, u TEXT)" t3))));
  match
    client_error_to_result
      (Client.call c (Wire.Sql (Printf.sprintf "SELECT * FROM %s JOIN %s ON %s.id = %s.id" t1 t3 t1 t3)))
  with
  | Error (Wire.App, msg) ->
      Alcotest.(check bool) "names the refusal" true (contains ~affix:"cross-shard JOIN" msg)
  | Ok _ -> Alcotest.fail "cross-shard JOIN was answered"
  | Error (code, msg) ->
      Alcotest.failf "wrong error class %d: %s" (Wire.err_code_to_int code) msg

(* --- snapshot fast path --------------------------------------------------- *)

let counter_value dump name =
  String.split_on_char '\n' dump
  |> List.find_map (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ "counter"; n; v ] when n = name -> int_of_string_opt v
         | _ -> None)
  |> Option.value ~default:0

let test_snapshot_fast_path () =
  (* metric mutation is gated on the Obs switch; the hit counter is the
     proof the fast path actually fired *)
  Secdb_obs.Obs.with_enabled @@ fun () ->
  with_server ~config:(Server.config ~auth_key ~shards:2 ()) @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sql q =
    match Client.call c (Wire.Sql q) with
    | Ok (Wire.Outcome o) -> o
    | Ok _ -> Alcotest.failf "sql %s: unexpected response form" q
    | Error e -> Alcotest.failf "sql %s: %s" q (Client.error_to_string e)
  in
  let stats () =
    match Client.call c (Wire.Stats `Text) with
    | Ok (Wire.Stats_dump d) -> d
    | Ok _ | Error _ -> Alcotest.fail "stats rpc"
  in
  ignore (sql "CREATE TABLE kv (k TEXT CLEAR, v TEXT)");
  ignore (sql "CREATE INDEX ON kv (k)");
  ignore (sql "INSERT INTO kv VALUES ('a', 'one')");
  let hits0 = counter_value (stats ()) "shard.snapshot_hits" in
  (match sql "SELECT v FROM kv WHERE k = 'a'" with
  | Secdb_sql.Engine.Rows { rows = [ [ Value.Text "one" ] ]; _ } -> ()
  | _ -> Alcotest.fail "point select answer");
  let hits1 = counter_value (stats ()) "shard.snapshot_hits" in
  Alcotest.(check bool) "served from the snapshot" true (hits1 > hits0);
  (* read-your-writes on one connection: the snapshot is republished
     before a mutation's response, so the next select sees it *)
  ignore (sql "UPDATE kv SET v = 'two' WHERE k = 'a'");
  (match sql "SELECT v FROM kv WHERE k = 'a'" with
  | Secdb_sql.Engine.Rows { rows = [ [ Value.Text "two" ] ]; _ } -> ()
  | _ -> Alcotest.fail "stale read after own write");
  (* BETWEEN rides the same snapshot path: the hit counter must move *)
  ignore (sql "CREATE RANGE INDEX ON kv (k) BUCKETS 2");
  let hits2 = counter_value (stats ()) "shard.snapshot_hits" in
  (match sql "SELECT v FROM kv WHERE k BETWEEN 'a' AND 'z'" with
  | Secdb_sql.Engine.Rows { rows = [ [ Value.Text "two" ] ]; _ } -> ()
  | _ -> Alcotest.fail "range select answer");
  let hits3 = counter_value (stats ()) "shard.snapshot_hits" in
  Alcotest.(check bool) "range served from the snapshot" true (hits3 > hits2);
  ignore (sql "DELETE FROM kv WHERE k = 'a'");
  match sql "SELECT v FROM kv WHERE k = 'a'" with
  | Secdb_sql.Engine.Rows { rows = []; _ } -> ()
  | _ -> Alcotest.fail "deleted row still visible through the snapshot"

let test_interleaved_single_connection () =
  (* two in-flight batches interleaved on one connection: responses match
     their request ids, not arrival luck *)
  with_server @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let post req = match Client.post c req with Ok id -> id | Error e -> Alcotest.failf "post: %s" (Client.error_to_string e) in
  let a = List.map (fun i -> (post (Wire.Ping (Printf.sprintf "a%d" i)), Printf.sprintf "a%d" i)) [ 1; 2; 3 ] in
  let b = List.map (fun i -> (post (Wire.Ping (Printf.sprintf "b%d" i)), Printf.sprintf "b%d" i)) [ 1; 2; 3 ] in
  (* await out of posting order on purpose *)
  List.iter
    (fun (id, payload) ->
      match Client.await c id with
      | Ok (Wire.Pong p) -> Alcotest.(check string) "matched by id" payload p
      | Ok _ -> Alcotest.fail "not a pong"
      | Error e -> Alcotest.failf "await: %s" (Client.error_to_string e))
    (b @ a)

let test_tampered_request () =
  with_server @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.post_corrupted c (Wire.Sql "SELECT 1") with
  | Error e -> Alcotest.failf "post: %s" (Client.error_to_string e)
  | Ok id -> (
      match Client.await c id with
      | Error (Client.Remote (Wire.Auth, _)) -> ()
      | Error e -> Alcotest.failf "expected auth error, got %s" (Client.error_to_string e)
      | Ok _ -> Alcotest.fail "tampered request was executed"));
  (* the connection survives a rejected request *)
  match Client.call c (Wire.Ping "still here") with
  | Ok (Wire.Pong "still here") -> ()
  | Ok _ | Error _ -> Alcotest.fail "connection did not survive the tamper rejection"

let test_wrong_credential () =
  with_server @@ fun addr ->
  match
    Client.connect ~attempts:20 ~backoff:0.02
      ~auth_key:(Wire.auth_key_of_master "some other master") addr
  with
  | Ok _ -> Alcotest.fail "handshake succeeded with the wrong credential"
  | Error e -> Alcotest.(check bool) ("mentions auth: " ^ e) true (contains ~affix:"auth" e)

let test_oversized_frame () =
  let config = Server.config ~auth_key ~max_frame:4096 () in
  with_server ~config @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.call c (Wire.Sql (String.make 8192 'x')) with
  | Error (Client.Conn (Wire.Too_large, _)) -> ()
  | Error e -> Alcotest.failf "expected too-large, got %s" (Client.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame accepted"

let test_malformed_hello () =
  with_server @@ fun addr ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) @@ fun () ->
  Unix.connect fd (Wire.sockaddr_of_addr addr);
  (* tag 0x7f is no frame we know: [len=5][tag][4 junk bytes] *)
  let junk = "\x00\x00\x00\x05\x7fjunk" in
  ignore (Unix.write_substring fd junk 0 (String.length junk));
  match Wire.read_frame ~timeout:5. fd with
  | Ok (Wire.Conn_error { code = Wire.Frame; _ }) -> ()
  | Ok _ -> Alcotest.fail "expected a structured frame error"
  | Error e -> Alcotest.failf "read: %s" (Wire.io_error_to_string e)

let test_half_open_hits_read_timeout () =
  let config = Server.config ~auth_key ~read_timeout:0.3 () in
  with_server ~config @@ fun addr ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) @@ fun () ->
  Unix.connect fd (Wire.sockaddr_of_addr addr);
  (* send nothing: the server must give up on the half-open peer and
     close, which we observe as EOF well before the 10s cap *)
  let t0 = Unix.gettimeofday () in
  match Wire.read_frame ~timeout:10. fd with
  | Error `Eof ->
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) (Printf.sprintf "timely close (%.2fs)" dt) true (dt < 5.)
  | Ok _ -> Alcotest.fail "unexpected frame from a silent connection"
  | Error e -> Alcotest.failf "read: %s" (Wire.io_error_to_string e)

let test_graceful_stop_drains () =
  with_server @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.call c (Wire.Ping "before stop") with
  | Ok (Wire.Pong "before stop") -> ()
  | Ok _ | Error _ -> Alcotest.fail "ping before stop failed"
(* with_server's finally runs Server.stop: reaching the end without
   hanging is the drain assertion *)

let suites =
  [
    ( "net:wire",
      [
        Alcotest.test_case "request codec roundtrip" `Quick test_req_roundtrip;
        Alcotest.test_case "response codec roundtrip" `Quick test_resp_roundtrip;
        Alcotest.test_case "frame codec roundtrip" `Quick test_frame_roundtrip;
        Alcotest.test_case "truncated frames are structured errors" `Quick test_frame_truncation;
        Alcotest.test_case "session secrets are derived and domain-separated" `Quick
          test_session_secrets;
      ] );
    ( "net:server",
      [
        Alcotest.test_case "pipelined clients match the in-process path" `Quick
          (test_pipelined_matches_inprocess ~shards:1);
        Alcotest.test_case "pipelined clients match across 4 shards" `Quick
          (test_pipelined_matches_inprocess ~shards:4);
        prop_wire_range_matches_inprocess;
        Alcotest.test_case "sharded JOINs match in-process, cross-shard refused" `Quick
          test_sharded_join;
        Alcotest.test_case "point lookups ride the snapshot fast path" `Quick
          test_snapshot_fast_path;
        Alcotest.test_case "interleaved batches match responses by id" `Quick
          test_interleaved_single_connection;
        Alcotest.test_case "tampered request -> auth error, connection survives" `Quick
          test_tampered_request;
        Alcotest.test_case "wrong credential is refused" `Quick test_wrong_credential;
        Alcotest.test_case "oversized frame -> structured too-large" `Quick test_oversized_frame;
        Alcotest.test_case "malformed hello -> structured frame error" `Quick test_malformed_hello;
        Alcotest.test_case "half-open connection hits the read timeout" `Quick
          test_half_open_hits_read_timeout;
        Alcotest.test_case "stop drains cleanly" `Quick test_graceful_stop_drains;
      ] );
  ]

(* The bulk-encryption engine's equivalence obligations:

   - the [Block.into] kernels agree byte-for-byte with the [string -> string]
     reference closures, at arbitrary buffer offsets, for every cipher;
   - every batch entry point (cells, table, index bulk load) produces output
     byte-identical to its sequential counterpart, pool or no pool;
   - the pool itself preserves order and propagates exceptions. *)

open Secdb_util
module Block = Secdb_cipher.Block
module Mode = Secdb_modes.Mode
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Address = Secdb_db.Address
module Cell_scheme = Secdb_schemes.Cell_scheme
module Fixed_cell = Secdb_schemes.Fixed_cell
module B = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table

let key = Xbytes.of_hex "000102030405060708090a0b0c0d0e0f"
let key_mac = Xbytes.of_hex "ffeeddccbbaa99887766554433221100"
let aes_fast = Secdb_cipher.Aes_fast.cipher ~key
let hex = Xbytes.to_hex

let ciphers =
  [
    ("aes-fast", aes_fast);
    ("aes", Secdb_cipher.Aes.cipher ~key);
    ("des", Secdb_cipher.Des.cipher ~key:(String.sub key 0 8));
    ("des3", Secdb_cipher.Des3.cipher ~key:(key ^ String.sub key_mac 0 8));
  ]

(* --- kernel vs reference closures ------------------------------------- *)

let test_into_matches_string () =
  let rng = Rng.create ~seed:4242L () in
  List.iter
    (fun (name, (c : Block.t)) ->
      let bs = c.Block.block_size in
      for _ = 1 to 50 do
        (* random offsets into oversized buffers, including src = dst *)
        let src_off = Rng.int rng 24 and dst_off = Rng.int rng 24 in
        let block = Rng.bytes rng bs in
        let src = Bytes.of_string (Rng.bytes rng (bs + 48)) in
        Bytes.blit_string block 0 src src_off bs;
        let dst = Bytes.create (bs + 48) in
        Block.encrypt_into c src ~src_off dst ~dst_off;
        Alcotest.(check string)
          (name ^ " encrypt_into")
          (hex (c.Block.encrypt block))
          (hex (Bytes.sub_string dst dst_off bs));
        (* in-place: same buffer, same offset *)
        Block.encrypt_into c src ~src_off src ~dst_off:src_off;
        Alcotest.(check string)
          (name ^ " encrypt_into in place")
          (hex (c.Block.encrypt block))
          (hex (Bytes.sub_string src src_off bs));
        let ct = c.Block.encrypt block in
        let csrc = Bytes.of_string (Rng.bytes rng (bs + 48)) in
        Bytes.blit_string ct 0 csrc src_off bs;
        Block.decrypt_into c csrc ~src_off dst ~dst_off;
        Alcotest.(check string)
          (name ^ " decrypt_into")
          (hex block)
          (hex (Bytes.sub_string dst dst_off bs))
      done)
    ciphers;
  (* the native fast path must bounds-check its raw-buffer ranges *)
  Alcotest.check_raises "aes-fast range check"
    (Invalid_argument "Aes_fast.encrypt_into: 16-byte block out of range")
    (fun () ->
      Block.encrypt_into aes_fast (Bytes.create 16) ~src_off:1 (Bytes.create 16)
        ~dst_off:0)

let test_modes_agree_across_paths () =
  (* a cipher with the fast path stripped exercises the generic fallback;
     every mode must produce identical bytes on both *)
  let stripped (c : Block.t) =
    Block.v ~name:(c.Block.name ^ "-stripped") ~block_size:c.Block.block_size
      ~encrypt:c.Block.encrypt ~decrypt:c.Block.decrypt ()
  in
  let rng = Rng.create ~seed:99L () in
  List.iter
    (fun (name, (c : Block.t)) ->
      let s = stripped c in
      let bs = c.Block.block_size in
      let iv = Rng.bytes rng bs in
      List.iter
        (fun nblocks ->
          let data = Rng.bytes rng (bs * nblocks) in
          let pairs =
            [
              ("ecb", Mode.ecb_encrypt c data, Mode.ecb_encrypt s data);
              ("ecb-dec", Mode.ecb_decrypt c data, Mode.ecb_decrypt s data);
              ("cbc", Mode.cbc_encrypt c ~iv data, Mode.cbc_encrypt s ~iv data);
              ("cbc-dec", Mode.cbc_decrypt c ~iv data, Mode.cbc_decrypt s ~iv data);
              ("ctr", Mode.ctr c ~nonce:iv data, Mode.ctr s ~nonce:iv data);
              ("ofb", Mode.ofb c ~iv data, Mode.ofb s ~iv data);
              ("cfb", Mode.cfb_encrypt c ~iv data, Mode.cfb_encrypt s ~iv data);
              ("cfb-dec", Mode.cfb_decrypt c ~iv data, Mode.cfb_decrypt s ~iv data);
            ]
          in
          List.iter
            (fun (m, a, b) ->
              Alcotest.(check string) (Printf.sprintf "%s %s %d" name m nblocks) (hex a) (hex b))
            pairs)
        [ 1; 2; 7 ])
    ciphers

(* --- pool semantics ---------------------------------------------------- *)

let test_pool_order_and_results () =
  Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 1000 (fun i -> i) in
      let out = Pool.map_array pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * x) input) out;
      let out1 = Pool.mapi_array pool (fun i x -> i + x) input in
      Alcotest.(check (array int)) "mapi indices" (Array.map (fun x -> 2 * x) input) out1;
      Alcotest.(check (list int)) "map_list" [ 2; 4; 6 ] (Pool.map_list pool (( * ) 2) [ 1; 2; 3 ]);
      Alcotest.(check (array int)) "empty input" [||] (Pool.map_array pool (fun x -> x) [||]);
      (* tiny chunks exercise the self-scheduling cursor *)
      let out2 = Pool.map_array ~chunk:1 pool (fun x -> x + 1) input in
      Alcotest.(check (array int)) "chunk=1" (Array.map (( + ) 1) input) out2)

let test_pool_exceptions () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
          ignore
            (Pool.map_array pool
               (fun x -> if x = 37 then failwith "boom" else x)
               (Array.init 100 (fun i -> i))));
      (* the pool survives a failed batch *)
      Alcotest.(check (array int)) "pool reusable after failure" [| 2; 4 |]
        (Pool.map_array pool (( * ) 2) [| 1; 2 |]))

let test_pool_lifecycle () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "domains" 3 (Pool.domains pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "create rejects 0" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0 ()));
  (* a 1-domain pool runs everything in the caller *)
  Pool.with_pool ~domains:1 (fun p ->
      Alcotest.(check (array int)) "degenerate pool" [| 1; 4; 9 |]
        (Pool.map_array p (fun x -> x * x) [| 1; 2; 3 |]))

(* --- batch == sequential for every scheme ------------------------------ *)

let mu = Address.mu_sha1 ~width:16

let all_schemes () =
  let e = Secdb_schemes.Einst.cbc_zero_iv aes_fast in
  let eax = Secdb_aead.Eax.make aes_fast in
  [
    Secdb_schemes.Cell_append.make ~e ~mu;
    Secdb_schemes.Cell_xor.make ~e ~mu ~strip_zero_extension:true
      ~validate:(fun _ -> true) ();
    Fixed_cell.make_derived ~aead:eax ~nonce_key:key_mac ();
    (* stateful nonce: not parallel_safe; the batch path must fall back to
       the sequential order and still match a hand-rolled loop *)
    Fixed_cell.make ~aead:eax
      ~nonce:(Secdb_aead.Nonce.counter ~size:eax.Secdb_aead.Aead.nonce_size ())
      ();
  ]

let test_cells_parallel_equals_sequential () =
  let jobs =
    Array.init 129 (fun i ->
        (Address.v ~table:2 ~row:i ~col:1, Printf.sprintf "value-%04d-%s" i (String.make (i mod 61) 'x')))
  in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (s : Cell_scheme.t) ->
          let seq = Cell_scheme.encrypt_cells s jobs in
          Alcotest.(check int) (s.name ^ " length") (Array.length jobs) (Array.length seq);
          let dec =
            Cell_scheme.decrypt_cells ~pool s
              (Array.mapi (fun i ct -> (fst jobs.(i), ct)) seq)
          in
          Array.iteri
            (fun i r ->
              match r with
              | Ok v -> Alcotest.(check string) (s.name ^ " roundtrip") (snd jobs.(i)) v
              | Error e -> Alcotest.fail (s.name ^ ": " ^ e))
            dec;
          if s.parallel_safe then begin
            let par = Cell_scheme.encrypt_cells ~pool s jobs in
            Array.iteri
              (fun i ct ->
                Alcotest.(check string) (s.name ^ " parallel byte-identical") (hex seq.(i)) (hex ct))
              par
          end)
        (all_schemes ()))

let test_derived_nonce () =
  let a1 = Address.v ~table:1 ~row:0 ~col:0 and a2 = Address.v ~table:1 ~row:1 ~col:0 in
  let n1 = Fixed_cell.derived_nonce ~key:key_mac ~size:16 a1 in
  Alcotest.(check int) "size" 16 (String.length n1);
  Alcotest.(check string) "deterministic" (hex n1) (hex (Fixed_cell.derived_nonce ~key:key_mac ~size:16 a1));
  Alcotest.(check bool) "address-dependent" false (n1 = Fixed_cell.derived_nonce ~key:key_mac ~size:16 a2);
  Alcotest.(check bool) "key-dependent" false (n1 = Fixed_cell.derived_nonce ~key:key ~size:16 a1);
  Alcotest.check_raises "size check" (Invalid_argument "Fixed_cell.derived_nonce: bad size")
    (fun () -> ignore (Fixed_cell.derived_nonce ~key ~size:0 a1))

let test_table_batch () =
  let schema =
    Schema.v ~table_name:"bulk"
      [
        Schema.column ~protection:Schema.Clear "id" Value.Kint;
        Schema.column "v" Value.Ktext;
      ]
  in
  let scheme _ = Fixed_cell.make_derived ~aead:(Secdb_aead.Eax.make aes_fast) ~nonce_key:key_mac () in
  let rows =
    List.init 67 (fun i ->
        [ Value.Int (Int64.of_int i); Value.Text (Printf.sprintf "cell %d" i) ])
  in
  Pool.with_pool ~domains:4 (fun pool ->
      let a = Etable.create ~id:1 schema ~scheme in
      List.iter (fun r -> ignore (Etable.insert a r)) rows;
      let b = Etable.create ~id:1 schema ~scheme in
      Etable.insert_many ~pool b rows;
      Alcotest.(check int) "row count" (Etable.nrows a) (Etable.nrows b);
      for row = 0 to Etable.nrows a - 1 do
        Alcotest.(check (option string)) "stored bytes identical"
          (Etable.raw_ciphertext a ~row ~col:1)
          (Etable.raw_ciphertext b ~row ~col:1)
      done;
      Etable.delete_row b ~row:3;
      let dec = Etable.decrypt_column ~pool b ~col:1 in
      Array.iteri
        (fun row r ->
          match r with
          | None -> Alcotest.(check int) "only the tombstone" 3 row
          | Some (Ok v) ->
              Alcotest.(check string) "column decrypt"
                (Printf.sprintf "cell %d" row)
                (match v with Value.Text s -> s | _ -> "?")
          | Some (Error e) -> Alcotest.fail e)
        dec;
      (* arity failure leaves the table untouched *)
      Alcotest.check_raises "bad arity rejected"
        (Invalid_argument "Encrypted_table.insert: expected 2 values, got 1") (fun () ->
          Etable.insert_many ~pool b [ [ Value.Int 0L ] ]);
      Alcotest.(check int) "nothing appended" (List.length rows) (Etable.nrows b))

let test_bulk_load_batch () =
  let entries = List.init 233 (fun i -> (Value.Text (Printf.sprintf "k%05d" (i / 3)), i)) in
  let codec = Secdb_schemes.Index3.codec ~e:(Secdb_schemes.Einst.cbc_zero_iv aes_fast) in
  Pool.with_pool ~domains:4 (fun pool ->
      let seq = B.bulk_load ~id:7 ~codec entries in
      let par = B.bulk_load ~pool ~id:7 ~codec entries in
      Alcotest.(check bool) "snapshots identical" true (B.snapshot seq = B.snapshot par);
      (match B.validate par with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check (list int)) "find" [ 30; 31; 32 ] (B.find par (Value.Text "k00010"));
      (* an impure codec must take the sequential path and still build the
         same tree as the pool-less call *)
      let rng1 = Rng.create ~seed:7L () and rng2 = Rng.create ~seed:7L () in
      let impure rng =
        Secdb_schemes.Index12.codec
          ~e:(Secdb_schemes.Einst.cbc_zero_iv aes_fast)
          ~mac_cipher:(Secdb_cipher.Aes_fast.cipher ~key:key_mac)
          ~rng ~indexed_table:8 ~indexed_col:1 ()
      in
      let i1 = B.bulk_load ~id:8 ~codec:(impure rng1) entries in
      let i2 = B.bulk_load ~pool ~id:8 ~codec:(impure rng2) entries in
      Alcotest.(check bool) "impure codec: identical via sequential fallback" true
        (B.snapshot i1 = B.snapshot i2))

let suites =
  [
    ( "bulk:kernel",
      [
        Alcotest.test_case "into agrees with string closures" `Quick test_into_matches_string;
        Alcotest.test_case "modes agree across paths" `Quick test_modes_agree_across_paths;
      ] );
    ( "bulk:pool",
      [
        Alcotest.test_case "order and results" `Quick test_pool_order_and_results;
        Alcotest.test_case "exception propagation" `Quick test_pool_exceptions;
        Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
      ] );
    ( "bulk:batch",
      [
        Alcotest.test_case "cells: parallel == sequential" `Quick
          test_cells_parallel_equals_sequential;
        Alcotest.test_case "derived nonces" `Quick test_derived_nonce;
        Alcotest.test_case "table insert_many/decrypt_column" `Quick test_table_batch;
        Alcotest.test_case "index bulk load" `Quick test_bulk_load_batch;
      ] );
  ]

(* Test runner: each Suite_* module contributes alcotest suites. *)
let () =
  Alcotest.run "secdb"
    (List.concat
       [
         Suite_util.suites;
         Suite_cipher.suites;
         Suite_hash.suites;
         Suite_modes.suites;
         Suite_mac.suites;
         Suite_aead.suites;
         Suite_db.suites;
         Suite_index.suites;
         Suite_schemes.suites;
         Suite_attacks.suites;
         Suite_query.suites;
         Suite_storage.suites;
         Suite_integration.suites;
         Suite_props.suites;
         Suite_sql.suites;
         Suite_planner.suites;
         Suite_merkle.suites;
         Suite_sql_diff.suites;
         Suite_pager.suites;
         Suite_crash.suites;
         Suite_paged.suites;
         Suite_oplog.suites;
         Suite_core.suites;
         Suite_bulk.suites;
         Suite_obs.suites;
         Suite_net.suites;
         Suite_repl.suites;
       ])

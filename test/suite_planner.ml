(* Cost-model planner: deterministic tie-breaking, the cardinality
   gauges, and an oracle that compares the adaptive executor, every
   forced candidate plan, the snapshot fast path and a plaintext
   decrypt-all reference on random tables and random JOIN / ORDER BY /
   BETWEEN workloads. *)

open Secdb
module Value = Secdb_db.Value
module A = Secdb_sql.Ast
module P = Secdb_sql.Parser
module E = Secdb_sql.Engine
module Pl = Secdb_sql.Plan
module Snap = Secdb_sql.Snapshot
module Metrics = Secdb_obs.Metrics

let exec db sql =
  match E.exec db sql with Ok r -> r | Error e -> Alcotest.fail (sql ^ ": " ^ e)

(* --- deterministic tie-breaking ------------------------------------------- *)

let test_tie_break () =
  (* equal-cost candidates fall to the pinned ranks, never to float noise
     or hash order *)
  let scan access cost = Pl.Scan { table = "t"; access; cost } in
  let ip = Pl.Index_probe { col = "c"; lo = None; hi = None; estimate = 0.5 } in
  let bs = Pl.Bucket_scan { col = "c"; lo = None; hi = None; buckets = 4; estimate = 0.5 } in
  Alcotest.(check bool) "exact index beats bucket at equal cost" true
    (Pl.compare (scan ip 10.) (scan bs 10.) < 0);
  Alcotest.(check bool) "bucket beats full scan at equal cost" true
    (Pl.compare (scan bs 10.) (scan Pl.Seq_scan 10.) < 0);
  Alcotest.(check bool) "cheaper wins regardless of rank" true
    (Pl.compare (scan Pl.Seq_scan 9.) (scan ip 10.) < 0);
  (* a column carrying BOTH an exact and a range index: the choice is a
     function of the maintained stats alone, identical across session
     seeds and repeated calls, and the exact index is the pinned winner *)
  let build seed =
    let db =
      Encdb.create ~seed:(Int64.of_int seed) ~master:"tie" ~profile:(Encdb.Fixed Encdb.Eax) ()
    in
    ignore (exec db "CREATE TABLE t (id INT CLEAR, v INT)");
    for i = 0 to 49 do
      ignore (exec db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 2)))
    done;
    ignore (exec db "CREATE INDEX ON t (v)");
    ignore (exec db "CREATE RANGE INDEX ON t (v) BUCKETS 4");
    db
  in
  let q = "SELECT * FROM t WHERE v BETWEEN 10 AND 20" in
  let plan db =
    match P.parse q with Ok (A.Select s) -> E.plan_of_select db s | _ -> Alcotest.fail "parse"
  in
  let db1 = build 1 and db2 = build 999 in
  Alcotest.(check string) "same plan across seeds" (Pl.name (plan db1)) (Pl.name (plan db2));
  Alcotest.(check string) "stable across calls" (Pl.name (plan db1)) (Pl.name (plan db1));
  (match plan db1 with
  | Pl.Scan { access = Pl.Index_probe _; _ } -> ()
  | p -> Alcotest.failf "expected the exact index to win, got %s" (Pl.name p));
  (* both paths stay live candidates *)
  let names =
    match P.parse q with
    | Ok (A.Select s) -> List.map Pl.name (E.candidate_plans db1 s)
    | _ -> Alcotest.fail "parse"
  in
  Alcotest.(check bool) "bucket still a candidate" true (List.mem "bucket" names);
  Alcotest.(check bool) "seq still a candidate" true (List.mem "seq" names)

(* --- cardinality gauges ---------------------------------------------------- *)

let test_row_gauges () =
  Secdb_obs.Obs.with_enabled @@ fun () ->
  let db = Encdb.create ~master:"gauges" ~profile:(Encdb.Fixed Encdb.Eax) () in
  ignore (exec db "CREATE TABLE g (id INT CLEAR, v INT)");
  for i = 0 to 9 do
    ignore (exec db (Printf.sprintf "INSERT INTO g VALUES (%d, %d)" i i))
  done;
  ignore (exec db "DELETE FROM g WHERE v BETWEEN 0 AND 2");
  Alcotest.(check int) "live_rows tracks inserts and deletes" 7
    (Encdb.live_rows db ~table:"g");
  Alcotest.(check int) "db.rows gauge mirrors live_rows" 7
    (Metrics.gauge_value (Metrics.gauge ~labels:[ ("table", "g") ] "db.rows"))

(* --- oracle ----------------------------------------------------------------

   t1 (id INT CLEAR, k INT, a INT) and t2 (id INT CLEAR, k INT, b INT)
   with random rows (k nullable), random index layouts, random queries.
   The plaintext reference replicates the engine's canonical semantics
   over plain value arrays: candidates ascending by row id — join outputs
   by (left row, right row) — then residual filter, stable ORDER BY sort,
   LIMIT.  Every result is compared as an ordered list; without ORDER BY
   the canonical order itself is the contract. *)

type query =
  | Single of A.expr option * (string * A.order) option * int option
  | Join of A.expr option * (string * A.order) option * int option

type scenario = {
  rows1 : (int option * int) list;  (* (k, a) — None = NULL key *)
  rows2 : (int option * int) list;  (* (k, b) *)
  idx1 : bool;  (* exact index on t1.k *)
  ridx1 : int option;  (* range index on t1.k with this many buckets *)
  idx2 : bool;  (* exact index on t2.k — enables the index loop join *)
  q : query;
}

let gen_scenario =
  QCheck2.Gen.(
    let row = pair (option (int_range 0 9)) (int_range 0 99) in
    let* rows1 = list_size (int_range 0 24) row in
    let* rows2 = list_size (int_range 0 24) row in
    let* idx1 = bool in
    let* ridx1 = option (int_range 1 6) in
    let* idx2 = bool in
    let between col =
      let* lo = int_range (-2) 11 in
      let* hi = int_range (-2) 11 in
      return (A.Between (A.Col col, A.Lit (Value.Int (Int64.of_int lo)),
                         A.Lit (Value.Int (Int64.of_int hi))))
    in
    let eq col =
      let* x = int_range 0 9 in
      return (A.Cmp (A.Eq, A.Col col, A.Lit (Value.Int (Int64.of_int x))))
    in
    let* q =
      oneof
        [
          (let* where = option (oneof [ between "k"; eq "k" ]) in
           let* order_by =
             option (pair (oneofl [ "a"; "k" ]) (oneofl [ A.Asc; A.Desc ]))
           in
           let* limit = option (int_bound 10) in
           return (Single (where, order_by, limit)));
          (let* where = option (between "a") in
           let* order_by = option (pair (oneofl [ "b"; "a" ]) (oneofl [ A.Asc; A.Desc ])) in
           let* limit = option (int_bound 10) in
           return (Join (where, order_by, limit)));
        ]
    in
    return { rows1; rows2; idx1; ridx1; idx2; q })

let print_scenario sc =
  let rows l =
    String.concat ";"
      (List.map
         (fun (k, x) ->
           Printf.sprintf "(%s,%d)" (match k with Some k -> string_of_int k | None -> "_") x)
         l)
  in
  let sel =
    match sc.q with
    | Single (where, order_by, limit) | Join (where, order_by, limit) ->
        A.to_sql
          (A.Select
             {
               A.items = None;
               table = "t1";
               join =
                 (match sc.q with
                 | Join _ -> Some { A.jtable = "t2"; on_left = "t1.k"; on_right = "t2.k" }
                 | Single _ -> None);
               where;
               group_by = None;
               order_by;
               limit;
             })
  in
  Printf.sprintf "t1=[%s] t2=[%s] idx1=%b ridx1=%s idx2=%b q=%s" (rows sc.rows1)
    (rows sc.rows2) sc.idx1
    (match sc.ridx1 with Some b -> string_of_int b | None -> "-")
    sc.idx2 sel

let build_db sc =
  let db = Encdb.create ~master:"planner-oracle" ~profile:(Encdb.Fixed Encdb.Eax) () in
  let run sql = match E.exec db sql with Ok _ -> () | Error e -> failwith (sql ^ ": " ^ e) in
  run "CREATE TABLE t1 (id INT CLEAR, k INT, a INT)";
  run "CREATE TABLE t2 (id INT CLEAR, k INT, b INT)";
  let ins t i (k, x) =
    run
      (Printf.sprintf "INSERT INTO %s VALUES (%d, %s, %d)" t i
         (match k with Some k -> string_of_int k | None -> "NULL")
         x)
  in
  List.iteri (ins "t1") sc.rows1;
  List.iteri (ins "t2") sc.rows2;
  if sc.idx1 then run "CREATE INDEX ON t1 (k)";
  (match sc.ridx1 with
  | Some b -> run (Printf.sprintf "CREATE RANGE INDEX ON t1 (k) BUCKETS %d" b)
  | None -> ());
  if sc.idx2 then run "CREATE INDEX ON t2 (k)";
  db

let select_of sc =
  match sc.q with
  | Single (where, order_by, limit) ->
      { A.items = None; table = "t1"; join = None; where; group_by = None; order_by; limit }
  | Join (where, order_by, limit) ->
      {
        A.items = None;
        table = "t1";
        join = Some { A.jtable = "t2"; on_left = "t1.k"; on_right = "t2.k" };
        where;
        group_by = None;
        order_by;
        limit;
      }

(* plaintext reference over plain arrays *)
let reference sc =
  let v = function Some k -> Value.Int (Int64.of_int k) | None -> Value.Null in
  let arr1 i (k, a) = [| Value.Int (Int64.of_int i); v k; Value.Int (Int64.of_int a) |] in
  let t1 = List.mapi arr1 sc.rows1 in
  let t2 = List.mapi arr1 sc.rows2 in
  (* column positions in the (possibly combined) result row *)
  let col joined = function
    | "k" -> 1
    | "a" -> 2
    | "b" -> if joined then 5 else failwith "b unjoined"
    | c -> failwith c
  in
  let cmp_ok op a b =
    a <> Value.Null && b <> Value.Null
    &&
    let d = Value.compare a b in
    match op with A.Ge -> d >= 0 | A.Le -> d <= 0 | A.Eq -> d = 0 | _ -> failwith "op"
  in
  let keep joined row = function
    | None -> true
    | Some (A.Between (A.Col c, A.Lit lo, A.Lit hi)) ->
        let x = row.(col joined c) in
        cmp_ok A.Ge x lo && cmp_ok A.Le x hi
    | Some (A.Cmp (A.Eq, A.Col c, A.Lit x)) -> cmp_ok A.Eq row.(col joined c) x
    | Some _ -> failwith "where shape"
  in
  let finish joined where order_by limit rows =
    let rows = List.filter (fun (_, r) -> keep joined r where) rows in
    let rows =
      match order_by with
      | None -> rows
      | Some (c, dir) ->
          let i = col joined c in
          List.stable_sort
            (fun (_, x) (_, y) ->
              let d = Value.compare x.(i) y.(i) in
              match dir with A.Asc -> d | A.Desc -> -d)
            rows
    in
    let rows = match limit with None -> rows | Some n -> List.filteri (fun i _ -> i < n) rows in
    List.map (fun (_, r) -> Array.to_list r) rows
  in
  match sc.q with
  | Single (where, order_by, limit) ->
      finish false where order_by limit (List.mapi (fun i r -> (i, r)) t1)
  | Join (where, order_by, limit) ->
      let pairs =
        List.concat
          (List.mapi
             (fun i r1 ->
               if r1.(1) = Value.Null then []
               else
                 List.concat
                   (List.mapi
                      (fun j r2 ->
                        if r2.(1) <> Value.Null && Value.compare r1.(1) r2.(1) = 0 then
                          [ ((i, j), Array.append r1 r2) ]
                        else [])
                      t2))
             t1)
      in
      finish true where order_by limit pairs

let prop_oracle =
  QCheck2.Test.make ~name:"adaptive = every forced plan = snapshot = plaintext oracle"
    ~count:60 ~print:print_scenario gen_scenario (fun sc ->
      let db = build_db sc in
      let s = select_of sc in
      let adaptive =
        match E.exec_stmt db (A.Select s) with Ok r -> r | Error e -> failwith e
      in
      (* ordered-list agreement with the plaintext reference *)
      (match adaptive with
      | E.Rows { rows; _ } -> if rows <> reference sc then failwith "reference mismatch"
      | _ -> failwith "rows expected");
      (* every candidate plan returns the same bytes *)
      let plans = E.candidate_plans db s in
      List.iter
        (fun p ->
          match E.exec_plan db s p with
          | Ok r -> if r <> adaptive then failwith ("plan diverges: " ^ Pl.name p)
          | Error e -> failwith (Pl.name p ^ ": " ^ e))
        plans;
      (* joins must offer both nesting orders, and the index loop when the
         inner key is exact-indexed *)
      (match sc.q with
      | Join _ ->
          let names = List.map Pl.name plans in
          if not (List.exists (fun n -> n = "loop-join") names) then failwith "no loop-join";
          if not (List.exists (fun n -> n = "loop-join-rev") names) then
            failwith "no reversed loop-join";
          if sc.idx2 && not (List.exists (fun n -> n = "index-loop-join") names) then
            failwith "no index-loop-join despite inner index"
      | Single _ -> ());
      (* the lock-free snapshot path, when it volunteers, matches too *)
      (match E.exec_snapshot (Snap.of_db db) (A.Select s) with
      | Some (Ok fast) -> if fast <> adaptive then failwith "snapshot diverges"
      | Some (Error e) -> failwith ("snapshot: " ^ e)
      | None -> ());
      (* EXPLAIN names the plan the executor would run *)
      (match E.exec_stmt db (A.Explain s) with
      | Ok (E.Plan p) ->
          if p <> Fmt.str "%a" Pl.pp (E.plan_of_select db s) then failwith "EXPLAIN mismatch"
      | _ -> failwith "explain");
      true)

let suites =
  [
    ( "sql:planner-oracle",
      [
        Alcotest.test_case "deterministic tie-breaking" `Quick test_tie_break;
        Alcotest.test_case "db.rows gauge tracks live rows" `Quick test_row_gauges;
        Test_seed.qc prop_oracle;
      ] );
  ]

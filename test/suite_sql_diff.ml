(* Differential testing: random SQL executed both by the encrypted engine
   (AEAD storage, encrypted index, planner) and by a naive plaintext
   reference implementation.  Any divergence is a bug in parsing, planning,
   index maintenance or the schemes underneath. *)

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module A = Secdb_sql.Ast
module E = Secdb_sql.Engine

(* --- the reference: rows in a plain list --------------------------------- *)

module Ref = struct
  type t = { mutable rows : (int * Value.t array option) list; mutable next : int }
  (* (row number, cells) with None = tombstone *)

  let create () = { rows = []; next = 0 }

  let cols = [| "id"; "k"; "v" |]
  let col c = match Array.to_list cols |> List.mapi (fun i n -> (n, i)) |> List.assoc_opt c with
    | Some i -> i
    | None -> failwith "ref: unknown column"

  let insert t values =
    t.rows <- t.rows @ [ (t.next, Some (Array.of_list values)) ];
    t.next <- t.next + 1

  let live t = List.filter_map (fun (r, vs) -> Option.map (fun v -> (r, v)) vs) t.rows

  let cmp_vals op a b =
    if a = Value.Null || b = Value.Null then false
    else
      let c = Value.compare a b in
      match op with
      | A.Eq -> c = 0 | A.Ne -> c <> 0 | A.Lt -> c < 0
      | A.Le -> c <= 0 | A.Gt -> c > 0 | A.Ge -> c >= 0

  let operand vs = function
    | A.Col c -> vs.(col c)
    | A.Lit v -> v
    | _ -> failwith "ref: operand"

  let rec eval vs = function
    | A.Cmp (op, a, b) -> cmp_vals op (operand vs a) (operand vs b)
    | A.Between (e, lo, hi) ->
        cmp_vals A.Ge (operand vs e) (operand vs lo)
        && cmp_vals A.Le (operand vs e) (operand vs hi)
    | A.And (a, b) -> eval vs a && eval vs b
    | A.Or (a, b) -> eval vs a || eval vs b
    | A.Not e -> not (eval vs e)
    | A.Col _ | A.Lit _ -> failwith "ref: predicate"

  let matching t where =
    List.filter (fun (_, vs) -> match where with None -> true | Some w -> eval vs w) (live t)

  let update t ~col:c ~value where =
    let targets = List.map fst (matching t where) in
    t.rows <-
      List.map
        (fun (r, vs) ->
          if List.mem r targets then
            (r, Option.map (fun a -> let a = Array.copy a in a.(col c) <- value; a) vs)
          else (r, vs))
        t.rows;
    List.length targets

  let delete t where =
    let targets = List.map fst (matching t where) in
    t.rows <-
      List.map (fun (r, vs) -> if List.mem r targets then (r, None) else (r, vs)) t.rows;
    List.length targets
end

(* --- generator of valid statements ---------------------------------------- *)

module G = QCheck2.Gen

let gen_int_lit = G.map (fun i -> Value.Int (Int64.of_int i)) (G.int_bound 30)
let gen_text_lit = G.map (fun i -> Value.Text (Printf.sprintf "t%02d" i)) (G.int_bound 15)

let gen_atom =
  G.(
    let* c = oneofl [ "k"; "v"; "id" ] in
    let lit = if c = "v" then gen_text_lit else gen_int_lit in
    oneof
      [
        (let* op = oneofl [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ] in
         let* l = lit in
         return (A.Cmp (op, A.Col c, A.Lit l)));
        (let* lo = lit in
         let* hi = lit in
         return (A.Between (A.Col c, A.Lit lo, A.Lit hi)));
      ])

let gen_where =
  G.(
    sized @@ fix (fun self n ->
        if n <= 1 then gen_atom
        else
          oneof
            [
              gen_atom;
              map2 (fun a b -> A.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> A.Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun e -> A.Not e) (self (n - 1));
            ]))

type op =
  | Op_insert of Value.t list
  | Op_update of string * Value.t * A.expr option
  | Op_delete of A.expr option
  | Op_select of A.expr option * (string * A.order) option * int option
  | Op_count of A.expr option

let gen_op =
  G.(
    oneof
      [
        (let* k = gen_int_lit in
         let* v = gen_text_lit in
         let* id = gen_int_lit in
         return (Op_insert [ id; k; v ]));
        (let* c = oneofl [ "k"; "v" ] in
         let* value = if c = "v" then gen_text_lit else gen_int_lit in
         let* w = option gen_where in
         return (Op_update (c, value, w)));
        map (fun w -> Op_delete w) (option gen_where);
        (let* w = option gen_where in
         let* ob = option (pair (oneofl [ "id"; "k"; "v" ]) (oneofl [ A.Asc; A.Desc ])) in
         let* lim = option (int_bound 10) in
         return (Op_select (w, ob, lim)));
        map (fun w -> Op_count w) (option gen_where);
      ])

(* --- the property ---------------------------------------------------------- *)

let schema =
  Schema.v ~table_name:"t"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "k" Value.Kint;
      Schema.column "v" Value.Ktext;
    ]

let sorted_rows rows = List.sort compare rows

let run_diff profile ops =
  let db = Encdb.create ~master:"diff" ~profile () in
  Encdb.create_table db schema;
  Encdb.create_index db ~table:"t" ~col:"k";
  let reference = Ref.create () in
  let ok = ref true in
  let fail_if b = if b then ok := false in
  List.iter
    (fun op ->
      match op with
      | Op_insert values ->
          Ref.insert reference values;
          ignore (Encdb.insert db ~table:"t" values)
      | Op_update (c, value, where) -> (
          let expected = Ref.update reference ~col:c ~value where in
          match E.exec_stmt db (A.Update { table = "t"; col = c; value; where }) with
          | Ok (E.Affected n) -> fail_if (n <> expected)
          | _ -> fail_if true)
      | Op_delete where -> (
          let expected = Ref.delete reference where in
          match E.exec_stmt db (A.Delete { table = "t"; where }) with
          | Ok (E.Affected n) -> fail_if (n <> expected)
          | _ -> fail_if true)
      | Op_select (where, order_by, limit) -> (
          let stmt =
            A.Select
              { items = None; table = "t"; join = None; where; group_by = None; order_by; limit }
          in
          match E.exec_stmt db stmt with
          | Ok (E.Rows { rows; _ }) -> (
              let expected = List.map (fun (_, vs) -> Array.to_list vs) (Ref.matching reference where) in
              match (order_by, limit) with
              | _, Some _ ->
                  (* limits make order-dependent prefixes: check containment
                     and size only *)
                  fail_if (List.length rows > List.length expected);
                  fail_if
                    (not
                       (List.for_all
                          (fun r -> List.mem r expected)
                          rows))
              | Some (c, dir), None ->
                  let i = Ref.col c in
                  let sorted_expected =
                    List.stable_sort
                      (fun a b ->
                        let d = Value.compare (List.nth a i) (List.nth b i) in
                        match dir with A.Asc -> d | A.Desc -> -d)
                      expected
                  in
                  (* ties may appear in either order: compare as multisets of
                     the ordering key sequence plus overall multiset *)
                  fail_if (List.map (fun r -> List.nth r i) rows
                           <> List.map (fun r -> List.nth r i) sorted_expected);
                  fail_if (sorted_rows rows <> sorted_rows expected)
              | None, None -> fail_if (sorted_rows rows <> sorted_rows expected))
          | _ -> fail_if true)
      | Op_count where -> (
          let stmt =
            A.Select
              {
                items = Some [ A.Aggregate (A.Count, None) ];
                table = "t";
                join = None;
                where;
                group_by = None;
                order_by = None;
                limit = None;
              }
          in
          match E.exec_stmt db stmt with
          | Ok (E.Rows { rows = [ [ Value.Int n ] ]; _ }) ->
              fail_if (Int64.to_int n <> List.length (Ref.matching reference where))
          | _ -> fail_if true))
    ops;
  (* final full-table agreement *)
  (match E.exec_stmt db (A.Select { items = None; table = "t"; join = None; where = None; group_by = None; order_by = None; limit = None }) with
  | Ok (E.Rows { rows; _ }) ->
      fail_if
        (sorted_rows rows
        <> sorted_rows (List.map (fun (_, vs) -> Array.to_list vs) (Ref.live reference)))
  | _ -> fail_if true);
  !ok

let prop profile =
  QCheck2.Test.make
    ~name:("sql differential: " ^ Encdb.profile_name profile)
    ~count:20
    G.(list_size (int_range 1 40) gen_op)
    (fun ops -> run_diff profile ops)

let suites =
  [
    ( "sql:differential",
      List.map
        (fun p -> Test_seed.qc (prop p))
        [ Encdb.Elovici_append; Encdb.Fixed Encdb.Eax; Encdb.Siv_deterministic ] );
  ]

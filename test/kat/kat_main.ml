(* Known-answer gate: re-checks the primitive known-answer vectors as a
   standalone pass/fail binary, independent of the alcotest suite, so CI
   can gate on `dune build @kat` without running the full property suite.

   Sources: AES FIPS 197 appendix C, SHA-1/SHA-256 FIPS 180 examples,
   MD5 RFC 1321, HMAC RFC 2202 + RFC 4231, AES-CMAC RFC 4493,
   AES-GCM NIST SP 800-38D (McGrew–Viega test cases). *)

module Xbytes = Secdb_util.Xbytes
module Block = Secdb_cipher.Block

let failures = ref 0
let total = ref 0

let check name ~expected ~got =
  incr total;
  if String.lowercase_ascii expected = String.lowercase_ascii got then
    Printf.printf "ok   %s\n" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n  expected %s\n  got      %s\n" name expected got
  end

let hex = Xbytes.of_hex

(* --- AES, FIPS 197 appendix C ------------------------------------------- *)

let fips_plain = "00112233445566778899aabbccddeeff"

let fips_vectors =
  [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a", "aes-128");
    ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191", "aes-192");
    ( "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
      "8ea2b7ca516745bfeafc49904b496089",
      "aes-256" );
  ]

let kat_aes () =
  List.iter
    (fun (key, ct, name) ->
      List.iter
        (fun (impl, make) ->
          let c = make ~key:(hex key) in
          check
            (Printf.sprintf "%s/%s encrypt" name impl)
            ~expected:ct
            ~got:(Xbytes.to_hex (c.Block.encrypt (hex fips_plain)));
          check
            (Printf.sprintf "%s/%s decrypt" name impl)
            ~expected:fips_plain
            ~got:(Xbytes.to_hex (c.Block.decrypt (hex ct))))
        [ ("ref", Secdb_cipher.Aes.cipher); ("fast", Secdb_cipher.Aes_fast.cipher) ])
    fips_vectors

(* --- hashes -------------------------------------------------------------- *)

let kat_hashes () =
  let vectors =
    [
      ("sha1 empty", Secdb_hash.Sha1.hex, "", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
      ("sha1 abc", Secdb_hash.Sha1.hex, "abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
      ( "sha1 448-bit",
        Secdb_hash.Sha1.hex,
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
      ( "sha256 empty",
        Secdb_hash.Sha256.hex,
        "",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
      ( "sha256 abc",
        Secdb_hash.Sha256.hex,
        "abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
      ( "sha256 448-bit",
        Secdb_hash.Sha256.hex,
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ("md5 empty", Secdb_hash.Md5.hex, "", "d41d8cd98f00b204e9800998ecf8427e");
      ("md5 abc", Secdb_hash.Md5.hex, "abc", "900150983cd24fb0d6963f7d28e17f72");
      ( "md5 alphabet",
        Secdb_hash.Md5.hex,
        "abcdefghijklmnopqrstuvwxyz",
        "c3fcd3d76192e4007dfb496cca67e13b" );
    ]
  in
  List.iter (fun (name, f, input, expected) -> check name ~expected ~got:(f input)) vectors

(* --- HMAC, RFC 2202 + RFC 4231 ------------------------------------------ *)

let kat_hmac () =
  let mac h ~key data = Xbytes.to_hex (Secdb_hash.Hmac.mac h ~key data) in
  let key_0b n = String.make n '\x0b' in
  let key_aa n = String.make n '\xaa' in
  check "hmac-sha1 rfc2202 #1"
    ~expected:"b617318655057264e28bc0b6fb378c8ef146be00"
    ~got:(mac Secdb_hash.Hmac.sha1 ~key:(key_0b 20) "Hi There");
  check "hmac-sha1 rfc2202 #2"
    ~expected:"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    ~got:(mac Secdb_hash.Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?");
  check "hmac-sha1 rfc2202 #3"
    ~expected:"125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    ~got:(mac Secdb_hash.Hmac.sha1 ~key:(key_aa 20) (String.make 50 '\xdd'));
  check "hmac-md5 rfc2202 #1"
    ~expected:"9294727a3638bb1c13f48ef8158bfc9d"
    ~got:(mac Secdb_hash.Hmac.md5 ~key:(key_0b 16) "Hi There");
  check "hmac-md5 rfc2202 #2"
    ~expected:"750c783e6ab0b503eaa86e310a5db738"
    ~got:(mac Secdb_hash.Hmac.md5 ~key:"Jefe" "what do ya want for nothing?");
  check "hmac-sha256 rfc4231 #1"
    ~expected:"b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    ~got:(mac Secdb_hash.Hmac.sha256 ~key:(key_0b 20) "Hi There");
  check "hmac-sha256 rfc4231 #2"
    ~expected:"5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    ~got:(mac Secdb_hash.Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  (* RFC 4231 #7: 131-byte key, forces the key-hashing path *)
  check "hmac-sha256 rfc4231 #7"
    ~expected:"9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    ~got:
      (mac Secdb_hash.Hmac.sha256 ~key:(key_aa 131)
         "This is a test using a larger than block-size key and a larger than \
          block-size data. The key needs to be hashed before being used by the HMAC \
          algorithm.")

(* --- AES-CMAC, RFC 4493 -------------------------------------------------- *)

let kat_cmac () =
  let c = Secdb_cipher.Aes.cipher ~key:(hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let m64 =
    hex
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
  in
  let k1, k2 = Secdb_mac.Cmac.subkeys c in
  check "cmac subkey K1" ~expected:"fbeed618357133667c85e08f7236a8de" ~got:(Xbytes.to_hex k1);
  check "cmac subkey K2" ~expected:"f7ddac306ae266ccf90bc11ee46d513b" ~got:(Xbytes.to_hex k2);
  List.iter
    (fun (name, msg, expected) ->
      check name ~expected ~got:(Xbytes.to_hex (Secdb_mac.Cmac.mac c msg)))
    [
      ("cmac rfc4493 len=0", "", "bb1d6929e95937287fa37d129b756746");
      ("cmac rfc4493 len=16", String.sub m64 0 16, "070a16b46b4d4144f79bdd9dd04a287c");
      ("cmac rfc4493 len=40", String.sub m64 0 40, "dfa66747de9ae63030ca32611497c827");
      ("cmac rfc4493 len=64", m64, "51f0bebf7e3b9d92fc49741779363cfe");
    ]

(* --- AES-GCM, NIST SP 800-38D (McGrew–Viega test cases) ------------------ *)

let gcm_vectors =
  [
    (* name, key, iv, aad, pt, ct, tag *)
    ("gcm tc1 aes-128 empty", "00000000000000000000000000000000", "000000000000000000000000",
     "", "", "", "58e2fccefa7e3061367f1d57a4e7455a");
    ("gcm tc2 aes-128 1 block", "00000000000000000000000000000000", "000000000000000000000000",
     "", "00000000000000000000000000000000", "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf");
    ( "gcm tc3 aes-128 4 blocks",
      "feffe9928665731c6d6a8f9467308308",
      "cafebabefacedbaddecaf888",
      "",
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
      "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
      "4d5c2af327cd64a62cf35abd2ba6fab4" );
    ( "gcm tc4 aes-128 with aad",
      "feffe9928665731c6d6a8f9467308308",
      "cafebabefacedbaddecaf888",
      "feedfacedeadbeeffeedfacedeadbeefabaddad2",
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
      "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
      "5bc94fbc3221a5db94fae95ae7121a47" );
    ("gcm tc13 aes-256 empty",
     "0000000000000000000000000000000000000000000000000000000000000000",
     "000000000000000000000000", "", "", "", "530f8afbc74536b9a963b4f1c4cb738b");
    ("gcm tc14 aes-256 1 block",
     "0000000000000000000000000000000000000000000000000000000000000000",
     "000000000000000000000000", "", "00000000000000000000000000000000",
     "cea7403d4d606b6e074ec5d3baf39d18", "d0d1c8a799996bf0265b98b5d48ab919");
  ]

let kat_gcm () =
  let reject_msg = "<rejected>" in
  List.iter
    (fun (impl, make) ->
      List.iter
        (fun (name, key, iv, aad, pt, ct, tag) ->
          let name = Printf.sprintf "%s/%s" name impl in
          let a = Secdb_aead.Gcm.make (make ~key:(hex key)) in
          let got_ct, got_tag =
            Secdb_aead.Aead.encrypt a ~nonce:(hex iv) ~ad:(hex aad) (hex pt)
          in
          check (name ^ " ct") ~expected:ct ~got:(Xbytes.to_hex got_ct);
          check (name ^ " tag") ~expected:tag ~got:(Xbytes.to_hex got_tag);
          (match Secdb_aead.Aead.decrypt a ~nonce:(hex iv) ~ad:(hex aad) ~tag:(hex tag) (hex ct) with
          | Ok m -> check (name ^ " pt") ~expected:pt ~got:(Xbytes.to_hex m)
          | Error Secdb_aead.Aead.Invalid -> check (name ^ " pt") ~expected:pt ~got:reject_msg);
          (* wrong-tag and tampered-input rejection *)
          let flip s i =
            let b = Bytes.of_string s in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
            Bytes.to_string b
          in
          let expect_reject what r =
            check (name ^ " rejects " ^ what) ~expected:reject_msg
              ~got:(match r with Ok _ -> "<accepted>" | Error Secdb_aead.Aead.Invalid -> reject_msg)
          in
          expect_reject "wrong tag"
            (Secdb_aead.Aead.decrypt a ~nonce:(hex iv) ~ad:(hex aad) ~tag:(flip (hex tag) 0) (hex ct));
          if ct <> "" then
            expect_reject "tampered ciphertext"
              (Secdb_aead.Aead.decrypt a ~nonce:(hex iv) ~ad:(hex aad) ~tag:(hex tag)
                 (flip (hex ct) 0));
          if aad <> "" then
            expect_reject "tampered aad"
              (Secdb_aead.Aead.decrypt a ~nonce:(hex iv) ~ad:(flip (hex aad) 0) ~tag:(hex tag)
                 (hex ct)))
        gcm_vectors)
    [ ("ref", Secdb_cipher.Aes.cipher); ("fast", Secdb_cipher.Aes_fast.cipher) ]

let () =
  kat_aes ();
  kat_hashes ();
  kat_hmac ();
  kat_cmac ();
  kat_gcm ();
  Printf.printf "%d known-answer checks, %d failure(s)\n" !total !failures;
  if !failures > 0 then exit 1

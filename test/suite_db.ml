open Secdb_util
module Value = Secdb_db.Value
module Address = Secdb_db.Address
module Schema = Secdb_db.Schema
module Table = Secdb_db.Table
module Codec = Secdb_db.Codec

let test_value_encode_decode () =
  let cases =
    [
      Value.Null;
      Value.Bool true;
      Value.Bool false;
      Value.Int 0L;
      Value.Int (-1L);
      Value.Int Int64.max_int;
      Value.Text "";
      Value.Text "hello";
      Value.Text (String.make 1000 '\xff');
      Value.Bytes "\x00\x01\x02";
    ]
  in
  List.iter
    (fun v ->
      match Value.decode (Value.encode v) with
      | Ok v' when Value.equal v v' -> ()
      | _ -> Alcotest.fail ("roundtrip failed for " ^ Value.to_string v))
    cases

let test_value_decode_errors () =
  let reject s =
    match Value.decode s with
    | Error _ -> ()
    | Ok v -> Alcotest.fail ("accepted " ^ Value.to_string v)
  in
  reject "";
  reject "N trailing";
  reject "b\002";
  reject "b";
  reject "i1234567";
  (* 7 bytes *)
  reject "i123456789";
  (* 9 bytes *)
  reject "?unknown"

let test_value_ordering () =
  let lt a b =
    Alcotest.(check bool)
      (Value.to_string a ^ " < " ^ Value.to_string b)
      true (Value.compare a b < 0)
  in
  lt Value.Null (Value.Bool false);
  lt (Value.Bool true) (Value.Int (-5L));
  lt (Value.Int 1L) (Value.Int 2L);
  lt (Value.Int 100L) (Value.Text "a");
  lt (Value.Text "abc") (Value.Text "abd");
  lt (Value.Text "zzz") (Value.Bytes "\x00")

let test_value_accessors () =
  Alcotest.(check string) "text_exn" "x" (Value.text_exn (Value.Text "x"));
  Alcotest.(check int64) "int_exn" 5L (Value.int_exn (Value.Int 5L));
  Alcotest.check_raises "text_exn wrong kind" (Invalid_argument "Value.text_exn: 5")
    (fun () -> ignore (Value.text_exn (Value.Int 5L)));
  Alcotest.(check string) "pp text" "\"hi\"" (Value.to_string (Value.Text "hi"));
  Alcotest.(check string) "pp bytes" "x'00ff'" (Value.to_string (Value.Bytes "\x00\xff"));
  Alcotest.(check string) "pp null" "NULL" (Value.to_string Value.Null)

let test_address () =
  let a = Address.v ~table:3 ~row:7 ~col:1 in
  Alcotest.(check bool) "equal" true (Address.equal a (Address.v ~table:3 ~row:7 ~col:1));
  Alcotest.(check bool) "not equal" false (Address.equal a (Address.v ~table:3 ~row:8 ~col:1));
  Alcotest.(check int) "encode width" 24 (String.length (Address.encode a));
  Alcotest.(check bool) "compare by table first" true
    (Address.compare (Address.v ~table:1 ~row:9 ~col:9) a < 0);
  Alcotest.(check string) "pp" "(t=3,r=7,c=1)" (Fmt.str "%a" Address.pp a)

let test_mu () =
  let a = Address.v ~table:1 ~row:2 ~col:3 in
  let m16 = Address.mu_sha1 ~width:16 in
  Alcotest.(check int) "width respected" 16 (String.length (m16.Address.digest a));
  Alcotest.(check string) "name" "sha1/128" m16.Address.name;
  Alcotest.(check string) "deterministic"
    (Xbytes.to_hex (m16.Address.digest a))
    (Xbytes.to_hex (m16.Address.digest a));
  (* truncation prefix property *)
  let m8 = Address.mu_sha1 ~width:8 in
  Alcotest.(check string) "truncation is a prefix"
    (Xbytes.to_hex (m8.Address.digest a))
    (Xbytes.to_hex (Xbytes.take 8 (m16.Address.digest a)));
  (* differs across addresses *)
  Alcotest.(check bool) "address-sensitive" false
    (m16.Address.digest a = m16.Address.digest (Address.v ~table:1 ~row:2 ~col:4));
  (* other hash choices *)
  Alcotest.(check int) "sha256 width cap" 32
    (String.length ((Address.mu_sha256 ~width:64).Address.digest a));
  Alcotest.(check int) "md5 width" 16
    (String.length ((Address.mu_md5 ~width:16).Address.digest a));
  Alcotest.(check string) "identity mu" (Address.encode a) (Address.mu_identity.Address.digest a)

let schema () =
  Schema.v ~table_name:"t"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "name" Value.Ktext;
      Schema.column "blob" Value.Kbytes;
    ]

let test_schema () =
  let s = schema () in
  Alcotest.(check int) "ncols" 3 (Schema.ncols s);
  Alcotest.(check int) "col_index" 1 (Schema.col_index s "name");
  Alcotest.check_raises "unknown col" Not_found (fun () -> ignore (Schema.col_index s "nope"));
  Alcotest.check_raises "duplicate columns"
    (Invalid_argument "Schema.v: duplicate column names") (fun () ->
      ignore (Schema.v ~table_name:"x" [ Schema.column "a" Value.Kint; Schema.column "a" Value.Ktext ]));
  Alcotest.check_raises "empty schema"
    (Invalid_argument "Schema.v: a table needs at least one column") (fun () ->
      ignore (Schema.v ~table_name:"x" []));
  (match Schema.check_value (Schema.col s 1) (Value.Text "ok") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "text rejected");
  (match Schema.check_value (Schema.col s 1) Value.Null with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "null rejected");
  match Schema.check_value (Schema.col s 1) (Value.Int 3L) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "int accepted in text column"

let test_table () =
  let t = Table.create ~id:9 (schema ()) in
  Alcotest.(check int) "id" 9 (Table.id t);
  let r0 = Table.insert t [ Value.Int 1L; Value.Text "alice"; Value.Bytes "a" ] in
  let r1 = Table.insert t [ Value.Int 2L; Value.Text "bob"; Value.Bytes "b" ] in
  Alcotest.(check int) "rows are append-ordered" 0 r0;
  Alcotest.(check int) "second row" 1 r1;
  Alcotest.(check int) "nrows" 2 (Table.nrows t);
  Alcotest.(check string) "get" "bob" (Value.text_exn (Table.get t ~row:1 ~col:1));
  Table.set t ~row:1 ~col:1 (Value.Text "robert");
  Alcotest.(check string) "set" "robert" (Value.text_exn (Table.get t ~row:1 ~col:1));
  Alcotest.(check bool) "address" true
    (Address.equal (Table.address t ~row:1 ~col:2) (Address.v ~table:9 ~row:1 ~col:2));
  Alcotest.(check (list int)) "find_rows" [ 1 ]
    (Table.find_rows t (fun vs -> Value.equal vs.(1) (Value.Text "robert")));
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.insert: expected 3 values, got 1") (fun () ->
      ignore (Table.insert t [ Value.Int 1L ]));
  (match Table.insert t [ Value.Text "wrong"; Value.Text "x"; Value.Bytes "" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type mismatch accepted");
  let row = Table.row t 0 in
  row.(0) <- Value.Int 99L;
  Alcotest.(check int64) "row returns a copy" 1L (Value.int_exn (Table.get t ~row:0 ~col:0))

let test_codec_framing () =
  let fields = [ ""; "a"; String.make 300 'x' ] in
  (match Codec.unframe (Codec.frame fields) with
  | Ok fs when fs = fields -> ()
  | _ -> Alcotest.fail "frame roundtrip");
  (match Codec.unframe2 (Codec.frame [ "a"; "b" ]) with
  | Ok ("a", "b") -> ()
  | _ -> Alcotest.fail "unframe2");
  (match Codec.unframe3 (Codec.frame [ "a"; "b"; "c" ]) with
  | Ok ("a", "b", "c") -> ()
  | _ -> Alcotest.fail "unframe3");
  (match Codec.unframe2 (Codec.frame [ "a" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unframe2 arity");
  (match Codec.unframe "\x00\x00\x00\x05ab" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated field accepted");
  match Codec.unframe "\x00\x00" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated length accepted"

let qc = Test_seed.qc

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int (Int64.of_int i)) int;
        map (fun s -> Value.Text s) string;
        map (fun s -> Value.Bytes s) string;
      ])

let prop_value_roundtrip =
  QCheck2.Test.make ~name:"value encode/decode roundtrip" ~count:500 gen_value (fun v ->
      Value.decode (Value.encode v) = Ok v)

let prop_value_order_antisym =
  QCheck2.Test.make ~name:"value compare antisymmetric" ~count:300
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_value_order_transitive =
  QCheck2.Test.make ~name:"value compare transitive" ~count:300
    QCheck2.Gen.(triple gen_value gen_value gen_value)
    (fun (a, b, c) ->
      let l = List.sort Value.compare [ a; b; c ] in
      match l with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let prop_frame_roundtrip =
  QCheck2.Test.make ~name:"codec frame roundtrip" ~count:300
    QCheck2.Gen.(list_size (int_range 0 6) string)
    (fun fields -> Codec.unframe (Codec.frame fields) = Ok fields)

let prop_mu_collision_free_locally =
  QCheck2.Test.make ~name:"mu distinct on distinct small addresses" ~count:200
    QCheck2.Gen.(pair (int_bound 1000) (int_bound 1000))
    (fun (r1, r2) ->
      let mu = Address.mu_sha1 ~width:16 in
      r1 = r2
      || mu.Address.digest (Address.v ~table:1 ~row:r1 ~col:0)
         <> mu.Address.digest (Address.v ~table:1 ~row:r2 ~col:0))

let suites =
  [
    ( "db:value",
      [
        Alcotest.test_case "encode/decode cases" `Quick test_value_encode_decode;
        Alcotest.test_case "decode rejects malformed" `Quick test_value_decode_errors;
        Alcotest.test_case "ordering" `Quick test_value_ordering;
        Alcotest.test_case "accessors and printing" `Quick test_value_accessors;
        qc prop_value_roundtrip;
        qc prop_value_order_antisym;
        qc prop_value_order_transitive;
      ] );
    ( "db:address",
      [
        Alcotest.test_case "addresses" `Quick test_address;
        Alcotest.test_case "mu instantiations" `Quick test_mu;
        qc prop_mu_collision_free_locally;
      ] );
    ( "db:schema-table",
      [
        Alcotest.test_case "schema" `Quick test_schema;
        Alcotest.test_case "table" `Quick test_table;
      ] );
    ( "db:codec",
      [ Alcotest.test_case "framing" `Quick test_codec_framing; qc prop_frame_roundtrip ] );
  ]

module Value = Secdb_db.Value
module B = Secdb_index.Bptree
module CW = Secdb_index.Client_walk

let iv i = Value.Int (Int64.of_int i)

let fill ?(order = 4) n =
  let t = B.create ~order ~id:1 ~codec:B.plain_codec () in
  for i = 0 to n - 1 do
    B.insert t (iv ((i * 37) mod n)) ~table_row:i
  done;
  t

let test_empty_tree () =
  let t = B.create ~id:1 ~codec:B.plain_codec () in
  Alcotest.(check int) "size" 0 (B.size t);
  Alcotest.(check int) "height" 1 (B.height t);
  Alcotest.(check (list int)) "find" [] (B.find t (iv 3));
  Alcotest.(check int) "range" 0 (List.length (B.range t ()));
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "delete on empty" false (B.delete t (iv 3) ~table_row:0)

let test_single () =
  let t = B.create ~id:1 ~codec:B.plain_codec () in
  B.insert t (iv 5) ~table_row:42;
  Alcotest.(check (list int)) "find" [ 42 ] (B.find t (iv 5));
  Alcotest.(check (list int)) "miss" [] (B.find t (iv 6));
  Alcotest.(check bool) "delete" true (B.delete t (iv 5) ~table_row:42);
  Alcotest.(check int) "empty again" 0 (B.size t)

let test_duplicates () =
  let t = B.create ~order:3 ~id:1 ~codec:B.plain_codec () in
  for i = 0 to 30 do
    B.insert t (iv (i mod 3)) ~table_row:i
  done;
  let rows = B.find t (iv 1) in
  Alcotest.(check int) "all duplicates found" 10 (List.length rows);
  Alcotest.(check bool) "rows correct" true (List.for_all (fun r -> r mod 3 = 1) rows);
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  (* delete one specific duplicate *)
  Alcotest.(check bool) "delete (1, 13)" true (B.delete t (iv 1) ~table_row:13);
  Alcotest.(check bool) "gone" true (not (List.mem 13 (B.find t (iv 1))));
  Alcotest.(check int) "others remain" 9 (List.length (B.find t (iv 1)))

let test_range_scans () =
  let t = fill 200 in
  let all = B.range t () in
  Alcotest.(check int) "full range" 200 (List.length all);
  let keys = List.map fst all in
  Alcotest.(check bool) "sorted" true
    (List.for_all2 (fun a b -> Value.compare a b <= 0)
       (List.filteri (fun i _ -> i < List.length keys - 1) keys)
       (List.tl keys));
  let sub = B.range t ~lo:(iv 50) ~hi:(iv 60) () in
  Alcotest.(check int) "inclusive bounds" 11 (List.length sub);
  Alcotest.(check int) "lo only" 150 (List.length (B.range t ~lo:(iv 50) ()));
  Alcotest.(check int) "hi only" 50 (List.length (B.range t ~hi:(iv 49) ()));
  Alcotest.(check int) "empty window" 0 (List.length (B.range t ~lo:(iv 60) ~hi:(iv 50) ()))

let test_structure () =
  let t = fill ~order:4 500 in
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "height logarithmic" true (B.height t <= 7);
  Alcotest.(check int) "path length = height" (B.height t)
    (List.length (B.path_to t (iv 123)));
  (* deep tree at order 2 *)
  let t2 = fill ~order:2 500 in
  Alcotest.(check bool) "order-2 deeper" true (B.height t2 > B.height t);
  match B.validate t2 with Ok () -> () | Error e -> Alcotest.fail e

let test_delete_to_empty () =
  let t = fill ~order:3 120 in
  for i = 0 to 119 do
    let v = iv ((i * 37) mod 120) in
    if not (B.delete t v ~table_row:i) then Alcotest.fail "delete missed";
    match B.validate t with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "invalid after delete %d: %s" i e)
  done;
  Alcotest.(check int) "empty" 0 (B.size t);
  Alcotest.(check int) "root collapsed" 1 (B.height t)

let test_tamper_detection_via_plain_codec () =
  (* plain codec has no integrity, but garbage payloads still fail decode *)
  let t = fill 50 in
  let leaf = B.node_view t (B.first_leaf t) in
  B.set_payload t ~row:leaf.B.row ~slot:0 "garbage!";
  match B.find t (iv 0) with
  | exception B.Integrity _ -> ()
  | _ -> Alcotest.fail "garbage payload survived decode"

let test_node_views () =
  let t = fill 100 in
  let nodes = ref 0 and leaves = ref 0 and entries = ref 0 in
  B.iter_nodes
    (fun v ->
      incr nodes;
      if v.B.node_kind = B.Leaf then begin
        incr leaves;
        entries := !entries + Array.length v.B.payloads
      end
      else
        Alcotest.(check int) "inner fanout" (Array.length v.B.payloads + 1)
          (Array.length v.B.children))
    t;
  Alcotest.(check int) "nnodes consistent" !nodes (B.nnodes t);
  Alcotest.(check int) "leaf entries = size" 100 !entries;
  (* leaf chain covers all leaves *)
  let chain = ref 0 in
  let rec walk row =
    incr chain;
    match (B.node_view t row).B.next with Some n -> walk n | None -> ()
  in
  walk (B.first_leaf t);
  Alcotest.(check int) "chain covers leaves" !leaves !chain

let test_client_walk () =
  let t = fill ~order:4 300 in
  for probe = 0 to 20 do
    let rows, stats = CW.find t (iv probe) in
    Alcotest.(check (list int))
      (Printf.sprintf "client walk agrees with find (%d)" probe)
      (B.find t (iv probe)) rows;
    Alcotest.(check bool) "rounds >= height" true (stats.CW.rounds >= B.height t);
    Alcotest.(check bool) "rounds bounded" true (stats.CW.rounds <= B.height t + 3);
    Alcotest.(check bool) "bytes to client positive" true (stats.CW.bytes_to_client > 0);
    Alcotest.(check int) "one decision byte per round" stats.CW.rounds stats.CW.bytes_to_server
  done;
  Alcotest.(check int) "expected_rounds = height" (B.height t) (CW.expected_rounds t)

let test_create_errors () =
  Alcotest.check_raises "order too small" (Invalid_argument "Bptree.create: order must be >= 2")
    (fun () -> ignore (B.create ~order:1 ~id:1 ~codec:B.plain_codec ()))

(* model-based property test *)

let prop_model ~order =
  QCheck2.Test.make
    ~name:(Printf.sprintf "model equivalence (order %d)" order)
    ~count:30
    QCheck2.Gen.(list_size (int_range 0 400) (pair (int_range 0 9) (int_bound 50)))
    (fun ops ->
      let t = B.create ~order ~id:1 ~codec:B.plain_codec () in
      let model = ref [] in
      let row = ref 0 in
      List.iter
        (fun (op, k) ->
          if op < 7 then begin
            incr row;
            B.insert t (iv k) ~table_row:!row;
            model := (k, !row) :: !model
          end
          else
            match List.find_opt (fun (k', _) -> k' = k) !model with
            | Some (_, r) ->
                if not (B.delete t (iv k) ~table_row:r) then failwith "delete missed";
                let removed = ref false in
                model :=
                  List.filter
                    (fun (k', r') ->
                      if (not !removed) && k' = k && r' = r then begin
                        removed := true;
                        false
                      end
                      else true)
                    !model
            | None -> ())
        ops;
      (match B.validate t with Ok () -> () | Error e -> failwith e);
      (* compare a few probes and a range against the model *)
      List.for_all
        (fun k ->
          List.sort compare (B.find t (iv k))
          = List.sort compare (List.filter_map (fun (k', r) -> if k' = k then Some r else None) !model))
        [ 0; 1; 25; 50 ]
      && List.length (B.range t ()) = List.length !model)

let qc = Test_seed.qc

let suites =
  [
    ( "index:bptree",
      [
        Alcotest.test_case "empty tree" `Quick test_empty_tree;
        Alcotest.test_case "single entry" `Quick test_single;
        Alcotest.test_case "duplicate keys" `Quick test_duplicates;
        Alcotest.test_case "range scans" `Quick test_range_scans;
        Alcotest.test_case "structure invariants" `Quick test_structure;
        Alcotest.test_case "delete to empty" `Quick test_delete_to_empty;
        Alcotest.test_case "garbage payload detected" `Quick
          test_tamper_detection_via_plain_codec;
        Alcotest.test_case "node views and leaf chain" `Quick test_node_views;
        Alcotest.test_case "creation errors" `Quick test_create_errors;
        qc (prop_model ~order:2);
        qc (prop_model ~order:3);
        qc (prop_model ~order:4);
        qc (prop_model ~order:8);
      ] );
    ( "index:client-walk",
      [ Alcotest.test_case "protocol simulation (Remark 1)" `Quick test_client_walk ] );
  ]

(* --- bulk loading --------------------------------------------------------- *)

let test_bulk_load_basics () =
  let entries = List.init 100 (fun i -> (iv (i / 3), i)) in
  let t = B.bulk_load ~order:4 ~id:1 ~codec:B.plain_codec entries in
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "size" 100 (B.size t);
  Alcotest.(check (list int)) "duplicates found" [ 30; 31; 32 ] (B.find t (iv 10));
  Alcotest.(check int) "range" 100 (List.length (B.range t ()));
  (* still mutable afterwards *)
  B.insert t (iv 7) ~table_row:777;
  Alcotest.(check bool) "insert works" true (List.mem 777 (B.find t (iv 7)));
  Alcotest.(check bool) "delete works" true (B.delete t (iv 7) ~table_row:777);
  match B.validate t with Ok () -> () | Error e -> Alcotest.fail e

let test_bulk_load_rejects_unsorted () =
  Alcotest.check_raises "unsorted input"
    (Invalid_argument "Bptree.bulk_load: input not sorted") (fun () ->
      ignore (B.bulk_load ~id:1 ~codec:B.plain_codec [ (iv 2, 0); (iv 1, 1) ]))

let prop_bulk_equals_incremental =
  QCheck2.Test.make ~name:"bulk load = incremental inserts" ~count:60
    QCheck2.Gen.(pair (int_range 2 9) (list_size (int_range 0 300) (int_bound 40)))
    (fun (order, keys) ->
      let entries = List.mapi (fun i k -> (iv k, i)) keys in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> Secdb_db.Value.compare a b) entries in
      let bulk = B.bulk_load ~order ~id:1 ~codec:B.plain_codec sorted in
      let inc = B.create ~order ~id:1 ~codec:B.plain_codec () in
      List.iter (fun (v, r) -> B.insert inc v ~table_row:r) entries;
      (match B.validate bulk with Ok () -> () | Error e -> failwith e);
      B.size bulk = B.size inc
      && List.for_all
           (fun k ->
             List.sort compare (B.find bulk (iv k)) = List.sort compare (B.find inc (iv k)))
           (List.sort_uniq compare keys)
      && B.range bulk () = B.range inc ())

let suites =
  suites
  @ [
      ( "index:bulk-load",
        [
          Alcotest.test_case "basics" `Quick test_bulk_load_basics;
          Alcotest.test_case "rejects unsorted" `Quick test_bulk_load_rejects_unsorted;
          qc prop_bulk_equals_incremental;
        ] );
    ]

let test_client_walk_range () =
  let t = fill ~order:4 300 in
  let lo = iv 40 and hi = iv 90 in
  let results, stats = CW.range t ~lo ~hi () in
  Alcotest.(check bool) "matches Bptree.range" true (results = B.range t ~lo ~hi ());
  Alcotest.(check bool) "costs descent + extra leaves" true
    (stats.CW.rounds >= B.height t && stats.CW.nodes_fetched = stats.CW.rounds);
  (* unbounded scan touches the whole chain *)
  let all, stats_all = CW.range t () in
  Alcotest.(check int) "full scan" 300 (List.length all);
  Alcotest.(check bool) "more rounds for bigger answers" true
    (stats_all.CW.rounds > stats.CW.rounds)

let suites =
  suites
  @ [
      ( "index:client-walk-range",
        [ Alcotest.test_case "range over the protocol" `Quick test_client_walk_range ] );
    ]

(* --- bucketized range tree -------------------------------------------------- *)

module RT = Secdb_index.Range_tree

(* an AEAD sealer binding each payload to (tree id, seq, bucket) — the
   configuration Encdb deploys, so tamper/relocate detection is real *)
let rt_sealer ~tree_id =
  let rng = Secdb_util.Rng.create ~seed:77L () in
  let aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(Secdb_util.Rng.bytes rng 16)) in
  let nonce = Secdb_aead.Nonce.of_rng rng ~size:aead.Secdb_aead.Aead.nonce_size in
  let scheme = Secdb_schemes.Fixed_cell.make ~aead ~nonce () in
  let addr ~seq ~bucket = Secdb_db.Address.v ~table:tree_id ~row:seq ~col:bucket in
  {
    RT.sealer_name = scheme.Secdb_schemes.Cell_scheme.name;
    seal = (fun ~seq ~bucket p -> scheme.Secdb_schemes.Cell_scheme.encrypt (addr ~seq ~bucket) p);
    unseal =
      (fun ~seq ~bucket c -> scheme.Secdb_schemes.Cell_scheme.decrypt (addr ~seq ~bucket) c);
  }

let rt_fill ?(sealer = rt_sealer ~tree_id:9) ?(boundaries = [| iv 25; iv 50; iv 75 |]) n =
  let t = RT.create ~id:9 ~sealer ~boundaries () in
  for row = 0 to n - 1 do
    RT.insert t (iv ((row * 37) mod 100)) ~table_row:row
  done;
  t

let test_range_tree_roundtrip () =
  let t = rt_fill 200 in
  Alcotest.(check int) "buckets" 4 (RT.nbuckets t);
  Alcotest.(check int) "size" 200 (RT.size t);
  (* unbounded query = everything, ascending table row *)
  let all = RT.query t () in
  Alcotest.(check int) "all entries" 200 (List.length all);
  Alcotest.(check bool) "row ascending" true
    (List.for_all2
       (fun (_, r1) (_, r2) -> r1 < r2)
       (List.filteri (fun i _ -> i < List.length all - 1) all)
       (List.tl all));
  (* windows are inclusive and exact (bucket overlap filtered away) *)
  let w = RT.query t ~lo:(iv 30) ~hi:(iv 40) () in
  Alcotest.(check bool) "window exact" true
    (List.for_all (fun (v, _) -> Value.compare (iv 30) v <= 0 && Value.compare v (iv 40) <= 0) w);
  (* (row*37) mod 100 cycles with period 100, so each value occurs twice *)
  Alcotest.(check int) "window count" (2 * 11) (List.length w);
  Alcotest.(check int) "inverted window" 0 (List.length (RT.query t ~lo:(iv 40) ~hi:(iv 30) ()));
  (* the leakage surface has the right shape *)
  Alcotest.(check int) "histogram total" 200 (Array.fold_left ( + ) 0 (RT.bucket_counts t));
  let obs = RT.observed t in
  Alcotest.(check int) "observed per entry" 200 (List.length obs);
  Alcotest.(check bool) "buckets match boundaries" true
    (List.for_all (fun (seq, bucket) -> bucket = RT.bucket_of t (iv ((seq * 37) mod 100))) obs)

let test_range_tree_delete () =
  let t = rt_fill 50 in
  Alcotest.(check bool) "delete hits" true (RT.delete t (iv ((7 * 37) mod 100)) ~table_row:7);
  Alcotest.(check int) "size down" 49 (RT.size t);
  Alcotest.(check bool) "row gone" true
    (List.for_all (fun (_, r) -> r <> 7) (RT.query t ()));
  Alcotest.(check bool) "absent pair misses" false (RT.delete t (iv 1) ~table_row:999)

let test_range_tree_boundaries () =
  (match RT.create ~id:1 ~sealer:RT.plain_sealer ~boundaries:[| iv 5; iv 5 |] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing boundaries accepted");
  let b = RT.quantile_boundaries ~buckets:4 (List.init 100 (fun i -> iv (i mod 10))) in
  Alcotest.(check bool) "deduplicated, strictly increasing" true
    (Array.for_all (fun _ -> true) b
    && Array.length b <= 3
    && Array.for_all2 (fun x y -> Value.compare x y < 0)
         (Array.sub b 0 (max 0 (Array.length b - 1)))
         (Array.sub b (min 1 (Array.length b)) (max 0 (Array.length b - 1))));
  Alcotest.(check int) "single bucket" 0 (Array.length (RT.quantile_boundaries ~buckets:1 [ iv 1 ]));
  Alcotest.(check int) "empty input" 0 (Array.length (RT.quantile_boundaries [] ))

let test_range_tree_tamper () =
  let t = rt_fill 40 in
  RT.tamper t ~seq:11 ~f:(fun stored -> String.mapi (fun i c -> if i = String.length stored / 2 then Char.chr (Char.code c lxor 1) else c) stored);
  (match RT.query t () with
  | exception RT.Integrity _ -> ()
  | _ -> Alcotest.fail "tampered payload unsealed");
  (* relocation (rank shifting) also fails: the bucket is associated data *)
  let t2 = rt_fill 40 in
  let _, bucket11 = List.nth (RT.observed t2) 11 in
  let target = if bucket11 = 0 then RT.nbuckets t2 - 1 else 0 in
  RT.relocate t2 ~seq:11 ~bucket:target;
  (match RT.query t2 () with
  | exception RT.Integrity _ -> ()
  | _ -> Alcotest.fail "relocated payload unsealed");
  (* the plain sealer detects nothing, by design *)
  let t3 = rt_fill ~sealer:RT.plain_sealer 40 in
  let _, b11 = List.nth (RT.observed t3) 11 in
  RT.relocate t3 ~seq:11 ~bucket:(if b11 = 0 then 1 else 0);
  Alcotest.(check int) "plain sealer: relocation invisible" 40 (List.length (RT.query t3 ()))

let suites =
  suites
  @ [
      ( "index:range-tree",
        [
          Alcotest.test_case "roundtrip and leakage surface" `Quick test_range_tree_roundtrip;
          Alcotest.test_case "delete" `Quick test_range_tree_delete;
          Alcotest.test_case "boundaries and quantiles" `Quick test_range_tree_boundaries;
          Alcotest.test_case "tamper and relocate fail AEAD" `Quick test_range_tree_tamper;
        ] );
    ]

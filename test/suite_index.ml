module Value = Secdb_db.Value
module B = Secdb_index.Bptree
module CW = Secdb_index.Client_walk

let iv i = Value.Int (Int64.of_int i)

let fill ?(order = 4) n =
  let t = B.create ~order ~id:1 ~codec:B.plain_codec () in
  for i = 0 to n - 1 do
    B.insert t (iv ((i * 37) mod n)) ~table_row:i
  done;
  t

let test_empty_tree () =
  let t = B.create ~id:1 ~codec:B.plain_codec () in
  Alcotest.(check int) "size" 0 (B.size t);
  Alcotest.(check int) "height" 1 (B.height t);
  Alcotest.(check (list int)) "find" [] (B.find t (iv 3));
  Alcotest.(check int) "range" 0 (List.length (B.range t ()));
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "delete on empty" false (B.delete t (iv 3) ~table_row:0)

let test_single () =
  let t = B.create ~id:1 ~codec:B.plain_codec () in
  B.insert t (iv 5) ~table_row:42;
  Alcotest.(check (list int)) "find" [ 42 ] (B.find t (iv 5));
  Alcotest.(check (list int)) "miss" [] (B.find t (iv 6));
  Alcotest.(check bool) "delete" true (B.delete t (iv 5) ~table_row:42);
  Alcotest.(check int) "empty again" 0 (B.size t)

let test_duplicates () =
  let t = B.create ~order:3 ~id:1 ~codec:B.plain_codec () in
  for i = 0 to 30 do
    B.insert t (iv (i mod 3)) ~table_row:i
  done;
  let rows = B.find t (iv 1) in
  Alcotest.(check int) "all duplicates found" 10 (List.length rows);
  Alcotest.(check bool) "rows correct" true (List.for_all (fun r -> r mod 3 = 1) rows);
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  (* delete one specific duplicate *)
  Alcotest.(check bool) "delete (1, 13)" true (B.delete t (iv 1) ~table_row:13);
  Alcotest.(check bool) "gone" true (not (List.mem 13 (B.find t (iv 1))));
  Alcotest.(check int) "others remain" 9 (List.length (B.find t (iv 1)))

let test_range_scans () =
  let t = fill 200 in
  let all = B.range t () in
  Alcotest.(check int) "full range" 200 (List.length all);
  let keys = List.map fst all in
  Alcotest.(check bool) "sorted" true
    (List.for_all2 (fun a b -> Value.compare a b <= 0)
       (List.filteri (fun i _ -> i < List.length keys - 1) keys)
       (List.tl keys));
  let sub = B.range t ~lo:(iv 50) ~hi:(iv 60) () in
  Alcotest.(check int) "inclusive bounds" 11 (List.length sub);
  Alcotest.(check int) "lo only" 150 (List.length (B.range t ~lo:(iv 50) ()));
  Alcotest.(check int) "hi only" 50 (List.length (B.range t ~hi:(iv 49) ()));
  Alcotest.(check int) "empty window" 0 (List.length (B.range t ~lo:(iv 60) ~hi:(iv 50) ()))

let test_structure () =
  let t = fill ~order:4 500 in
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "height logarithmic" true (B.height t <= 7);
  Alcotest.(check int) "path length = height" (B.height t)
    (List.length (B.path_to t (iv 123)));
  (* deep tree at order 2 *)
  let t2 = fill ~order:2 500 in
  Alcotest.(check bool) "order-2 deeper" true (B.height t2 > B.height t);
  match B.validate t2 with Ok () -> () | Error e -> Alcotest.fail e

let test_delete_to_empty () =
  let t = fill ~order:3 120 in
  for i = 0 to 119 do
    let v = iv ((i * 37) mod 120) in
    if not (B.delete t v ~table_row:i) then Alcotest.fail "delete missed";
    match B.validate t with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "invalid after delete %d: %s" i e)
  done;
  Alcotest.(check int) "empty" 0 (B.size t);
  Alcotest.(check int) "root collapsed" 1 (B.height t)

let test_tamper_detection_via_plain_codec () =
  (* plain codec has no integrity, but garbage payloads still fail decode *)
  let t = fill 50 in
  let leaf = B.node_view t (B.first_leaf t) in
  B.set_payload t ~row:leaf.B.row ~slot:0 "garbage!";
  match B.find t (iv 0) with
  | exception B.Integrity _ -> ()
  | _ -> Alcotest.fail "garbage payload survived decode"

let test_node_views () =
  let t = fill 100 in
  let nodes = ref 0 and leaves = ref 0 and entries = ref 0 in
  B.iter_nodes
    (fun v ->
      incr nodes;
      if v.B.node_kind = B.Leaf then begin
        incr leaves;
        entries := !entries + Array.length v.B.payloads
      end
      else
        Alcotest.(check int) "inner fanout" (Array.length v.B.payloads + 1)
          (Array.length v.B.children))
    t;
  Alcotest.(check int) "nnodes consistent" !nodes (B.nnodes t);
  Alcotest.(check int) "leaf entries = size" 100 !entries;
  (* leaf chain covers all leaves *)
  let chain = ref 0 in
  let rec walk row =
    incr chain;
    match (B.node_view t row).B.next with Some n -> walk n | None -> ()
  in
  walk (B.first_leaf t);
  Alcotest.(check int) "chain covers leaves" !leaves !chain

let test_client_walk () =
  let t = fill ~order:4 300 in
  for probe = 0 to 20 do
    let rows, stats = CW.find t (iv probe) in
    Alcotest.(check (list int))
      (Printf.sprintf "client walk agrees with find (%d)" probe)
      (B.find t (iv probe)) rows;
    Alcotest.(check bool) "rounds >= height" true (stats.CW.rounds >= B.height t);
    Alcotest.(check bool) "rounds bounded" true (stats.CW.rounds <= B.height t + 3);
    Alcotest.(check bool) "bytes to client positive" true (stats.CW.bytes_to_client > 0);
    Alcotest.(check int) "one decision byte per round" stats.CW.rounds stats.CW.bytes_to_server
  done;
  Alcotest.(check int) "expected_rounds = height" (B.height t) (CW.expected_rounds t)

let test_create_errors () =
  Alcotest.check_raises "order too small" (Invalid_argument "Bptree.create: order must be >= 2")
    (fun () -> ignore (B.create ~order:1 ~id:1 ~codec:B.plain_codec ()))

(* model-based property test *)

let prop_model ~order =
  QCheck2.Test.make
    ~name:(Printf.sprintf "model equivalence (order %d)" order)
    ~count:30
    QCheck2.Gen.(list_size (int_range 0 400) (pair (int_range 0 9) (int_bound 50)))
    (fun ops ->
      let t = B.create ~order ~id:1 ~codec:B.plain_codec () in
      let model = ref [] in
      let row = ref 0 in
      List.iter
        (fun (op, k) ->
          if op < 7 then begin
            incr row;
            B.insert t (iv k) ~table_row:!row;
            model := (k, !row) :: !model
          end
          else
            match List.find_opt (fun (k', _) -> k' = k) !model with
            | Some (_, r) ->
                if not (B.delete t (iv k) ~table_row:r) then failwith "delete missed";
                let removed = ref false in
                model :=
                  List.filter
                    (fun (k', r') ->
                      if (not !removed) && k' = k && r' = r then begin
                        removed := true;
                        false
                      end
                      else true)
                    !model
            | None -> ())
        ops;
      (match B.validate t with Ok () -> () | Error e -> failwith e);
      (* compare a few probes and a range against the model *)
      List.for_all
        (fun k ->
          List.sort compare (B.find t (iv k))
          = List.sort compare (List.filter_map (fun (k', r) -> if k' = k then Some r else None) !model))
        [ 0; 1; 25; 50 ]
      && List.length (B.range t ()) = List.length !model)

let qc = Test_seed.qc

let suites =
  [
    ( "index:bptree",
      [
        Alcotest.test_case "empty tree" `Quick test_empty_tree;
        Alcotest.test_case "single entry" `Quick test_single;
        Alcotest.test_case "duplicate keys" `Quick test_duplicates;
        Alcotest.test_case "range scans" `Quick test_range_scans;
        Alcotest.test_case "structure invariants" `Quick test_structure;
        Alcotest.test_case "delete to empty" `Quick test_delete_to_empty;
        Alcotest.test_case "garbage payload detected" `Quick
          test_tamper_detection_via_plain_codec;
        Alcotest.test_case "node views and leaf chain" `Quick test_node_views;
        Alcotest.test_case "creation errors" `Quick test_create_errors;
        qc (prop_model ~order:2);
        qc (prop_model ~order:3);
        qc (prop_model ~order:4);
        qc (prop_model ~order:8);
      ] );
    ( "index:client-walk",
      [ Alcotest.test_case "protocol simulation (Remark 1)" `Quick test_client_walk ] );
  ]

(* --- bulk loading --------------------------------------------------------- *)

let test_bulk_load_basics () =
  let entries = List.init 100 (fun i -> (iv (i / 3), i)) in
  let t = B.bulk_load ~order:4 ~id:1 ~codec:B.plain_codec entries in
  (match B.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "size" 100 (B.size t);
  Alcotest.(check (list int)) "duplicates found" [ 30; 31; 32 ] (B.find t (iv 10));
  Alcotest.(check int) "range" 100 (List.length (B.range t ()));
  (* still mutable afterwards *)
  B.insert t (iv 7) ~table_row:777;
  Alcotest.(check bool) "insert works" true (List.mem 777 (B.find t (iv 7)));
  Alcotest.(check bool) "delete works" true (B.delete t (iv 7) ~table_row:777);
  match B.validate t with Ok () -> () | Error e -> Alcotest.fail e

let test_bulk_load_rejects_unsorted () =
  Alcotest.check_raises "unsorted input"
    (Invalid_argument "Bptree.bulk_load: input not sorted") (fun () ->
      ignore (B.bulk_load ~id:1 ~codec:B.plain_codec [ (iv 2, 0); (iv 1, 1) ]))

let prop_bulk_equals_incremental =
  QCheck2.Test.make ~name:"bulk load = incremental inserts" ~count:60
    QCheck2.Gen.(pair (int_range 2 9) (list_size (int_range 0 300) (int_bound 40)))
    (fun (order, keys) ->
      let entries = List.mapi (fun i k -> (iv k, i)) keys in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> Secdb_db.Value.compare a b) entries in
      let bulk = B.bulk_load ~order ~id:1 ~codec:B.plain_codec sorted in
      let inc = B.create ~order ~id:1 ~codec:B.plain_codec () in
      List.iter (fun (v, r) -> B.insert inc v ~table_row:r) entries;
      (match B.validate bulk with Ok () -> () | Error e -> failwith e);
      B.size bulk = B.size inc
      && List.for_all
           (fun k ->
             List.sort compare (B.find bulk (iv k)) = List.sort compare (B.find inc (iv k)))
           (List.sort_uniq compare keys)
      && B.range bulk () = B.range inc ())

let suites =
  suites
  @ [
      ( "index:bulk-load",
        [
          Alcotest.test_case "basics" `Quick test_bulk_load_basics;
          Alcotest.test_case "rejects unsorted" `Quick test_bulk_load_rejects_unsorted;
          qc prop_bulk_equals_incremental;
        ] );
    ]

let test_client_walk_range () =
  let t = fill ~order:4 300 in
  let lo = iv 40 and hi = iv 90 in
  let results, stats = CW.range t ~lo ~hi () in
  Alcotest.(check bool) "matches Bptree.range" true (results = B.range t ~lo ~hi ());
  Alcotest.(check bool) "costs descent + extra leaves" true
    (stats.CW.rounds >= B.height t && stats.CW.nodes_fetched = stats.CW.rounds);
  (* unbounded scan touches the whole chain *)
  let all, stats_all = CW.range t () in
  Alcotest.(check int) "full scan" 300 (List.length all);
  Alcotest.(check bool) "more rounds for bigger answers" true
    (stats_all.CW.rounds > stats.CW.rounds)

let suites =
  suites
  @ [
      ( "index:client-walk-range",
        [ Alcotest.test_case "range over the protocol" `Quick test_client_walk_range ] );
    ]

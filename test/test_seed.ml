(* One seed for every property-based test in the suite, printed at startup so
   a failing CI run can be reproduced locally with
   [SECDB_TEST_SEED=<n> dune runtest].  Each test gets a fresh
   [Random.State.t] derived from the seed, so determinism does not depend on
   which tests run or in what order. *)

let default_seed = 0x5ec0de

let seed =
  match Sys.getenv_opt "SECDB_TEST_SEED" with
  | None | Some "" -> default_seed
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> invalid_arg ("SECDB_TEST_SEED must be an integer, got: " ^ s))

let () = Printf.printf "SECDB_TEST_SEED=%d\n%!" seed
let qc test = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test

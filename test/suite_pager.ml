module Pager = Secdb_storage.Pager
module Blob = Secdb_storage.Blob_store
module Vfs = Secdb_storage.Vfs
module Xbytes = Secdb_util.Xbytes
module Rng = Secdb_util.Rng

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("secdb_pager_" ^ name)

let test_pager_basics () =
  let path = tmp "basic.pg" in
  let p = Pager.create ~path ~page_size:128 ~cache_pages:4 () in
  Alcotest.(check int) "page size" 128 (Pager.page_size p);
  let a = Pager.alloc p and b = Pager.alloc p in
  Alcotest.(check bool) "distinct pages" true (a <> b);
  Pager.write p a "hello page a";
  Pager.write p b "hello page b";
  Alcotest.(check string) "read back a" "hello page a" (String.sub (Pager.read p a) 0 12);
  Alcotest.(check string) "zero padded" (String.make 10 '\000')
    (String.sub (Pager.read p a) 12 10);
  (* free + realloc recycles *)
  Pager.free p a;
  let c = Pager.alloc p in
  Alcotest.(check int) "recycled" a c;
  Alcotest.(check string) "recycled page zeroed" (String.make 128 '\000') (Pager.read p c);
  Alcotest.check_raises "header protected" (Invalid_argument "Pager.free: page 0 out of range")
    (fun () -> Pager.free p 0);
  Alcotest.check_raises "oversized write"
    (Invalid_argument "Pager.write: data exceeds the page size") (fun () ->
      Pager.write p a (String.make 129 'x'));
  Pager.close p

let test_pager_persistence () =
  let path = tmp "persist.pg" in
  let p = Pager.create ~path ~page_size:256 () in
  let pages = List.init 10 (fun i -> (Pager.alloc p, Printf.sprintf "persistent page %d" i)) in
  List.iter (fun (page, content) -> Pager.write p page content) pages;
  Pager.free p (fst (List.nth pages 4));
  Pager.close p;
  match Pager.open_file ~path () with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      Alcotest.(check int) "page size restored" 256 (Pager.page_size p');
      Alcotest.(check int) "page count restored" 10 (Pager.page_count p');
      List.iteri
        (fun i (page, content) ->
          if i <> 4 then
            Alcotest.(check string)
              (Printf.sprintf "page %d" i)
              content
              (String.sub (Pager.read p' page) 0 (String.length content)))
        pages;
      (* the free list also survived *)
      Alcotest.(check int) "freed page recycled after reopen" (fst (List.nth pages 4))
        (Pager.alloc p');
      Pager.close p'

let test_pager_open_errors () =
  (match Pager.open_file ~path:(tmp "missing.pg") () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file opened");
  let path = tmp "junk.pg" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "this is not a pager file at all");
  match Pager.open_file ~path () with
  | Error e -> Alcotest.(check bool) "reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "junk accepted"

(* forge a header with chosen fields and check open_file's verdict *)
let forged_header ~psize ~npages ~free_head =
  Pager.magic
  ^ Xbytes.int_to_be_string ~width:4 psize
  ^ Xbytes.int_to_be_string ~width:4 npages
  ^ Xbytes.int_to_be_string ~width:4 free_head

let test_header_validation () =
  let path = tmp "header.pg" in
  let try_header ?(pad = 0) h =
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc h;
        Out_channel.output_string oc (String.make pad '\000'));
    Pager.open_file ~path ()
  in
  let expect_error name h =
    match try_header ~pad:256 h with
    | Error e -> Alcotest.(check bool) (name ^ " reported") true (String.length e > 0)
    | Ok _ -> Alcotest.fail (name ^ " accepted")
  in
  expect_error "tiny page size" (forged_header ~psize:32 ~npages:1 ~free_head:0);
  expect_error "zero page size" (forged_header ~psize:0 ~npages:1 ~free_head:0);
  expect_error "free head beyond npages" (forged_header ~psize:64 ~npages:2 ~free_head:3);
  expect_error "wrong magic"
    ("XXXXXXXX" ^ String.sub (forged_header ~psize:64 ~npages:1 ~free_head:0) 8 12);
  (* truncated header: shorter than 20 bytes must not be read as zeros *)
  (match try_header (String.sub (forged_header ~psize:64 ~npages:1 ~free_head:0) 0 13) with
  | Error e -> Alcotest.(check bool) "truncated header reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "truncated header accepted");
  (* a well-formed forged header with no pages is fine *)
  match try_header (forged_header ~psize:64 ~npages:0 ~free_head:0) with
  | Ok p -> Pager.close p
  | Error e -> Alcotest.fail ("valid minimal header rejected: " ^ e)

let test_short_read_open () =
  (* the fault VFS delivers reads in dribbles; open_file must loop, not
     decode a partial header *)
  let ctl = Vfs.Fault.make ~seed:42 () in
  Vfs.Fault.set_short_reads ctl true;
  let vfs = Vfs.Fault.vfs ctl in
  let path = "mem:short.pg" in
  let p = Pager.create ~path ~page_size:128 ~cache_pages:4 ~vfs () in
  let a = Pager.alloc p in
  Pager.write p a "short read survivor";
  Pager.close p;
  match Pager.open_file ~path ~vfs () with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      Alcotest.(check string) "data intact" "short read survivor"
        (String.sub (Pager.read p' a) 0 19);
      Pager.close p'

let test_free_zeroizes () =
  let path = tmp "zeroize.pg" in
  let p = Pager.create ~path ~page_size:128 ~cache_pages:4 () in
  let a = Pager.alloc p in
  let secret = "TOP-SECRET-PLAINTEXT-RESIDUE" in
  Pager.write p a secret;
  Pager.flush p;
  Pager.free p a;
  Pager.close p;
  (* inspect the raw file: beyond the 8-byte next pointer the page must be
     zero — no remanence of the freed payload (page 0 is the header page,
     so page [a] starts at [a * page_size]) *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let off = a * 128 in
  let tail = String.sub data (off + 8) (128 - 8) in
  Alcotest.(check string) "freed page zeroized" (String.make 120 '\000') tail;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "secret gone from file" true (not (contains data secret))

let test_cache_accounting () =
  let path = tmp "cache.pg" in
  let p = Pager.create ~path ~page_size:64 ~cache_pages:2 () in
  let pages = List.init 4 (fun _ -> Pager.alloc p) in
  List.iter (fun page -> Pager.write p page "x") pages;
  Pager.flush p;
  Pager.reset_stats p;
  (* touching 3 distinct pages through a 2-page cache must evict *)
  List.iteri (fun i page -> if i < 3 then ignore (Pager.read p page)) pages;
  let st = Pager.stats p in
  Alcotest.(check bool) "misses counted" true (st.Pager.cache_misses >= 1);
  Alcotest.(check bool) "evictions happened" true (st.Pager.evictions >= 1);
  (* re-reading the hottest page is a hit *)
  let hot = List.nth pages 2 in
  let hits0 = st.Pager.cache_hits in
  ignore (Pager.read p hot);
  Alcotest.(check bool) "hit counted" true ((Pager.stats p).Pager.cache_hits > hits0);
  (* dirty eviction does not lose data *)
  Pager.write p (List.nth pages 0) "dirty-evict me";
  ignore (Pager.read p (List.nth pages 1));
  ignore (Pager.read p (List.nth pages 2));
  ignore (Pager.read p (List.nth pages 3));
  Alcotest.(check string) "dirty page survived eviction" "dirty-evict me"
    (String.sub (Pager.read p (List.nth pages 0)) 0 14);
  Pager.close p

let test_blob_roundtrip () =
  let path = tmp "blob.pg" in
  let p = Pager.create ~path ~page_size:96 ~cache_pages:8 () in
  let store = Blob.attach p in
  let rng = Rng.create ~seed:71L () in
  let blobs =
    List.init 30 (fun i -> (Rng.bytes rng (Rng.int rng 500), i))
    |> List.map (fun (data, _) -> (Blob.store store data, data))
  in
  List.iter
    (fun (id, data) ->
      match Blob.load store id with
      | Ok d when d = data -> ()
      | Ok _ -> Alcotest.fail "blob corrupted"
      | Error e -> Alcotest.fail (Blob.chain_error_to_string e))
    blobs;
  (* chains span multiple pages for large blobs *)
  let big_id = Blob.store store (String.make 1000 'B') in
  (match Blob.pages_of store big_id with
  | Ok pages -> Alcotest.(check bool) "multi-page" true (List.length pages >= 12)
  | Error e -> Alcotest.fail (Blob.chain_error_to_string e));
  (* overwrite shrinking and growing *)
  ignore (Blob.overwrite store big_id "now tiny");
  (match Blob.load store big_id with
  | Ok "now tiny" -> ()
  | _ -> Alcotest.fail "shrink failed");
  ignore (Blob.overwrite store big_id (String.make 2000 'G'));
  (match Blob.load store big_id with
  | Ok s when s = String.make 2000 'G' -> ()
  | _ -> Alcotest.fail "grow failed");
  (* delete releases pages for reuse *)
  let before = Pager.page_count p in
  Blob.delete store big_id;
  let re_id = Blob.store store (String.make 2000 'R') in
  Alcotest.(check int) "pages recycled" before (Pager.page_count p);
  (match Blob.load store re_id with
  | Ok s when s = String.make 2000 'R' -> ()
  | _ -> Alcotest.fail "recycled blob broken");
  (* empty blob *)
  let e = Blob.store store "" in
  (match Blob.load store e with Ok "" -> () | _ -> Alcotest.fail "empty blob");
  Pager.close p

let test_blob_persistence_of_saved_table () =
  (* the full artefact path: encrypted table -> bytes -> blob chain -> file,
     reopened and decoded *)
  let path = tmp "artefact.pg" in
  let aes = Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'K') in
  let scheme =
    Secdb_schemes.Fixed_cell.make ~aead:(Secdb_aead.Eax.make aes)
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
      ()
  in
  let schema =
    Secdb_db.Schema.v ~table_name:"t"
      [ Secdb_db.Schema.column "v" Secdb_db.Value.Ktext ]
  in
  let tbl = Secdb_query.Encrypted_table.create ~id:3 schema ~scheme:(fun _ -> scheme) in
  for i = 0 to 40 do
    ignore (Secdb_query.Encrypted_table.insert tbl [ Secdb_db.Value.Text (Printf.sprintf "row %d" i) ])
  done;
  let p = Pager.create ~path ~page_size:512 () in
  let id = Blob.store (Blob.attach p) (Secdb_storage.Storage.encode_table tbl) in
  Pager.close p;
  match Pager.open_file ~path () with
  | Error e -> Alcotest.fail e
  | Ok p' -> (
      match Blob.load (Blob.attach p') id with
      | Error e -> Alcotest.fail (Blob.chain_error_to_string e)
      | Ok bytes -> (
          match Secdb_storage.Storage.decode_table ~scheme:(fun _ -> scheme) bytes with
          | Error e -> Alcotest.fail e
          | Ok tbl' ->
              Alcotest.(check string) "cell decrypts after disk roundtrip" "row 17"
                (Secdb_db.Value.text_exn
                   (Secdb_query.Encrypted_table.get_exn tbl' ~row:17 ~col:0));
              Pager.close p'))

let qc = Test_seed.qc

let prop_blob_roundtrip =
  QCheck2.Test.make ~name:"blob store/load/overwrite roundtrip" ~count:40
    QCheck2.Gen.(pair (string_size (int_range 0 700)) (string_size (int_range 0 700)))
    (fun (a, b) ->
      let path = tmp "prop.pg" in
      let p = Pager.create ~path ~page_size:80 ~cache_pages:3 () in
      let store = Blob.attach p in
      let id = Blob.store store a in
      let ok1 = Blob.load store id = Ok a in
      ignore (Blob.overwrite store id b);
      let ok2 = Blob.load store id = Ok b in
      Pager.close p;
      ok1 && ok2)

let suites =
  [
    ( "storage:pager",
      [
        Alcotest.test_case "basics" `Quick test_pager_basics;
        Alcotest.test_case "persistence" `Quick test_pager_persistence;
        Alcotest.test_case "open errors" `Quick test_pager_open_errors;
        Alcotest.test_case "header validation" `Quick test_header_validation;
        Alcotest.test_case "short reads while opening" `Quick test_short_read_open;
        Alcotest.test_case "free zeroizes the page" `Quick test_free_zeroizes;
        Alcotest.test_case "cache accounting" `Quick test_cache_accounting;
      ] );
    ( "storage:blobs",
      [
        Alcotest.test_case "roundtrips and recycling" `Quick test_blob_roundtrip;
        Alcotest.test_case "encrypted table through the pager" `Quick
          test_blob_persistence_of_saved_table;
        qc prop_blob_roundtrip;
      ] );
  ]

open Secdb_util
module Value = Secdb_db.Value
module Address = Secdb_db.Address
module B = Secdb_index.Bptree
module Einst = Secdb_schemes.Einst
module PM = Secdb_attacks.Pattern_matching
module Forgery = Secdb_attacks.Forgery
module Sub = Secdb_attacks.Substitution
module MacI = Secdb_attacks.Mac_interaction
module KS = Secdb_attacks.Keystream_reuse

let hex = Xbytes.of_hex
let key = hex "000102030405060708090a0b0c0d0e0f"
let aes k = Secdb_cipher.Aes.cipher ~key:k
let mu = Address.mu_sha1 ~width:16
let e_cbc0 () = Einst.cbc_zero_iv (aes key)
let append_scheme () = Secdb_schemes.Cell_append.make ~e:(e_cbc0 ()) ~mu

let fixed_scheme () =
  Secdb_schemes.Fixed_cell.make
    ~aead:(Secdb_aead.Eax.make (aes key))
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) ()

(* A1: pattern matching on cells *)

let workload rng =
  let prefix = String.make 32 'P' in
  List.init 24 (fun i ->
      (i, if i mod 2 = 0 then prefix ^ Rng.ascii rng 20 else Rng.ascii rng 52))

let test_a1_pattern_matching_broken () =
  let rng = Rng.create ~seed:31L () in
  let r = PM.cells ~scheme:(append_scheme ()) ~block:16 ~table:1 ~col:0 (workload rng) in
  Alcotest.(check int) "ground truth pairs" 66 r.PM.true_pairs;
  (* 12 prefix-sharing rows -> C(12,2) pairs *)
  Alcotest.(check int) "all detected" 66 r.PM.detected_pairs;
  Alcotest.(check int) "no false positives" 66 r.PM.true_positives;
  List.iter
    (fun (p : PM.pair) ->
      Alcotest.(check bool) "even rows only" true (p.PM.row_a mod 2 = 0 && p.PM.row_b mod 2 = 0);
      Alcotest.(check bool) "shared blocks >= 2" true (p.PM.shared_ct_blocks >= 2))
    r.PM.pairs

let test_a1_pattern_matching_fixed () =
  let rng = Rng.create ~seed:31L () in
  let r =
    PM.cells ~scheme:(fixed_scheme ()) ~extract:PM.extract_fixed_cell ~block:16 ~table:1
      ~col:0 (workload rng)
  in
  Alcotest.(check int) "AEAD hides everything" 0 r.PM.detected_pairs

let test_a1_ecb_even_worse () =
  (* ECB leaks not only prefixes but all equal blocks; prefix detection
     still reports every true pair *)
  let rng = Rng.create ~seed:32L () in
  let scheme = Secdb_schemes.Cell_append.make ~e:(Einst.ecb (aes key)) ~mu in
  let r = PM.cells ~scheme ~block:16 ~table:1 ~col:0 (workload rng) in
  Alcotest.(check int) "ecb detects all" r.PM.true_pairs r.PM.detected_pairs

(* A2: forgery *)

let test_a2_forgery () =
  let rng = Rng.create ~seed:33L () in
  Alcotest.(check (float 0.0)) "broken scheme: always forgeable" 1.0
    (Forgery.success_rate ~scheme:(append_scheme ()) ~block:16 ~table:1 ~col:0 ~value_len:64
       ~trials:40 ~rng);
  Alcotest.(check (float 0.0)) "fixed scheme: never" 0.0
    (Forgery.success_rate ~scheme:(fixed_scheme ()) ~block:16 ~table:1 ~col:0 ~value_len:64
       ~trials:40 ~rng)

let test_a2_forgery_details () =
  let rng = Rng.create ~seed:34L () in
  let addr = Address.v ~table:1 ~row:3 ~col:0 in
  (match Forgery.forge ~scheme:(append_scheme ()) ~block:16 ~addr ~value:(Rng.ascii rng 48) ~rng with
  | Ok o ->
      Alcotest.(check bool) "accepted" true o.Forgery.accepted;
      Alcotest.(check bool) "changed" true o.Forgery.changed;
      Alcotest.(check bool) "eligible block" true
        (o.Forgery.modified_ct_block >= 0 && o.Forgery.modified_ct_block <= 1);
      (* forged value has the original length: only V blocks were garbled *)
      (match o.Forgery.forged_value with
      | Some v -> Alcotest.(check int) "length preserved" 48 (String.length v)
      | None -> Alcotest.fail "no forged value")
  | Error e -> Alcotest.fail e);
  (* too-short values leave no eligible block *)
  match Forgery.forge ~scheme:(append_scheme ()) ~block:16 ~addr ~value:"short" ~rng with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short value accepted"

(* A3: substitution / the paper's 1024-address experiment *)

let test_a3_experiment () =
  let ex = Sub.collision_search ~mu ~table:5 ~col:2 ~trials:1024 in
  Alcotest.(check int) "expected about 8" 8 (int_of_float (Float.round ex.Sub.expected));
  (* binomial(523776, 2^-16): P(count in [1..25]) > 1 - 1e-6 *)
  let n = List.length ex.Sub.collisions in
  Alcotest.(check bool) (Printf.sprintf "plausible collision count (%d)" n) true
    (n >= 1 && n <= 25);
  (* each reported pair really collides on every high bit *)
  List.iter
    (fun (r1, r2) ->
      let d1 = mu.Address.digest (Address.v ~table:5 ~row:r1 ~col:2) in
      let d2 = mu.Address.digest (Address.v ~table:5 ~row:r2 ~col:2) in
      Alcotest.(check bool) "high bits match" true (Sub.high_bits_match d1 d2))
    ex.Sub.collisions

let test_a3_relocation () =
  let scheme =
    Secdb_schemes.Cell_xor.make ~e:(e_cbc0 ()) ~mu ~validate:Xbytes.is_ascii7 ()
  in
  let ex = Sub.collision_search ~mu ~table:5 ~col:2 ~trials:1024 in
  match ex.Sub.collisions with
  | (r1, r2) :: _ ->
      let v = "exactly 16 chars" in
      let rel = Sub.relocate ~scheme ~table:5 ~col:2 ~value:v ~from_row:r1 ~to_row:r2 in
      Alcotest.(check bool) "colliding pair accepted" true rel.Sub.accepted;
      (match rel.Sub.recovered with
      | Some v' ->
          Alcotest.(check bool) "content changed" true (v' <> v);
          Alcotest.(check bool) "still valid ascii" true (Xbytes.is_ascii7 v')
      | None -> Alcotest.fail "no recovered value");
      (* the AEAD fix refuses the same relocation *)
      let relf =
        Sub.relocate ~scheme:(fixed_scheme ()) ~table:5 ~col:2 ~value:v ~from_row:r1
          ~to_row:r2
      in
      Alcotest.(check bool) "fixed scheme rejects" false relf.Sub.accepted
  | [] -> Alcotest.fail "no collisions in 1024 trials (p < 1e-3)"

let test_a3_high_bits_match () =
  Alcotest.(check bool) "same" true (Sub.high_bits_match "\x00\x7f" "\x7f\x00");
  Alcotest.(check bool) "differ" false (Sub.high_bits_match "\x80" "\x00");
  Alcotest.(check bool) "length mismatch" false (Sub.high_bits_match "\x00" "\x00\x00")

(* A4/A5: index correlation *)

let correlation codec_of_e =
  let rng = Rng.create ~seed:35L () in
  let prefix = String.make 32 'P' in
  let texts =
    List.init 16 (fun i -> if i mod 4 = 0 then prefix ^ Rng.ascii rng 17 else Rng.ascii rng 49)
  in
  let tree = B.create ~order:4 ~id:1000 ~codec:codec_of_e () in
  List.iteri (fun i s -> B.insert tree (Value.Text s) ~table_row:i) texts;
  let plaintexts = List.mapi (fun i s -> (i, Value.encode (Value.Text s))) texts in
  (tree, plaintexts)

let test_a4_index3_correlation () =
  let tree, plaintexts = correlation (Secdb_schemes.Index3.codec ~e:(e_cbc0 ())) in
  let r =
    PM.index_correlation ~cell_scheme:(append_scheme ()) ~tree
      ~payload_ciphertext:PM.extract_index3 ~block:16 ~table:1 ~col:0 ~plaintexts
  in
  Alcotest.(check bool) "links found" true (r.PM.total_links > 0);
  Alcotest.(check int) "all links correct" r.PM.total_links r.PM.correct_links

let test_a5_index12_correlation () =
  let codec =
    Secdb_schemes.Index12.codec ~e:(e_cbc0 ()) ~mac_cipher:(aes key)
      ~rng:(Rng.create ~seed:36L ()) ~indexed_table:1 ~indexed_col:0 ()
  in
  let tree, plaintexts = correlation codec in
  let r =
    PM.index_correlation ~cell_scheme:(append_scheme ()) ~tree
      ~payload_ciphertext:PM.extract_index12 ~block:16 ~table:1 ~col:0 ~plaintexts
  in
  Alcotest.(check bool) "randomness does not stop linkage" true (r.PM.total_links > 0);
  Alcotest.(check int) "all links correct" r.PM.total_links r.PM.correct_links

let test_a5_fixed_index_no_correlation () =
  let codec =
    Secdb_schemes.Fixed_index.codec
      ~aead:(Secdb_aead.Eax.make (aes key))
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
      ~indexed_table:1 ~indexed_col:0 ()
  in
  let tree, plaintexts = correlation codec in
  let r =
    PM.index_correlation ~cell_scheme:(fixed_scheme ()) ~tree
      ~payload_ciphertext:PM.extract_fixed ~block:16 ~table:1 ~col:0 ~plaintexts
  in
  Alcotest.(check int) "no linkage" 0 r.PM.total_links

(* A6: same-key CBC-MAC interaction *)

let test_a6_mac_interaction () =
  let rng = Rng.create ~seed:37L () in
  let ctx = { B.index_table = 1000; node_row = 4; kind = B.Leaf } in
  let e = e_cbc0 () in
  let same_key =
    Secdb_schemes.Index12.codec ~e ~mac_cipher:(aes key) ~rng ~indexed_table:1 ~indexed_col:0 ()
  in
  let indep =
    Secdb_schemes.Index12.codec ~e ~mac_cipher:(aes (hex "00112233445566778899aabbccddeeff"))
      ~rng ~indexed_table:1 ~indexed_col:0 ()
  in
  for trial = 1 to 15 do
    (* |Value.encode v| = 1 + 47 = 48 bytes = 3 whole blocks (s = 3 > 2) *)
    let value = Value.Text (Rng.ascii rng 47) in
    (match MacI.run ~codec:same_key ~ctx ~block:16 ~value ~table_row:trial ~rng with
    | Ok o ->
        Alcotest.(check bool) "same key: accepted" true o.MacI.accepted;
        Alcotest.(check bool) "same key: changed" true o.MacI.value_changed
    | Error e -> Alcotest.fail e);
    match MacI.run ~codec:indep ~ctx ~block:16 ~value ~table_row:trial ~rng with
    | Ok o -> Alcotest.(check bool) "independent keys: rejected" false o.MacI.accepted
    | Error e -> Alcotest.fail e
  done;
  (* the paper's s > 2 requirement *)
  match
    MacI.run ~codec:same_key ~ctx ~block:16 ~value:(Value.Text "tiny") ~table_row:0 ~rng
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short value accepted"

(* A7: keystream reuse *)

let test_a7_keystream_reuse () =
  let scheme = Secdb_schemes.Cell_append.make ~e:(Einst.ctr_zero (aes key)) ~mu in
  let v1 = "known plaintext attack: this string is public....." in
  let v2 = "secret: patient diagnosed with hypertension stage2" in
  let a1 = Address.v ~table:1 ~row:0 ~col:0 and a2 = Address.v ~table:1 ~row:1 ~col:0 in
  let c1 = Secdb_schemes.Cell_scheme.encrypt scheme a1 v1 in
  let c2 = Secdb_schemes.Cell_scheme.encrypt scheme a2 v2 in
  let x = KS.plaintext_xor_append ~ct_a:c1 ~ct_b:c2 in
  let recovered = Xbytes.take (String.length v2) (KS.crib_drag ~known:v1 ~xor:x) in
  Alcotest.(check string) "full recovery from one crib" v2 recovered;
  (* keystream recovery decrypts a third cell *)
  let v3 = "another secret value in the same column 12345678" in
  let c3 = Secdb_schemes.Cell_scheme.encrypt scheme (Address.v ~table:1 ~row:2 ~col:0) v3 in
  let ks = KS.recover_keystream ~known:v1 ~ct:c1 in
  Alcotest.(check string) "third cell decrypted" v3
    (Xbytes.take (String.length v3) (KS.crib_drag ~known:ks ~xor:c3));
  (* ofb behaves identically *)
  let scheme_ofb = Secdb_schemes.Cell_append.make ~e:(Einst.ofb_zero (aes key)) ~mu in
  let c1' = Secdb_schemes.Cell_scheme.encrypt scheme_ofb a1 v1 in
  let c2' = Secdb_schemes.Cell_scheme.encrypt scheme_ofb a2 v2 in
  Alcotest.(check string) "ofb leaks the same xor"
    (Xbytes.to_hex (Xbytes.take 40 (KS.plaintext_xor_append ~ct_a:c1 ~ct_b:c2)))
    (Xbytes.to_hex (Xbytes.take 40 (KS.plaintext_xor_append ~ct_a:c1' ~ct_b:c2')))

let test_a7_xor_scheme_variant () =
  let scheme = Secdb_schemes.Cell_xor.make ~e:(Einst.ctr_zero (aes key)) ~mu
      ~validate:(fun _ -> true) () in
  let v1 = "known plaintext!" and v2 = "hidden secret!!!" in
  let a1 = Address.v ~table:1 ~row:0 ~col:0 and a2 = Address.v ~table:1 ~row:1 ~col:0 in
  let c1 = Secdb_schemes.Cell_scheme.encrypt scheme a1 v1 in
  let c2 = Secdb_schemes.Cell_scheme.encrypt scheme a2 v2 in
  let x = KS.plaintext_xor_xor_scheme ~mu ~addr_a:a1 ~ct_a:c1 ~addr_b:a2 ~ct_b:c2 in
  Alcotest.(check string) "v1^v2 recovered despite mu masking"
    (Xbytes.to_hex (Xbytes.xor_exact v1 v2))
    (Xbytes.to_hex (Xbytes.take 16 x))

(* fixed schemes survive the whole gauntlet *)

let test_fix_verification_summary () =
  let rng = Rng.create ~seed:39L () in
  List.iter
    (fun mk ->
      let aead : Secdb_aead.Aead.t = mk (aes key) in
      let scheme =
        Secdb_schemes.Fixed_cell.make ~aead
          ~nonce:(Secdb_aead.Nonce.of_rng (Rng.create ~seed:40L ()) ~size:aead.Secdb_aead.Aead.nonce_size)
          ()
      in
      let r = PM.cells ~scheme ~extract:PM.extract_fixed_cell ~block:16 ~table:1 ~col:0 (workload rng) in
      Alcotest.(check int) (aead.Secdb_aead.Aead.name ^ " pattern") 0 r.PM.detected_pairs;
      Alcotest.(check (float 0.0)) (aead.Secdb_aead.Aead.name ^ " forgery") 0.0
        (Forgery.success_rate ~scheme ~block:16 ~table:1 ~col:0 ~value_len:64 ~trials:20 ~rng))
    [ Secdb_aead.Eax.make; Secdb_aead.Ocb.make; Secdb_aead.Ccfb.make ]

let suites =
  [
    ( "attacks:pattern-matching",
      [
        Alcotest.test_case "A1 broken append scheme" `Quick test_a1_pattern_matching_broken;
        Alcotest.test_case "A1 fixed scheme immune" `Quick test_a1_pattern_matching_fixed;
        Alcotest.test_case "A1 ECB instantiation" `Quick test_a1_ecb_even_worse;
      ] );
    ( "attacks:forgery",
      [
        Alcotest.test_case "A2 success rates" `Quick test_a2_forgery;
        Alcotest.test_case "A2 forgery anatomy" `Quick test_a2_forgery_details;
      ] );
    ( "attacks:substitution",
      [
        Alcotest.test_case "A3 the 1024-address experiment" `Quick test_a3_experiment;
        Alcotest.test_case "A3 ciphertext relocation" `Quick test_a3_relocation;
        Alcotest.test_case "A3 high-bit matching" `Quick test_a3_high_bits_match;
      ] );
    ( "attacks:index-correlation",
      [
        Alcotest.test_case "A4 index scheme of [3]" `Quick test_a4_index3_correlation;
        Alcotest.test_case "A5 improved scheme of [12]" `Quick test_a5_index12_correlation;
        Alcotest.test_case "A5 fixed index immune" `Quick test_a5_fixed_index_no_correlation;
      ] );
    ( "attacks:mac-interaction",
      [ Alcotest.test_case "A6 same-key OMAC forgery" `Quick test_a6_mac_interaction ] );
    ( "attacks:keystream-reuse",
      [
        Alcotest.test_case "A7 append scheme under CTR/OFB" `Quick test_a7_keystream_reuse;
        Alcotest.test_case "A7 XOR scheme variant" `Quick test_a7_xor_scheme_variant;
      ] );
    ( "attacks:fix-verification",
      [ Alcotest.test_case "all fixes survive the gauntlet" `Quick test_fix_verification_summary ] );
  ]

(* --- padding oracle (Vaudenay) ------------------------------------------ *)

let test_padding_oracle_recovers_plaintext () =
  let scheme = append_scheme () in
  let addr = Address.v ~table:2 ~row:9 ~col:1 in
  let secret = "oracle-recoverable secret!" in
  let ct = Secdb_schemes.Cell_scheme.encrypt scheme addr secret in
  let oracle = Secdb_attacks.Padding_oracle.oracle_of_scheme scheme addr in
  (match Secdb_attacks.Padding_oracle.decrypt_ciphertext ~oracle ~block:16 ct with
  | Some plain ->
      Alcotest.(check string) "plaintext recovered" secret
        (Xbytes.take (String.length secret) plain);
      (* the recovered padded plaintext also contains the address digest *)
      Alcotest.(check string) "mu recovered" (Xbytes.to_hex (mu.Address.digest addr))
        (Xbytes.to_hex (Xbytes.take 16 (Xbytes.drop (String.length secret) plain)))
  | None -> Alcotest.fail "oracle attack failed against the broken scheme");
  (* single-block decryption agrees with CBC semantics *)
  let first_block = String.sub ct 0 16 in
  match
    Secdb_attacks.Padding_oracle.decrypt_block ~oracle ~block:16
      ~prev:(String.make 16 '\000') first_block
  with
  | Some p -> Alcotest.(check string) "first block" (String.sub secret 0 16) p
  | None -> Alcotest.fail "block decryption failed"

let test_padding_oracle_absent_on_fix () =
  let rng = Rng.create ~seed:61L () in
  let addr = Address.v ~table:2 ~row:9 ~col:1 in
  Alcotest.(check bool) "broken scheme leaks an oracle" true
    (Secdb_attacks.Padding_oracle.oracle_exists (append_scheme ()) addr ~trials:300 ~rng);
  Alcotest.(check bool) "fixed scheme does not" false
    (Secdb_attacks.Padding_oracle.oracle_exists (fixed_scheme ()) addr ~trials:300 ~rng);
  (* and running the full attack against the fix returns None *)
  let fixed = fixed_scheme () in
  let ct = Secdb_schemes.Cell_scheme.encrypt fixed addr "unreachable" in
  let oracle = Secdb_attacks.Padding_oracle.oracle_of_scheme fixed addr in
  match
    Secdb_attacks.Padding_oracle.decrypt_ciphertext ~oracle ~block:16
      (Xbytes.take 32 (ct ^ String.make 32 'x'))
  with
  | None -> ()
  | Some _ -> Alcotest.fail "oracle attack succeeded against AEAD"

(* --- dictionary ----------------------------------------------------------- *)

let test_dictionary_attack () =
  let rng = Rng.create ~seed:62L () in
  let universe = Array.init 20 (fun i -> Printf.sprintf "diagnosis %02d %s" i (Rng.ascii rng 10)) in
  let victims = List.init 30 (fun row -> (row, Rng.pick rng universe)) in
  let r =
    Secdb_attacks.Dictionary.attack ~scheme:(append_scheme ()) ~block:16 ~table:1 ~col:0
      ~candidates:(Array.to_list universe) ~victims 30
  in
  Alcotest.(check int) "all victims recovered" 30 (List.length r.Secdb_attacks.Dictionary.recovered);
  Alcotest.(check int) "none missed" 0 r.Secdb_attacks.Dictionary.missed;
  List.iter
    (fun (row, v) ->
      Alcotest.(check string) "correct value" (List.assoc row victims) v)
    r.Secdb_attacks.Dictionary.recovered;
  (* out-of-dictionary victims are missed, not misattributed *)
  let r2 =
    Secdb_attacks.Dictionary.attack ~scheme:(append_scheme ()) ~block:16 ~table:1 ~col:0
      ~candidates:(Array.to_list universe)
      ~victims:[ (0, "a value nobody guessed, full block!") ]
      10
  in
  Alcotest.(check int) "unknown value missed" 1 r2.Secdb_attacks.Dictionary.missed;
  (* the fix resists *)
  let r3 =
    Secdb_attacks.Dictionary.attack ~scheme:(fixed_scheme ())
      ~extract:PM.extract_fixed_cell ~block:16 ~table:1 ~col:0
      ~candidates:(Array.to_list universe) ~victims 30
  in
  Alcotest.(check int) "fix recovers nothing" 0
    (List.length r3.Secdb_attacks.Dictionary.recovered)

let suites =
  suites
  @ [
      ( "attacks:padding-oracle",
        [
          Alcotest.test_case "full plaintext recovery" `Quick
            test_padding_oracle_recovers_plaintext;
          Alcotest.test_case "no oracle against the fix" `Quick
            test_padding_oracle_absent_on_fix;
        ] );
      ( "attacks:dictionary",
        [ Alcotest.test_case "chosen-record recovery" `Quick test_dictionary_attack ] );
    ]

(* --- structural leakage of the fix --------------------------------------- *)

let test_structure_leak () =
  let codec =
    Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make (aes key))
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
      ~indexed_table:1 ~indexed_col:0 ()
  in
  let tree = B.create ~order:4 ~id:1000 ~codec () in
  let rng = Rng.create ~seed:63L () in
  for i = 0 to 199 do
    B.insert tree (Value.Int (Int64.of_int (Rng.int rng 1000))) ~table_row:i
  done;
  (* a very small secret must land near the chain head, a very large one
     near its tail *)
  let watch secret =
    let before = B.snapshot tree in
    B.insert tree (Value.Int (Int64.of_int secret)) ~table_row:(1000 + secret);
    match Secdb_attacks.Structure_leak.observe_insert ~before ~after:(B.snapshot tree) with
    | Some obs -> obs
    | None -> Alcotest.fail "insert not observed"
  in
  let low = watch 0 in
  Alcotest.(check bool) "rank of minimum ~ 0" true (low.Secdb_attacks.Structure_leak.hi_rank <= 4);
  let high = watch 999 in
  Alcotest.(check bool) "rank of maximum ~ n" true
    (high.Secdb_attacks.Structure_leak.lo_rank >= high.Secdb_attacks.Structure_leak.total_before - 4);
  (* quantile estimates land in the right half of the range *)
  let mid = watch 500 in
  let est = Secdb_attacks.Structure_leak.estimate_uniform mid ~lo:0.0 ~hi:1000.0 in
  Alcotest.(check bool) "median estimate near 500" true (est > 350.0 && est < 650.0);
  (* a batched write (two inserts between snapshots) is not misreported *)
  let before = B.snapshot tree in
  B.insert tree (Value.Int 1L) ~table_row:5000;
  B.insert tree (Value.Int 2L) ~table_row:5001;
  match Secdb_attacks.Structure_leak.observe_insert ~before ~after:(B.snapshot tree) with
  | None -> ()
  | Some _ -> Alcotest.fail "batched write misread as one insert"

let suites =
  suites
  @ [
      ( "attacks:structure-leak",
        [ Alcotest.test_case "rank leakage from snapshots" `Quick test_structure_leak ] );
    ]

(* --- leakage metrics ------------------------------------------------------- *)

let test_leakage_metrics () =
  let ec = Secdb_attacks.Leakage.entropy_of_counts in
  Alcotest.(check (float 1e-9)) "uniform 4" 2.0 (ec [ 1; 1; 1; 1 ]);
  Alcotest.(check (float 1e-9)) "point mass" 0.0 (ec [ 7 ]);
  Alcotest.(check (float 1e-9)) "half-half" 1.0 (ec [ 5; 5; 0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Leakage.entropy_of_counts: no mass")
    (fun () -> ignore (ec [ 0 ]));
  Alcotest.(check (float 1e-9)) "baseline" 0.6
    (Secdb_attacks.Leakage.baseline ~secrets:[ "a"; "a"; "a"; "b"; "b" ]);
  (* a perfectly revealing observable scores ~1; a constant observable
     scores ~the baseline *)
  let rng = Rng.create ~seed:64L () in
  let secrets = List.init 100 (fun i -> string_of_int (i mod 3)) in
  let revealing = List.map (fun s -> ("obs-" ^ s, s)) secrets in
  let blind = List.map (fun s -> ("same", s)) secrets in
  Alcotest.(check (float 0.01)) "revealing" 1.0
    (Secdb_attacks.Leakage.guessing_accuracy ~pairs:revealing rng);
  Alcotest.(check bool) "blind near baseline" true
    (Secdb_attacks.Leakage.guessing_accuracy ~pairs:blind rng < 0.5);
  Alcotest.check_raises "too few" (Invalid_argument "Leakage.guessing_accuracy: too few samples")
    (fun () -> ignore (Secdb_attacks.Leakage.guessing_accuracy ~pairs:[ ("a", "b") ] rng))

let suites =
  suites
  @ [
      ( "attacks:leakage-metrics",
        [ Alcotest.test_case "entropy and guessing accuracy" `Quick test_leakage_metrics ] );
    ]

(* --- structural-reference tampering (the Ref_I gap) ----------------------- *)

let test_ref_tamper () =
  let build () =
    let codec =
      Secdb_schemes.Fixed_index.codec ~aead:(Secdb_aead.Eax.make (aes key))
        ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
        ~indexed_table:1 ~indexed_col:0 ()
    in
    let tree = B.create ~order:4 ~id:1000 ~codec () in
    for i = 0 to 199 do
      B.insert tree (Value.Int (Int64.of_int i)) ~table_row:i
    done;
    tree
  in
  (* swapping root children silently misroutes lookups *)
  let tree = build () in
  Alcotest.(check bool) "swap applied" true (Secdb_attacks.Ref_tamper.swap_root_children tree);
  let silent_misses = ref 0 and errors = ref 0 in
  for probe = 0 to 199 do
    match Secdb_query.Walker.equal tree ~mode:Secdb_query.Walker.Corrected
            (Value.Int (Int64.of_int probe)) with
    | Ok a -> if a.Secdb_query.Walker.results = [] then incr silent_misses
    | Error _ -> incr errors
  done;
  Alcotest.(check int) "no integrity errors raised" 0 !errors;
  Alcotest.(check bool) "silent misses" true (!silent_misses > 10);
  (* validate catches it, as does the Merkle anchor *)
  (match B.validate tree with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validate missed swapped children");
  (* cutting the chain silently shrinks range answers *)
  let tree2 = build () in
  let anchor = Secdb_storage.Merkle.root (Secdb_storage.Storage.index_leaves tree2) in
  Alcotest.(check bool) "cut applied" true (Secdb_attacks.Ref_tamper.cut_leaf_chain tree2);
  (match Secdb_query.Walker.range tree2 ~mode:Secdb_query.Walker.Corrected () with
  | Ok a -> Alcotest.(check bool) "entries dropped" true
      (List.length a.Secdb_query.Walker.results < 200)
  | Error _ -> Alcotest.fail "cut chain raised (walker saw nothing wrong to raise)");
  Alcotest.(check bool) "anchor moved" false
    (Secdb_storage.Merkle.root (Secdb_storage.Storage.index_leaves tree2) = anchor);
  (* hooks validate their inputs *)
  let leaf = B.first_leaf tree2 in
  Alcotest.check_raises "set_children on leaf"
    (Invalid_argument "Bptree.set_children: not an inner node") (fun () ->
      B.set_children tree2 ~row:leaf [| 1; 2 |])

let suites =
  suites
  @ [
      ( "attacks:ref-tamper",
        [ Alcotest.test_case "unauthenticated structure (EXP25)" `Quick test_ref_tamper ] );
    ]

(* --- range-index leakage --------------------------------------------------- *)

module RL = Secdb_attacks.Range_leak
module RT = Secdb_index.Range_tree

let iv i = Value.Int (Int64.of_int i)

let test_range_leak_scores () =
  (* every value in its own bucket: order fully recovered, every value
     pinned by the public distribution *)
  let t = RT.create ~id:1 ~sealer:RT.plain_sealer ~boundaries:[| iv 10; iv 20 |] () in
  let truth = [| iv 5; iv 15; iv 25 |] in
  Array.iteri (fun row v -> RT.insert t v ~table_row:row) truth;
  let dist = [ (iv 5, 1); (iv 15, 1); (iv 25, 1) ] in
  let r = RL.attack ~tree:t ~truth ~distribution:dist in
  Alcotest.(check int) "pairs" 3 r.RL.order_pairs;
  Alcotest.(check (float 1e-9)) "order fully leaked" 1.0 r.RL.order_recovered;
  Alcotest.(check (float 1e-9)) "values fully leaked" 1.0 r.RL.value_recovered;
  Alcotest.(check (float 1e-9)) "histogram explained" 0.0 r.RL.hist_distance;
  (* one bucket: ordering and values leak nothing *)
  let t1 = RT.create ~id:2 ~sealer:RT.plain_sealer ~boundaries:[||] () in
  Array.iteri (fun row v -> RT.insert t1 v ~table_row:row) truth;
  let r1 = RL.attack ~tree:t1 ~truth ~distribution:dist in
  Alcotest.(check (float 1e-9)) "no order" 0.0 r1.RL.order_recovered;
  Alcotest.(check (float 1e-9)) "no values" 0.0 r1.RL.value_recovered;
  (* duplicates never form an orderable pair *)
  let t2 = RT.create ~id:3 ~sealer:RT.plain_sealer ~boundaries:[| iv 10 |] () in
  let dup = [| iv 5; iv 5 |] in
  Array.iteri (fun row v -> RT.insert t2 v ~table_row:row) dup;
  Alcotest.(check int) "no distinct pairs" 0
    (RL.attack ~tree:t2 ~truth:dup ~distribution:[ (iv 5, 2) ]).RL.order_pairs

let test_range_leak_bench () =
  let lines = RL.bench () in
  Alcotest.(check int) "seven pinned lines" 7 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) (l.RL.label ^ " within bounds") true (RL.within l))
    lines;
  (* determinism: same seed, same scores *)
  Alcotest.(check bool) "deterministic" true
    (List.map (fun l -> l.RL.score) lines = List.map (fun l -> l.RL.score) (RL.bench ()));
  (* the reference structure leaks the total order *)
  Alcotest.(check (float 1e-9)) "b+-tree reference" 1.0
    (RL.bptree_order_leak (List.init 30 (fun i -> iv ((i * 7) mod 30))))

let suites =
  suites
  @ [
      ( "attacks:range-leak",
        [
          Alcotest.test_case "scores on crafted workloads" `Quick test_range_leak_scores;
          Alcotest.test_case "pinned bench in bounds" `Quick test_range_leak_bench;
        ] );
    ]

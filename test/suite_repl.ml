(* Replication and point-in-time recovery: sealed-record shipping between
   writers, the live primary → replica pull loop over the authenticated
   wire, Merkle-root attestation, crash matrices on both ends of the
   stream, and the two properties the design rests on — a replica is
   always an authenticated prefix of its primary, and [restore --to-op N]
   is indistinguishable from a fresh replay of the first N operations. *)

open Secdb_net
module Oplog = Secdb.Oplog
module Encdb = Secdb.Encdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Vfs = Secdb_storage.Vfs
module Fault = Secdb_storage.Vfs.Fault
module Xbytes = Secdb_util.Xbytes
module Rng = Secdb_util.Rng

let master = "suite-repl master key"
let auth_key = Wire.auth_key_of_master master
let seed = Int64.of_int Test_seed.seed
let aead = Repl.log_aead ~master
let nonce () = Secdb_aead.Nonce.counter ~size:16 ()

let mkdb ?(shard = 0) () =
  (* determinism is load-bearing here: primary, replica and restore build
     shard [i] with the same seed and id ranges, which is what makes the
     replayed ciphertexts — and therefore the Merkle roots — byte-equal *)
  Encdb.create
    ~seed:(Int64.add seed (Int64.of_int shard))
    ~master
    ~profile:(Encdb.Fixed Encdb.Eax)
    ~first_table_id:((shard * 1_000_000) + 1)
    ~first_index_id:((shard * 1_000_000) + 1000)
    ()

let schema =
  Schema.v ~table_name:"t"
    [ Schema.column ~protection:Schema.Clear "id" Value.Kint; Schema.column "v" Value.Ktext ]

let sample_ops n =
  let rng = Rng.create ~seed:417L () in
  Oplog.Create_table schema
  :: List.concat
       (List.init n (fun i ->
            let ins =
              Oplog.Insert
                { table = "t"; values = [ Value.Int (Int64.of_int i); Value.Text (Rng.alpha rng 8) ] }
            in
            if i mod 4 = 3 then
              [ ins; Oplog.Update { table = "t"; row = i - 1; col = "v"; value = Value.Text "e" } ]
            else [ ins ]))

let tmpdir () =
  let dir = Filename.temp_file "secdbrepl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let with_dir f =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let contains ~affix s =
  let n = String.length affix in
  let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- sealed-record shipping (no network) --------------------------------- *)

let test_ship_verify_copy () =
  with_dir @@ fun dir ->
  let ppath = Filename.concat dir "p.log" and rpath = Filename.concat dir "r.log" in
  let ops = sample_ops 12 in
  let w = Oplog.create ~path:ppath ~aead ~nonce:(nonce ()) () in
  List.iter (fun op -> ignore (Oplog.append w op)) ops;
  let records = Oplog.read_sealed w ~from:0 ~max:1000 in
  Alcotest.(check int) "all durable records ship" (Oplog.count w) (List.length records);
  (* stateless resume: a second read from any ack returns the suffix *)
  Alcotest.(check int) "resume from 5" (List.length records - 5)
    (List.length (Oplog.read_sealed w ~from:5 ~max:1000));
  (* every record verifies stand-alone at its sequence number *)
  List.iter
    (fun (seq, sealed) ->
      match Oplog.verify_sealed ~aead ~seq sealed with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "record %d rejected: %s" seq e)
    records;
  (* a replica copying them verbatim produces a byte-identical log *)
  let r = Oplog.create ~path:rpath ~aead ~nonce:(nonce ()) () in
  List.iter
    (fun (seq, sealed) ->
      match Oplog.append_sealed r sealed with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "copy of %d rejected: %s" seq e)
    records;
  Oplog.close w;
  Oplog.close r;
  let read p = In_channel.with_open_bin p In_channel.input_all in
  Alcotest.(check bool) "replica log is byte-identical" true (String.equal (read ppath) (read rpath))

let test_ship_rejects_tamper_and_splice () =
  with_dir @@ fun dir ->
  let w = Oplog.create ~path:(Filename.concat dir "p.log") ~aead ~nonce:(nonce ()) () in
  List.iter (fun op -> ignore (Oplog.append w op)) (sample_ops 4);
  let records = Oplog.read_sealed w ~from:0 ~max:1000 in
  let seq0, r0 = List.nth records 0 and seq1, r1 = List.nth records 1 in
  (* bit flip anywhere in the sealed bytes *)
  let flipped = Bytes.of_string r0 in
  Bytes.set flipped (String.length r0 / 2)
    (Char.chr (Char.code (Bytes.get flipped (String.length r0 / 2)) lxor 1));
  (match Oplog.verify_sealed ~aead ~seq:seq0 (Bytes.to_string flipped) with
  | Ok _ -> Alcotest.fail "tampered record verified"
  | Error _ -> ());
  (* a valid record presented at the wrong position (reorder/splice) *)
  (match Oplog.verify_sealed ~aead ~seq:seq0 r1 with
  | Ok _ -> Alcotest.fail "reordered record verified"
  | Error _ -> ());
  (* a replica writer enforces contiguity: next must be its own count *)
  let r = Oplog.create ~path:(Filename.concat dir "r.log") ~aead ~nonce:(nonce ()) () in
  (match Oplog.append_sealed r r1 with
  | Ok _ -> Alcotest.failf "gap accepted (record %d as first)" seq1
  | Error _ -> ());
  Alcotest.(check int) "nothing was written" 0 (Oplog.count r);
  Oplog.close w;
  Oplog.close r

let test_durable_only_ships () =
  with_dir @@ fun dir ->
  let w = Oplog.create ~sync:Oplog.Never ~path:(Filename.concat dir "p.log") ~aead ~nonce:(nonce ()) () in
  List.iter (fun op -> ignore (Oplog.append w op)) (sample_ops 3);
  Alcotest.(check int) "unsynced records do not ship" 0
    (List.length (Oplog.read_sealed w ~from:0 ~max:1000));
  Oplog.sync w;
  Alcotest.(check int) "synced records ship" (Oplog.count w)
    (List.length (Oplog.read_sealed w ~from:0 ~max:1000));
  Oplog.close w

let test_resume_continues_history () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "p.log" in
  let rng = Rng.create ~seed:9L () in
  let w = Oplog.create ~mode:`Resume ~path ~aead ~nonce:(Repl.log_nonce ~rng) () in
  Alcotest.(check int) "fresh resume starts empty" 0 (Oplog.count w);
  List.iter (fun op -> ignore (Oplog.append w op)) (sample_ops 5);
  let n = Oplog.count w in
  Oplog.close w;
  let w = Oplog.create ~mode:`Resume ~path ~aead ~nonce:(Repl.log_nonce ~rng) () in
  Alcotest.(check int) "resume seats the recovered count" n (Oplog.count w);
  ignore (Oplog.append w (Oplog.Insert { table = "t"; values = [ Value.Int 99L; Value.Text "x" ] }));
  Oplog.close w;
  match Oplog.replay ~path ~aead () with
  | Ok ops -> Alcotest.(check int) "whole log still authenticates" (n + 1) (List.length ops)
  | Error e -> Alcotest.failf "replay after resume: %s" e

(* --- live primary → replica over the wire -------------------------------- *)

let shards = 2

let with_cluster ?(replica_log = false) f =
  with_dir @@ fun dir ->
  let ppath = Filename.concat dir "primary.log" in
  let w = Oplog.create ~path:ppath ~aead ~nonce:(nonce ()) () in
  let config = Server.config ~auth_key ~shards () in
  let psock = Filename.concat dir "p.sock" in
  let primary =
    match
      Server.create ~seed:7L ~role:(Server.Primary w) ~config
        ~db:(fun shard -> mkdb ~shard ())
        (Wire.Unix_sock psock)
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "primary: %s" e
  in
  Server.start primary;
  let rsock = Filename.concat dir "r.sock" in
  let rwriter =
    if replica_log then
      Some (Oplog.create ~path:(Filename.concat dir "replica.log") ~aead ~nonce:(nonce ()) ())
    else None
  in
  let replica =
    match
      Server.create ~seed:8L ~role:(Server.Replica { initial_applied = 0 }) ~config
        ~db:(fun shard -> mkdb ~shard ())
        (Wire.Unix_sock rsock)
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "replica: %s" e
  in
  Server.start replica;
  let stop_pull = Atomic.make false in
  let applied = ref 0 in
  let puller =
    Thread.create
      (fun () ->
        Repl.run_replica
          ~connect:(fun () ->
            Client.connect ~attempts:1 ~backoff:0.01 ~seed ~auth_key (Wire.Unix_sock psock))
          ~aead ?writer:rwriter
          ~ack:(fun () ->
            match rwriter with Some w -> Oplog.count w | None -> !applied)
          ~apply:(fun op ->
            match Server.apply_op replica op with
            | Ok () ->
                incr applied;
                Ok ()
            | Error _ as e -> e)
          ~poll:0.01
          ~stop:(fun () -> Atomic.get stop_pull)
          ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop_pull true;
      (match Thread.join puller with () -> () | exception _ -> ());
      Server.stop primary;
      Server.stop replica;
      (match rwriter with Some w -> (try Oplog.close w with _ -> ()) | None -> ());
      try Oplog.close w with _ -> ())
    (fun () -> f ~primary:(Wire.Unix_sock psock) ~replica:(Wire.Unix_sock rsock) ~pwriter:w)

let connect ?(key = auth_key) addr =
  match Client.connect ~attempts:20 ~backoff:0.02 ~seed ~auth_key:key addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let sql c stmt =
  match Client.call c (Wire.Sql stmt) with
  | Ok (Wire.Outcome o) -> o
  | Ok _ -> Alcotest.failf "sql %S: unexpected response" stmt
  | Error e -> Alcotest.failf "sql %S: %s" stmt (Client.error_to_string e)

let root_of c =
  match Client.call c Wire.Repl_root with
  | Ok (Wire.Root { applied; root }) -> (applied, root)
  | Ok _ -> Alcotest.fail "repl_root: unexpected response"
  | Error e -> Alcotest.failf "repl_root: %s" (Client.error_to_string e)

(* wait (bounded) until the replica has applied [n] ops *)
let await_applied c n =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let applied, root = root_of c in
    if applied >= n then (applied, root)
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "replica stuck at %d/%d ops" applied n
    else (
      Thread.delay 0.02;
      go ())
  in
  go ()

let test_replica_catches_up () =
  with_cluster ~replica_log:true @@ fun ~primary ~replica ~pwriter:_ ->
  let pc = connect primary in
  ignore (sql pc "CREATE TABLE users (id INT, name TEXT)");
  ignore (sql pc "CREATE TABLE orders (id INT, item TEXT)");
  for i = 1 to 20 do
    ignore (sql pc (Printf.sprintf "INSERT INTO users VALUES (%d, 'u%d')" i i));
    ignore (sql pc (Printf.sprintf "INSERT INTO orders VALUES (%d, 'o%d')" i i))
  done;
  let pc_applied, proot = root_of pc in
  let rc = connect replica in
  let r_applied, rroot = await_applied rc pc_applied in
  Alcotest.(check int) "replica reaches the primary's op count" pc_applied r_applied;
  Alcotest.(check string) "attested roots agree" (Xbytes.to_hex proot) (Xbytes.to_hex rroot);
  (* the replica answers the same SQL with the same rows *)
  let q = "SELECT name FROM users WHERE id = 7" in
  Alcotest.(check string) "replica serves the primary's data"
    (Fmt.str "%a" Secdb_sql.Engine.pp_result (sql pc q))
    (Fmt.str "%a" Secdb_sql.Engine.pp_result (sql rc q));
  Client.close pc;
  Client.close rc

let test_replica_rejects_writes () =
  with_cluster @@ fun ~primary ~replica ~pwriter:_ ->
  let pc = connect primary in
  ignore (sql pc "CREATE TABLE t (id INT, v TEXT)");
  ignore (sql pc "INSERT INTO t VALUES (1, 'a')");
  let _, _ = root_of pc in
  let rc = connect replica in
  ignore (await_applied rc 2);
  (* every mutating form is refused with a structured error *)
  List.iter
    (fun req ->
      match Client.call rc req with
      | Error (Client.Remote (Wire.App, msg)) when contains ~affix:"read-only" msg -> ()
      | Ok _ -> Alcotest.failf "replica accepted a mutation (%s)" (Wire.op_name req)
      | Error e ->
          Alcotest.failf "unexpected rejection for %s: %s" (Wire.op_name req)
            (Client.error_to_string e))
    [
      Wire.Sql "INSERT INTO t VALUES (2, 'b')";
      Wire.Sql "UPDATE t SET v = 'z' WHERE id = 1";
      Wire.Sql "DELETE FROM t WHERE id = 1";
      Wire.Sql "CREATE TABLE u (id INT)";
      Wire.Put_cell { table = "t"; row = 0; col = "v"; value = Value.Text "z" };
      Wire.Insert_row { table = "t"; values = [ Value.Int 9L; Value.Text "q" ] };
    ];
  (* reads still work *)
  (match Client.call rc (Wire.Sql "SELECT v FROM t WHERE id = 1") with
  | Ok (Wire.Outcome _) -> ()
  | _ -> Alcotest.fail "replica refused a SELECT");
  (* and a replica is not a primary: pulls are refused *)
  (match Client.call rc (Wire.Repl_pull { ack = 0; max = 10 }) with
  | Error (Client.Remote (Wire.App, msg)) when contains ~affix:"primary" msg -> ()
  | _ -> Alcotest.fail "replica answered a pull");
  Client.close pc;
  Client.close rc

let test_two_replicas_one_primary () =
  with_cluster @@ fun ~primary ~replica ~pwriter:_ ->
  (* the second replica keeps no local log: verify-then-apply only *)
  let applied2 = ref 0 in
  let dbs2 = Array.init shards (fun shard -> mkdb ~shard ()) in
  let stop2 = Atomic.make false in
  let p2 =
    Thread.create
      (fun () ->
        Repl.run_replica
          ~connect:(fun () -> Client.connect ~attempts:1 ~backoff:0.01 ~seed ~auth_key primary)
          ~aead
          ~ack:(fun () -> !applied2)
          ~apply:(fun op ->
            match Repl.apply_routed dbs2 op with
            | Ok () ->
                incr applied2;
                Ok ()
            | Error _ as e -> e)
          ~poll:0.01
          ~stop:(fun () -> Atomic.get stop2)
          ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop2 true;
      try Thread.join p2 with _ -> ())
    (fun () ->
      let pc = connect primary in
      ignore (sql pc "CREATE TABLE t (id INT, v TEXT)");
      for i = 1 to 15 do
        ignore (sql pc (Printf.sprintf "INSERT INTO t VALUES (%d, 'v%d')" i i))
      done;
      let n, proot = root_of pc in
      let rc = connect replica in
      let _, rroot = await_applied rc n in
      Alcotest.(check string) "server replica root" (Xbytes.to_hex proot) (Xbytes.to_hex rroot);
      let deadline = Unix.gettimeofday () +. 10. in
      while !applied2 < n && Unix.gettimeofday () < deadline do
        Thread.delay 0.02
      done;
      Alcotest.(check int) "logless replica caught up" n !applied2;
      Alcotest.(check string) "logless replica root" (Xbytes.to_hex proot)
        (Xbytes.to_hex (Repl.root_of_dbs dbs2));
      Client.close pc;
      Client.close rc)

(* --- crash matrices -------------------------------------------------------

   The fault VFS makes every pwrite of a replicated workload a crash
   point.  Shipping only durable records is what makes the matrices pass:
   whatever the moment of the crash, a replica can hold at most what the
   primary's surviving image still authenticates. *)

(* ship every durable record the replica does not have yet, verbatim *)
let ship_all w r =
  let rec go () =
    match Oplog.read_sealed w ~from:(Oplog.count r) ~max:64 with
    | [] -> ()
    | records ->
        List.iter
          (fun (seq, sealed) ->
            match Oplog.append_sealed r sealed with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "ship of %d: %s" seq e)
          records;
        go ()
  in
  go ()

let is_string_prefix ~of_:s p =
  String.length p <= String.length s && String.equal (String.sub s 0 (String.length p)) p

(* Primary on a disk that crashes at pwrite [k], continuously shipping to
   a replica on its own healthy disk.  Returns (primary image, replica
   image, crashed).  The replica log is a verbatim copy, so "replica is
   an authenticated prefix of the primary" is literally a byte-prefix
   check on the two durable images. *)
let primary_crash_run ~policy ~seed ~k ops =
  let ctl = Fault.make ~seed () in
  Fault.crash_after_writes ctl k;
  let rctl = Fault.make ~seed:(seed + 1) () in
  let r = Oplog.create ~vfs:(Fault.vfs rctl) ~path:"mem:r.log" ~aead ~nonce:(nonce ()) () in
  (try
     let w =
       Oplog.create ~vfs:(Fault.vfs ctl) ~sync:policy ~path:"mem:p.log" ~aead ~nonce:(nonce ()) ()
     in
     List.iter
       (fun op ->
         ignore (Oplog.append w op);
         ship_all w r)
       ops;
     Oplog.sync w;
     ship_all w r;
     Oplog.close w
   with Vfs.Crashed _ | Vfs.Io_error _ -> ());
  (try Oplog.close r with Vfs.Crashed _ | Vfs.Io_error _ -> ());
  let img ctl path = try Fault.dump ctl ~path with Vfs.Io_error _ -> "" in
  (img ctl "mem:p.log", img rctl "mem:r.log", Fault.crashed ctl)

let test_crash_matrix_primary () =
  let ops = sample_ops 8 in
  List.iter
    (fun policy ->
      let k = ref 1 and live = ref true in
      while !live do
        let pimg, rimg, crashed = primary_crash_run ~policy ~seed:(1100 + !k) ~k:!k ops in
        if not crashed then live := false
        else begin
          if not (is_string_prefix ~of_:pimg rimg) then
            Alcotest.failf "crash at write %d: replica is not a byte-prefix of the primary" !k;
          (* the surviving primary image must itself recover, and a resumed
             writer must seat exactly the recovered history *)
          with_dir (fun dir ->
              let path = Filename.concat dir "p.log" in
              Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc pimg);
              match Oplog.recover ~path ~aead () with
              | Error e -> Alcotest.failf "crash at write %d: recover: %s" !k e
              | Ok (recovered, _) ->
                  let rng = Rng.create ~seed:(Int64.of_int !k) () in
                  let w = Oplog.create ~mode:`Resume ~path ~aead ~nonce:(Repl.log_nonce ~rng) () in
                  Alcotest.(check int)
                    (Printf.sprintf "crash at write %d: resume count" !k)
                    (List.length recovered) (Oplog.count w);
                  Oplog.close w)
        end;
        incr k
      done)
    [ Oplog.Always; Oplog.Every_n 3 ]

let test_crash_matrix_replica () =
  with_dir @@ fun dir ->
  (* healthy primary: its full log is the reference bytes *)
  let ppath = Filename.concat dir "p.log" in
  let w = Oplog.create ~path:ppath ~aead ~nonce:(nonce ()) () in
  List.iter (fun op -> ignore (Oplog.append w op)) (sample_ops 6);
  let records = Oplog.read_sealed w ~from:0 ~max:1000 in
  Oplog.close w;
  let pbytes = In_channel.with_open_bin ppath In_channel.input_all in
  let k = ref 1 and live = ref true in
  while !live do
    let ctl = Fault.make ~seed:(2200 + !k) () in
    Fault.crash_after_writes ctl !k;
    let copied = ref 0 in
    (try
       let r = Oplog.create ~vfs:(Fault.vfs ctl) ~path:"mem:r.log" ~aead ~nonce:(nonce ()) () in
       List.iter
         (fun (seq, sealed) ->
           match Oplog.append_sealed r sealed with
           | Ok _ -> copied := seq + 1
           | Error e -> Alcotest.failf "copy of %d: %s" seq e)
         records;
       Oplog.close r
     with Vfs.Crashed _ | Vfs.Io_error _ -> ());
    if not (Fault.crashed ctl) then live := false
    else begin
      (* the torn replica image recovers to an authenticated prefix; a
         resumed writer catches up from the primary and ends byte-identical *)
      let rpath = Filename.concat dir (Printf.sprintf "r%d.log" !k) in
      Out_channel.with_open_bin rpath (fun oc ->
          Out_channel.output_string oc (try Fault.dump ctl ~path:"mem:r.log" with Vfs.Io_error _ -> ""));
      let rng = Rng.create ~seed:(Int64.of_int (77 + !k)) () in
      let r = Oplog.create ~mode:`Resume ~path:rpath ~aead ~nonce:(Repl.log_nonce ~rng) () in
      List.iter
        (fun (seq, sealed) ->
          if seq >= Oplog.count r then
            match Oplog.append_sealed r sealed with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "crash at write %d: catch-up of %d: %s" !k seq e)
        records;
      Oplog.close r;
      let rbytes = In_channel.with_open_bin rpath In_channel.input_all in
      if not (String.equal pbytes rbytes) then
        Alcotest.failf "crash at write %d: resumed replica diverges from the primary" !k;
      Sys.remove rpath
    end;
    incr k
  done

(* --- properties ----------------------------------------------------------- *)

let qc = Test_seed.qc

let prop_replica_prefix =
  QCheck2.Test.make ~name:"replica is a byte-prefix of the primary under any fault schedule"
    ~count:60
    QCheck2.Gen.(
      quad (int_range 1 15) (int_range 1 90) (int_range 0 2) (int_range 0 1000))
    (fun (nops, k, pol, seed) ->
      let policy = [| Oplog.Always; Oplog.Every_n 2; Oplog.Never |].(pol) in
      let pimg, rimg, _ = primary_crash_run ~policy ~seed ~k (sample_ops nops) in
      is_string_prefix ~of_:pimg rimg)

let prop_restore_equiv =
  (* the ops a random script encodes, via two tables on different shards *)
  let script_ops script =
    let schema name =
      Schema.v ~table_name:name
        [ Schema.column ~protection:Schema.Clear "id" Value.Kint; Schema.column "v" Value.Ktext ]
    in
    Oplog.Create_table (schema "a")
    :: Oplog.Create_table (schema "b")
    :: List.map
         (fun (t, v) ->
           Oplog.Insert
             {
               table = (if t = 0 then "a" else "b");
               values = [ Value.Int (Int64.of_int v); Value.Text (string_of_int v) ];
             })
         script
  in
  QCheck2.Test.make ~name:"restore --to-op N = fresh replay of the first N ops" ~count:25
    QCheck2.Gen.(pair (list_size (int_range 0 20) (pair (int_bound 1) small_int)) (int_bound 100))
    (fun (script, pick) ->
      with_dir @@ fun dir ->
      let path = Filename.concat dir "p.log" in
      let ops = script_ops script in
      let w = Oplog.create ~path ~aead ~nonce:(nonce ()) () in
      List.iter (fun op -> ignore (Oplog.append w op)) ops;
      Oplog.close w;
      let total = List.length ops in
      let n = pick mod (total + 1) in
      match
        Repl.restore ~path ~aead ~shards ~mkdb:(fun shard -> mkdb ~shard ()) ~to_op:n ()
      with
      | Error e -> QCheck2.Test.fail_reportf "restore: %s" e
      | Ok (restored, applied) ->
          let fresh = Array.init shards (fun shard -> mkdb ~shard ()) in
          List.iteri
            (fun i op ->
              if i < n then
                match Repl.apply_routed fresh op with
                | Ok () -> ()
                | Error e -> QCheck2.Test.fail_reportf "replay op %d: %s" i e)
            ops;
          applied = n
          && String.equal
               (Xbytes.to_hex (Repl.root_of_dbs restored))
               (Xbytes.to_hex (Repl.root_of_dbs fresh)))

let test_restore_beyond_prefix_fails () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "p.log" in
  let w = Oplog.create ~path ~aead ~nonce:(nonce ()) () in
  List.iter (fun op -> ignore (Oplog.append w op)) (sample_ops 3);
  let total = Oplog.count w in
  Oplog.close w;
  match Repl.restore ~path ~aead ~shards ~mkdb:(fun shard -> mkdb ~shard ()) ~to_op:(total + 1) () with
  | Ok _ -> Alcotest.fail "restore past the authenticated prefix succeeded"
  | Error e ->
      Alcotest.(check bool) "error names the prefix length" true
        (contains ~affix:(string_of_int total) e)

(* --- client retry classification ------------------------------------------ *)

(* a listener that accepts and immediately hangs up: every dial is a
   transient I/O failure, so the client must burn its attempts *)
let test_connect_retries_transient_io () =
  (* the handshake write can land on an already-closed socket *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  with_dir @@ fun dir ->
  let path = Filename.concat dir "slam.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  let accepts = ref 0 in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.select [ fd ] [] [] 0.05 with
          | [ _ ], _, _ ->
              let c, _ = Unix.accept fd in
              incr accepts;
              Unix.close c
          | _ -> ()
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th;
      Unix.close fd)
    (fun () ->
      match Client.connect ~attempts:3 ~backoff:0.01 ~seed ~auth_key (Wire.Unix_sock path) with
      | Ok _ -> Alcotest.fail "connected to a connection-slamming listener"
      | Error _ -> Alcotest.(check bool) "retried on fresh sockets" true (!accepts >= 2))

let test_connect_refusal_is_immediate () =
  with_dir @@ fun dir ->
  let sock = Filename.concat dir "s.sock" in
  let srv =
    match
      Server.create ~seed:7L ~config:(Server.config ~auth_key ())
        ~db:(fun shard -> mkdb ~shard ())
        (Wire.Unix_sock sock)
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "server: %s" e
  in
  Server.start srv;
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match
     Client.connect ~attempts:8 ~backoff:0.3 ~seed
       ~auth_key:(Wire.auth_key_of_master "some other master")
       (Wire.Unix_sock sock)
   with
  | Ok _ -> Alcotest.fail "authenticated with the wrong credential"
  | Error msg ->
      Alcotest.(check bool) "the error names authentication" true
        (contains ~affix:"auth" (String.lowercase_ascii msg)));
  (* 8 attempts at 0.3 s doubling backoff would take half a minute: a
     credential rejection must fail without touching the retry budget *)
  Alcotest.(check bool) "refusal did not retry" true (Unix.gettimeofday () -. t0 < 1.0)

let suites =
  [
    ( "repl:ship",
      [
        Alcotest.test_case "verify and copy" `Quick test_ship_verify_copy;
        Alcotest.test_case "tamper and splice rejected" `Quick test_ship_rejects_tamper_and_splice;
        Alcotest.test_case "only durable records ship" `Quick test_durable_only_ships;
        Alcotest.test_case "resume continues history" `Quick test_resume_continues_history;
      ] );
    ( "repl:live",
      [
        Alcotest.test_case "replica catches up, roots agree" `Quick test_replica_catches_up;
        Alcotest.test_case "replica is read-only" `Quick test_replica_rejects_writes;
        Alcotest.test_case "two replicas, one primary" `Quick test_two_replicas_one_primary;
      ] );
    ( "repl:crash",
      [
        Alcotest.test_case "primary crash matrix" `Quick test_crash_matrix_primary;
        Alcotest.test_case "replica crash matrix" `Quick test_crash_matrix_replica;
        Alcotest.test_case "restore past the prefix fails" `Quick test_restore_beyond_prefix_fails;
      ] );
    ("repl:props", [ qc prop_replica_prefix; qc prop_restore_equiv ]);
    ( "repl:client",
      [
        Alcotest.test_case "transient I/O retries" `Quick test_connect_retries_transient_io;
        Alcotest.test_case "credential refusal is immediate" `Quick test_connect_refusal_is_immediate;
      ] );
  ]

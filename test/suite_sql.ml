open Secdb
module Value = Secdb_db.Value
module L = Secdb_sql.Lexer
module P = Secdb_sql.Parser
module A = Secdb_sql.Ast
module E = Secdb_sql.Engine
module Pl = Secdb_sql.Plan

(* --- lexer ---------------------------------------------------------------- *)

let test_lexer () =
  (match L.tokens "SELECT a, b FROM t WHERE x >= 'it''s' -- comment\n;" with
  | Ok
      [ L.Kw "SELECT"; L.Ident "a"; L.Sym ","; L.Ident "b"; L.Kw "FROM"; L.Ident "t";
        L.Kw "WHERE"; L.Ident "x"; L.Sym ">="; L.Str "it's"; L.Sym ";"; L.Eof ] ->
      ()
  | Ok toks -> Alcotest.fail (Fmt.str "unexpected tokens: %a" (Fmt.list L.pp_token) toks)
  | Error e -> Alcotest.fail e);
  (match L.tokens "x'68656c6c6f' -42 <>" with
  | Ok [ L.Blob "hello"; L.Int -42L; L.Sym "!="; L.Eof ] -> ()
  | Ok toks -> Alcotest.fail (Fmt.str "unexpected: %a" (Fmt.list L.pp_token) toks)
  | Error e -> Alcotest.fail e);
  (match L.tokens "'unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated string accepted");
  match L.tokens "se#lect" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad character accepted"

(* --- parser --------------------------------------------------------------- *)

let parse_ok s =
  match P.parse s with Ok stmt -> stmt | Error e -> Alcotest.fail (s ^ ": " ^ e)

let test_parser_select () =
  (match parse_ok "SELECT * FROM patients" with
  | A.Select { items = None; table = "patients"; where = None; _ } -> ()
  | _ -> Alcotest.fail "plain select");
  (match parse_ok "select name, age from patients where age >= 40 and age <= 60 order by age desc limit 3;" with
  | A.Select
      { items = Some [ A.Field "name"; A.Field "age" ]; where = Some (A.And _);
        order_by = Some ("age", A.Desc); limit = Some 3; _ } ->
      ()
  | s -> Alcotest.fail (Fmt.str "got %a" A.pp_stmt s));
  match parse_ok "SELECT * FROM t WHERE a BETWEEN 1 AND 5 OR NOT b = 'x'" with
  | A.Select { where = Some (A.Or (A.Between _, A.Not (A.Cmp (A.Eq, _, _)))); _ } -> ()
  | s -> Alcotest.fail (Fmt.str "got %a" A.pp_stmt s)

let test_parser_other_statements () =
  (match parse_ok "INSERT INTO t VALUES (1, 'x', x'00ff', TRUE, NULL)" with
  | A.Insert { table = "t"; values = [ Value.Int 1L; Value.Text "x"; Value.Bytes "\x00\xff"; Value.Bool true; Value.Null ] } -> ()
  | s -> Alcotest.fail (Fmt.str "got %a" A.pp_stmt s));
  (match parse_ok "UPDATE t SET name = 'bob' WHERE id = 3" with
  | A.Update { table = "t"; col = "name"; value = Value.Text "bob"; where = Some _ } -> ()
  | _ -> Alcotest.fail "update");
  (match parse_ok "DELETE FROM t" with
  | A.Delete { table = "t"; where = None } -> ()
  | _ -> Alcotest.fail "delete");
  (match parse_ok "CREATE TABLE t (id INT CLEAR, name TEXT, tags BYTES ENCRYPTED, ok BOOL)" with
  | A.Create_table { name = "t"; cols = [ c1; c2; c3; c4 ] } ->
      Alcotest.(check bool) "clear id" true (c1.A.col_protection = Secdb_db.Schema.Clear);
      Alcotest.(check bool) "encrypted default" true (c2.A.col_protection = Secdb_db.Schema.Encrypted);
      Alcotest.(check bool) "kinds" true
        (c1.A.col_type = Value.Kint && c2.A.col_type = Value.Ktext
        && c3.A.col_type = Value.Kbytes && c4.A.col_type = Value.Kbool)
  | _ -> Alcotest.fail "create table");
  match parse_ok "CREATE INDEX ON t (name)" with
  | A.Create_index { table = "t"; col = "name" } -> ()
  | _ -> Alcotest.fail "create index"

let test_parser_errors () =
  let reject s =
    match P.parse s with
    | Error _ -> ()
    | Ok stmt -> Alcotest.fail (Fmt.str "accepted %s as %a" s A.pp_stmt stmt)
  in
  reject "SELECT";
  reject "SELECT * FROM";
  reject "SELECT * FROM t WHERE";
  reject "SELECT * FROM t extra";
  reject "INSERT INTO t VALUES ()";
  reject "SELECT * FROM t WHERE a";
  reject "CREATE TABLE t ()";
  reject "SELECT * FROM t LIMIT -1";
  reject "UPDATE t SET a = b"

(* --- engine ---------------------------------------------------------------- *)

let setup () =
  let db = Encdb.create ~master:"sql tests" ~profile:(Encdb.Fixed Encdb.Eax) () in
  let run s =
    match E.exec db s with
    | Ok r -> r
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ignore (run "CREATE TABLE staff (id INT CLEAR, name TEXT, dept TEXT, salary INT)");
  List.iter
    (fun (i, n, d, s) ->
      ignore (run (Printf.sprintf "INSERT INTO staff VALUES (%d, '%s', '%s', %d)" i n d s)))
    [
      (0, "ada", "research", 9100); (1, "grace", "systems", 8700);
      (2, "edsger", "research", 8200); (3, "donald", "systems", 9300);
      (4, "barbara", "research", 8900); (5, "alan", "intelligence", 8800);
    ];
  ignore (run "CREATE INDEX ON staff (salary)");
  (db, run)

let names = function
  | E.Rows { rows; columns } ->
      let i =
        match List.mapi (fun i c -> (c, i)) columns |> List.assoc_opt "name" with
        | Some i -> i
        | None -> 0
      in
      List.map (fun row -> match List.nth row i with Value.Text s -> s | v -> Value.to_string v) rows
  | _ -> Alcotest.fail "expected rows"

let test_engine_select () =
  let _db, run = setup () in
  Alcotest.(check (list string)) "range over index" [ "barbara"; "ada"; "donald" ]
    (names (run "SELECT name FROM staff WHERE salary > 8800 OR name = 'barbara' ORDER BY salary"));
  Alcotest.(check (list string)) "projection and limit" [ "donald"; "ada" ]
    (names (run "SELECT name, salary FROM staff ORDER BY salary DESC LIMIT 2"));
  Alcotest.(check (list string)) "predicate on unindexed column" [ "ada"; "edsger"; "barbara" ]
    (names (run "SELECT name FROM staff WHERE dept = 'research'"));
  Alcotest.(check (list string)) "between" [ "grace"; "alan"; "barbara" ]
    (names (run "SELECT name FROM staff WHERE salary BETWEEN 8300 AND 9000 ORDER BY salary"));
  Alcotest.(check (list string)) "col-col comparison" []
    (names (run "SELECT name FROM staff WHERE salary < id"))

let test_engine_plans () =
  let db, run = setup () in
  (match run "EXPLAIN SELECT * FROM staff WHERE salary = 9100" with
  | E.Plan p -> Alcotest.(check bool) "uses index" true (String.length p > 0 && p.[0] = 'I')
  | _ -> Alcotest.fail "expected plan");
  (match run "EXPLAIN SELECT * FROM staff WHERE dept = 'research'" with
  | E.Plan p -> Alcotest.(check bool) "full scan" true (p.[0] = 'F')
  | _ -> Alcotest.fail "expected plan");
  (* strict bounds widen but stay on the index *)
  (match E.plan_of_select db
           { A.items = None; group_by = None; table = "staff"; join = None;
             where = Some (A.And (A.Cmp (A.Gt, A.Col "salary", A.Lit (Value.Int 8800L)),
                                  A.Cmp (A.Lt, A.Col "salary", A.Lit (Value.Int 9200L))));
             order_by = None; limit = None }
   with
  | Pl.Scan
      { access =
          Pl.Index_probe
            { col = "salary"; lo = Some (Value.Int 8800L); hi = Some (Value.Int 9200L); _ };
        _ } -> ()
  | Pl.Scan { access = Pl.Index_probe _; _ } -> Alcotest.fail "wrong bounds"
  | _ -> Alcotest.fail "should use index");
  (* OR disables the sargable path (kept only under top-level AND) *)
  match E.plan_of_select db
          { A.items = None; group_by = None; table = "staff"; join = None;
            where = Some (A.Or (A.Cmp (A.Eq, A.Col "salary", A.Lit (Value.Int 1L)),
                                A.Cmp (A.Eq, A.Col "salary", A.Lit (Value.Int 2L))));
            order_by = None; limit = None }
  with
  | Pl.Scan { access = Pl.Seq_scan; _ } -> ()
  | _ -> Alcotest.fail "OR must not be sargable"

let test_engine_mutations () =
  let _db, run = setup () in
  (match run "UPDATE staff SET salary = 9999 WHERE dept = 'research'" with
  | E.Affected 3 -> ()
  | r -> Alcotest.fail (Fmt.str "got %a" E.pp_result r));
  Alcotest.(check (list string)) "updates visible through index"
    [ "ada"; "edsger"; "barbara" ]
    (names (run "SELECT name FROM staff WHERE salary = 9999"));
  (match run "DELETE FROM staff WHERE name = 'alan'" with
  | E.Affected 1 -> ()
  | _ -> Alcotest.fail "delete count");
  (match run "SELECT name FROM staff WHERE name = 'alan'" with
  | E.Rows { rows = []; _ } -> ()
  | _ -> Alcotest.fail "alan survived");
  match run "INSERT INTO staff VALUES (6, 'hedy', 'systems', 9000)" with
  | E.Affected 1 -> (
      match run "SELECT name FROM staff WHERE salary = 9000" with
      | E.Rows { rows = [ _ ]; _ } -> ()
      | _ -> Alcotest.fail "insert not indexed")
  | _ -> Alcotest.fail "insert"

let test_engine_errors () =
  let db, _run = setup () in
  let reject s =
    match E.exec db s with
    | Error _ -> ()
    | Ok r -> Alcotest.fail (Fmt.str "accepted %s: %a" s E.pp_result r)
  in
  reject "SELECT * FROM ghosts";
  reject "SELECT ghost FROM staff";
  reject "SELECT * FROM staff WHERE ghost = 1";
  reject "INSERT INTO staff VALUES (1)";
  reject "INSERT INTO staff VALUES ('wrong', 'types', 'here', 'x')";
  reject "CREATE TABLE staff (id INT)";
  reject "CREATE INDEX ON staff (ghost)"

let test_engine_detects_tampering () =
  let db, run = setup () in
  (* relocate an index payload below the DBMS *)
  let tree = Encdb.index db ~table:"staff" ~col:"salary" in
  let module B = Secdb_index.Bptree in
  let leaves = ref [] in
  B.iter_nodes
    (fun v -> if v.B.node_kind = B.Leaf && Array.length v.B.payloads > 0 then leaves := v :: !leaves)
    tree;
  (match !leaves with
  | a :: b :: _ -> B.set_payload tree ~row:a.B.row ~slot:0 b.B.payloads.(0)
  | _ -> Alcotest.fail "not enough leaves");
  ignore run;
  (* a whole-table range never beats a full scan under the cost model, so
     force the index-probing candidate: SQL through the index must surface
     the relocation *)
  let s =
    match P.parse "SELECT * FROM staff WHERE salary >= 0" with
    | Ok (A.Select s) -> s
    | _ -> Alcotest.fail "parse"
  in
  let idx =
    match
      List.find_opt
        (function Pl.Scan { access = Pl.Index_probe _; _ } -> true | _ -> false)
        (E.candidate_plans db s)
    with
    | Some p -> p
    | None -> Alcotest.fail "index candidate missing"
  in
  match E.exec_plan db s idx with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered index answered a SQL query"

let suites =
  [
    ( "sql:lexer-parser",
      [
        Alcotest.test_case "lexer" `Quick test_lexer;
        Alcotest.test_case "select grammar" `Quick test_parser_select;
        Alcotest.test_case "other statements" `Quick test_parser_other_statements;
        Alcotest.test_case "syntax errors" `Quick test_parser_errors;
      ] );
    ( "sql:engine",
      [
        Alcotest.test_case "select/order/limit/projection" `Quick test_engine_select;
        Alcotest.test_case "planner choices" `Quick test_engine_plans;
        Alcotest.test_case "insert/update/delete" `Quick test_engine_mutations;
        Alcotest.test_case "semantic errors" `Quick test_engine_errors;
        Alcotest.test_case "tampering surfaces through SQL" `Quick
          test_engine_detects_tampering;
      ] );
  ]

(* --- aggregates ------------------------------------------------------------ *)

let cells = function
  | E.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

let test_engine_aggregates () =
  let _db, run = setup () in
  (match cells (run "SELECT count(*) FROM staff") with
  | [ [ Value.Int 6L ] ] -> ()
  | r -> Alcotest.fail (Fmt.str "count: %a" Fmt.(list (list (of_to_string Value.to_string))) r));
  (match cells (run "SELECT min(salary), max(salary), sum(salary), avg(salary) FROM staff") with
  | [ [ Value.Int 8200L; Value.Int 9300L; Value.Int 53000L; Value.Int 8833L ] ] -> ()
  | r -> Alcotest.fail (Fmt.str "stats: %a" Fmt.(list (list (of_to_string Value.to_string))) r));
  (match cells (run "SELECT count(*) FROM staff WHERE salary > 8800") with
  | [ [ Value.Int 3L ] ] -> ()
  | _ -> Alcotest.fail "filtered count");
  (* group by *)
  (match cells (run "SELECT dept, count(*), avg(salary) FROM staff GROUP BY dept") with
  | [
      [ Value.Text "intelligence"; Value.Int 1L; Value.Int 8800L ];
      [ Value.Text "research"; Value.Int 3L; Value.Int 8733L ];
      [ Value.Text "systems"; Value.Int 2L; Value.Int 9000L ];
    ] ->
      ()
  | r -> Alcotest.fail (Fmt.str "group: %a" Fmt.(list (list (of_to_string Value.to_string))) r));
  (* header names *)
  match run "SELECT count(*) FROM staff" with
  | E.Rows { columns = [ "count(*)" ]; _ } -> ()
  | E.Rows { columns; _ } -> Alcotest.fail (String.concat "," columns)
  | _ -> Alcotest.fail "rows expected"

let test_engine_aggregate_errors () =
  let db, _run = setup () in
  let reject s =
    match E.exec db s with Error _ -> () | Ok _ -> Alcotest.fail ("accepted " ^ s)
  in
  reject "SELECT sum(*) FROM staff";
  reject "SELECT sum(name) FROM staff";
  reject "SELECT name, count(*) FROM staff";
  (* field not in group by *)
  reject "SELECT salary, count(*) FROM staff GROUP BY dept";
  reject "SELECT name FROM staff GROUP BY dept"

let suites =
  suites
  @ [
      ( "sql:aggregates",
        [
          Alcotest.test_case "count/sum/min/max/avg + group by" `Quick test_engine_aggregates;
          Alcotest.test_case "aggregate errors" `Quick test_engine_aggregate_errors;
        ] );
    ]

(* --- parse . to_sql roundtrip on random statements ------------------------- *)

let gen_ident =
  (* identifiers must not collide with keywords (the grammar has no quoted
     identifier form) *)
  QCheck2.Gen.(
    map2
      (fun c rest ->
        let id = String.make 1 c ^ rest in
        if List.mem (String.uppercase_ascii id) L.keywords then "k" ^ id else id)
      (char_range 'a' 'z')
      (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)))

let gen_literal =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Value.Int (Int64.of_int i)) int;
        map (fun s -> Value.Text s) (string_size (int_range 0 12));
        map (fun s -> Value.Bytes s) (string_size (int_range 0 8));
        map (fun b -> Value.Bool b) bool;
        return Value.Null;
      ])

let gen_operand =
  QCheck2.Gen.(
    oneof [ map (fun c -> A.Col c) gen_ident; map (fun v -> A.Lit v) gen_literal ])

let gen_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then
          oneof
            [
              map3 (fun op a b -> A.Cmp (op, a, b))
                (oneofl [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ])
                gen_operand gen_operand;
              map3 (fun e lo hi -> A.Between (e, lo, hi)) gen_operand gen_operand gen_operand;
            ]
        else
          oneof
            [
              map2 (fun a b -> A.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> A.Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun e -> A.Not e) (self (n - 1));
              self 1;
            ]))

let gen_sel_item =
  QCheck2.Gen.(
    oneof
      [
        map (fun c -> A.Field c) gen_ident;
        return (A.Aggregate (A.Count, None));
        map2 (fun fn c -> A.Aggregate (fn, Some c))
          (oneofl [ A.Count; A.Sum; A.Min; A.Max; A.Avg ])
          gen_ident;
      ])

let gen_select =
  QCheck2.Gen.(
    let* items =
      oneof [ return None; map Option.some (list_size (int_range 1 4) gen_sel_item) ]
    in
    let* table = gen_ident in
    let* join =
      let qual = oneof [ gen_ident; map2 (fun t c -> t ^ "." ^ c) gen_ident gen_ident ] in
      option
        (let* jtable = gen_ident in
         let* on_left = qual in
         let* on_right = qual in
         return { A.jtable; on_left; on_right })
    in
    let* where = option gen_expr in
    let* group_by = option gen_ident in
    let* order_by = option (pair gen_ident (oneofl [ A.Asc; A.Desc ])) in
    let* limit = option (int_bound 100) in
    return { A.items; table; join; where; group_by; order_by; limit })

let gen_stmt =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> A.Select s) gen_select;
        map (fun s -> A.Explain s) gen_select;
        map2 (fun t vs -> A.Insert { table = t; values = vs }) gen_ident
          (list_size (int_range 1 5) gen_literal);
        (let* table = gen_ident in
         let* col = gen_ident in
         let* value = gen_literal in
         let* where = option gen_expr in
         return (A.Update { table; col; value; where }));
        (let* table = gen_ident in
         let* where = option gen_expr in
         return (A.Delete { table; where }));
        (let* name = gen_ident in
         let* cols =
           list_size (int_range 1 4)
             (let* col_name = gen_ident in
              let* col_type = oneofl [ Value.Kint; Value.Ktext; Value.Kbytes; Value.Kbool ] in
              let* col_protection =
                oneofl [ Secdb_db.Schema.Clear; Secdb_db.Schema.Encrypted ]
              in
              return { A.col_name; col_type; col_protection })
         in
         return (A.Create_table { name; cols }));
        map2 (fun t c -> A.Create_index { table = t; col = c }) gen_ident gen_ident;
        (let* table = gen_ident in
         let* col = gen_ident in
         let* buckets = option (int_range 1 4096) in
         return (A.Create_range_index { table; col; buckets }));
      ])

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (to_sql s) = s" ~count:500
    ~print:(fun s -> A.to_sql s)
    gen_stmt
    (fun stmt ->
      match P.parse (A.to_sql stmt) with
      | Ok stmt' -> stmt' = stmt
      | Error _ -> false)

let suites =
  suites
  @ [ ("sql:roundtrip", [ Test_seed.qc prop_roundtrip ]) ]

(* --- scripts ---------------------------------------------------------------- *)

let test_scripts () =
  (match P.parse_many "SELECT * FROM t; ; INSERT INTO t VALUES (1);" with
  | Ok [ A.Select _; A.Insert _ ] -> ()
  | Ok l -> Alcotest.fail (Printf.sprintf "%d statements" (List.length l))
  | Error e -> Alcotest.fail e);
  (match P.parse_many "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty script");
  (match P.parse_many "SELECT * FROM t SELECT" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing semicolon accepted");
  let db = Encdb.create ~master:"scripts" ~profile:(Encdb.Fixed Encdb.Ccfb) () in
  match
    E.exec_script db
      "CREATE TABLE s (id INT CLEAR, x INT);\n\
       INSERT INTO s VALUES (0, 5);\n\
       INSERT INTO s VALUES (1, 7);\n\
       CREATE INDEX ON s (x);\n\
       SELECT sum(x) FROM s;"
  with
  | Ok outcomes -> (
      Alcotest.(check int) "five outcomes" 5 (List.length outcomes);
      match List.rev outcomes with
      | (_, E.Rows { rows = [ [ Value.Int 12L ] ]; _ }) :: _ -> ()
      | _ -> Alcotest.fail "script result")
  | Error e -> Alcotest.fail e

let suites =
  suites @ [ ("sql:scripts", [ Alcotest.test_case "parse_many and exec_script" `Quick test_scripts ]) ]

(* --- selectivity-aware planning ------------------------------------------- *)

let test_planner_selectivity () =
  (* two indexed columns; the planner must pick whichever is more selective
     for the query at hand *)
  let db = Encdb.create ~master:"planner" ~profile:(Encdb.Fixed Encdb.Eax) () in
  (match E.exec db "CREATE TABLE m (id INT CLEAR, a INT, b INT)" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* a: uniform over [0,1000); b: constant 5 *)
  for i = 0 to 199 do
    match
      E.exec db (Printf.sprintf "INSERT INTO m VALUES (%d, %d, 5)" i (i * 5))
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  (match E.exec db "CREATE INDEX ON m (a)" with Ok _ -> () | Error e -> Alcotest.fail e);
  (match E.exec db "CREATE INDEX ON m (b)" with Ok _ -> () | Error e -> Alcotest.fail e);
  (* narrow range on a (selective) vs equality on b (matches everything) *)
  let plan sql =
    match P.parse sql with
    | Ok (A.Select s) -> E.plan_of_select db s
    | _ -> Alcotest.fail "parse"
  in
  (match plan "SELECT * FROM m WHERE a BETWEEN 10 AND 20 AND b = 5" with
  | Pl.Scan { access = Pl.Index_probe { col = "a"; estimate; _ }; _ } ->
      Alcotest.(check bool) "a estimated selective" true (estimate < 0.2)
  | Pl.Scan { access = Pl.Index_probe { col; _ }; _ } -> Alcotest.fail ("picked " ^ col)
  | _ -> Alcotest.fail "wrong plan");
  (* flip: wide range on a, point value on b that is rare *)
  (match E.exec db "INSERT INTO m VALUES (999, 1, 77)" with Ok _ -> () | Error e -> Alcotest.fail e);
  (match plan "SELECT * FROM m WHERE a >= 0 AND b = 77" with
  | Pl.Scan { access = Pl.Index_probe { col = "b"; estimate; _ }; _ } ->
      Alcotest.(check bool) "b estimated selective" true (estimate < 0.5)
  | Pl.Scan { access = Pl.Index_probe { col; _ }; _ } -> Alcotest.fail ("picked " ^ col)
  | _ -> Alcotest.fail "wrong plan");
  (* the estimate shows up in EXPLAIN *)
  match E.exec db "EXPLAIN SELECT * FROM m WHERE a BETWEEN 10 AND 20" with
  | Ok (E.Plan p) ->
      Alcotest.(check bool) "estimate printed" true
        (String.length p > 0 &&
         (let rec has i = i + 11 <= String.length p && (String.sub p i 11 = "selectivity" || has (i + 1)) in
          has 0))
  | _ -> Alcotest.fail "explain"

let suites =
  suites
  @ [
      ( "sql:planner",
        [ Alcotest.test_case "selectivity-aware index choice" `Quick test_planner_selectivity ] );
    ]

(* --- bucketized range indexes through SQL ---------------------------------- *)

module Snap = Secdb_sql.Snapshot

let test_parse_create_range_index () =
  (match parse_ok "CREATE RANGE INDEX ON t (v)" with
  | A.Create_range_index { table = "t"; col = "v"; buckets = None } -> ()
  | s -> Alcotest.fail (Fmt.str "got %a" A.pp_stmt s));
  (match parse_ok "create range index on t (v) buckets 32;" with
  | A.Create_range_index { table = "t"; col = "v"; buckets = Some 32 } -> ()
  | s -> Alcotest.fail (Fmt.str "got %a" A.pp_stmt s));
  (match P.parse "CREATE RANGE INDEX ON t (v) BUCKETS 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "BUCKETS 0 accepted");
  match P.parse "CREATE RANGE INDEX t (v)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing ON accepted"

let test_engine_range_scan () =
  let db, run = setup () in
  (* dept has no exact index: BETWEEN on salary goes through the exact
     index, BETWEEN on id full-scans until a range index appears *)
  (match run "CREATE RANGE INDEX ON staff (id) BUCKETS 3" with
  | E.Created -> ()
  | r -> Alcotest.fail (Fmt.str "got %a" E.pp_result r));
  (match run "EXPLAIN SELECT * FROM staff WHERE id BETWEEN 1 AND 4" with
  | E.Plan p ->
      Alcotest.(check bool) "range bucket scan" true
        (String.length p >= 17 && String.sub p 0 17 = "RANGE BUCKET SCAN")
  | _ -> Alcotest.fail "expected plan");
  Alcotest.(check (list string)) "range results, row order"
    [ "grace"; "edsger"; "donald"; "barbara" ]
    (names (run "SELECT name FROM staff WHERE id BETWEEN 1 AND 4"));
  (* the exact index outranks the bucketized one on the same column *)
  (match run "EXPLAIN SELECT * FROM staff WHERE salary BETWEEN 8300 AND 9000" with
  | E.Plan p -> Alcotest.(check bool) "exact index preferred" true (p.[0] = 'I')
  | _ -> Alcotest.fail "expected plan");
  (* maintenance: mutations keep the range index consistent *)
  ignore (run "INSERT INTO staff VALUES (6, 'tony', 'systems', 8000)");
  ignore (run "DELETE FROM staff WHERE id = 2");
  ignore (run "UPDATE staff SET id = 9 WHERE name = 'grace'");
  Alcotest.(check (list string)) "after mutations" [ "donald"; "barbara"; "alan"; "tony" ]
    (names (run "SELECT name FROM staff WHERE id BETWEEN 3 AND 7"));
  (* duplicate registration is refused *)
  match E.exec db "CREATE RANGE INDEX ON staff (id)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate range index accepted"

let test_snapshot_range_paths () =
  let db, run = setup () in
  ignore (run "CREATE RANGE INDEX ON staff (dept)");
  let check_same sql =
    let locked =
      match E.exec db sql with Ok r -> r | Error e -> Alcotest.fail (sql ^ ": " ^ e)
    in
    match E.exec_snapshot (Snap.of_db db) (parse_ok sql) with
    | Some (Ok fast) ->
        Alcotest.(check bool) (sql ^ " matches locked path") true (fast = locked)
    | Some (Error e) -> Alcotest.fail (sql ^ " (snapshot): " ^ e)
    | None -> Alcotest.fail (sql ^ ": snapshot path declined")
  in
  (* exact-indexed column: snapshot mirrors the INDEX SCAN's value order *)
  check_same "SELECT name FROM staff WHERE salary BETWEEN 8300 AND 9000";
  (* range-indexed column: snapshot mirrors the RANGE BUCKET SCAN's row order *)
  check_same "SELECT name FROM staff WHERE dept BETWEEN 'q' AND 's'";
  (* unindexed column: full scan on both sides *)
  check_same "SELECT name FROM staff WHERE name BETWEEN 'a' AND 'c'";
  check_same "SELECT name FROM staff WHERE id BETWEEN 2 AND 11 LIMIT 2"

(* BETWEEN answered through the bucketized structure returns exactly what a
   decrypt-everything point-scan oracle returns, on random workloads *)
let prop_range_index_oracle =
  QCheck2.Test.make ~name:"range index BETWEEN = decrypt-all oracle" ~count:40
    ~print:(fun (vs, lo, hi, buckets) ->
      Printf.sprintf "values=[%s] lo=%d hi=%d buckets=%d"
        (String.concat ";" (List.map string_of_int vs))
        lo hi buckets)
    QCheck2.Gen.(
      let* vs = list_size (int_range 0 60) (int_range 0 100) in
      let* lo = int_range (-5) 105 in
      let* hi = int_range (-5) 105 in
      let* buckets = int_range 1 12 in
      return (vs, lo, hi, buckets))
    (fun (vs, lo, hi, buckets) ->
      let mk with_index =
        let db = Encdb.create ~master:"oracle" ~profile:(Encdb.Fixed Encdb.Eax) () in
        (match E.exec db "CREATE TABLE w (id INT CLEAR, v INT)" with
        | Ok _ -> ()
        | Error e -> failwith e);
        List.iteri
          (fun i v ->
            match E.exec db (Printf.sprintf "INSERT INTO w VALUES (%d, %d)" i v) with
            | Ok _ -> ()
            | Error e -> failwith e)
          vs;
        if with_index then begin
          match E.exec db (Printf.sprintf "CREATE RANGE INDEX ON w (v) BUCKETS %d" buckets) with
          | Ok _ -> ()
          | Error e -> failwith e
        end;
        db
      in
      let indexed = mk true and oracle = mk false in
      let sql = Printf.sprintf "SELECT * FROM w WHERE v BETWEEN %d AND %d" lo hi in
      let s = match P.parse sql with Ok (A.Select s) -> s | _ -> failwith "parse" in
      (* the bucketized path must stay a candidate and, forced, return the
         same bytes the adaptive choice does (the cost model may honestly
         prefer a full scan on wide ranges) *)
      let bucket =
        match
          List.find_opt
            (function Pl.Scan { access = Pl.Bucket_scan _; _ } -> true | _ -> false)
            (E.candidate_plans indexed s)
        with
        | Some p -> p
        | None -> failwith "bucketized candidate missing"
      in
      let run db = match E.exec db sql with Ok r -> r | Error e -> failwith e in
      let locked = run indexed in
      (match E.exec_plan indexed s bucket with
      | Ok r -> if r <> locked then failwith "forced bucket plan diverges"
      | Error e -> failwith e);
      if locked <> run oracle then false
      else
        (* and the lock-free snapshot path produces the same bytes *)
        match E.exec_snapshot (Snap.of_db indexed) (A.Select s) with
        | Some (Ok fast) -> fast = locked
        | Some (Error e) -> failwith e
        | None -> failwith "snapshot path declined")

let suites =
  suites
  @ [
      ( "sql:range-index",
        [
          Alcotest.test_case "parse CREATE RANGE INDEX" `Quick test_parse_create_range_index;
          Alcotest.test_case "range bucket scan end to end" `Quick test_engine_range_scan;
          Alcotest.test_case "snapshot fast path mirrors range plans" `Quick
            test_snapshot_range_paths;
          Test_seed.qc prop_range_index_oracle;
        ] );
    ]

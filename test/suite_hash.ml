open Secdb_util
module Sha1 = Secdb_hash.Sha1
module Sha256 = Secdb_hash.Sha256
module Md5 = Secdb_hash.Md5
module Hmac = Secdb_hash.Hmac

let check = Alcotest.(check string)

let test_sha1_vectors () =
  check "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.hex "");
  check "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.hex "abc");
  check "two blocks" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_sha256_vectors () =
  check "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  check "two blocks" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_md5_vectors () =
  (* RFC 1321 appendix A.5 test suite *)
  check "empty" "d41d8cd98f00b204e9800998ecf8427e" (Md5.hex "");
  check "a" "0cc175b9c0f1b6a831c399e269772661" (Md5.hex "a");
  check "abc" "900150983cd24fb0d6963f7d28e17f72" (Md5.hex "abc");
  check "message digest" "f96b697d7cb7938d525a2f31aaf161d0" (Md5.hex "message digest");
  check "alphabet" "c3fcd3d76192e4007dfb496cca67e13b" (Md5.hex "abcdefghijklmnopqrstuvwxyz");
  check "alnum" "d174ab98d277d9f5a5611c2c9f419d9f"
    (Md5.hex "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789");
  check "digits" "57edf4a22be3c955ac49da2e2107b67a"
    (Md5.hex "12345678901234567890123456789012345678901234567890123456789012345678901234567890")

let test_md_pad () =
  (* padded length is a whole number of blocks, 0x80 right after the data *)
  List.iter
    (fun n ->
      let msg = String.make n 'x' in
      let padded = Sha1.md_pad ~le:false msg in
      if String.length padded mod 64 <> 0 then Alcotest.fail "not block aligned";
      if padded.[n] <> '\x80' then Alcotest.fail "0x80 missing";
      let bitlen = Xbytes.get_uint64_be padded (String.length padded - 8) in
      Alcotest.(check int64) "bit length" (Int64.of_int (8 * n)) bitlen)
    [ 0; 1; 54; 55; 56; 63; 64; 65; 119; 120; 128 ]

let test_hmac_rfc2202 () =
  (* HMAC-SHA1, RFC 2202 *)
  check "case 1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Xbytes.to_hex (Hmac.mac Hmac.sha1 ~key:(String.make 20 '\x0b') "Hi There"));
  check "case 2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Xbytes.to_hex (Hmac.mac Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?"));
  check "case 3" "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    (Xbytes.to_hex
       (Hmac.mac Hmac.sha1 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')))

let test_hmac_rfc4231 () =
  (* HMAC-SHA256, RFC 4231 *)
  check "case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Xbytes.to_hex (Hmac.mac Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There"));
  check "case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Xbytes.to_hex (Hmac.mac Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?"));
  (* case 6: key longer than the block size *)
  check "case 6 long key" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Xbytes.to_hex
       (Hmac.mac Hmac.sha256 ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_truncation_verify () =
  let key = "secret key" and msg = "authenticate me" in
  let short = Hmac.mac_truncated Hmac.sha256 ~key ~bytes:8 msg in
  Alcotest.(check int) "truncated length" 8 (String.length short);
  Alcotest.(check bool) "verify truncated" true (Hmac.verify Hmac.sha256 ~key ~tag:short msg);
  Alcotest.(check bool) "verify full" true
    (Hmac.verify Hmac.sha256 ~key ~tag:(Hmac.mac Hmac.sha256 ~key msg) msg);
  Alcotest.(check bool) "reject wrong msg" false
    (Hmac.verify Hmac.sha256 ~key ~tag:short "other message");
  Alcotest.(check bool) "reject wrong key" false
    (Hmac.verify Hmac.sha256 ~key:"other" ~tag:short msg)

let qc = Test_seed.qc

let prop_digest_sizes =
  QCheck2.Test.make ~name:"digest sizes" ~count:200 QCheck2.Gen.string (fun s ->
      String.length (Sha1.digest s) = 20
      && String.length (Sha256.digest s) = 32
      && String.length (Md5.digest s) = 16)

let prop_sha256_sensitivity =
  QCheck2.Test.make ~name:"single-bit flip changes SHA-256" ~count:200
    QCheck2.Gen.(string_size (int_range 1 200))
    (fun s -> Sha256.digest (Xbytes.flip_bit s 0) <> Sha256.digest s)

let suites =
  [
    ( "hash:vectors",
      [
        Alcotest.test_case "SHA-1 FIPS vectors" `Quick test_sha1_vectors;
        Alcotest.test_case "SHA-256 FIPS vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "MD5 RFC 1321 suite" `Quick test_md5_vectors;
        Alcotest.test_case "Merkle-Damgard padding" `Quick test_md_pad;
      ] );
    ( "hash:hmac",
      [
        Alcotest.test_case "HMAC-SHA1 RFC 2202" `Quick test_hmac_rfc2202;
        Alcotest.test_case "HMAC-SHA256 RFC 4231" `Quick test_hmac_rfc4231;
        Alcotest.test_case "truncation and verify" `Quick test_hmac_truncation_verify;
        qc prop_digest_sizes;
        qc prop_sha256_sensitivity;
      ] );
  ]

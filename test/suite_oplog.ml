open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Xbytes = Secdb_util.Xbytes
module Rng = Secdb_util.Rng

let tmp = Filename.concat (Filename.get_temp_dir_name ()) "secdb_oplog.log"
let aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'L'))
let foreign_aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'M'))

let schema =
  Schema.v ~table_name:"t"
    [ Schema.column ~protection:Schema.Clear "id" Value.Kint; Schema.column "v" Value.Ktext ]

let fresh_db () =
  let db = Encdb.create ~master:"log master" ~profile:(Encdb.Fixed Encdb.Ocb) () in
  Encdb.create_table db schema;
  Encdb.create_index db ~table:"t" ~col:"v";
  db

let sample_ops n =
  let rng = Rng.create ~seed:81L () in
  List.concat
    (List.init n (fun i ->
         let base =
           Oplog.Insert
             { table = "t"; values = [ Value.Int (Int64.of_int i); Value.Text (Rng.alpha rng 8) ] }
         in
         if i mod 5 = 4 then
           [ base; Oplog.Update { table = "t"; row = i - 1; col = "v"; value = Value.Text "edited" } ]
         else if i mod 7 = 6 then [ base; Oplog.Delete { table = "t"; row = i - 2 } ]
         else [ base ]))

let write_log ?sync ops =
  let w = Oplog.create ?sync ~path:tmp ~aead ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) () in
  List.iter (fun op -> ignore (Oplog.append w op)) ops;
  let n = Oplog.count w in
  Oplog.close w;
  n

(* Walk the on-disk framing: [len:4][record][crc:4] per record; returns the
   byte offset of each record start. *)
let record_offsets data =
  let rec walk off acc =
    if off >= String.length data then List.rev acc
    else
      let rlen = Xbytes.be_string_to_int (String.sub data off 4) in
      walk (off + 8 + rlen) (off :: acc)
  in
  walk 0 []

let test_replay_rebuilds_identical_db () =
  let ops = sample_ops 30 in
  let db = fresh_db () in
  List.iter (fun op -> match Oplog.apply db op with Ok () -> () | Error e -> Alcotest.fail e) ops;
  let n = write_log ops in
  Alcotest.(check int) "count" (List.length ops) n;
  let db' = fresh_db () in
  (match Oplog.replay_into db' ~path:tmp ~aead () with
  | Ok applied -> Alcotest.(check int) "applied" n applied
  | Error e -> Alcotest.fail e.Oplog.reason);
  (* byte-identical state: same master + deterministic nonces would be
     needed for digest equality of AEAD cells, so compare logical content *)
  for row = 0 to 29 do
    let same =
      match (Secdb_query.Encrypted_table.get (Encdb.table db "t") ~row ~col:1,
             Secdb_query.Encrypted_table.get (Encdb.table db' "t") ~row ~col:1) with
      | Ok a, Ok b -> Value.equal a b
      | Error _, Error _ -> true
      | _ -> false
    in
    if not same then Alcotest.fail (Printf.sprintf "row %d differs after replay" row)
  done

let flip_byte_at path pos =
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (Char.code data.[pos] lxor 1));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

let test_tamper_matrix () =
  let ops = sample_ops 10 in
  let n = write_log ops in
  (* 1. clean log verifies *)
  (match Oplog.replay ~path:tmp ~aead () with
  | Ok l -> Alcotest.(check int) "length" n (List.length l)
  | Error e -> Alcotest.fail e);
  (* 2. bit flip in the middle fails *)
  let size = (Unix.stat tmp).Unix.st_size in
  flip_byte_at tmp (size / 2);
  (match Oplog.replay ~path:tmp ~aead () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit flip accepted");
  (* 3. reordering records fails (sequence in AD) *)
  ignore (write_log ops);
  let data = In_channel.with_open_bin tmp In_channel.input_all in
  let rlen = Xbytes.be_string_to_int (String.sub data 0 4) + 8 in
  let r2len = Xbytes.be_string_to_int (String.sub data rlen 4) + 8 in
  let swapped =
    String.sub data rlen r2len ^ String.sub data 0 rlen
    ^ String.sub data (rlen + r2len) (String.length data - rlen - r2len)
  in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc swapped);
  (match Oplog.replay ~path:tmp ~aead () with
  | Error e -> Alcotest.(check bool) "names order/splice" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "reorder accepted");
  (* 4. foreign key fails *)
  ignore (write_log ops);
  (match Oplog.replay ~path:tmp ~aead:foreign_aead () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign key accepted");
  (* 5. tail truncation yields a shorter VALID log: the out-of-band count
     is the defence *)
  ignore (write_log ops);
  let data = In_channel.with_open_bin tmp In_channel.input_all in
  let last_start = List.hd (List.rev (record_offsets data)) in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (String.sub data 0 last_start));
  (match Oplog.replay ~path:tmp ~aead () with
  | Ok l ->
      Alcotest.(check int) "one record silently gone" (n - 1) (List.length l);
      Alcotest.(check bool) "count mismatch detects it" true (List.length l <> n)
  | Error e -> Alcotest.fail e);
  (* 6. mid-log truncation (cut across a record) fails *)
  ignore (write_log ops);
  let data = In_channel.with_open_bin tmp In_channel.input_all in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (String.sub data 0 (String.length data - 3)));
  match Oplog.replay ~path:tmp ~aead () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cut record accepted"

(* recover: longest valid prefix + a verdict that names the failure mode *)
let test_recover_verdicts () =
  let ops = sample_ops 6 in
  let n = write_log ops in
  let clean = In_channel.with_open_bin tmp In_channel.input_all in
  let offsets = record_offsets clean in
  let with_data data f =
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
    match Oplog.recover ~path:tmp ~aead () with
    | Ok (prefix, tail) -> f (List.length prefix) tail
    | Error e -> Alcotest.fail e
  in
  (* clean log: everything, Complete *)
  with_data clean (fun k tail ->
      Alcotest.(check int) "clean: all records" n k;
      Alcotest.(check bool) "clean tail" true (tail = Oplog.Complete));
  (* empty log *)
  with_data "" (fun k tail ->
      Alcotest.(check int) "empty" 0 k;
      Alcotest.(check bool) "empty is complete" true (tail = Oplog.Complete));
  (* 2 bytes of a length field *)
  let second = List.nth offsets 1 in
  with_data (String.sub clean 0 (second + 2)) (fun k tail ->
      Alcotest.(check int) "torn length: one survivor" 1 k;
      match tail with
      | Oplog.Torn_length { off; have } ->
          Alcotest.(check int) "offset" second off;
          Alcotest.(check int) "have" 2 have
      | t -> Alcotest.fail ("expected Torn_length, got " ^ Oplog.tail_to_string t));
  (* record cut mid-body: the torn write *)
  let third = List.nth offsets 2 in
  with_data (String.sub clean 0 (third + 9)) (fun k tail ->
      Alcotest.(check int) "torn record: two survive" 2 k;
      match tail with
      | Oplog.Torn_record { seq; off; _ } ->
          Alcotest.(check int) "seq" 2 seq;
          Alcotest.(check int) "offset" third off
      | t -> Alcotest.fail ("expected Torn_record, got " ^ Oplog.tail_to_string t));
  (* corrupt a byte inside record 3's body: CRC catches it before AEAD *)
  let fourth = List.nth offsets 3 in
  let corrupted = Bytes.of_string clean in
  Bytes.set corrupted (fourth + 6) (Char.chr (Char.code clean.[fourth + 6] lxor 0x40));
  with_data (Bytes.to_string corrupted) (fun k tail ->
      Alcotest.(check int) "crc: three survive" 3 k;
      match tail with
      | Oplog.Bad_crc { seq; _ } -> Alcotest.(check int) "seq" 3 seq
      | t -> Alcotest.fail ("expected Bad_crc, got " ^ Oplog.tail_to_string t));
  (* zero-filled tail (lost-extent crash image): implausible length *)
  with_data (String.sub clean 0 second ^ String.make 64 '\000') (fun k tail ->
      Alcotest.(check int) "zero tail: one survivor" 1 k;
      match tail with
      | Oplog.Bad_length { seq; len; _ } ->
          Alcotest.(check int) "seq" 1 seq;
          Alcotest.(check int) "len" 0 len
      | t -> Alcotest.fail ("expected Bad_length, got " ^ Oplog.tail_to_string t));
  (* wrong key: CRC passes, AEAD refuses *)
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc clean);
  (match Oplog.recover ~path:tmp ~aead:foreign_aead () with
  | Ok (prefix, Oplog.Bad_auth { seq = 0; _ }) ->
      Alcotest.(check int) "foreign key: nothing survives" 0 (List.length prefix)
  | Ok (_, t) -> Alcotest.fail ("expected Bad_auth at 0, got " ^ Oplog.tail_to_string t)
  | Error e -> Alcotest.fail e);
  (* missing file is the only hard error *)
  match Oplog.recover ~path:(tmp ^ ".does-not-exist") ~aead () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recover invented a log"

let test_sync_and_policies () =
  let ops = sample_ops 5 in
  (* Every_n and Never still produce byte-identical logs on a clean close *)
  let n_always = write_log ~sync:Oplog.Always ops in
  let d_always = In_channel.with_open_bin tmp In_channel.input_all in
  let n_never = write_log ~sync:Oplog.Never ops in
  let d_never = In_channel.with_open_bin tmp In_channel.input_all in
  let n_every = write_log ~sync:(Oplog.Every_n 3) ops in
  let d_every = In_channel.with_open_bin tmp In_channel.input_all in
  Alcotest.(check int) "counts agree" n_always n_never;
  Alcotest.(check int) "counts agree" n_always n_every;
  Alcotest.(check bool) "bytes agree (never)" true (d_always = d_never);
  Alcotest.(check bool) "bytes agree (every_n)" true (d_always = d_every);
  (* explicit sync is idempotent and legal mid-stream *)
  let w = Oplog.create ~sync:Oplog.Never ~path:tmp ~aead
      ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) () in
  ignore (Oplog.append w (List.hd ops));
  Oplog.sync w;
  Oplog.sync w;
  ignore (Oplog.append w (List.nth ops 1));
  Oplog.close w;
  match Oplog.replay ~path:tmp ~aead () with
  | Ok l -> Alcotest.(check int) "both records" 2 (List.length l)
  | Error e -> Alcotest.fail e

let suites =
  [
    ( "core:oplog",
      [
        Alcotest.test_case "replay rebuilds the database" `Quick
          test_replay_rebuilds_identical_db;
        Alcotest.test_case "tamper matrix" `Quick test_tamper_matrix;
        Alcotest.test_case "recover verdicts" `Quick test_recover_verdicts;
        Alcotest.test_case "sync policies" `Quick test_sync_and_policies;
      ] );
  ]

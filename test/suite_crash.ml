(* Crash matrix: every write of a workload is a crash point.  The fault
   VFS freezes the durable image there; reopening it must recover exactly
   the synced prefix (oplog) and fsck must terminate with a report
   (pager), for every point and every sync policy. *)

open Secdb
module Value = Secdb_db.Value
module Vfs = Secdb_storage.Vfs
module Pager = Secdb_storage.Pager
module Blob = Secdb_storage.Blob_store
module Fsck = Secdb_storage.Fsck
module Xbytes = Secdb_util.Xbytes

let aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'C'))
let nonce () = Secdb_aead.Nonce.counter ~size:16 ()

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("secdb_crash_" ^ name)

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let sample_ops n =
  List.init n (fun i ->
      Oplog.Insert { table = "t"; values = [ Value.Int (Int64.of_int i) ] })

(* {2 Oplog crash matrix} *)

let log_path = "mem:crash.log"

(* how many records the crash model promises to keep, given how many
   appends were acked before the crash *)
let promised policy ~acked ~crashed =
  if not crashed then acked (* close syncs *)
  else
    match policy with
    | Oplog.Always -> acked
    | Oplog.Every_n n -> acked / n * n
    | Oplog.Never -> 0

(* run [ops] against a disk that crashes at pwrite [k]; returns
   (acked, crashed, durable image) *)
let crash_run ~policy ~seed ~k ops =
  let ctl = Vfs.Fault.make ~seed () in
  Vfs.Fault.crash_after_writes ctl k;
  let vfs = Vfs.Fault.vfs ctl in
  let acked = ref 0 in
  (try
     let w = Oplog.create ~vfs ~sync:policy ~path:log_path ~aead ~nonce:(nonce ()) () in
     List.iter
       (fun op ->
         ignore (Oplog.append w op);
         incr acked)
       ops;
     Oplog.close w
   with Vfs.Crashed _ -> ());
  (!acked, Vfs.Fault.crashed ctl, Vfs.Fault.dump ctl ~path:log_path)

(* reopen the frozen image and check the recovered prefix against the model *)
let check_point ~policy ~seed ~k ops =
  let acked, crashed, image = crash_run ~policy ~seed ~k ops in
  let want = promised policy ~acked ~crashed in
  let path = tmp "image.log" in
  write_file path image;
  match Oplog.recover ~path ~aead () with
  | Error e -> Error (Printf.sprintf "k=%d: image unreadable: %s" k e)
  | Ok (recovered, tail) ->
      if List.length recovered <> want then
        Error
          (Printf.sprintf "k=%d: recovered %d records, model promises %d (tail: %s)" k
             (List.length recovered) want (Oplog.tail_to_string tail))
      else if
        not
          (List.for_all2
             (fun (seq, got) (seq', expect) -> seq = seq' && got = expect)
             recovered
             (List.filteri (fun i _ -> i < want) (List.mapi (fun i op -> (i, op)) ops)))
      then Error (Printf.sprintf "k=%d: recovered records differ from the workload prefix" k)
      else Ok crashed

let run_matrix policy =
  let ops = sample_ops 9 in
  let rec loop k =
    if k > 200 then Alcotest.fail "crash never stopped firing"
    else
      match check_point ~policy ~seed:(7000 + k) ~k ops with
      | Error msg -> Alcotest.fail msg
      | Ok true -> loop (k + 1)
      | Ok false -> k (* first point past the workload: every write survived *)
  in
  let total = loop 1 in
  Alcotest.(check bool) "matrix covered the workload" true (total > List.length ops / 2)

let test_matrix_always () = run_matrix Oplog.Always
let test_matrix_every_n () = run_matrix (Oplog.Every_n 3)
let test_matrix_never () = run_matrix Oplog.Never

let test_acked_never_lost_under_always () =
  (* the headline durability claim, checked point by point *)
  let ops = sample_ops 7 in
  for k = 1 to 7 do
    let acked, crashed, image = crash_run ~policy:Oplog.Always ~seed:(900 + k) ~k ops in
    Alcotest.(check bool) "crash fired" true crashed;
    let path = tmp "always.log" in
    write_file path image;
    match Oplog.recover ~path ~aead () with
    | Ok (recovered, _) ->
        Alcotest.(check int)
          (Printf.sprintf "k=%d: every acked append survives" k)
          acked (List.length recovered)
    | Error e -> Alcotest.fail e
  done

let test_io_error_leaves_record_boundary () =
  (* an injected ENOSPC mid-append must not leave a torn record behind a
     live writer: append truncates back, the next append lands cleanly *)
  let ctl = Vfs.Fault.make ~seed:5 () in
  let vfs = Vfs.Fault.vfs ctl in
  let w = Oplog.create ~vfs ~path:log_path ~aead ~nonce:(nonce ()) () in
  let op = List.hd (sample_ops 1) in
  ignore (Oplog.append w op);
  Vfs.Fault.fail_op ctl ~op:`Pwrite ~after:1 ~err:`ENOSPC;
  (try
     ignore (Oplog.append w op);
     Alcotest.fail "injected ENOSPC did not surface"
   with Vfs.Io_error _ -> ());
  ignore (Oplog.append w op);
  Oplog.close w;
  let path = tmp "enospc.log" in
  write_file path (Vfs.Fault.dump ctl ~path:log_path);
  match Oplog.replay ~path ~aead () with
  | Ok l -> Alcotest.(check int) "clean boundary, both records" 2 (List.length l)
  | Error e -> Alcotest.fail e

(* {2 Pager / fsck crash matrix} *)

let db_path = "mem:db.pg"

let pager_workload vfs =
  let p = Pager.create ~path:db_path ~page_size:128 ~cache_pages:4 ~vfs () in
  let store = Blob.attach p in
  let a = Blob.store store (String.make 500 'A') in
  let b = Blob.store store "crash matrix blob" in
  Pager.flush p;
  Pager.sync p;
  let c = Blob.store store (String.make 260 'C') in
  Blob.delete store c;
  ignore (Blob.overwrite store b (String.make 300 'B'));
  Pager.close p;
  (a, b)

let test_pager_crash_matrix () =
  let rec loop k =
    if k > 300 then Alcotest.fail "crash never stopped firing"
    else begin
      let ctl = Vfs.Fault.make ~seed:(3000 + k) () in
      Vfs.Fault.crash_after_writes ctl k;
      let roots = try Some (pager_workload (Vfs.Fault.vfs ctl)) with Vfs.Crashed _ -> None in
      let path = tmp "image.pg" in
      write_file path (Vfs.Fault.dump ctl ~path:db_path);
      (* fsck must terminate with a report on every image, broken or not *)
      let report = Fsck.run ~path () in
      List.iter (fun i -> ignore (Fsck.issue_to_string i)) report.Fsck.issues;
      (* reopening must answer, never raise *)
      (match Pager.open_file ~path () with Ok p -> Pager.close p | Error _ -> ());
      match roots with
      | None -> loop (k + 1)
      | Some (a, b) ->
          (* the workload outran the crash point: a cleanly closed image
             must be spotless, chains included *)
          let report = Fsck.run ~roots:[ a; b ] ~path () in
          if not (Fsck.ok report) then
            Alcotest.fail
              (String.concat "; " (List.map Fsck.issue_to_string report.Fsck.issues));
          k
    end
  in
  let total = loop 1 in
  Alcotest.(check bool) "matrix had real extent" true (total > 5)

(* {2 Fsck on handcrafted corruption} *)

(* page 0 is the header page: the 20 header bytes padded to a full page *)
let forge_header ~psize ~npages ~free_head =
  let h =
    Pager.magic
    ^ Xbytes.int_to_be_string ~width:4 psize
    ^ Xbytes.int_to_be_string ~width:4 npages
    ^ Xbytes.int_to_be_string ~width:4 free_head
  in
  h ^ String.make (psize - String.length h) '\000'

let page_bytes ~psize ~next content =
  let body = Xbytes.int_to_be_string ~width:8 next ^ content in
  body ^ String.make (psize - String.length body) '\000'

let test_fsck_free_cycle () =
  let path = tmp "cycle.pg" in
  write_file path
    (forge_header ~psize:64 ~npages:2 ~free_head:1
    ^ page_bytes ~psize:64 ~next:2 ""
    ^ page_bytes ~psize:64 ~next:1 "");
  let report = Fsck.run ~path () in
  let is_cycle = function Fsck.Free_cycle _ -> true | _ -> false in
  Alcotest.(check bool) "free cycle reported" true (List.exists is_cycle report.Fsck.issues)

let test_fsck_free_range () =
  let path = tmp "range.pg" in
  write_file path
    (forge_header ~psize:64 ~npages:1 ~free_head:1 ^ page_bytes ~psize:64 ~next:9 "");
  let report = Fsck.run ~path () in
  let is_range = function Fsck.Free_range _ -> true | _ -> false in
  Alcotest.(check bool) "wild free pointer reported" true
    (List.exists is_range report.Fsck.issues)

let test_fsck_trailing_garbage () =
  let path = tmp "garbage.pg" in
  let p = Pager.create ~path ~page_size:64 () in
  ignore (Pager.alloc p);
  Pager.close p;
  let data = In_channel.with_open_bin path In_channel.input_all in
  write_file path (data ^ "leftover bytes from a lost write");
  let report = Fsck.run ~path () in
  let is_garbage = function Fsck.Trailing_garbage _ -> true | _ -> false in
  Alcotest.(check bool) "trailing bytes reported" true
    (List.exists is_garbage report.Fsck.issues)

let test_blob_chain_cycle_is_structured () =
  (* a next pointer bent back onto the chain: load and fsck both name the
     offending page, in linear time *)
  let path = tmp "chain.pg" in
  let p = Pager.create ~path ~page_size:64 ~cache_pages:4 () in
  let store = Blob.attach p in
  let id = Blob.store store (String.make 120 'Z') in
  let pages =
    match Blob.pages_of store id with Ok l -> l | Error _ -> Alcotest.fail "chain unreadable"
  in
  Alcotest.(check bool) "blob spans pages" true (List.length pages >= 2);
  Pager.close p;
  (* point the second page back at the first *)
  let second = List.nth pages 1 in
  let off = second * 64 in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  Bytes.blit_string (Xbytes.int_to_be_string ~width:8 (List.hd pages)) 0 b off 8;
  write_file path (Bytes.to_string b);
  (match Pager.open_file ~path () with
  | Error e -> Alcotest.fail e
  | Ok p' -> (
      let store' = Blob.attach p' in
      (match Blob.load store' id with
      | Ok _ -> Alcotest.fail "cyclic chain loaded"
      | Error e ->
          Alcotest.(check bool) "error names a chain page" true
            (List.mem e.Blob.page pages);
          Alcotest.(check bool) "error mentions the cycle" true
            (String.length e.Blob.reason > 0));
      Pager.close p'));
  let report = Fsck.run ~roots:[ id ] ~path () in
  let is_chain = function Fsck.Chain { head; _ } -> head = id | _ -> false in
  Alcotest.(check bool) "fsck reports the chain" true (List.exists is_chain report.Fsck.issues)

(* {2 Properties} *)

let qc = Test_seed.qc

let prop_recover_matches_model =
  QCheck2.Test.make ~name:"crash point recovery matches the synced model" ~count:60
    QCheck2.Gen.(
      tup4 (int_range 1 40) (int_range 0 2) (int_range 1 12) (int_range 0 9999))
    (fun (k, pol, nops, seed) ->
      let policy =
        match pol with 0 -> Oplog.Always | 1 -> Oplog.Every_n 3 | _ -> Oplog.Never
      in
      match check_point ~policy ~seed ~k (sample_ops nops) with
      | Ok _ -> true
      | Error msg -> QCheck2.Test.fail_report msg)

let prop_corruption_yields_prefix =
  QCheck2.Test.make ~name:"arbitrary corruption never yields a non-prefix" ~count:60
    QCheck2.Gen.(
      tup4 (int_range 1 8) (float_range 0. 1.) bool (int_range 0 255))
    (fun (nops, frac, cut, mask) ->
      let ops = sample_ops nops in
      let path = tmp "corrupt.log" in
      let w = Oplog.create ~path ~aead ~nonce:(nonce ()) () in
      List.iter (fun op -> ignore (Oplog.append w op)) ops;
      Oplog.close w;
      let clean = In_channel.with_open_bin path In_channel.input_all in
      let pos =
        min (String.length clean - 1) (int_of_float (frac *. float (String.length clean)))
      in
      let doctored =
        if cut then String.sub clean 0 pos
        else begin
          let b = Bytes.of_string clean in
          Bytes.set b pos (Char.chr (Char.code clean.[pos] lxor (1 lor mask)));
          Bytes.to_string b
        end
      in
      write_file path doctored;
      match Oplog.recover ~path ~aead () with
      | Error _ -> QCheck2.Test.fail_report "readable file reported unreadable"
      | Ok (recovered, _) ->
          let expect = List.mapi (fun i op -> (i, op)) ops in
          let rec is_prefix xs ys =
            match (xs, ys) with
            | [], _ -> true
            | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
            | _ :: _, [] -> false
          in
          is_prefix recovered expect)

let prop_faulty_disk_equivalence =
  QCheck2.Test.make ~name:"short reads + torn writes change nothing observable" ~count:20
    QCheck2.Gen.(int_range 0 9999)
    (fun seed ->
      let image_of faulty =
        let ctl = Vfs.Fault.make ~seed () in
        if faulty then begin
          Vfs.Fault.set_short_reads ctl true;
          Vfs.Fault.set_torn_writes ctl true
        end;
        ignore (pager_workload (Vfs.Fault.vfs ctl));
        Vfs.Fault.dump ctl ~path:db_path
      in
      image_of false = image_of true)

let prop_fsck_terminates =
  QCheck2.Test.make ~name:"fsck terminates on arbitrary page soup" ~count:40
    QCheck2.Gen.(
      tup3 (int_range 0 8) (int_range 0 10) (string_size ~gen:char (int_range 0 512)))
    (fun (npages, free_head, soup) ->
      let path = tmp "soup.pg" in
      write_file path (forge_header ~psize:64 ~npages ~free_head ^ soup);
      let report = Fsck.run ~path () in
      List.iter (fun i -> ignore (Fsck.issue_to_string i)) report.Fsck.issues;
      true)

let suites =
  [
    ( "storage:crash",
      [
        Alcotest.test_case "oplog matrix, sync=Always" `Quick test_matrix_always;
        Alcotest.test_case "oplog matrix, sync=Every_n 3" `Quick test_matrix_every_n;
        Alcotest.test_case "oplog matrix, sync=Never" `Quick test_matrix_never;
        Alcotest.test_case "Always never loses an acked append" `Quick
          test_acked_never_lost_under_always;
        Alcotest.test_case "ENOSPC leaves a record boundary" `Quick
          test_io_error_leaves_record_boundary;
        Alcotest.test_case "pager matrix: fsck every image" `Quick test_pager_crash_matrix;
        qc prop_recover_matches_model;
        qc prop_corruption_yields_prefix;
        qc prop_faulty_disk_equivalence;
      ] );
    ( "storage:fsck",
      [
        Alcotest.test_case "free-list cycle" `Quick test_fsck_free_cycle;
        Alcotest.test_case "wild free pointer" `Quick test_fsck_free_range;
        Alcotest.test_case "trailing garbage" `Quick test_fsck_trailing_garbage;
        Alcotest.test_case "blob chain cycle is a structured error" `Quick
          test_blob_chain_cycle_is_structured;
        qc prop_fsck_terminates;
      ] );
  ]

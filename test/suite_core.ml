open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module B = Secdb_index.Bptree
module Walker = Secdb_query.Walker

let schema =
  Schema.v ~table_name:"patients"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "name" Value.Ktext;
      Schema.column "diagnosis" Value.Ktext;
      Schema.column "age" Value.Kint;
    ]

let patients =
  [
    ("alice", "hypertension stage two with complications....", 54);
    ("bob", "type 2 diabetes mellitus without complications", 61);
    ("carol", "hypertension stage two with secondary issues.", 47);
    ("dave", "seasonal allergic rhinitis due to pollen......", 33);
    ("erin", "type 2 diabetes mellitus without complications", 58);
  ]

let make_db profile =
  let db = Encdb.create ~master:"test master key" ~profile () in
  Encdb.create_table db schema;
  List.iteri
    (fun i (n, d, a) ->
      ignore
        (Encdb.insert db ~table:"patients"
           [ Value.Int (Int64.of_int i); Value.Text n; Value.Text d; Value.Int (Int64.of_int a) ]))
    patients;
  Encdb.create_index db ~table:"patients" ~col:"diagnosis";
  Encdb.create_index db ~table:"patients" ~col:"age";
  db

(* --- keyring ------------------------------------------------------------ *)

let test_keyring () =
  let k = Keyring.open_session ~master:"hunter2" in
  Alcotest.(check bool) "open" true (Keyring.is_open k);
  let c1 = Keyring.cell_key k ~table:1 ~col:0 in
  Alcotest.(check int) "16-byte keys" 16 (String.length c1);
  Alcotest.(check string) "deterministic" c1 (Keyring.cell_key k ~table:1 ~col:0);
  Alcotest.(check bool) "purposes separated" false (c1 = Keyring.index_key k ~table:1 ~col:0);
  Alcotest.(check bool) "mac key separated" false (c1 = Keyring.mac_key k ~table:1 ~col:0);
  Alcotest.(check bool) "tables separated" false (c1 = Keyring.cell_key k ~table:2 ~col:0);
  Alcotest.(check bool) "columns separated" false (c1 = Keyring.cell_key k ~table:1 ~col:1);
  let k2 = Keyring.open_session ~master:"hunter2" in
  Alcotest.(check string) "same master, same keys" c1 (Keyring.cell_key k2 ~table:1 ~col:0);
  let k3 = Keyring.open_session ~master:"other" in
  Alcotest.(check bool) "different master" false (c1 = Keyring.cell_key k3 ~table:1 ~col:0);
  Keyring.close_session k;
  Alcotest.(check bool) "closed" false (Keyring.is_open k);
  Alcotest.check_raises "use after close" Keyring.Session_closed (fun () ->
      ignore (Keyring.cell_key k ~table:1 ~col:0));
  Alcotest.check_raises "empty master"
    (Invalid_argument "Keyring.open_session: empty master key") (fun () ->
      ignore (Keyring.open_session ~master:""));
  Alcotest.check_raises "overlong derive"
    (Invalid_argument "Keyring.derive: length exceeds one HMAC-SHA256 output") (fun () ->
      ignore (Keyring.derive k2 ~label:"x" ~length:64))

let test_keyring_zeroize () =
  (* [open_session_bytes] adopts the buffer, so the wipe is observable *)
  let buf = Bytes.of_string "a master key worth erasing" in
  let k = Keyring.open_session_bytes ~master:buf in
  let key = Keyring.cell_key k ~table:1 ~col:0 in
  Alcotest.(check string) "adopted buffer derives like a string master" key
    (Keyring.cell_key (Keyring.open_session ~master:"a master key worth erasing") ~table:1 ~col:0);
  Keyring.close_session k;
  Alcotest.(check string) "master zeroized in place"
    (String.make (Bytes.length buf) '\000')
    (Bytes.to_string buf);
  Alcotest.(check bool) "closed" false (Keyring.is_open k);
  Keyring.close_session k (* idempotent *);
  Alcotest.check_raises "use after close" Keyring.Session_closed (fun () ->
      ignore (Keyring.derive k ~label:"x" ~length:16));
  Alcotest.check_raises "empty bytes master"
    (Invalid_argument "Keyring.open_session: empty master key") (fun () ->
      ignore (Keyring.open_session_bytes ~master:Bytes.empty))

(* --- end-to-end per profile --------------------------------------------- *)

let diabetes = Value.Text "type 2 diabetes mellitus without complications"

let test_profile profile () =
  let db = make_db profile in
  (* equality via encrypted index *)
  (match Encdb.select_eq db ~table:"patients" ~col:"diagnosis" diabetes with
  | Ok rows ->
      Alcotest.(check int) "eq count" 2 (List.length rows);
      List.iter
        (fun (_, vs) ->
          Alcotest.(check bool) "full row decrypted" true
            (Value.equal vs.(2) diabetes))
        rows
  | Error e -> Alcotest.fail e);
  (* range over ints *)
  (match
     Encdb.select_range db ~table:"patients" ~col:"age" ~lo:(Value.Int 40L)
       ~hi:(Value.Int 60L) ()
   with
  | Ok rows ->
      Alcotest.(check (list string)) "range names" [ "carol"; "alice"; "erin" ]
        (List.map (fun (_, vs) -> Value.text_exn vs.(1)) rows)
  | Error e -> Alcotest.fail e);
  (* full-scan fallback on an unindexed column *)
  (match Encdb.select_eq db ~table:"patients" ~col:"name" (Value.Text "dave") with
  | Ok [ (3, _) ] -> ()
  | Ok _ -> Alcotest.fail "fallback scan wrong"
  | Error e -> Alcotest.fail e);
  (* insert maintains indexes *)
  ignore
    (Encdb.insert db ~table:"patients"
       [ Value.Int 5L; Value.Text "flora"; diabetes; Value.Int 29L ]);
  (match Encdb.select_eq db ~table:"patients" ~col:"diagnosis" diabetes with
  | Ok rows -> Alcotest.(check int) "index maintained" 3 (List.length rows)
  | Error e -> Alcotest.fail e);
  (* the underlying tree is structurally valid *)
  (match B.validate (Encdb.index db ~table:"patients" ~col:"diagnosis") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* close wipes keys *)
  Encdb.close db;
  match
    Encdb.insert db ~table:"patients"
      [ Value.Int 6L; Value.Text "x"; Value.Text "y"; Value.Int 1L ]
  with
  | exception Keyring.Session_closed -> ()
  | _ -> Alcotest.fail "insert after close succeeded"

let test_tamper_detection profile ~published_detects () =
  let db = make_db profile in
  let tree = Encdb.index db ~table:"patients" ~col:"diagnosis" in
  (* relocate a leaf payload *)
  let leaves = ref [] in
  B.iter_nodes
    (fun v -> if v.B.node_kind = B.Leaf && Array.length v.B.payloads > 0 then leaves := v :: !leaves)
    tree;
  (match !leaves with
  | a :: b :: _ -> B.set_payload tree ~row:a.B.row ~slot:0 b.B.payloads.(0)
  | _ -> Alcotest.fail "not enough leaves");
  (match Encdb.select_range db ~table:"patients" ~col:"diagnosis" ~mode:Walker.Corrected () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrected walker missed tampering");
  match Encdb.select_range db ~table:"patients" ~col:"diagnosis" ~mode:Walker.Published () with
  | Error _ ->
      Alcotest.(check bool) "published detects (AEAD only)" true published_detects
  | Ok _ -> Alcotest.(check bool) "published misses (broken schemes)" false published_detects

let test_admin_errors () =
  let db = make_db Encdb.Elovici_append in
  Alcotest.check_raises "duplicate table"
    (Invalid_argument "Encdb.create_table: table patients already exists") (fun () ->
      Encdb.create_table db schema);
  Alcotest.check_raises "duplicate index"
    (Invalid_argument "Encdb.create_index: index on patients.age already exists") (fun () ->
      Encdb.create_index db ~table:"patients" ~col:"age");
  Alcotest.check_raises "unknown table" Not_found (fun () -> ignore (Encdb.table db "nope"));
  Alcotest.check_raises "unknown index" Not_found (fun () ->
      ignore (Encdb.index db ~table:"patients" ~col:"name"));
  match Encdb.select_range db ~table:"patients" ~col:"name" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "range without index"

let test_profile_names () =
  let names = List.map Encdb.profile_name Encdb.all_profiles in
  Alcotest.(check int) "11 profiles" 11 (List.length names);
  Alcotest.(check int) "distinct names" 11 (List.length (List.sort_uniq compare names))

let test_cross_profile_isolation () =
  (* same data, same master key: different profiles produce different storage *)
  let storage profile =
    let db = make_db profile in
    let t = Encdb.table db "patients" in
    Option.get (Secdb_query.Encrypted_table.raw_ciphertext t ~row:0 ~col:2)
  in
  let a = storage Encdb.Elovici_append in
  let b = storage (Encdb.Fixed Encdb.Eax) in
  Alcotest.(check bool) "distinct representations" false (a = b)

let profile_case profile =
  Alcotest.test_case (Encdb.profile_name profile) `Quick (test_profile profile)

let tamper_case profile ~published_detects =
  Alcotest.test_case
    (Encdb.profile_name profile ^ " tampering")
    `Quick
    (test_tamper_detection profile ~published_detects)

let suites =
  [
    ( "core:keyring",
      [
        Alcotest.test_case "session key management" `Quick test_keyring;
        Alcotest.test_case "close_session zeroizes the master" `Quick test_keyring_zeroize;
      ] );
    ("core:encdb", List.map profile_case Encdb.all_profiles);
    ( "core:tampering",
      [
        tamper_case Encdb.Elovici_append ~published_detects:false;
        tamper_case Encdb.Shmueli_improved ~published_detects:false;
        tamper_case Encdb.Shmueli_repaired_keys ~published_detects:false;
        tamper_case (Encdb.Fixed Encdb.Eax) ~published_detects:true;
        tamper_case (Encdb.Fixed Encdb.Ocb) ~published_detects:true;
        tamper_case (Encdb.Fixed Encdb.Ccfb) ~published_detects:true;
        tamper_case (Encdb.Fixed Encdb.Etm) ~published_detects:true;
        tamper_case (Encdb.Fixed Encdb.Gcm) ~published_detects:true;
        tamper_case (Encdb.Fixed Encdb.Siv) ~published_detects:true;
        tamper_case Encdb.Siv_deterministic ~published_detects:true;
      ] );
    ( "core:admin",
      [
        Alcotest.test_case "administration errors" `Quick test_admin_errors;
        Alcotest.test_case "profile names" `Quick test_profile_names;
        Alcotest.test_case "cross-profile isolation" `Quick test_cross_profile_isolation;
      ] );
  ]

(* --- mutation and key rotation ------------------------------------------ *)

let test_update_and_delete () =
  let db = make_db (Encdb.Fixed Encdb.Ocb) in
  (* update bob's diagnosis; the index follows *)
  (match Encdb.update db ~table:"patients" ~row:1 ~col:"diagnosis"
           (Value.Text "fully recovered...............................") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Encdb.select_eq db ~table:"patients" ~col:"diagnosis" diabetes with
  | Ok rows -> Alcotest.(check (list int)) "old value de-indexed" [ 4 ] (List.map fst rows)
  | Error e -> Alcotest.fail e);
  (match Encdb.select_eq db ~table:"patients" ~col:"diagnosis"
           (Value.Text "fully recovered...............................") with
  | Ok [ (1, _) ] -> ()
  | Ok _ -> Alcotest.fail "new value not indexed"
  | Error e -> Alcotest.fail e);
  (* delete carol; queries stop returning her and the index is clean *)
  (match Encdb.delete_row db ~table:"patients" ~row:2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Encdb.select_range db ~table:"patients" ~col:"age" ~lo:(Value.Int 40L)
       ~hi:(Value.Int 60L) ()
   with
  | Ok rows ->
      Alcotest.(check (list string)) "carol gone" [ "alice"; "erin" ]
        (List.map (fun (_, vs) -> Value.text_exn vs.(1)) rows)
  | Error e -> Alcotest.fail e);
  (match B.validate (Encdb.index db ~table:"patients" ~col:"age") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the tombstoned row is unreadable but the numbering is stable *)
  let tbl = Encdb.table db "patients" in
  Alcotest.(check bool) "row dead" false (Secdb_query.Encrypted_table.is_live tbl ~row:2);
  match Secdb_query.Encrypted_table.get tbl ~row:2 ~col:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deleted row readable"

let test_key_rotation () =
  let db = make_db (Encdb.Fixed Encdb.Eax) in
  ignore (Encdb.delete_row db ~table:"patients" ~row:3);
  let old_tbl_ct = Secdb_query.Encrypted_table.raw_ciphertext (Encdb.table db "patients") ~row:0 ~col:2 in
  let db' = Encdb.rotate_master db ~new_master:"rotated master key" in
  (* old session closed *)
  Alcotest.(check bool) "old session closed" false (Keyring.is_open (Encdb.keyring db));
  (* data identical under the new keys *)
  (match Encdb.select_eq db' ~table:"patients" ~col:"diagnosis" diabetes with
  | Ok rows -> Alcotest.(check int) "eq count preserved" 2 (List.length rows)
  | Error e -> Alcotest.fail e);
  (* ciphertexts actually changed *)
  let new_tbl_ct = Secdb_query.Encrypted_table.raw_ciphertext (Encdb.table db' "patients") ~row:0 ~col:2 in
  Alcotest.(check bool) "ciphertext re-encrypted" false (old_tbl_ct = new_tbl_ct);
  (* tombstone preserved with stable numbering *)
  Alcotest.(check bool) "tombstone preserved" false
    (Secdb_query.Encrypted_table.is_live (Encdb.table db' "patients") ~row:3);
  match B.validate (Encdb.index db' ~table:"patients" ~col:"age") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suites =
  suites
  @ [
      ( "core:mutation",
        [
          Alcotest.test_case "update and delete with index maintenance" `Quick
            test_update_and_delete;
          Alcotest.test_case "key rotation" `Quick test_key_rotation;
        ] );
    ]

let qc = Test_seed.qc

let prop_keyring_labels_independent =
  QCheck2.Test.make ~name:"distinct derivation labels give distinct keys" ~count:200
    QCheck2.Gen.(pair (string_size (int_range 0 30)) (string_size (int_range 0 30)))
    (fun (a, b) ->
      let k = Keyring.open_session ~master:"prop master" in
      a = b || Keyring.derive k ~label:a ~length:16 <> Keyring.derive k ~label:b ~length:16)

let prop_keyring_masters_independent =
  QCheck2.Test.make ~name:"distinct masters give distinct keys" ~count:200
    QCheck2.Gen.(pair (string_size (int_range 1 30)) (string_size (int_range 1 30)))
    (fun (a, b) ->
      a = b
      || Keyring.cell_key (Keyring.open_session ~master:a) ~table:1 ~col:0
         <> Keyring.cell_key (Keyring.open_session ~master:b) ~table:1 ~col:0)

let suites =
  suites
  @ [
      ( "core:keyring-props",
        [ qc prop_keyring_labels_independent; qc prop_keyring_masters_independent ] );
    ]

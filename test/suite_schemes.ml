open Secdb_util
module Value = Secdb_db.Value
module Address = Secdb_db.Address
module B = Secdb_index.Bptree
module Einst = Secdb_schemes.Einst
module Cell_scheme = Secdb_schemes.Cell_scheme

let hex = Xbytes.of_hex
let key = hex "000102030405060708090a0b0c0d0e0f"
let key2 = hex "ffeeddccbbaa99887766554433221100"
let aes k = Secdb_cipher.Aes.cipher ~key:k
let mu = Address.mu_sha1 ~width:16
let addr = Address.v ~table:1 ~row:5 ~col:2
let addr' = Address.v ~table:1 ~row:6 ~col:2

(* --- E instantiations -------------------------------------------------- *)

let einsts rng =
  [
    Einst.cbc_zero_iv (aes key);
    Einst.ecb (aes key);
    Einst.ctr_zero (aes key);
    Einst.ofb_zero (aes key);
    Einst.cbc_random_iv (aes key) rng;
  ]

let test_einst_roundtrips () =
  let rng = Rng.create ~seed:2L () in
  List.iter
    (fun (e : Einst.t) ->
      List.iter
        (fun n ->
          let m = Rng.bytes rng n in
          match e.dec (e.enc m) with
          | Ok m' when m' = m -> ()
          | _ -> Alcotest.fail (e.name ^ ": roundtrip failed"))
        [ 0; 1; 15; 16; 17; 64; 100 ])
    (einsts rng)

let test_einst_determinism () =
  (* assumption (3) of the analysed scheme *)
  let rng = Rng.create ~seed:3L () in
  List.iter
    (fun (e : Einst.t) ->
      let m = "a fixed plaintext spanning blocks.." in
      if e.deterministic then
        Alcotest.(check string) (e.name ^ " deterministic") (e.enc m) (e.enc m)
      else
        Alcotest.(check bool) (e.name ^ " randomised") false (e.enc m = e.enc m))
    (einsts rng)

let test_einst_prefix_leak () =
  (* the structural fact behind all the pattern-matching attacks: under
     CBC/zero-IV, shared plaintext block prefixes give shared ciphertext
     block prefixes *)
  let e = Einst.cbc_zero_iv (aes key) in
  let a = String.make 32 'P' ^ "suffix one........." in
  let b = String.make 32 'P' ^ "another suffix!!!!!" in
  Alcotest.(check int) "two shared blocks" 2
    (Xbytes.common_block_prefix ~block:16 (e.enc a) (e.enc b));
  let e' = Einst.cbc_random_iv (aes key) (Rng.create ()) in
  Alcotest.(check int) "random IV hides prefixes" 0
    (Xbytes.common_block_prefix ~block:16 (e'.enc a) (e'.enc b))

let test_einst_dec_errors () =
  let e = Einst.cbc_zero_iv (aes key) in
  (match e.dec "" with Error _ -> () | Ok _ -> Alcotest.fail "empty accepted");
  (match e.dec "123" with Error _ -> () | Ok _ -> Alcotest.fail "unaligned accepted");
  let e' = Einst.cbc_random_iv (aes key) (Rng.create ()) in
  match e'.dec (String.make 16 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "iv-only ciphertext accepted"

(* --- cell schemes ------------------------------------------------------ *)

let append_scheme () = Secdb_schemes.Cell_append.make ~e:(Einst.cbc_zero_iv (aes key)) ~mu

let xor_scheme () =
  Secdb_schemes.Cell_xor.make ~e:(Einst.cbc_zero_iv (aes key)) ~mu ~validate:Xbytes.is_ascii7 ()

let fixed_scheme () =
  Secdb_schemes.Fixed_cell.make
    ~aead:(Secdb_aead.Eax.make (aes key))
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ()) ()

let test_append_roundtrip () =
  let s = append_scheme () in
  List.iter
    (fun v ->
      match Cell_scheme.decrypt s addr (Cell_scheme.encrypt s addr v) with
      | Ok v' when v' = v -> ()
      | _ -> Alcotest.fail "append roundtrip")
    [ ""; "x"; String.make 16 'a'; String.make 100 'b' ]

let test_append_position_binding () =
  let s = append_scheme () in
  let ct = Cell_scheme.encrypt s addr "attribute value" in
  match Cell_scheme.decrypt s addr' ct with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "append scheme accepted relocation"

let test_append_deterministic () =
  let s = append_scheme () in
  Alcotest.(check bool) "flag" true s.Cell_scheme.deterministic;
  Alcotest.(check string) "equal cells equal ciphertexts"
    (Cell_scheme.encrypt s addr "v") (Cell_scheme.encrypt s addr "v")

let test_xor_roundtrip_and_binding () =
  let s = xor_scheme () in
  let v = "sixteen byte str" in
  (match Cell_scheme.decrypt s addr (Cell_scheme.encrypt s addr v) with
  | Ok v' when v' = v -> ()
  | _ -> Alcotest.fail "xor roundtrip");
  (* wrong address: accepted only on high-bit collisions, overwhelmingly
     rejected for a random pair *)
  let accepted = ref 0 in
  for row = 100 to 140 do
    let target = Address.v ~table:1 ~row ~col:2 in
    match Cell_scheme.decrypt s target (Cell_scheme.encrypt s addr v) with
    | Ok _ -> incr accepted
    | Error _ -> ()
  done;
  Alcotest.(check bool) "relocations mostly rejected" true (!accepted <= 1)

let test_xor_zero_extension_lossiness () =
  (* the scheme's documented lossiness for values shorter than mu's width *)
  let s = xor_scheme () in
  match Cell_scheme.decrypt s addr (Cell_scheme.encrypt s addr "abc") with
  | Ok v ->
      Alcotest.(check string) "zero-extended" ("abc" ^ String.make 13 '\000') v
  | Error _ -> Alcotest.fail "short value rejected outright"

let test_fixed_cell () =
  let s = fixed_scheme () in
  Alcotest.(check bool) "randomised" false s.Cell_scheme.deterministic;
  List.iter
    (fun v ->
      (match Cell_scheme.decrypt s addr (Cell_scheme.encrypt s addr v) with
      | Ok v' when v' = v -> ()
      | _ -> Alcotest.fail "fixed roundtrip");
      (* relocation rejected *)
      (match Cell_scheme.decrypt s addr' (Cell_scheme.encrypt s addr v) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fixed scheme accepted relocation");
      (* nondeterminism *)
      Alcotest.(check bool) "fresh nonces" false
        (Cell_scheme.encrypt s addr v = Cell_scheme.encrypt s addr v))
    [ ""; "v"; String.make 64 'z' ];
  (* bit flips anywhere are rejected *)
  let ct = Cell_scheme.encrypt s addr "protect me" in
  for i = 0 to (8 * String.length ct) - 1 do
    match Cell_scheme.decrypt s addr (Xbytes.flip_bit ct i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "bit flip %d accepted" i)
  done;
  Alcotest.(check int) "storage overhead = aead + framing"
    (32 + 12)
    (Secdb_schemes.Fixed_cell.storage_overhead ~aead:(Secdb_aead.Eax.make (aes key)))

(* --- index codecs ------------------------------------------------------ *)

let leaf_ctx = { B.index_table = 1000; node_row = 7; kind = B.Leaf }
let inner_ctx = { B.index_table = 1000; node_row = 3; kind = B.Inner }
let other_leaf_ctx = { B.index_table = 1000; node_row = 8; kind = B.Leaf }

let codec3 () = Secdb_schemes.Index3.codec ~e:(Einst.cbc_zero_iv (aes key))

let codec12 ?(mac_key = key) () =
  Secdb_schemes.Index12.codec
    ~e:(Einst.cbc_zero_iv (aes key))
    ~mac_cipher:(aes mac_key) ~rng:(Rng.create ~seed:5L ()) ~indexed_table:1 ~indexed_col:2 ()

let codec_fixed () =
  Secdb_schemes.Fixed_index.codec
    ~aead:(Secdb_aead.Ocb.make (aes key))
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
    ~indexed_table:1 ~indexed_col:2 ()

let codec12_repaired () = codec12 ~mac_key:key2 ()

let codec_fixed_siv () =
  Secdb_schemes.Fixed_index.codec
    ~aead:(Secdb_aead.Siv.make (aes key2) (aes key))
    ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
    ~indexed_table:1 ~indexed_col:2 ()

let codec_fixed_gcm () =
  Secdb_schemes.Fixed_index.codec
    ~aead:(Secdb_aead.Gcm.make (aes key))
    ~nonce:(Secdb_aead.Nonce.counter ~size:12 ())
    ~indexed_table:1 ~indexed_col:2 ()

let all_codecs () =
  [
    (codec3 (), true);
    (codec12 (), true);
    (codec12_repaired (), true);
    (codec_fixed (), false);
    (codec_fixed_siv (), false);
    (codec_fixed_gcm (), false);
  ]

let test_codec_roundtrips () =
  List.iter
    (fun ((c : B.codec), _) ->
      let v = Value.Text "an indexed attribute value" in
      (match c.decode leaf_ctx (c.encode leaf_ctx ~value:v ~table_row:(Some 42)) with
      | Ok (v', Some 42) when Value.equal v v' -> ()
      | _ -> Alcotest.fail (c.codec_name ^ ": leaf roundtrip"));
      match c.decode inner_ctx (c.encode inner_ctx ~value:v ~table_row:None) with
      | Ok (v', None) when Value.equal v v' -> ()
      | _ -> Alcotest.fail (c.codec_name ^ ": inner roundtrip"))
    (all_codecs ())

let test_codec_position_binding () =
  (* moving a payload to a different node row must be rejected: [3] binds
     r_I in the plaintext, [12] MACs Ref_S, the fix authenticates the AD *)
  List.iter
    (fun ((c : B.codec), _) ->
      let payload =
        c.encode leaf_ctx ~value:(Value.Text "bound to node 7") ~table_row:(Some 1)
      in
      match c.decode other_leaf_ctx payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (c.codec_name ^ ": relocation accepted"))
    (all_codecs ())

let test_codec_unverified_variants () =
  List.iter
    (fun ((c : B.codec), has_unverified) ->
      Alcotest.(check bool)
        (c.codec_name ^ " unverified decode availability")
        has_unverified
        (c.decode_unverified <> None);
      match c.decode_unverified with
      | None -> ()
      | Some unverified -> (
          (* the buggy leaf handling accepts a relocated payload *)
          let payload =
            c.encode leaf_ctx ~value:(Value.Text "bound to node 7") ~table_row:(Some 1)
          in
          match unverified other_leaf_ctx payload with
          | Ok (Value.Text "bound to node 7", Some 1) -> ()
          | _ -> Alcotest.fail (c.codec_name ^ ": unverified decode failed")))
    (all_codecs ())

let test_index12_mac_coverage () =
  let c = codec12 () in
  let payload = c.encode leaf_ctx ~value:(Value.Text "cover me") ~table_row:(Some 9) in
  (* tamper the encrypted table reference: MAC must catch it *)
  (match Secdb_db.Codec.unframe3 payload with
  | Ok (etilde, e_reft, tag) -> (
      let flipped = Xbytes.flip_bit e_reft 3 in
      match c.decode leaf_ctx (Secdb_db.Codec.frame [ etilde; flipped; tag ]) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "tampered Ref_T accepted")
  | Error _ -> Alcotest.fail "unframe");
  (* tampering the tag itself *)
  match Secdb_db.Codec.unframe3 payload with
  | Ok (etilde, e_reft, tag) -> (
      match c.decode leaf_ctx (Secdb_db.Codec.frame [ etilde; e_reft; Xbytes.flip_bit tag 0 ]) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "tampered MAC accepted")
  | Error _ -> Alcotest.fail "unframe"

let test_index12_randomised_etilde () =
  (* Ẽ appends fresh randomness: two encodings of the same entry differ *)
  let c = codec12 () in
  let p1 = c.encode leaf_ctx ~value:(Value.Text "same") ~table_row:(Some 1) in
  let p2 = c.encode leaf_ctx ~value:(Value.Text "same") ~table_row:(Some 1) in
  Alcotest.(check bool) "payloads differ" false (p1 = p2);
  (* ... but, as the paper shows, their leading blocks coincide for long
     values: the appended randomness only touches the tail *)
  let long = Value.Text (String.make 48 'L') in
  let q1 = c.encode leaf_ctx ~value:long ~table_row:(Some 1) in
  let q2 = c.encode leaf_ctx ~value:long ~table_row:(Some 1) in
  match (Secdb_db.Codec.unframe3 q1, Secdb_db.Codec.unframe3 q2) with
  | Ok (e1, _, _), Ok (e2, _, _) ->
      Alcotest.(check int) "3 shared leading blocks" 3
        (Xbytes.common_block_prefix ~block:16 e1 e2)
  | _ -> Alcotest.fail "unframe"

let test_index12_kind_confusion () =
  (* an inner payload (no Ref_T) decoded as a leaf (or vice versa) *)
  let c = codec12 () in
  let inner_payload = c.encode inner_ctx ~value:(Value.Text "sep") ~table_row:None in
  match c.decode { inner_ctx with kind = B.Leaf } inner_payload with
  | Error _ -> ()
  | Ok (_, None) -> () (* acceptable: entry correctly reports no table row *)
  | Ok (_, Some _) -> Alcotest.fail "kind confusion produced a table row"

(* --- trees over encrypted codecs --------------------------------------- *)

let build_tree codec n =
  let t = B.create ~order:4 ~id:1000 ~codec () in
  for i = 0 to n - 1 do
    B.insert t (Value.Text (Printf.sprintf "value-%03d" (i * 7 mod n))) ~table_row:i
  done;
  t

let test_trees_over_codecs () =
  List.iter
    (fun ((c : B.codec), _) ->
      let t = build_tree c 150 in
      (match B.validate t with
      | Ok () -> ()
      | Error e -> Alcotest.fail (c.codec_name ^ ": " ^ e));
      Alcotest.(check int) (c.codec_name ^ " size") 150 (B.size t);
      (* every value findable *)
      for i = 0 to 149 do
        let v = Value.Text (Printf.sprintf "value-%03d" i) in
        if B.find t v = [] then Alcotest.fail (c.codec_name ^ ": lost " ^ Value.to_string v)
      done;
      (* range scan is globally sorted *)
      let all = B.range t () in
      Alcotest.(check int) (c.codec_name ^ " range size") 150 (List.length all);
      (* relocating a payload between leaves is detected on search *)
      let leaves = ref [] in
      B.iter_nodes
        (fun v -> if v.B.node_kind = B.Leaf && Array.length v.B.payloads > 0 then leaves := v :: !leaves)
        t;
      match !leaves with
      | a :: b :: _ ->
          B.set_payload t ~row:a.B.row ~slot:0 b.B.payloads.(0);
          (match B.validate t with
          | Error _ -> ()
          | Ok () -> Alcotest.fail (c.codec_name ^ ": relocation survived validate"))
      | _ -> Alcotest.fail "not enough leaves")
    (all_codecs ())

let test_index3_inner_leaf_shapes () =
  let c = codec3 () in
  Alcotest.check_raises "inner with table row"
    (Invalid_argument "index3: inner entries carry no table row") (fun () ->
      ignore (c.encode inner_ctx ~value:(Value.Int 1L) ~table_row:(Some 3)));
  Alcotest.check_raises "leaf without table row"
    (Invalid_argument "index3: leaf entries need a table row") (fun () ->
      ignore (c.encode leaf_ctx ~value:(Value.Int 1L) ~table_row:None))

let qc = Test_seed.qc

let prop_append_roundtrip =
  QCheck2.Test.make ~name:"append scheme roundtrip" ~count:200
    QCheck2.Gen.(pair (string_size (int_range 0 100)) (int_bound 1000))
    (fun (v, row) ->
      let s = append_scheme () in
      let a = Address.v ~table:1 ~row ~col:0 in
      Cell_scheme.decrypt s a (Cell_scheme.encrypt s a v) = Ok v)

let prop_fixed_rejects_cross_cell =
  QCheck2.Test.make ~name:"fixed scheme rejects any cross-cell move" ~count:100
    QCheck2.Gen.(triple (string_size (int_range 0 60)) (int_bound 500) (int_bound 500))
    (fun (v, r1, r2) ->
      r1 = r2
      ||
      let s = fixed_scheme () in
      let a1 = Address.v ~table:1 ~row:r1 ~col:0 and a2 = Address.v ~table:1 ~row:r2 ~col:0 in
      match Cell_scheme.decrypt s a2 (Cell_scheme.encrypt s a1 v) with
      | Error _ -> true
      | Ok _ -> false)

let suites =
  [
    ( "schemes:einst",
      [
        Alcotest.test_case "roundtrips" `Quick test_einst_roundtrips;
        Alcotest.test_case "determinism (assumption 3)" `Quick test_einst_determinism;
        Alcotest.test_case "prefix leak under CBC0" `Quick test_einst_prefix_leak;
        Alcotest.test_case "decode errors" `Quick test_einst_dec_errors;
      ] );
    ( "schemes:cells",
      [
        Alcotest.test_case "append roundtrip" `Quick test_append_roundtrip;
        Alcotest.test_case "append position binding" `Quick test_append_position_binding;
        Alcotest.test_case "append determinism" `Quick test_append_deterministic;
        Alcotest.test_case "xor roundtrip + binding" `Quick test_xor_roundtrip_and_binding;
        Alcotest.test_case "xor zero-extension lossiness" `Quick
          test_xor_zero_extension_lossiness;
        Alcotest.test_case "fixed cell scheme" `Quick test_fixed_cell;
        qc prop_append_roundtrip;
        qc prop_fixed_rejects_cross_cell;
      ] );
    ( "schemes:index-codecs",
      [
        Alcotest.test_case "roundtrips" `Quick test_codec_roundtrips;
        Alcotest.test_case "position binding" `Quick test_codec_position_binding;
        Alcotest.test_case "unverified decode variants" `Quick test_codec_unverified_variants;
        Alcotest.test_case "index12 MAC coverage" `Quick test_index12_mac_coverage;
        Alcotest.test_case "index12 randomised etilde" `Quick test_index12_randomised_etilde;
        Alcotest.test_case "index12 kind confusion" `Quick test_index12_kind_confusion;
        Alcotest.test_case "index3 shape validation" `Quick test_index3_inner_leaf_shapes;
        Alcotest.test_case "trees over all codecs" `Quick test_trees_over_codecs;
      ] );
  ]

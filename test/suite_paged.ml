(* The paged B+-tree must be indistinguishable from the in-memory index
   to every reader: same find/range answers in the same order on random
   workloads larger than its caches, byte-identical behaviour after a
   flush/close/reopen cycle, tamper detection through the page seal, and
   oplog-replay recovery to the synced model from every crash point. *)

open Secdb
module Value = Secdb_db.Value
module Bptree = Secdb_index.Bptree
module Vfs = Secdb_storage.Vfs
module Pager = Secdb_storage.Pager
module Pbt = Secdb_storage.Paged_bptree
module Fsck = Secdb_storage.Fsck

let aes = Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'P')
let aead = Secdb_aead.Eax.make aes
let nonce () = Secdb_aead.Nonce.counter ~size:16 ()
let seal ~tree_id = Pbt.aead_seal ~aead ~nonce:(nonce ()) ~tree_id

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("secdb_paged_" ^ name)

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* an in-memory disk: fault VFS with no faults armed *)
let mem_pager ?(page_size = 512) ?(cache_pages = 4) name =
  let ctl = Vfs.Fault.make ~seed:0 () in
  (ctl, Pager.create ~path:name ~page_size ~cache_pages ~vfs:(Vfs.Fault.vfs ctl) ())

(* {2 Units} *)

let test_empty () =
  let _, p = mem_pager "mem:empty.pg" in
  let t = Pbt.create ~pager:p ~seal:(seal ~tree_id:7) ~id:7 () in
  Alcotest.(check (list int)) "empty find" [] (Pbt.find t (Value.Int 1L));
  Alcotest.(check int) "empty range" 0 (List.length (Pbt.range t ()));
  Alcotest.(check int) "size" 0 (Pbt.size t)

let test_insert_find_duplicates () =
  let _, p = mem_pager "mem:dups.pg" in
  let t = Pbt.create ~pager:p ~seal:(seal ~tree_id:1) ~id:1 () in
  (* duplicates must come back in insertion order, like the in-memory tree *)
  List.iter (fun r -> Pbt.insert t (Value.Int 5L) ~table_row:r) [ 30; 10; 20 ];
  Pbt.insert t (Value.Int 4L) ~table_row:1;
  Pbt.insert t (Value.Int 6L) ~table_row:2;
  Alcotest.(check (list int)) "dup order" [ 30; 10; 20 ] (Pbt.find t (Value.Int 5L));
  Alcotest.(check int) "size" 5 (Pbt.size t);
  Alcotest.(check bool) "delete one dup" true (Pbt.delete t (Value.Int 5L) ~table_row:10);
  Alcotest.(check (list int)) "dup order after delete" [ 30; 20 ]
    (Pbt.find t (Value.Int 5L));
  Alcotest.(check bool) "delete absent" false (Pbt.delete t (Value.Int 5L) ~table_row:10)

let test_large_dataset_beyond_caches () =
  (* dataset >= 10x both the node cache and the pager cache; every probe
     must still answer exactly, with the cache staying bounded *)
  let _, p = mem_pager ~cache_pages:8 "mem:large.pg" in
  let t = Pbt.create ~pager:p ~seal:(seal ~tree_id:2) ~cache_nodes:8 ~id:2 () in
  let n = 600 in
  for i = 0 to n - 1 do
    Pbt.insert t (Value.Int (Int64.of_int (i mod 97))) ~table_row:i
  done;
  Alcotest.(check bool) "node cache bounded" true (Pbt.cached_nodes t <= 8);
  Alcotest.(check bool) "many pages" true (Pager.page_count p > 80);
  Alcotest.(check int) "size" n (Pbt.size t);
  for k = 0 to 96 do
    let expect =
      List.filter (fun i -> i mod 97 = k) (List.init n Fun.id)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "find %d" k)
      expect
      (Pbt.find t (Value.Int (Int64.of_int k)))
  done;
  Alcotest.(check int) "full range" n (List.length (Pbt.range t ()))

let test_flush_reopen () =
  let path = tmp "reopen.pg" in
  let p = Pager.create ~path ~page_size:512 ~cache_pages:8 () in
  let t = Pbt.create ~pager:p ~seal:(seal ~tree_id:3) ~cache_nodes:8 ~id:3 () in
  for i = 0 to 199 do
    Pbt.insert t (Value.Int (Int64.of_int (i mod 31))) ~table_row:i
  done;
  let meta = Pbt.meta_page t in
  let want = Pbt.range t () in
  Pbt.flush t;
  Pager.close p;
  (match Pager.open_file ~path ~cache_pages:8 () with
  | Error e -> Alcotest.fail e
  | Ok p' -> (
      match Pbt.open_tree ~pager:p' ~seal:(seal ~tree_id:3) ~cache_nodes:8 ~meta () with
      | Error e -> Alcotest.fail e
      | Ok t' ->
          Alcotest.(check int) "size survives" 200 (Pbt.size t');
          Alcotest.(check int) "id survives" 3 (Pbt.id t');
          Alcotest.(check bool) "entries survive" true (Pbt.range t' () = want);
          Pager.close p'));
  (* wrong key: the meta page must refuse to authenticate *)
  match Pager.open_file ~path ~cache_pages:8 () with
  | Error e -> Alcotest.fail e
  | Ok p'' ->
      let bad = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'X')) in
      let bad_seal = Pbt.aead_seal ~aead:bad ~nonce:(nonce ()) ~tree_id:3 in
      (match Pbt.open_tree ~pager:p'' ~seal:bad_seal ~cache_nodes:8 ~meta () with
      | Ok _ -> Alcotest.fail "wrong key opened the tree"
      | Error _ -> ());
      (* wrong tree id in the associated data is just as fatal *)
      (match Pbt.open_tree ~pager:p'' ~seal:(seal ~tree_id:4) ~cache_nodes:8 ~meta () with
      | Ok _ -> Alcotest.fail "wrong tree id opened the tree"
      | Error _ -> ());
      Pager.close p''

let test_tamper_detected () =
  let path = tmp "tamper.pg" in
  let p = Pager.create ~path ~page_size:512 ~cache_pages:8 () in
  let t = Pbt.create ~pager:p ~seal:(seal ~tree_id:9) ~cache_nodes:8 ~id:9 () in
  for i = 0 to 99 do
    Pbt.insert t (Value.Int (Int64.of_int i)) ~table_row:i
  done;
  let meta = Pbt.meta_page t in
  Pbt.flush t;
  Pager.close p;
  (* flip one byte in the first node page (allocated right after meta:
     the initial root leaf, still on the leaf chain) — a full scan must
     refuse to decode it rather than answer from forged bytes *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let off = ((meta + 1) * 512) + 20 in
  let b = Bytes.of_string data in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x41));
  write_file path (Bytes.to_string b);
  match Pager.open_file ~path ~cache_pages:8 () with
  | Error e -> Alcotest.fail e
  | Ok p' -> (
      match Pbt.open_tree ~pager:p' ~seal:(seal ~tree_id:9) ~cache_nodes:8 ~meta () with
      | Error e -> Alcotest.fail ("tamper hit the meta page: " ^ e)
      | Ok t' ->
          (try
             ignore (Pbt.range t' ());
             Alcotest.fail "tampered node page decoded"
           with Pbt.Integrity _ -> ());
          Pager.close p')

(* {2 Equivalence with the in-memory tree} *)

(* apply the same signed-int op stream to both trees; negative = delete *)
let apply_op mem paged n =
  let v = Value.Int (Int64.of_int (abs n mod 13)) in
  if n < 0 then begin
    let row = abs n mod 59 in
    let a = Bptree.delete mem v ~table_row:row in
    let b = Pbt.delete paged v ~table_row:row in
    if a <> b then failwith "delete verdicts differ"
  end
  else begin
    Bptree.insert mem v ~table_row:n;
    Pbt.insert paged v ~table_row:n
  end

let check_equiv mem paged =
  for k = 0 to 13 do
    let v = Value.Int (Int64.of_int k) in
    if Bptree.find mem v <> Pbt.find paged v then failwith "find differs"
  done;
  if Bptree.range mem () <> Pbt.range paged () then failwith "full range differs";
  let lo = Value.Int 3L and hi = Value.Int 9L in
  if Bptree.range mem ~lo ~hi () <> Pbt.range paged ~lo ~hi () then
    failwith "bounded range differs";
  if Bptree.size mem <> Pbt.size paged then failwith "size differs"

let qc = Test_seed.qc

let prop_paged_equals_in_memory =
  QCheck2.Test.make
    ~name:"paged tree answers exactly like the in-memory tree beyond its caches" ~count:25
    QCheck2.Gen.(list_size (int_range 50 220) (int_range (-700) 700))
    (fun ops ->
      let mem = Bptree.create ~id:11 ~codec:Bptree.plain_codec () in
      let _, p = mem_pager ~page_size:512 ~cache_pages:4 "mem:equiv.pg" in
      let paged = Pbt.create ~pager:p ~seal:(seal ~tree_id:11) ~cache_nodes:8 ~id:11 () in
      try
        List.iter (fun n -> apply_op mem paged n) ops;
        check_equiv mem paged;
        (* survive a flush/reopen round-trip mid-workload too *)
        let meta = Pbt.meta_page paged in
        Pbt.flush paged;
        (match Pbt.open_tree ~pager:p ~seal:(seal ~tree_id:11) ~cache_nodes:8 ~meta () with
        | Error e -> failwith e
        | Ok reopened -> check_equiv mem reopened);
        true
      with Failure msg -> QCheck2.Test.fail_report msg)

(* {2 Crash matrix} *)

(* One fault disk carries both the oplog (sync=Always) and the tree's
   pager.  Crash at pwrite [k]; the recovery story is the oplog's: replay
   the recovered prefix into a fresh tree and compare against the
   in-memory model of the same prefix.  The torn tree image itself only
   has to keep fsck and reopen well-behaved. *)

let crash_ops =
  List.init 14 (fun i ->
      if i mod 5 = 4 then Oplog.Delete { table = "t"; row = i - 2 }
      else Oplog.Insert { table = "t"; values = [ Value.Int (Int64.of_int (i mod 4)) ] })

let tree_apply t i op =
  match op with
  | Oplog.Insert { values = [ Value.Int v ]; _ } -> Pbt.insert t (Value.Int v) ~table_row:i
  | Oplog.Delete { row; _ } ->
      ignore (Pbt.delete t (Value.Int (Int64.of_int (row mod 4))) ~table_row:row)
  | _ -> assert false

let mem_apply mem i op =
  match op with
  | Oplog.Insert { values = [ Value.Int v ]; _ } -> Bptree.insert mem (Value.Int v) ~table_row:i
  | Oplog.Delete { row; _ } ->
      ignore (Bptree.delete mem (Value.Int (Int64.of_int (row mod 4))) ~table_row:row)
  | _ -> assert false

let log_path = "mem:tree.log"
let db_path = "mem:tree.pg"

let crash_point ~k =
  let ctl = Vfs.Fault.make ~seed:(4000 + k) () in
  Vfs.Fault.crash_after_writes ctl k;
  let vfs = Vfs.Fault.vfs ctl in
  let acked = ref 0 in
  (try
     let w = Oplog.create ~vfs ~sync:Oplog.Always ~path:log_path ~aead ~nonce:(nonce ()) () in
     let p = Pager.create ~path:db_path ~page_size:512 ~cache_pages:4 ~vfs () in
     let t = Pbt.create ~pager:p ~seal:(seal ~tree_id:5) ~cache_nodes:8 ~id:5 () in
     List.iteri
       (fun i op ->
         ignore (Oplog.append w op);
         incr acked;
         tree_apply t i op;
         if i mod 4 = 3 then begin
           Pbt.flush t;
           Pager.sync p
         end)
       crash_ops;
     Pbt.flush t;
     Oplog.close w;
     Pager.close p
   with Vfs.Crashed _ -> ());
  let crashed = Vfs.Fault.crashed ctl in
  (* the torn tree image: fsck terminates, reopen answers *)
  let img_path = tmp "crash.pg" in
  write_file img_path (Vfs.Fault.dump ctl ~path:db_path);
  let report = Fsck.run ~path:img_path () in
  List.iter (fun i -> ignore (Fsck.issue_to_string i)) report.Fsck.issues;
  (match Pager.open_file ~path:img_path () with Ok p -> Pager.close p | Error _ -> ());
  (* recovery: oplog prefix -> fresh tree == in-memory model *)
  let lpath = tmp "crash.log" in
  write_file lpath (Vfs.Fault.dump ctl ~path:log_path);
  match Oplog.recover ~path:lpath ~aead () with
  | Error e -> Error (Printf.sprintf "k=%d: oplog image unreadable: %s" k e)
  | Ok (recovered, _) ->
      if crashed && List.length recovered <> !acked then
        Error
          (Printf.sprintf "k=%d: sync=Always recovered %d of %d acked ops" k
             (List.length recovered) !acked)
      else begin
        let rpath = tmp "rebuild.pg" in
        let rp = Pager.create ~path:rpath ~page_size:512 ~cache_pages:8 () in
        let rt = Pbt.create ~pager:rp ~seal:(seal ~tree_id:5) ~cache_nodes:8 ~id:5 () in
        let mem = Bptree.create ~id:5 ~codec:Bptree.plain_codec () in
        List.iter
          (fun (seq, op) ->
            tree_apply rt seq op;
            mem_apply mem seq op)
          recovered;
        let same =
          List.for_all
            (fun kk ->
              Bptree.find mem (Value.Int (Int64.of_int kk))
              = Pbt.find rt (Value.Int (Int64.of_int kk)))
            [ 0; 1; 2; 3 ]
          && Bptree.range mem () = Pbt.range rt ()
        in
        Pbt.flush rt;
        Pager.close rp;
        let rebuilt_report = Fsck.run ~path:rpath () in
        if not same then Error (Printf.sprintf "k=%d: rebuilt tree differs from model" k)
        else if not (Fsck.ok rebuilt_report) then
          Error
            (Printf.sprintf "k=%d: rebuilt image not clean: %s" k
               (String.concat "; "
                  (List.map Fsck.issue_to_string rebuilt_report.Fsck.issues)))
        else Ok crashed
      end

let test_tree_crash_matrix () =
  let rec loop k =
    if k > 400 then Alcotest.fail "crash never stopped firing"
    else
      match crash_point ~k with
      | Error msg -> Alcotest.fail msg
      | Ok true -> loop (k + 1)
      | Ok false -> k
  in
  let total = loop 1 in
  Alcotest.(check bool) "matrix had real extent" true (total > 10)

let suites =
  [
    ( "storage:paged-bptree",
      [
        Alcotest.test_case "empty tree" `Quick test_empty;
        Alcotest.test_case "duplicates keep insertion order" `Quick
          test_insert_find_duplicates;
        Alcotest.test_case "dataset 10x beyond both caches" `Quick
          test_large_dataset_beyond_caches;
        Alcotest.test_case "flush/reopen, wrong key, wrong tree id" `Quick test_flush_reopen;
        Alcotest.test_case "node tamper raises Integrity" `Quick test_tamper_detected;
        Alcotest.test_case "crash matrix: oplog replay rebuilds the model" `Quick
          test_tree_crash_matrix;
        qc prop_paged_equals_in_memory;
      ] );
  ]

(* Cross-cutting property tests: whole-system invariants checked with
   randomly generated workloads across every protection profile. *)

open Secdb
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module B = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table
module Walker = Secdb_query.Walker
module Rng = Secdb_util.Rng

let qc = Test_seed.qc

let schema =
  Schema.v ~table_name:"t"
    [
      Schema.column ~protection:Schema.Clear "id" Value.Kint;
      Schema.column "k" Value.Kint;
      Schema.column "payload" Value.Ktext;
    ]

(* random operation scripts over Encdb, checked against a simple model *)

type op = Insert of int * string | Update of int * int | Delete of int | Query of int

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 5 60)
      (oneof
         [
           map2 (fun k s -> Insert (k, s)) (int_bound 20) (string_size (int_range 0 30));
           map2 (fun i k -> Update (i, k)) (int_bound 100) (int_bound 20);
           map (fun i -> Delete i) (int_bound 100);
           map (fun k -> Query k) (int_bound 20);
         ]))

let run_script profile ops =
  let db = Encdb.create ~master:"prop master" ~profile () in
  Encdb.create_table db schema;
  Encdb.create_index db ~table:"t" ~col:"k";
  (* model: row -> (k, payload) for live rows *)
  let model : (int, int * string) Hashtbl.t = Hashtbl.create 32 in
  let next_row = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Insert (k, s) ->
          (* text values must be NUL-free for the XOR profile's redundancy rule *)
          let s = String.map (fun c -> if c = '\000' then '.' else c) s in
          let row =
            Encdb.insert db ~table:"t"
              [ Value.Int (Int64.of_int !next_row); Value.Int (Int64.of_int k); Value.Text s ]
          in
          if row <> !next_row then ok := false;
          Hashtbl.replace model row (k, s);
          incr next_row
      | Update (i, k) ->
          if Hashtbl.mem model (i mod max 1 !next_row) then begin
            let row = i mod max 1 !next_row in
            match Encdb.update db ~table:"t" ~row ~col:"k" (Value.Int (Int64.of_int k)) with
            | Ok () ->
                let _, s = Hashtbl.find model row in
                Hashtbl.replace model row (k, s)
            | Error _ -> ok := false
          end
      | Delete i ->
          if !next_row > 0 then begin
            let row = i mod !next_row in
            if Hashtbl.mem model row then begin
              match Encdb.delete_row db ~table:"t" ~row with
              | Ok () -> Hashtbl.remove model row
              | Error _ -> ok := false
            end
          end
      | Query k -> (
          let expected =
            Hashtbl.fold (fun row (k', _) acc -> if k' = k then row :: acc else acc) model []
            |> List.sort compare
          in
          match Encdb.select_eq db ~table:"t" ~col:"k" (Value.Int (Int64.of_int k)) with
          | Ok rows ->
              if List.sort compare (List.map fst rows) <> expected then ok := false
          | Error _ -> ok := false))
    ops;
  (* final invariants: index validates; full scan agrees with the model *)
  (match B.validate (Encdb.index db ~table:"t" ~col:"k") with
  | Ok () -> ()
  | Error _ -> ok := false);
  let tbl = Encdb.table db "t" in
  Hashtbl.iter
    (fun row (k, s) ->
      match (Etable.get tbl ~row ~col:1, Etable.get tbl ~row ~col:2) with
      | Ok (Value.Int k'), Ok (Value.Text s') ->
          if Int64.to_int k' <> k || s' <> s then ok := false
      | _ -> ok := false)
    model;
  !ok

let prop_script profile =
  QCheck2.Test.make
    ~name:("script equivalence: " ^ Encdb.profile_name profile)
    ~count:(match profile with Encdb.Fixed _ -> 15 | _ -> 15)
    gen_ops
    (fun ops -> run_script profile ops)

(* storage roundtrip under random content *)

let prop_storage_roundtrip =
  QCheck2.Test.make ~name:"storage roundtrip of random tables" ~count:25
    QCheck2.Gen.(list_size (int_range 0 40) (pair small_int (string_size (int_range 0 40))))
    (fun rows ->
      let scheme =
        Secdb_schemes.Fixed_cell.make
          ~aead:(Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'K')))
          ~nonce:(Secdb_aead.Nonce.counter ~size:16 ())
          ()
      in
      let t = Etable.create ~id:3 schema ~scheme:(fun _ -> scheme) in
      List.iteri
        (fun i (k, s) ->
          ignore
            (Etable.insert t
               [ Value.Int (Int64.of_int i); Value.Int (Int64.of_int k); Value.Text s ]))
        rows;
      (* tombstone every third row *)
      List.iteri (fun i _ -> if i mod 3 = 2 then Etable.delete_row t ~row:i) rows;
      match
        Secdb_storage.Storage.decode_table
          ~scheme:(fun _ -> scheme)
          (Secdb_storage.Storage.encode_table t)
      with
      | Error _ -> false
      | Ok t' ->
          Etable.nrows t' = Etable.nrows t
          && List.for_all
               (fun row ->
                 Etable.is_live t' ~row = Etable.is_live t ~row
                 && ((not (Etable.is_live t ~row))
                    || Etable.get t' ~row ~col:2 = Etable.get t ~row ~col:2))
               (List.init (Etable.nrows t) Fun.id))

(* walker equivalence with the tree on random data *)

let prop_walker_equivalence =
  QCheck2.Test.make ~name:"walker = Bptree.range on random trees" ~count:40
    QCheck2.Gen.(pair (list_size (int_range 0 150) (int_bound 30)) (pair (int_bound 30) (int_bound 30)))
    (fun (keys, (lo, hi)) ->
      let codec =
        Secdb_schemes.Index12.codec
          ~e:(Secdb_schemes.Einst.cbc_zero_iv (Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'k')))
          ~mac_cipher:(Secdb_cipher.Aes_fast.cipher ~key:(String.make 16 'k'))
          ~rng:(Rng.create ~seed:9L ()) ~indexed_table:1 ~indexed_col:0 ()
      in
      let tree = B.create ~order:4 ~id:1000 ~codec () in
      List.iteri (fun i k -> B.insert tree (Value.Int (Int64.of_int k)) ~table_row:i) keys;
      let lo = Value.Int (Int64.of_int (min lo hi)) and hi = Value.Int (Int64.of_int (max lo hi)) in
      let expected = B.range tree ~lo ~hi () in
      List.for_all
        (fun mode ->
          match Walker.range tree ~mode ~lo ~hi () with
          | Ok a -> a.Walker.results = expected
          | Error _ -> false)
        [ Walker.Published; Walker.Corrected ])

let suites =
  [
    ( "props:encdb-scripts",
      List.map prop_script
        [
          Encdb.Elovici_append;
          Encdb.Elovici_xor;
          Encdb.Shmueli_improved;
          Encdb.Fixed Encdb.Eax;
          Encdb.Fixed Encdb.Ccfb;
          Encdb.Fixed Encdb.Gcm;
          Encdb.Fixed Encdb.Siv;
          Encdb.Siv_deterministic;
        ]
      |> List.map qc );
    ( "props:cross-component",
      [ qc prop_storage_roundtrip; qc prop_walker_equivalence ] );
  ]

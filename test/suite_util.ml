open Secdb_util

let check = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_hex_roundtrip () =
  check "decode" "\x00\xff\x10" (Xbytes.of_hex "00ff10");
  check "encode" "00ff10" (Xbytes.to_hex "\x00\xff\x10");
  check "whitespace tolerated" "\xde\xad" (Xbytes.of_hex "de ad");
  check "case-insensitive" "\xde\xad" (Xbytes.of_hex "DeAd")

let test_hex_errors () =
  Alcotest.check_raises "odd digits" (Invalid_argument "Xbytes.of_hex: odd number of digits")
    (fun () -> ignore (Xbytes.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Xbytes.of_hex: invalid hex digit")
    (fun () -> ignore (Xbytes.of_hex "zz"))

let test_xor () =
  check "equal length" "\x03\x03" (Xbytes.xor "\x01\x02" "\x02\x01");
  check "short right operand zero-extended" "\x03\x02" (Xbytes.xor "\x01\x02" "\x02");
  check "short left operand zero-extended" "\x03\x02" (Xbytes.xor "\x02" "\x01\x02");
  check "empty" "" (Xbytes.xor "" "");
  Alcotest.check_raises "xor_exact mismatch"
    (Invalid_argument "Xbytes.xor_exact: length mismatch") (fun () ->
      ignore (Xbytes.xor_exact "a" "ab"))

let test_take_drop_blocks () =
  check "take" "ab" (Xbytes.take 2 "abcd");
  check "take beyond" "abcd" (Xbytes.take 10 "abcd");
  check "drop" "cd" (Xbytes.drop 2 "abcd");
  check "drop beyond" "" (Xbytes.drop 10 "abcd");
  Alcotest.(check (list string)) "blocks" [ "ab"; "cd"; "e" ] (Xbytes.blocks 2 "abcde");
  Alcotest.(check (list string)) "blocks empty" [] (Xbytes.blocks 4 "");
  Alcotest.check_raises "blocks size 0"
    (Invalid_argument "Xbytes.blocks: block size must be positive") (fun () ->
      ignore (Xbytes.blocks 0 "x"))

let test_common_prefix () =
  checki "bytes" 3 (Xbytes.common_prefix_len "abcde" "abcxe");
  checki "identical" 5 (Xbytes.common_prefix_len "abcde" "abcde");
  checki "none" 0 (Xbytes.common_prefix_len "xbcde" "abcde");
  checki "block prefix" 1 (Xbytes.common_block_prefix ~block:2 "abcde" "abcxe");
  checki "block prefix 0" 0 (Xbytes.common_block_prefix ~block:4 "abcde" "abcxe")

let test_int_encodings () =
  check "width 4" "\x00\x00\x01\x02" (Xbytes.int_to_be_string ~width:4 258);
  checki "roundtrip" 258 (Xbytes.be_string_to_int "\x00\x00\x01\x02");
  check "zero" "\x00\x00" (Xbytes.int_to_be_string ~width:2 0);
  Alcotest.check_raises "overflow" (Invalid_argument "Xbytes.int_to_be_string: overflow")
    (fun () -> ignore (Xbytes.int_to_be_string ~width:1 256));
  Alcotest.check_raises "negative" (Invalid_argument "Xbytes.int_to_be_string: negative")
    (fun () -> ignore (Xbytes.int_to_be_string ~width:4 (-1)));
  check "int64 be" "\x00\x00\x00\x00\x00\x00\x01\x00" (Xbytes.int64_to_be_string 256L)

let test_endian_accessors () =
  let b = Bytes.create 8 in
  Xbytes.set_uint32_be b 0 0xdeadbeef;
  Xbytes.set_uint32_le b 4 0xdeadbeef;
  checki "be get" 0xdeadbeef (Xbytes.get_uint32_be (Bytes.to_string b) 0);
  checki "le get" 0xdeadbeef (Xbytes.get_uint32_le (Bytes.to_string b) 4);
  check "be layout" "deadbeef" (Xbytes.to_hex (String.sub (Bytes.to_string b) 0 4));
  check "le layout" "efbeadde" (Xbytes.to_hex (String.sub (Bytes.to_string b) 4 4));
  let b64 = Bytes.create 8 in
  Xbytes.set_uint64_be b64 0 0x0123456789abcdefL;
  check "u64 be" "0123456789abcdef" (Xbytes.to_hex (Bytes.to_string b64));
  Alcotest.(check int64)
    "u64 roundtrip" 0x0123456789abcdefL
    (Xbytes.get_uint64_be (Bytes.to_string b64) 0)

let test_ascii_predicates () =
  checkb "printable yes" true (Xbytes.is_ascii_printable "Hello, world!");
  checkb "printable no (control)" false (Xbytes.is_ascii_printable "a\tb");
  checkb "printable no (high)" false (Xbytes.is_ascii_printable "a\xffb");
  checkb "ascii7 yes" true (Xbytes.is_ascii7 "a\tb\x00");
  checkb "ascii7 no" false (Xbytes.is_ascii7 "a\x80")

let test_constant_time_equal () =
  checkb "equal" true (Xbytes.constant_time_equal "abc" "abc");
  checkb "different" false (Xbytes.constant_time_equal "abc" "abd");
  checkb "length" false (Xbytes.constant_time_equal "abc" "abcd");
  checkb "empty" true (Xbytes.constant_time_equal "" "")

let test_flip_bit () =
  check "msb of byte 0" "\x80" (Xbytes.flip_bit "\x00" 0);
  check "lsb of byte 0" "\x01" (Xbytes.flip_bit "\x00" 7);
  check "byte 1" "a\x22" (Xbytes.flip_bit "ab" 9);
  Alcotest.check_raises "out of range" (Invalid_argument "Xbytes.flip_bit: out of range")
    (fun () -> ignore (Xbytes.flip_bit "a" 8))

let test_vec_basics () =
  let v = Vec.create () in
  checki "empty" 0 (Vec.length v);
  checki "push returns index" 0 (Vec.push v "a");
  checki "push returns index 2" 1 (Vec.push v "b");
  check "get" "b" (Vec.get v 1);
  Vec.set v 0 "z";
  check "set" "z" (Vec.get v 0);
  Alcotest.check_raises "oob get"
    (Invalid_argument "Vec.get: index 2 out of bounds (length 2)") (fun () ->
      ignore (Vec.get v 2));
  Alcotest.(check (list string)) "to_list" [ "z"; "b" ] (Vec.to_list v);
  Alcotest.(check (list string)) "of_list roundtrip" [ "x"; "y" ]
    (Vec.to_list (Vec.of_list [ "x"; "y" ]))

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  checki "length" 1000 (Vec.length v);
  checki "first" 0 (Vec.get v 0);
  checki "last" 999 (Vec.get v 999);
  let sum = Vec.fold_left ( + ) 0 v in
  checki "fold" (999 * 1000 / 2) sum;
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  checki "iteri count" 1000 (List.length !seen);
  checkb "iteri pairs" true (List.for_all (fun (i, x) -> i = x) !seen)

let test_rng_determinism () =
  let a = Rng.create ~seed:99L () and b = Rng.create ~seed:99L () in
  check "same seed, same bytes" (Rng.bytes a 32) (Rng.bytes b 32);
  let c = Rng.create ~seed:100L () in
  checkb "different seed, different bytes" false (Rng.bytes a 32 = Rng.bytes c 32);
  let d = Rng.create ~seed:5L () in
  let copy = Rng.copy d in
  check "copy independent but equal" (Rng.bytes d 16) (Rng.bytes copy 16)

let test_rng_ranges () =
  let rng = Rng.create () in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    if not (v >= 0 && v < 7) then Alcotest.fail "int out of range"
  done;
  checkb "ascii printable" true (Xbytes.is_ascii_printable (Rng.ascii rng 200));
  checkb "alpha lowercase" true
    (String.for_all (fun c -> c >= 'a' && c <= 'z') (Rng.alpha rng 200));
  Alcotest.check_raises "int bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_shuffle () =
  let rng = Rng.create ~seed:3L () in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted;
  checkb "actually shuffled" true (arr <> Array.init 50 Fun.id)

(* property tests *)

let qc = Test_seed.qc

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip" ~count:500 QCheck2.Gen.string (fun s ->
      Xbytes.of_hex (Xbytes.to_hex s) = s)

let prop_xor_involution =
  QCheck2.Test.make ~name:"xor involution on equal lengths" ~count:500
    QCheck2.Gen.(pair string string)
    (fun (a, b) ->
      let n = min (String.length a) (String.length b) in
      let a = String.sub a 0 n and b = String.sub b 0 n in
      Xbytes.xor (Xbytes.xor a b) b = a)

let prop_blocks_concat =
  QCheck2.Test.make ~name:"blocks concatenate back" ~count:500
    QCheck2.Gen.(pair (int_range 1 20) string)
    (fun (n, s) -> String.concat "" (Xbytes.blocks n s) = s)

let prop_int_be_roundtrip =
  QCheck2.Test.make ~name:"int_to_be/be_to_int roundtrip" ~count:500
    QCheck2.Gen.(int_bound 1_000_000_000)
    (fun n -> Xbytes.be_string_to_int (Xbytes.int_to_be_string ~width:8 n) = n)

let prop_flip_bit_involution =
  QCheck2.Test.make ~name:"flip_bit involution" ~count:500
    QCheck2.Gen.(string_size (int_range 1 40))
    (fun s ->
      let i = (String.length s * 8) - 1 in
      Xbytes.flip_bit (Xbytes.flip_bit s i) i = s)

let test_dist_zipf () =
  let w = Dist.zipf_weights ~n:5 ~s:1.0 in
  checkb "normalised" true (Float.abs (Array.fold_left ( +. ) 0.0 w -. 1.0) < 1e-9);
  checkb "monotone" true (w.(0) > w.(1) && w.(1) > w.(2));
  (* s = 0 is uniform *)
  let u = Dist.zipf_weights ~n:4 ~s:0.0 in
  checkb "uniform" true (Array.for_all (fun x -> Float.abs (x -. 0.25) < 1e-9) u);
  Alcotest.check_raises "n = 0" (Invalid_argument "Dist.zipf_weights: n must be positive")
    (fun () -> ignore (Dist.zipf_weights ~n:0 ~s:1.0));
  (* sampling respects the skew: rank 0 dominates *)
  let rng = Rng.create ~seed:7L () in
  let counts = Dist.counts_of_samples rng ~sampler:(fun r -> Dist.zipf r ~n:10 ~s:1.2) ~draws:2000 in
  (match counts with
  | (0, c0) :: _ ->
      checkb "rank 0 most frequent" true
        (List.for_all (fun (_, c) -> c <= c0) counts);
      checkb "plausible share" true (c0 > 500)
  | _ -> Alcotest.fail "rank 0 absent");
  checki "histogram sums" 2000 (List.fold_left (fun a (_, c) -> a + c) 0 counts);
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 2); (2, 1) ]
    (Dist.histogram [ 2; 1; 1 ])

let suites =
  [
    ( "util:xbytes",
      [
        Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        Alcotest.test_case "hex errors" `Quick test_hex_errors;
        Alcotest.test_case "xor" `Quick test_xor;
        Alcotest.test_case "take/drop/blocks" `Quick test_take_drop_blocks;
        Alcotest.test_case "common prefixes" `Quick test_common_prefix;
        Alcotest.test_case "int encodings" `Quick test_int_encodings;
        Alcotest.test_case "endian accessors" `Quick test_endian_accessors;
        Alcotest.test_case "ascii predicates" `Quick test_ascii_predicates;
        Alcotest.test_case "constant-time equal" `Quick test_constant_time_equal;
        Alcotest.test_case "flip bit" `Quick test_flip_bit;
        qc prop_hex_roundtrip;
        qc prop_xor_involution;
        qc prop_blocks_concat;
        qc prop_int_be_roundtrip;
        qc prop_flip_bit_involution;
      ] );
    ( "util:vec",
      [
        Alcotest.test_case "basics" `Quick test_vec_basics;
        Alcotest.test_case "growth and iteration" `Quick test_vec_growth;
      ] );
    ( "util:rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "ranges" `Quick test_rng_ranges;
        Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
      ] );
    ("util:dist", [ Alcotest.test_case "zipf and histograms" `Quick test_dist_zipf ]);
  ]

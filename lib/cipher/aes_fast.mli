(** Table-driven AES (the classic 32-bit T-table formulation).

    Computes the same permutation as {!Aes} — the test suite checks
    byte-for-byte agreement on the FIPS vectors and random inputs — at
    roughly an order of magnitude higher throughput, which keeps the
    experiment harness honest about relative AEAD costs.  The tables are
    derived at start-up from {!Aes.sbox}, not transcribed.

    (T-table AES is famously subject to cache-timing side channels; for
    this repository's purpose — reproducing a cryptanalysis paper on a
    simulator — that is out of scope and documented here.) *)

type key

val expand_key : string -> key
(** 16-, 24- or 32-byte key. *)

val encrypt_block : key -> string -> string
val decrypt_block : key -> string -> string

val encrypt_into : key -> Block.into
(** Allocation-free one-block kernel: the round state is threaded through
    int bindings, so a call performs no heap allocation at all.  Reads the
    source block completely before writing, hence in-place use (same buffer,
    same offset) is fine.  Shares the immutable key schedule safely across
    domains.
    @raise Invalid_argument if either 16-byte range is out of bounds. *)

val decrypt_into : key -> Block.into

val cipher : key:string -> Block.t
(** Named ["aes-128-fast"] etc.; carries the {!encrypt_into} and
    {!decrypt_into} fast paths, which the bulk mode kernels pick up. *)

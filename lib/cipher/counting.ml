type counters = { mutable enc_calls : int; mutable dec_calls : int }

let wrap (c : Block.t) =
  let counters = { enc_calls = 0; dec_calls = 0 } in
  (* the bulk kernels run on the _into path, so it must be counted too —
     otherwise EXP8's invocation counts would miss every bulk call *)
  let enc_into = Block.encrypt_into c and dec_into = Block.decrypt_into c in
  let wrapped =
    Block.v
      ~name:(c.Block.name ^ "+counted")
      ~block_size:c.Block.block_size
      ~encrypt:(fun b ->
        counters.enc_calls <- counters.enc_calls + 1;
        c.Block.encrypt b)
      ~decrypt:(fun b ->
        counters.dec_calls <- counters.dec_calls + 1;
        c.Block.decrypt b)
      ~encrypt_into:(fun src ~src_off dst ~dst_off ->
        counters.enc_calls <- counters.enc_calls + 1;
        enc_into src ~src_off dst ~dst_off)
      ~decrypt_into:(fun src ~src_off dst ~dst_off ->
        counters.dec_calls <- counters.dec_calls + 1;
        dec_into src ~src_off dst ~dst_off)
      ()
  in
  (wrapped, counters)

let reset c =
  c.enc_calls <- 0;
  c.dec_calls <- 0

let total c = c.enc_calls + c.dec_calls

let count_enc c f =
  let wrapped, counters = wrap c in
  let r = f wrapped in
  (counters.enc_calls, r)

let count_all c f =
  let wrapped, counters = wrap c in
  let r = f wrapped in
  (total counters, r)

(* 32-bit word formulation.  State: four big-endian words, one per column
   (word c = input bytes 4c..4c+3, byte 0 = row 0).  Encryption round:

     w'_c = Te0[b0(w_c)] ^ Te1[b1(w_{c+1})] ^ Te2[b2(w_{c+2})]
            ^ Te3[b3(w_{c+3})] ^ rk_c

   which fuses SubBytes, ShiftRows and MixColumns. *)

let mask = 0xffffffff

let xtime x =
  let x2 = x lsl 1 in
  if x land 0x80 <> 0 then (x2 lxor 0x1b) land 0xff else x2

let gmul a b =
  let rec loop a b acc =
    if b = 0 then acc
    else loop (xtime a) (b lsr 1) (if b land 1 <> 0 then acc lxor a else acc)
  in
  loop a b 0

let rotr32 w n = ((w lsr n) lor (w lsl (32 - n))) land mask

let te0, te1, te2, te3 =
  let t0 = Array.make 256 0 in
  for x = 0 to 255 do
    let s = Aes.sbox.(x) in
    t0.(x) <- (gmul s 2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor gmul s 3
  done;
  (t0, Array.map (fun w -> rotr32 w 8) t0,
   Array.map (fun w -> rotr32 w 16) t0,
   Array.map (fun w -> rotr32 w 24) t0)

let td0, td1, td2, td3 =
  let t0 = Array.make 256 0 in
  for x = 0 to 255 do
    let s = Aes.inv_sbox.(x) in
    t0.(x) <- (gmul s 14 lsl 24) lor (gmul s 9 lsl 16) lor (gmul s 13 lsl 8) lor gmul s 11
  done;
  (t0, Array.map (fun w -> rotr32 w 8) t0,
   Array.map (fun w -> rotr32 w 16) t0,
   Array.map (fun w -> rotr32 w 24) t0)

let inv_mix_column w =
  let b i = (w lsr (24 - (8 * i))) land 0xff in
  let a0 = b 0 and a1 = b 1 and a2 = b 2 and a3 = b 3 in
  let c0 = gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9 in
  let c1 = gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13 in
  let c2 = gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11 in
  let c3 = gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14 in
  (c0 lsl 24) lor (c1 lsl 16) lor (c2 lsl 8) lor c3

type key = { ek : int array; dk : int array; rounds : int; bits : int }

let expand_key key_str =
  let base = Aes.expand_key key_str in
  (* reuse the byte-wise schedule, repack into big-endian words *)
  let bytes = Aes.round_key_bytes base in
  let rounds = Array.length bytes / 16 - 1 in
  let nwords = 4 * (rounds + 1) in
  let word i =
    (bytes.(4 * i) lsl 24) lor (bytes.((4 * i) + 1) lsl 16)
    lor (bytes.((4 * i) + 2) lsl 8)
    lor bytes.((4 * i) + 3)
  in
  let ek = Array.init nwords word in
  (* decryption schedule: reversed rounds, InvMixColumns on the middle *)
  let dk = Array.make nwords 0 in
  for r = 0 to rounds do
    for c = 0 to 3 do
      let w = ek.((4 * (rounds - r)) + c) in
      dk.((4 * r) + c) <- (if r = 0 || r = rounds then w else inv_mix_column w)
    done
  done;
  { ek; dk; rounds; bits = String.length key_str * 8 }

let b0 w = (w lsr 24) land 0xff
let b1 w = (w lsr 16) land 0xff
let b2 w = (w lsr 8) land 0xff
let b3 w = w land 0xff

(* Offsets are bounds-checked once at entry; the word accessors below may
   then use unsafe byte access. *)
let check_range name buf off =
  if off < 0 || off + 16 > Bytes.length buf then
    invalid_arg (Printf.sprintf "Aes_fast.%s: 16-byte block out of range" name)

let get32 b i =
  (Char.code (Bytes.unsafe_get b i) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (i + 3))

let set32 b i v =
  Bytes.unsafe_set b i (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (i + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (i + 3) (Char.unsafe_chr (v land 0xff))

(* The whole state lives in eight immutable int bindings threaded through a
   tail-recursive round loop: no scratch arrays, no allocation, safe to run
   from any number of domains over one shared key schedule.

   Table and schedule reads use unsafe access: every table index is masked
   to 0xff by [b0..b3] against 256-entry tables, and the highest schedule
   index is 4*rounds + 3 = length - 1 by construction of [expand_key]. *)

let encrypt_into k src ~src_off dst ~dst_off =
  check_range "encrypt_into" src src_off;
  check_range "encrypt_into" dst dst_off;
  let ek = k.ek and rounds = k.rounds in
  let rec go r w0 w1 w2 w3 =
    if r = rounds then begin
      let rk = 4 * r in
      let s = Aes.sbox in
      set32 dst dst_off
        ((Array.unsafe_get s (b0 w0) lsl 24) lor (Array.unsafe_get s (b1 w1) lsl 16) lor (Array.unsafe_get s (b2 w2) lsl 8)
        lor Array.unsafe_get s (b3 w3) lxor Array.unsafe_get ek rk);
      set32 dst (dst_off + 4)
        ((Array.unsafe_get s (b0 w1) lsl 24) lor (Array.unsafe_get s (b1 w2) lsl 16) lor (Array.unsafe_get s (b2 w3) lsl 8)
        lor Array.unsafe_get s (b3 w0) lxor Array.unsafe_get ek (rk + 1));
      set32 dst (dst_off + 8)
        ((Array.unsafe_get s (b0 w2) lsl 24) lor (Array.unsafe_get s (b1 w3) lsl 16) lor (Array.unsafe_get s (b2 w0) lsl 8)
        lor Array.unsafe_get s (b3 w1) lxor Array.unsafe_get ek (rk + 2));
      set32 dst (dst_off + 12)
        ((Array.unsafe_get s (b0 w3) lsl 24) lor (Array.unsafe_get s (b1 w0) lsl 16) lor (Array.unsafe_get s (b2 w1) lsl 8)
        lor Array.unsafe_get s (b3 w2) lxor Array.unsafe_get ek (rk + 3))
    end
    else begin
      let rk = 4 * r in
      let t0 =
        Array.unsafe_get te0 (b0 w0) lxor Array.unsafe_get te1 (b1 w1) lxor Array.unsafe_get te2 (b2 w2) lxor Array.unsafe_get te3 (b3 w3)
        lxor Array.unsafe_get ek rk
      in
      let t1 =
        Array.unsafe_get te0 (b0 w1) lxor Array.unsafe_get te1 (b1 w2) lxor Array.unsafe_get te2 (b2 w3) lxor Array.unsafe_get te3 (b3 w0)
        lxor Array.unsafe_get ek (rk + 1)
      in
      let t2 =
        Array.unsafe_get te0 (b0 w2) lxor Array.unsafe_get te1 (b1 w3) lxor Array.unsafe_get te2 (b2 w0) lxor Array.unsafe_get te3 (b3 w1)
        lxor Array.unsafe_get ek (rk + 2)
      in
      let t3 =
        Array.unsafe_get te0 (b0 w3) lxor Array.unsafe_get te1 (b1 w0) lxor Array.unsafe_get te2 (b2 w1) lxor Array.unsafe_get te3 (b3 w2)
        lxor Array.unsafe_get ek (rk + 3)
      in
      go (r + 1) t0 t1 t2 t3
    end
  in
  go 1
    (get32 src src_off lxor Array.unsafe_get ek 0)
    (get32 src (src_off + 4) lxor Array.unsafe_get ek 1)
    (get32 src (src_off + 8) lxor Array.unsafe_get ek 2)
    (get32 src (src_off + 12) lxor Array.unsafe_get ek 3)

let decrypt_into k src ~src_off dst ~dst_off =
  check_range "decrypt_into" src src_off;
  check_range "decrypt_into" dst dst_off;
  let dk = k.dk and rounds = k.rounds in
  let rec go r w0 w1 w2 w3 =
    if r = rounds then begin
      let rk = 4 * r in
      let si = Aes.inv_sbox in
      set32 dst dst_off
        ((Array.unsafe_get si (b0 w0) lsl 24) lor (Array.unsafe_get si (b1 w3) lsl 16) lor (Array.unsafe_get si (b2 w2) lsl 8)
        lor Array.unsafe_get si (b3 w1) lxor Array.unsafe_get dk rk);
      set32 dst (dst_off + 4)
        ((Array.unsafe_get si (b0 w1) lsl 24) lor (Array.unsafe_get si (b1 w0) lsl 16) lor (Array.unsafe_get si (b2 w3) lsl 8)
        lor Array.unsafe_get si (b3 w2) lxor Array.unsafe_get dk (rk + 1));
      set32 dst (dst_off + 8)
        ((Array.unsafe_get si (b0 w2) lsl 24) lor (Array.unsafe_get si (b1 w1) lsl 16) lor (Array.unsafe_get si (b2 w0) lsl 8)
        lor Array.unsafe_get si (b3 w3) lxor Array.unsafe_get dk (rk + 2));
      set32 dst (dst_off + 12)
        ((Array.unsafe_get si (b0 w3) lsl 24) lor (Array.unsafe_get si (b1 w2) lsl 16) lor (Array.unsafe_get si (b2 w1) lsl 8)
        lor Array.unsafe_get si (b3 w0) lxor Array.unsafe_get dk (rk + 3))
    end
    else begin
      let rk = 4 * r in
      let t0 =
        Array.unsafe_get td0 (b0 w0) lxor Array.unsafe_get td1 (b1 w3) lxor Array.unsafe_get td2 (b2 w2) lxor Array.unsafe_get td3 (b3 w1)
        lxor Array.unsafe_get dk rk
      in
      let t1 =
        Array.unsafe_get td0 (b0 w1) lxor Array.unsafe_get td1 (b1 w0) lxor Array.unsafe_get td2 (b2 w3) lxor Array.unsafe_get td3 (b3 w2)
        lxor Array.unsafe_get dk (rk + 1)
      in
      let t2 =
        Array.unsafe_get td0 (b0 w2) lxor Array.unsafe_get td1 (b1 w1) lxor Array.unsafe_get td2 (b2 w0) lxor Array.unsafe_get td3 (b3 w3)
        lxor Array.unsafe_get dk (rk + 2)
      in
      let t3 =
        Array.unsafe_get td0 (b0 w3) lxor Array.unsafe_get td1 (b1 w2) lxor Array.unsafe_get td2 (b2 w1) lxor Array.unsafe_get td3 (b3 w0)
        lxor Array.unsafe_get dk (rk + 3)
      in
      go (r + 1) t0 t1 t2 t3
    end
  in
  go 1
    (get32 src src_off lxor Array.unsafe_get dk 0)
    (get32 src (src_off + 4) lxor Array.unsafe_get dk 1)
    (get32 src (src_off + 8) lxor Array.unsafe_get dk 2)
    (get32 src (src_off + 12) lxor Array.unsafe_get dk 3)

let encrypt_block k block =
  if String.length block <> 16 then invalid_arg "Aes_fast: block must be 16 bytes";
  let out = Bytes.create 16 in
  encrypt_into k (Bytes.unsafe_of_string block) ~src_off:0 out ~dst_off:0;
  Bytes.unsafe_to_string out

let decrypt_block k block =
  if String.length block <> 16 then invalid_arg "Aes_fast: block must be 16 bytes";
  let out = Bytes.create 16 in
  decrypt_into k (Bytes.unsafe_of_string block) ~src_off:0 out ~dst_off:0;
  Bytes.unsafe_to_string out

let cipher ~key =
  let k = expand_key key in
  Block.v
    ~name:(Printf.sprintf "aes-%d-fast" k.bits)
    ~block_size:16 ~encrypt:(encrypt_block k) ~decrypt:(decrypt_block k)
    ~encrypt_into:(encrypt_into k) ~decrypt_into:(decrypt_into k) ()

(* Tables from FIPS 46-3.  All positions are 1-based as in the standard. *)

let ip =
  [| 58; 50; 42; 34; 26; 18; 10; 2; 60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6; 64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17; 9; 1; 59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5; 63; 55; 47; 39; 31; 23; 15; 7 |]

let fp =
  [| 40; 8; 48; 16; 56; 24; 64; 32; 39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30; 37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28; 35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26; 33; 1; 41; 9; 49; 17; 57; 25 |]

let expansion =
  [| 32; 1; 2; 3; 4; 5; 4; 5; 6; 7; 8; 9; 8; 9; 10; 11; 12; 13;
     12; 13; 14; 15; 16; 17; 16; 17; 18; 19; 20; 21; 20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29; 28; 29; 30; 31; 32; 1 |]

let pbox =
  [| 16; 7; 20; 21; 29; 12; 28; 17; 1; 15; 23; 26; 5; 18; 31; 10;
     2; 8; 24; 14; 32; 27; 3; 9; 19; 13; 30; 6; 22; 11; 4; 25 |]

let pc1 =
  [| 57; 49; 41; 33; 25; 17; 9; 1; 58; 50; 42; 34; 26; 18;
     10; 2; 59; 51; 43; 35; 27; 19; 11; 3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15; 7; 62; 54; 46; 38; 30; 22;
     14; 6; 61; 53; 45; 37; 29; 21; 13; 5; 28; 20; 12; 4 |]

let pc2 =
  [| 14; 17; 11; 24; 1; 5; 3; 28; 15; 6; 21; 10;
     23; 19; 12; 4; 26; 8; 16; 7; 27; 20; 13; 2;
     41; 52; 31; 37; 47; 55; 30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53; 46; 42; 50; 36; 29; 32 |]

let shifts = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

let sboxes =
  [|
    [| 14; 4; 13; 1; 2; 15; 11; 8; 3; 10; 6; 12; 5; 9; 0; 7;
       0; 15; 7; 4; 14; 2; 13; 1; 10; 6; 12; 11; 9; 5; 3; 8;
       4; 1; 14; 8; 13; 6; 2; 11; 15; 12; 9; 7; 3; 10; 5; 0;
       15; 12; 8; 2; 4; 9; 1; 7; 5; 11; 3; 14; 10; 0; 6; 13 |];
    [| 15; 1; 8; 14; 6; 11; 3; 4; 9; 7; 2; 13; 12; 0; 5; 10;
       3; 13; 4; 7; 15; 2; 8; 14; 12; 0; 1; 10; 6; 9; 11; 5;
       0; 14; 7; 11; 10; 4; 13; 1; 5; 8; 12; 6; 9; 3; 2; 15;
       13; 8; 10; 1; 3; 15; 4; 2; 11; 6; 7; 12; 0; 5; 14; 9 |];
    [| 10; 0; 9; 14; 6; 3; 15; 5; 1; 13; 12; 7; 11; 4; 2; 8;
       13; 7; 0; 9; 3; 4; 6; 10; 2; 8; 5; 14; 12; 11; 15; 1;
       13; 6; 4; 9; 8; 15; 3; 0; 11; 1; 2; 12; 5; 10; 14; 7;
       1; 10; 13; 0; 6; 9; 8; 7; 4; 15; 14; 3; 11; 5; 2; 12 |];
    [| 7; 13; 14; 3; 0; 6; 9; 10; 1; 2; 8; 5; 11; 12; 4; 15;
       13; 8; 11; 5; 6; 15; 0; 3; 4; 7; 2; 12; 1; 10; 14; 9;
       10; 6; 9; 0; 12; 11; 7; 13; 15; 1; 3; 14; 5; 2; 8; 4;
       3; 15; 0; 6; 10; 1; 13; 8; 9; 4; 5; 11; 12; 7; 2; 14 |];
    [| 2; 12; 4; 1; 7; 10; 11; 6; 8; 5; 3; 15; 13; 0; 14; 9;
       14; 11; 2; 12; 4; 7; 13; 1; 5; 0; 15; 10; 3; 9; 8; 6;
       4; 2; 1; 11; 10; 13; 7; 8; 15; 9; 12; 5; 6; 3; 0; 14;
       11; 8; 12; 7; 1; 14; 2; 13; 6; 15; 0; 9; 10; 4; 5; 3 |];
    [| 12; 1; 10; 15; 9; 2; 6; 8; 0; 13; 3; 4; 14; 7; 5; 11;
       10; 15; 4; 2; 7; 12; 9; 5; 6; 1; 13; 14; 0; 11; 3; 8;
       9; 14; 15; 5; 2; 8; 12; 3; 7; 0; 4; 10; 1; 13; 11; 6;
       4; 3; 2; 12; 9; 5; 15; 10; 11; 14; 1; 7; 6; 0; 8; 13 |];
    [| 4; 11; 2; 14; 15; 0; 8; 13; 3; 12; 9; 7; 5; 10; 6; 1;
       13; 0; 11; 7; 4; 9; 1; 10; 14; 3; 5; 12; 2; 15; 8; 6;
       1; 4; 11; 13; 12; 3; 7; 14; 10; 15; 6; 8; 0; 5; 9; 2;
       6; 11; 13; 8; 1; 4; 10; 7; 9; 5; 0; 15; 14; 2; 3; 12 |];
    [| 13; 2; 8; 4; 6; 15; 11; 1; 10; 9; 3; 14; 5; 0; 12; 7;
       1; 15; 13; 8; 10; 3; 7; 4; 12; 5; 6; 11; 0; 14; 9; 2;
       7; 11; 4; 1; 9; 12; 14; 2; 0; 6; 10; 13; 15; 3; 5; 8;
       2; 1; 14; 7; 4; 10; 8; 13; 15; 12; 9; 0; 3; 5; 6; 11 |];
  |]

(* Bits as int64, bit 1 = MSB, following the standard's numbering. *)

let get_bit v width pos = Int64.to_int (Int64.shift_right_logical v (width - pos)) land 1

let permute v in_width table =
  let out = ref 0L in
  Array.iter
    (fun pos -> out := Int64.logor (Int64.shift_left !out 1) (Int64.of_int (get_bit v in_width pos)))
    table;
  !out

type key = { subkeys : int64 array (* 16 x 48-bit *) }

let rotl28 v n = Int64.logand (Int64.logor (Int64.shift_left v n) (Int64.shift_right_logical v (28 - n))) 0xFFFFFFFL

let expand_key key_str =
  if String.length key_str <> 8 then invalid_arg "Des.expand_key: key must be 8 bytes";
  let k64 = Secdb_util.Xbytes.get_uint64_be key_str 0 in
  let cd = permute k64 64 pc1 in
  let c = ref (Int64.logand (Int64.shift_right_logical cd 28) 0xFFFFFFFL) in
  let d = ref (Int64.logand cd 0xFFFFFFFL) in
  let subkeys =
    Array.map
      (fun s ->
        c := rotl28 !c s;
        d := rotl28 !d s;
        let cd = Int64.logor (Int64.shift_left !c 28) !d in
        permute cd 56 pc2)
      shifts
  in
  { subkeys }

let feistel r subkey =
  (* r: 32 bits, subkey: 48 bits *)
  let e = permute (Int64.of_int r) 32 expansion in
  let x = Int64.logxor e subkey in
  let out = ref 0 in
  for i = 0 to 7 do
    let six = Int64.to_int (Int64.shift_right_logical x (42 - (6 * i))) land 0x3f in
    let row = ((six lsr 4) land 2) lor (six land 1) in
    let col = (six lsr 1) land 0xf in
    out := (!out lsl 4) lor sboxes.(i).((row * 16) + col)
  done;
  Int64.to_int (permute (Int64.of_int !out) 32 pbox)

let crypt_block subkey_order key block =
  if String.length block <> 8 then invalid_arg "Des: block must be 8 bytes";
  let v = permute (Secdb_util.Xbytes.get_uint64_be block 0) 64 ip in
  let l = ref (Int64.to_int (Int64.shift_right_logical v 32) land 0xffffffff) in
  let r = ref (Int64.to_int v land 0xffffffff) in
  List.iter
    (fun i ->
      let f = feistel !r key.subkeys.(i) in
      let nl = !r in
      r := !l lxor f;
      l := nl)
    subkey_order;
  (* final swap: pre-output is R16 L16 *)
  let pre = Int64.logor (Int64.shift_left (Int64.of_int !r) 32) (Int64.of_int !l) in
  let out = permute pre 64 fp in
  let b = Bytes.create 8 in
  Secdb_util.Xbytes.set_uint64_be b 0 out;
  Bytes.unsafe_to_string b

let forward_order = List.init 16 Fun.id
let reverse_order = List.rev forward_order

let encrypt_block key block = crypt_block forward_order key block
let decrypt_block key block = crypt_block reverse_order key block

let cipher ~key =
  let k = expand_key key in
  Block.v ~name:"des" ~block_size:8 ~encrypt:(encrypt_block k)
    ~decrypt:(decrypt_block k) ()

let weak_keys =
  List.map Secdb_util.Xbytes.of_hex
    [ "0101010101010101"; "fefefefefefefefe"; "e0e0e0e0f1f1f1f1"; "1f1f1f1f0e0e0e0e" ]

let is_weak_key k = List.mem k weak_keys

let cipher ~key =
  let k1, k2, k3 =
    match String.length key with
    | 16 -> (String.sub key 0 8, String.sub key 8 8, String.sub key 0 8)
    | 24 -> (String.sub key 0 8, String.sub key 8 8, String.sub key 16 8)
    | n -> invalid_arg (Printf.sprintf "Des3.cipher: key must be 16 or 24 bytes, got %d" n)
  in
  let e1 = Des.expand_key k1 and e2 = Des.expand_key k2 and e3 = Des.expand_key k3 in
  Block.v
    ~name:(if String.length key = 16 then "3des-ede2" else "3des-ede3")
    ~block_size:8
    ~encrypt:(fun b -> Des.encrypt_block e3 (Des.decrypt_block e2 (Des.encrypt_block e1 b)))
    ~decrypt:(fun b -> Des.decrypt_block e1 (Des.encrypt_block e2 (Des.decrypt_block e3 b)))
    ()

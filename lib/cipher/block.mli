(** First-class block-cipher values.

    A {!t} bundles a keyed block cipher: its block size and the two
    single-block permutations.  Modes, MACs and AEAD schemes are all
    parameterised over this record, which lets the experiments swap AES for
    DES, and wrap any cipher with the instrumentation of {!Counting}.

    Besides the original [string -> string] closures, a cipher may carry an
    allocation-free fast path ({!into}) that reads one block out of a
    [bytes] buffer and writes the permuted block into another (or the same)
    buffer.  The bulk mode and MAC kernels run entirely on that path; for
    ciphers that do not provide one, {!encrypt_into}/{!decrypt_into} fall
    back to a generic wrapper over the string closures, so every cipher
    works with the bulk kernels and the fast ones ({!Aes_fast}) avoid
    per-block allocation altogether. *)

type into = bytes -> src_off:int -> bytes -> dst_off:int -> unit
(** One-block permutation on raw buffers.  [src] and [dst] may be the same
    buffer when the offsets are equal (or the ranges do not overlap);
    implementations read the whole input block before writing. *)

type t = {
  name : string;  (** e.g. ["aes-128"] *)
  block_size : int;  (** in bytes *)
  encrypt : string -> string;  (** one block; input length = [block_size] *)
  decrypt : string -> string;  (** inverse permutation *)
  encrypt_into : into option;  (** zero-allocation fast path, if any *)
  decrypt_into : into option;
}

val v :
  name:string ->
  block_size:int ->
  encrypt:(string -> string) ->
  decrypt:(string -> string) ->
  ?encrypt_into:into ->
  ?decrypt_into:into ->
  unit ->
  t
(** Smart constructor; the [_into] fast paths default to absent. *)

val check_block : t -> string -> unit
(** @raise Invalid_argument if the string is not exactly one block. *)

val encrypt_into : t -> into
(** The cipher's fast path, or the generic fallback built from
    [t.encrypt].  Both agree byte-for-byte with the string closure (the
    bulk property suite enforces this). *)

val decrypt_into : t -> into

val has_fast_path : t -> bool
(** True iff [encrypt_into] is native rather than the generic fallback. *)

val zero_block : t -> string
(** A block of zero bytes. *)

val map_name : (string -> string) -> t -> t
(** Rename, keeping behaviour. *)

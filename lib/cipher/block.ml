type into = bytes -> src_off:int -> bytes -> dst_off:int -> unit

type t = {
  name : string;
  block_size : int;
  encrypt : string -> string;
  decrypt : string -> string;
  encrypt_into : into option;
  decrypt_into : into option;
}

let v ~name ~block_size ~encrypt ~decrypt ?encrypt_into ?decrypt_into () =
  { name; block_size; encrypt; decrypt; encrypt_into; decrypt_into }

let check_block t s =
  if String.length s <> t.block_size then
    invalid_arg
      (Printf.sprintf "%s: expected %d-byte block, got %d bytes" t.name
         t.block_size (String.length s))

(* Reads the whole source block before writing, so src and dst may be the
   same buffer at the same offset. *)
let generic_into bs f src ~src_off dst ~dst_off =
  let out = f (Bytes.sub_string src src_off bs) in
  Bytes.blit_string out 0 dst dst_off bs

let encrypt_into t =
  match t.encrypt_into with
  | Some f -> f
  | None -> generic_into t.block_size t.encrypt

let decrypt_into t =
  match t.decrypt_into with
  | Some f -> f
  | None -> generic_into t.block_size t.decrypt

let has_fast_path t = t.encrypt_into <> None

let zero_block t = String.make t.block_size '\000'
let map_name f t = { t with name = f t.name }

(** On-disk format for encrypted tables and indexes.

    The paper's threat model is exactly this artefact: "anyone with
    physical access to the machine or storage system holding the actual
    data can copy or modify it."  This module serialises the stored
    representation — clear structure, ciphertext payloads, {e no} keys —
    to a self-describing binary file, so the adversarial experiments can
    literally operate on bytes at rest.

    The format is deliberately unauthenticated as a whole: per-cell and
    per-entry protection is the scheme's job (that is the paper's point),
    and file-level corruption of lengths or tags is reported as a parse
    error rather than masked. *)

val magic : string
(** ["SECDB\x00\x01\x00"] — format identifier and version. *)

(** {2 Schemas} *)

val encode_schema : Secdb_db.Schema.t -> string
(** Canonical byte encoding of a schema (names, kinds, protection) — also
    the payload of replicated [CREATE TABLE] oplog records. *)

val decode_schema : string -> (Secdb_db.Schema.t, string) result

(** {2 Tables} *)

val encode_table : Secdb_query.Encrypted_table.t -> string
(** Serialise a table's stored representation (schema + rows). *)

val decode_table :
  scheme:(int -> Secdb_schemes.Cell_scheme.t) ->
  string ->
  (Secdb_query.Encrypted_table.t, string) result
(** Rebuild a table; [scheme] re-attaches the session's cell schemes
    (the file never contains key material). *)

val peek_table : string -> (int * Secdb_db.Schema.t, string) result
(** Parse just the table id and schema of an encoded table — enough to
    derive the session keys before a full {!decode_table}. *)

(** {2 Indexes} *)

val encode_index : Secdb_index.Bptree.t -> string
val decode_index :
  codec:Secdb_index.Bptree.codec -> string -> (Secdb_index.Bptree.t, string) result

(** {2 Merkle leaves}

    Canonical per-row / per-node byte strings for {!Merkle} anchoring;
    tombstones and freed slots are included so suppression changes the
    root. *)

val table_leaves : Secdb_query.Encrypted_table.t -> string list
val index_leaves : Secdb_index.Bptree.t -> string list

(** {2 Files} *)

val save_table : path:string -> Secdb_query.Encrypted_table.t -> unit
val load_table :
  path:string ->
  scheme:(int -> Secdb_schemes.Cell_scheme.t) ->
  (Secdb_query.Encrypted_table.t, string) result

val save_index : path:string -> Secdb_index.Bptree.t -> unit
val load_index :
  path:string ->
  codec:Secdb_index.Bptree.codec ->
  (Secdb_index.Bptree.t, string) result

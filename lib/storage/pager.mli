(** Page-based file storage with a buffer pool.

    The threat model's adversary owns "the machine or storage system
    holding the actual data"; this module is that storage system: a single
    file of fixed-size pages, a free list for recycling, and an LRU buffer
    pool in front of it with hit/miss accounting (experiment EXP24 replays
    index traversals through it).

    Layout: page 0 is the header (magic, page size, page count, free-list
    head); freed pages are chained through their first 8 bytes and are
    zeroized beyond that pointer the moment they are freed — the adversary
    reads the raw file, so stale ciphertext must not linger.  All page ids
    are > 0.

    All I/O goes through a {!Vfs} backend (default {!Vfs.unix}), so the
    crash-matrix tests can run the same code against an injected-fault
    disk.  The pager is not journalled: a crash between {!flush}es can
    lose or tear pages, and [secdb fsck] ({!Fsck}) is the tool that
    assesses a surviving image. *)

type t

type stats = {
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable writebacks : int;  (** dirty pages written back at eviction time *)
}

val magic : string
(** First 8 bytes of every pager file. *)

val header_size : int
(** Bytes of page 0 that carry the header fields (20). *)

val create : path:string -> ?page_size:int -> ?cache_pages:int -> ?vfs:Vfs.t -> unit -> t
(** Create (truncating any existing file).  [page_size] defaults to 4096
    bytes (min 64), [cache_pages] to 64 (min 1). *)

val open_file : path:string -> ?cache_pages:int -> ?vfs:Vfs.t -> unit -> (t, string) result
(** Open an existing pager file; the page size comes from the header.
    Reads the header with a retry loop (a single [pread] may return
    short) and validates it — bad magic, page size < 64 or a free-list
    head beyond the page count all return [Error] instead of yielding a
    pager that misbehaves later. *)

val page_size : t -> int
val page_count : t -> int
(** Pages ever allocated (including freed ones), excluding the header. *)

val free_head : t -> int
(** First page of the free list, 0 when empty (for {!Fsck}). *)

val alloc : t -> int
(** A zeroed page, recycled from the free list when possible. *)

val free : t -> int -> unit
(** Return a page to the free list.  The page is zeroized beyond its
    8-byte next pointer and written through to disk immediately (data
    remanence: the freed ciphertext must not outlive the free).
    @raise Invalid_argument on the header page or out-of-range ids. *)

val read : t -> int -> string
(** Full page contents, through the cache. *)

val write : t -> int -> string -> unit
(** Replace a page's contents (padded with zeros if short).
    @raise Invalid_argument if longer than a page. *)

val flush : t -> unit
(** Write back every dirty cached page and the header. *)

val sync : t -> unit
(** [fsync] the underlying file: make every flushed page durable. *)

val close : t -> unit
(** Flush, sync and release the file; further use raises. *)

val stats : t -> stats
val reset_stats : t -> unit

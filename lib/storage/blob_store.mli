(** Arbitrary-length byte strings over {!Pager} pages.

    A blob is a chain of pages: each page holds an 8-byte next-page id
    (0 = end), a 4-byte payload length, and payload bytes.  Blob ids are
    the chain's first page id.  Together with {!Pager} this gives the
    encrypted artefacts a realistic home on disk: tables and indexes are
    stored as blobs ({!save_table_paged} etc. in tests/experiments replay
    access traces through the buffer pool).

    Chain walks are bounded by the pager's page count (a chain cannot be
    longer than the file), so a corrupted next pointer that forms a cycle
    is detected in linear time and reported against the offending page. *)

type t

type chain_error = { page : int; reason : string }
(** A malformed chain, naming the page where the walk failed: an
    out-of-range id, a corrupt page header, or a cycle. *)

val chain_error_to_string : chain_error -> string

val attach : Pager.t -> t
(** Use (and share) a pager; blobs from different stores over the same
    pager coexist. *)

val store : t -> string -> int
(** Write a blob; returns its id. *)

val load : t -> int -> (string, chain_error) result
(** Read a blob back; [Error] on a malformed chain. *)

val overwrite : t -> int -> string -> int
(** Replace blob [id] with new contents, reusing its chain where possible;
    returns the (unchanged) id. *)

val delete : t -> int -> unit
(** Free the blob's pages. *)

val pages_of : t -> int -> (int list, chain_error) result
(** The page chain of a blob (for trace experiments and {!Fsck}). *)

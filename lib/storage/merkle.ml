let h = Secdb_hash.Sha256.digest
let leaf_hash l = h ("\x00" ^ l)
let node_hash a b = h ("\x01" ^ a ^ b)
let empty_root = h "\x02"

type proof = (string * [ `Left | `Right ]) list

let rec level = function
  | [] -> []
  | [ x ] -> [ x ]
  | a :: b :: rest -> node_hash a b :: level rest

let root leaves =
  match leaves with
  | [] -> empty_root
  | leaves ->
      let rec up = function [ r ] -> r | l -> up (level l) in
      up (List.map leaf_hash leaves)

let prove leaves ~index =
  let n = List.length leaves in
  if index < 0 || index >= n then invalid_arg "Merkle.prove: index out of range";
  let rec walk hashes i acc =
    match hashes with
    | [ _ ] -> List.rev acc
    | hashes ->
        let arr = Array.of_list hashes in
        let sibling, side =
          if i mod 2 = 0 then
            if i + 1 < Array.length arr then (Some arr.(i + 1), `Right) else (None, `Right)
          else (Some arr.(i - 1), `Left)
        in
        let acc = match sibling with Some s -> (s, side) :: acc | None -> acc in
        walk (level hashes) (i / 2) acc
  in
  walk (List.map leaf_hash leaves) index []

(* A SHA-256 tree over 2^64 leaves needs 64 sibling hashes; anything longer
   is garbage or an attempt to make verification do unbounded work. *)
let max_proof_len = 64

let verify ~root:expected ~leaf proof =
  if List.length proof > max_proof_len then false
  else if List.exists (fun (sibling, _) -> String.length sibling <> 32) proof then false
  else if String.length expected <> 32 then false
  else
    let final =
      List.fold_left
        (fun acc (sibling, side) ->
          match side with `Right -> node_hash acc sibling | `Left -> node_hash sibling acc)
        (leaf_hash leaf) proof
    in
    (* attestation roots cross the wire now: compare without an early-exit
       so a byte-guessing adversary learns nothing from timing *)
    Secdb_util.Xbytes.constant_time_equal final expected

(** Virtual file system: the seam between the storage engine and the disk.

    Every byte {!Pager}, {!Blob_store} and the oplog persist goes through a
    [Vfs.file], so one abstraction point decides whether the bytes reach a
    real file descriptor ({!unix}) or an in-memory disk that injects the
    failures real disks produce ({!Fault}): torn writes that persist only a
    prefix of a sector, short reads, [EIO]/[ENOSPC] at a chosen operation,
    and crash points that freeze the durable image mid-workload.

    The fault model is deliberately adversarial but deterministic: at a
    crash, data fsynced before the crash survives; writes since the last
    fsync are lost; the write in flight at the crash point survives as a
    seed-chosen {e strict prefix} (a torn sector).  That is the contract
    the recovery paths ([Oplog.recover], [Fsck.run]) are tested against. *)

exception Io_error of { op : string; path : string; reason : string }
(** An injected or real I/O failure ([EIO], [ENOSPC], ...). *)

exception Crashed of string
(** Raised by every operation on a fault VFS once its crash point has
    fired; the argument is the path of the file being touched. *)

type file = {
  path : string;
  pread : pos:int -> bytes -> off:int -> len:int -> int;
      (** Read up to [len] bytes at absolute [pos] into [buf] at [off];
          returns the count read, 0 at end of file.  May return short. *)
  pwrite : pos:int -> string -> off:int -> len:int -> int;
      (** Write up to [len] bytes at absolute [pos]; returns the count
          written.  May return short. *)
  fsync : unit -> unit;  (** Make every completed write durable. *)
  truncate : int -> unit;  (** Set the file length (zero-fill on grow). *)
  size : unit -> int;
  close : unit -> unit;
}

type mode = [ `Trunc  (** create or truncate, read-write *)
            | `Rw  (** existing file, read-write *)
            | `Read  (** existing file, read-only *) ]

type t = { name : string; open_file : path:string -> mode:mode -> file }
(** A backend. [open_file] raises {!Io_error} when the file cannot be
    opened (e.g. [`Rw] on a missing path). *)

val unix : t
(** Passthrough to the real file system. *)

(** {2 Robust helpers}

    [pread]/[pwrite] may return short (and the fault backend makes sure
    they do); these loop until done. *)

val really_pread : file -> pos:int -> bytes -> off:int -> len:int -> int
(** Read until [len] bytes or end of file; returns the count read. *)

val really_pwrite : file -> pos:int -> string -> unit
(** Write the whole string, looping over short writes. *)

val read_all : t -> path:string -> string
(** Open [`Read], read the whole file, close.  Raises {!Io_error}. *)

(** {2 Fault injection} *)

module Fault : sig
  type ctl
  (** An in-memory disk plus its fault plan.  All files opened through
      {!vfs} live on the same disk and share one crash point. *)

  val make : ?seed:int -> unit -> ctl
  (** Fresh empty disk; [seed] drives every nondeterministic choice
      (torn-write lengths, short-read lengths), so a failing run is
      replayed exactly by its seed. *)

  val vfs : ctl -> t

  (** {3 Programming faults} *)

  val crash_after_writes : ctl -> int -> unit
  (** Arm the crash point: the [n]-th {e subsequent} [pwrite] tears (a
      seed-chosen strict prefix of it persists), unsynced data is dropped,
      and {!Crashed} is raised from that write and every operation after
      it. *)

  val crash_now : ctl -> unit
  (** Fire the crash immediately (no write in flight). *)

  val fail_op : ctl -> op:[ `Pread | `Pwrite | `Fsync ] -> after:int -> err:[ `EIO | `ENOSPC ] -> unit
  (** Arm a one-shot error: the [after]-th subsequent operation of that
      kind raises {!Io_error} without touching the disk. *)

  val set_short_reads : ctl -> bool -> unit
  (** Make every multi-byte [pread] return a seed-chosen strict prefix. *)

  val set_torn_writes : ctl -> bool -> unit
  (** Make every multi-byte [pwrite] apply and report a seed-chosen
      strict prefix (no crash; callers must loop). *)

  (** {3 Observation} *)

  val write_count : ctl -> int
  (** Total [pwrite] calls so far (the crash-matrix coordinate space). *)

  val crashed : ctl -> bool

  val dump : ctl -> path:string -> string
  (** The durable image of [path]: after a crash, exactly what survived;
      before one, the current contents.  Raises {!Io_error} if the file
      was never created. *)

  val files : ctl -> string list
end

open Secdb_util

exception Io_error of { op : string; path : string; reason : string }
exception Crashed of string

type file = {
  path : string;
  pread : pos:int -> bytes -> off:int -> len:int -> int;
  pwrite : pos:int -> string -> off:int -> len:int -> int;
  fsync : unit -> unit;
  truncate : int -> unit;
  size : unit -> int;
  close : unit -> unit;
}

type mode = [ `Trunc | `Rw | `Read ]
type t = { name : string; open_file : path:string -> mode:mode -> file }

let io op path reason = raise (Io_error { op; path; reason })

(* --- passthrough backend ------------------------------------------------- *)

let unix : t =
  let open_file ~path ~mode =
    let flags =
      match mode with
      | `Trunc -> Unix.[ O_RDWR; O_CREAT; O_TRUNC ]
      | `Rw -> Unix.[ O_RDWR ]
      | `Read -> Unix.[ O_RDONLY ]
    in
    let guard op f =
      try f () with Unix.Unix_error (e, _, _) -> io op path (Unix.error_message e)
    in
    let fd = guard "open" (fun () -> Unix.openfile path flags 0o644) in
    {
      path;
      pread =
        (fun ~pos buf ~off ~len ->
          guard "pread"
            (fun () ->
              ignore (Unix.lseek fd pos Unix.SEEK_SET);
              Unix.read fd buf off len));
      pwrite =
        (fun ~pos s ~off ~len ->
          guard "pwrite"
            (fun () ->
              ignore (Unix.lseek fd pos Unix.SEEK_SET);
              Unix.write_substring fd s off len));
      fsync = (fun () -> guard "fsync" (fun () -> Unix.fsync fd));
      truncate = (fun n -> guard "truncate" (fun () -> Unix.ftruncate fd n));
      size = (fun () -> guard "size" (fun () -> (Unix.fstat fd).Unix.st_size));
      close = (fun () -> guard "close" (fun () -> Unix.close fd));
    }
  in
  { name = "unix"; open_file }

(* --- robust helpers ------------------------------------------------------ *)

let really_pread f ~pos buf ~off ~len =
  let rec go done_ =
    if done_ = len then len
    else
      let k = f.pread ~pos:(pos + done_) buf ~off:(off + done_) ~len:(len - done_) in
      if k = 0 then done_ else go (done_ + k)
  in
  go 0

let really_pwrite f ~pos s =
  let len = String.length s in
  let rec go done_ =
    if done_ < len then
      go (done_ + f.pwrite ~pos:(pos + done_) s ~off:done_ ~len:(len - done_))
  in
  go 0

let read_all t ~path =
  let f = t.open_file ~path ~mode:`Read in
  Fun.protect
    ~finally:(fun () -> f.close ())
    (fun () ->
      let n = f.size () in
      let buf = Bytes.create n in
      let got = really_pread f ~pos:0 buf ~off:0 ~len:n in
      Bytes.sub_string buf 0 got)

(* --- fault backend -------------------------------------------------------- *)

module Fault = struct
  (* One in-memory file: [data] is what reads observe (the OS view),
     [synced] is what would survive a crash (the platter view). *)
  type fstate = {
    mutable data : Bytes.t;
    mutable len : int;
    mutable synced : string;
  }

  type ctl = {
    tbl : (string, fstate) Hashtbl.t;
    rng : Rng.t;
    mutable writes : int;
    mutable reads : int;
    mutable fsyncs : int;
    mutable crash_at : int option;
    mutable is_crashed : bool;
    mutable short_reads : bool;
    mutable torn_writes : bool;
    mutable plan : ([ `Pread | `Pwrite | `Fsync ] * int * [ `EIO | `ENOSPC ]) list;
  }

  let make ?(seed = 0x7f5) () =
    {
      tbl = Hashtbl.create 4;
      rng = Rng.create ~seed:(Int64.of_int seed) ();
      writes = 0;
      reads = 0;
      fsyncs = 0;
      crash_at = None;
      is_crashed = false;
      short_reads = false;
      torn_writes = false;
      plan = [];
    }

  let crash_after_writes c n = c.crash_at <- Some (c.writes + n)
  let set_short_reads c b = c.short_reads <- b
  let set_torn_writes c b = c.torn_writes <- b
  let write_count c = c.writes
  let crashed c = c.is_crashed

  let fail_op c ~op ~after ~err =
    let count = match op with `Pread -> c.reads | `Pwrite -> c.writes | `Fsync -> c.fsyncs in
    c.plan <- (op, count + after, err) :: c.plan

  let check_plan c ~op ~count ~path =
    match List.find_opt (fun (o, n, _) -> o = op && n = count) c.plan with
    | None -> ()
    | Some ((_, _, err) as hit) ->
        c.plan <- List.filter (fun x -> x != hit) c.plan;
        let name = match op with `Pread -> "pread" | `Pwrite -> "pwrite" | `Fsync -> "fsync" in
        io name path (match err with `EIO -> "EIO (injected)" | `ENOSPC -> "ENOSPC (injected)")

  let ensure_capacity fs n =
    if Bytes.length fs.data < n then begin
      let cap = max 256 (max n (2 * Bytes.length fs.data)) in
      let d = Bytes.make cap '\000' in
      Bytes.blit fs.data 0 d 0 fs.len;
      fs.data <- d
    end

  let apply_write fs ~pos s ~off ~len =
    ensure_capacity fs (pos + len);
    if pos > fs.len then Bytes.fill fs.data fs.len (pos - fs.len) '\000';
    Bytes.blit_string s off fs.data pos len;
    fs.len <- max fs.len (pos + len)

  (* Crash: every file falls back to its last synced image; the in-flight
     write (if any) lands as a strict prefix on top of it. *)
  let crash c ~in_flight =
    Hashtbl.iter
      (fun _ fs ->
        fs.len <- String.length fs.synced;
        ensure_capacity fs fs.len;
        Bytes.blit_string fs.synced 0 fs.data 0 fs.len)
      c.tbl;
    (match in_flight with
    | None -> ()
    | Some (fs, pos, s, off, len) ->
        let torn = if len <= 1 then 0 else Rng.int c.rng len in
        if torn > 0 then apply_write fs ~pos s ~off ~len:torn);
    c.is_crashed <- true

  let crash_now c = if not c.is_crashed then crash c ~in_flight:None

  let guard c path = if c.is_crashed then raise (Crashed path)

  let lookup c path op =
    match Hashtbl.find_opt c.tbl path with
    | Some fs -> fs
    | None -> io op path "no such file (fault vfs)"

  let file_of c path fs =
    let pread ~pos buf ~off ~len =
      guard c path;
      c.reads <- c.reads + 1;
      check_plan c ~op:`Pread ~count:c.reads ~path;
      let avail = max 0 (min len (fs.len - pos)) in
      let n =
        if c.short_reads && avail > 1 then 1 + Rng.int c.rng (avail - 1) else avail
      in
      Bytes.blit fs.data pos buf off n;
      n
    in
    let pwrite ~pos s ~off ~len =
      guard c path;
      c.writes <- c.writes + 1;
      check_plan c ~op:`Pwrite ~count:c.writes ~path;
      (match c.crash_at with
      | Some n when c.writes >= n ->
          crash c ~in_flight:(Some (fs, pos, s, off, len));
          raise (Crashed path)
      | _ -> ());
      let n = if c.torn_writes && len > 1 then 1 + Rng.int c.rng (len - 1) else len in
      apply_write fs ~pos s ~off ~len:n;
      n
    in
    let fsync () =
      guard c path;
      c.fsyncs <- c.fsyncs + 1;
      check_plan c ~op:`Fsync ~count:c.fsyncs ~path;
      fs.synced <- Bytes.sub_string fs.data 0 fs.len
    in
    let truncate n =
      guard c path;
      if n < fs.len then fs.len <- n
      else begin
        ensure_capacity fs n;
        Bytes.fill fs.data fs.len (n - fs.len) '\000';
        fs.len <- n
      end
    in
    {
      path;
      pread;
      pwrite;
      fsync;
      truncate;
      size = (fun () -> guard c path; fs.len);
      close = ignore;  (* releasing an in-memory file is free, even post-crash *)
    }

  let vfs c =
    let open_file ~path ~mode =
      guard c path;
      let fs =
        match mode with
        | `Trunc ->
            let fs = { data = Bytes.create 256; len = 0; synced = "" } in
            Hashtbl.replace c.tbl path fs;
            fs
        | `Rw | `Read -> lookup c path "open"
      in
      file_of c path fs
    in
    { name = "fault"; open_file }

  let dump c ~path =
    let fs = lookup c path "dump" in
    Bytes.sub_string fs.data 0 fs.len

  let files c = Hashtbl.fold (fun k _ acc -> k :: acc) c.tbl []
end

(** Offline recovery checker for {!Pager} files ([secdb fsck]).

    After a crash the surviving image is whatever the {!Vfs} fault model
    (or a real disk) left behind.  [run] walks it without ever trusting a
    pointer: header fields are validated by {!Pager.open_file}, the free
    list is traversed with a visited set (cycles and wild pointers
    terminate and are reported), and each given blob root's chain is
    checked for bounds, cycles and overlap with the free list.  It always
    returns a report — a broken image yields issues, not exceptions. *)

type issue =
  | Header of string  (** unopenable or invalid header *)
  | Free_range of { page : int; next : int }
      (** free-list pointer leaves the file ([page] points at [next]) *)
  | Free_cycle of { page : int; steps : int }
  | Chain of { head : int; page : int; reason : string }
      (** blob chain [head] is malformed at [page] *)
  | Chain_free_overlap of { head : int; page : int }
      (** a live blob page is simultaneously on the free list *)
  | Trailing_garbage of { file_size : int; expected : int }
      (** bytes beyond the last page the header accounts for *)

type report = {
  path : string;
  page_size : int;
  npages : int;
  free : int list;  (** the free list, in list order *)
  chains : (int * int list) list;  (** each checked root and its pages *)
  issues : issue list;
}

val issue_to_string : issue -> string

val ok : report -> bool
(** [issues = []]. *)

val run : ?vfs:Vfs.t -> ?roots:int list -> path:string -> unit -> report
(** Check [path]; [roots] are blob ids whose chains should be walked. *)

(** A persistent B+-tree over {!Pager} pages — the paper's Section 4
    fixed-AEAD index taken off the heap and onto the storage system the
    adversary owns.

    Every node is one pager page: serialized with length-prefixed framing,
    then passed through a {!seal} that (in the {!aead_seal} production
    configuration) AEAD-encrypts the whole node with the {e page address as
    associated data} — swapping, replaying or truncating node pages in the
    raw file is detected at read time, exactly the address-binding argument
    of the paper's Section 4 fix, applied per node instead of per cell.
    Keys inside a decoded node are probed by binary search, and decoded
    nodes live in an LRU cache in front of the pager so datasets larger
    than RAM stay serveable while hot paths never touch the AEAD.

    Query semantics are identical to the in-memory {!Secdb_index.Bptree}:
    leftmost descent on equality, duplicates inserted to the right,
    [find]/[range] results in the same order — the QCheck suite pins the
    two implementations against each other on random workloads.

    The tree is not journalled: mutations live in the node cache (dirty
    nodes are written back on eviction) until {!flush}; a crash between
    flushes is recovered by replaying the oplog into a fresh tree, which
    the crash-matrix suite exercises. *)

module Value = Secdb_db.Value

type kind = Inner | Leaf

(** How node plaintext becomes page bytes.  [seal ~page m] must be
    deterministic in length; [unseal ~page] inverts it or reports why
    not. *)
type seal = {
  seal_name : string;
  seal : page:int -> string -> string;
  unseal : page:int -> string -> (string, string) result;
}

val plain_seal : seal
(** Identity seal — nodes stored as plaintext (tests, format debugging). *)

val aead_seal :
  aead:Secdb_aead.Aead.t -> nonce:Secdb_aead.Nonce.t -> tree_id:int -> seal
(** Page bytes are [nonce ∥ tag ∥ ciphertext] with associated data
    ["pbt1" ∥ tree_id ∥ page address] — a node page only decrypts at the
    address it was written to, under the tree it was written for. *)

exception Integrity of string
(** A node page failed to unseal or parse (tampering, or a reopened file
    whose key/tree id does not match). *)

type t

val create :
  pager:Pager.t -> seal:seal -> ?order:int -> ?cache_nodes:int -> id:int -> unit -> t
(** Allocate a meta page and an empty root leaf in [pager].  [order]
    defaults to 4 (min 2): max keys per node.  [cache_nodes] defaults to
    64 (min 8): decoded nodes kept in memory.  The caller must pick a
    pager page size large enough for [order]+1 encoded keys; oversized
    nodes raise [Invalid_argument] at write-back time. *)

val open_tree :
  pager:Pager.t -> seal:seal -> ?cache_nodes:int -> meta:int -> unit -> (t, string) result
(** Reopen a tree from its meta page (see {!meta_page}).  The meta page
    is sealed like any node, so a wrong key or wrong [tree_id] in
    {!aead_seal} surfaces here as [Error]. *)

val meta_page : t -> int
(** Page holding root/size/order — the tree's durable name; store it
    wherever the tree's existence is recorded. *)

val id : t -> int
val order : t -> int
val size : t -> int

val cached_nodes : t -> int
(** Decoded nodes currently in the cache (<= [cache_nodes]). *)

val height : t -> int

val insert : t -> Value.t -> table_row:int -> unit
(** Duplicates allowed; equal keys keep insertion order left-to-right. *)

val delete : t -> Value.t -> table_row:int -> bool
(** Remove one entry matching both value and row; [false] if absent. *)

val find : t -> Value.t -> int list
(** Table rows for all entries equal to the probe, insertion order. *)

val range : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> (Value.t * int) list
(** Entries with [lo <= value <= hi] (missing bound = unbounded), in key
    order, duplicates in insertion order. *)

val flush : t -> unit
(** Write back every dirty cached node and the meta page, then flush the
    pager's own cache.  Does not [fsync]; compose with {!Pager.sync}. *)

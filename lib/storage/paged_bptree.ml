open Secdb_util
module Metrics = Secdb_obs.Metrics
module Value = Secdb_db.Value
module Codec = Secdb_db.Codec

let m_node_loads = Metrics.counter "pbt.node_loads"
let m_node_writes = Metrics.counter "pbt.node_writes"
let m_cache_hits = Metrics.counter "pbt.cache_hits"
let m_evictions = Metrics.counter "pbt.evictions"

type kind = Inner | Leaf

type seal = {
  seal_name : string;
  seal : page:int -> string -> string;
  unseal : page:int -> string -> (string, string) result;
}

let plain_seal =
  {
    seal_name = "plain";
    seal = (fun ~page:_ m -> m);
    unseal = (fun ~page:_ b -> Ok b);
  }

let be8 = Xbytes.int_to_be_string ~width:8

let aead_seal ~aead ~nonce ~tree_id =
  let ad page = "pbt1" ^ be8 tree_id ^ be8 page in
  let ns = aead.Secdb_aead.Aead.nonce_size and ts = aead.Secdb_aead.Aead.tag_size in
  {
    seal_name = "aead:" ^ aead.Secdb_aead.Aead.name;
    seal =
      (fun ~page m ->
        let n = nonce () in
        let ct, tag = Secdb_aead.Aead.encrypt aead ~nonce:n ~ad:(ad page) m in
        n ^ tag ^ ct);
    unseal =
      (fun ~page b ->
        if String.length b < ns + ts then Error "sealed node too short"
        else
          let n = String.sub b 0 ns in
          let tag = String.sub b ns ts in
          let ct = String.sub b (ns + ts) (String.length b - ns - ts) in
          match Secdb_aead.Aead.decrypt aead ~nonce:n ~ad:(ad page) ~tag ct with
          | Ok m -> Ok m
          | Error Secdb_aead.Aead.Invalid -> Error "node AEAD authentication failed");
  }

exception Integrity of string

(* Decoded node, cached.  [rows] parallels [keys] on leaves; [children]
   has length keys+1 on inner nodes; [next] chains leaves (0 = none —
   page ids are > 0).  Cached nodes form an intrusive LRU list exactly
   like the pager's frames. *)
type cnode = {
  page : int;
  ckind : kind;
  mutable keys : Value.t array;
  mutable rows : int array;
  mutable children : int array;
  mutable next : int;
  mutable dirty : bool;
  mutable lru_prev : cnode option;
  mutable lru_next : cnode option;
}

type t = {
  pager : Pager.t;
  tree_seal : seal;
  tree_id : int;
  torder : int;
  meta : int;
  cache_nodes : int;
  cache : (int, cnode) Hashtbl.t;
  mutable lru_head : cnode option;
  mutable lru_tail : cnode option;
  mutable root : int;
  mutable tsize : int;
}

let meta_page t = t.meta
let id t = t.tree_id
let order t = t.torder
let size t = t.tsize
let cached_nodes t = Hashtbl.length t.cache
let min_keys t = t.torder / 2

(* --- node serialization ------------------------------------------------ *)

let meta_magic = "PBTM1"

let encode_node (n : cnode) =
  let keys = Codec.frame (Array.to_list (Array.map Value.encode n.keys)) in
  match n.ckind with
  | Leaf ->
      Codec.frame
        [ "L"; keys; String.concat "" (Array.to_list (Array.map be8 n.rows)); be8 n.next ]
  | Inner ->
      Codec.frame
        [ "I"; keys; String.concat "" (Array.to_list (Array.map be8 n.children)); "" ]

let ints_of_blob blob =
  let len = String.length blob in
  if len mod 8 <> 0 then Error "int list not a multiple of 8 bytes"
  else Ok (Array.init (len / 8) (fun i -> Xbytes.be_string_to_int (String.sub blob (i * 8) 8)))

let decode_node ~page plaintext =
  let ( let* ) = Result.bind in
  let* fields =
    match Codec.unframe plaintext with
    | Ok [ a; b; c; d ] -> Ok (a, b, c, d)
    | Ok _ -> Error "node: wrong field count"
    | Error e -> Error e
  in
  let tag, keys_blob, ints_blob, next_blob = fields in
  let* kl = Codec.unframe keys_blob in
  let* keys =
    List.fold_left
      (fun acc k ->
        let* acc = acc in
        let* v = Value.decode k in
        Ok (v :: acc))
      (Ok []) kl
  in
  let keys = Array.of_list (List.rev keys) in
  let* ints = ints_of_blob ints_blob in
  match tag with
  | "L" ->
      if Array.length ints <> Array.length keys then Error "leaf: row count mismatch"
      else if String.length next_blob <> 8 then Error "leaf: bad next pointer"
      else
        Ok
          {
            page;
            ckind = Leaf;
            keys;
            rows = ints;
            children = [||];
            next = Xbytes.be_string_to_int next_blob;
            dirty = false;
            lru_prev = None;
            lru_next = None;
          }
  | "I" ->
      if Array.length ints <> Array.length keys + 1 then Error "inner: child count mismatch"
      else if next_blob <> "" then Error "inner: trailing data"
      else
        Ok
          {
            page;
            ckind = Inner;
            keys;
            rows = [||];
            children = ints;
            next = 0;
            dirty = false;
            lru_prev = None;
            lru_next = None;
          }
  | _ -> Error "node: unknown kind tag"

(* --- page I/O ----------------------------------------------------------- *)

(* Page layout: [len:4][sealed bytes], zero-padded to the page size. *)

let write_page t ~page body =
  let sealed = t.tree_seal.seal ~page body in
  if 4 + String.length sealed > Pager.page_size t.pager then
    invalid_arg
      (Printf.sprintf "Paged_bptree: node needs %d bytes, page holds %d"
         (4 + String.length sealed)
         (Pager.page_size t.pager));
  Pager.write t.pager page (Xbytes.int_to_be_string ~width:4 (String.length sealed) ^ sealed)

let read_page t ~page =
  let raw = Pager.read t.pager page in
  let len = Xbytes.be_string_to_int (String.sub raw 0 4) in
  if 4 + len > String.length raw then Error "sealed length exceeds the page"
  else t.tree_seal.unseal ~page (String.sub raw 4 len)

let write_node t (n : cnode) =
  write_page t ~page:n.page (encode_node n);
  Metrics.incr m_node_writes

let write_meta t =
  write_page t ~page:t.meta
    (Codec.frame [ meta_magic; be8 t.tree_id; be8 t.torder; be8 t.root; be8 t.tsize ])

(* --- node cache --------------------------------------------------------- *)

let lru_unlink t n =
  (match n.lru_prev with
  | Some p -> p.lru_next <- n.lru_next
  | None -> t.lru_head <- n.lru_next);
  (match n.lru_next with
  | Some x -> x.lru_prev <- n.lru_prev
  | None -> t.lru_tail <- n.lru_prev);
  n.lru_prev <- None;
  n.lru_next <- None

let lru_push_front t n =
  n.lru_prev <- None;
  n.lru_next <- t.lru_head;
  (match t.lru_head with Some h -> h.lru_prev <- Some n | None -> t.lru_tail <- Some n);
  t.lru_head <- Some n

let touch t n =
  match t.lru_head with
  | Some h when h == n -> ()
  | _ ->
      lru_unlink t n;
      lru_push_front t n

let evict_one t =
  match t.lru_tail with
  | None -> ()
  | Some victim ->
      if victim.dirty then write_node t victim;
      lru_unlink t victim;
      Hashtbl.remove t.cache victim.page;
      Metrics.incr m_evictions

let insert_cnode t n =
  if Hashtbl.length t.cache >= t.cache_nodes then evict_one t;
  lru_push_front t n;
  Hashtbl.replace t.cache n.page n

(* Fetch a node through the cache.

   Caller discipline: a [cnode] reference must not be mutated after any
   intervening [node_of]/[alloc_node] call chain longer than
   [cache_nodes - 4] loads (it may have been evicted, so writes would be
   lost) — the tree algorithms below re-fetch nodes after every recursive
   call, and [cache_nodes >= 8] guarantees the handful of nodes touched
   inside one straight-line rebalance step are never the eviction
   victim. *)
let node_of t page =
  match Hashtbl.find_opt t.cache page with
  | Some n ->
      Metrics.incr m_cache_hits;
      touch t n;
      n
  | None -> (
      match read_page t ~page with
      | Error e -> raise (Integrity (Printf.sprintf "node page %d: %s" page e))
      | Ok plaintext -> (
          match decode_node ~page plaintext with
          | Error e -> raise (Integrity (Printf.sprintf "node page %d: %s" page e))
          | Ok n ->
              Metrics.incr m_node_loads;
              insert_cnode t n;
              n))

let alloc_node t ckind =
  let page = Pager.alloc t.pager in
  let n =
    { page; ckind; keys = [||]; rows = [||]; children = [||]; next = 0; dirty = true;
      lru_prev = None; lru_next = None }
  in
  insert_cnode t n;
  n

let free_node t page =
  (match Hashtbl.find_opt t.cache page with
  | Some n ->
      lru_unlink t n;
      Hashtbl.remove t.cache page
  | None -> ());
  Pager.free t.pager page

(* --- lifecycle ---------------------------------------------------------- *)

let create ~pager ~seal ?(order = 4) ?(cache_nodes = 64) ~id () =
  if order < 2 then invalid_arg "Paged_bptree.create: order must be >= 2";
  if cache_nodes < 8 then invalid_arg "Paged_bptree.create: cache_nodes must be >= 8";
  let meta = Pager.alloc pager in
  let t =
    { pager; tree_seal = seal; tree_id = id; torder = order; meta; cache_nodes;
      cache = Hashtbl.create cache_nodes; lru_head = None; lru_tail = None; root = 0;
      tsize = 0 }
  in
  let root = alloc_node t Leaf in
  t.root <- root.page;
  write_meta t;
  t

let open_tree ~pager ~seal ?(cache_nodes = 64) ~meta () =
  if cache_nodes < 8 then invalid_arg "Paged_bptree.open_tree: cache_nodes must be >= 8";
  let fail fmt = Printf.ksprintf (fun s -> Error ("Paged_bptree.open_tree: " ^ s)) fmt in
  if meta < 1 || meta > Pager.page_count pager then fail "meta page %d out of range" meta
  else
    let t0 =
      { pager; tree_seal = seal; tree_id = 0; torder = 2; meta; cache_nodes;
        cache = Hashtbl.create cache_nodes; lru_head = None; lru_tail = None; root = 0;
        tsize = 0 }
    in
    match read_page t0 ~page:meta with
    | Error e -> fail "meta page %d: %s" meta e
    | Ok plaintext -> (
        match Codec.unframe plaintext with
        | Ok [ magic; idb; orderb; rootb; sizeb ]
          when magic = meta_magic
               && String.length idb = 8 && String.length orderb = 8
               && String.length rootb = 8 && String.length sizeb = 8 ->
            let tree_id = Xbytes.be_string_to_int idb in
            let order = Xbytes.be_string_to_int orderb in
            let root = Xbytes.be_string_to_int rootb in
            let tsize = Xbytes.be_string_to_int sizeb in
            if order < 2 then fail "invalid order %d" order
            else if root < 1 || root > Pager.page_count pager then
              fail "root page %d out of range" root
            else if tsize < 0 then fail "invalid size %d" tsize
            else Ok { t0 with tree_id; torder = order; root; tsize }
        | Ok _ -> fail "meta page %d is not a tree meta" meta
        | Error e -> fail "meta page %d: %s" meta e)

let flush t =
  Hashtbl.iter
    (fun _ n ->
      if n.dirty then begin
        write_node t n;
        n.dirty <- false
      end)
    t.cache;
  write_meta t;
  Pager.flush t.pager

(* --- in-node binary search --------------------------------------------- *)

(* First index with keys.(i) >= probe (leftmost on equality). *)
let lower_bound (keys : Value.t array) probe =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare keys.(mid) probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with keys.(i) > probe (duplicates go right). *)
let upper_bound (keys : Value.t array) probe =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare keys.(mid) probe <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert arr i v =
  Array.append (Array.sub arr 0 i) (Array.append [| v |] (Array.sub arr i (Array.length arr - i)))

let array_remove arr i =
  Array.append (Array.sub arr 0 i) (Array.sub arr (i + 1) (Array.length arr - i - 1))

(* --- insertion ---------------------------------------------------------- *)

(* Split a full node; returns (separator, new right page). *)
let split_node t page =
  let n = node_of t page in
  let right = alloc_node t n.ckind in
  let k = Array.length n.keys in
  let mid = k / 2 in
  n.dirty <- true;
  match n.ckind with
  | Leaf ->
      right.keys <- Array.sub n.keys mid (k - mid);
      right.rows <- Array.sub n.rows mid (k - mid);
      right.next <- n.next;
      n.keys <- Array.sub n.keys 0 mid;
      n.rows <- Array.sub n.rows 0 mid;
      n.next <- right.page;
      (right.keys.(0), right.page)
  | Inner ->
      let sep = n.keys.(mid) in
      right.keys <- Array.sub n.keys (mid + 1) (k - mid - 1);
      right.children <- Array.sub n.children (mid + 1) (k - mid);
      n.keys <- Array.sub n.keys 0 mid;
      n.children <- Array.sub n.children 0 (mid + 1);
      (sep, right.page)

let insert t value ~table_row =
  let rec ins page =
    let n = node_of t page in
    match n.ckind with
    | Leaf ->
        let pos = upper_bound n.keys value in
        n.keys <- array_insert n.keys pos value;
        n.rows <- array_insert n.rows pos table_row;
        n.dirty <- true;
        if Array.length n.keys > t.torder then Some (split_node t page) else None
    | Inner -> (
        let idx = upper_bound n.keys value in
        let child = n.children.(idx) in
        match ins child with
        | None -> None
        | Some (sep, right_page) ->
            (* the recursion may have evicted [n]; re-fetch before mutating *)
            let n = node_of t page in
            n.keys <- array_insert n.keys idx sep;
            n.children <- array_insert n.children (idx + 1) right_page;
            n.dirty <- true;
            if Array.length n.keys > t.torder then Some (split_node t page) else None)
  in
  (match ins t.root with
  | None -> ()
  | Some (sep, right_page) ->
      let old_root = t.root in
      let nr = alloc_node t Inner in
      nr.keys <- [| sep |];
      nr.children <- [| old_root; right_page |];
      t.root <- nr.page);
  t.tsize <- t.tsize + 1

(* --- lookup ------------------------------------------------------------- *)

let leftmost_leaf_for t probe =
  let rec loop page =
    let n = node_of t page in
    match n.ckind with Leaf -> page | Inner -> loop n.children.(lower_bound n.keys probe)
  in
  loop t.root

let first_leaf t =
  let rec loop page =
    let n = node_of t page in
    match n.ckind with Leaf -> page | Inner -> loop n.children.(0)
  in
  loop t.root

(* Scan the leaf chain from [page] applying [f value table_row] while it
   returns [`Continue].  The key/row arrays are captured before following
   [next], so eviction of the node record mid-scan is harmless. *)
let scan_from t page f =
  let rec loop page =
    let n = node_of t page in
    let keys = n.keys and rows = n.rows and next = n.next in
    let stop = ref false in
    let i = ref 0 in
    while (not !stop) && !i < Array.length keys do
      (match f keys.(!i) rows.(!i) with `Continue -> () | `Stop -> stop := true);
      incr i
    done;
    if (not !stop) && next <> 0 then loop next
  in
  loop page

let find t probe =
  let leaf = leftmost_leaf_for t probe in
  let acc = ref [] in
  scan_from t leaf (fun value row ->
      let c = Value.compare value probe in
      if c < 0 then `Continue
      else if c = 0 then begin
        acc := row :: !acc;
        `Continue
      end
      else `Stop);
  List.rev !acc

let range t ?lo ?hi () =
  let leaf = match lo with Some v -> leftmost_leaf_for t v | None -> first_leaf t in
  let acc = ref [] in
  scan_from t leaf (fun value row ->
      let below = match lo with Some v -> Value.compare value v < 0 | None -> false in
      let above = match hi with Some v -> Value.compare value v > 0 | None -> false in
      if above then `Stop
      else begin
        if not below then acc := (value, row) :: !acc;
        `Continue
      end);
  List.rev !acc

let height t =
  let rec loop page acc =
    let n = node_of t page in
    match n.ckind with Leaf -> acc | Inner -> loop n.children.(0) (acc + 1)
  in
  loop t.root 1

(* --- deletion ----------------------------------------------------------- *)

(* Rebalance child [idx] of the node at [parent_page] after a removal
   left it underfull.  All involved nodes (parent, child, both
   neighbours) are loaded up front; with cache_nodes >= 8 none of them
   can be evicted before the mutations below complete. *)
let fix_child t parent_page idx =
  let parent = node_of t parent_page in
  let child = node_of t parent.children.(idx) in
  if Array.length child.keys >= min_keys t then ()
  else begin
    let nch = Array.length parent.children in
    let left = if idx > 0 then Some (node_of t parent.children.(idx - 1)) else None in
    let right = if idx < nch - 1 then Some (node_of t parent.children.(idx + 1)) else None in
    let can_lend = function Some n -> Array.length n.keys > min_keys t | None -> false in
    parent.dirty <- true;
    child.dirty <- true;
    if can_lend right then begin
      let r = Option.get right in
      r.dirty <- true;
      (match child.ckind with
      | Leaf ->
          child.keys <- Array.append child.keys [| r.keys.(0) |];
          child.rows <- Array.append child.rows [| r.rows.(0) |];
          r.keys <- array_remove r.keys 0;
          r.rows <- array_remove r.rows 0;
          parent.keys.(idx) <- r.keys.(0)
      | Inner ->
          let sep = parent.keys.(idx) in
          child.keys <- Array.append child.keys [| sep |];
          child.children <- Array.append child.children [| r.children.(0) |];
          parent.keys.(idx) <- r.keys.(0);
          r.keys <- array_remove r.keys 0;
          r.children <- array_remove r.children 0)
    end
    else if can_lend left then begin
      let l = Option.get left in
      let lk = Array.length l.keys in
      l.dirty <- true;
      match child.ckind with
      | Leaf ->
          child.keys <- array_insert child.keys 0 l.keys.(lk - 1);
          child.rows <- array_insert child.rows 0 l.rows.(lk - 1);
          l.keys <- array_remove l.keys (lk - 1);
          l.rows <- array_remove l.rows (lk - 1);
          parent.keys.(idx - 1) <- child.keys.(0)
      | Inner ->
          let sep = parent.keys.(idx - 1) in
          child.keys <- array_insert child.keys 0 sep;
          child.children <- array_insert child.children 0 l.children.(lk);
          parent.keys.(idx - 1) <- l.keys.(lk - 1);
          l.keys <- array_remove l.keys (lk - 1);
          l.children <- array_remove l.children lk
    end
    else begin
      (* merge child with a sibling; normalise to a (left, right) pair *)
      let lidx, l, r =
        match left with Some l -> (idx - 1, l, child) | None -> (idx, child, Option.get right)
      in
      l.dirty <- true;
      (match l.ckind with
      | Leaf ->
          l.keys <- Array.append l.keys r.keys;
          l.rows <- Array.append l.rows r.rows;
          l.next <- r.next
      | Inner ->
          let sep = parent.keys.(lidx) in
          l.keys <- Array.concat [ l.keys; [| sep |]; r.keys ];
          l.children <- Array.append l.children r.children);
      parent.keys <- array_remove parent.keys lidx;
      parent.children <- array_remove parent.children (lidx + 1);
      free_node t r.page
    end
  end

let delete t probe ~table_row =
  (* [del page] returns true iff one matching entry was removed below. *)
  let rec del page =
    let n = node_of t page in
    match n.ckind with
    | Leaf ->
        let k = Array.length n.keys in
        let found = ref None in
        let i = ref (lower_bound n.keys probe) in
        while
          !found = None && !i < k && Value.compare n.keys.(!i) probe = 0
        do
          if n.rows.(!i) = table_row then found := Some !i;
          incr i
        done;
        (match !found with
        | Some i ->
            n.keys <- array_remove n.keys i;
            n.rows <- array_remove n.rows i;
            n.dirty <- true
        | None -> ());
        !found <> None
    | Inner ->
        (* duplicates may straddle separators equal to the probe: try every
           candidate subtree left to right until one succeeds *)
        let keys = n.keys and children = n.children in
        let k = Array.length keys in
        let first = lower_bound keys probe in
        let rec try_child idx =
          if idx > k then false
          else if idx > first && Value.compare probe keys.(idx - 1) < 0 then false
          else if del children.(idx) then begin
            fix_child t page idx;
            true
          end
          else try_child (idx + 1)
        in
        try_child first
  in
  let removed = del t.root in
  if removed then begin
    t.tsize <- t.tsize - 1;
    let root = node_of t t.root in
    if root.ckind = Inner && Array.length root.keys = 0 then begin
      let only_child = root.children.(0) in
      free_node t t.root;
      t.root <- only_child
    end
  end;
  removed

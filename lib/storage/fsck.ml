open Secdb_util

type issue =
  | Header of string
  | Free_range of { page : int; next : int }
  | Free_cycle of { page : int; steps : int }
  | Chain of { head : int; page : int; reason : string }
  | Chain_free_overlap of { head : int; page : int }
  | Trailing_garbage of { file_size : int; expected : int }

type report = {
  path : string;
  page_size : int;
  npages : int;
  free : int list;
  chains : (int * int list) list;
  issues : issue list;
}

let issue_to_string = function
  | Header m -> Printf.sprintf "header: %s" m
  | Free_range { page; next } ->
      Printf.sprintf "free list: page %d points to %d, out of range" page next
  | Free_cycle { page; steps } ->
      Printf.sprintf "free list: cycle through page %d after %d steps" page steps
  | Chain { head; page; reason } -> Printf.sprintf "blob %d: page %d: %s" head page reason
  | Chain_free_overlap { head; page } ->
      Printf.sprintf "blob %d: page %d is also on the free list" head page
  | Trailing_garbage { file_size; expected } ->
      Printf.sprintf "file is %d bytes but the header accounts for at most %d" file_size expected

let ok r = r.issues = []

let run ?(vfs = Vfs.unix) ?(roots = []) ~path () =
  match Pager.open_file ~path ~vfs () with
  | Error e ->
      (* header sanity is open_file's validation; a file we cannot even
         open still gets a (failing) report rather than an exception *)
      { path; page_size = 0; npages = 0; free = []; chains = []; issues = [ Header e ] }
  | Ok pager ->
      Fun.protect
        ~finally:(fun () -> try Pager.close pager with Vfs.Io_error _ -> ())
        (fun () ->
          let psize = Pager.page_size pager in
          let npages = Pager.page_count pager in
          let issues = ref [] in
          let add i = issues := i :: !issues in
          (* file size vs header page count: bytes past the last allocated
             page belong to no page and are unreachable garbage *)
          (match vfs.Vfs.open_file ~path ~mode:`Read with
          | f ->
              let sz = f.Vfs.size () in
              f.Vfs.close ();
              let expected = (npages + 1) * psize in
              if sz > expected then add (Trailing_garbage { file_size = sz; expected })
          | exception Vfs.Io_error _ -> ());
          (* free list: bounded walk with a visited set, so cycles and
             wild pointers terminate and are named *)
          let free_pages =
            let seen = Hashtbl.create 16 in
            let rec walk page prev acc steps =
              if page = 0 then List.rev acc
              else if page < 1 || page > npages then begin
                add (Free_range { page = prev; next = page });
                List.rev acc
              end
              else if Hashtbl.mem seen page then begin
                add (Free_cycle { page; steps });
                List.rev acc
              end
              else begin
                Hashtbl.add seen page ();
                (* a garbage page can hold a pointer too large for an int:
                   decode defensively and report it as out of range *)
                let next =
                  match
                    Xbytes.be_string_to_int (String.sub (Pager.read pager page) 0 8)
                  with
                  | n -> n
                  | exception Invalid_argument _ -> max_int
                in
                walk next page (page :: acc) (steps + 1)
              end
            in
            walk (Pager.free_head pager) 0 [] 0
          in
          let free_set = Hashtbl.create 16 in
          List.iter (fun p -> Hashtbl.replace free_set p ()) free_pages;
          (* blob chains: bounds, cycles (via Blob_store's bounded walk)
             and overlap with the free list *)
          let blob = Blob_store.attach pager in
          let chains =
            List.map
              (fun head ->
                match Blob_store.pages_of blob head with
                | Error { Blob_store.page; reason } ->
                    add (Chain { head; page; reason });
                    (head, [])
                | Ok pages ->
                    List.iter
                      (fun p ->
                        if Hashtbl.mem free_set p then
                          add (Chain_free_overlap { head; page = p }))
                      pages;
                    (head, pages))
              roots
          in
          { path; page_size = psize; npages; free = free_pages; chains; issues = List.rev !issues })

open Secdb_util
module Metrics = Secdb_obs.Metrics

(* Global mirrors of the per-pager [stats] record, so a workload's cache
   behaviour shows up in the process-wide registry without holding on to
   every pager handle. *)
let m_cache_hits = Metrics.counter "pager.cache_hits"
let m_cache_misses = Metrics.counter "pager.cache_misses"

(* derived gauge: hits as a percentage of all lookups, process-wide — a
   first-class cost-model input for the SQL planner (paged index probes
   get cheaper as this rises), refreshed on every cached lookup *)
let g_hit_rate = Metrics.gauge "pager.hit_rate"

let publish_hit_rate () =
  if Secdb_obs.Obs.on () then begin
    let h = Metrics.value m_cache_hits and m = Metrics.value m_cache_misses in
    if h + m > 0 then Metrics.set g_hit_rate (h * 100 / (h + m))
  end
let m_evictions = Metrics.counter "pager.evictions"
let m_writebacks = Metrics.counter "pager.writebacks"
let m_disk_reads = Metrics.counter "pager.disk_reads"
let m_disk_writes = Metrics.counter "pager.disk_writes"

let magic = "SECDBPG1"
let header_size = 20

type stats = {
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

(* Frames form an intrusive doubly-linked LRU list (head = most recently
   used, tail = eviction victim), so a cache miss evicts in O(1) instead
   of scanning the whole table. *)
type frame = {
  page : int;
  mutable data : bytes;
  mutable dirty : bool;
  mutable lru_prev : frame option; (* towards the head / MRU end *)
  mutable lru_next : frame option; (* towards the tail / LRU end *)
}

type t = {
  vf : Vfs.file;
  psize : int;
  cache_pages : int;
  cache : (int, frame) Hashtbl.t;
  st : stats;
  mutable npages : int; (* allocated pages, header excluded *)
  mutable free_head : int; (* 0 = none *)
  mutable lru_head : frame option;
  mutable lru_tail : frame option;
  mutable closed : bool;
}

let fresh_stats () =
  { disk_reads = 0; disk_writes = 0; cache_hits = 0; cache_misses = 0; evictions = 0;
    writebacks = 0 }

let check_open t = if t.closed then invalid_arg "Pager: file is closed"

let disk_read t page =
  let buf = Bytes.make t.psize '\000' in
  (* a short file reads as zeros beyond its end *)
  ignore (Vfs.really_pread t.vf ~pos:(page * t.psize) buf ~off:0 ~len:t.psize);
  t.st.disk_reads <- t.st.disk_reads + 1;
  Metrics.incr m_disk_reads;
  buf

let disk_write t page data =
  (* unsafe_to_string: the vfs does not retain the buffer past the call *)
  Vfs.really_pwrite t.vf ~pos:(page * t.psize) (Bytes.unsafe_to_string data);
  t.st.disk_writes <- t.st.disk_writes + 1;
  Metrics.incr m_disk_writes

let header_bytes t =
  let b = Bytes.make t.psize '\000' in
  Bytes.blit_string magic 0 b 0 8;
  Xbytes.set_uint32_be b 8 t.psize;
  Xbytes.set_uint32_be b 12 t.npages;
  Xbytes.set_uint32_be b 16 t.free_head;
  b

let write_header t = disk_write t 0 (header_bytes t)

(* --- cache ---------------------------------------------------------------- *)

let lru_unlink t f =
  (match f.lru_prev with
  | Some p -> p.lru_next <- f.lru_next
  | None -> t.lru_head <- f.lru_next);
  (match f.lru_next with
  | Some n -> n.lru_prev <- f.lru_prev
  | None -> t.lru_tail <- f.lru_prev);
  f.lru_prev <- None;
  f.lru_next <- None

let lru_push_front t f =
  f.lru_prev <- None;
  f.lru_next <- t.lru_head;
  (match t.lru_head with Some h -> h.lru_prev <- Some f | None -> t.lru_tail <- Some f);
  t.lru_head <- Some f

(* Move to the MRU end.  Already-front frames (the common hot-path case)
   cost two pointer reads and no writes. *)
let touch t f =
  match t.lru_head with
  | Some h when h == f -> ()
  | _ ->
      lru_unlink t f;
      lru_push_front t f

let evict_one t =
  match t.lru_tail with
  | None -> ()
  | Some victim ->
      if victim.dirty then begin
        disk_write t victim.page victim.data;
        t.st.writebacks <- t.st.writebacks + 1;
        Metrics.incr m_writebacks
      end;
      lru_unlink t victim;
      Hashtbl.remove t.cache victim.page;
      t.st.evictions <- t.st.evictions + 1;
      Metrics.incr m_evictions

let insert_frame t page data ~dirty =
  if Hashtbl.length t.cache >= t.cache_pages then evict_one t;
  let f = { page; data; dirty; lru_prev = None; lru_next = None } in
  lru_push_front t f;
  Hashtbl.replace t.cache page f;
  f

let frame_of t page =
  match Hashtbl.find_opt t.cache page with
  | Some f ->
      t.st.cache_hits <- t.st.cache_hits + 1;
      Metrics.incr m_cache_hits;
      publish_hit_rate ();
      touch t f;
      f
  | None ->
      t.st.cache_misses <- t.st.cache_misses + 1;
      Metrics.incr m_cache_misses;
      publish_hit_rate ();
      insert_frame t page (disk_read t page) ~dirty:false

(* --- API ------------------------------------------------------------------ *)

let create ~path ?(page_size = 4096) ?(cache_pages = 64) ?(vfs = Vfs.unix) () =
  if page_size < 64 then invalid_arg "Pager.create: page size too small";
  if cache_pages < 1 then invalid_arg "Pager.create: cache must hold a page";
  let vf = vfs.Vfs.open_file ~path ~mode:`Trunc in
  let t =
    {
      vf;
      psize = page_size;
      cache_pages;
      cache = Hashtbl.create cache_pages;
      st = fresh_stats ();
      npages = 0;
      free_head = 0;
      lru_head = None;
      lru_tail = None;
      closed = false;
    }
  in
  write_header t;
  t

let open_file ~path ?(cache_pages = 64) ?(vfs = Vfs.unix) () =
  match vfs.Vfs.open_file ~path ~mode:`Rw with
  | exception Vfs.Io_error { reason; _ } -> Error ("Pager.open_file: " ^ reason)
  | vf -> (
      let fail msg =
        (try vf.Vfs.close () with Vfs.Io_error _ -> ());
        Error msg
      in
      let head = Bytes.create header_size in
      (* a single pread may return short even on a healthy file; loop *)
      match Vfs.really_pread vf ~pos:0 head ~off:0 ~len:header_size with
      | exception Vfs.Io_error { reason; _ } -> fail ("Pager.open_file: " ^ reason)
      | n ->
          if n < header_size || Bytes.sub_string head 0 8 <> magic then
            fail "Pager.open_file: not a pager file"
          else
            let hs = Bytes.to_string head in
            let psize = Xbytes.get_uint32_be hs 8 in
            let npages = Xbytes.get_uint32_be hs 12 in
            let free_head = Xbytes.get_uint32_be hs 16 in
            if psize < 64 then
              fail (Printf.sprintf "Pager.open_file: invalid page size %d" psize)
            else if npages < 0 then
              fail (Printf.sprintf "Pager.open_file: invalid page count %d" npages)
            else if free_head < 0 || free_head > npages then
              fail
                (Printf.sprintf "Pager.open_file: free-list head %d out of range (0..%d)"
                   free_head npages)
            else
              Ok
                {
                  vf;
                  psize;
                  cache_pages;
                  cache = Hashtbl.create cache_pages;
                  st = fresh_stats ();
                  npages;
                  free_head;
                  lru_head = None;
                  lru_tail = None;
                  closed = false;
                })

let page_size t = t.psize
let page_count t = t.npages
let free_head t = t.free_head

let check_page t page op =
  if page < 1 || page > t.npages then
    invalid_arg (Printf.sprintf "Pager.%s: page %d out of range" op page)

let read t page =
  check_open t;
  check_page t page "read";
  Bytes.to_string (frame_of t page).data

let write t page data =
  check_open t;
  check_page t page "write";
  if String.length data > t.psize then invalid_arg "Pager.write: data exceeds the page size";
  let f = frame_of t page in
  let padded = Bytes.make t.psize '\000' in
  Bytes.blit_string data 0 padded 0 (String.length data);
  f.data <- padded;
  f.dirty <- true

let alloc t =
  check_open t;
  if t.free_head <> 0 then begin
    let page = t.free_head in
    let next = Xbytes.be_string_to_int (String.sub (read t page) 0 8) in
    t.free_head <- next;
    write t page "";
    page
  end
  else begin
    t.npages <- t.npages + 1;
    let page = t.npages in
    (* materialise the page in cache as zeros *)
    ignore (insert_frame t page (Bytes.make t.psize '\000') ~dirty:true);
    page
  end

let free t page =
  check_open t;
  check_page t page "free";
  (* The adversary reads the raw file, so a freed page must not keep its
     old ciphertext waiting for the next flush: zeroize everything beyond
     the 8-byte free-list pointer and write through immediately. *)
  let buf = Bytes.make t.psize '\000' in
  Bytes.blit_string (Xbytes.int_to_be_string ~width:8 t.free_head) 0 buf 0 8;
  (match Hashtbl.find_opt t.cache page with
  | Some f ->
      f.data <- buf;
      f.dirty <- false;
      touch t f
  | None -> ());
  disk_write t page buf;
  t.free_head <- page

let flush t =
  check_open t;
  Hashtbl.iter
    (fun page frame ->
      if frame.dirty then begin
        disk_write t page frame.data;
        frame.dirty <- false
      end)
    t.cache;
  write_header t

let sync t =
  check_open t;
  t.vf.Vfs.fsync ()

let close t =
  if not t.closed then begin
    flush t;
    sync t;
    t.vf.Vfs.close ();
    t.closed <- true
  end

let stats t = t.st

let reset_stats t =
  t.st.disk_reads <- 0;
  t.st.disk_writes <- 0;
  t.st.cache_hits <- 0;
  t.st.cache_misses <- 0;
  t.st.evictions <- 0;
  t.st.writebacks <- 0

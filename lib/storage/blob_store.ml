open Secdb_util
module Metrics = Secdb_obs.Metrics

let m_stores = Metrics.counter "blob.stores"
let m_loads = Metrics.counter "blob.loads"
let m_deletes = Metrics.counter "blob.deletes"
let m_pages_read = Metrics.counter "blob.pages_read"
let m_pages_written = Metrics.counter "blob.pages_written"
let m_bytes_stored = Metrics.counter "blob.bytes_stored"
let m_bytes_loaded = Metrics.counter "blob.bytes_loaded"

type t = { pager : Pager.t }

let attach pager = { pager }

let header_size = 12 (* 8-byte next + 4-byte length *)
let payload_capacity t = Pager.page_size t.pager - header_size

let encode_page ~next ~chunk =
  Xbytes.int_to_be_string ~width:8 next ^ Xbytes.int_to_be_string ~width:4 (String.length chunk)
  ^ chunk

let decode_page t page =
  Metrics.incr m_pages_read;
  let raw = Pager.read t.pager page in
  let next = Xbytes.be_string_to_int (String.sub raw 0 8) in
  let len = Xbytes.be_string_to_int (String.sub raw 8 4) in
  if len > payload_capacity t then Error (Printf.sprintf "blob: corrupt page %d" page)
  else Ok (next, String.sub raw header_size len)

let chunks t data =
  let cap = payload_capacity t in
  if data = "" then [ "" ] else Xbytes.blocks cap data

(* write [chunks] into [pages] (allocating or freeing to match), return head *)
let write_chain t pages chunks =
  (* pair each chunk with a page, reusing the old chain, allocating extra
     pages or freeing surplus ones as needed *)
  let rec assign pages chunks acc =
    match (pages, chunks) with
    | ps, [] ->
        List.iter (fun p -> Pager.free t.pager p) ps;
        List.rev acc
    | [], c :: cs -> assign [] cs ((Pager.alloc t.pager, c) :: acc)
    | p :: ps, c :: cs -> assign ps cs ((p, c) :: acc)
  in
  let assigned = assign pages chunks [] in
  let rec link = function
    | [] -> ()
    | [ (page, chunk) ] -> Pager.write t.pager page (encode_page ~next:0 ~chunk)
    | (page, chunk) :: ((next_page, _) :: _ as rest) ->
        Pager.write t.pager page (encode_page ~next:next_page ~chunk);
        link rest
  in
  link assigned;
  Metrics.add m_pages_written (List.length assigned);
  match assigned with (head, _) :: _ -> head | [] -> invalid_arg "blob: empty chain"

let store t data =
  Metrics.incr m_stores;
  Metrics.add m_bytes_stored (String.length data);
  write_chain t [] (chunks t data)

let pages_of t id =
  let rec walk page acc seen =
    if page = 0 then Ok (List.rev acc)
    else if List.length acc > seen then Error "blob: chain too long (cycle?)"
    else
      match decode_page t page with
      | Error e -> Error e
      | Ok (next, _) -> walk next (page :: acc) seen
  in
  walk id [] (Pager.page_count t.pager)

let load t id =
  Metrics.incr m_loads;
  let rec walk page acc steps =
    if page = 0 then Ok (String.concat "" (List.rev acc))
    else if steps > Pager.page_count t.pager then Error "blob: chain too long (cycle?)"
    else
      match decode_page t page with
      | Error e -> Error e
      | Ok (next, chunk) -> walk next (chunk :: acc) (steps + 1)
  in
  let r = walk id [] 0 in
  (match r with Ok data -> Metrics.add m_bytes_loaded (String.length data) | Error _ -> ());
  r

let overwrite t id data =
  match pages_of t id with
  | Error e -> invalid_arg ("Blob_store.overwrite: " ^ e)
  | Ok pages ->
      let head = write_chain t pages (chunks t data) in
      if head <> id then
        (* can only happen if the old chain was empty, which store prevents *)
        invalid_arg "Blob_store.overwrite: head changed";
      id

let delete t id =
  Metrics.incr m_deletes;
  match pages_of t id with
  | Error e -> invalid_arg ("Blob_store.delete: " ^ e)
  | Ok pages -> List.iter (fun p -> Pager.free t.pager p) pages

open Secdb_util
module Metrics = Secdb_obs.Metrics

let m_stores = Metrics.counter "blob.stores"
let m_loads = Metrics.counter "blob.loads"
let m_deletes = Metrics.counter "blob.deletes"
let m_pages_read = Metrics.counter "blob.pages_read"
let m_pages_written = Metrics.counter "blob.pages_written"
let m_bytes_stored = Metrics.counter "blob.bytes_stored"
let m_bytes_loaded = Metrics.counter "blob.bytes_loaded"

type t = { pager : Pager.t }

type chain_error = { page : int; reason : string }

let chain_error_to_string { page; reason } = Printf.sprintf "blob: page %d: %s" page reason

let attach pager = { pager }

let header_size = 12 (* 8-byte next + 4-byte length *)
let payload_capacity t = Pager.page_size t.pager - header_size

let encode_page ~next ~chunk =
  Xbytes.int_to_be_string ~width:8 next ^ Xbytes.int_to_be_string ~width:4 (String.length chunk)
  ^ chunk

let decode_page t page =
  if page < 1 || page > Pager.page_count t.pager then
    Error { page; reason = "page id out of range" }
  else begin
    Metrics.incr m_pages_read;
    let raw = Pager.read t.pager page in
    match Xbytes.be_string_to_int (String.sub raw 0 8) with
    | exception Invalid_argument _ ->
        (* garbage too large for an int: corrupt, not a crash *)
        Error { page; reason = "corrupt next pointer (overflow)" }
    | next ->
        let len = Xbytes.be_string_to_int (String.sub raw 8 4) in
        if len > payload_capacity t then
          Error
            { page; reason = Printf.sprintf "corrupt header (length %d exceeds capacity)" len }
        else Ok (next, String.sub raw header_size len)
  end

(* Walk a chain carrying an explicit step count: a chain can never be
   longer than the number of pages ever allocated, so exceeding that is a
   cycle (or a pointer into one), reported against the offending page. *)
let fold_chain t id ~f ~init =
  let limit = Pager.page_count t.pager in
  let rec walk page acc steps =
    if page = 0 then Ok acc
    else if steps >= limit then
      Error { page; reason = Printf.sprintf "chain exceeds %d pages (cycle?)" limit }
    else
      match decode_page t page with
      | Error e -> Error e
      | Ok (next, chunk) -> walk next (f acc page chunk) (steps + 1)
  in
  walk id init 0

let chunks t data =
  let cap = payload_capacity t in
  if data = "" then [ "" ] else Xbytes.blocks cap data

(* write [chunks] into [pages] (allocating or freeing to match), return head *)
let write_chain t pages chunks =
  (* pair each chunk with a page, reusing the old chain, allocating extra
     pages or freeing surplus ones as needed *)
  let rec assign pages chunks acc =
    match (pages, chunks) with
    | ps, [] ->
        List.iter (fun p -> Pager.free t.pager p) ps;
        List.rev acc
    | [], c :: cs -> assign [] cs ((Pager.alloc t.pager, c) :: acc)
    | p :: ps, c :: cs -> assign ps cs ((p, c) :: acc)
  in
  let assigned = assign pages chunks [] in
  let rec link = function
    | [] -> ()
    | [ (page, chunk) ] -> Pager.write t.pager page (encode_page ~next:0 ~chunk)
    | (page, chunk) :: ((next_page, _) :: _ as rest) ->
        Pager.write t.pager page (encode_page ~next:next_page ~chunk);
        link rest
  in
  link assigned;
  Metrics.add m_pages_written (List.length assigned);
  match assigned with (head, _) :: _ -> head | [] -> invalid_arg "blob: empty chain"

let store t data =
  Metrics.incr m_stores;
  Metrics.add m_bytes_stored (String.length data);
  write_chain t [] (chunks t data)

let pages_of t id =
  Result.map List.rev (fold_chain t id ~init:[] ~f:(fun acc page _ -> page :: acc))

let load t id =
  Metrics.incr m_loads;
  let r =
    Result.map
      (fun acc -> String.concat "" (List.rev acc))
      (fold_chain t id ~init:[] ~f:(fun acc _ chunk -> chunk :: acc))
  in
  (match r with Ok data -> Metrics.add m_bytes_loaded (String.length data) | Error _ -> ());
  r

let overwrite t id data =
  match pages_of t id with
  | Error e -> invalid_arg ("Blob_store.overwrite: " ^ chain_error_to_string e)
  | Ok pages ->
      let head = write_chain t pages (chunks t data) in
      if head <> id then
        (* can only happen if the old chain was empty, which store prevents *)
        invalid_arg "Blob_store.overwrite: head changed";
      id

let delete t id =
  Metrics.incr m_deletes;
  match pages_of t id with
  | Error e -> invalid_arg ("Blob_store.delete: " ^ chain_error_to_string e)
  | Ok pages -> List.iter (fun p -> Pager.free t.pager p) pages

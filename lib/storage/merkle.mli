(** Merkle anchoring: database-level integrity on top of per-cell AEAD.

    The paper's schemes (and their fix) authenticate each cell and index
    entry {e in place} — but nothing authenticates the {e set}: a storage
    adversary can tombstone a row, drop index entries, or roll the whole
    database back to an older snapshot, and every surviving cell still
    verifies.  (Experiment EXP22 demonstrates the suppression attack.)

    The classical countermeasure is a Merkle tree over the stored
    representation whose root the client keeps out of band (it is the only
    piece of trusted storage the design needs, and it is constant-size).
    This module builds SHA-256 Merkle trees over leaf byte-strings, and
    produces/checks logarithmic inclusion proofs.

    Domain separation: leaf hashes are H(0x00 ∥ leaf), inner hashes
    H(0x01 ∥ left ∥ right) — the standard defence against
    leaf/inner-node confusion.  Odd nodes are promoted unhashed. *)

type proof = (string * [ `Left | `Right ]) list
(** Sibling hashes from leaf to root, each tagged with its side. *)

val root : string list -> string
(** Merkle root of the leaf sequence (32 bytes).  The empty sequence has
    the distinguished root H(0x02). *)

val prove : string list -> index:int -> proof
(** Inclusion proof for the [index]-th leaf.
    @raise Invalid_argument if out of range. *)

val verify : root:string -> leaf:string -> proof -> bool
(** Check that [leaf] is included under [root] via [proof].  The root
    comparison is constant-time (roots travel over the wire as replication
    attestations), and implausible proofs — more than 64 levels, or sibling
    hashes that are not 32 bytes — are rejected outright. *)

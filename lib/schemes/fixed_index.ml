open Secdb_util
module Aead = Secdb_aead.Aead
module Bptree = Secdb_index.Bptree
module Value = Secdb_db.Value

let be8 = Xbytes.int_to_be_string ~width:8

let associated_data ~indexed_table ~indexed_col (ctx : Bptree.ctx) =
  let kind_marker = match ctx.kind with Bptree.Inner -> "I" | Bptree.Leaf -> "L" in
  Secdb_db.Codec.frame
    [ be8 ctx.index_table; be8 indexed_table; be8 indexed_col; be8 ctx.node_row; kind_marker ]

let codec ~(aead : Aead.t) ~(nonce : Secdb_aead.Nonce.t) ~indexed_table ~indexed_col () =
  let ad = associated_data ~indexed_table ~indexed_col in
  {
    Bptree.codec_name = Printf.sprintf "fixed-index[%s]" aead.Aead.name;
    pure = false (* stateful nonce source *);
    encode =
      (fun ctx ~value ~table_row ->
        let reft = match table_row with Some r -> be8 r | None -> "" in
        let plaintext = Secdb_db.Codec.frame [ Value.encode value; reft ] in
        let n = nonce () in
        let ct, tag = Aead.encrypt aead ~nonce:n ~ad:(ad ctx) plaintext in
        Secdb_db.Codec.frame [ n; ct; tag ]);
    decode =
      (fun ctx payload ->
        match Secdb_db.Codec.unframe3 payload with
        | Error _ -> Error "fixed-index: invalid"
        | Ok (n, ct, tag) -> (
            match Aead.decrypt aead ~nonce:n ~ad:(ad ctx) ~tag ct with
            | Error Aead.Invalid -> Error "fixed-index: invalid"
            | Ok plaintext -> (
                match Secdb_db.Codec.unframe2 plaintext with
                | Error _ -> Error "fixed-index: invalid"
                | Ok (v, reft) -> (
                    let table_row =
                      if reft = "" then Ok None
                      else if String.length reft = 8 then
                        Ok (Some (Xbytes.be_string_to_int reft))
                      else Error "fixed-index: invalid"
                    in
                    match table_row with
                    | Error e -> Error e
                    | Ok table_row ->
                        Result.map (fun value -> (value, table_row)) (Value.decode v)))));
    (* AEAD cannot decrypt without authenticating: the published leaf-level
       bug (paper footnote 1) is not even expressible against this scheme *)
    decode_unverified = None;
  }

(** The paper's fixed database encryption scheme (Section 4):

    {v (C, T) = AEAD-Enc_k(N, V, Ref_T)      with Ref_T = (t, r, c) v}

    The cell stores the triple (N, C, T); the cell address travels as
    associated data, so it is authenticated but never stored.  Decryption
    computes AEAD-Dec_k(N, C, T, Ref_T) and raises a decryption error on
    [invalid] — with no indication of which of key, address, nonce,
    ciphertext or tag was wrong, mirroring the paper's formalisation.

    Confidentiality and (data, position) authenticity reduce to the AEAD
    scheme's standard notions; every Section 3 attack is expected to fail
    here, which experiments EXP1–EXP6 verify. *)

val make :
  ?ad_of:(Secdb_db.Address.t -> string) ->
  aead:Secdb_aead.Aead.t ->
  nonce:Secdb_aead.Nonce.t ->
  unit ->
  Cell_scheme.t
(** The stored cell bytes are the {!Secdb_db.Codec.frame} of [N; C; T].

    [ad_of] maps the cell address to the associated data (default: the full
    canonical (t, r, c) encoding, the paper's fix).  A deterministic
    searchable profile (SIV with a constant nonce) passes a (t, c)-only
    encoding instead: equality of stored cells then reveals equality of
    values within a column — and, deliberately, within-column relocation is
    no longer detected at this layer.  That is the inherent trade of
    deterministic encryption; never weaken [ad_of] with a randomised
    AEAD.

    Because [nonce] is an opaque stateful source, the resulting scheme is
    {e not} [parallel_safe]: batch entry points run it sequentially.  Use
    {!make_derived} when bulk encryption across domains is wanted. *)

val make_derived :
  ?ad_of:(Secdb_db.Address.t -> string) ->
  aead:Secdb_aead.Aead.t ->
  nonce_key:string ->
  unit ->
  Cell_scheme.t
(** Like {!make}, but the nonce is {e derived from the cell address}:
    [N = HMAC-SHA256(nonce_key, encode addr)] truncated to the AEAD's nonce
    size.  Nonces are then data-dependent rather than order-dependent, so
    parallel batch encryption produces bytes identical to the sequential
    path and the scheme is [parallel_safe].

    The trade: re-encrypting the {e same} address reuses its nonce, so the
    scheme is deterministic per (address, value) and must only be used for
    write-once loads (whole-table encryption, bulk index builds) or with a
    fresh [nonce_key] per encryption epoch — never for in-place updates
    under a fixed key.  [nonce_key] must be independent of the AEAD key. *)

val derived_nonce : key:string -> size:int -> Secdb_db.Address.t -> string
(** The nonce derivation used by {!make_derived}, exposed for tests and for
    index-side reuse.  @raise Invalid_argument if [size] is not in [1..32]. *)

val storage_overhead : aead:Secdb_aead.Aead.t -> int
(** Fixed per-cell storage cost in bytes beyond the plaintext length:
    nonce + tag + 12 bytes of framing. *)

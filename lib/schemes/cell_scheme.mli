(** Common shape of a cell encryption scheme.

    A cell scheme turns the plaintext octets of an attribute value into the
    bytes stored in the table cell at a given address, and back.  Decryption
    performs whatever validity checking the scheme offers (the µ comparison
    of the Append-Scheme, the data-redundancy check of the XOR-Scheme, the
    AEAD tag of the fixed scheme) and fails — as the paper puts it, raises a
    decryption error — when the check does not pass. *)

type t = {
  name : string;
  deterministic : bool;
      (** ciphertexts of equal (value, address) pairs coincide — assumption
          (3) of the analysed scheme, broken on purpose by the fix *)
  parallel_safe : bool;
      (** the [encrypt]/[decrypt] closures are pure in the sense of the
          batch layer: no shared mutable state, so concurrent invocations
          from several domains produce exactly the bytes the sequential
          order would.  True for the address-keyed schemes (append, xor,
          SIV, derived-nonce AEAD); false whenever a closure draws from a
          stateful nonce or RNG source, in which case the batch entry
          points fall back to sequential execution. *)
  encrypt : Secdb_db.Address.t -> string -> string;
  decrypt : Secdb_db.Address.t -> string -> (string, string) result;
}

val encrypt : t -> Secdb_db.Address.t -> string -> string
val decrypt : t -> Secdb_db.Address.t -> string -> (string, string) result

val roundtrips : t -> Secdb_db.Address.t -> string -> bool
(** [decrypt a (encrypt a v) = Ok v] — basic sanity used by tests. *)

(** {2 Batch entry points}

    Whole-column/whole-table operations for the bulk-encryption engine.
    With a pool and a [parallel_safe] scheme the cells are fanned out
    across domains; output arrays are index-aligned with the input and
    byte-identical to the sequential path (enforced by the bulk property
    suite).  Without a pool — or for schemes with stateful closures — they
    degrade to a plain sequential map. *)

val encrypt_cells :
  ?pool:Secdb_util.Pool.t -> t -> (Secdb_db.Address.t * string) array -> string array

val decrypt_cells :
  ?pool:Secdb_util.Pool.t ->
  t ->
  (Secdb_db.Address.t * string) array ->
  (string, string) result array

open Secdb_util

let strip_nuls s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '\000' do
    decr n
  done;
  String.sub s 0 !n

let make ~(e : Einst.t) ~(mu : Secdb_db.Address.mu) ?(strip_zero_extension = false) ~validate
    () =
  {
    Cell_scheme.name = Printf.sprintf "xor-scheme[%s,%s]" e.name mu.name;
    deterministic = e.deterministic;
    parallel_safe = true;
    encrypt = (fun addr v -> e.enc (Xbytes.xor v (mu.digest addr)));
    decrypt =
      (fun addr ct ->
        match e.dec ct with
        | Error err -> Error err
        | Ok masked ->
            let v = Xbytes.xor masked (mu.digest addr) in
            let v = if strip_zero_extension then strip_nuls v else v in
            if validate v then Ok v
            else Error "xor-scheme: decrypted value fails the column redundancy check");
  }

type t = {
  name : string;
  deterministic : bool;
  parallel_safe : bool;
  encrypt : Secdb_db.Address.t -> string -> string;
  decrypt : Secdb_db.Address.t -> string -> (string, string) result;
}

let encrypt t addr v = t.encrypt addr v
let decrypt t addr c = t.decrypt addr c
let roundtrips t addr v = decrypt t addr (encrypt t addr v) = Ok v

let use_pool pool t =
  match pool with
  | Some p when t.parallel_safe && Secdb_util.Pool.domains p > 1 -> Some p
  | _ -> None

let encrypt_cells ?pool t cells =
  match use_pool pool t with
  | Some p -> Secdb_util.Pool.map_array p (fun (addr, v) -> t.encrypt addr v) cells
  | None -> Array.map (fun (addr, v) -> t.encrypt addr v) cells

let decrypt_cells ?pool t cells =
  match use_pool pool t with
  | Some p -> Secdb_util.Pool.map_array p (fun (addr, ct) -> t.decrypt addr ct) cells
  | None -> Array.map (fun (addr, ct) -> t.decrypt addr ct) cells

module Aead = Secdb_aead.Aead

let ad_of_address addr = Secdb_db.Address.encode addr

let scheme ?(ad_of = ad_of_address) ~(aead : Aead.t) ~deterministic ~parallel_safe
    ~(nonce_for : Secdb_db.Address.t -> string) () =
  {
    Cell_scheme.name = Printf.sprintf "fixed-cell[%s]" aead.Aead.name;
    deterministic;
    parallel_safe;
    encrypt =
      (fun addr v ->
        let n = nonce_for addr in
        let ct, tag = Aead.encrypt aead ~nonce:n ~ad:(ad_of addr) v in
        Secdb_db.Codec.frame [ n; ct; tag ]);
    decrypt =
      (fun addr stored ->
        match Secdb_db.Codec.unframe3 stored with
        | Error _ -> Error "fixed-cell: invalid"
        | Ok (n, ct, tag) -> (
            match Aead.decrypt aead ~nonce:n ~ad:(ad_of addr) ~tag ct with
            | Ok v -> Ok v
            | Error Aead.Invalid -> Error "fixed-cell: invalid"));
  }

let make ?ad_of ~(aead : Aead.t) ~(nonce : Secdb_aead.Nonce.t) () =
  (* a Nonce.t is an opaque stateful source: drawing from it is inherently
     order-dependent, so the scheme must not be fanned out across domains *)
  scheme ?ad_of ~aead ~deterministic:false ~parallel_safe:false
    ~nonce_for:(fun _ -> nonce ()) ()

let derived_nonce ~key ~size addr =
  if size <= 0 || size > 32 then invalid_arg "Fixed_cell.derived_nonce: bad size";
  Secdb_util.Xbytes.take size
    (Secdb_hash.Hmac.mac Secdb_hash.Hmac.sha256 ~key (Secdb_db.Address.encode addr))

let make_derived ?ad_of ~(aead : Aead.t) ~nonce_key () =
  let size = aead.Aead.nonce_size in
  if size <= 0 || size > 32 then invalid_arg "Fixed_cell.derived_nonce: bad size";
  (* keyed HMAC hoisted across the batch loops: per-cell nonce derivation
     skips the key preprocessing (byte-identical to [derived_nonce]) *)
  let keyed = Secdb_hash.Hmac.keyed Secdb_hash.Hmac.sha256 ~key:nonce_key in
  scheme ?ad_of ~aead ~deterministic:true ~parallel_safe:true
    ~nonce_for:(fun addr ->
      Secdb_util.Xbytes.take size
        (Secdb_hash.Hmac.mac_keyed keyed (Secdb_db.Address.encode addr)))
    ()

let storage_overhead ~(aead : Aead.t) = Aead.stored_overhead aead + 12

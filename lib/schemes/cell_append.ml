open Secdb_util

let make ~(e : Einst.t) ~(mu : Secdb_db.Address.mu) =
  {
    Cell_scheme.name = Printf.sprintf "append-scheme[%s,%s]" e.name mu.name;
    deterministic = e.deterministic;
    (* E and mu close over no mutable state, so batch encryption may fan
       cells out across domains *)
    parallel_safe = true;
    encrypt = (fun addr v -> e.enc (v ^ mu.digest addr));
    decrypt =
      (fun addr ct ->
        match e.dec ct with
        | Error err -> Error err
        | Ok plain ->
            let n = String.length plain in
            if n < mu.width then Error "append-scheme: plaintext shorter than the address checksum"
            else
              let v = String.sub plain 0 (n - mu.width) in
              let checksum = String.sub plain (n - mu.width) mu.width in
              if Xbytes.constant_time_equal checksum (mu.digest addr) then Ok v
              else Error "append-scheme: address checksum mismatch");
  }

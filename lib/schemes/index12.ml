open Secdb_util
module Bptree = Secdb_index.Bptree
module Value = Secdb_db.Value

let be8 = Xbytes.int_to_be_string ~width:8

let ref_s ~indexed_table ~indexed_col (ctx : Bptree.ctx) =
  be8 ctx.index_table ^ be8 indexed_table ^ be8 indexed_col ^ be8 ctx.node_row

let codec ~(e : Einst.t) ~mac_cipher ?(rand_len = 8) ~rng ~indexed_table ~indexed_col () =
  if rand_len < 1 || rand_len >= e.block_size then
    invalid_arg "index12: rand_len must be positive and below the block size";
  let mac = Secdb_mac.Cmac.mac mac_cipher in
  let ref_i = "" (* see interface note *) in
  let mac_input v reft_bytes ctx =
    v ^ ref_i ^ reft_bytes ^ ref_s ~indexed_table ~indexed_col ctx
  in
  let decode ~verify ctx payload =
    match Secdb_db.Codec.unframe3 payload with
    | Error err -> Error err
    | Ok (etilde, e_reft, tag) -> (
        match e.dec etilde with
        | Error err -> Error err
        | Ok va ->
            if String.length va < rand_len + 1 then Error "index12: plaintext too short"
            else
              let v = String.sub va 0 (String.length va - rand_len) in
              let reft =
                if e_reft = "" then Ok None
                else
                  match e.dec e_reft with
                  | Error err -> Error err
                  | Ok r when String.length r = 8 -> Ok (Some (Xbytes.be_string_to_int r))
                  | Ok _ -> Error "index12: malformed table reference"
              in
              (match reft with
              | Error err -> Error err
              | Ok table_row ->
                  let reft_bytes = match table_row with Some r -> be8 r | None -> "" in
                  if
                    verify
                    && not
                         (Xbytes.constant_time_equal tag (mac (mac_input v reft_bytes ctx)))
                  then Error "index12: MAC mismatch"
                  else Result.map (fun value -> (value, table_row)) (Value.decode v)))
  in
  {
    Bptree.codec_name = Printf.sprintf "index12[%s,omac(%s)]" e.name mac_cipher.name;
    pure = false (* draws from the rng *);
    encode =
      (fun ctx ~value ~table_row ->
        let v = Value.encode value in
        let a = Rng.bytes rng rand_len in
        let etilde = e.enc (v ^ a) in
        let reft_bytes = match table_row with Some r -> be8 r | None -> "" in
        let e_reft = match table_row with Some _ -> e.enc reft_bytes | None -> "" in
        let tag = mac (mac_input v reft_bytes ctx) in
        Secdb_db.Codec.frame [ etilde; e_reft; tag ]);
    decode = decode ~verify:true;
    decode_unverified = Some (decode ~verify:false);
  }

open Secdb_util
module Bptree = Secdb_index.Bptree
module Value = Secdb_db.Value

let be8 = Xbytes.int_to_be_string ~width:8

let codec ~(e : Einst.t) =
  let decode ~verify (ctx : Bptree.ctx) payload =
    match e.dec payload with
    | Error err -> Error err
    | Ok plain ->
        let tail = if ctx.kind = Bptree.Leaf then 16 else 8 in
        if String.length plain < tail + 1 then Error "index3: plaintext too short"
        else
          let n = String.length plain in
          let r_i = Xbytes.be_string_to_int (String.sub plain (n - 8) 8) in
          if verify && r_i <> ctx.node_row then
            Error
              (Printf.sprintf "index3: self-reference mismatch (stored %d, node %d)" r_i
                 ctx.node_row)
          else
            let table_row =
              if ctx.kind = Bptree.Leaf then
                Some (Xbytes.be_string_to_int (String.sub plain (n - 16) 8))
              else None
            in
            Result.map
              (fun value -> (value, table_row))
              (Value.decode (String.sub plain 0 (n - tail)))
  in
  {
    Bptree.codec_name = Printf.sprintf "index3[%s]" e.name;
    pure = true (* deterministic encryption, no per-call state *);
    encode =
      (fun ctx ~value ~table_row ->
        let v = Value.encode value in
        match (ctx.kind, table_row) with
        | Bptree.Inner, None -> e.enc (v ^ be8 ctx.node_row)
        | Bptree.Leaf, Some r -> e.enc (v ^ be8 r ^ be8 ctx.node_row)
        | Bptree.Inner, Some _ -> invalid_arg "index3: inner entries carry no table row"
        | Bptree.Leaf, None -> invalid_arg "index3: leaf entries need a table row");
    decode = decode ~verify:true;
    decode_unverified = Some (decode ~verify:false);
  }

open Secdb_util

let frame_parts ~nonce ~ad ct =
  (* unambiguous concatenation: lengths are encoded; fed to the MAC as
     parts so the frame never has to exist as one string *)
  [
    Xbytes.int_to_be_string ~width:4 (String.length nonce);
    nonce;
    Xbytes.int_to_be_string ~width:4 (String.length ad);
    ad;
    ct;
  ]

let encrypt_then_mac ?(tag_size = 16) ~(cipher : Secdb_cipher.Block.t) ~mac_key () =
  let hmac = Secdb_hash.Hmac.sha256 in
  if tag_size < 1 || tag_size > hmac.Secdb_hash.Hmac.digest_size then
    invalid_arg "Compose.encrypt_then_mac: tag size out of range";
  (* hoisted per make: the keyed HMAC (ipad/opad strings precomputed) *)
  let mac_k = Secdb_hash.Hmac.keyed hmac ~key:mac_key in
  (* keystream counter starts at E(nonce): arbitrary distinct nonces then
     yield disjoint counter ranges except with negligible probability *)
  let keystream nonce m = Secdb_modes.Mode.ctr_full cipher ~counter0:(cipher.encrypt nonce) m in
  let tag_of ~nonce ~ad ct =
    Secdb_hash.Hmac.mac_keyed_parts mac_k (frame_parts ~nonce ~ad ct)
  in
  let encrypt ~nonce ~ad m =
    let ct = keystream nonce m in
    (ct, Xbytes.take tag_size (tag_of ~nonce ~ad ct))
  in
  let decrypt ~nonce ~ad ~tag ct =
    let expected = Xbytes.take (String.length tag) (tag_of ~nonce ~ad ct) in
    if Xbytes.constant_time_equal expected tag then Ok (keystream nonce ct)
    else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "etm(ctr-%s,hmac-sha256)" cipher.name;
    nonce_size = cipher.block_size;
    tag_size;
    expansion = 0;
    encrypt;
    decrypt;
  }

let encrypt_and_mac_insecure (c : Secdb_cipher.Block.t) =
  let bs = c.block_size in
  let iv = Secdb_cipher.Block.zero_block c in
  let encrypt ~nonce:_ ~ad m =
    let ct = Secdb_modes.Mode.cbc_encrypt c ~iv (Secdb_modes.Padding.pad ~block:bs m) in
    let tag = Secdb_mac.Cmac.mac c (m ^ ad) in
    (ct, tag)
  in
  let decrypt ~nonce:_ ~ad ~tag ct =
    if String.length ct mod bs <> 0 || ct = "" then Error Aead.Invalid
    else
      match Secdb_modes.Padding.unpad ~block:bs (Secdb_modes.Mode.cbc_decrypt c ~iv ct) with
      | Error _ -> Error Aead.Invalid
      | Ok m ->
          if Xbytes.constant_time_equal (Secdb_mac.Cmac.mac c (m ^ ad)) tag then Ok m
          else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "eam-insecure(cbc0-%s,omac-same-key)" c.name;
    nonce_size = bs;
    tag_size = bs;
    expansion = bs (* padding can add up to one block *);
    encrypt;
    decrypt;
  }

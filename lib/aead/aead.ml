module Metrics = Secdb_obs.Metrics

(* Auth failures are a correctness signal here, not ops sugar: the fixed
   schemes stand or fall on tampered cells actually being rejected, so the
   counter lets a workload prove its rejects happened. *)
let m_encrypts = Metrics.counter "aead.encrypts"
let m_decrypts = Metrics.counter "aead.decrypts"
let m_auth_failures = Metrics.counter "aead.auth_failures"
let m_bytes_encrypted = Metrics.counter "aead.bytes_encrypted"
let m_bytes_decrypted = Metrics.counter "aead.bytes_decrypted"

type invalid = Invalid

type t = {
  name : string;
  nonce_size : int;
  tag_size : int;
  expansion : int;
  encrypt : nonce:string -> ad:string -> string -> string * string;
  decrypt : nonce:string -> ad:string -> tag:string -> string -> (string, invalid) result;
}

let check_nonce t nonce =
  if String.length nonce <> t.nonce_size then
    invalid_arg
      (Printf.sprintf "%s: nonce must be %d bytes, got %d" t.name t.nonce_size
         (String.length nonce))

let encrypt t ~nonce ~ad m =
  check_nonce t nonce;
  Metrics.incr m_encrypts;
  Metrics.add m_bytes_encrypted (String.length m);
  t.encrypt ~nonce ~ad m

let decrypt t ~nonce ~ad ~tag c =
  Metrics.incr m_decrypts;
  Metrics.add m_bytes_decrypted (String.length c);
  let r =
    if String.length nonce <> t.nonce_size || String.length tag <> t.tag_size then Error Invalid
    else t.decrypt ~nonce ~ad ~tag c
  in
  (match r with Error Invalid -> Metrics.incr m_auth_failures | Ok _ -> ());
  r

let decrypt_exn t ~nonce ~ad ~tag c =
  match decrypt t ~nonce ~ad ~tag c with
  | Ok m -> m
  | Error Invalid -> failwith (t.name ^ ": AEAD decryption failed (invalid)")

let stored_overhead t = t.nonce_size + t.tag_size + t.expansion

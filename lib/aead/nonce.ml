type t = unit -> string

let counter ~size ?(start = 0) () =
  if size <= 0 then invalid_arg "Nonce.counter: size must be positive";
  if start < 0 then invalid_arg "Nonce.counter: negative start";
  if size < 8 then begin
    let last = (1 lsl (8 * size)) - 1 in
    if start > last then invalid_arg "Nonce.counter: start exceeds the nonce space";
    let state = ref start in
    fun () ->
      if !state > last then invalid_arg "Nonce.counter: exhausted";
      let n = Secdb_util.Xbytes.int_to_be_string ~width:size !state in
      incr state;
      n
  end
  else begin
    (* Counting happens in the low 8 bytes, tracked as an unsigned int64:
       the true bound is 2^64 values.  An OCaml [int] would silently cap
       the space at [max_int] (2^62 on 64-bit), under-reporting it by a
       factor of four — and [start], an [int], is always inside range. *)
    let state = ref (Int64.of_int start) in
    let exhausted = ref false in
    let prefix = String.make (size - 8) '\000' in
    fun () ->
      if !exhausted then invalid_arg "Nonce.counter: exhausted";
      let n = prefix ^ Secdb_util.Xbytes.int64_to_be_string !state in
      if !state = -1L then exhausted := true else state := Int64.add !state 1L;
      n
  end

let of_rng rng ~size () = Secdb_util.Rng.bytes rng size
let fixed n () = n

(** AES-GCM (NIST SP 800-38D).

    The AEAD that won deployment in the years after the paper; included
    under the paper's pointer to "recent developments regarding AEAD
    schemes" and validated against the NIST reference vectors.  One
    encryption pass plus one GHASH pass over ciphertext and associated
    data; nonce size fixed at 12 bytes (the SP 800-38D fast path).

    GF(2^128) multiplication comes in two forms: a bit-by-bit reference
    ([gf_mult], [ghash_ref]) kept as the correctness oracle, and the
    Shoup 8-bit table path ([htable], [gf_mult_table], [ghash_into])
    that the AEAD runs on — tables are built once per [make] from H. *)

val make : ?tag_size:int -> Secdb_cipher.Block.t -> Aead.t
(** GCM over a 16-byte-block cipher; nonce size fixed at 12 bytes,
    [tag_size] defaults to 16.
    @raise Invalid_argument if the block size is not 16. *)

val ghash : h:string -> string -> string
(** The GHASH universal hash under hash key [h] (exposed for tests);
    input length must be a multiple of 16.  Table-driven. *)

val ghash_ref : h:string -> string -> string
(** Bit-by-bit reference GHASH, retained as the oracle the fast path is
    checked against (QCheck suite and the bench [--check] gate). *)

val gf_mult : string -> string -> string
(** Bit-by-bit reference multiplication in GF(2^128), GCM bit order.
    Both operands must be 16 bytes. *)

type htable
(** Precomputed Shoup 8-bit multiplication tables for a fixed hash key
    H: 256 multiples of H plus the byte-shift reduction table, stored
    as 32-bit words in native ints. *)

val htable : string -> htable
(** Build the tables for a 16-byte hash key.
    @raise Invalid_argument if the key is not 16 bytes. *)

val gf_mult_table : htable -> string -> string
(** [gf_mult_table (htable h) x] = [gf_mult x h]; [x] must be 16 bytes. *)

val ghash_into : htable -> acc:Bytes.t -> Bytes.t -> off:int -> nblocks:int -> unit
(** Fold [nblocks] 16-byte blocks of the source, starting at [off],
    into the 16-byte accumulator [acc] in place:
    y := (y xor block) * H per block.  Allocation-free.
    @raise Invalid_argument if the block range is out of bounds or
    [acc] is shorter than 16 bytes. *)

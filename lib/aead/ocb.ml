open Secdb_util

(* OCB1 (Rogaway et al., 2001).  Offsets: L = E_K(0), R = E_K(N xor L),
   Z_1 = L xor R, Z_{i+1} = Z_i xor L*x^{ntz(i+1)}.

   Key-only material — L, L*x^{-1}, the L*x^j power table, and the keyed
   PMAC for the header — is hoisted once per [make]; a message costs
   exactly its blockcipher calls plus a handful of per-call 16-byte
   buffers (never per-make scratch: one AEAD value is shared across
   domains by the parallel batch paths). *)

let make ?tag_size (c : Secdb_cipher.Block.t) =
  let tag_size = Option.value tag_size ~default:c.block_size in
  if tag_size < 1 || tag_size > c.block_size then
    invalid_arg "Ocb.make: tag size out of range";
  let bs = c.block_size in
  let enc = Secdb_cipher.Block.encrypt_into c in
  let dec = Secdb_cipher.Block.decrypt_into c in
  let l = c.encrypt (Secdb_cipher.Block.zero_block c) in
  let l_inv = Secdb_mac.Gf128.inv_dbl l in
  let l_pow = Array.make 63 l in
  for j = 1 to 62 do
    l_pow.(j) <- Secdb_mac.Gf128.dbl l_pow.(j - 1)
  done;
  let pmac_k = Secdb_mac.Pmac.keyed c in
  let core ~nonce ~decrypting msg =
    let len = String.length msg in
    let m = max 1 ((len + bs - 1) / bs) in
    (* the message transforms block-by-block in place in [out] *)
    let out = Bytes.of_string msg in
    let z = Bytes.of_string nonce in
    Xbytes.xor_into ~src:l ~dst:z ~dst_off:0;
    enc z ~src_off:0 z ~dst_off:0;
    (* z now holds R; fold L back in for Z_1 *)
    Xbytes.xor_into ~src:l ~dst:z ~dst_off:0;
    let checksum = Bytes.make bs '\000' in
    for i = 1 to m - 1 do
      let off = (i - 1) * bs in
      if decrypting then begin
        Xbytes.xor_blit ~src:z ~src_off:0 ~dst:out ~dst_off:off ~len:bs;
        dec out ~src_off:off out ~dst_off:off;
        Xbytes.xor_blit ~src:z ~src_off:0 ~dst:out ~dst_off:off ~len:bs;
        Xbytes.xor_blit ~src:out ~src_off:off ~dst:checksum ~dst_off:0 ~len:bs
      end
      else begin
        Xbytes.xor_blit ~src:out ~src_off:off ~dst:checksum ~dst_off:0 ~len:bs;
        Xbytes.xor_blit ~src:z ~src_off:0 ~dst:out ~dst_off:off ~len:bs;
        enc out ~src_off:off out ~dst_off:off;
        Xbytes.xor_blit ~src:z ~src_off:0 ~dst:out ~dst_off:off ~len:bs
      end;
      Xbytes.xor_into ~src:l_pow.(Secdb_mac.Gf128.ntz (i + 1)) ~dst:z ~dst_off:0
    done;
    let lastlen = len - ((m - 1) * bs) in
    let lastlen = if lastlen < 0 then 0 else lastlen in
    let last_off = (m - 1) * bs in
    (* X_m = len(M_m) xor L*x^{-1} xor Z_m ; Y_m = E_K(X_m) ;
       C_m = M_m xor msb(Y_m)  (same formula in both directions). *)
    let y = Bytes.make bs '\000' in
    Xbytes.set_uint32_be y (bs - 4) (8 * lastlen);
    Xbytes.xor_into ~src:l_inv ~dst:y ~dst_off:0;
    Xbytes.xor_blit ~src:z ~src_off:0 ~dst:y ~dst_off:0 ~len:bs;
    enc y ~src_off:0 y ~dst_off:0;
    if lastlen > 0 then
      Xbytes.xor_blit ~src:y ~src_off:0 ~dst:out ~dst_off:last_off ~len:lastlen;
    (* Checksum folds in C_m 0* (the ciphertext side), per the OCB spec. *)
    if decrypting then
      Xbytes.xor_blit ~src:(Bytes.unsafe_of_string msg) ~src_off:last_off ~dst:checksum
        ~dst_off:0 ~len:lastlen
    else
      Xbytes.xor_blit ~src:out ~src_off:last_off ~dst:checksum ~dst_off:0 ~len:lastlen;
    Xbytes.xor_blit ~src:y ~src_off:0 ~dst:checksum ~dst_off:0 ~len:bs;
    Xbytes.xor_blit ~src:z ~src_off:0 ~dst:checksum ~dst_off:0 ~len:bs;
    enc checksum ~src_off:0 checksum ~dst_off:0;
    (Bytes.unsafe_to_string out, Bytes.unsafe_to_string checksum)
  in
  let with_header ~ad tag_full =
    let tag_full =
      if ad = "" then tag_full
      else Xbytes.xor_exact tag_full (Secdb_mac.Pmac.mac_keyed pmac_k ad)
    in
    Xbytes.take tag_size tag_full
  in
  let encrypt ~nonce ~ad m =
    let ct, tag_full = core ~nonce ~decrypting:false m in
    (ct, with_header ~ad tag_full)
  in
  let decrypt ~nonce ~ad ~tag ct =
    let pt, tag_full = core ~nonce ~decrypting:true ct in
    if Xbytes.constant_time_equal (with_header ~ad tag_full) tag then Ok pt
    else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "ocb+pmac(%s)" c.name;
    nonce_size = bs;
    tag_size;
    expansion = 0;
    encrypt;
    decrypt;
  }

(** Nonce sources for the AEAD schemes.

    AEAD security needs {e unique} nonces per key; the schemes here never
    require unpredictability.  The counter source gives the strongest
    uniqueness guarantee and the smallest state; the PRNG source is
    provided for workloads that want address-independent-looking storage. *)

type t = unit -> string

val counter : size:int -> ?start:int -> unit -> t
(** Big-endian counter, one increment per call.  The nonce space is the
    full [2^(8*size)] values [0 .. 2^(8*size) - 1]; once the last value
    has been emitted the source raises rather than wrap.  For
    [size >= 8] the counting lane is the low 8 bytes (the upper bytes
    stay zero) and the bound is exactly [2^64] values, tracked unsigned —
    not OCaml's [max_int].
    @raise Invalid_argument if [size <= 0], if [start] is negative or
    exceeds the nonce space, or when the counter is exhausted. *)

val of_rng : Secdb_util.Rng.t -> size:int -> t
(** Pseudorandom nonces from the given deterministic generator (collision
    probability is birthday-bounded; fine for the experiment scales here). *)

val fixed : string -> t
(** Always the same nonce — deliberately broken, for tests that demonstrate
    what nonce reuse does to the fixed schemes' privacy. *)

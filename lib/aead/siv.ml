open Secdb_util

let xorend a b =
  (* b xored into the last |b| bytes of a; requires |a| >= |b| *)
  let la = String.length a and lb = String.length b in
  String.sub a 0 (la - lb) ^ Xbytes.xor_exact (String.sub a (la - lb) lb) b

let s2v (k1 : Secdb_cipher.Block.t) components =
  match List.rev components with
  | [] -> invalid_arg "Siv.s2v: at least one component required"
  | last :: init_rev ->
      let init = List.rev init_rev in
      let keyed = Secdb_mac.Cmac.keyed k1 in
      let mac m = Secdb_mac.Cmac.mac_with keyed m in
      let d =
        List.fold_left
          (fun d s -> Xbytes.xor_exact (Secdb_mac.Gf128.dbl d) (mac s))
          (mac (String.make 16 '\000'))
          init
      in
      let t =
        if String.length last >= 16 then xorend last d
        else
          Xbytes.xor_exact (Secdb_mac.Gf128.dbl d)
            (last ^ "\x80" ^ String.make (15 - String.length last) '\000')
      in
      mac t

let clear_ctr_bits v =
  (* zero the MSB of bytes 8 and 12 (bits 63 and 31 of the IV) so the CTR
     addition cannot carry across the 64-bit halves, per RFC 5297 *)
  let b = Bytes.of_string v in
  Bytes.set b 8 (Char.chr (Char.code v.[8] land 0x7f));
  Bytes.set b 12 (Char.chr (Char.code v.[12] land 0x7f));
  Bytes.unsafe_to_string b

let make (k1 : Secdb_cipher.Block.t) (k2 : Secdb_cipher.Block.t) =
  if k1.block_size <> 16 || k2.block_size <> 16 then
    invalid_arg "Siv.make: 16-byte blocks required";
  (* hoisted once per make: the keyed CMAC (subkey derivation) and
     D_0 = CMAC(0^16), the S2V starting vector — both key-only.  The
     component order below mirrors [s2v k1 [ad; nonce; m]] exactly. *)
  let keyed = Secdb_mac.Cmac.keyed k1 in
  let mac m = Secdb_mac.Cmac.mac_with keyed m in
  let d0 = mac (String.make 16 '\000') in
  let s2v_fast ~nonce ~ad last =
    let d = Xbytes.xor_exact (Secdb_mac.Gf128.dbl d0) (mac ad) in
    let d = Xbytes.xor_exact (Secdb_mac.Gf128.dbl d) (mac nonce) in
    let t =
      if String.length last >= 16 then xorend last d
      else
        Xbytes.xor_exact (Secdb_mac.Gf128.dbl d)
          (last ^ "\x80" ^ String.make (15 - String.length last) '\000')
    in
    mac t
  in
  let encrypt ~nonce ~ad m =
    let v = s2v_fast ~nonce ~ad m in
    let ct = Secdb_modes.Mode.ctr_full k2 ~counter0:(clear_ctr_bits v) m in
    (ct, v)
  in
  let decrypt ~nonce ~ad ~tag ct =
    let m = Secdb_modes.Mode.ctr_full k2 ~counter0:(clear_ctr_bits tag) ct in
    let v = s2v_fast ~nonce ~ad m in
    if Xbytes.constant_time_equal v tag then Ok m else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "siv(%s)" k1.name;
    nonce_size = 16;
    tag_size = 16;
    expansion = 0;
    encrypt;
    decrypt;
  }

open Secdb_util

(* GF(2^128) with GCM's reflected bit order: bit 0 of the polynomial is the
   MSB of byte 0.  R = 11100001 || 0^120.

   Two multipliers live here.  [gf_mult] is the bit-by-bit reference the
   seed shipped — 128 shift/xor rounds over byte strings — retained verbatim
   as the correctness oracle for the table path (QCheck in suite_aead, the
   --check gate in bench/perf).  [htable]/[gf_mult_table] is the Shoup
   8-bit table path the AEAD actually runs on: 256 precomputed multiples of
   H plus a byte-shift reduction table, all held as 32-bit words in native
   ints so the hot loop is pure unboxed integer arithmetic (the same
   discipline as Aes_fast). *)

let gf_mult x y =
  let z = Bytes.make 16 '\000' in
  let v = Bytes.of_string y in
  let xor_into dst src =
    for i = 0 to 15 do
      Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
    done
  in
  let shift_right_one b =
    let carry = ref 0 in
    for i = 0 to 15 do
      let c = Char.code (Bytes.get b i) in
      Bytes.set b i (Char.chr ((c lsr 1) lor (!carry lsl 7)));
      carry := c land 1
    done;
    !carry
  in
  for i = 0 to 127 do
    let bit = (Char.code x.[i / 8] lsr (7 - (i mod 8))) land 1 in
    if bit = 1 then xor_into z v;
    let lsb = shift_right_one v in
    if lsb = 1 then Bytes.set v 0 (Char.chr (Char.code (Bytes.get v 0) lxor 0xe1))
  done;
  Bytes.unsafe_to_string z

let ghash_ref ~h data =
  if String.length data mod 16 <> 0 then
    invalid_arg "Gcm.ghash: input must be a multiple of 16 bytes";
  let y = ref (String.make 16 '\000') in
  List.iter (fun blk -> y := gf_mult (Xbytes.xor_exact !y blk) h) (Xbytes.blocks 16 data);
  !y

(* ------------------------------------------------- table-driven GHASH -- *)

(* An element is four 32-bit big-endian words (word 0 = bytes 0..3, so the
   x^0 coefficient is bit 31 of word 0).  [t0..t3] hold T[b] = poly(b) * H
   for every byte value b, where bit (7-q) of b is the x^q coefficient;
   [r0] folds the byte shifted out by a *x^8 step back in: the outgoing
   byte carries degrees 128..135, and x^(128+q) = x^(q+7)+x^(q+2)+x^(q+1)+x^q
   lands entirely in word 0. *)
type htable = {
  t0 : int array;
  t1 : int array;
  t2 : int array;
  t3 : int array;
  r0 : int array;
}

let htable h =
  if String.length h <> 16 then invalid_arg "Gcm.htable: H must be 16 bytes";
  let t0 = Array.make 256 0
  and t1 = Array.make 256 0
  and t2 = Array.make 256 0
  and t3 = Array.make 256 0 in
  (* single-bit entries by repeated multiplication by x: T[0x80 lsr q] = H*x^q *)
  let h0 = ref (Xbytes.get_uint32_be h 0)
  and h1 = ref (Xbytes.get_uint32_be h 4)
  and h2 = ref (Xbytes.get_uint32_be h 8)
  and h3 = ref (Xbytes.get_uint32_be h 12) in
  let i = ref 0x80 in
  while !i >= 1 do
    t0.(!i) <- !h0;
    t1.(!i) <- !h1;
    t2.(!i) <- !h2;
    t3.(!i) <- !h3;
    let lsb = !h3 land 1 in
    h3 := (!h3 lsr 1) lor ((!h2 land 1) lsl 31);
    h2 := (!h2 lsr 1) lor ((!h1 land 1) lsl 31);
    h1 := (!h1 lsr 1) lor ((!h0 land 1) lsl 31);
    h0 := (!h0 lsr 1) lxor (if lsb = 1 then 0xe1000000 else 0);
    i := !i lsr 1
  done;
  (* composite entries: T[i lor j] = T[i] xor T[j], filled in index order *)
  let i = ref 2 in
  while !i <= 0x80 do
    for j = 1 to !i - 1 do
      t0.(!i lor j) <- t0.(!i) lxor t0.(j);
      t1.(!i lor j) <- t1.(!i) lxor t1.(j);
      t2.(!i lor j) <- t2.(!i) lxor t2.(j);
      t3.(!i lor j) <- t3.(!i) lxor t3.(j)
    done;
    i := !i lsl 1
  done;
  let r0 = Array.make 256 0 in
  for b = 0 to 255 do
    let r = ref 0 in
    for q = 0 to 7 do
      if b land (0x80 lsr q) <> 0 then
        List.iter
          (fun d -> r := !r lxor (1 lsl (31 - d)))
          [ q; q + 1; q + 2; q + 7 ]
    done;
    r0.(b) <- !r
  done;
  { t0; t1; t2; t3; r0 }

(* The GHASH accumulator, mutable so a whole message folds with no
   allocation.  Word values stay masked to 32 bits. *)
type acc = { mutable y0 : int; mutable y1 : int; mutable y2 : int; mutable y3 : int }

let acc_create () = { y0 = 0; y1 = 0; y2 = 0; y3 = 0 }

let acc_reset a =
  a.y0 <- 0;
  a.y1 <- 0;
  a.y2 <- 0;
  a.y3 <- 0

(* y := (y xor [x0..x3]) * H.  Horner over the 16 bytes of the xored value,
   most significant byte last: each step multiplies the partial product by
   x^8 (a one-byte right shift of the element, reduction via r0) and adds
   T[next byte].  All operands are immediate ints; the only memory traffic
   is the table loads (indices are masked to 0..255, so unsafe access is
   in bounds). *)
let[@inline] acc_mult t a x0 x1 x2 x3 =
  let x0 = a.y0 lxor x0
  and x1 = a.y1 lxor x1
  and x2 = a.y2 lxor x2
  and x3 = a.y3 lxor x3 in
  let z0 = ref 0 and z1 = ref 0 and z2 = ref 0 and z3 = ref 0 in
  let step b =
    let out = !z3 land 0xff in
    z3 := ((!z3 lsr 8) lor ((!z2 land 0xff) lsl 24)) land 0xffffffff;
    z2 := ((!z2 lsr 8) lor ((!z1 land 0xff) lsl 24)) land 0xffffffff;
    z1 := ((!z1 lsr 8) lor ((!z0 land 0xff) lsl 24)) land 0xffffffff;
    z0 := (!z0 lsr 8) lxor Array.unsafe_get t.r0 out;
    z0 := !z0 lxor Array.unsafe_get t.t0 b;
    z1 := !z1 lxor Array.unsafe_get t.t1 b;
    z2 := !z2 lxor Array.unsafe_get t.t2 b;
    z3 := !z3 lxor Array.unsafe_get t.t3 b
  in
  let word w =
    step (w land 0xff);
    step ((w lsr 8) land 0xff);
    step ((w lsr 16) land 0xff);
    step ((w lsr 24) land 0xff)
  in
  word x3;
  word x2;
  word x1;
  word x0;
  a.y0 <- !z0;
  a.y1 <- !z1;
  a.y2 <- !z2;
  a.y3 <- !z3

let get32_bytes b i =
  (Char.code (Bytes.unsafe_get b i) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (i + 3))

(* Fold [nblocks] consecutive 16-byte blocks of [src] starting at [off]. *)
let acc_fold t a src ~off ~nblocks =
  if off < 0 || off + (16 * nblocks) > Bytes.length src then
    invalid_arg "Gcm: ghash block range out of bounds";
  for i = 0 to nblocks - 1 do
    let p = off + (16 * i) in
    acc_mult t a (get32_bytes src p) (get32_bytes src (p + 4)) (get32_bytes src (p + 8))
      (get32_bytes src (p + 12))
  done

let acc_fold_str t a src ~off ~nblocks =
  acc_fold t a (Bytes.unsafe_of_string src) ~off ~nblocks

let acc_output a dst ~off =
  Xbytes.set_uint32_be dst off a.y0;
  Xbytes.set_uint32_be dst (off + 4) a.y1;
  Xbytes.set_uint32_be dst (off + 8) a.y2;
  Xbytes.set_uint32_be dst (off + 12) a.y3

let ghash_into t ~acc:dst src ~off ~nblocks =
  if Bytes.length dst < 16 then invalid_arg "Gcm.ghash_into: accumulator must be 16 bytes";
  let a =
    {
      y0 = get32_bytes dst 0;
      y1 = get32_bytes dst 4;
      y2 = get32_bytes dst 8;
      y3 = get32_bytes dst 12;
    }
  in
  acc_fold t a src ~off ~nblocks;
  acc_output a dst ~off:0

let gf_mult_table t x =
  if String.length x <> 16 then invalid_arg "Gcm.gf_mult_table: operand must be 16 bytes";
  let a = acc_create () in
  acc_fold_str t a x ~off:0 ~nblocks:1;
  let out = Bytes.create 16 in
  acc_output a out ~off:0;
  Bytes.unsafe_to_string out

let ghash ~h data =
  if String.length data mod 16 <> 0 then
    invalid_arg "Gcm.ghash: input must be a multiple of 16 bytes";
  let t = htable h in
  let a = acc_create () in
  acc_fold_str t a data ~off:0 ~nblocks:(String.length data / 16);
  let out = Bytes.create 16 in
  acc_output a out ~off:0;
  Bytes.unsafe_to_string out

(* --------------------------------------------------------------- GCM -- *)

let make ?(tag_size = 16) (c : Secdb_cipher.Block.t) =
  if c.block_size <> 16 then invalid_arg "Gcm.make: 16-byte block required";
  if tag_size < 1 || tag_size > 16 then invalid_arg "Gcm.make: tag size out of range";
  (* per-make hoists: H, its multiplication tables, and the cipher's native
     into-kernel.  No mutable scratch lives in the closure — parallel-safe
     schemes share one AEAD across domains, so all working buffers below
     are per call (a handful of 16-byte buffers per message, not per
     block). *)
  let h = c.encrypt (String.make 16 '\000') in
  let t = htable h in
  let enc = Secdb_cipher.Block.encrypt_into c in
  (* CTR with a 32-bit counter in the last 4 bytes, from inc32(j0) = 2 as
     GCM specifies for 12-byte nonces: one reusable counter block, one
     reusable keystream block, xor straight over the output buffer. *)
  let gctr_into ~cb ~ks out len =
    let nfull = len lsr 4 in
    let ctr = ref 2 in
    for i = 0 to nfull - 1 do
      Xbytes.set_uint32_be cb 12 (!ctr land 0xffffffff);
      incr ctr;
      enc cb ~src_off:0 ks ~dst_off:0;
      Xbytes.xor_blit ~src:ks ~src_off:0 ~dst:out ~dst_off:(16 * i) ~len:16
    done;
    let tail = len land 15 in
    if tail > 0 then begin
      Xbytes.set_uint32_be cb 12 (!ctr land 0xffffffff);
      enc cb ~src_off:0 ks ~dst_off:0;
      Xbytes.xor_blit ~src:ks ~src_off:0 ~dst:out ~dst_off:(16 * nfull) ~len:tail
    end
  in
  (* GHASH(pad16 ad || pad16 ct || len64 ad || len64 ct), ct read from a
     bytes buffer; [pad] is a caller-supplied 16-byte scratch. *)
  let ghash_tag a ~pad ~ad ct ct_len =
    acc_reset a;
    let ad_full = String.length ad lsr 4 in
    acc_fold_str t a ad ~off:0 ~nblocks:ad_full;
    let ad_tail = String.length ad land 15 in
    if ad_tail > 0 then begin
      Bytes.fill pad 0 16 '\000';
      Bytes.blit_string ad (16 * ad_full) pad 0 ad_tail;
      acc_fold t a pad ~off:0 ~nblocks:1
    end;
    let ct_full = ct_len lsr 4 in
    acc_fold t a ct ~off:0 ~nblocks:ct_full;
    let ct_tail = ct_len land 15 in
    if ct_tail > 0 then begin
      Bytes.fill pad 0 16 '\000';
      Bytes.blit ct (16 * ct_full) pad 0 ct_tail;
      acc_fold t a pad ~off:0 ~nblocks:1
    end;
    Xbytes.set_uint64_be pad 0 (Int64.of_int (8 * String.length ad));
    Xbytes.set_uint64_be pad 8 (Int64.of_int (8 * ct_len));
    acc_fold t a pad ~off:0 ~nblocks:1
  in
  (* tag = E(j0) xor GHASH(...), truncated; [cb] must hold nonce||counter
     and is reset to the j0 counter value 1 here *)
  let finish_tag a ~cb ~ks ~pad =
    Xbytes.set_uint32_be cb 12 1;
    enc cb ~src_off:0 ks ~dst_off:0;
    acc_output a pad ~off:0;
    Xbytes.xor_blit ~src:pad ~src_off:0 ~dst:ks ~dst_off:0 ~len:16;
    if tag_size = 16 then Bytes.to_string ks else Bytes.sub_string ks 0 tag_size
  in
  let encrypt ~nonce ~ad m =
    let len = String.length m in
    let out = Bytes.of_string m in
    let cb = Bytes.create 16 and ks = Bytes.create 16 and pad = Bytes.create 16 in
    Bytes.blit_string nonce 0 cb 0 12;
    gctr_into ~cb ~ks out len;
    let a = acc_create () in
    ghash_tag a ~pad ~ad out len;
    let tag = finish_tag a ~cb ~ks ~pad in
    (Bytes.unsafe_to_string out, tag)
  in
  let decrypt ~nonce ~ad ~tag ct =
    let len = String.length ct in
    let cb = Bytes.create 16 and ks = Bytes.create 16 and pad = Bytes.create 16 in
    Bytes.blit_string nonce 0 cb 0 12;
    let a = acc_create () in
    ghash_tag a ~pad ~ad (Bytes.unsafe_of_string ct) len;
    let expected = finish_tag a ~cb ~ks ~pad in
    if not (Xbytes.constant_time_equal expected tag) then Error Aead.Invalid
    else begin
      let out = Bytes.of_string ct in
      gctr_into ~cb ~ks out len;
      Ok (Bytes.unsafe_to_string out)
    end
  in
  {
    Aead.name = Printf.sprintf "gcm(%s)" c.name;
    nonce_size = 12;
    tag_size;
    expansion = 0;
    encrypt;
    decrypt;
  }

open Secdb_util

let payload_bytes_per_block (c : Secdb_cipher.Block.t) = c.block_size - (c.block_size / 4)

let make (c : Secdb_cipher.Block.t) =
  let bs = c.block_size in
  if bs < 8 then invalid_arg "Ccfb.make: block size too small";
  let tau = bs / 4 in
  let l = bs - tau in
  let enc = Secdb_cipher.Block.encrypt_into c in
  (* hoisted once per make: the keyed CMAC and the CBC chain state after
     absorbing the domain-separation sentinel block, so a non-empty
     header costs only its own blocks.  The sentinel is unreachable by
     chain inputs with fewer than 2^(8*tau - 8) chunks. *)
  let keyed = Secdb_mac.Cmac.keyed c in
  let sentinel = String.make (bs - 1) '\xff' ^ "\x03" in
  let sentinel_state = Secdb_mac.Cmac.chain_state keyed sentinel in
  let zero_tag = String.make tau '\000' in
  let header_tag ad =
    if ad = "" then zero_tag
    else Xbytes.take tau (Secdb_mac.Cmac.mac_with keyed ~init:sentinel_state ad)
  in
  (* chain input: l bytes of previous ciphertext (10..0-padded if short)
     followed by the tau-byte big-endian chunk counter, assembled in one
     reusable per-call block [cb]; [z] holds E_K(cb) — keystream in its
     first l bytes, tag material in the last tau *)
  let core ~nonce ~ad ~decrypting msg =
    let len = String.length msg in
    let nchunks = if len = 0 then 1 else (len + l - 1) / l in
    let out = Bytes.of_string msg in
    let src = Bytes.unsafe_of_string msg in
    let cb = Bytes.create bs in
    let z = Bytes.create bs in
    let acc = Bytes.make tau '\000' in
    let set_ctr i =
      let v = ref i in
      for p = bs - 1 downto l do
        Bytes.set cb p (Char.chr (!v land 0xff));
        v := !v lsr 8
      done
    in
    Bytes.blit_string nonce 0 cb 0 l;
    for idx = 0 to nchunks - 1 do
      let off = idx * l in
      let clen = min l (len - off) in
      set_ctr (idx + 1);
      enc cb ~src_off:0 z ~dst_off:0;
      Xbytes.xor_blit ~src:z ~src_off:l ~dst:acc ~dst_off:0 ~len:tau;
      Xbytes.xor_blit ~src:z ~src_off:0 ~dst:out ~dst_off:off ~len:clen;
      (* next chain prefix is always the ciphertext chunk: the input when
         decrypting, the freshly produced output when encrypting *)
      let ct_src = if decrypting then src else out in
      if clen = l then Bytes.blit ct_src off cb 0 l
      else begin
        Bytes.blit ct_src off cb 0 clen;
        Bytes.set cb clen '\x80';
        Bytes.fill cb (clen + 1) (l - clen - 1) '\000'
      end
    done;
    set_ctr (nchunks + 1);
    enc cb ~src_off:0 z ~dst_off:0;
    Xbytes.xor_blit ~src:z ~src_off:l ~dst:acc ~dst_off:0 ~len:tau;
    Xbytes.xor_into ~src:(header_tag ad) ~dst:acc ~dst_off:0;
    (Bytes.unsafe_to_string out, Bytes.unsafe_to_string acc)
  in
  let encrypt ~nonce ~ad m = core ~nonce ~ad ~decrypting:false m in
  let decrypt ~nonce ~ad ~tag ct =
    let pt, expected = core ~nonce ~ad ~decrypting:true ct in
    if Xbytes.constant_time_equal expected tag then Ok pt else Error Aead.Invalid
  in
  {
    Aead.name = Printf.sprintf "ccfb(%s)" c.name;
    nonce_size = l;
    tag_size = tau;
    expansion = 0;
    encrypt;
    decrypt;
  }

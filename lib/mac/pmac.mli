(** PMAC (Rogaway), the parallelisable MAC used by the "OCB+PMAC" AEAD
    composition the paper recommends (reference [10]).

    Offsets are Gray-code multiples of L = E_K(0ⁿ); the i-th message block
    is whitened with Z_i before encryption, the results are xored into a
    checksum, and the final block is folded in unencrypted (masked by
    L·x⁻¹ when it is a complete block).  Costs ⌈|M|/n⌉ blockcipher calls
    plus the one-time L computation. *)

type keyed
(** Key-dependent state hoisted once: L = E_K(0ⁿ), L·x⁻¹, and the table
    of L·xʲ powers driving the Gray-code offset updates.  Immutable, so
    one [keyed] value is safe to share across domains. *)

val keyed : Secdb_cipher.Block.t -> keyed
(** Derive the hoisted state (one blockcipher call). *)

val mac_keyed : keyed -> string -> string
(** Full-block tag using hoisted state; costs exactly ⌈|M|/n⌉ (min 1)
    blockcipher calls. *)

val mac : Secdb_cipher.Block.t -> string -> string
(** Full-block tag of an arbitrary-length message; [mac c "" ] is defined
    (tag of the empty message).  Equivalent to [mac_keyed (keyed c)]. *)

val mac_truncated : Secdb_cipher.Block.t -> bytes:int -> string -> string

val verify : Secdb_cipher.Block.t -> tag:string -> string -> bool

open Secdb_util

(* Incremental Gray-code offsets: Z_1 = L, Z_{i+1} = Z_i xor L(ntz(i+1))
   where L(j) = L * x^j.  Equivalent to Z_i = gamma_i * L. *)

let mac (c : Secdb_cipher.Block.t) msg =
  let bs = c.block_size in
  let l = c.encrypt (Secdb_cipher.Block.zero_block c) in
  let l_inv = Gf128.inv_dbl l in
  let len = String.length msg in
  let m = max 1 ((len + bs - 1) / bs) in
  let enc = Secdb_cipher.Block.encrypt_into c in
  let src = Bytes.unsafe_of_string msg in
  (* [sigma] accumulates the xor of the encrypted offset blocks; [tmp] holds
     blk xor Z_i for the in-place encryption — the only per-block state *)
  let sigma = Bytes.make bs '\000' in
  let tmp = Bytes.create bs in
  let z = ref l in
  for i = 1 to m - 1 do
    Bytes.blit src ((i - 1) * bs) tmp 0 bs;
    Xbytes.xor_into ~src:!z ~dst:tmp ~dst_off:0;
    enc tmp ~src_off:0 tmp ~dst_off:0;
    Xbytes.xor_blit ~src:tmp ~src_off:0 ~dst:sigma ~dst_off:0 ~len:bs;
    z := Xbytes.xor_exact !z (Gf128.dbl_pow l (Gf128.ntz (i + 1)))
  done;
  let lastlen = len - ((m - 1) * bs) in
  if lastlen = bs then begin
    Xbytes.xor_blit ~src ~src_off:((m - 1) * bs) ~dst:sigma ~dst_off:0 ~len:bs;
    Xbytes.xor_into ~src:l_inv ~dst:sigma ~dst_off:0
  end
  else begin
    if lastlen > 0 then
      Xbytes.xor_blit ~src ~src_off:((m - 1) * bs) ~dst:sigma ~dst_off:0 ~len:lastlen;
    let p = max 0 lastlen in
    Bytes.set sigma p (Char.chr (Char.code (Bytes.get sigma p) lxor 0x80))
  end;
  enc sigma ~src_off:0 sigma ~dst_off:0;
  Bytes.unsafe_to_string sigma

let mac_truncated c ~bytes msg = Xbytes.take bytes (mac c msg)

let verify c ~tag msg =
  Xbytes.constant_time_equal (Xbytes.take (String.length tag) (mac c msg)) tag

open Secdb_util

(* Incremental Gray-code offsets: Z_1 = L, Z_{i+1} = Z_i xor L(ntz(i+1))
   where L(j) = L * x^j.  Equivalent to Z_i = gamma_i * L.

   [keyed] hoists everything that depends only on the key — L, L*x^{-1},
   and the table of L*x^j powers the offset updates draw from — so a
   per-message call costs exactly its blockcipher invocations. *)

type keyed = {
  enc : Secdb_cipher.Block.into;
  bs : int;
  l : string;
  l_inv : string;
  l_pow : string array; (* l_pow.(j) = L * x^j; ntz of a 63-bit index < 63 *)
}

let keyed (c : Secdb_cipher.Block.t) =
  let l = c.encrypt (Secdb_cipher.Block.zero_block c) in
  let l_pow = Array.make 63 l in
  for j = 1 to 62 do
    l_pow.(j) <- Gf128.dbl l_pow.(j - 1)
  done;
  {
    enc = Secdb_cipher.Block.encrypt_into c;
    bs = c.block_size;
    l;
    l_inv = Gf128.inv_dbl l;
    l_pow;
  }

let mac_keyed k msg =
  let bs = k.bs in
  let len = String.length msg in
  let m = max 1 ((len + bs - 1) / bs) in
  let src = Bytes.unsafe_of_string msg in
  (* [sigma] accumulates the xor of the encrypted offset blocks; [tmp] holds
     blk xor Z_i for the in-place encryption; [z] is the running offset —
     per-call buffers only, the keyed state is shared across domains *)
  let sigma = Bytes.make bs '\000' in
  let tmp = Bytes.create bs in
  let z = Bytes.of_string k.l in
  for i = 1 to m - 1 do
    Bytes.blit src ((i - 1) * bs) tmp 0 bs;
    Xbytes.xor_blit ~src:z ~src_off:0 ~dst:tmp ~dst_off:0 ~len:bs;
    k.enc tmp ~src_off:0 tmp ~dst_off:0;
    Xbytes.xor_blit ~src:tmp ~src_off:0 ~dst:sigma ~dst_off:0 ~len:bs;
    Xbytes.xor_into ~src:k.l_pow.(Gf128.ntz (i + 1)) ~dst:z ~dst_off:0
  done;
  let lastlen = len - ((m - 1) * bs) in
  if lastlen = bs then begin
    Xbytes.xor_blit ~src ~src_off:((m - 1) * bs) ~dst:sigma ~dst_off:0 ~len:bs;
    Xbytes.xor_into ~src:k.l_inv ~dst:sigma ~dst_off:0
  end
  else begin
    if lastlen > 0 then
      Xbytes.xor_blit ~src ~src_off:((m - 1) * bs) ~dst:sigma ~dst_off:0 ~len:lastlen;
    let p = max 0 lastlen in
    Bytes.set sigma p (Char.chr (Char.code (Bytes.get sigma p) lxor 0x80))
  end;
  k.enc sigma ~src_off:0 sigma ~dst_off:0;
  Bytes.unsafe_to_string sigma

let mac c msg = mac_keyed (keyed c) msg

let mac_truncated c ~bytes msg = Xbytes.take bytes (mac c msg)

let verify c ~tag msg =
  Xbytes.constant_time_equal (Xbytes.take (String.length tag) (mac c msg)) tag

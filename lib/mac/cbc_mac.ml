open Secdb_util

let chain (c : Secdb_cipher.Block.t) msg =
  if String.length msg mod c.block_size <> 0 then
    invalid_arg "Cbc_mac: message length must be a multiple of the block size";
  let prev = ref (Secdb_cipher.Block.zero_block c) in
  List.map
    (fun blk ->
      prev := c.encrypt (Xbytes.xor_exact blk !prev);
      !prev)
    (Xbytes.blocks c.block_size msg)

(* Same value as [List.rev (chain c msg) |> hd], computed over one reusable
   accumulator block on the cipher's allocation-free path. *)
let mac (c : Secdb_cipher.Block.t) msg =
  if String.length msg mod c.block_size <> 0 then
    invalid_arg "Cbc_mac: message length must be a multiple of the block size";
  let bs = c.block_size in
  let n = String.length msg / bs in
  let enc = Secdb_cipher.Block.encrypt_into c in
  let acc = Bytes.make bs '\000' in
  let src = Bytes.unsafe_of_string msg in
  if n = 0 then enc acc ~src_off:0 acc ~dst_off:0
  else
    for i = 0 to n - 1 do
      Xbytes.xor_blit ~src ~src_off:(i * bs) ~dst:acc ~dst_off:0 ~len:bs;
      enc acc ~src_off:0 acc ~dst_off:0
    done;
  Bytes.unsafe_to_string acc

let mac_padded c msg = mac c (Secdb_modes.Padding.pad ~block:c.block_size msg)

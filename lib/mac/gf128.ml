let poly_const = function
  | 16 -> 0x87
  | 8 -> 0x1b
  | n -> invalid_arg (Printf.sprintf "Gf128: unsupported block size %d" n)

let dbl s =
  let n = String.length s in
  let c = poly_const n in
  let out = Bytes.create n in
  let carry = ref 0 in
  for i = n - 1 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    Bytes.set out i (Char.chr (v land 0xff));
    carry := v lsr 8
  done;
  if !carry <> 0 then
    Bytes.set out (n - 1) (Char.chr (Char.code (Bytes.get out (n - 1)) lxor c));
  Bytes.unsafe_to_string out

let inv_dbl s =
  let n = String.length s in
  let c = poly_const n in
  let lsb = Char.code s.[n - 1] land 1 in
  let src = Bytes.of_string s in
  (* if lsb is set, add the reduction polynomial before halving *)
  if lsb = 1 then
    Bytes.set src (n - 1) (Char.chr (Char.code s.[n - 1] lxor c));
  let out = Bytes.create n in
  let carry = ref lsb in
  for i = 0 to n - 1 do
    let v = Char.code (Bytes.get src i) in
    Bytes.set out i (Char.chr (((v lsr 1) lor (!carry lsl 7)) land 0xff));
    carry := v land 1
  done;
  (* the carry pushed out at the bottom was already folded via the lsb test *)
  Bytes.unsafe_to_string out

let dbl_pow l i =
  let rec loop l i = if i = 0 then l else loop (dbl l) (i - 1) in
  if i < 0 then invalid_arg "Gf128.dbl_pow: negative exponent" else loop l i

let ntz n =
  if n <= 0 then invalid_arg "Gf128.ntz: positive argument required";
  let rec loop n acc = if n land 1 = 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

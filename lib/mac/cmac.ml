open Secdb_util

let subkeys (c : Secdb_cipher.Block.t) =
  let l = c.encrypt (Secdb_cipher.Block.zero_block c) in
  let k1 = Gf128.dbl l in
  let k2 = Gf128.dbl k1 in
  (k1, k2)

type keyed = { cipher : Secdb_cipher.Block.t; k1 : string; k2 : string }

let keyed (c : Secdb_cipher.Block.t) =
  let k1, k2 = subkeys c in
  { cipher = c; k1; k2 }

let mac_with { cipher = c; k1; k2 } ?init msg =
  let bs = c.block_size in
  let len = String.length msg in
  let complete = len > 0 && len mod bs = 0 in
  let nfull = if complete then (len / bs) - 1 else len / bs in
  let enc = Secdb_cipher.Block.encrypt_into c in
  let src = Bytes.unsafe_of_string msg in
  (* [acc] carries the CBC chain; each step xors the next message block in
     and encrypts in place *)
  let acc =
    match init with
    | None -> Bytes.make bs '\000'
    | Some s -> Bytes.of_string s
  in
  for i = 0 to nfull - 1 do
    Xbytes.xor_blit ~src ~src_off:(i * bs) ~dst:acc ~dst_off:0 ~len:bs;
    enc acc ~src_off:0 acc ~dst_off:0
  done;
  if complete then begin
    Xbytes.xor_blit ~src ~src_off:(nfull * bs) ~dst:acc ~dst_off:0 ~len:bs;
    Xbytes.xor_into ~src:k1 ~dst:acc ~dst_off:0
  end
  else begin
    let rest = len - (nfull * bs) in
    Xbytes.xor_blit ~src ~src_off:(nfull * bs) ~dst:acc ~dst_off:0 ~len:rest;
    Bytes.set acc rest (Char.chr (Char.code (Bytes.get acc rest) lxor 0x80));
    Xbytes.xor_into ~src:k2 ~dst:acc ~dst_off:0
  end;
  enc acc ~src_off:0 acc ~dst_off:0;
  Bytes.unsafe_to_string acc

let chain_state { cipher = c; _ } prefix =
  let bs = c.block_size in
  if prefix = "" || String.length prefix mod bs <> 0 then
    invalid_arg "Cmac.chain_state: prefix must be a positive multiple of the block size";
  let prev = ref (Secdb_cipher.Block.zero_block c) in
  String.iteri
    (fun i _ -> if i mod bs = bs - 1 then
        prev := c.encrypt (Xbytes.xor_exact (String.sub prefix (i - bs + 1) bs) !prev))
    prefix;
  !prev

let mac (c : Secdb_cipher.Block.t) msg = mac_with (keyed c) msg

let mac_truncated c ~bytes msg = Xbytes.take bytes (mac c msg)

let verify c ~tag msg =
  Xbytes.constant_time_equal (Xbytes.take (String.length tag) (mac c msg)) tag

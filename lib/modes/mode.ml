open Secdb_util
module Block = Secdb_cipher.Block
module Metrics = Secdb_obs.Metrics

(* Byte/block traffic per mode operation, tallied once per call (never
   inside the block loop) so the kernels stay at full speed whether the
   observability switch is on or off. *)
let op_counters op =
  ( Metrics.counter ~labels:[ ("op", op) ] "mode.bytes",
    Metrics.counter ~labels:[ ("op", op) ] "mode.blocks" )

let tally (bytes_c, blocks_c) (c : Block.t) len =
  Metrics.add bytes_c len;
  Metrics.add blocks_c ((len + c.block_size - 1) / c.block_size)

let t_ecb_encrypt = op_counters "ecb_encrypt"
let t_ecb_decrypt = op_counters "ecb_decrypt"
let t_cbc_encrypt = op_counters "cbc_encrypt"
let t_cbc_decrypt = op_counters "cbc_decrypt"
let t_ctr = op_counters "ctr"
let t_ofb = op_counters "ofb"
let t_cfb_encrypt = op_counters "cfb_encrypt"
let t_cfb_decrypt = op_counters "cfb_decrypt"

(* Every mode below runs on a single [Bytes.t] working buffer through the
   cipher's [encrypt_into]/[decrypt_into] fast path: no per-block string is
   ever allocated.  For ciphers without a native fast path the Block
   fallback reproduces the old per-block behaviour, so the outputs are
   byte-identical either way (enforced by the bulk property suite). *)

let check_aligned (c : Block.t) s op =
  if String.length s mod c.block_size <> 0 then
    invalid_arg
      (Printf.sprintf "Mode.%s: input length %d is not a multiple of the %d-byte block" op
         (String.length s) c.block_size)

let check_iv (c : Block.t) iv op =
  if String.length iv <> c.block_size then
    invalid_arg (Printf.sprintf "Mode.%s: IV must be one block" op)

let ecb_encrypt (c : Block.t) s =
  check_aligned c s "ecb_encrypt";
  tally t_ecb_encrypt c (String.length s);
  let bs = c.block_size in
  let enc = Block.encrypt_into c in
  let out = Bytes.of_string s in
  for i = 0 to (String.length s / bs) - 1 do
    enc out ~src_off:(i * bs) out ~dst_off:(i * bs)
  done;
  Bytes.unsafe_to_string out

let ecb_decrypt (c : Block.t) s =
  check_aligned c s "ecb_decrypt";
  tally t_ecb_decrypt c (String.length s);
  let bs = c.block_size in
  let dec = Block.decrypt_into c in
  let out = Bytes.of_string s in
  for i = 0 to (String.length s / bs) - 1 do
    dec out ~src_off:(i * bs) out ~dst_off:(i * bs)
  done;
  Bytes.unsafe_to_string out

let cbc_encrypt (c : Block.t) ~iv s =
  check_aligned c s "cbc_encrypt";
  check_iv c iv "cbc_encrypt";
  tally t_cbc_encrypt c (String.length s);
  let bs = c.block_size in
  let enc = Block.encrypt_into c in
  let out = Bytes.of_string s in
  for i = 0 to (String.length s / bs) - 1 do
    (* chain: xor the previous ciphertext block (already in [out]) in place *)
    if i = 0 then Xbytes.xor_into ~src:iv ~dst:out ~dst_off:0
    else
      Xbytes.xor_blit ~src:out ~src_off:((i - 1) * bs) ~dst:out ~dst_off:(i * bs) ~len:bs;
    enc out ~src_off:(i * bs) out ~dst_off:(i * bs)
  done;
  Bytes.unsafe_to_string out

let cbc_decrypt (c : Block.t) ~iv s =
  check_aligned c s "cbc_decrypt";
  check_iv c iv "cbc_decrypt";
  tally t_cbc_decrypt c (String.length s);
  let bs = c.block_size in
  let dec = Block.decrypt_into c in
  let src = Bytes.unsafe_of_string s in
  let out = Bytes.create (String.length s) in
  for i = 0 to (String.length s / bs) - 1 do
    dec src ~src_off:(i * bs) out ~dst_off:(i * bs);
    if i = 0 then Xbytes.xor_into ~src:iv ~dst:out ~dst_off:0
    else
      Xbytes.xor_blit ~src ~src_off:((i - 1) * bs) ~dst:out ~dst_off:(i * bs) ~len:bs
  done;
  Bytes.unsafe_to_string out

(* Xor a keystream of successive cipher outputs over the message.
   [next dst off] writes the next keystream block at [dst.(off ..)].
   Full keystream blocks land straight in the output buffer — no scratch
   block, no per-block blit — and the message is folded in with one
   whole-buffer lane xor at the end. *)
let keystream_apply (c : Block.t) next s =
  let bs = c.block_size in
  let len = String.length s in
  let out = Bytes.create len in
  let nfull = len / bs in
  for b = 0 to nfull - 1 do
    next out (b * bs)
  done;
  let tail = len - (nfull * bs) in
  if tail > 0 then begin
    let ks = Bytes.create bs in
    next ks 0;
    Bytes.blit ks 0 out (nfull * bs) tail
  end;
  Xbytes.xor_into ~src:s ~dst:out ~dst_off:0;
  Bytes.unsafe_to_string out

let ctr_full (c : Block.t) ~counter0 s =
  check_iv c counter0 "ctr_full";
  tally t_ctr c (String.length s);
  let enc = Block.encrypt_into c in
  let ctr = Bytes.of_string counter0 in
  let incr_ctr () =
    let rec bump i =
      if i >= 0 then begin
        let v = (Char.code (Bytes.unsafe_get ctr i) + 1) land 0xff in
        Bytes.unsafe_set ctr i (Char.unsafe_chr v);
        if v = 0 then bump (i - 1)
      end
    in
    bump (c.block_size - 1)
  in
  let next dst off =
    enc ctr ~src_off:0 dst ~dst_off:off;
    incr_ctr ()
  in
  keystream_apply c next s

let ctr (c : Block.t) ~nonce s =
  check_iv c nonce "ctr";
  tally t_ctr c (String.length s);
  let enc = Block.encrypt_into c in
  let blk = Bytes.of_string nonce in
  let counter = ref 0 in
  let next dst off =
    Xbytes.set_uint32_be blk (c.block_size - 4) !counter;
    incr counter;
    enc blk ~src_off:0 dst ~dst_off:off
  in
  keystream_apply c next s

let ofb (c : Block.t) ~iv s =
  check_iv c iv "ofb";
  tally t_ofb c (String.length s);
  let bs = c.block_size in
  let enc = Block.encrypt_into c in
  let len = String.length s in
  let out = Bytes.of_string s in
  let state = Bytes.of_string iv in
  let off = ref 0 in
  while !off < len do
    enc state ~src_off:0 state ~dst_off:0;
    let n = min bs (len - !off) in
    Xbytes.xor_blit ~src:state ~src_off:0 ~dst:out ~dst_off:!off ~len:n;
    off := !off + n
  done;
  Bytes.unsafe_to_string out

let cfb_encrypt (c : Block.t) ~iv s =
  check_iv c iv "cfb_encrypt";
  tally t_cfb_encrypt c (String.length s);
  let bs = c.block_size in
  let enc = Block.encrypt_into c in
  let len = String.length s in
  let out = Bytes.of_string s in
  let prev = Bytes.of_string iv in
  let ks = Bytes.create bs in
  let off = ref 0 in
  while !off < len do
    enc prev ~src_off:0 ks ~dst_off:0;
    let n = min bs (len - !off) in
    Xbytes.xor_blit ~src:ks ~src_off:0 ~dst:out ~dst_off:!off ~len:n;
    (* last segment may be partial; feedback uses the full previous block *)
    if n = bs then Bytes.blit out !off prev 0 bs;
    off := !off + n
  done;
  Bytes.unsafe_to_string out

let cfb_decrypt (c : Block.t) ~iv s =
  check_iv c iv "cfb_decrypt";
  tally t_cfb_decrypt c (String.length s);
  let bs = c.block_size in
  let enc = Block.encrypt_into c in
  let len = String.length s in
  let src = Bytes.unsafe_of_string s in
  let out = Bytes.of_string s in
  let prev = Bytes.of_string iv in
  let ks = Bytes.create bs in
  let off = ref 0 in
  while !off < len do
    enc prev ~src_off:0 ks ~dst_off:0;
    let n = min bs (len - !off) in
    Xbytes.xor_blit ~src:ks ~src_off:0 ~dst:out ~dst_off:!off ~len:n;
    if n = bs then Bytes.blit src !off prev 0 bs;
    off := !off + n
  done;
  Bytes.unsafe_to_string out

let zero_iv (c : Block.t) = Block.zero_block c

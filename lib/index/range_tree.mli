(** Bucketized encrypted range structure, after Kerschbaum & Tueno's
    efficiently searchable encrypted data structure for range queries
    (ESEDS): the value domain is cut into [k] buckets by [k-1] plaintext
    boundary values, every entry is stored as an AEAD-sealed payload inside
    its bucket, and a range query [lo..hi] touches exactly the buckets
    whose span overlaps the range.

    The leakage is modelled explicitly and is the whole point of the
    design: the adversary observing storage learns, per entry, {e which
    bucket it sits in} and {e when it was inserted} (the sequence number),
    plus the public bucket boundaries — i.e. each entry's plaintext rank
    to bucket granularity and the bucket histogram.  Nothing else: values
    inside a bucket are AEAD ciphertexts under fresh nonces, mutually
    indistinguishable.  {!Secdb_attacks.Range_leak} turns that surface
    into quantitative scores and the CI gate pins them.

    Sealed payloads are bound to the triple (tree id, sequence number,
    bucket) through the sealer — with the AEAD sealer built by
    [Encdb.create_range_index] the triple travels as associated data, so
    replaying an entry into another bucket (shifting its apparent rank) or
    grafting it into another tree fails authentication, the same per-node
    discipline as {!Secdb_storage.Paged_bptree} (paper §4). *)

(** Pluggable payload protection, mirroring {!Bptree.codec}: the tree never
    sees key material.  [seal]/[unseal] receive the entry's sequence number
    and bucket so schemes can authenticate position. *)
type sealer = {
  sealer_name : string;
  seal : seq:int -> bucket:int -> string -> string;
  unseal : seq:int -> bucket:int -> string -> (string, string) result;
}

val plain_sealer : sealer
(** Identity sealer (payloads in clear) — for tests and attack baselines. *)

exception Integrity of string
(** Raised when a stored payload fails to unseal during queries —
    tampering or relocation detected. *)

type t

val create : id:int -> sealer:sealer -> boundaries:Secdb_db.Value.t array -> unit -> t
(** [boundaries] must be strictly increasing under {!Secdb_db.Value.compare};
    [k-1] boundaries make [k] buckets (an empty array makes one bucket,
    which leaks nothing but also prunes nothing).
    @raise Invalid_argument if the boundaries are not strictly sorted. *)

val quantile_boundaries : ?buckets:int -> Secdb_db.Value.t list -> Secdb_db.Value.t array
(** Boundaries at the [j·n/k] quantiles of the given values (default 16
    buckets), deduplicated — the data-driven bucketization
    [Encdb.create_range_index] uses so each bucket holds roughly [n/k]
    entries regardless of skew. *)

val id : t -> int
val nbuckets : t -> int
val size : t -> int
val boundaries : t -> Secdb_db.Value.t array

val bucket_of : t -> Secdb_db.Value.t -> int
(** The bucket a value belongs to: the first bucket whose (exclusive)
    upper boundary exceeds the value; the last bucket is unbounded. *)

val insert : t -> Secdb_db.Value.t -> table_row:int -> unit

val delete : t -> Secdb_db.Value.t -> table_row:int -> bool
(** Remove one (value, row) entry; [false] if absent.
    @raise Integrity if the candidate bucket holds an undecodable payload. *)

val query :
  t -> ?lo:Secdb_db.Value.t -> ?hi:Secdb_db.Value.t -> unit -> (Secdb_db.Value.t * int) list
(** Inclusive range query: unseal the overlapping buckets, filter exactly,
    return entries sorted by ascending table row.  (Row order — not value
    order — so the SQL engine's candidate sets coincide with a full scan's
    and the lock-free snapshot path can mirror the plan byte for byte.)
    @raise Integrity on the first payload that fails to unseal. *)

(** {2 The adversary's view} *)

val bucket_counts : t -> int array
(** Sealed-entry count per bucket — the bucket histogram the storage
    reveals. *)

val observed : t -> (int * int) list
(** [(seq, bucket)] for every stored entry, ascending [seq] — exactly what
    an adversary watching storage writes learns, and the input surface of
    {!Secdb_attacks.Range_leak}. *)

val tamper : t -> seq:int -> f:(string -> string) -> unit
(** Rewrite a stored sealed payload in place — the adversary writes to
    storage below the DBMS, no checks performed.
    @raise Invalid_argument if [seq] is not stored. *)

val relocate : t -> seq:int -> bucket:int -> unit
(** Move a sealed payload to another bucket without re-sealing — the
    rank-shifting attack the sealer's positional binding must defeat.
    @raise Invalid_argument if [seq] is not stored or [bucket] is out of
    range. *)

open Secdb_util
module Value = Secdb_db.Value

type kind = Inner | Leaf
type ctx = { index_table : int; node_row : int; kind : kind }

type codec = {
  codec_name : string;
  pure : bool;
  encode : ctx -> value:Value.t -> table_row:int option -> string;
  decode : ctx -> string -> (Value.t * int option, string) result;
  decode_unverified : (ctx -> string -> (Value.t * int option, string) result) option;
}

exception Integrity of string

let plain_codec =
  {
    codec_name = "plain";
    pure = true;
    encode =
      (fun _ctx ~value ~table_row ->
        Secdb_db.Codec.frame
          [
            Value.encode value;
            (match table_row with
            | None -> ""
            | Some r -> Xbytes.int_to_be_string ~width:8 r);
          ]);
    decode =
      (fun _ctx payload ->
        match Secdb_db.Codec.unframe2 payload with
        | Error e -> Error e
        | Ok (v, r) -> (
            match Value.decode v with
            | Error e -> Error e
            | Ok value ->
                if r = "" then Ok (value, None)
                else Ok (value, Some (Xbytes.be_string_to_int r))));
    decode_unverified = None;
  }

type node = {
  row : int;
  nkind : kind;
  mutable payloads : string array;
  mutable children : int array; (* inner: length = Array.length payloads + 1 *)
  mutable next : int; (* leaf chain; -1 = none *)
}

type t = {
  tree_id : int;
  order : int;
  tree_codec : codec;
  nodes : node option Vec.t;
  mutable root : int;
  mutable size : int;
}

let alloc t nkind =
  let row = Vec.length t.nodes in
  let n = { row; nkind; payloads = [||]; children = [||]; next = -1 } in
  ignore (Vec.push t.nodes (Some n));
  n

let create ?(order = 4) ~id ~codec () =
  if order < 2 then invalid_arg "Bptree.create: order must be >= 2";
  let t =
    { tree_id = id; order; tree_codec = codec; nodes = Vec.create (); root = 0; size = 0 }
  in
  let root = alloc t Leaf in
  t.root <- root.row;
  t

let id t = t.tree_id
let order t = t.order
let size t = t.size
let codec t = t.tree_codec
let min_keys t = t.order / 2

let get_node t row =
  match Vec.get t.nodes row with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Bptree: node row %d is free" row)

let ctx_of t (n : node) = { index_table = t.tree_id; node_row = n.row; kind = n.nkind }

let decode_slot t n slot =
  match t.tree_codec.decode (ctx_of t n) n.payloads.(slot) with
  | Ok v -> v
  | Error e ->
      raise
        (Integrity
           (Printf.sprintf "node %d slot %d (%s): %s" n.row slot
              (match n.nkind with Inner -> "inner" | Leaf -> "leaf")
              e))

let value_at t n slot = fst (decode_slot t n slot)

let encode_entry t n value table_row =
  t.tree_codec.encode (ctx_of t n) ~value ~table_row

(* Re-encode a payload that moves from node [src] to node [dst]. *)
let reencode t src dst payload =
  match t.tree_codec.decode (ctx_of t src) payload with
  | Error e -> raise (Integrity (Printf.sprintf "re-encode from node %d: %s" src.row e))
  | Ok (value, table_row) -> t.tree_codec.encode (ctx_of t dst) ~value ~table_row

let array_insert arr i v =
  Array.append (Array.sub arr 0 i) (Array.append [| v |] (Array.sub arr i (Array.length arr - i)))

let array_remove arr i =
  Array.append (Array.sub arr 0 i) (Array.sub arr (i + 1) (Array.length arr - i - 1))

(* First child that may contain the probe when looking for the leftmost
   occurrence: the first separator >= probe keeps us left on equality. *)
let child_for_find t n probe =
  let k = Array.length n.payloads in
  let rec loop i = if i < k && Value.compare probe (value_at t n i) > 0 then loop (i + 1) else i in
  loop 0

(* Insertion sends duplicates to the right of existing equal keys. *)
let child_for_insert t n probe =
  let k = Array.length n.payloads in
  let rec loop i = if i < k && Value.compare probe (value_at t n i) >= 0 then loop (i + 1) else i in
  loop 0

let leaf_insert_pos t n probe =
  let k = Array.length n.payloads in
  let rec loop i = if i < k && Value.compare probe (value_at t n i) >= 0 then loop (i + 1) else i in
  loop 0

(* Split a full node; returns (separator value, new right row). *)
let split_node t (n : node) =
  let k = Array.length n.payloads in
  let right = alloc t n.nkind in
  match n.nkind with
  | Leaf ->
      let mid = k / 2 in
      right.payloads <-
        Array.map (fun p -> reencode t n right p) (Array.sub n.payloads mid (k - mid));
      n.payloads <- Array.sub n.payloads 0 mid;
      right.next <- n.next;
      n.next <- right.row;
      (value_at t right 0, right.row)
  | Inner ->
      let mid = k / 2 in
      let sep = value_at t n mid in
      right.payloads <-
        Array.map (fun p -> reencode t n right p) (Array.sub n.payloads (mid + 1) (k - mid - 1));
      right.children <- Array.sub n.children (mid + 1) (k - mid);
      n.payloads <- Array.sub n.payloads 0 mid;
      n.children <- Array.sub n.children 0 (mid + 1);
      (sep, right.row)

let insert t value ~table_row =
  let rec ins row =
    let n = get_node t row in
    (match n.nkind with
    | Leaf ->
        let pos = leaf_insert_pos t n value in
        n.payloads <- array_insert n.payloads pos (encode_entry t n value (Some table_row))
    | Inner -> (
        let idx = child_for_insert t n value in
        match ins n.children.(idx) with
        | None -> ()
        | Some (sep, right_row) ->
            n.payloads <- array_insert n.payloads idx (encode_entry t n sep None);
            n.children <- array_insert n.children (idx + 1) right_row));
    if Array.length n.payloads > t.order then Some (split_node t n) else None
  in
  (match ins t.root with
  | None -> ()
  | Some (sep, right_row) ->
      let old_root = t.root in
      let new_root = alloc t Inner in
      new_root.children <- [| old_root; right_row |];
      new_root.payloads <- [| encode_entry t new_root sep None |];
      t.root <- new_root.row);
  t.size <- t.size + 1

(* Split n items into chunks each of size within [min_fill, cap] (a single
   chunk may be smaller — it becomes the root).  Sizes are as even as
   possible, which keeps every chunk >= min_fill whenever n >= 2*min_fill. *)
let chunk_sizes n ~cap =
  if n <= cap then [ n ]
  else begin
    let k = (n + cap - 1) / cap in
    let base = n / k and rem = n mod k in
    List.init k (fun i -> if i < rem then base + 1 else base)
  end

let take_chunks sizes l =
  let rec take n acc l =
    if n = 0 then (List.rev acc, l)
    else match l with [] -> invalid_arg "take_chunks" | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec loop acc l = function
    | [] -> List.rev acc
    | n :: sizes ->
        let chunk, rest = take n [] l in
        loop (chunk :: acc) rest sizes
  in
  loop [] l sizes

let bulk_load ?pool ?(order = 4) ~id ~codec entries =
  if order < 2 then invalid_arg "Bptree.bulk_load: order must be >= 2";
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if Value.compare a b > 0 then invalid_arg "Bptree.bulk_load: input not sorted"
        else sorted rest
    | _ -> ()
  in
  sorted entries;
  let t =
    { tree_id = id; order; tree_codec = codec; nodes = Vec.create (); root = 0; size = 0 }
  in
  match entries with
  | [] ->
      let root = alloc t Leaf in
      t.root <- root.row;
      t
  | entries ->
      (* leaf level: (node, min value) pairs, chained left to right.  The
         nodes are allocated first, sequentially, so row numbers never depend
         on the pool; only the (pure) per-entry encodes fan out.  The flat
         job array is filled and drained left to right, so a sequential run
         and a parallel run place byte-identical payloads in every slot. *)
      let leaf_chunks = take_chunks (chunk_sizes (List.length entries) ~cap:order) entries in
      let chunked = List.map (fun chunk -> (alloc t Leaf, chunk)) leaf_chunks in
      let jobs =
        Array.of_list
          (List.concat_map
             (fun (n, chunk) -> List.map (fun (v, row) -> (n, v, row)) chunk)
             chunked)
      in
      let encode_one (n, v, row) = encode_entry t n v (Some row) in
      let encoded =
        match pool with
        | Some p when codec.pure && Pool.domains p > 1 -> Pool.map_array p encode_one jobs
        | _ -> Array.map encode_one jobs
      in
      let next = ref 0 in
      let leaves =
        List.map
          (fun (n, chunk) ->
            let k = List.length chunk in
            n.payloads <- Array.sub encoded !next k;
            next := !next + k;
            (n, fst (List.hd chunk)))
          chunked
      in
      List.iter2
        (fun (a, _) (b, _) -> a.next <- b.row)
        (List.filteri (fun i _ -> i < List.length leaves - 1) leaves)
        (List.tl leaves);
      (* inner levels bottom-up until a single node remains *)
      let rec build level =
        match level with
        | [ (n, _) ] ->
            t.root <- n.row;
            t.size <- List.length entries;
            t
        | level ->
            let parents =
              List.map
                (fun children ->
                  let n = alloc t Inner in
                  n.children <- Array.of_list (List.map (fun (c, _) -> c.row) children);
                  (* separators: min value of each child but the first *)
                  n.payloads <-
                    Array.of_list
                      (List.map (fun (_, mn) -> encode_entry t n mn None) (List.tl children));
                  (n, snd (List.hd children)))
                (take_chunks (chunk_sizes (List.length level) ~cap:(order + 1)) level)
            in
            build parents
      in
      build leaves

let leftmost_leaf_for t probe =
  let rec loop row =
    let n = get_node t row in
    match n.nkind with Leaf -> n | Inner -> loop n.children.(child_for_find t n probe)
  in
  loop t.root

let first_leaf t =
  let rec loop row =
    let n = get_node t row in
    match n.nkind with Leaf -> n.row | Inner -> loop n.children.(0)
  in
  loop t.root

(* Scan the leaf chain from [leaf] applying [f value table_row] while it
   returns [`Continue]. *)
let scan_from t (leaf : node) f =
  let rec loop (n : node) =
    let stop = ref false in
    let i = ref 0 in
    while (not !stop) && !i < Array.length n.payloads do
      let value, table_row = decode_slot t n !i in
      (match f value table_row with `Continue -> () | `Stop -> stop := true);
      incr i
    done;
    if (not !stop) && n.next >= 0 then loop (get_node t n.next)
  in
  loop leaf

let find t probe =
  let leaf = leftmost_leaf_for t probe in
  let acc = ref [] in
  scan_from t leaf (fun value table_row ->
      let c = Value.compare value probe in
      if c < 0 then `Continue
      else if c = 0 then begin
        (match table_row with Some r -> acc := r :: !acc | None -> ());
        `Continue
      end
      else `Stop);
  List.rev !acc

let range t ?lo ?hi () =
  let leaf = match lo with Some v -> leftmost_leaf_for t v | None -> get_node t (first_leaf t) in
  let acc = ref [] in
  scan_from t leaf (fun value table_row ->
      let below = match lo with Some v -> Value.compare value v < 0 | None -> false in
      let above = match hi with Some v -> Value.compare value v > 0 | None -> false in
      if above then `Stop
      else begin
        (if not below then
           match table_row with Some r -> acc := (value, r) :: !acc | None -> ());
        `Continue
      end);
  List.rev !acc

let height t =
  let rec loop row acc =
    let n = get_node t row in
    match n.nkind with Leaf -> acc | Inner -> loop n.children.(0) (acc + 1)
  in
  loop t.root 1

let path_to t probe =
  let rec loop row acc =
    let n = get_node t row in
    match n.nkind with
    | Leaf -> List.rev (row :: acc)
    | Inner -> loop n.children.(child_for_find t n probe) (row :: acc)
  in
  loop t.root []

(* --- deletion ------------------------------------------------------- *)

let free_node t row = Vec.set t.nodes row None

(* Rebalance child [idx] of [parent] after a removal left it underfull. *)
let fix_child t (parent : node) idx =
  let child = get_node t parent.children.(idx) in
  if Array.length child.payloads >= min_keys t then ()
  else begin
    let nch = Array.length parent.children in
    let left = if idx > 0 then Some (get_node t parent.children.(idx - 1)) else None in
    let right = if idx < nch - 1 then Some (get_node t parent.children.(idx + 1)) else None in
    let can_lend = function
      | Some n -> Array.length n.payloads > min_keys t
      | None -> false
    in
    if can_lend right then begin
      let r = Option.get right in
      (match child.nkind with
      | Leaf ->
          child.payloads <- Array.append child.payloads [| reencode t r child r.payloads.(0) |];
          r.payloads <- array_remove r.payloads 0;
          parent.payloads.(idx) <- encode_entry t parent (value_at t r 0) None
      | Inner ->
          let sep = value_at t parent idx in
          child.payloads <- Array.append child.payloads [| encode_entry t child sep None |];
          child.children <- Array.append child.children [| r.children.(0) |];
          parent.payloads.(idx) <- encode_entry t parent (value_at t r 0) None;
          r.payloads <- array_remove r.payloads 0;
          r.children <- array_remove r.children 0)
    end
    else if can_lend left then begin
      let l = Option.get left in
      let lk = Array.length l.payloads in
      match child.nkind with
      | Leaf ->
          let moved = reencode t l child l.payloads.(lk - 1) in
          child.payloads <- array_insert child.payloads 0 moved;
          l.payloads <- array_remove l.payloads (lk - 1);
          parent.payloads.(idx - 1) <- encode_entry t parent (value_at t child 0) None
      | Inner ->
          let sep = value_at t parent (idx - 1) in
          child.payloads <- array_insert child.payloads 0 (encode_entry t child sep None);
          child.children <- array_insert child.children 0 l.children.(lk);
          parent.payloads.(idx - 1) <- encode_entry t parent (value_at t l (lk - 1)) None;
          l.payloads <- array_remove l.payloads (lk - 1);
          l.children <- array_remove l.children lk
    end
    else begin
      (* merge child with a sibling; normalise to (left, right) pair *)
      let lidx, l, r =
        match left with
        | Some l -> (idx - 1, l, child)
        | None -> (idx, child, Option.get right)
      in
      (match l.nkind with
      | Leaf ->
          l.payloads <-
            Array.append l.payloads (Array.map (fun p -> reencode t r l p) r.payloads);
          l.next <- r.next
      | Inner ->
          let sep = value_at t parent lidx in
          l.payloads <-
            Array.concat
              [
                l.payloads;
                [| encode_entry t l sep None |];
                Array.map (fun p -> reencode t r l p) r.payloads;
              ];
          l.children <- Array.append l.children r.children);
      parent.payloads <- array_remove parent.payloads lidx;
      parent.children <- array_remove parent.children (lidx + 1);
      free_node t r.row
    end
  end

let delete t probe ~table_row =
  (* [del row] returns true iff one matching entry was removed below [row]. *)
  let rec del row =
    let n = get_node t row in
    match n.nkind with
    | Leaf ->
        let found = ref None in
        Array.iteri
          (fun i p ->
            if !found = None then
              match t.tree_codec.decode (ctx_of t n) p with
              | Ok (v, Some r) when Value.equal v probe && r = table_row -> found := Some i
              | Ok _ -> ()
              | Error e -> raise (Integrity (Printf.sprintf "node %d slot %d: %s" n.row i e)))
          n.payloads;
        (match !found with
        | Some i -> n.payloads <- array_remove n.payloads i
        | None -> ());
        !found <> None
    | Inner ->
        (* duplicates may straddle separators equal to the probe: try every
           candidate subtree left to right until one succeeds *)
        let k = Array.length n.payloads in
        let first = child_for_find t n probe in
        let rec try_child idx =
          if idx > k then false
          else if idx > first && idx <= k && Value.compare probe (value_at t n (idx - 1)) < 0 then
            false
          else if del n.children.(idx) then begin
            fix_child t n idx;
            true
          end
          else try_child (idx + 1)
        in
        try_child first
  in
  let removed = del t.root in
  if removed then begin
    t.size <- t.size - 1;
    let root = get_node t t.root in
    if root.nkind = Inner && Array.length root.payloads = 0 then begin
      let only_child = root.children.(0) in
      free_node t root.row;
      t.root <- only_child
    end
  end;
  removed

(* --- inspection ------------------------------------------------------ *)

type node_view = {
  row : int;
  node_kind : kind;
  payloads : string array;
  children : int array;
  next : int option;
}

let root t = t.root

let node_view t row =
  let n = get_node t row in
  {
    row = n.row;
    node_kind = n.nkind;
    payloads = Array.copy n.payloads;
    children = Array.copy n.children;
    next = (if n.next >= 0 then Some n.next else None);
  }

let nnodes t =
  Vec.fold_left (fun acc n -> match n with Some _ -> acc + 1 | None -> acc) 0 t.nodes

let iter_nodes f t =
  Vec.iteri (fun row n -> match n with Some _ -> f (node_view t row) | None -> ()) t.nodes

let set_payload t ~row ~slot payload =
  let n = get_node t row in
  if slot < 0 || slot >= Array.length n.payloads then
    invalid_arg "Bptree.set_payload: slot out of range";
  n.payloads.(slot) <- payload

let set_children t ~row children =
  let n = get_node t row in
  if n.nkind <> Inner then invalid_arg "Bptree.set_children: not an inner node";
  if Array.length children <> Array.length n.children then
    invalid_arg "Bptree.set_children: arity mismatch";
  n.children <- Array.copy children

let set_next t ~row next =
  let n = get_node t row in
  if n.nkind <> Leaf then invalid_arg "Bptree.set_next: not a leaf";
  n.next <- (match next with Some nx -> nx | None -> -1)

(* --- validation ------------------------------------------------------ *)

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let rec check row depth ~is_root : int * Value.t option * Value.t option =
    (* returns (leaf depth, min value, max value) of the subtree *)
    let n = get_node t row in
    let k = Array.length n.payloads in
    if (not is_root) && k < min_keys t then
      err "node %d underfull: %d < %d" row k (min_keys t);
    if k > t.order then err "node %d overfull: %d > %d" row k t.order;
    let values = Array.init k (fun i -> value_at t n i) in
    for i = 0 to k - 2 do
      if Value.compare values.(i) values.(i + 1) > 0 then
        err "node %d not sorted at slot %d" row i
    done;
    match n.nkind with
    | Leaf ->
        ( depth,
          (if k > 0 then Some values.(0) else None),
          if k > 0 then Some values.(k - 1) else None )
    | Inner ->
        if Array.length n.children <> k + 1 then
          err "inner node %d has %d children for %d keys" row (Array.length n.children) k;
        if is_root && k = 0 then err "inner root %d is empty" row;
        let depths = ref [] in
        let submin = ref None and submax = ref None in
        Array.iteri
          (fun i child ->
            let d, mn, mx = check child (depth + 1) ~is_root:false in
            depths := d :: !depths;
            if i = 0 then submin := mn;
            if i = Array.length n.children - 1 then submax := mx;
            (* separator bounds: max(subtree_i) <= sep_i <= min(subtree_{i+1}) *)
            if i < k then begin
              match mx with
              | Some mx when Value.compare mx values.(i) > 0 ->
                  err "node %d: separator %d below left subtree max" row i
              | _ -> ()
            end;
            if i > 0 then
              match mn with
              | Some mn when Value.compare mn values.(i - 1) < 0 ->
                  err "node %d: separator %d above right subtree min" row (i - 1)
              | _ -> ())
          n.children;
        (match List.sort_uniq Int.compare !depths with
        | [] | [ _ ] -> ()
        | _ -> err "node %d: children at differing leaf depths" row);
        (List.hd !depths, !submin, !submax)
  in
  (try ignore (check t.root 0 ~is_root:true)
   with Integrity e -> err "integrity failure during validation: %s" e);
  (* leaf chain must visit exactly the leaves, in key order *)
  let chain = ref [] in
  let rec walk row =
    let n = get_node t row in
    chain := row :: !chain;
    if n.next >= 0 then walk n.next
  in
  (try walk (first_leaf t) with Invalid_argument e -> err "broken leaf chain: %s" e);
  let total =
    List.fold_left (fun acc row -> acc + Array.length (get_node t row).payloads) 0 !chain
  in
  if total <> t.size then err "leaf chain holds %d entries, size says %d" total t.size;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

(* --- snapshots -------------------------------------------------------- *)

type snapshot = {
  snap_id : int;
  snap_order : int;
  snap_root : int;
  snap_size : int;
  snap_slots : node_view option array;
}

let snapshot t =
  let slots =
    Array.init (Vec.length t.nodes) (fun row ->
        match Vec.get t.nodes row with Some _ -> Some (node_view t row) | None -> None)
  in
  { snap_id = t.tree_id; snap_order = t.order; snap_root = t.root; snap_size = t.size;
    snap_slots = slots }

let of_snapshot ~codec snap =
  if snap.snap_order < 2 then Error "snapshot: order must be >= 2"
  else begin
    let n = Array.length snap.snap_slots in
    let resolve label row =
      if row < 0 || row >= n || snap.snap_slots.(row) = None then
        Error (Printf.sprintf "snapshot: %s reference to missing node %d" label row)
      else Ok ()
    in
    let check_slot acc = function
      | None -> acc
      | Some (v : node_view) ->
          let acc =
            Array.fold_left
              (fun acc child -> match acc with Error _ -> acc | Ok () -> resolve "child" child)
              acc v.children
          in
          (match (acc, v.next) with
          | Ok (), Some nx -> resolve "sibling" nx
          | _ -> acc)
    in
    match
      match Array.fold_left check_slot (Ok ()) snap.snap_slots with
      | Error e -> Error e
      | Ok () -> resolve "root" snap.snap_root
    with
    | Error e -> Error e
    | Ok () ->
        let t =
          { tree_id = snap.snap_id; order = snap.snap_order; tree_codec = codec;
            nodes = Vec.create (); root = snap.snap_root; size = snap.snap_size }
        in
        Array.iteri
          (fun row slot ->
            let node =
              Option.map
                (fun (v : node_view) ->
                  { row; nkind = v.node_kind; payloads = Array.copy v.payloads;
                    children = Array.copy v.children;
                    next = (match v.next with Some nx -> nx | None -> -1) })
                slot
            in
            ignore (Vec.push t.nodes node))
          snap.snap_slots;
        Ok t
  end

type counters = {
  mutable encodes : int;
  mutable decodes : int;
  mutable decode_failures : int;
}

let wrap (c : Bptree.codec) =
  let counters = { encodes = 0; decodes = 0; decode_failures = 0 } in
  let wrapped =
    {
      Bptree.codec_name = c.Bptree.codec_name ^ "+counted";
      (* the counters are unsynchronised mutable state *)
      pure = false;
      encode =
        (fun ctx ~value ~table_row ->
          counters.encodes <- counters.encodes + 1;
          c.Bptree.encode ctx ~value ~table_row);
      decode =
        (fun ctx payload ->
          counters.decodes <- counters.decodes + 1;
          let r = c.Bptree.decode ctx payload in
          (match r with
          | Error _ -> counters.decode_failures <- counters.decode_failures + 1
          | Ok _ -> ());
          r);
      decode_unverified = c.Bptree.decode_unverified;
    }
  in
  (wrapped, counters)

let reset c =
  c.encodes <- 0;
  c.decodes <- 0;
  c.decode_failures <- 0

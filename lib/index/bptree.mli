(** B⁺-tree index in the "table representation" of the analysed paper.

    Nodes occupy rows of an index table; the row number r_I of a node is
    stable for the node's lifetime and never reused.  Structural elements —
    child row numbers for inner nodes, the right sibling for leaf nodes —
    are stored {e in clear}, exactly as in [3]: "the index keys are the
    only encrypted parts".  Key material is opaque to the tree; a pluggable
    {!codec} encodes a (value, table-row) pair into the stored payload and
    back, so the same tree hosts a plaintext index, the [3] scheme, the
    [12] scheme and the paper's fixed AEAD scheme.

    Because payloads are cryptographically bound to their node row r_I,
    any operation that moves an entry to a different node (splits, borrows,
    merges) must decode under the old row and re-encode under the new one;
    the tree does this through the codec, which makes structural
    maintenance itself exercise the integrity checks. *)

type kind = Inner | Leaf

type ctx = { index_table : int; node_row : int; kind : kind }
(** Everything the index encryption schemes need to know about a payload's
    position: which index table, which node row, and whether the node is
    inner or leaf (inner payloads carry no table reference, eq. (4) vs
    (5)). *)

type codec = {
  codec_name : string;
  pure : bool;
      (** [encode] is a pure function of its arguments — no hidden state
          (nonce counters, RNG draws, instrumentation), so applications may
          run concurrently and in any order without changing a single output
          byte.  Gates the parallel path of {!bulk_load}; impure codecs are
          always encoded sequentially, in entry order. *)
  encode : ctx -> value:Secdb_db.Value.t -> table_row:int option -> string;
  decode : ctx -> string -> (Secdb_db.Value.t * int option, string) result;
  decode_unverified : (ctx -> string -> (Secdb_db.Value.t * int option, string) result) option;
      (** Decode {e without} the scheme's integrity verification, when the
          scheme permits it — what the buggy leaf-level handling of the
          published query pseudo-code amounts to (paper footnote 1).
          [None] for schemes (the AEAD fix) that cannot decrypt without
          authenticating: there the published bug is not even expressible. *)
}

exception Integrity of string
(** Raised when a payload fails to decode during tree operations —
    tampering detected (or, for the broken schemes, not). *)

val plain_codec : codec
(** Identity codec storing (value, row) with {!Secdb_db.Codec} framing. *)

type t

val create : ?order:int -> id:int -> codec:codec -> unit -> t
(** [order] is the maximal number of keys per node, default 4 (a small
    order keeps trees deep, which the paper's index attacks like);
    @raise Invalid_argument if [order < 2]. *)

val id : t -> int
val order : t -> int
val size : t -> int
val height : t -> int
val nnodes : t -> int
val codec : t -> codec

val insert : t -> Secdb_db.Value.t -> table_row:int -> unit

val bulk_load :
  ?pool:Secdb_util.Pool.t ->
  ?order:int ->
  id:int ->
  codec:codec ->
  (Secdb_db.Value.t * int) list ->
  t
(** Build a tree bottom-up from entries sorted by value (stable for
    duplicates).  Each entry is encoded exactly once — against incremental
    {!insert}, which decodes O(log n) payloads per insertion and re-encodes
    on every split, this is the economical way to index an existing column
    (used by [Encdb.create_index]; measured by experiment EXP19).

    With [pool], the leaf-level encodes (the bulk of the work) are fanned
    out across domains when the codec is {!codec.pure}; node allocation and
    tree structure stay sequential, so the resulting tree — rows, structure
    and payload bytes — is identical to the pool-less build.
    @raise Invalid_argument if the input is not sorted. *)

val find : t -> Secdb_db.Value.t -> int list
(** All table rows whose indexed value equals the probe, in leaf order. *)

val range :
  t -> ?lo:Secdb_db.Value.t -> ?hi:Secdb_db.Value.t -> unit -> (Secdb_db.Value.t * int) list
(** Inclusive range scan over the leaf chain. *)

val delete : t -> Secdb_db.Value.t -> table_row:int -> bool
(** Remove one (value, row) entry; [false] if absent. *)

val validate : t -> (unit, string) result
(** Check all structural invariants: sorted nodes, separator bounds,
    uniform leaf depth, minimal fill, consistent leaf chain. *)

val path_to : t -> Secdb_db.Value.t -> int list
(** Node rows visited by a leftmost descent for the probe — the basis for
    the client-walk round counting of the paper's Remark 1. *)

(** Raw node view, for the attack modules and the client-walk protocol. *)
type node_view = {
  row : int;
  node_kind : kind;
  payloads : string array;
  children : int array;  (** inner nodes; empty for leaves *)
  next : int option;  (** leaf chain *)
}

val root : t -> int
val node_view : t -> int -> node_view
val first_leaf : t -> int

val iter_nodes : (node_view -> unit) -> t -> unit

val set_payload : t -> row:int -> slot:int -> string -> unit
(** Overwrite a stored payload in place — the adversary's tampering hook.
    No integrity check is performed (the adversary writes to storage
    directly, below the DBMS). *)

val set_children : t -> row:int -> int array -> unit
(** Overwrite an inner node's child pointers — tampering with the
    {e structural} references, which [3], [12] {e and the fix} all leave
    unauthenticated (the Ref_I gap; see {!Secdb_schemes.Index12} and
    experiment EXP25).  @raise Invalid_argument on a leaf or arity
    mismatch. *)

val set_next : t -> row:int -> int option -> unit
(** Overwrite a leaf's right-sibling pointer (same caveat). *)

(** {2 Snapshots}

    A snapshot is the tree's full storage-level state: structure in clear,
    payloads as stored (i.e. encrypted).  It is what the untrusted storage
    actually holds, and what {!Secdb_storage} serialises.  Restoring does
    not touch any payload — integrity is (or is not) checked lazily by the
    codec when entries are next decoded, faithfully to the threat model. *)

type snapshot = {
  snap_id : int;
  snap_order : int;
  snap_root : int;
  snap_size : int;
  snap_slots : node_view option array;
      (** indexed by node row; [None] marks a freed row (row ids are never
          reused, so freed slots must survive serialisation) *)
}

val snapshot : t -> snapshot

val of_snapshot : codec:codec -> snapshot -> (t, string) result
(** Rebuild a tree over the given codec.  Checks structural well-formedness
    (root exists, children/next references resolve) but deliberately not
    payload integrity. *)

module Value = Secdb_db.Value
module Codec = Secdb_db.Codec

type sealer = {
  sealer_name : string;
  seal : seq:int -> bucket:int -> string -> string;
  unseal : seq:int -> bucket:int -> string -> (string, string) result;
}

let plain_sealer =
  {
    sealer_name = "plain";
    seal = (fun ~seq:_ ~bucket:_ p -> p);
    unseal = (fun ~seq:_ ~bucket:_ p -> Ok p);
  }

exception Integrity of string

type entry = { seq : int; stored : string }

type t = {
  id : int;
  sealer : sealer;
  boundaries : Value.t array;
  buckets : entry list ref array;  (* newest first; reversed on traversal *)
  mutable next_seq : int;
  mutable size : int;
}

let create ~id ~sealer ~boundaries () =
  for i = 1 to Array.length boundaries - 1 do
    if Value.compare boundaries.(i - 1) boundaries.(i) >= 0 then
      invalid_arg "Range_tree.create: boundaries must be strictly increasing"
  done;
  {
    id;
    sealer;
    boundaries = Array.copy boundaries;
    buckets = Array.init (Array.length boundaries + 1) (fun _ -> ref []);
    next_seq = 0;
    size = 0;
  }

let quantile_boundaries ?(buckets = 16) values =
  if buckets < 1 then invalid_arg "Range_tree.quantile_boundaries: buckets must be >= 1";
  let sorted = List.stable_sort Value.compare values in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 0 || buckets = 1 then [||]
  else begin
    let out = ref [] in
    for j = buckets - 1 downto 1 do
      let b = arr.(j * n / buckets) in
      match !out with
      | prev :: _ when Value.compare b prev >= 0 -> ()
      | _ -> out := b :: !out
    done;
    Array.of_list !out
  end

let id t = t.id
let nbuckets t = Array.length t.buckets
let size t = t.size
let boundaries t = Array.copy t.boundaries

(* first bucket whose exclusive upper boundary exceeds the value *)
let bucket_of t v =
  let n = Array.length t.boundaries in
  let rec search lo hi =
    (* invariant: boundaries below [lo] are <= v, boundaries from [hi] are > v *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Value.compare t.boundaries.(mid) v <= 0 then search (mid + 1) hi else search lo mid
  in
  search 0 n

let payload v ~table_row =
  Codec.frame [ Value.encode v; Secdb_util.Xbytes.int_to_be_string ~width:8 table_row ]

let decode_payload p =
  match Codec.unframe2 p with
  | Error e -> Error e
  | Ok (v, row) -> (
      if String.length row <> 8 then Error "range_tree: malformed row reference"
      else
        match Value.decode v with
        | Error e -> Error e
        | Ok v -> Ok (v, Secdb_util.Xbytes.be_string_to_int row))

let insert t v ~table_row =
  let bucket = bucket_of t v in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let stored = t.sealer.seal ~seq ~bucket (payload v ~table_row) in
  t.buckets.(bucket) := { seq; stored } :: !(t.buckets.(bucket));
  t.size <- t.size + 1

let unseal_entry t ~bucket e =
  match t.sealer.unseal ~seq:e.seq ~bucket e.stored with
  | Error err -> raise (Integrity (Printf.sprintf "range_tree: entry %d: %s" e.seq err))
  | Ok p -> (
      match decode_payload p with
      | Error err -> raise (Integrity (Printf.sprintf "range_tree: entry %d: %s" e.seq err))
      | Ok vr -> vr)

let delete t v ~table_row =
  let bucket = bucket_of t v in
  let rec remove acc = function
    | [] -> None
    | e :: rest ->
        let ev, erow = unseal_entry t ~bucket e in
        if Value.compare ev v = 0 && erow = table_row then Some (List.rev_append acc rest)
        else remove (e :: acc) rest
  in
  match remove [] !(t.buckets.(bucket)) with
  | None -> false
  | Some entries ->
      t.buckets.(bucket) := entries;
      t.size <- t.size - 1;
      true

let query t ?lo ?hi () =
  let blo = match lo with None -> 0 | Some v -> bucket_of t v in
  let bhi = match hi with None -> nbuckets t - 1 | Some v -> bucket_of t v in
  let keep v =
    (match lo with None -> true | Some l -> Value.compare l v <= 0)
    && match hi with None -> true | Some h -> Value.compare v h <= 0
  in
  let out = ref [] in
  for bucket = blo to bhi do
    List.iter
      (fun e ->
        let v, row = unseal_entry t ~bucket e in
        if keep v then out := (v, row, e.seq) :: !out)
      !(t.buckets.(bucket))
  done;
  List.sort (fun (_, r1, s1) (_, r2, s2) -> compare (r1, s1) (r2, s2)) !out
  |> List.map (fun (v, r, _) -> (v, r))

let bucket_counts t = Array.map (fun b -> List.length !b) t.buckets

let observed t =
  let out = ref [] in
  Array.iteri
    (fun bucket entries -> List.iter (fun e -> out := (e.seq, bucket) :: !out) !entries)
    t.buckets;
  List.sort (fun (a, _) (b, _) -> compare a b) !out

let find_seq t seq =
  let found = ref None in
  Array.iteri
    (fun bucket entries ->
      List.iter (fun e -> if e.seq = seq then found := Some (bucket, e)) !entries)
    t.buckets;
  match !found with
  | Some be -> be
  | None -> invalid_arg (Printf.sprintf "Range_tree: no stored entry with seq %d" seq)

let replace t ~from_bucket ~to_bucket e stored =
  t.buckets.(from_bucket) := List.filter (fun e' -> e'.seq <> e.seq) !(t.buckets.(from_bucket));
  t.buckets.(to_bucket) := { e with stored } :: !(t.buckets.(to_bucket))

let tamper t ~seq ~f =
  let bucket, e = find_seq t seq in
  replace t ~from_bucket:bucket ~to_bucket:bucket e (f e.stored)

let relocate t ~seq ~bucket =
  if bucket < 0 || bucket >= nbuckets t then
    invalid_arg "Range_tree.relocate: bucket out of range";
  let from_bucket, e = find_seq t seq in
  replace t ~from_bucket ~to_bucket:bucket e e.stored

(** The secdb wire protocol: length-framed binary messages over a stream
    socket, with an HMAC-SHA256 challenge–response session handshake.

    {2 Frame grammar}

    Every message is one frame: [[len:4 BE][tag:1][body:len-1]], where
    [len] counts the tag byte plus the body ([1 <= len <= max_frame]).
    Handshake frames carry nonces and transcript MACs; request frames
    carry a client-assigned request id (so calls can be pipelined and
    responses matched out of band) and a per-session MAC trailer;
    response and error frames are structured, never free text the client
    must pattern-match.

    {2 Trust model}

    Authentication is driven by {!Secdb.Keyring}: both ends derive
    [auth_key] from the master key by labelled HMAC
    ({!auth_key_of_master}), and the handshake proves possession of that
    derived credential by MACing the session transcript (both nonces).
    The master key itself never crosses the wire, and the server-side
    library only ever holds the derived verifier — matching the paper's
    trusted-client/untrusted-server split. *)

val protocol_version : int
val magic : string
(** First bytes of every [Hello] body; lets a server reject a stray
    client of some other protocol with a structured error. *)

val default_max_frame : int
(** 1 MiB. *)

(** {1 Structured errors} *)

type err_code =
  | Auth  (** handshake or request MAC failed verification *)
  | Frame  (** malformed or unexpected frame *)
  | Too_large  (** frame length exceeds the receiver's [max_frame] *)
  | Unknown_op
  | Bad_payload  (** request decoded to no valid operation payload *)
  | App  (** the database reported an error (integrity failure, bad SQL) *)
  | Server_error  (** unexpected exception inside the server *)
  | Backpressure  (** too many requests in flight *)

val err_code_to_string : err_code -> string
val err_code_to_int : err_code -> int
val err_code_of_int : int -> err_code option

(** {1 Operations} *)

type req =
  | Ping of string  (** echo *)
  | Stats of [ `Text | `Json ]  (** server-side metric registry dump *)
  | Sql of string  (** one SQL statement *)
  | Put_cell of { table : string; row : int; col : string; value : Secdb_db.Value.t }
  | Get_cell of { table : string; row : int; col : string }
  | Insert_row of { table : string; values : Secdb_db.Value.t list }
  | Decrypt_column of { table : string; col : string }
  | Index_lookup of { table : string; col : string; value : Secdb_db.Value.t }
  | Repl_pull of { ack : int; max : int }
      (** replica → primary: "my durable prefix holds [ack] records; ship
          up to [max] more, sealed" — the ack doubles as the resume point,
          so the primary keeps no per-replica state *)
  | Repl_root
      (** ask any node for the Merkle root over its full database state
          and the op count it reflects — the replication attestation *)

val op_name : req -> string
(** Stable lowercase name, used as the metric label. *)

type cell =
  | Tombstone
  | Cell of Secdb_db.Value.t
  | Cell_error of string  (** integrity failure message for that cell *)

type resp =
  | Pong of string
  | Stats_dump of string
  | Outcome of Secdb_sql.Engine.outcome
  | Updated
  | Cell_value of Secdb_db.Value.t
  | Row_id of int
  | Column of cell list
  | Rows of (int * Secdb_db.Value.t list) list
  | Repl_records of { durable : int; records : (int * string) list }
      (** sealed oplog records (sequence number, raw bytes) in order,
          plus the primary's durable count so a replica can see its lag *)
  | Root of { applied : int; root : string }
      (** attestation: Merkle root over per-shard digests at [applied] ops *)

val encode_req : req -> string
val decode_req : string -> (req, string) result
val encode_resp : resp -> string
val decode_resp : string -> (resp, string) result

(** {1 Frames} *)

type frame =
  | Hello of { version : int; nonce : string }  (** client opener; 16-byte nonce *)
  | Challenge of { version : int; nonce : string }  (** server's 16-byte nonce *)
  | Auth of string  (** client transcript MAC (32 bytes) *)
  | Auth_ok of string  (** server transcript MAC (32 bytes): mutual auth *)
  | Request of { id : int; body : string; mac : string }
      (** [body] is an {!encode_req} result; [mac] is {!request_mac} (16 bytes) *)
  | Response of { id : int; result : (string, err_code * string) result }
      (** [Ok body] carries an {!encode_resp} result *)
  | Conn_error of { code : err_code; message : string }
      (** connection-level failure, not tied to a request id *)

val frame_to_bytes : frame -> string
(** Tag byte plus body — everything after the length prefix. *)

val frame_of_bytes : string -> (frame, string) result
val frame_size : frame -> int
(** Size on the wire including the 4-byte length prefix. *)

(** {1 Session secrets}

    All MACs are HMAC-SHA256 with distinct domain-separation labels. *)

val auth_key_of_master : string -> string
(** 32-byte session-authentication credential derived from the master key
    through {!Secdb.Keyring.derive}.  This is what a server is configured
    with; it cannot be inverted to the master. *)

val handshake_mac : auth_key:string -> client_nonce:string -> server_nonce:string -> string
(** Client's proof over the handshake transcript (32 bytes). *)

val accept_mac : auth_key:string -> client_nonce:string -> server_nonce:string -> string
(** Server's proof (domain-separated from {!handshake_mac}). *)

val session_key : auth_key:string -> client_nonce:string -> server_nonce:string -> string
(** Per-session request-MAC key; fresh for every handshake. *)

val request_mac : session_key:string -> id:int -> body:string -> string
(** 16-byte MAC binding a request frame to the session and its id.
    Equivalent to [request_mac_keyed (session_mac ~session_key)]. *)

type session_mac
(** The session-key HMAC with its per-key preprocessing hoisted; derive
    once per handshake and reuse for every request on the session. *)

val session_mac : session_key:string -> session_mac

val request_mac_keyed : session_mac -> id:int -> body:string -> string
(** Same MAC as {!request_mac}, without the per-call key setup. *)

(** {1 Socket I/O}

    Blocking frame transport with a deadline.  Reads and writes proceed
    in short [select] slices so a [stop] thunk (the server's shutdown
    flag) is honoured promptly even while blocked. *)

type io_error =
  [ `Eof  (** peer closed *)
  | `Timeout  (** deadline elapsed before the frame completed *)
  | `Stopped  (** the [stop] thunk returned true *)
  | `Too_large of int  (** announced frame length; nothing was consumed after the prefix *)
  | `Bad_frame of string ]

val io_error_to_string : io_error -> string

val read_frame :
  ?stop:(unit -> bool) ->
  ?max_frame:int ->
  timeout:float ->
  Unix.file_descr ->
  (frame, io_error) result

val write_frame :
  ?stop:(unit -> bool) -> timeout:float -> Unix.file_descr -> frame -> (unit, io_error) result

(** {1 Addresses} *)

type addr = Unix_sock of string | Tcp of string * int

val addr_to_string : addr -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val sockaddr_of_addr : addr -> Unix.sockaddr

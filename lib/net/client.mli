(** Blocking secdb network client.

    A connection authenticates with the {!Wire} challenge–response
    handshake (mutual: the server must also prove possession of the
    derived credential before any request is sent), then issues
    requests.  Requests may be pipelined: {!post} assigns a request id
    and writes the frame without waiting, {!await} collects a specific
    response, and out-of-order arrivals are parked until asked for.
    {!call} is the one-shot convenience. *)

type t

type error =
  | Io of Wire.io_error  (** transport-level failure; the connection is dead *)
  | Conn of Wire.err_code * string
      (** structured connection-level error from the server; connection closed *)
  | Remote of Wire.err_code * string  (** per-request structured error; connection survives *)
  | Protocol of string  (** the peer violated the wire protocol *)

val error_to_string : error -> string

val connect :
  ?attempts:int ->
  ?backoff:float ->
  ?timeout:float ->
  ?max_frame:int ->
  ?seed:int64 ->
  auth_key:string ->
  Wire.addr ->
  (t, string) result
(** Connect and authenticate, retrying up to [attempts] times (default
    5) with doubling [backoff] (default 0.05s).  A retry covers any
    transient failure in the dial {e or} the handshake — connection
    refused, timeout, short read while the server drains or restarts —
    each on a fresh socket; a replica reconnecting to a restarting
    primary rides exactly this loop.  An explicit refusal (wrong
    credential, protocol mismatch) fails immediately without consuming
    the remaining attempts.  [auth_key] is the
    {!Wire.auth_key_of_master} credential; [timeout] (default 30s)
    bounds every frame read and write. *)

val post : t -> Wire.req -> (int, error) result
(** Send a request without waiting; returns its request id. *)

val await : t -> int -> (Wire.resp, error) result
(** Block until the response for that id arrives.  Responses to other
    in-flight ids received meanwhile are retained for their own
    {!await}. *)

val call : t -> Wire.req -> (Wire.resp, error) result
(** [post] then [await]. *)

val pipeline : ?window:int -> t -> Wire.req list -> (Wire.resp, error) result list
(** Post the requests back-to-back with at most [window] (default 32)
    outstanding, awaiting the oldest response before posting past the
    window; one result per request, in request order.  The window keeps
    long bursts from deadlocking against the kernel socket buffers: an
    unbounded burst stops reading responses while it posts, the server's
    writer fills the peer buffer and blocks, its reader stops draining
    the burst, and both ends sit in their timeouts. *)

val ping : t -> (float, error) result
(** Round-trip a [Ping] and return the elapsed seconds. *)

val post_corrupted : t -> Wire.req -> (int, error) result
(** Test hook: send a request whose MAC trailer has one bit flipped, to
    exercise the server's tamper rejection. *)

val close : t -> unit
(** Idempotent. *)

module Value = Secdb_db.Value
module Xbytes = Secdb_util.Xbytes
module Hmac = Secdb_hash.Hmac

let protocol_version = 1
let magic = "SDBN"
let default_max_frame = 1 lsl 20
let nonce_len = 16
let transcript_mac_len = 32
let request_mac_len = 16

(* --- structured errors ---------------------------------------------------- *)

type err_code =
  | Auth
  | Frame
  | Too_large
  | Unknown_op
  | Bad_payload
  | App
  | Server_error
  | Backpressure

let err_code_to_string = function
  | Auth -> "auth"
  | Frame -> "frame"
  | Too_large -> "too-large"
  | Unknown_op -> "unknown-op"
  | Bad_payload -> "bad-payload"
  | App -> "app"
  | Server_error -> "server-error"
  | Backpressure -> "backpressure"

let err_code_to_int = function
  | Auth -> 1
  | Frame -> 2
  | Too_large -> 3
  | Unknown_op -> 4
  | Bad_payload -> 5
  | App -> 6
  | Server_error -> 7
  | Backpressure -> 8

let err_code_of_int = function
  | 1 -> Some Auth
  | 2 -> Some Frame
  | 3 -> Some Too_large
  | 4 -> Some Unknown_op
  | 5 -> Some Bad_payload
  | 6 -> Some App
  | 7 -> Some Server_error
  | 8 -> Some Backpressure
  | _ -> None

(* --- encoder / decoder primitives ----------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  let s = Bytes.create 4 in
  Xbytes.set_uint32_be s 0 v;
  Buffer.add_bytes b s

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_value b v = put_str b (Value.encode v)

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then fail "truncated payload (need %d bytes at %d)" n c.pos

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  let hi = get_u8 c in
  let lo = get_u8 c in
  (hi lsl 8) lor lo

let get_u32 c =
  need c 4;
  let v = Xbytes.get_uint32_be c.data c.pos in
  c.pos <- c.pos + 4;
  v

let get_bytes c n =
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_str c =
  let n = get_u32 c in
  get_bytes c n

let get_value c =
  match Value.decode (get_str c) with Ok v -> v | Error e -> fail "bad value: %s" e

let finished c = if c.pos <> String.length c.data then fail "trailing garbage after payload"

let decoding f s = try Ok (f { data = s; pos = 0 }) with Decode e -> Error e

(* --- operations ------------------------------------------------------------ *)

type req =
  | Ping of string
  | Stats of [ `Text | `Json ]
  | Sql of string
  | Put_cell of { table : string; row : int; col : string; value : Value.t }
  | Get_cell of { table : string; row : int; col : string }
  | Insert_row of { table : string; values : Value.t list }
  | Decrypt_column of { table : string; col : string }
  | Index_lookup of { table : string; col : string; value : Value.t }
  | Repl_pull of { ack : int; max : int }
      (** replica → primary: "I hold a durable prefix of [ack] records;
          ship me up to [max] more, sealed" *)
  | Repl_root
      (** ask for the Merkle root over the whole database state plus the
          op count it reflects — the replication attestation *)

let op_name = function
  | Ping _ -> "ping"
  | Stats _ -> "stats"
  | Sql _ -> "sql"
  | Put_cell _ -> "put_cell"
  | Get_cell _ -> "get_cell"
  | Insert_row _ -> "insert_row"
  | Decrypt_column _ -> "decrypt_column"
  | Index_lookup _ -> "index_lookup"
  | Repl_pull _ -> "repl_pull"
  | Repl_root -> "repl_root"

let encode_req r =
  let b = Buffer.create 64 in
  (match r with
  | Ping payload ->
      put_u8 b 0x00;
      put_str b payload
  | Stats fmt ->
      put_u8 b 0x01;
      put_u8 b (match fmt with `Text -> 0 | `Json -> 1)
  | Sql stmt ->
      put_u8 b 0x02;
      put_str b stmt
  | Put_cell { table; row; col; value } ->
      put_u8 b 0x03;
      put_str b table;
      put_u32 b row;
      put_str b col;
      put_value b value
  | Get_cell { table; row; col } ->
      put_u8 b 0x04;
      put_str b table;
      put_u32 b row;
      put_str b col
  | Insert_row { table; values } ->
      put_u8 b 0x05;
      put_str b table;
      put_u16 b (List.length values);
      List.iter (put_value b) values
  | Decrypt_column { table; col } ->
      put_u8 b 0x06;
      put_str b table;
      put_str b col
  | Index_lookup { table; col; value } ->
      put_u8 b 0x07;
      put_str b table;
      put_str b col;
      put_value b value
  | Repl_pull { ack; max } ->
      put_u8 b 0x08;
      put_u32 b ack;
      put_u32 b max
  | Repl_root -> put_u8 b 0x09);
  Buffer.contents b

let decode_req s =
  decoding
    (fun c ->
      let r =
        match get_u8 c with
        | 0x00 -> Ping (get_str c)
        | 0x01 -> (
            match get_u8 c with
            | 0 -> Stats `Text
            | 1 -> Stats `Json
            | n -> fail "unknown stats format %d" n)
        | 0x02 -> Sql (get_str c)
        | 0x03 ->
            let table = get_str c in
            let row = get_u32 c in
            let col = get_str c in
            let value = get_value c in
            Put_cell { table; row; col; value }
        | 0x04 ->
            let table = get_str c in
            let row = get_u32 c in
            let col = get_str c in
            Get_cell { table; row; col }
        | 0x05 ->
            let table = get_str c in
            let n = get_u16 c in
            let values = List.init n (fun _ -> get_value c) in
            Insert_row { table; values }
        | 0x06 ->
            let table = get_str c in
            let col = get_str c in
            Decrypt_column { table; col }
        | 0x07 ->
            let table = get_str c in
            let col = get_str c in
            let value = get_value c in
            Index_lookup { table; col; value }
        | 0x08 ->
            let ack = get_u32 c in
            let max = get_u32 c in
            Repl_pull { ack; max }
        | 0x09 -> Repl_root
        | op -> fail "unknown op 0x%02x" op
      in
      finished c;
      r)
    s

(* --- responses ------------------------------------------------------------- *)

type cell = Tombstone | Cell of Value.t | Cell_error of string

type resp =
  | Pong of string
  | Stats_dump of string
  | Outcome of Secdb_sql.Engine.outcome
  | Updated
  | Cell_value of Value.t
  | Row_id of int
  | Column of cell list
  | Rows of (int * Value.t list) list
  | Repl_records of { durable : int; records : (int * string) list }
      (** sealed oplog records, each with its sequence number, plus the
          primary's durable count so the replica can see its lag *)
  | Root of { applied : int; root : string }

let encode_resp r =
  let b = Buffer.create 64 in
  (match r with
  | Pong payload ->
      put_u8 b 0x00;
      put_str b payload
  | Stats_dump s ->
      put_u8 b 0x01;
      put_str b s
  | Outcome o ->
      put_u8 b 0x02;
      (match o with
      | Secdb_sql.Engine.Rows { columns; rows } ->
          put_u8 b 0;
          put_u16 b (List.length columns);
          List.iter (put_str b) columns;
          put_u32 b (List.length rows);
          List.iter
            (fun row ->
              put_u16 b (List.length row);
              List.iter (put_value b) row)
            rows
      | Secdb_sql.Engine.Affected n ->
          put_u8 b 1;
          put_u32 b n
      | Secdb_sql.Engine.Created -> put_u8 b 2
      | Secdb_sql.Engine.Plan p ->
          put_u8 b 3;
          put_str b p)
  | Updated -> put_u8 b 0x03
  | Cell_value v ->
      put_u8 b 0x04;
      put_value b v
  | Row_id r ->
      put_u8 b 0x05;
      put_u32 b r
  | Column cells ->
      put_u8 b 0x06;
      put_u32 b (List.length cells);
      List.iter
        (function
          | Tombstone -> put_u8 b 0
          | Cell v ->
              put_u8 b 1;
              put_value b v
          | Cell_error e ->
              put_u8 b 2;
              put_str b e)
        cells
  | Rows rows ->
      put_u8 b 0x07;
      put_u32 b (List.length rows);
      List.iter
        (fun (row, values) ->
          put_u32 b row;
          put_u16 b (List.length values);
          List.iter (put_value b) values)
        rows
  | Repl_records { durable; records } ->
      put_u8 b 0x08;
      put_u32 b durable;
      put_u32 b (List.length records);
      List.iter
        (fun (seq, sealed) ->
          put_u32 b seq;
          put_str b sealed)
        records
  | Root { applied; root } ->
      put_u8 b 0x09;
      put_u32 b applied;
      put_str b root);
  Buffer.contents b

let decode_resp s =
  decoding
    (fun c ->
      let r =
        match get_u8 c with
        | 0x00 -> Pong (get_str c)
        | 0x01 -> Stats_dump (get_str c)
        | 0x02 ->
            Outcome
              (match get_u8 c with
              | 0 ->
                  let ncols = get_u16 c in
                  let columns = List.init ncols (fun _ -> get_str c) in
                  let nrows = get_u32 c in
                  let rows =
                    List.init nrows (fun _ ->
                        let n = get_u16 c in
                        List.init n (fun _ -> get_value c))
                  in
                  Secdb_sql.Engine.Rows { columns; rows }
              | 1 -> Secdb_sql.Engine.Affected (get_u32 c)
              | 2 -> Secdb_sql.Engine.Created
              | 3 -> Secdb_sql.Engine.Plan (get_str c)
              | k -> fail "unknown outcome kind %d" k)
        | 0x03 -> Updated
        | 0x04 -> Cell_value (get_value c)
        | 0x05 -> Row_id (get_u32 c)
        | 0x06 ->
            let n = get_u32 c in
            Column
              (List.init n (fun _ ->
                   match get_u8 c with
                   | 0 -> Tombstone
                   | 1 -> Cell (get_value c)
                   | 2 -> Cell_error (get_str c)
                   | k -> fail "unknown cell kind %d" k))
        | 0x07 ->
            let n = get_u32 c in
            Rows
              (List.init n (fun _ ->
                   let row = get_u32 c in
                   let nv = get_u16 c in
                   (row, List.init nv (fun _ -> get_value c))))
        | 0x08 ->
            let durable = get_u32 c in
            let n = get_u32 c in
            Repl_records
              {
                durable;
                records =
                  List.init n (fun _ ->
                      let seq = get_u32 c in
                      let sealed = get_str c in
                      (seq, sealed));
              }
        | 0x09 ->
            let applied = get_u32 c in
            let root = get_str c in
            Root { applied; root }
        | k -> fail "unknown response kind 0x%02x" k
      in
      finished c;
      r)
    s

(* --- frames ----------------------------------------------------------------- *)

type frame =
  | Hello of { version : int; nonce : string }
  | Challenge of { version : int; nonce : string }
  | Auth of string
  | Auth_ok of string
  | Request of { id : int; body : string; mac : string }
  | Response of { id : int; result : (string, err_code * string) result }
  | Conn_error of { code : err_code; message : string }

let frame_to_bytes f =
  let b = Buffer.create 64 in
  (match f with
  | Hello { version; nonce } ->
      put_u8 b 0x01;
      Buffer.add_string b magic;
      put_u16 b version;
      Buffer.add_string b nonce
  | Challenge { version; nonce } ->
      put_u8 b 0x02;
      put_u16 b version;
      Buffer.add_string b nonce
  | Auth mac ->
      put_u8 b 0x03;
      Buffer.add_string b mac
  | Auth_ok mac ->
      put_u8 b 0x04;
      Buffer.add_string b mac
  | Request { id; body; mac } ->
      put_u8 b 0x10;
      put_u32 b id;
      Buffer.add_string b body;
      Buffer.add_string b mac
  | Response { id; result } -> (
      put_u8 b 0x11;
      put_u32 b id;
      match result with
      | Ok body ->
          put_u8 b 0;
          Buffer.add_string b body
      | Error (code, message) ->
          put_u8 b 1;
          put_u8 b (err_code_to_int code);
          Buffer.add_string b message)
  | Conn_error { code; message } ->
      put_u8 b 0x12;
      put_u8 b (err_code_to_int code);
      Buffer.add_string b message);
  Buffer.contents b

let frame_size f = 4 + String.length (frame_to_bytes f)

let get_err_code c =
  let n = get_u8 c in
  match err_code_of_int n with Some e -> e | None -> fail "unknown error code %d" n

let rest c =
  let s = String.sub c.data c.pos (String.length c.data - c.pos) in
  c.pos <- String.length c.data;
  s

let frame_of_bytes s =
  decoding
    (fun c ->
      match get_u8 c with
      | 0x01 ->
          let m = get_bytes c (String.length magic) in
          if m <> magic then fail "bad hello magic";
          let version = get_u16 c in
          let nonce = get_bytes c nonce_len in
          finished c;
          Hello { version; nonce }
      | 0x02 ->
          let version = get_u16 c in
          let nonce = get_bytes c nonce_len in
          finished c;
          Challenge { version; nonce }
      | 0x03 ->
          let mac = get_bytes c transcript_mac_len in
          finished c;
          Auth mac
      | 0x04 ->
          let mac = get_bytes c transcript_mac_len in
          finished c;
          Auth_ok mac
      | 0x10 ->
          let id = get_u32 c in
          let remaining = String.length c.data - c.pos in
          if remaining < request_mac_len then fail "request frame too short for its MAC";
          let body = get_bytes c (remaining - request_mac_len) in
          let mac = get_bytes c request_mac_len in
          Request { id; body; mac }
      | 0x11 ->
          let id = get_u32 c in
          let result =
            match get_u8 c with
            | 0 -> Ok (rest c)
            | 1 ->
                let code = get_err_code c in
                Error (code, rest c)
            | k -> fail "unknown response status %d" k
          in
          Response { id; result }
      | 0x12 ->
          let code = get_err_code c in
          Conn_error { code; message = rest c }
      | t -> fail "unknown frame tag 0x%02x" t)
    s

(* --- session secrets -------------------------------------------------------- *)

let auth_key_of_master master =
  let kr = Secdb.Keyring.open_session ~master in
  Fun.protect
    ~finally:(fun () -> Secdb.Keyring.close_session kr)
    (fun () -> Secdb.Keyring.derive kr ~label:"secdb/net/auth/v1" ~length:32)

let transcript ~label ~client_nonce ~server_nonce = label ^ client_nonce ^ server_nonce

let handshake_mac ~auth_key ~client_nonce ~server_nonce =
  Hmac.mac Hmac.sha256 ~key:auth_key
    (transcript ~label:"secdb-net-client-auth-v1" ~client_nonce ~server_nonce)

let accept_mac ~auth_key ~client_nonce ~server_nonce =
  Hmac.mac Hmac.sha256 ~key:auth_key
    (transcript ~label:"secdb-net-server-accept-v1" ~client_nonce ~server_nonce)

let session_key ~auth_key ~client_nonce ~server_nonce =
  Hmac.mac Hmac.sha256 ~key:auth_key
    (transcript ~label:"secdb-net-session-v1" ~client_nonce ~server_nonce)

(* A session MACs every request under one key, so both ends hoist the
   keyed HMAC (precomputed ipad/opad) for the life of the session. *)
type session_mac = Hmac.keyed

let session_mac ~session_key = Hmac.keyed Hmac.sha256 ~key:session_key

let request_mac_keyed k ~id ~body =
  let b = Bytes.create 4 in
  Xbytes.set_uint32_be b 0 id;
  Hmac.mac_keyed_truncated k ~bytes:request_mac_len ("c2s" ^ Bytes.unsafe_to_string b ^ body)

let request_mac ~session_key ~id ~body = request_mac_keyed (session_mac ~session_key) ~id ~body

(* --- socket I/O -------------------------------------------------------------- *)

type io_error =
  [ `Eof | `Timeout | `Stopped | `Too_large of int | `Bad_frame of string ]

let io_error_to_string = function
  | `Eof -> "connection closed by peer"
  | `Timeout -> "timed out"
  | `Stopped -> "shutting down"
  | `Too_large n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | `Bad_frame e -> "bad frame: " ^ e

let slice = 0.25
let no_stop () = false

(* One [select] slice bounded by the caller's deadline; [`Ready] only when
   the descriptor is actually usable. *)
let wait_fd ~stop ~deadline fd ~for_read =
  let rec go () =
    if stop () then Error `Stopped
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then Error `Timeout
      else
        let t = Float.min slice remaining in
        let r, w =
          try
            let r, w, _ =
              if for_read then Unix.select [ fd ] [] [] t else Unix.select [] [ fd ] [] t
            in
            (r, w)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        if (if for_read then r else w) <> [] then Ok () else go ()
  in
  go ()

let read_exact ~stop ~deadline fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then Ok ()
    else
      match wait_fd ~stop ~deadline fd ~for_read:true with
      | Error _ as e -> e
      | Ok () -> (
          match Unix.read fd buf off (len - off) with
          | 0 -> Error `Eof
          | n -> go (off + n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              go off
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Error `Eof)
  in
  go 0

let write_all ~stop ~deadline fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match wait_fd ~stop ~deadline fd ~for_read:false with
      | Error _ as e -> e
      | Ok () -> (
          match Unix.write_substring fd s off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              go off
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Error `Eof)
  in
  go 0

let read_frame ?(stop = no_stop) ?(max_frame = default_max_frame) ~timeout fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let hdr = Bytes.create 4 in
  match read_exact ~stop ~deadline fd hdr with
  | Error _ as e -> e
  | Ok () -> (
      let len = Xbytes.get_uint32_be (Bytes.unsafe_to_string hdr) 0 in
      if len < 1 then Error (`Bad_frame "zero-length frame")
      else if len > max_frame then Error (`Too_large len)
      else
        let body = Bytes.create len in
        match read_exact ~stop ~deadline fd body with
        | Error _ as e -> e
        | Ok () -> (
            match frame_of_bytes (Bytes.unsafe_to_string body) with
            | Ok f -> Ok f
            | Error e -> Error (`Bad_frame e)))

let write_frame ?(stop = no_stop) ~timeout fd f =
  let deadline = Unix.gettimeofday () +. timeout in
  let payload = frame_to_bytes f in
  let hdr = Bytes.create 4 in
  Xbytes.set_uint32_be hdr 0 (String.length payload);
  write_all ~stop ~deadline fd (Bytes.unsafe_to_string hdr ^ payload)

(* --- addresses ---------------------------------------------------------------- *)

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of_addr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> failwith ("cannot resolve host " ^ host))
      in
      Unix.ADDR_INET (ip, port)
